// Sampler tests: ring behavior, rate math (including counters born between
// samples and the dt<=0 guard), and the start/stop thread handshake.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "telemetry/sampler.h"

namespace rebooting::telemetry {
namespace {

using namespace std::chrono_literals;

TEST(Sampler, TickSnapshotsTheRegistryIntoTheRing) {
  MetricsRegistry registry;
  registry.add("req", 3.0);
  registry.set("depth", 7.0);
  registry.record("lat", 0.25);

  Sampler sampler(registry);
  EXPECT_FALSE(sampler.latest().has_value());

  const MetricsSample sample = sampler.tick();
  EXPECT_EQ(sampler.size(), 1u);
  EXPECT_DOUBLE_EQ(sample.counters.at("req"), 3.0);
  EXPECT_DOUBLE_EQ(sample.gauges.at("depth"), 7.0);
  EXPECT_EQ(sample.histograms.at("lat").count, 1u);
  ASSERT_TRUE(sampler.latest().has_value());
  EXPECT_DOUBLE_EQ(sampler.latest()->counters.at("req"), 3.0);

  // The sample is a copy: later registry updates do not leak into it.
  registry.add("req", 10.0);
  EXPECT_DOUBLE_EQ(sampler.latest()->counters.at("req"), 3.0);
}

TEST(Sampler, RingDropsOldestBeyondCapacity) {
  MetricsRegistry registry;
  SamplerConfig config;
  config.capacity = 3;
  Sampler sampler(registry, config);
  for (int i = 0; i < 10; ++i) {
    registry.add("n");
    sampler.tick();
  }
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_DOUBLE_EQ(sampler.latest()->counters.at("n"), 10.0);
}

TEST(Sampler, RatesComeFromTheLastTwoSamples) {
  MetricsRegistry registry;
  Sampler sampler(registry);
  registry.add("req", 5.0);
  sampler.tick();
  EXPECT_TRUE(sampler.rates().per_second.empty());  // one sample: no rate

  std::this_thread::sleep_for(2ms);
  registry.add("req", 5.0);
  registry.add("born.later", 4.0);  // counter absent from the older sample
  sampler.tick();

  const MetricsRates rates = sampler.rates();
  ASSERT_GT(rates.dt_seconds, 0.0);
  EXPECT_NEAR(rates.per_second.at("req"), 5.0 / rates.dt_seconds, 1e-6);
  // A counter created between samples rates from 0, not from absent.
  EXPECT_NEAR(rates.per_second.at("born.later"), 4.0 / rates.dt_seconds,
              1e-6);
}

TEST(Sampler, RatesBetweenGuardsAgainstZeroDt) {
  MetricsSample a;
  a.t_seconds = 1.0;
  a.counters["x"] = 1.0;
  MetricsSample b;
  b.t_seconds = 1.0;  // same instant: no infinities, just no rates
  b.counters["x"] = 100.0;
  EXPECT_TRUE(Sampler::rates_between(a, b).per_second.empty());
  // Backwards time (ring handed in the wrong order) is equally undefined.
  b.t_seconds = 0.5;
  EXPECT_TRUE(Sampler::rates_between(a, b).per_second.empty());
}

TEST(Sampler, BackgroundThreadTicksAndStopsCleanly) {
  MetricsRegistry registry;
  SamplerConfig config;
  config.period_seconds = 0.005;
  Sampler sampler(registry, config);
  sampler.start();
  sampler.start();  // idempotent

  // The thread ticks immediately on start, then on its period.
  for (int i = 0; i < 200 && sampler.size() < 3; ++i)
    std::this_thread::sleep_for(2ms);
  EXPECT_GE(sampler.size(), 3u);

  sampler.stop();
  sampler.stop();  // idempotent
  const std::size_t after_stop = sampler.size();
  std::this_thread::sleep_for(15ms);
  EXPECT_EQ(sampler.size(), after_stop);  // really stopped

  // Restartable after stop.
  sampler.start();
  for (int i = 0; i < 200 && sampler.size() <= after_stop; ++i)
    std::this_thread::sleep_for(2ms);
  EXPECT_GT(sampler.size(), after_stop);
}

}  // namespace
}  // namespace rebooting::telemetry
