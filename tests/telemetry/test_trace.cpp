// Trace recorder test suite: ring-buffer wraparound with dropped-event
// accounting, multi-thread emission (this file is part of the CI TSan job's
// test_telemetry binary), Chrome trace-event export validated by parsing the
// document back with core::json_parse, and the scheduler's flow-arrow chain
// (submit -> dequeue -> complete per job seq) with matched begin/end pairs.
#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "core/json.h"
#include "scheduler/scheduler.h"
#include "telemetry/telemetry.h"

namespace rebooting::telemetry {
namespace {

using core::JsonValue;

/// Every test starts from a clean, enabled recorder and leaves the
/// process-wide instance disabled, empty, and at default capacity for
/// whatever suite runs next in this binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::set_enabled(false);
    TraceRecorder::instance().reset();
    TraceRecorder::instance().set_ring_capacity(
        TraceRecorder::kDefaultRingCapacity);
    TraceRecorder::set_enabled(true);
  }
  void TearDown() override {
    TraceRecorder::set_enabled(false);
    TraceRecorder::instance().reset();
    TraceRecorder::instance().set_ring_capacity(
        TraceRecorder::kDefaultRingCapacity);
    Telemetry::set_enabled(false);
    Telemetry::instance().reset();
  }
};

/// Parses the recorder's export (quiescent: call after joining all emitting
/// threads) and returns the traceEvents array.
std::vector<JsonValue> exported_events() {
  const auto doc = core::json_parse(TraceRecorder::instance().to_json());
  EXPECT_TRUE(doc.has_value());
  if (!doc) return {};
  return doc->at("traceEvents").array();
}

TEST_F(TraceTest, DisabledPathEmitsNothing) {
  TraceRecorder::set_enabled(false);
  TELEM_TRACE_INSTANT("ghost");
  TELEM_TRACE_COUNTER("ghost.counter", 1.0);
  { TELEM_TRACE_SCOPE("ghost.scope"); }
  for (const ThreadTimeline& tl : TraceRecorder::instance().snapshot())
    EXPECT_EQ(tl.written, 0u);
  EXPECT_EQ(TraceRecorder::instance().dropped_events(), 0u);
}

TEST_F(TraceTest, ScopeEmitsMatchedBeginEndPair) {
  { TELEM_TRACE_SCOPE("unit.scope"); }
  const auto timelines = TraceRecorder::instance().snapshot();
  ASSERT_EQ(timelines.size(), 1u);
  const auto& events = timelines[0].events;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, TraceEventType::kBegin);
  EXPECT_EQ(events[1].type, TraceEventType::kEnd);
  EXPECT_STREQ(events[0].name, "unit.scope");
  EXPECT_STREQ(events[1].name, "unit.scope");
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST_F(TraceTest, RingWrapsOverwritingOldestAndCountsDrops) {
  // Re-register this thread's ring at the small capacity: capacity applies
  // at registration, and reset() (in SetUp) invalidated the old ring.
  TraceRecorder::instance().reset();
  TraceRecorder::instance().set_ring_capacity(16);

  constexpr std::uint64_t kEmitted = 40;
  for (std::uint64_t i = 0; i < kEmitted; ++i)
    TraceRecorder::instance().emit(TraceEventType::kCounter, "wrap.counter",
                                   nullptr, kNoTraceId,
                                   static_cast<double>(i));

  const auto timelines = TraceRecorder::instance().snapshot();
  ASSERT_EQ(timelines.size(), 1u);
  const ThreadTimeline& tl = timelines[0];
  EXPECT_EQ(tl.written, kEmitted);
  EXPECT_EQ(tl.dropped, kEmitted - 16);
  ASSERT_EQ(tl.events.size(), 16u);
  // Survivors are the newest 16, oldest first.
  for (std::size_t k = 0; k < tl.events.size(); ++k)
    EXPECT_EQ(tl.events[k].value, static_cast<double>(kEmitted - 16 + k));
  EXPECT_EQ(TraceRecorder::instance().dropped_events(), kEmitted - 16);
}

TEST_F(TraceTest, DroppedEventsSurfaceInExportAndMetrics) {
  Telemetry::instance().reset();
  Telemetry::set_enabled(true);
  TraceRecorder::instance().reset();
  TraceRecorder::instance().set_ring_capacity(8);
  for (int i = 0; i < 20; ++i) TELEM_TRACE_INSTANT("drop.me");

  const auto doc = core::json_parse(TraceRecorder::instance().to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("otherData").at("dropped_events").number(), 12.0);

  const auto counters = Telemetry::instance().metrics().counters();
  const auto it = counters.find("trace.dropped_events");
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->second, 12.0);
}

TEST_F(TraceTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRecorder::instance().set_ring_capacity(1000);
  EXPECT_EQ(TraceRecorder::instance().ring_capacity(), 1024u);
  TraceRecorder::instance().set_ring_capacity(1);
  EXPECT_EQ(TraceRecorder::instance().ring_capacity(), 8u);
}

TEST_F(TraceTest, InternReturnsStablePointerAndDeduplicates) {
  const std::string dynamic = std::string("job-") + std::to_string(7);
  const char* a = TraceRecorder::instance().intern(dynamic);
  const char* b = TraceRecorder::instance().intern("job-7");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "job-7");
}

TEST_F(TraceTest, MultiThreadWritesStayPerThreadAndComplete) {
  // Four emitters, one ring each; join-then-read is the quiescence contract
  // the release/acquire cursor publishes across. Run under TSan in CI.
  constexpr int kThreads = 4;
  constexpr int kScopesPerThread = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([t] {
      TraceRecorder::instance().set_thread_name("emitter " +
                                                std::to_string(t));
      for (int i = 0; i < kScopesPerThread; ++i) {
        TELEM_TRACE_SCOPE("mt.scope");
        TELEM_TRACE_COUNTER("mt.progress", i);
      }
    });
  for (std::thread& th : pool) th.join();

  const auto timelines = TraceRecorder::instance().snapshot();
  ASSERT_EQ(timelines.size(), static_cast<std::size_t>(kThreads));
  for (const ThreadTimeline& tl : timelines) {
    EXPECT_EQ(tl.written, static_cast<std::uint64_t>(3 * kScopesPerThread));
    EXPECT_EQ(tl.dropped, 0u);
    EXPECT_TRUE(tl.thread_name.rfind("emitter ", 0) == 0) << tl.thread_name;
    std::int64_t prev = 0;
    int open = 0;
    for (const TraceEvent& ev : tl.events) {
      EXPECT_GE(ev.ts_ns, prev);
      prev = ev.ts_ns;
      if (ev.type == TraceEventType::kBegin) ++open;
      if (ev.type == TraceEventType::kEnd) --open;
      EXPECT_GE(open, 0);
    }
    EXPECT_EQ(open, 0);
  }
}

TEST_F(TraceTest, ExportIsValidChromeTraceJson) {
  TraceRecorder::instance().set_thread_name("export test");
  {
    TELEM_TRACE_SCOPE("export.scope");
    TELEM_TRACE_INSTANT("export.instant");
    TELEM_TRACE_COUNTER("export.counter", 42.5);
  }

  const auto events = exported_events();
  ASSERT_FALSE(events.empty());

  bool saw_process_name = false, saw_thread_name = false;
  bool saw_begin = false, saw_end = false, saw_instant = false,
       saw_counter = false;
  for (const JsonValue& ev : events) {
    const std::string& ph = ev.at("ph").string();
    if (ph == "M") {
      if (ev.at("name").string() == "process_name") saw_process_name = true;
      if (ev.at("name").string() == "thread_name" &&
          ev.at("args").at("name").string() == "export test")
        saw_thread_name = true;
      continue;
    }
    // Every non-metadata event carries the required timing/placement fields.
    EXPECT_TRUE(ev.contains("ts"));
    EXPECT_TRUE(ev.contains("pid"));
    EXPECT_TRUE(ev.contains("tid"));
    if (ph == "B" && ev.at("name").string() == "export.scope")
      saw_begin = true;
    if (ph == "E") saw_end = true;
    if (ph == "i" && ev.at("name").string() == "export.instant") {
      saw_instant = true;
      EXPECT_EQ(ev.at("s").string(), "t");
    }
    if (ph == "C" && ev.at("name").string() == "export.counter") {
      saw_counter = true;
      EXPECT_EQ(ev.at("args").at("value").number(), 42.5);
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST_F(TraceTest, SchedulerJobsExportFlowChainsAndMatchedSlices) {
  Telemetry::instance().reset();
  Telemetry::set_enabled(true);
  constexpr int kJobs = 5;
  {
    sched::Scheduler scheduler;
    scheduler.add_pool(core::AcceleratorKind::kClassicalCpu, 2,
                       core::CpuAccelerator::factory());
    std::vector<std::future<core::JobResult>> futures;
    for (int j = 0; j < kJobs; ++j)
      futures.push_back(scheduler.submit(
          core::Job{"flow-job-" + std::to_string(j),
                    core::AcceleratorKind::kClassicalCpu, [] {
                      core::JobResult r;
                      r.ok = true;
                      return r;
                    }}));
    for (auto& f : futures) EXPECT_TRUE(f.get().ok);
    scheduler.shutdown();  // joins the workers: exporter sees quiescence
  }

  const auto events = exported_events();
  ASSERT_FALSE(events.empty());

  // Flow chain per job seq: exactly one s (submit), one t (dequeue), one f
  // (completion), and the f carries the binding-point marker Perfetto needs.
  std::map<std::string, std::array<int, 3>> flows;  // id -> {s, t, f}
  std::map<std::string, int> open_slices;           // "tid/name" -> depth
  bool saw_worker_thread = false, saw_depth_counter = false;
  for (const JsonValue& ev : events) {
    const std::string& ph = ev.at("ph").string();
    if (ph == "M") {
      if (ev.at("name").string() == "thread_name" &&
          ev.at("args").at("name").string().rfind("classical-cpu worker", 0) ==
              0)
        saw_worker_thread = true;
      continue;
    }
    if (ph == "C" &&
        ev.at("name").string() == "sched.queue_depth.classical-cpu")
      saw_depth_counter = true;
    if (ph == "s") ++flows[ev.at("id").string()][0];
    if (ph == "t") ++flows[ev.at("id").string()][1];
    if (ph == "f") {
      ++flows[ev.at("id").string()][2];
      EXPECT_EQ(ev.at("bp").string(), "e");
    }
    const std::string key =
        core::json_number(ev.at("tid").number()) + "/" +
        (ev.contains("name") ? ev.at("name").string() : "");
    if (ph == "B") ++open_slices[key];
    if (ph == "E") --open_slices[key];
  }

  EXPECT_TRUE(saw_worker_thread);
  EXPECT_TRUE(saw_depth_counter);
  EXPECT_EQ(flows.size(), static_cast<std::size_t>(kJobs));
  for (const auto& [id, counts] : flows) {
    EXPECT_EQ(counts[0], 1) << "flow s for job seq " << id;
    EXPECT_EQ(counts[1], 1) << "flow t for job seq " << id;
    EXPECT_EQ(counts[2], 1) << "flow f for job seq " << id;
  }
  // Every B has its E: no slice left open on any thread.
  for (const auto& [key, depth] : open_slices)
    EXPECT_EQ(depth, 0) << "unbalanced slice " << key;
}

TEST_F(TraceTest, ResetDropsEventsAndReregistersThreads) {
  TELEM_TRACE_INSTANT("before.reset");
  ASSERT_EQ(TraceRecorder::instance().snapshot().size(), 1u);
  TraceRecorder::instance().reset();
  EXPECT_TRUE(TraceRecorder::instance().snapshot().empty());
  TELEM_TRACE_INSTANT("after.reset");
  const auto timelines = TraceRecorder::instance().snapshot();
  ASSERT_EQ(timelines.size(), 1u);
  ASSERT_EQ(timelines[0].events.size(), 1u);
  EXPECT_STREQ(timelines[0].events[0].name, "after.reset");
}

}  // namespace
}  // namespace rebooting::telemetry
