#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "core/table.h"

namespace rebooting::telemetry {
namespace {

/// Every test starts from a clean, enabled telemetry state and leaves the
/// process-wide instance disabled and empty for the next suite.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry::instance().reset();
    Telemetry::set_enabled(true);
  }
  void TearDown() override {
    Telemetry::set_enabled(false);
    Telemetry::instance().reset();
  }
};

// --- Minimal structural JSON checker (writer-side repo: no parser to reuse).
// Validates brace/bracket balance outside strings and legal string escapes —
// enough to catch unbalanced emission and broken quoting.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (ch == '\\') escaped = true;
      else if (ch == '"') in_string = false;
      else if (static_cast<unsigned char>(ch) < 0x20) return false;
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != ch) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(TelemetryTest, SpanNestingBuildsTree) {
  {
    TELEM_SPAN("outer");
    {
      TELEM_SPAN("inner");
    }
    {
      TELEM_SPAN("inner");
    }
  }
  const SpanNode& root = Telemetry::instance().root();
  const SpanNode* outer = root.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->stats().count, 1u);
  const SpanNode* inner = outer->find("inner");
  ASSERT_NE(inner, nullptr);
  // Two same-named sibling spans aggregate into one node.
  EXPECT_EQ(inner->stats().count, 2u);
  EXPECT_EQ(outer->children().size(), 1u);
  // "inner" never appears at top level.
  EXPECT_EQ(root.find("inner"), nullptr);
}

TEST_F(TelemetryTest, SpanStatsAggregateMinMaxTotal) {
  for (int i = 0; i < 5; ++i) {
    TELEM_SPAN("work");
  }
  const SpanNode* node = Telemetry::instance().root().find("work");
  ASSERT_NE(node, nullptr);
  const SpanStats& s = node->stats();
  EXPECT_EQ(s.count, 5u);
  EXPECT_GE(s.total_seconds, 0.0);
  EXPECT_LE(s.min_seconds, s.max_seconds);
  EXPECT_GE(s.total_seconds, s.max_seconds);
  EXPECT_LE(s.total_seconds, 5.0 * s.max_seconds + 1e-12);
}

TEST_F(TelemetryTest, SiblingsKeepEntryOrder) {
  {
    TELEM_SPAN("first");
  }
  {
    TELEM_SPAN("second");
  }
  const auto& children = Telemetry::instance().root().children();
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0]->name(), "first");
  EXPECT_EQ(children[1]->name(), "second");
}

TEST_F(TelemetryTest, DisabledModeRecordsNothing) {
  Telemetry::set_enabled(false);
  {
    TELEM_SPAN("ghost");
    TELEM_COUNT("ghost.counter");
    TELEM_GAUGE("ghost.gauge", 1.0);
    TELEM_RECORD("ghost.histogram", 1.0);
  }
  auto& telem = Telemetry::instance();
  EXPECT_TRUE(telem.root().children().empty());
  EXPECT_EQ(telem.metrics().counter("ghost.counter"), 0.0);
  EXPECT_FALSE(telem.metrics().gauge("ghost.gauge").has_value());
  EXPECT_EQ(telem.metrics().histogram("ghost.histogram").count, 0u);
}

TEST_F(TelemetryTest, EnableMidSpanDoesNotCorruptTree) {
  Telemetry::set_enabled(false);
  {
    TELEM_SPAN("started-disabled");  // no-op guard
    Telemetry::set_enabled(true);
    TELEM_SPAN("started-enabled");
  }
  const auto& root = Telemetry::instance().root();
  EXPECT_EQ(root.find("started-disabled"), nullptr);
  ASSERT_NE(root.find("started-enabled"), nullptr);
  EXPECT_EQ(root.find("started-enabled")->stats().count, 1u);
}

TEST_F(TelemetryTest, CountersAccumulate) {
  TELEM_COUNT("hits");
  TELEM_COUNT("hits", 2.5);
  TELEM_COUNT("other", 7.0);
  auto& metrics = Telemetry::instance().metrics();
  EXPECT_DOUBLE_EQ(metrics.counter("hits"), 3.5);
  EXPECT_DOUBLE_EQ(metrics.counter("other"), 7.0);
  EXPECT_DOUBLE_EQ(metrics.counter("never"), 0.0);
}

TEST_F(TelemetryTest, GaugesOverwrite) {
  TELEM_GAUGE("level", 1.0);
  TELEM_GAUGE("level", -4.0);
  const auto g = Telemetry::instance().metrics().gauge("level");
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(*g, -4.0);
}

TEST_F(TelemetryTest, HistogramStatsAndBuckets) {
  auto& metrics = Telemetry::instance().metrics();
  const double values[] = {0.001, 0.002, 0.5, 3.0, 1000.0};
  for (const double v : values) metrics.record("lat", v);
  const HistogramSnapshot h = metrics.histogram("lat");
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 1003.503);
  EXPECT_DOUBLE_EQ(h.min, 0.001);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_NEAR(h.mean(), 1003.503 / 5.0, 1e-12);

  std::size_t bucket_total = 0;
  Real prev_bound = -1.0;
  for (const auto& [bound, count] : h.buckets) {
    EXPECT_GT(bound, prev_bound);  // bounds strictly increasing
    prev_bound = bound;
    bucket_total += count;
  }
  EXPECT_EQ(bucket_total, 5u);

  // Quantiles stay inside the recorded range and are monotone in q.
  const Real p50 = h.quantile(0.5);
  const Real p99 = h.quantile(0.99);
  EXPECT_GE(p50, h.min);
  EXPECT_LE(p99, h.max);
  EXPECT_LE(p50, p99);
}

TEST_F(TelemetryTest, QuantileZeroReturnsExactMin) {
  auto& metrics = Telemetry::instance().metrics();
  // Values span several buckets so q = 0 cannot be satisfied by bucket
  // bounds alone — it must return the recorded minimum exactly.
  for (const double v : {0.003, 0.07, 1.5, 900.0}) metrics.record("lat", v);
  const HistogramSnapshot h = metrics.histogram("lat");
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.003);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 900.0);
}

TEST_F(TelemetryTest, QuantileSingleBucketInterpolatesExactly) {
  auto& metrics = Telemetry::instance().metrics();
  // 1.1 and 1.9 share the (1, 2] log2 bucket: a bound-based estimate would
  // answer 2.0 (the bound, clamped to max -> 1.9) for every q. The
  // single-bucket path interpolates [min, max] instead.
  metrics.record("lat", 1.1);
  metrics.record("lat", 1.9);
  const HistogramSnapshot h = metrics.histogram("lat");
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.1);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.9);

  // Degenerate single-value histogram: every quantile is that value.
  metrics.record("point", 2.0);
  const HistogramSnapshot p = metrics.histogram("point");
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.99), 2.0);
}

TEST_F(TelemetryTest, HistogramBucketIndexEdges) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  // A value equal to a power of two lands in the bucket it bounds.
  const std::size_t i1 = Histogram::bucket_index(1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(i1), 1.0);
  // Values beyond the covered range clamp into the edge buckets.
  EXPECT_EQ(Histogram::bucket_index(1e-300), 1u);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBuckets - 1);
}

TEST_F(TelemetryTest, JsonExportRoundTrip) {
  {
    TELEM_SPAN("engine.phase\"quoted\"");  // exercises string escaping
    TELEM_COUNT("engine.ops", 12.0);
    TELEM_GAUGE("engine.level", 0.5);
    TELEM_RECORD("engine.lat", 2.0);
  }
  const std::string json = Telemetry::instance().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"engine.phase\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.ops\":12"), std::string::npos);
  EXPECT_NE(json.find("\"engine.level\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Quantile columns: p50/p90/p99 all present per histogram.
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p90\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  // File round-trip: write_json produces the same document on disk.
  const std::string path =
      ::testing::TempDir() + "rebooting_telemetry_test.json";
  ASSERT_TRUE(Telemetry::instance().write_json(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string from_disk = buf.str();
  if (!from_disk.empty() && from_disk.back() == '\n') from_disk.pop_back();
  EXPECT_EQ(from_disk, json);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, ReportRendersSpansAndMetrics) {
  {
    TELEM_SPAN("alpha");
    TELEM_SPAN("beta");
    TELEM_COUNT("alpha.ops", 3.0);
    TELEM_RECORD("alpha.lat", 1.5);
  }
  const std::string report = Telemetry::instance().report();
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("  beta"), std::string::npos);  // indented child
  EXPECT_NE(report.find("alpha.ops"), std::string::npos);
  EXPECT_NE(report.find("Histograms"), std::string::npos);
  EXPECT_NE(report.find("p90"), std::string::npos);  // quantile column
}

TEST_F(TelemetryTest, ResetClearsEverything) {
  {
    TELEM_SPAN("transient");
    TELEM_COUNT("transient.ops");
  }
  auto& telem = Telemetry::instance();
  ASSERT_FALSE(telem.root().children().empty());
  telem.reset();
  EXPECT_TRUE(telem.root().children().empty());
  EXPECT_EQ(telem.metrics().counter("transient.ops"), 0.0);
}

TEST_F(TelemetryTest, ThreadsBuildIndependentBranches) {
  constexpr int kThreads = 4;
  constexpr int kIters = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        TELEM_SPAN("worker");
        TELEM_SPAN("task");
        TELEM_COUNT("work.items");
      }
    });
  }
  for (auto& w : workers) w.join();
  const SpanNode* worker = Telemetry::instance().root().find("worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->stats().count,
            static_cast<std::size_t>(kThreads * kIters));
  const SpanNode* task = worker->find("task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->stats().count, static_cast<std::size_t>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(Telemetry::instance().metrics().counter("work.items"),
                   static_cast<Real>(kThreads * kIters));
}

TEST_F(TelemetryTest, HostSystemMergesJobMetrics) {
  class FakeAccelerator final : public core::Accelerator {
   public:
    std::string name() const override { return "fake"; }
    core::AcceleratorKind kind() const override {
      return core::AcceleratorKind::kClassicalCpu;
    }
    std::vector<std::string> stack_layers() const override { return {"app"}; }
  };

  core::HostSystem host;
  host.register_accelerator(std::make_shared<FakeAccelerator>());
  for (int i = 1; i <= 2; ++i) {
    core::Job job;
    job.name = "job-" + std::to_string(i);
    job.kind = core::AcceleratorKind::kClassicalCpu;
    job.payload = [i] {
      core::JobResult r;
      r.ok = true;
      r.metrics["compile.gates"] = 10.0 * i;
      TELEM_SPAN("engine.inner");
      return r;
    };
    host.submit(job);
  }

  auto& telem = Telemetry::instance();
  // Job metrics merged as counters (summed across jobs, same as
  // HostSystem::total_metric).
  EXPECT_DOUBLE_EQ(telem.metrics().counter("compile.gates"), 30.0);
  EXPECT_DOUBLE_EQ(telem.metrics().counter("host.jobs"), 2.0);
  EXPECT_EQ(telem.metrics().histogram("host.job_wall_seconds").count, 2u);

  // The payload's span nests under the per-job root span.
  const SpanNode* root_span =
      telem.root().find("host.classical-cpu");
  ASSERT_NE(root_span, nullptr);
  EXPECT_EQ(root_span->stats().count, 2u);
  EXPECT_NE(root_span->find("engine.inner"), nullptr);

  // describe() carries the telemetry rollup while enabled.
  EXPECT_NE(host.describe().find("Telemetry rollup"), std::string::npos);
  Telemetry::set_enabled(false);
  EXPECT_EQ(host.describe().find("Telemetry rollup"), std::string::npos);
}

TEST_F(TelemetryTest, HostSystemCountsFailedJobs) {
  class FakeAccelerator final : public core::Accelerator {
   public:
    std::string name() const override { return "fake"; }
    core::AcceleratorKind kind() const override {
      return core::AcceleratorKind::kClassicalCpu;
    }
    std::vector<std::string> stack_layers() const override { return {"app"}; }
  };
  core::HostSystem host;
  host.register_accelerator(std::make_shared<FakeAccelerator>());
  core::Job job;
  job.name = "failing";
  job.kind = core::AcceleratorKind::kClassicalCpu;
  job.payload = [] { return core::JobResult{}; };
  host.submit(job);
  EXPECT_DOUBLE_EQ(Telemetry::instance().metrics().counter("host.jobs_failed"),
                   1.0);
}

TEST_F(TelemetryTest, TableToJsonRows) {
  core::Table table({"name", "count", "value"}, 3);
  table.add_row({std::string("a,b\"c"), std::int64_t{42}, 1.5});
  table.add_row({std::string("plain"), std::int64_t{-1}, 0.25});
  const std::string json = table.to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_EQ(json.find("["), 0u);
  EXPECT_NE(json.find("\"name\":\"a,b\\\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":42"), std::string::npos);
  EXPECT_NE(json.find("\"value\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\":-1"), std::string::npos);
}

}  // namespace
}  // namespace rebooting::telemetry
