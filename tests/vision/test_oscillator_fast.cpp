#include "vision/oscillator_fast.h"

#include <gtest/gtest.h>

#include "vision/image.h"

namespace rebooting::vision {
namespace {

using oscillator::ComparatorConfig;
using oscillator::OscillatorComparator;

const OscillatorComparator& shared_comparator() {
  static const OscillatorComparator* cmp = [] {
    ComparatorConfig cfg;
    cfg.calibration_points = 8;
    cfg.sim.duration = 60e-6;
    cfg.sim.dt = 1e-9;
    cfg.sim.sample_stride = 4;
    return new OscillatorComparator(cfg);
  }();
  return *cmp;
}

Image corner_image() {
  Image img(32, 32, 0.2);
  for (std::size_t y = 16; y < 32; ++y)
    for (std::size_t x = 16; x < 32; ++x) img.at(x, y) = 0.8;
  return img;
}

TEST(OscillatorFast, DetectsCornerPixel) {
  const OscillatorFastDetector det(shared_comparator(), {});
  EXPECT_TRUE(det.is_corner(corner_image(), 16, 16));
}

TEST(OscillatorFast, RejectsFlatAndEdgePixels) {
  const OscillatorFastDetector det(shared_comparator(), {});
  const Image img = corner_image();
  EXPECT_FALSE(det.is_corner(img, 8, 8));
  EXPECT_FALSE(det.is_corner(img, 24, 24));
  EXPECT_FALSE(det.is_corner(img, 16, 26));
}

TEST(OscillatorFast, AgreesWithSoftwareFastOnScenes) {
  core::Rng rng(19);
  const Scene scene = make_rectangle_scene(rng, 80, 80, 3, 0.6);
  const auto sw = fast_detect(scene.image, FastOptions{});
  const OscillatorFastDetector det(shared_comparator(), {});
  const auto osc = det.detect(scene.image);
  std::vector<Pixel> sw_px, osc_px;
  for (const auto& d : sw) sw_px.push_back(d.position);
  for (const auto& d : osc) osc_px.push_back(d.position);
  const MatchScore agree = score_detections(osc_px, sw_px, 2.0);
  EXPECT_GT(agree.recall, 0.8);
  EXPECT_GT(agree.precision, 0.8);
}

TEST(OscillatorFast, StatsCountComparisons) {
  const OscillatorFastDetector det(shared_comparator(), {});
  OscillatorFastStats stats;
  det.is_corner(corner_image(), 16, 16, &stats);
  EXPECT_EQ(stats.step1_comparisons, 16u);
  EXPECT_EQ(stats.candidates_after_step1, 1u);
  EXPECT_GT(stats.step2_comparisons, 0u);  // suppression pass ran
}

TEST(OscillatorFast, MixedArcRejectedBySecondStep) {
  // A pixel whose ring contains both much-brighter and much-darker runs that
  // only together form >= 9 contiguous "differs" pixels: the directionless
  // step-1 norm accepts it, the step-2 adjacency check must kill it.
  Image img(16, 16, 0.5);
  const auto& ring = bresenham_ring();
  for (std::size_t i = 0; i < 16; ++i) {
    const int x = 8 + ring[i].x;
    const int y = 8 + ring[i].y;
    // First 5 ring pixels bright, next 5 dark, rest neutral.
    Real v = 0.5;
    if (i < 5) v = 0.95;
    else if (i < 10) v = 0.05;
    img.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) = v;
  }
  OscillatorFastOptions with_fps;
  OscillatorFastOptions without_fps;
  without_fps.false_positive_suppression = false;
  const OscillatorFastDetector strict(shared_comparator(), with_fps);
  const OscillatorFastDetector loose(shared_comparator(), without_fps);
  OscillatorFastStats stats;
  EXPECT_FALSE(strict.is_corner(img, 8, 8, &stats));
  EXPECT_EQ(stats.rejected_by_step2, 1u);
  EXPECT_TRUE(loose.is_corner(img, 8, 8));
  // Software FAST (direction-aware) agrees with the suppressed verdict.
  EXPECT_FALSE(fast_segment_test(img, 8, 8, FastOptions{}));
}

TEST(OscillatorFast, SuppressionNeverIncreasesDetections) {
  core::Rng rng(23);
  const Scene scene = make_polygon_scene(rng, 64, 64, 3, 0.6, 0.02);
  OscillatorFastOptions with_fps;
  OscillatorFastOptions without_fps;
  without_fps.false_positive_suppression = false;
  const OscillatorFastDetector strict(shared_comparator(), with_fps);
  const OscillatorFastDetector loose(shared_comparator(), without_fps);
  EXPECT_LE(strict.detect(scene.image).size(),
            loose.detect(scene.image).size());
}

}  // namespace
}  // namespace rebooting::vision
