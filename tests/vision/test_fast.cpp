#include "vision/fast.h"

#include <gtest/gtest.h>

#include "core/random.h"
#include "vision/image.h"

namespace rebooting::vision {
namespace {

TEST(Ring, SixteenDistinctRadiusThreeOffsets) {
  const auto& ring = bresenham_ring();
  ASSERT_EQ(ring.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    // Euclidean radius ~3: the Bresenham circle uses x^2+y^2 in {8, 9, 10}.
    const int r2 = ring[i].x * ring[i].x + ring[i].y * ring[i].y;
    EXPECT_GE(r2, 8);
    EXPECT_LE(r2, 10);
    for (std::size_t j = i + 1; j < 16; ++j) EXPECT_NE(ring[i], ring[j]);
  }
}

TEST(Ring, ConsecutiveOffsetsAreNeighbours) {
  const auto& ring = bresenham_ring();
  for (std::size_t i = 0; i < 16; ++i) {
    const Pixel& a = ring[i];
    const Pixel& b = ring[(i + 1) % 16];
    EXPECT_LE(std::abs(a.x - b.x), 1);
    EXPECT_LE(std::abs(a.y - b.y), 1);
  }
}

TEST(ContiguousArc, DetectsWrapAround) {
  std::array<bool, 16> flags{};
  // 12..15 and 0..4: a wrap-around run of 9.
  for (const std::size_t i : {12u, 13u, 14u, 15u, 0u, 1u, 2u, 3u, 4u})
    flags[i] = true;
  EXPECT_TRUE(has_contiguous_arc(flags, 9));
  EXPECT_FALSE(has_contiguous_arc(flags, 10));
}

TEST(ContiguousArc, BrokenRunRejected) {
  std::array<bool, 16> flags{};
  for (std::size_t i = 0; i < 9; ++i) flags[i] = true;
  flags[4] = false;  // break the run
  EXPECT_FALSE(has_contiguous_arc(flags, 9));
  EXPECT_TRUE(has_contiguous_arc(flags, 4));
}

TEST(ContiguousArc, EdgeCases) {
  std::array<bool, 16> all{};
  all.fill(true);
  EXPECT_TRUE(has_contiguous_arc(all, 16));
  EXPECT_FALSE(has_contiguous_arc(all, 17));
  std::array<bool, 16> none{};
  EXPECT_FALSE(has_contiguous_arc(none, 1));
  EXPECT_TRUE(has_contiguous_arc(none, 0));
}

/// A synthetic corner: bright quadrant on dark background.
Image corner_image() {
  Image img(32, 32, 0.2);
  for (std::size_t y = 16; y < 32; ++y)
    for (std::size_t x = 16; x < 32; ++x) img.at(x, y) = 0.8;
  return img;
}

TEST(SegmentTest, DetectsCornerOfBrightQuadrant) {
  const Image img = corner_image();
  FastOptions opts;
  EXPECT_TRUE(fast_segment_test(img, 16, 16, opts));
}

TEST(SegmentTest, RejectsFlatRegionAndEdgeMidpoint) {
  const Image img = corner_image();
  FastOptions opts;
  EXPECT_FALSE(fast_segment_test(img, 8, 8, opts));    // flat dark
  EXPECT_FALSE(fast_segment_test(img, 24, 24, opts));  // flat bright
  // Middle of a straight edge: only ~8 contiguous differing pixels < 9.
  EXPECT_FALSE(fast_segment_test(img, 16, 26, opts));
}

TEST(SegmentTest, ThresholdGatesDetection) {
  const Image img = corner_image();
  FastOptions opts;
  opts.threshold = 0.9;  // larger than the contrast
  EXPECT_FALSE(fast_segment_test(img, 16, 16, opts));
}

TEST(CornerScore, PositiveOnlyOnCorners) {
  const Image img = corner_image();
  FastOptions opts;
  EXPECT_GT(fast_corner_score(img, 16, 16, opts), 0.0);
  EXPECT_DOUBLE_EQ(fast_corner_score(img, 8, 8, opts), 0.0);
}

TEST(Detect, FindsAllRectangleCorners) {
  core::Rng rng(11);
  const Scene scene = make_rectangle_scene(rng, 96, 96, 3, 0.6);
  const auto detections = fast_detect(scene.image, FastOptions{});
  const MatchScore score =
      score_detections([&] {
        std::vector<Pixel> px;
        for (const auto& d : detections) px.push_back(d.position);
        return px;
      }(), scene.true_corners);
  EXPECT_GT(score.recall, 0.95);
  EXPECT_GT(score.precision, 0.9);
}

TEST(Detect, NonMaxSuppressionReducesDetections) {
  core::Rng rng(13);
  const Scene scene = make_rectangle_scene(rng, 96, 96, 3, 0.6);
  FastOptions with_nms;
  FastOptions without_nms;
  without_nms.non_max_suppression = false;
  const auto d1 = fast_detect(scene.image, with_nms);
  const auto d2 = fast_detect(scene.image, without_nms);
  EXPECT_LE(d1.size(), d2.size());
}

TEST(Detect, CountsCompareOps) {
  const Image img(32, 32, 0.5);
  std::size_t ops = 0;
  fast_detect(img, FastOptions{}, &ops);
  // (32-6)^2 interior pixels x 16 ring comparisons.
  EXPECT_EQ(ops, 26u * 26u * 16u);
}

TEST(Detect, NoCornersOnUniformImage) {
  const Image img(48, 48, 0.5);
  EXPECT_TRUE(fast_detect(img, FastOptions{}).empty());
}

class ArcLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArcLengthSweep, ShorterArcsDetectAtLeastAsMuch) {
  // FAST-N monotonicity: any FAST-12 corner is also a FAST-9 corner.
  core::Rng rng(17);
  const Scene scene = make_polygon_scene(rng, 96, 96, 3);
  FastOptions strict;
  strict.arc_length = GetParam();
  FastOptions loose;
  loose.arc_length = GetParam() - 2;
  strict.non_max_suppression = loose.non_max_suppression = false;
  const auto ds = fast_detect(scene.image, strict);
  const auto dl = fast_detect(scene.image, loose);
  EXPECT_GE(dl.size(), ds.size());
}

INSTANTIATE_TEST_SUITE_P(ArcLengths, ArcLengthSweep,
                         ::testing::Values(9u, 10u, 12u));

}  // namespace
}  // namespace rebooting::vision
