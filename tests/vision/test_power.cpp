#include "vision/power.h"

#include <gtest/gtest.h>

namespace rebooting::vision {
namespace {

using oscillator::ComparatorConfig;
using oscillator::OscillatorComparator;

const OscillatorComparator& shared_comparator() {
  static const OscillatorComparator* cmp = [] {
    ComparatorConfig cfg;
    cfg.calibration_points = 6;
    cfg.sim.duration = 60e-6;
    cfg.sim.dt = 1e-9;
    cfg.sim.sample_stride = 4;
    return new OscillatorComparator(cfg);
  }();
  return *cmp;
}

TEST(CmosInventory, LaneAndBlockSizes) {
  const auto lane = cmos_comparison_lane();
  const auto block = cmos_fast_block();
  EXPECT_GT(lane.nand2_equivalents(), 100.0);
  // Block is 16 lanes plus support.
  EXPECT_GT(block.nand2_equivalents(), 16.0 * lane.nand2_equivalents());
}

TEST(PowerComparison, OscillatorBlockNearPaperValue) {
  const auto report = compare_fast_block_power(shared_comparator());
  // Paper: 0.936 mW. Same order, within 2x (device constants are literature
  // ranges, not fitted to the authors' film).
  EXPECT_GT(report.oscillator_block_watts, 0.4e-3);
  EXPECT_LT(report.oscillator_block_watts, 2.0e-3);
}

TEST(PowerComparison, CmosBlockNearPaperValue) {
  const auto report = compare_fast_block_power(shared_comparator());
  // Paper: 3 mW at 32 nm.
  EXPECT_GT(report.cmos_block_watts, 1.0e-3);
  EXPECT_LT(report.cmos_block_watts, 8.0e-3);
}

TEST(PowerComparison, OscillatorWinsAsInPaper) {
  const auto report = compare_fast_block_power(shared_comparator());
  EXPECT_GT(report.power_ratio, 1.5);  // paper: ~3.2x
  EXPECT_DOUBLE_EQ(report.cmos_block_watts,
                   report.cmos_dynamic_watts + report.cmos_leakage_watts);
}

TEST(PowerComparison, PerComparisonEnergiesPositive) {
  const auto report = compare_fast_block_power(shared_comparator());
  EXPECT_GT(report.oscillator_energy_per_cmp, 0.0);
  EXPECT_GT(report.cmos_energy_per_cmp, 0.0);
}

TEST(FrameEnergy, ScalesWithComparisonCount) {
  OscillatorFastStats small;
  small.step1_comparisons = 16 * 100;
  OscillatorFastStats large;
  large.step1_comparisons = 16 * 1000;
  const auto e_small = frame_energy(shared_comparator(), small);
  const auto e_large = frame_energy(shared_comparator(), large);
  EXPECT_NEAR(e_large.oscillator_joules / e_small.oscillator_joules, 10.0,
              1e-6);
  EXPECT_NEAR(e_large.cmos_joules / e_small.cmos_joules, 10.0, 1e-6);
}

TEST(FrameEnergy, CmosIsFasterButHungrier) {
  OscillatorFastStats stats;
  stats.step1_comparisons = 16 * 500;
  const auto e = frame_energy(shared_comparator(), stats);
  // The CMOS block at 1 GHz finishes the frame far sooner than the MHz-scale
  // analog readout...
  EXPECT_LT(e.cmos_seconds, e.oscillator_seconds);
  // ...but the energy ordering depends on power x time; just check both are
  // positive and finite here (the bench reports the actual numbers).
  EXPECT_GT(e.cmos_joules, 0.0);
  EXPECT_GT(e.oscillator_joules, 0.0);
}

}  // namespace
}  // namespace rebooting::vision
