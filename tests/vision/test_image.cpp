#include "vision/image.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace rebooting::vision {
namespace {

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, 0.5);
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_DOUBLE_EQ(img.at(2, 1), 0.5);
  img.at(2, 1) = 0.9;
  EXPECT_DOUBLE_EQ(img.at(2, 1), 0.9);
}

TEST(Image, ZeroDimensionThrows) {
  EXPECT_THROW(Image(0, 5), std::invalid_argument);
}

TEST(Image, ClampedAccessAtBorders) {
  Image img(3, 3);
  img.at(0, 0) = 0.7;
  img.at(2, 2) = 0.3;
  EXPECT_DOUBLE_EQ(img.at_clamped(-5, -5), 0.7);
  EXPECT_DOUBLE_EQ(img.at_clamped(10, 10), 0.3);
}

TEST(Image, InBounds) {
  Image img(3, 2);
  EXPECT_TRUE(img.in_bounds(0, 0));
  EXPECT_TRUE(img.in_bounds(2, 1));
  EXPECT_FALSE(img.in_bounds(3, 0));
  EXPECT_FALSE(img.in_bounds(0, -1));
}

TEST(Image, NoiseStaysInRange) {
  core::Rng rng(1);
  Image img(16, 16, 0.5);
  img.add_noise(rng, 0.5);
  for (const Real p : img.pixels()) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Image, PgmRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "rebooting_test.pgm").string();
  Image img(5, 4);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 5; ++x)
      img.at(x, y) = static_cast<Real>(x + y) / 8.0;
  img.save_pgm(path);
  const Image loaded = Image::load_pgm(path);
  ASSERT_EQ(loaded.width(), 5u);
  ASSERT_EQ(loaded.height(), 4u);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 5; ++x)
      EXPECT_NEAR(loaded.at(x, y), img.at(x, y), 1.0 / 255.0);
  std::remove(path.c_str());
}

TEST(Image, LoadRejectsMissingFile) {
  EXPECT_THROW(Image::load_pgm("/nonexistent/file.pgm"), std::runtime_error);
}

TEST(RectangleScene, CornersMatchRectangles) {
  core::Rng rng(5);
  const Scene scene = make_rectangle_scene(rng, 128, 128, 4);
  EXPECT_EQ(scene.true_corners.size() % 4, 0u);
  EXPECT_GT(scene.true_corners.size(), 0u);
  // Every corner pixel must be bright (it belongs to a rectangle).
  for (const Pixel& c : scene.true_corners) {
    EXPECT_GT(scene.image.at(static_cast<std::size_t>(c.x),
                             static_cast<std::size_t>(c.y)),
              0.5);
  }
}

TEST(PolygonScene, ProducesCorners) {
  core::Rng rng(7);
  const Scene scene = make_polygon_scene(rng, 128, 128, 3);
  EXPECT_GE(scene.true_corners.size(), 9u);  // >= 3 vertices per polygon
}

TEST(CheckerboardScene, LatticeCornersCounted) {
  const Scene scene = make_checkerboard_scene(64, 64, 16);
  // Interior lattice crossings: 3 x 3.
  EXPECT_EQ(scene.true_corners.size(), 9u);
  EXPECT_DOUBLE_EQ(scene.image.at(0, 0), 0.2);
  EXPECT_DOUBLE_EQ(scene.image.at(16, 0), 0.8);
}

TEST(CheckerboardScene, ZeroCellThrows) {
  EXPECT_THROW(make_checkerboard_scene(32, 32, 0), std::invalid_argument);
}

TEST(Score, PerfectDetection) {
  const std::vector<Pixel> gt{{10, 10}, {20, 20}};
  const MatchScore s = score_detections(gt, gt, 1.0);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
}

TEST(Score, NearMissWithinRadiusCounts) {
  const std::vector<Pixel> gt{{10, 10}};
  const std::vector<Pixel> det{{12, 11}};
  EXPECT_DOUBLE_EQ(score_detections(det, gt, 3.0).recall, 1.0);
  EXPECT_DOUBLE_EQ(score_detections(det, gt, 1.0).recall, 0.0);
}

TEST(Score, PrecisionPenalizesExtraDetections) {
  const std::vector<Pixel> gt{{10, 10}};
  const std::vector<Pixel> det{{10, 10}, {50, 50}};
  const MatchScore s = score_detections(det, gt, 2.0);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(Score, EmptyDetectionsZeroScores) {
  const std::vector<Pixel> gt{{1, 1}};
  const MatchScore s = score_detections({}, gt, 2.0);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1(), 0.0);
}

}  // namespace
}  // namespace rebooting::vision
