// Cross-module integration tests: the Fig. 1 heterogeneous host dispatching
// real jobs to all three paradigm engines, and end-to-end flows that cross
// module boundaries (vision -> oscillator, Ising -> CNF -> DMM, circuit ->
// QISA -> compiler -> device).
#include <gtest/gtest.h>

#include <memory>

#include "core/accelerator.h"
#include "memcomputing/accelerator.h"
#include "memcomputing/dmm.h"
#include "memcomputing/ising.h"
#include "memcomputing/sat.h"
#include "memcomputing/solg.h"
#include "oscillator/comparator.h"
#include "quantum/algorithms.h"
#include "quantum/qisa.h"
#include "quantum/runtime.h"
#include "vision/oscillator_fast.h"
#include "vision/power.h"

namespace rebooting {
namespace {

using core::AcceleratorKind;
using core::HostSystem;
using core::Job;
using core::JobResult;

oscillator::ComparatorConfig small_comparator_config() {
  oscillator::ComparatorConfig cfg;
  cfg.calibration_points = 6;
  cfg.sim.duration = 60e-6;
  cfg.sim.dt = 1e-9;
  cfg.sim.sample_stride = 4;
  return cfg;
}

TEST(Integration, HeterogeneousHostRunsAllThreeParadigms) {
  HostSystem host;
  auto quantum = std::make_shared<quantum::QuantumAccelerator>(
      quantum::QuantumDeviceConfig{.topology = quantum::Topology::line(4)});
  auto osc = std::make_shared<oscillator::OscillatorAccelerator>(
      small_comparator_config());
  auto mem = std::make_shared<memcomputing::MemcomputingAccelerator>();
  host.register_accelerator(quantum);
  host.register_accelerator(osc);
  host.register_accelerator(mem);

  core::Rng rng(42);

  // Quantum job: Bell pair through the full stack.
  Job qjob;
  qjob.name = "bell-pair";
  qjob.kind = AcceleratorKind::kQuantum;
  qjob.payload = [&] {
    quantum::Circuit bell(4);
    bell.h(0).cx(0, 3);
    const auto res = quantum->run(bell, 500, rng);
    JobResult jr;
    jr.ok = true;
    jr.metrics["swaps"] = static_cast<core::Real>(res.compile_report.swaps_inserted);
    jr.metrics["correlated"] =
        res.frequency(0b0000) + res.frequency(0b1001);
    return jr;
  };
  const JobResult qres = host.submit(qjob);
  EXPECT_TRUE(qres.ok);
  EXPECT_NEAR(qres.metrics.at("correlated"), 1.0, 1e-9);

  // Oscillator job: one analog comparison.
  Job ojob;
  ojob.name = "pixel-compare";
  ojob.kind = AcceleratorKind::kOscillator;
  ojob.payload = [&] {
    JobResult jr;
    jr.ok = true;
    jr.metrics["d_far"] = osc->comparator().distance(0.1, 0.9);
    jr.metrics["d_eq"] = osc->comparator().distance(0.4, 0.4);
    return jr;
  };
  const JobResult ores = host.submit(ojob);
  EXPECT_GT(ores.metrics.at("d_far"), ores.metrics.at("d_eq"));

  // Memcomputing job: solve a planted 3-SAT instance.
  Job mjob;
  mjob.name = "planted-3sat";
  mjob.kind = AcceleratorKind::kMemcomputing;
  mjob.payload = [&] {
    const auto inst = memcomputing::planted_ksat(rng, 40, 170, 3);
    const auto r = memcomputing::DmmSolver(inst.cnf, {}).solve(rng);
    JobResult jr;
    jr.ok = r.satisfied;
    jr.metrics["steps"] = static_cast<core::Real>(r.steps);
    return jr;
  };
  EXPECT_TRUE(host.submit(mjob).ok);

  EXPECT_EQ(host.log().size(), 3u);
  EXPECT_EQ(host.accelerator(AcceleratorKind::kQuantum).jobs_completed(), 1u);
  const std::string desc = host.describe();
  EXPECT_NE(desc.find("Quantum accelerator"), std::string::npos);
  EXPECT_NE(desc.find("oscillator"), std::string::npos);
}

TEST(Integration, VisionPipelineAgreesAndAccountsEnergy) {
  core::Rng rng(7);
  const oscillator::OscillatorComparator comparator(small_comparator_config());
  const vision::Scene scene = vision::make_rectangle_scene(rng, 64, 64, 2, 0.6);

  const auto sw = vision::fast_detect(scene.image, {});
  vision::OscillatorFastStats stats;
  const vision::OscillatorFastDetector det(comparator, {});
  const auto hw = det.detect(scene.image, &stats);

  std::vector<vision::Pixel> sw_px, hw_px;
  for (const auto& d : sw) sw_px.push_back(d.position);
  for (const auto& d : hw) hw_px.push_back(d.position);
  const auto agreement = vision::score_detections(hw_px, sw_px, 2.0);
  EXPECT_GT(agreement.f1(), 0.8);

  const auto energy = vision::frame_energy(comparator, stats);
  EXPECT_GT(energy.oscillator_joules, 0.0);
  EXPECT_GT(energy.cmos_joules, 0.0);
}

TEST(Integration, IsingGroundStateViaCnfAndDmmMatchesAnnealer) {
  core::Rng rng(11);
  const auto inst = memcomputing::make_frustrated_loops(rng, 5, 6);
  const auto cnf = memcomputing::ising_to_cnf(inst.model);
  memcomputing::DmmOptions opts;
  opts.maxsat_mode = true;
  opts.max_steps = 40000;
  const auto dmm = memcomputing::DmmSolver(cnf, opts).solve(rng);
  const core::Real dmm_energy =
      memcomputing::cnf_assignment_energy(inst.model, dmm.assignment);

  memcomputing::AnnealOptions aopts;
  aopts.sweeps = 4000;
  aopts.restarts = 3;
  const auto sa = memcomputing::simulated_annealing(inst.model, rng, aopts);

  EXPECT_NEAR(dmm_energy, inst.ground_energy, 1e-9);
  EXPECT_GE(sa.best_energy, inst.ground_energy - 1e-9);
}

TEST(Integration, QisaTextThroughCompilerAndDevice) {
  core::Rng rng(13);
  const quantum::Circuit program = quantum::assemble(
      "qubits 3\n"
      "h q0\n"
      "cx q0 q1\n"
      "cx q1 q2\n");
  quantum::QuantumAccelerator acc(
      {.topology = quantum::Topology::line(3)});
  const auto res = acc.run(program, 1000, rng);
  // GHZ state: only all-zeros and all-ones observed.
  EXPECT_NEAR(res.frequency(0b000) + res.frequency(0b111), 1.0, 1e-12);
}

TEST(Integration, SolgFactorizationConfirmedByShor) {
  core::Rng rng(17);
  // Same semiprime factored by both non-von-Neumann routes.
  const auto solg = memcomputing::solg_factor(35, 3, 3, rng);
  const auto shor = quantum::shor_factor(35, rng);
  ASSERT_TRUE(solg.found);
  ASSERT_TRUE(shor.success);
  const auto lo_solg = std::min(solg.a, solg.b);
  const auto lo_shor = std::min(shor.factor1, shor.factor2);
  EXPECT_EQ(lo_solg, lo_shor);
  EXPECT_EQ(lo_solg, 5u);
}

TEST(Integration, DmmBeatsExhaustiveBlowupOnModerateInstance) {
  // Not a benchmark, just the qualitative Sec. IV story on one instance: the
  // DMM solves a planted instance whose DPLL tree already needs far more
  // decisions than the DMM takes integration steps.
  core::Rng rng(19);
  const auto inst = memcomputing::planted_ksat(rng, 120, 510, 3);
  const auto dmm = memcomputing::DmmSolver(inst.cnf, {}).solve(rng);
  ASSERT_TRUE(dmm.satisfied);
  EXPECT_TRUE(inst.cnf.satisfied(dmm.assignment));
}

}  // namespace
}  // namespace rebooting
