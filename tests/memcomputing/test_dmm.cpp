#include "memcomputing/dmm.h"

#include <gtest/gtest.h>

#include "memcomputing/sat.h"

namespace rebooting::memcomputing {
namespace {

TEST(Dmm, SolvesTinyFormula) {
  Cnf cnf(3);
  cnf.add_clause({1, 2});
  cnf.add_clause({-1, 3});
  cnf.add_clause({-2, -3});
  core::Rng rng(1);
  const DmmResult r = DmmSolver(cnf, {}).solve(rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_TRUE(cnf.satisfied(r.assignment));
  EXPECT_EQ(r.best_unsatisfied, 0u);
}

TEST(Dmm, SolvesPlantedThreeSat) {
  core::Rng rng(3);
  for (int trial = 0; trial < 3; ++trial) {
    const auto inst = planted_ksat(rng, 60, 255, 3);
    const DmmResult r = DmmSolver(inst.cnf, {}).solve(rng);
    ASSERT_TRUE(r.satisfied) << "trial " << trial;
    EXPECT_TRUE(inst.cnf.satisfied(r.assignment));
  }
}

TEST(Dmm, PointDissipativeVoltagesBounded) {
  // The defining property of valid DMM dynamics (Sec. IV): trajectories stay
  // bounded — voltages never leave [-1, 1].
  core::Rng rng(5);
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.max_steps = 20000;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  EXPECT_LE(r.max_abs_voltage, 1.0 + 1e-12);
}

TEST(Dmm, SolutionIsFixedPoint) {
  // Starting AT a solution, the dynamics stay there (equilibria == solutions).
  Cnf cnf(2);
  cnf.add_clause({1, 2});
  cnf.add_clause({-1, 2});
  core::Rng rng(7);
  // x2 = true satisfies everything; v = (+-, +1).
  const DmmResult r =
      DmmSolver(cnf, {}).solve_from({0.5, 1.0}, rng);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.steps, 0u);  // recognized immediately
}

TEST(Dmm, EnergyTraceRecordedAndDecreasing) {
  core::Rng rng(9);
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.energy_stride = 10;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  ASSERT_GT(r.energy_trace.size(), 2u);
  // Clause energy at the end well below the start (global descent trend).
  EXPECT_LT(r.energy_trace.back(), r.energy_trace.front());
}

TEST(Dmm, AvalancheTrackingRecordsFlips) {
  core::Rng rng(11);
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.track_avalanches = true;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_FALSE(r.avalanche_sizes.empty());
  std::size_t total_flips = 0;
  for (const std::size_t s : r.avalanche_sizes) {
    EXPECT_GE(s, 1u);
    total_flips += s;
  }
  EXPECT_GT(total_flips, 0u);
}

TEST(Dmm, NoiseToleratedAtModerateAmplitude) {
  // The paper's robustness claim (ref [59]): moderate dynamical noise does
  // not destroy the solution search.
  core::Rng rng(13);
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.params.noise_stddev = 0.05;
  opts.max_steps = 500000;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  EXPECT_TRUE(r.satisfied);
}

TEST(Dmm, StepLimitReportedWhenUnsolvable) {
  Cnf cnf(1);
  cnf.add_clause({1});
  cnf.add_clause({-1});
  core::Rng rng(15);
  DmmOptions opts;
  opts.max_steps = 2000;
  const DmmResult r = DmmSolver(cnf, opts).solve(rng);
  EXPECT_FALSE(r.satisfied);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_EQ(r.best_unsatisfied, 1u);
}

TEST(Dmm, MaxSatModeMinimizesWeight) {
  // Two soft constraints conflict; the heavier one should win.
  Cnf cnf(1);
  cnf.add_clause({1}, 5.0);
  cnf.add_clause({-1}, 1.0);
  core::Rng rng(17);
  DmmOptions opts;
  opts.maxsat_mode = true;
  opts.max_steps = 5000;
  const DmmResult r = DmmSolver(cnf, opts).solve(rng);
  EXPECT_TRUE(r.assignment[1]);  // satisfy the weight-5 clause
  EXPECT_DOUBLE_EQ(r.best_unsatisfied_weight, 1.0);
}

TEST(Dmm, AblationRigidityOffStillSolvesEasyInstances) {
  core::Rng rng(19);
  const auto inst = planted_ksat(rng, 20, 60, 3);
  DmmOptions opts;
  opts.params.rigidity = false;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  EXPECT_TRUE(r.satisfied);
}

TEST(Dmm, AblationLongTermMemoryOffStillSolvesEasyInstances) {
  core::Rng rng(21);
  const auto inst = planted_ksat(rng, 20, 60, 3);
  DmmOptions opts;
  opts.params.long_term_memory = false;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  EXPECT_TRUE(r.satisfied);
}

TEST(Dmm, AgreesWithDpllVerdictOnSatInstances) {
  core::Rng rng(23);
  for (int trial = 0; trial < 4; ++trial) {
    const Cnf cnf = random_ksat(rng, 20, 80, 3);
    const SatResult complete = dpll(cnf);
    if (!complete.satisfied) continue;  // DMM cannot certify UNSAT
    DmmOptions opts;
    opts.max_steps = 300000;
    const DmmResult r = DmmSolver(cnf, opts).solve(rng);
    EXPECT_TRUE(r.satisfied);
  }
}

class DmmRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(DmmRatioSweep, SolvesPlantedInstancesAcrossClauseRatios) {
  const double ratio = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(ratio * 1000));
  const std::size_t n = 50;
  const auto m = static_cast<std::size_t>(ratio * static_cast<double>(n));
  for (int trial = 0; trial < 2; ++trial) {
    const auto inst = planted_ksat(rng, n, m, 3);
    DmmOptions opts;
    opts.max_steps = 400'000;
    const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
    ASSERT_TRUE(r.satisfied) << "ratio " << ratio << " trial " << trial;
    EXPECT_TRUE(inst.cnf.satisfied(r.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(ClauseRatios, DmmRatioSweep,
                         ::testing::Values(2.0, 3.0, 4.0, 4.25, 5.0, 6.0));

TEST(Dmm, EmptyFormulaRejected) {
  Cnf cnf(3);
  EXPECT_THROW(DmmSolver(cnf, {}), std::invalid_argument);
}

TEST(Dmm, BadInitialStateRejected) {
  Cnf cnf(2);
  cnf.add_clause({1, 2});
  core::Rng rng(1);
  EXPECT_THROW(DmmSolver(cnf, {}).solve_from({0.1}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::memcomputing
