#include "memcomputing/dmm.h"

#include <gtest/gtest.h>

#include "memcomputing/sat.h"

namespace rebooting::memcomputing {
namespace {

TEST(Dmm, SolvesTinyFormula) {
  Cnf cnf(3);
  cnf.add_clause({1, 2});
  cnf.add_clause({-1, 3});
  cnf.add_clause({-2, -3});
  core::Rng rng(1);
  const DmmResult r = DmmSolver(cnf, {}).solve(rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_TRUE(cnf.satisfied(r.assignment));
  EXPECT_EQ(r.best_unsatisfied, 0u);
}

TEST(Dmm, SolvesPlantedThreeSat) {
  core::Rng rng(3);
  for (int trial = 0; trial < 3; ++trial) {
    const auto inst = planted_ksat(rng, 60, 255, 3);
    const DmmResult r = DmmSolver(inst.cnf, {}).solve(rng);
    ASSERT_TRUE(r.satisfied) << "trial " << trial;
    EXPECT_TRUE(inst.cnf.satisfied(r.assignment));
  }
}

TEST(Dmm, PointDissipativeVoltagesBounded) {
  // The defining property of valid DMM dynamics (Sec. IV): trajectories stay
  // bounded — voltages never leave [-1, 1].
  core::Rng rng(5);
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.max_steps = 20000;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  EXPECT_LE(r.max_abs_voltage, 1.0 + 1e-12);
}

TEST(Dmm, SolutionIsFixedPoint) {
  // Starting AT a solution, the dynamics stay there (equilibria == solutions).
  Cnf cnf(2);
  cnf.add_clause({1, 2});
  cnf.add_clause({-1, 2});
  core::Rng rng(7);
  // x2 = true satisfies everything; v = (+-, +1).
  const DmmResult r =
      DmmSolver(cnf, {}).solve_from({0.5, 1.0}, rng);
  EXPECT_TRUE(r.satisfied);
  EXPECT_EQ(r.steps, 0u);  // recognized immediately
}

TEST(Dmm, EnergyTraceRecordedAndDecreasing) {
  core::Rng rng(9);
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.energy_stride = 10;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  ASSERT_GT(r.energy_trace.size(), 2u);
  // Clause energy at the end well below the start (global descent trend).
  EXPECT_LT(r.energy_trace.back(), r.energy_trace.front());
}

TEST(Dmm, AvalancheTrackingRecordsFlips) {
  core::Rng rng(11);
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.track_avalanches = true;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_FALSE(r.avalanche_sizes.empty());
  std::size_t total_flips = 0;
  for (const std::size_t s : r.avalanche_sizes) {
    EXPECT_GE(s, 1u);
    total_flips += s;
  }
  EXPECT_GT(total_flips, 0u);
}

TEST(Dmm, NoiseToleratedAtModerateAmplitude) {
  // The paper's robustness claim (ref [59]): moderate dynamical noise does
  // not destroy the solution search.
  core::Rng rng(13);
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.params.noise_stddev = 0.05;
  opts.max_steps = 500000;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  EXPECT_TRUE(r.satisfied);
}

TEST(Dmm, StepLimitReportedWhenUnsolvable) {
  Cnf cnf(1);
  cnf.add_clause({1});
  cnf.add_clause({-1});
  core::Rng rng(15);
  DmmOptions opts;
  opts.max_steps = 2000;
  const DmmResult r = DmmSolver(cnf, opts).solve(rng);
  EXPECT_FALSE(r.satisfied);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_EQ(r.best_unsatisfied, 1u);
}

TEST(Dmm, MaxSatModeMinimizesWeight) {
  // Two soft constraints conflict; the heavier one should win.
  Cnf cnf(1);
  cnf.add_clause({1}, 5.0);
  cnf.add_clause({-1}, 1.0);
  core::Rng rng(17);
  DmmOptions opts;
  opts.maxsat_mode = true;
  opts.max_steps = 5000;
  const DmmResult r = DmmSolver(cnf, opts).solve(rng);
  EXPECT_TRUE(r.assignment[1]);  // satisfy the weight-5 clause
  EXPECT_DOUBLE_EQ(r.best_unsatisfied_weight, 1.0);
}

TEST(Dmm, AblationRigidityOffStillSolvesEasyInstances) {
  core::Rng rng(19);
  const auto inst = planted_ksat(rng, 20, 60, 3);
  DmmOptions opts;
  opts.params.rigidity = false;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  EXPECT_TRUE(r.satisfied);
}

TEST(Dmm, AblationLongTermMemoryOffStillSolvesEasyInstances) {
  core::Rng rng(21);
  const auto inst = planted_ksat(rng, 20, 60, 3);
  DmmOptions opts;
  opts.params.long_term_memory = false;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  EXPECT_TRUE(r.satisfied);
}

TEST(Dmm, AgreesWithDpllVerdictOnSatInstances) {
  core::Rng rng(23);
  for (int trial = 0; trial < 4; ++trial) {
    const Cnf cnf = random_ksat(rng, 20, 80, 3);
    const SatResult complete = dpll(cnf);
    if (!complete.satisfied) continue;  // DMM cannot certify UNSAT
    DmmOptions opts;
    opts.max_steps = 300000;
    const DmmResult r = DmmSolver(cnf, opts).solve(rng);
    EXPECT_TRUE(r.satisfied);
  }
}

class DmmRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(DmmRatioSweep, SolvesPlantedInstancesAcrossClauseRatios) {
  const double ratio = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(ratio * 1000));
  const std::size_t n = 50;
  const auto m = static_cast<std::size_t>(ratio * static_cast<double>(n));
  for (int trial = 0; trial < 2; ++trial) {
    const auto inst = planted_ksat(rng, n, m, 3);
    DmmOptions opts;
    opts.max_steps = 400'000;
    const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
    ASSERT_TRUE(r.satisfied) << "ratio " << ratio << " trial " << trial;
    EXPECT_TRUE(inst.cnf.satisfied(r.assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(ClauseRatios, DmmRatioSweep,
                         ::testing::Values(2.0, 3.0, 4.0, 4.25, 5.0, 6.0));

// Golden-trajectory regression tests: the fingerprints below were captured
// from the pre-kernel std::function implementation. The static-dispatch
// kernel must reproduce the seed trajectories bit-for-bit — any drift here
// means the refactor changed the arithmetic, not just the dispatch.
TEST(DmmGolden, TinyFormulaTrajectoryUnchanged) {
  Cnf cnf(3);
  cnf.add_clause({1, 2});
  cnf.add_clause({-1, 3});
  cnf.add_clause({-2, -3});
  core::Rng rng(42);
  const DmmResult r = DmmSolver(cnf, {}).solve(rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_EQ(r.steps, 4u);
  EXPECT_EQ(r.sim_time, 0.93332303461574861);
  EXPECT_EQ(r.best_unsatisfied, 0u);
  ASSERT_EQ(r.assignment.size(), 4u);
  EXPECT_FALSE(r.assignment[1]);
  EXPECT_TRUE(r.assignment[2]);
  EXPECT_FALSE(r.assignment[3]);
}

TEST(DmmGolden, PlantedInstanceTrajectoryUnchanged) {
  core::Rng gen(1234);
  const auto inst = planted_ksat(gen, 30, 126, 3);
  DmmOptions opts;
  opts.energy_stride = 8;
  opts.max_steps = 200000;
  core::Rng rng(99);
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_EQ(r.steps, 255u);
  EXPECT_EQ(r.sim_time, 11.197302839143459);
  EXPECT_EQ(r.max_abs_voltage, 1.0);
  ASSERT_EQ(r.energy_trace.size(), 32u);
  EXPECT_EQ(r.energy_trace[0], 33.890063716783047);
  EXPECT_EQ(r.energy_trace[1], 25.983609457064752);
  EXPECT_EQ(r.energy_trace.back(), 3.1076325184000861);
}

TEST(DmmGolden, NoisyTrajectoryUnchanged) {
  core::Rng gen(7);
  const auto inst = planted_ksat(gen, 20, 80, 3);
  DmmOptions opts;
  opts.params.noise_stddev = 0.05;
  opts.max_steps = 5000;
  core::Rng rng(5);
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_EQ(r.steps, 15u);
  EXPECT_EQ(r.sim_time, 0.67140313066683166);
}

TEST(DmmEnsemble, WinnerIdenticalAcrossThreadCounts) {
  core::Rng gen(77);
  const auto inst = planted_ksat(gen, 30, 126, 3);
  DmmOptions opts;
  opts.max_steps = 100000;
  const DmmSolver solver(inst.cnf, opts);

  const auto run = [&](std::size_t threads) {
    DmmEnsembleOptions eopts;
    eopts.threads = threads;
    return solver.solve_ensemble(16, 2026, eopts);
  };
  const DmmEnsembleResult serial = run(1);
  const DmmEnsembleResult four = run(4);
  const DmmEnsembleResult eight = run(8);

  ASSERT_TRUE(serial.any_satisfied);
  for (const DmmEnsembleResult* er : {&four, &eight}) {
    EXPECT_EQ(er->any_satisfied, serial.any_satisfied);
    EXPECT_EQ(er->best_index, serial.best_index);
    EXPECT_EQ(er->best.steps, serial.best.steps);
    EXPECT_EQ(er->best.sim_time, serial.best.sim_time);
    EXPECT_EQ(er->best.assignment, serial.best.assignment);
  }
  // Early stop guarantees everything up to the winner ran, bit-identically.
  for (std::size_t i = 0; i <= serial.best_index; ++i) {
    ASSERT_TRUE(serial.ran[i] && four.ran[i] && eight.ran[i]) << "i=" << i;
    EXPECT_EQ(four.results[i].steps, serial.results[i].steps) << "i=" << i;
    EXPECT_EQ(eight.results[i].sim_time, serial.results[i].sim_time)
        << "i=" << i;
  }
}

TEST(DmmEnsemble, EnsembleTrajectoryMatchesDirectStreamSolve) {
  // Restart i of an ensemble must be exactly solve() with Rng::stream(seed, i)
  // — the parallel driver adds scheduling, never different dynamics.
  core::Rng gen(31);
  const auto inst = planted_ksat(gen, 20, 80, 3);
  DmmOptions opts;
  opts.max_steps = 50000;
  const DmmSolver solver(inst.cnf, opts);

  DmmEnsembleOptions eopts;
  eopts.threads = 2;
  eopts.stop_on_first_solution = false;  // run all restarts
  const DmmEnsembleResult er = solver.solve_ensemble(6, 12345, eopts);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(er.ran[i]);
    core::Rng rng = core::Rng::stream(12345, i);
    const DmmResult direct = solver.solve(rng);
    EXPECT_EQ(er.results[i].steps, direct.steps) << "i=" << i;
    EXPECT_EQ(er.results[i].sim_time, direct.sim_time) << "i=" << i;
    EXPECT_EQ(er.results[i].satisfied, direct.satisfied) << "i=" << i;
    EXPECT_EQ(er.results[i].assignment, direct.assignment) << "i=" << i;
  }
}

TEST(DmmEnsemble, ReportsBestRestartWhenNoneSatisfies) {
  Cnf cnf(1);
  cnf.add_clause({1});
  cnf.add_clause({-1});
  DmmOptions opts;
  opts.max_steps = 500;
  const DmmSolver solver(cnf, opts);
  DmmEnsembleOptions eopts;
  eopts.threads = 4;
  const DmmEnsembleResult er = solver.solve_ensemble(8, 9, eopts);
  EXPECT_FALSE(er.any_satisfied);
  EXPECT_FALSE(er.best.satisfied);
  EXPECT_EQ(er.best.best_unsatisfied, 1u);
  // Unsatisfiable: no early stop, so every restart ran.
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(er.ran[i]) << "i=" << i;
}

TEST(DmmEnsemble, RejectsZeroRestarts) {
  Cnf cnf(1);
  cnf.add_clause({1});
  EXPECT_THROW(DmmSolver(cnf, {}).solve_ensemble(0, 1), std::invalid_argument);
}

// --- sliced execution (DESIGN.md §12): N budgeted advances must be
// bit-identical to one unlimited solve, wherever the cuts fall. -----------

TEST(DmmSliced, BudgetedAdvancesMatchUninterruptedSolve) {
  core::Rng gen(1234);
  const auto inst = planted_ksat(gen, 30, 126, 3);
  DmmOptions opts;
  opts.energy_stride = 8;
  opts.track_avalanches = true;
  opts.max_steps = 200000;
  const DmmSolver solver(inst.cnf, opts);

  std::vector<core::Real> v0(30);
  core::Rng init(555);
  for (auto& v : v0) v = init.uniform(-1.0, 1.0);

  core::Rng direct_rng(99);
  const DmmResult direct = solver.solve_from(v0, direct_rng);
  ASSERT_TRUE(direct.satisfied);

  for (const std::size_t slice_steps : {1u, 7u, 64u}) {
    core::Workspace ws;
    core::Checkpoint ckpt = solver.begin(v0, core::Rng(99));
    DmmSliceOutcome out;
    std::size_t slices = 0;
    do {
      out = solver.advance(ckpt, core::SliceBudget::steps(slice_steps), ws);
      ++slices;
      ASSERT_LE(slices, 100000u);
    } while (!out.done);
    EXPECT_GE(slices, direct.steps / slice_steps);
    EXPECT_EQ(out.result.satisfied, direct.satisfied);
    EXPECT_EQ(out.result.steps, direct.steps);
    EXPECT_EQ(out.result.sim_time, direct.sim_time);
    EXPECT_EQ(out.result.steps_to_best, direct.steps_to_best);
    EXPECT_EQ(out.result.assignment, direct.assignment);
    EXPECT_EQ(out.result.max_abs_voltage, direct.max_abs_voltage);
    EXPECT_EQ(out.result.energy_trace, direct.energy_trace);
    EXPECT_EQ(out.result.avalanche_sizes, direct.avalanche_sizes);
    // A finished checkpoint reconstructs the same result on demand.
    const DmmResult recon = solver.result_from_checkpoint(ckpt);
    EXPECT_EQ(recon.steps, direct.steps);
    EXPECT_EQ(recon.sim_time, direct.sim_time);
    EXPECT_EQ(recon.energy_trace, direct.energy_trace);
    EXPECT_EQ(recon.assignment, direct.assignment);
  }
}

TEST(DmmSliced, JsonParkAndResumeMidTrajectoryIsExact) {
  // Noisy run: the RNG stream (including the cached Box–Muller deviate)
  // must survive the JSON round trip mid-flight.
  core::Rng gen(7);
  const auto inst = planted_ksat(gen, 20, 80, 3);
  DmmOptions opts;
  opts.params.noise_stddev = 0.05;
  opts.max_steps = 5000;
  const DmmSolver solver(inst.cnf, opts);

  std::vector<core::Real> v0(20);
  core::Rng init(11);
  for (auto& v : v0) v = init.uniform(-1.0, 1.0);

  core::Rng direct_rng(5);
  const DmmResult direct = solver.solve_from(v0, direct_rng);

  core::Workspace ws;
  core::Checkpoint ckpt = solver.begin(v0, core::Rng(5));
  DmmSliceOutcome out;
  do {
    out = solver.advance(ckpt, core::SliceBudget::steps(3), ws);
    const auto parked = core::Checkpoint::from_json(ckpt.json_dump());
    ASSERT_TRUE(parked.has_value());
    EXPECT_EQ(*parked, ckpt);
    ckpt = *parked;  // resume from the deserialized copy every slice
  } while (!out.done);
  EXPECT_EQ(out.result.steps, direct.steps);
  EXPECT_EQ(out.result.sim_time, direct.sim_time);
  EXPECT_EQ(out.result.satisfied, direct.satisfied);
  EXPECT_EQ(out.result.assignment, direct.assignment);
}

TEST(DmmSliced, RejectsForeignCheckpoints) {
  Cnf cnf(2);
  cnf.add_clause({1, 2});
  const DmmSolver solver(cnf, {});
  core::Workspace ws;
  core::Checkpoint ckpt;
  ckpt.tag = "oscillator";
  EXPECT_THROW(solver.advance(ckpt, core::SliceBudget{}, ws),
               std::invalid_argument);
  EXPECT_THROW(solver.result_from_checkpoint(ckpt), std::invalid_argument);
  // Unfinished checkpoints have no result yet.
  core::Rng rng(3);
  core::Checkpoint fresh = solver.begin({0.5, -0.5}, rng);
  if (!fresh.flags.empty() && fresh.flags[0] == 0) {
    EXPECT_THROW(solver.result_from_checkpoint(fresh), std::invalid_argument);
  }
}

TEST(DmmSlicedEnsemble, SlicedEnsembleMatchesUnsliced) {
  core::Rng gen(77);
  const auto inst = planted_ksat(gen, 30, 126, 3);
  DmmOptions opts;
  opts.max_steps = 100000;
  const DmmSolver solver(inst.cnf, opts);

  DmmEnsembleOptions eopts;
  eopts.threads = 4;
  const DmmEnsembleResult whole = solver.solve_ensemble(16, 2026, eopts);
  ASSERT_TRUE(whole.any_satisfied);
  // Slice well below the winner's trajectory length so the ensemble is
  // guaranteed to cross several invocation boundaries before finishing.
  const std::size_t slice = std::max<std::size_t>(1, whole.best.steps / 4);

  core::EnsembleCheckpoint ckpt;
  DmmEnsembleResult sliced;
  std::size_t rounds = 0;
  for (;;) {
    const bool done = solver.solve_ensemble_slice(
        16, 2026, eopts, core::SliceBudget::steps(slice), ckpt, &sliced);
    ++rounds;
    ASSERT_LE(rounds, 100000u);
    if (done) break;
    // Park the whole ensemble through JSON mid-flight (crash-resume path).
    const auto parked = core::EnsembleCheckpoint::from_json(ckpt.json_dump());
    ASSERT_TRUE(parked.has_value());
    ckpt = *parked;
  }
  EXPECT_GE(rounds, 4u);
  EXPECT_EQ(sliced.any_satisfied, whole.any_satisfied);
  EXPECT_EQ(sliced.best_index, whole.best_index);
  EXPECT_EQ(sliced.best.steps, whole.best.steps);
  EXPECT_EQ(sliced.best.sim_time, whole.best.sim_time);
  EXPECT_EQ(sliced.best.assignment, whole.best.assignment);
  for (std::size_t i = 0; i <= whole.best_index; ++i) {
    ASSERT_TRUE(whole.ran[i] && sliced.ran[i]) << "i=" << i;
    EXPECT_EQ(sliced.results[i].steps, whole.results[i].steps) << "i=" << i;
    EXPECT_EQ(sliced.results[i].sim_time, whole.results[i].sim_time)
        << "i=" << i;
  }
}

TEST(Dmm, EmptyFormulaRejected) {
  Cnf cnf(3);
  EXPECT_THROW(DmmSolver(cnf, {}), std::invalid_argument);
}

TEST(Dmm, BadInitialStateRejected) {
  Cnf cnf(2);
  cnf.add_clause({1, 2});
  core::Rng rng(1);
  EXPECT_THROW(DmmSolver(cnf, {}).solve_from({0.1}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::memcomputing
