#include "memcomputing/rbm.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rebooting::memcomputing {
namespace {

TEST(Rbm, ProbabilitiesAreValid) {
  core::Rng rng(1);
  BinaryRbm rbm(6, 4, rng, 0.5);
  const Pattern v{1, 0, 1, 1, 0, 0};
  for (const Real p : rbm.hidden_probability(v)) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
  const Pattern h{1, 0, 0, 1};
  for (const Real p : rbm.visible_probability(h)) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(Rbm, FreeEnergyConsistentWithJointEnergy) {
  // exp(-F(v)) must equal sum_h exp(-E(v, h)).
  core::Rng rng(3);
  BinaryRbm rbm(4, 3, rng, 0.4);
  const Pattern v{1, 0, 1, 0};
  Real z_v = 0.0;
  for (unsigned mask = 0; mask < 8; ++mask) {
    Pattern h(3);
    for (std::size_t j = 0; j < 3; ++j) h[j] = (mask >> j) & 1u;
    z_v += std::exp(-rbm.joint_energy(v, h));
  }
  EXPECT_NEAR(std::exp(-rbm.free_energy(v)), z_v, 1e-9 * z_v);
}

TEST(Rbm, ExactNllEqualsUniformAtZeroWeights) {
  core::Rng rng(5);
  // 2x2 bars-and-stripes patterns have 4 pixels, so the RBM needs 4 visible
  // units; at zero weights the model is uniform and NLL = n_visible * ln 2.
  BinaryRbm rbm(4, 4, rng, 0.0);  // all weights and biases zero
  const Dataset data = bars_and_stripes(2);
  EXPECT_NEAR(rbm.exact_nll(data), 4.0 * std::log(2.0), 1e-9);
}

TEST(Rbm, CdTrainingImprovesNll) {
  core::Rng rng(7);
  const Dataset data = bars_and_stripes(3);
  BinaryRbm rbm(9, 12, rng);
  const Real before = rbm.exact_nll(data);
  RbmTrainOptions opts;
  opts.epochs = 800;
  opts.learning_rate = 0.2;
  opts.eval_stride = 800;
  train_rbm(rbm, data, opts, rng);
  EXPECT_LT(rbm.exact_nll(data), before - 1.0);
}

TEST(Rbm, ReconstructionImprovesWithTraining) {
  core::Rng rng(9);
  const Dataset data = bars_and_stripes(3);
  BinaryRbm rbm(9, 12, rng);
  const Real before = rbm.reconstruction_error(data, rng, 4);
  RbmTrainOptions opts;
  opts.epochs = 800;
  opts.learning_rate = 0.2;
  opts.eval_stride = 800;
  train_rbm(rbm, data, opts, rng);
  EXPECT_LT(rbm.reconstruction_error(data, rng, 4), before);
}

TEST(Rbm, JointEnergyCnfReproducesEnergyOrdering) {
  // The weighted-MaxSAT encoding must rank states as the energy does: for
  // every pair of joint states, lower unsatisfied weight <=> lower energy.
  core::Rng rng(11);
  BinaryRbm rbm(3, 2, rng, 0.8);
  const Cnf cnf = rbm.joint_energy_cnf();
  std::vector<Real> energies;
  std::vector<Real> weights;
  for (unsigned mask = 0; mask < 32; ++mask) {
    Pattern v(3);
    Pattern h(2);
    Assignment a(6, false);
    for (std::size_t i = 0; i < 3; ++i) {
      v[i] = (mask >> i) & 1u;
      a[i + 1] = v[i];
    }
    for (std::size_t j = 0; j < 2; ++j) {
      h[j] = (mask >> (3 + j)) & 1u;
      a[4 + j] = h[j];
    }
    energies.push_back(rbm.joint_energy(v, h));
    weights.push_back(cnf.unsatisfied_weight(a));
  }
  // Energy and unsat weight differ by a constant: E - W must be constant.
  const Real offset = energies[0] - weights[0];
  for (std::size_t i = 1; i < energies.size(); ++i)
    EXPECT_NEAR(energies[i] - weights[i], offset, 1e-9);
}

TEST(Rbm, ModeSearchBackendsAgreeOnSmallModel) {
  core::Rng rng(13);
  BinaryRbm rbm(5, 3, rng, 1.0);
  const auto exact = rbm.find_mode_exact();
  const auto annealed = rbm.find_mode_annealed(rng, 500);
  const auto dmm = rbm.find_mode_dmm(rng, 20000);
  EXPECT_NEAR(annealed.energy, exact.energy, 1e-9);
  EXPECT_NEAR(dmm.energy, exact.energy, 1e-9);
}

TEST(Rbm, NegativeExpectationStepMatchesExactGradient) {
  // With the EXACT model expectation as the negative phase, one update must
  // move each weight along the true likelihood gradient. We enumerate the
  // joint space of a tiny RBM to build exact model samples, apply the update
  // with a small learning rate, and verify the NLL decreases.
  core::Rng rng(21);
  BinaryRbm rbm(4, 3, rng, 0.6);
  const Dataset data = {{1, 1, 0, 0}, {0, 0, 1, 1}};
  const Real before = rbm.exact_nll(data);

  // Exact model samples: every (v, h) weighted by its Boltzmann probability,
  // approximated by a long list of proportional duplicates.
  std::vector<std::pair<Pattern, Pattern>> samples;
  Real z = 0.0;
  std::vector<Real> weights;
  std::vector<std::pair<Pattern, Pattern>> states;
  for (unsigned mask = 0; mask < (1u << 7); ++mask) {
    Pattern v(4);
    Pattern h(3);
    for (std::size_t i = 0; i < 4; ++i) v[i] = (mask >> i) & 1u;
    for (std::size_t j = 0; j < 3; ++j) h[j] = (mask >> (4 + j)) & 1u;
    const Real w = std::exp(-rbm.joint_energy(v, h));
    z += w;
    weights.push_back(w);
    states.emplace_back(std::move(v), std::move(h));
  }
  for (std::size_t s = 0; s < states.size(); ++s) {
    const auto copies = static_cast<std::size_t>(4000.0 * weights[s] / z);
    for (std::size_t c = 0; c < copies; ++c) samples.push_back(states[s]);
  }
  ASSERT_GT(samples.size(), 1000u);

  rbm.negative_expectation_step(data, samples, 0.05);
  EXPECT_LT(rbm.exact_nll(data), before);
}

TEST(BarsAndStripes, PatternCounts) {
  // 2^side row patterns + 2^side column patterns - 2 shared (all-on/off).
  EXPECT_EQ(bars_and_stripes(2).size(), 6u);
  EXPECT_EQ(bars_and_stripes(3).size(), 14u);
  EXPECT_EQ(bars_and_stripes(4).size(), 30u);
}

TEST(BarsAndStripes, PatternsAreBarsOrStripes) {
  for (const Pattern& p : bars_and_stripes(3)) {
    bool rows_uniform = true;
    bool cols_uniform = true;
    for (std::size_t y = 0; y < 3 && rows_uniform; ++y)
      for (std::size_t x = 1; x < 3; ++x)
        if (p[y * 3 + x] != p[y * 3]) rows_uniform = false;
    for (std::size_t x = 0; x < 3 && cols_uniform; ++x)
      for (std::size_t y = 1; y < 3; ++y)
        if (p[y * 3 + x] != p[x]) cols_uniform = false;
    EXPECT_TRUE(rows_uniform || cols_uniform);
  }
}

TEST(NoisyPrototypes, FlipRateNearRequested) {
  core::Rng rng(15);
  Dataset protos{Pattern(100, 0)};
  const Dataset noisy = noisy_prototypes(rng, protos, 50, 0.2);
  ASSERT_EQ(noisy.size(), 50u);
  std::size_t flips = 0;
  for (const Pattern& p : noisy)
    for (const auto bit : p) flips += bit;
  EXPECT_NEAR(static_cast<Real>(flips) / 5000.0, 0.2, 0.03);
}

TEST(Training, RejectsEmptyDataset) {
  core::Rng rng(17);
  BinaryRbm rbm(4, 2, rng);
  EXPECT_THROW(train_rbm(rbm, {}, {}, rng), std::invalid_argument);
}

TEST(Training, HistoryRecordedAtStride) {
  core::Rng rng(19);
  const Dataset data = bars_and_stripes(2);
  BinaryRbm rbm(4, 3, rng);
  RbmTrainOptions opts;
  opts.epochs = 20;
  opts.eval_stride = 5;
  const auto result = train_rbm(rbm, data, opts, rng);
  // Epoch 0 plus epochs 5, 10, 15, 20.
  EXPECT_EQ(result.history.size(), 5u);
  EXPECT_EQ(result.history.front().epoch, 0u);
  EXPECT_EQ(result.history.back().epoch, 20u);
}

}  // namespace
}  // namespace rebooting::memcomputing
