#include "memcomputing/sat.h"

#include <gtest/gtest.h>

namespace rebooting::memcomputing {
namespace {

Cnf tiny_sat() {
  // (x1 | x2) & (!x1 | x3) & (!x2 | !x3)
  Cnf cnf(3);
  cnf.add_clause({1, 2});
  cnf.add_clause({-1, 3});
  cnf.add_clause({-2, -3});
  return cnf;
}

Cnf tiny_unsat() {
  // x1 & !x1 via clauses.
  Cnf cnf(1);
  cnf.add_clause({1});
  cnf.add_clause({-1});
  return cnf;
}

TEST(WalkSat, SolvesTinyFormula) {
  core::Rng rng(1);
  const SatResult r = walksat(tiny_sat(), rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_TRUE(tiny_sat().satisfied(r.assignment));
  EXPECT_EQ(r.best_unsatisfied, 0u);
}

TEST(WalkSat, SolvesPlantedInstances) {
  core::Rng rng(3);
  for (int trial = 0; trial < 3; ++trial) {
    const auto inst = planted_ksat(rng, 50, 210, 3);
    const SatResult r = walksat(inst.cnf, rng);
    ASSERT_TRUE(r.satisfied);
    EXPECT_TRUE(inst.cnf.satisfied(r.assignment));
  }
}

TEST(WalkSat, FlipLimitRespected) {
  core::Rng rng(5);
  WalkSatOptions opts;
  opts.max_flips = 10;
  opts.max_tries = 2;
  const SatResult r = walksat(tiny_unsat(), rng, opts);
  EXPECT_FALSE(r.satisfied);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_LE(r.flips, 20u);
  EXPECT_EQ(r.best_unsatisfied, 1u);  // one of the two units always broken
}

TEST(Gsat, SolvesTinyFormula) {
  core::Rng rng(7);
  const SatResult r = gsat(tiny_sat(), rng);
  ASSERT_TRUE(r.satisfied);
  EXPECT_TRUE(tiny_sat().satisfied(r.assignment));
}

TEST(Gsat, SolvesPlantedInstance) {
  core::Rng rng(11);
  const auto inst = planted_ksat(rng, 30, 120, 3);
  GsatOptions opts;
  opts.max_tries = 10;
  const SatResult r = gsat(inst.cnf, rng, opts);
  EXPECT_TRUE(r.satisfied);
}

TEST(Dpll, SolvesSatInstance) {
  const SatResult r = dpll(tiny_sat());
  ASSERT_TRUE(r.satisfied);
  EXPECT_TRUE(tiny_sat().satisfied(r.assignment));
}

TEST(Dpll, ProvesUnsat) {
  const SatResult r = dpll(tiny_unsat());
  EXPECT_FALSE(r.satisfied);
  EXPECT_FALSE(r.hit_limit);  // complete refutation, not a timeout
}

TEST(Dpll, ProvesUnsatPigeonhole) {
  // 3 pigeons, 2 holes: p_ij = pigeon i in hole j.
  // Variables: p11=1 p12=2 p21=3 p22=4 p31=5 p32=6.
  Cnf cnf(6);
  cnf.add_clause({1, 2});
  cnf.add_clause({3, 4});
  cnf.add_clause({5, 6});
  // No two pigeons share a hole.
  cnf.add_clause({-1, -3});
  cnf.add_clause({-1, -5});
  cnf.add_clause({-3, -5});
  cnf.add_clause({-2, -4});
  cnf.add_clause({-2, -6});
  cnf.add_clause({-4, -6});
  const SatResult r = dpll(cnf);
  EXPECT_FALSE(r.satisfied);
  EXPECT_FALSE(r.hit_limit);
}

TEST(Dpll, AgreesWithWalkSatOnRandomInstances) {
  core::Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const Cnf cnf = random_ksat(rng, 20, 85, 3);
    const SatResult complete = dpll(cnf);
    if (complete.satisfied) {
      EXPECT_TRUE(cnf.satisfied(complete.assignment));
      WalkSatOptions opts;
      opts.max_flips = 200000;
      opts.max_tries = 5;
      const SatResult local = walksat(cnf, rng, opts);
      EXPECT_TRUE(local.satisfied);  // local search finds it too
    } else {
      // UNSAT proof => WalkSAT can never succeed.
      WalkSatOptions opts;
      opts.max_flips = 20000;
      const SatResult local = walksat(cnf, rng, opts);
      EXPECT_FALSE(local.satisfied);
    }
  }
}

TEST(Dpll, DecisionLimitReported) {
  core::Rng rng(17);
  const Cnf cnf = random_ksat(rng, 60, 256, 3);
  DpllOptions opts;
  opts.max_decisions = 3;
  const SatResult r = dpll(cnf, opts);
  if (!r.satisfied) EXPECT_TRUE(r.hit_limit || r.decisions <= 3);
}

TEST(Dpll, UnitPropagationCountsWork) {
  Cnf cnf(3);
  cnf.add_clause({1});
  cnf.add_clause({-1, 2});
  cnf.add_clause({-2, 3});
  const SatResult r = dpll(cnf);
  ASSERT_TRUE(r.satisfied);
  EXPECT_GE(r.propagations, 3u);
  EXPECT_TRUE(r.assignment[1]);
  EXPECT_TRUE(r.assignment[2]);
  EXPECT_TRUE(r.assignment[3]);
}

}  // namespace
}  // namespace rebooting::memcomputing
