#include "memcomputing/ising.h"

#include <gtest/gtest.h>

#include "memcomputing/dmm.h"

namespace rebooting::memcomputing {
namespace {

TEST(IsingModel, EnergyOfKnownConfigurations) {
  IsingModel m(3);
  m.add_bond(0, 1, 1.0);   // ferro
  m.add_bond(1, 2, -1.0);  // antiferro
  // H = -J01 s0 s1 - J12 s1 s2.
  EXPECT_DOUBLE_EQ(m.energy({1, 1, 1}), -1.0 + 1.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 1, -1}), -1.0 - 1.0);
  EXPECT_DOUBLE_EQ(m.energy({1, -1, 1}), 1.0 - 1.0);
}

TEST(IsingModel, FlipDeltaMatchesEnergyDifference) {
  core::Rng rng(1);
  IsingModel m(6);
  for (int b = 0; b < 10; ++b) {
    const auto i = rng.uniform_index(6);
    auto j = rng.uniform_index(6);
    if (i == j) continue;
    m.add_bond(i, j, rng.uniform(-2.0, 2.0));
  }
  SpinConfig s(6);
  for (auto& sp : s) sp = rng.bernoulli(0.5) ? 1 : -1;
  for (std::size_t k = 0; k < 6; ++k) {
    const Real before = m.energy(s);
    const Real delta = m.flip_delta(s, k);
    SpinConfig flipped = s;
    flipped[k] = static_cast<std::int8_t>(-flipped[k]);
    EXPECT_NEAR(m.energy(flipped) - before, delta, 1e-12);
  }
}

TEST(IsingModel, RejectsBadBonds) {
  IsingModel m(3);
  EXPECT_THROW(m.add_bond(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_bond(0, 5, 1.0), std::invalid_argument);
}

TEST(FrustratedLoops, PlantedGroundStateHasKnownEnergy) {
  core::Rng rng(5);
  const auto inst = make_frustrated_loops(rng, 6, 8);
  EXPECT_DOUBLE_EQ(inst.model.energy(inst.planted), inst.ground_energy);
  EXPECT_LT(inst.ground_energy, 0.0);
}

TEST(FrustratedLoops, NoSingleFlipImprovesGroundState) {
  // All-up must be a local (indeed global) minimum.
  core::Rng rng(7);
  const auto inst = make_frustrated_loops(rng, 6, 10);
  for (std::size_t k = 0; k < inst.model.num_spins(); ++k)
    EXPECT_GE(inst.model.flip_delta(inst.planted, k), -1e-12);
}

TEST(FrustratedLoops, AnnealingReachesPlantedEnergy) {
  core::Rng rng(9);
  const auto inst = make_frustrated_loops(rng, 5, 6);
  AnnealOptions opts;
  opts.sweeps = 4000;
  opts.restarts = 3;
  const AnnealResult r = simulated_annealing(inst.model, rng, opts);
  EXPECT_NEAR(r.best_energy, inst.ground_energy, 1e-12);
  EXPECT_DOUBLE_EQ(inst.model.energy(r.best), r.best_energy);
}

TEST(Annealing, RejectsBadOptions) {
  IsingModel m(2);
  m.add_bond(0, 1, 1.0);
  core::Rng rng(1);
  AnnealOptions opts;
  opts.sweeps = 0;
  EXPECT_THROW(simulated_annealing(m, rng, opts), std::invalid_argument);
}

TEST(IsingToCnf, UnsatWeightTracksViolatedBonds) {
  IsingModel m(3);
  m.add_bond(0, 1, 2.0);
  m.add_bond(1, 2, -1.5);
  const Cnf cnf = ising_to_cnf(m);
  EXPECT_EQ(cnf.num_clauses(), 4u);  // 2 clauses per bond
  // s = (+1, +1, +1): ferro bond satisfied, AF bond violated (weight 1.5).
  Assignment a(4, true);
  EXPECT_DOUBLE_EQ(cnf.unsatisfied_weight(a), 1.5);
  // Energy identity: E = -sum|J| + 2 * unsat_weight.
  EXPECT_NEAR(cnf_assignment_energy(m, a), -(2.0 + 1.5) + 2.0 * 1.5, 1e-12);
}

TEST(IsingToCnf, EnergyIdentityHoldsForAllConfigs) {
  core::Rng rng(11);
  IsingModel m(4);
  m.add_bond(0, 1, 1.0);
  m.add_bond(1, 2, -2.0);
  m.add_bond(2, 3, 0.5);
  m.add_bond(0, 3, -1.0);
  const Cnf cnf = ising_to_cnf(m);
  Real total_abs = 4.5;
  for (unsigned mask = 0; mask < 16; ++mask) {
    Assignment a(5, false);
    for (std::size_t i = 0; i < 4; ++i) a[i + 1] = (mask >> i) & 1u;
    const Real via_cnf = -total_abs + 2.0 * cnf.unsatisfied_weight(a);
    EXPECT_NEAR(cnf_assignment_energy(m, a), via_cnf, 1e-12);
  }
}

TEST(IsingToCnf, DmmFindsGroundStateOfSmallInstance) {
  core::Rng rng(13);
  const auto inst = make_frustrated_loops(rng, 4, 4);
  const Cnf cnf = ising_to_cnf(inst.model);
  DmmOptions opts;
  opts.maxsat_mode = true;
  opts.max_steps = 30000;
  const DmmResult r = DmmSolver(cnf, opts).solve(rng);
  EXPECT_NEAR(cnf_assignment_energy(inst.model, r.assignment),
              inst.ground_energy, 1e-9);
}

TEST(AssignmentToSpins, MapsBothPolarities) {
  Assignment a(4, false);
  a[1] = true;
  a[3] = true;
  const SpinConfig s = assignment_to_spins(a, 3);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], -1);
  EXPECT_EQ(s[2], 1);
}

}  // namespace
}  // namespace rebooting::memcomputing
