#include "memcomputing/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/cache.h"
#include "core/random.h"

namespace rebooting::memcomputing {
namespace {

/// Pins a test to the pre-cache solve path and restores the ambient toggle.
struct ScopedCacheDisable {
  bool previous = core::cache_enabled();
  ScopedCacheDisable() { core::set_cache_enabled(false); }
  ~ScopedCacheDisable() { core::set_cache_enabled(previous); }
};

/// Rewrites `cnf` under a variable renaming (`rename[v]` is the new 1-based
/// name of variable v), shuffles the clause order, and reverses literal
/// order inside clauses — the full invariance group of the canonicalizer.
Cnf scramble(const Cnf& cnf, const std::vector<std::size_t>& rename,
             core::Rng& rng) {
  std::vector<Clause> clauses = cnf.clauses();
  for (Clause& clause : clauses) {
    for (Literal& lit : clause.literals) {
      const std::size_t v = static_cast<std::size_t>(std::abs(lit));
      const Literal renamed = static_cast<Literal>(rename[v]);
      lit = lit > 0 ? renamed : -renamed;
    }
    std::reverse(clause.literals.begin(), clause.literals.end());
  }
  for (std::size_t i = clauses.size(); i > 1; --i)
    std::swap(clauses[i - 1], clauses[rng.uniform_index(i)]);
  Cnf out(cnf.num_variables());
  for (Clause& clause : clauses) out.add_clause(std::move(clause));
  return out;
}

std::vector<std::size_t> random_rename(std::size_t n, core::Rng& rng) {
  std::vector<std::size_t> rename(n + 1);
  std::iota(rename.begin(), rename.end(), 0);  // rename[0] unused
  for (std::size_t i = n; i > 1; --i)
    std::swap(rename[i], rename[1 + rng.uniform_index(i)]);
  return rename;
}

// ------------------------------------------------------- canonical form ----

TEST(CnfCanonical, LiteralAndClauseOrderInvariant) {
  Cnf a(3), b(3);
  a.add_clause({1, 2});
  a.add_clause({-1, 3});
  b.add_clause({3, -1});  // literals reversed
  b.add_clause({2, 1});   // clauses reordered
  EXPECT_EQ(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(CnfCanonical, VariableRenamingInvariant) {
  Cnf a(3);
  a.add_clause({1, 2});
  a.add_clause({-1, 3});
  a.add_clause({-2, -3});
  // Rename 1->3, 2->1, 3->2.
  Cnf b(3);
  b.add_clause({3, 1});
  b.add_clause({-3, 2});
  b.add_clause({-1, -2});
  EXPECT_EQ(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(CnfCanonical, RandomKsatSurvivesFullScramble) {
  // The real property: for random instances, any combination of renaming +
  // clause shuffle + literal reorder hashes identically.
  core::Rng rng(11);
  const Cnf cnf = random_ksat(rng, 20, 80, 3);
  const core::HashKey128 base = canonicalize(cnf).hash;
  for (int round = 0; round < 5; ++round) {
    const auto rename = random_rename(cnf.num_variables(), rng);
    const Cnf scrambled = scramble(cnf, rename, rng);
    EXPECT_EQ(canonicalize(scrambled).hash, base) << "round " << round;
  }
}

TEST(CnfCanonical, OneFlippedLiteralChangesHash) {
  Cnf a(3), b(3);
  a.add_clause({1, 2});
  a.add_clause({-1, 3});
  b.add_clause({1, 2});
  b.add_clause({1, 3});  // the -1 flipped
  EXPECT_NE(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(CnfCanonical, ClauseWeightChangesHash) {
  Cnf a(2), b(2);
  a.add_clause({1, 2}, 1.0);
  b.add_clause({1, 2}, 2.5);  // MaxSAT weight is part of the instance
  EXPECT_NE(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(CnfCanonical, PermIsABijectionAndMapsSatisfiability) {
  core::Rng rng(23);
  const auto planted = planted_ksat(rng, 15, 60, 3);
  const CanonicalCnf canon = canonicalize(planted.cnf);

  // perm[1..n] is a permutation of 1..n.
  ASSERT_EQ(canon.perm.size(), planted.cnf.num_variables() + 1);
  std::vector<bool> seen(canon.perm.size(), false);
  for (std::size_t v = 1; v < canon.perm.size(); ++v) {
    ASSERT_GE(canon.perm[v], 1u);
    ASSERT_LT(canon.perm[v], canon.perm.size());
    ASSERT_FALSE(seen[canon.perm[v]]) << "duplicate image";
    seen[canon.perm[v]] = true;
  }

  // The plant, pushed through the perm, satisfies the canonical formula —
  // canonicalization is an isomorphism, not just a hash.
  ASSERT_TRUE(planted.cnf.satisfied(planted.plant));
  Assignment mapped(canon.perm.size(), false);
  for (std::size_t v = 1; v < canon.perm.size(); ++v)
    mapped[canon.perm[v]] = planted.plant[v];
  EXPECT_TRUE(canon.cnf.satisfied(mapped));
  EXPECT_EQ(canon.cnf.num_variables(), planted.cnf.num_variables());
  EXPECT_EQ(canon.cnf.num_clauses(), planted.cnf.num_clauses());
}

// ------------------------------------------------------------- solve key ---

TEST(CnfCanonical, SolveKeyCoversOptions) {
  Cnf cnf(2);
  cnf.add_clause({1, 2});
  const CanonicalCnf canon = canonicalize(cnf);
  DmmOptions base;
  const auto k0 = dmm_solve_key(canon, base);
  DmmOptions steps = base;
  steps.max_steps = 999;
  DmmOptions alpha = base;
  alpha.params.alpha = 4.0;
  DmmOptions maxsat = base;
  maxsat.maxsat_mode = true;
  EXPECT_NE(k0, dmm_solve_key(canon, steps));
  EXPECT_NE(k0, dmm_solve_key(canon, alpha));
  EXPECT_NE(k0, dmm_solve_key(canon, maxsat));
  EXPECT_EQ(k0, dmm_solve_key(canon, base));
}

// ------------------------------------------------------------ solve cache --

TEST(CnfCanonical, CachedAssignmentMapsBackToRenamedFormula) {
  core::Rng rng(31);
  const auto planted = planted_ksat(rng, 12, 40, 3);
  dmm_cache().clear();

  DmmOptions options;
  options.max_steps = 200'000;
  core::Rng solve_rng(5);
  const DmmResult first = solve_dmm_cached(planted.cnf, options, solve_rng);
  ASSERT_TRUE(first.satisfied);
  ASSERT_TRUE(planted.cnf.satisfied(first.assignment));

  // A renamed copy is the same canonical instance: the solve must hit, and
  // the replayed assignment — mapped through the renamed formula's own
  // permutation — must satisfy the renamed formula.
  const auto rename = random_rename(planted.cnf.num_variables(), rng);
  const Cnf renamed = scramble(planted.cnf, rename, rng);
  const auto before = dmm_cache().stats();
  core::Rng replay_rng(99);  // rng must not matter on a replay
  const DmmResult replay = solve_dmm_cached(renamed, options, replay_rng);
  const auto after = dmm_cache().stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  ASSERT_TRUE(replay.satisfied);
  EXPECT_TRUE(renamed.satisfied(replay.assignment));
  EXPECT_EQ(replay.steps, first.steps);
  EXPECT_EQ(replay.best_unsatisfied, first.best_unsatisfied);
}

TEST(CnfCanonical, UnsatisfiedHitWarmRestartsWithoutDowngrade) {
  // x and not-x: unsatisfiable, so every solve ends unsatisfied and the
  // cache stores a best-known assignment for warm restarts.
  Cnf cnf(1);
  cnf.add_clause({1});
  cnf.add_clause({-1});
  dmm_cache().clear();
  DmmOptions options;
  options.max_steps = 50;  // keep the hopeless integration short

  core::Rng rng1(1);
  const DmmResult first = solve_dmm_cached(cnf, options, rng1);
  EXPECT_FALSE(first.satisfied);
  const auto before = dmm_cache().stats();
  core::Rng rng2(2);
  const DmmResult second = solve_dmm_cached(cnf, options, rng2);
  const auto after = dmm_cache().stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_FALSE(second.satisfied);
  // The warm restart may match but never beat-then-lose: the reported best
  // can only improve on (or equal) the cached one.
  EXPECT_LE(second.best_unsatisfied, first.best_unsatisfied);
}

TEST(CnfCanonical, DisabledCacheMatchesDirectSolveBitExactly) {
  ScopedCacheDisable off;
  core::Rng rng(77);
  const Cnf cnf = random_ksat(rng, 10, 30, 3);
  DmmOptions options;
  options.max_steps = 10'000;
  core::Rng a(42), b(42);
  const DmmResult via_cache = solve_dmm_cached(cnf, options, a);
  const DmmResult direct = DmmSolver(cnf, options).solve(b);
  EXPECT_EQ(via_cache.satisfied, direct.satisfied);
  EXPECT_EQ(via_cache.steps, direct.steps);
  EXPECT_EQ(via_cache.sim_time, direct.sim_time);
  EXPECT_EQ(via_cache.best_unsatisfied, direct.best_unsatisfied);
  EXPECT_EQ(via_cache.assignment, direct.assignment);
}

}  // namespace
}  // namespace rebooting::memcomputing
