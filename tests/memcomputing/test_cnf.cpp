#include "memcomputing/cnf.h"

#include <gtest/gtest.h>

namespace rebooting::memcomputing {
namespace {

TEST(Cnf, AddAndEvaluateClauses) {
  Cnf cnf(3);
  cnf.add_clause({1, -2});
  cnf.add_clause({2, 3});
  EXPECT_EQ(cnf.num_clauses(), 2u);

  Assignment a(4, false);
  a[1] = true;  // satisfies clause 1
  a[3] = true;  // satisfies clause 2
  EXPECT_TRUE(cnf.satisfied(a));
  a[1] = false;
  a[2] = true;  // now clause 1 unsatisfied (x1 false, x2 true)
  EXPECT_FALSE(cnf.satisfied(a));
  EXPECT_EQ(cnf.count_unsatisfied(a), 1u);
}

TEST(Cnf, WeightedUnsatisfiedSum) {
  Cnf cnf(2);
  cnf.add_clause({1}, 2.5);
  cnf.add_clause({2}, 1.5);
  Assignment a(3, false);
  EXPECT_DOUBLE_EQ(cnf.unsatisfied_weight(a), 4.0);
  a[1] = true;
  EXPECT_DOUBLE_EQ(cnf.unsatisfied_weight(a), 1.5);
}

TEST(Cnf, RejectsBadClauses) {
  Cnf cnf(2);
  EXPECT_THROW(cnf.add_clause({0}), std::invalid_argument);
  EXPECT_THROW(cnf.add_clause({3}), std::invalid_argument);
  EXPECT_THROW(cnf.add_clause(Clause{}), std::invalid_argument);
}

TEST(Cnf, ClauseRatio) {
  Cnf cnf(10);
  for (int i = 0; i < 42; ++i) cnf.add_clause({1, 2});
  EXPECT_DOUBLE_EQ(cnf.clause_ratio(), 4.2);
}

TEST(Dimacs, RoundTrip) {
  Cnf cnf(4);
  cnf.add_clause({1, -2, 3});
  cnf.add_clause({-4, 2});
  const std::string text = cnf.to_dimacs();
  const Cnf parsed = Cnf::from_dimacs_string(text);
  EXPECT_EQ(parsed.num_variables(), 4u);
  ASSERT_EQ(parsed.num_clauses(), 2u);
  EXPECT_EQ(parsed.clauses()[0].literals, (std::vector<Literal>{1, -2, 3}));
  EXPECT_EQ(parsed.clauses()[1].literals, (std::vector<Literal>{-4, 2}));
}

TEST(Dimacs, ParsesCommentsAndWhitespace) {
  const std::string text =
      "c a comment line\np cnf 2 1\nc another\n 1 -2 0\n";
  const Cnf cnf = Cnf::from_dimacs_string(text);
  EXPECT_EQ(cnf.num_variables(), 2u);
  EXPECT_EQ(cnf.num_clauses(), 1u);
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(Cnf::from_dimacs_string("1 2 0\n"), std::runtime_error);
  EXPECT_THROW(Cnf::from_dimacs_string("p cnf 2 1\n1 2\n"), std::runtime_error);
  EXPECT_THROW(Cnf::from_dimacs_string("p cnf 2 5\n1 0\n"), std::runtime_error);
  EXPECT_THROW(Cnf::from_dimacs_string(""), std::runtime_error);
}

TEST(RandomKsat, ShapeOfGeneratedFormula) {
  core::Rng rng(1);
  const Cnf cnf = random_ksat(rng, 20, 85, 3);
  EXPECT_EQ(cnf.num_variables(), 20u);
  EXPECT_EQ(cnf.num_clauses(), 85u);
  for (const Clause& c : cnf.clauses()) {
    EXPECT_EQ(c.literals.size(), 3u);
    // Distinct variables within a clause.
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = i + 1; j < 3; ++j)
        EXPECT_NE(std::abs(c.literals[i]), std::abs(c.literals[j]));
  }
}

TEST(RandomKsat, RejectsBadK) {
  core::Rng rng(1);
  EXPECT_THROW(random_ksat(rng, 3, 5, 4), std::invalid_argument);
  EXPECT_THROW(random_ksat(rng, 3, 5, 0), std::invalid_argument);
}

TEST(PlantedKsat, PlantAlwaysSatisfies) {
  core::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const auto inst = planted_ksat(rng, 25, 106, 3);
    EXPECT_TRUE(inst.cnf.satisfied(inst.plant));
  }
}

TEST(RandomAssignment, SizeAndVariety) {
  core::Rng rng(9);
  const Assignment a = random_assignment(rng, 64);
  EXPECT_EQ(a.size(), 65u);
  int ones = 0;
  for (std::size_t v = 1; v <= 64; ++v) ones += a[v] ? 1 : 0;
  EXPECT_GT(ones, 10);
  EXPECT_LT(ones, 54);
}

}  // namespace
}  // namespace rebooting::memcomputing
