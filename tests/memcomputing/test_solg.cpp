#include "memcomputing/solg.h"

#include <gtest/gtest.h>

#include "memcomputing/sat.h"

namespace rebooting::memcomputing {
namespace {

TEST(GateTruth, AllGatesMatchDefinitions) {
  EXPECT_TRUE(gate_truth(GateType::kAnd, true, true));
  EXPECT_FALSE(gate_truth(GateType::kAnd, true, false));
  EXPECT_TRUE(gate_truth(GateType::kOr, false, true));
  EXPECT_FALSE(gate_truth(GateType::kOr, false, false));
  EXPECT_TRUE(gate_truth(GateType::kXor, true, false));
  EXPECT_FALSE(gate_truth(GateType::kXor, true, true));
  EXPECT_FALSE(gate_truth(GateType::kNand, true, true));
  EXPECT_TRUE(gate_truth(GateType::kNor, false, false));
  EXPECT_TRUE(gate_truth(GateType::kXnor, true, true));
  EXPECT_TRUE(gate_truth(GateType::kNot, false, false));
  EXPECT_FALSE(gate_truth(GateType::kNot, true, false));
}

TEST(Circuit, CheckValidatesGateRelations) {
  SolgCircuit c;
  const auto a = c.add_net();
  const auto b = c.add_net();
  const auto o = c.add_net();
  c.add_gate(GateType::kAnd, {a, b, o});
  EXPECT_TRUE(c.check({true, true, true}));
  EXPECT_FALSE(c.check({true, true, false}));
  EXPECT_TRUE(c.check({false, true, false}));
}

TEST(Circuit, RejectsBadGateWiring) {
  SolgCircuit c;
  const auto a = c.add_net();
  EXPECT_THROW(c.add_gate(GateType::kAnd, {a, a}), std::invalid_argument);
  EXPECT_THROW(c.add_gate(GateType::kNot, {a, 99}), std::invalid_argument);
}

class TseitinGateTest : public ::testing::TestWithParam<GateType> {};

TEST_P(TseitinGateTest, CnfMatchesTruthTableExactly) {
  const GateType type = GetParam();
  SolgCircuit c;
  const auto a = c.add_net();
  const std::size_t b = type == GateType::kNot ? a : c.add_net();
  const auto o = c.add_net();
  if (type == GateType::kNot) {
    c.add_gate(type, {a, o});
  } else {
    c.add_gate(type, {a, b, o});
  }
  const Cnf cnf = c.to_cnf();
  const std::size_t nets = c.num_nets();
  for (unsigned mask = 0; mask < (1u << nets); ++mask) {
    std::vector<bool> values(nets);
    Assignment assign(nets + 1, false);
    for (std::size_t i = 0; i < nets; ++i) {
      values[i] = (mask >> i) & 1u;
      assign[i + 1] = values[i];
    }
    EXPECT_EQ(cnf.satisfied(assign), c.check(values))
        << to_string(type) << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGates, TseitinGateTest,
                         ::testing::Values(GateType::kAnd, GateType::kOr,
                                           GateType::kNot, GateType::kXor,
                                           GateType::kNand, GateType::kNor,
                                           GateType::kXnor));

TEST(Circuit, PinsBecomeUnitClauses) {
  SolgCircuit c;
  const auto a = c.add_net();
  const auto o = c.add_net();
  c.add_gate(GateType::kNot, {a, o});
  c.pin(a, true);
  const Cnf cnf = c.to_cnf();
  const SatResult r = dpll(cnf);
  ASSERT_TRUE(r.satisfied);
  EXPECT_TRUE(r.assignment[a + 1]);
  EXPECT_FALSE(r.assignment[o + 1]);
}

TEST(Solve, ForwardEvaluationViaDmm) {
  core::Rng rng(1);
  SolgCircuit c;
  const auto x = c.add_net();
  const auto y = c.add_net();
  const auto s = c.add_net();
  const auto carry = c.add_net();
  c.add_gate(GateType::kXor, {x, y, s});
  c.add_gate(GateType::kAnd, {x, y, carry});
  c.pin(x, true);
  c.pin(y, true);
  const SolgResult r = c.solve(rng);
  ASSERT_TRUE(r.consistent);
  EXPECT_FALSE(r.values[s]);
  EXPECT_TRUE(r.values[carry]);
}

TEST(Solve, TerminalAgnosticInversion) {
  // Pin an AND gate's OUTPUT; the inputs must self-organize to (1, 1).
  core::Rng rng(3);
  SolgCircuit c;
  const auto a = c.add_net();
  const auto b = c.add_net();
  const auto o = c.add_net();
  c.add_gate(GateType::kAnd, {a, b, o});
  c.pin(o, true);
  const SolgResult r = c.solve(rng);
  ASSERT_TRUE(r.consistent);
  EXPECT_TRUE(r.values[a]);
  EXPECT_TRUE(r.values[b]);
}

TEST(Solve, NativeRelaxationHandlesSmallCircuits) {
  core::Rng rng(5);
  SolgCircuit c;
  const auto a = c.add_net();
  const auto b = c.add_net();
  const auto o = c.add_net();
  c.add_gate(GateType::kOr, {a, b, o});
  c.pin(o, false);  // forces a = b = 0
  SolgOptions opts;
  opts.engine = SolgEngine::kNativeRelaxation;
  opts.max_steps = 20000;
  const SolgResult r = c.solve(rng, opts);
  ASSERT_TRUE(r.consistent);
  EXPECT_FALSE(r.values[a]);
  EXPECT_FALSE(r.values[b]);
}

TEST(Multiplier, StructureComputesAllProducts) {
  // Digital forward evaluation over every input pair, via the CNF + DPLL
  // (the complete solver acts as the reference evaluator).
  auto mc = build_multiplier(2, 2);
  for (unsigned a = 0; a < 4; ++a) {
    for (unsigned b = 0; b < 4; ++b) {
      for (int i = 0; i < 2; ++i) {
        mc.circuit.pin(mc.a_bits[static_cast<std::size_t>(i)], (a >> i) & 1u);
        mc.circuit.pin(mc.b_bits[static_cast<std::size_t>(i)], (b >> i) & 1u);
      }
      const SatResult r = dpll(mc.circuit.to_cnf());
      ASSERT_TRUE(r.satisfied);
      unsigned prod = 0;
      for (std::size_t i = 0; i < mc.product_bits.size(); ++i)
        if (r.assignment[mc.product_bits[i] + 1]) prod |= 1u << i;
      EXPECT_EQ(prod, a * b);
    }
  }
}

class FactorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FactorTest, FactorsSemiprimeByInvertedMultiplier) {
  const std::uint64_t n = GetParam();
  core::Rng rng(7);
  const FactorResult fr = solg_factor(n, 3, 3, rng);
  ASSERT_TRUE(fr.found) << "n=" << n;
  EXPECT_EQ(fr.a * fr.b, n);
  EXPECT_GT(fr.a, 1u);
  EXPECT_GT(fr.b, 1u);
}

INSTANTIATE_TEST_SUITE_P(Semiprimes, FactorTest,
                         ::testing::Values(15ull, 21ull, 35ull, 49ull));

TEST(Factor, RejectsOversizedTarget) {
  core::Rng rng(9);
  EXPECT_THROW(solg_factor(1000, 2, 2, rng), std::invalid_argument);
}

TEST(SubsetSum, CircuitStructureEvaluatesSums) {
  // Pin selectors, solve forward via DPLL on the Tseitin CNF, check the sum.
  const std::vector<std::uint64_t> values{3, 5, 6};
  for (unsigned mask = 0; mask < 8; ++mask) {
    SubsetSumCircuit sc = build_subset_sum(values);
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const bool on = (mask >> i) & 1u;
      sc.circuit.pin(sc.selectors[i], on);
      if (on) expected += values[i];
    }
    const SatResult r = dpll(sc.circuit.to_cnf());
    ASSERT_TRUE(r.satisfied);
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < sc.sum_bits.size(); ++j)
      if (r.assignment[sc.sum_bits[j] + 1]) sum |= 1ull << j;
    EXPECT_EQ(sum, expected) << "mask=" << mask;
  }
}

class SubsetSumTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, bool>> {};

TEST_P(SubsetSumTest, FindsSubsetWhenOneExists) {
  const auto [target, feasible] = GetParam();
  const std::vector<std::uint64_t> values{3, 5, 9, 14, 22};
  core::Rng rng(11);
  SolgOptions opts;
  opts.max_steps = 60'000;
  const SubsetSumResult r = solg_subset_sum(values, target, rng, opts);
  EXPECT_EQ(r.found, feasible) << "target=" << target;
  if (r.found) EXPECT_EQ(r.achieved, target);
}

INSTANTIATE_TEST_SUITE_P(
    Targets, SubsetSumTest,
    ::testing::Values(std::pair{std::uint64_t{17}, true},   // 3+14
                      std::pair{std::uint64_t{31}, true},   // 9+22
                      std::pair{std::uint64_t{53}, true},   // all
                      std::pair{std::uint64_t{0}, true},    // empty subset
                      std::pair{std::uint64_t{1}, false},   // infeasible
                      std::pair{std::uint64_t{2}, false})); // infeasible

TEST(SubsetSum, InputValidation) {
  core::Rng rng(1);
  EXPECT_THROW(build_subset_sum({}), std::invalid_argument);
  EXPECT_THROW(build_subset_sum({0}), std::invalid_argument);
  EXPECT_THROW(solg_subset_sum({3, 5}, 100, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::memcomputing
