// JSON reader tests: round-trips of the writer helpers, strictness (trailing
// garbage, bad escapes, deep nesting), and the accessor error contract the
// telemetry/trace exporter tests lean on.
#include "core/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace rebooting::core {
namespace {

TEST(JsonParse, ScalarsAndLiterals) {
  EXPECT_TRUE(json_parse("null")->is_null());
  EXPECT_TRUE(json_parse("true")->boolean());
  EXPECT_FALSE(json_parse("false")->boolean());
  EXPECT_DOUBLE_EQ(json_parse("0")->number(), 0.0);
  EXPECT_DOUBLE_EQ(json_parse("-12.5e2")->number(), -1250.0);
  EXPECT_EQ(json_parse("\"hi\"")->string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\/d\n\t")")->string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(json_parse(R"("Aé")")->string(), "A\xc3\xa9");
  // Unpaired surrogates are rejected rather than silently mangled.
  EXPECT_FALSE(json_parse(R"("\ud800")").has_value());
  EXPECT_FALSE(json_parse(R"("bad \q escape")").has_value());
}

TEST(JsonParse, ArraysAndObjectsKeepOrder) {
  const auto v = json_parse(R"({"b": [1, 2, 3], "a": {"x": true}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  ASSERT_EQ(v->object().size(), 2u);
  EXPECT_EQ(v->object()[0].first, "b");  // document order, not sorted
  EXPECT_EQ(v->object()[1].first, "a");
  const auto& arr = v->at("b").array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[2].number(), 3.0);
  EXPECT_TRUE(v->at("a").at("x").boolean());
  EXPECT_TRUE(v->contains("a"));
  EXPECT_FALSE(v->contains("c"));
}

TEST(JsonParse, StrictnessRejectsMalformedDocuments) {
  EXPECT_FALSE(json_parse("").has_value());
  EXPECT_FALSE(json_parse("{\"a\": 1,}").has_value());  // trailing comma
  EXPECT_FALSE(json_parse("[1, 2] garbage").has_value());
  EXPECT_FALSE(json_parse("[1, 2").has_value());
  EXPECT_FALSE(json_parse("01").has_value());  // leading zero
  EXPECT_FALSE(json_parse("+1").has_value());
  EXPECT_FALSE(json_parse("{'a': 1}").has_value());  // single quotes

  // The depth cap turns a pathological document into nullopt, not a crash.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(json_parse(deep).has_value());
}

TEST(JsonParse, AccessorsThrowOnTypeMismatch) {
  const auto v = json_parse("{\"n\": 1}");
  ASSERT_TRUE(v.has_value());
  EXPECT_THROW(v->array(), std::runtime_error);
  EXPECT_THROW(v->at("n").string(), std::runtime_error);
  EXPECT_THROW(v->at("missing"), std::out_of_range);
}

TEST(JsonParse, RoundTripsWriterHelpers) {
  // The writer renders NaN/Inf as null (JSON has no such numbers); the
  // reader must accept the result of every writer path.
  EXPECT_DOUBLE_EQ(json_parse(json_number(Real{0.1}))->number(), 0.1);
  EXPECT_DOUBLE_EQ(json_parse(json_number(std::int64_t{-42}))->number(),
                   -42.0);
  EXPECT_TRUE(
      json_parse(json_number(std::numeric_limits<Real>::quiet_NaN()))
          ->is_null());
  const std::string tricky = "line\nbreak \"quote\" \x01 end";
  EXPECT_EQ(json_parse(json_quote(tricky))->string(), tricky);
}

// json_dump must be the exact inverse of json_parse for every value kind,
// including nesting, member order, and tricky strings.
TEST(JsonDump, RoundTripsComposedValues) {
  JsonValue::Members inner;
  inner.emplace_back("z", JsonValue::make_number(1.5));
  inner.emplace_back("a", JsonValue::make_string("ordered after z"));
  std::vector<JsonValue> arr;
  arr.push_back(JsonValue::make_null());
  arr.push_back(JsonValue::make_bool(true));
  arr.push_back(JsonValue::make_bool(false));
  arr.push_back(JsonValue::make_number(-0.125));
  arr.push_back(JsonValue::make_string("tab\there \"q\" \x02"));
  arr.push_back(JsonValue::make_object(std::move(inner)));
  arr.push_back(JsonValue::make_array({}));
  JsonValue::Members top;
  top.emplace_back("items", JsonValue::make_array(std::move(arr)));
  top.emplace_back("empty", JsonValue::make_object({}));
  const JsonValue doc = JsonValue::make_object(std::move(top));

  const std::string text = json_dump(doc);
  const auto back = json_parse(text);
  ASSERT_TRUE(back.has_value());
  // Dumping the re-parsed value must reproduce the text exactly: one stable
  // canonical rendering (member order preserved, numbers via max_digits10).
  EXPECT_EQ(json_dump(*back), text);

  const auto& items = back->at("items").array();
  ASSERT_EQ(items.size(), 7u);
  EXPECT_TRUE(items[0].is_null());
  EXPECT_TRUE(items[1].boolean());
  EXPECT_FALSE(items[2].boolean());
  EXPECT_DOUBLE_EQ(items[3].number(), -0.125);
  EXPECT_EQ(items[4].string(), "tab\there \"q\" \x02");
  EXPECT_EQ(items[5].object().front().first, "z");  // document order kept
  EXPECT_TRUE(items[6].array().empty());
  EXPECT_TRUE(back->at("empty").object().empty());
}

TEST(JsonDump, NumberPrecisionSurvivesRoundTrip) {
  for (const Real v : {1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 4503599627370497.0}) {
    const auto back =
        json_parse(json_dump(JsonValue::make_number(v)));
    ASSERT_TRUE(back.has_value());
    EXPECT_DOUBLE_EQ(back->number(), v);
  }
  // The one lossy case: non-finite numbers render as null, like json_number.
  EXPECT_EQ(json_dump(JsonValue::make_number(
                std::numeric_limits<Real>::infinity())),
            "null");
}

TEST(JsonDump, CompactFormMatchesHandWrittenDocument) {
  const auto parsed = json_parse(R"({"a":[1,true,null,"s"],"b":{}})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(json_dump(*parsed), R"({"a":[1,true,null,"s"],"b":{}})");
}

}  // namespace
}  // namespace rebooting::core
