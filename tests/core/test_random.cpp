#include "core/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace rebooting::core {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  Real sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const Real u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(23);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformIntBadRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(31);
  const int n = 200000;
  Real sum = 0.0;
  Real sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const Real x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(37);
  const int n = 100000;
  Real sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<Real>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngStream, DeterministicInBothArguments) {
  Rng a = Rng::stream(123, 42);
  Rng b = Rng::stream(123, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngStream, IsPureAndStateless) {
  // Unlike split(), stream() must not depend on or advance any generator
  // state — calling it repeatedly or in any order gives the same stream.
  Rng first = Rng::stream(7, 3);
  Rng unrelated = Rng::stream(7, 1000);
  for (int i = 0; i < 10; ++i) (void)unrelated();
  Rng second = Rng::stream(7, 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(first(), second());
}

TEST(RngStream, AdjacentIndicesDecorrelated) {
  // Counter-based streams for i and i+1 must look like independently seeded
  // generators, not shifted copies.
  Rng a = Rng::stream(55, 0);
  Rng b = Rng::stream(55, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngStream, DifferentSeedsGiveDifferentStreams) {
  Rng a = Rng::stream(1, 9);
  Rng b = Rng::stream(2, 9);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngStream, FirstDrawsUniqueAcrossManyIndices) {
  // 4096 trajectory streams from one seed: no colliding first outputs (a
  // collision would mean two trajectories share their entire sequence).
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t i = 0; i < 4096; ++i)
    first_draws.insert(Rng::stream(2026, i)());
  EXPECT_EQ(first_draws.size(), 4096u);
}

TEST(RngStream, StreamMeanStaysUniform) {
  // Cheap cross-stream uniformity check: the first uniform() of many streams
  // should average to ~0.5 like any healthy generator sequence.
  Real sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += Rng::stream(11, static_cast<std::uint64_t>(i)).uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Rng rng(53);
  const auto sample = sample_without_replacement(rng, 20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const std::size_t s : sample) EXPECT_LT(s, 20u);
}

TEST(SampleWithoutReplacement, FullRangeIsPermutation) {
  Rng rng(59);
  const auto sample = sample_without_replacement(rng, 6, 6);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(SampleWithoutReplacement, KGreaterThanNThrows) {
  Rng rng(1);
  EXPECT_THROW(sample_without_replacement(rng, 3, 4), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::core
