#include "core/energy.h"

#include <gtest/gtest.h>

namespace rebooting::core {
namespace {

TEST(Technology, SwitchingEnergyFormula) {
  const auto tech = CmosTechnology::node_32nm();
  // (1 + wire) * C * Vdd^2 = 1.6 * 1fF * 0.81 = 1.296 fJ.
  EXPECT_NEAR(tech.switching_energy(), 1.296e-15, 1e-18);
}

TEST(Technology, NodesOrderedBySwitchingEnergy) {
  EXPECT_GT(CmosTechnology::node_45nm().switching_energy(),
            CmosTechnology::node_32nm().switching_energy());
  EXPECT_GT(CmosTechnology::node_32nm().switching_energy(),
            CmosTechnology::node_22nm().switching_energy());
}

TEST(GateInventory, Nand2Equivalents) {
  GateInventory g;
  g.inverters = 2;   // 1.0
  g.nand2 = 3;       // 3.0
  g.xor2 = 1;        // 3.0
  g.full_adders = 2; // 12.0
  g.flipflops = 1;   // 8.0
  g.mux2 = 1;        // 3.0
  EXPECT_DOUBLE_EQ(g.nand2_equivalents(), 30.0);
}

TEST(GateInventory, AdditionAndScaling) {
  GateInventory a;
  a.nand2 = 2;
  a.xor2 = 1;
  GateInventory b;
  b.nand2 = 3;
  b.flipflops = 2;
  const GateInventory sum = a + b;
  EXPECT_EQ(sum.nand2, 5u);
  EXPECT_EQ(sum.xor2, 1u);
  EXPECT_EQ(sum.flipflops, 2u);
  const GateInventory scaled = 4 * a;
  EXPECT_EQ(scaled.nand2, 8u);
  EXPECT_EQ(scaled.xor2, 4u);
}

TEST(BlockPower, DynamicScalesLinearlyWithFrequencyAndActivity) {
  const auto tech = CmosTechnology::node_32nm();
  GateInventory g;
  g.nand2 = 100;
  const auto p1 = estimate_block_power(tech, g, 1e9, 0.2);
  const auto p2 = estimate_block_power(tech, g, 2e9, 0.2);
  const auto p3 = estimate_block_power(tech, g, 1e9, 0.4);
  EXPECT_NEAR(p2.dynamic_watts, 2.0 * p1.dynamic_watts, 1e-12);
  EXPECT_NEAR(p3.dynamic_watts, 2.0 * p1.dynamic_watts, 1e-12);
  EXPECT_DOUBLE_EQ(p1.leakage_watts, p2.leakage_watts);
}

TEST(BlockPower, LeakageIndependentOfFrequency) {
  const auto tech = CmosTechnology::node_32nm();
  GateInventory g;
  g.nand2 = 40;
  const auto p = estimate_block_power(tech, g, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(p.dynamic_watts, 0.0);
  EXPECT_NEAR(p.leakage_watts, 40.0 * tech.leakage_per_gate, 1e-15);
}

TEST(BlockPower, RejectsBadActivity) {
  const auto tech = CmosTechnology::node_32nm();
  GateInventory g;
  g.nand2 = 1;
  EXPECT_THROW(estimate_block_power(tech, g, 1e9, 1.5), std::invalid_argument);
  EXPECT_THROW(estimate_block_power(tech, g, -1.0, 0.5), std::invalid_argument);
}

TEST(BlockEnergy, MatchesPowerTimesTime) {
  const auto tech = CmosTechnology::node_32nm();
  GateInventory g;
  g.nand2 = 500;
  const Real freq = 1e9;
  const Real activity = 0.3;
  const Real ops = 1e6;
  const Real energy = block_energy_for_ops(tech, g, freq, activity, ops, 1.0);
  const auto p = estimate_block_power(tech, g, freq, activity);
  EXPECT_NEAR(energy, p.total() * (ops / freq), 1e-12);
}

TEST(BlockEnergy, RejectsZeroFrequency) {
  const auto tech = CmosTechnology::node_32nm();
  GateInventory g;
  EXPECT_THROW(block_energy_for_ops(tech, g, 0.0, 0.1, 10.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::core
