#include "core/ensemble.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/random.h"

namespace rebooting::core {
namespace {

TEST(Ensemble, RunsEveryTrajectoryExactlyOnce) {
  constexpr std::size_t kCount = 100;
  std::vector<std::atomic<int>> runs(kCount);
  EnsembleOptions opts;
  opts.threads = 4;
  const EnsembleStats stats =
      run_ensemble(kCount, opts, [&](std::size_t i, Workspace&) {
        runs[i].fetch_add(1);
        return true;
      });
  EXPECT_EQ(stats.trajectories, kCount);
  EXPECT_FALSE(stats.stopped_early);
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(Ensemble, ZeroTrajectoriesIsANoop) {
  const EnsembleStats stats =
      run_ensemble(0, {}, [](std::size_t, Workspace&) { return true; });
  EXPECT_EQ(stats.trajectories, 0u);
  EXPECT_EQ(stats.threads_used, 0u);
}

TEST(Ensemble, ThreadCountCappedAtTrajectoryCount) {
  EnsembleOptions opts;
  opts.threads = 16;
  const EnsembleStats stats =
      run_ensemble(3, opts, [](std::size_t, Workspace&) { return true; });
  EXPECT_EQ(stats.threads_used, 3u);
}

TEST(Ensemble, ResultsAreBitIdenticalAcrossThreadCounts) {
  // The reproducibility contract: index-derived randomness + per-slot writes
  // give the same outputs at any thread count.
  constexpr std::size_t kCount = 64;
  constexpr std::uint64_t kSeed = 2026;
  const auto sweep = [&](std::size_t threads) {
    std::vector<Real> out(kCount);
    EnsembleOptions opts;
    opts.threads = threads;
    run_ensemble(kCount, opts, [&](std::size_t i, Workspace& ws) {
      Rng rng = Rng::stream(kSeed, i);
      const auto scope = ws.scope();
      const auto scratch = ws.real(16);
      for (Real& x : scratch) x = rng.normal();
      Real acc = 0.0;
      for (const Real x : scratch) acc += x * x;
      out[i] = acc;
      return true;
    });
    return out;
  };
  const std::vector<Real> serial = sweep(1);
  const std::vector<Real> four = sweep(4);
  const std::vector<Real> eight = sweep(8);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(serial[i], four[i]) << "i=" << i;
    EXPECT_EQ(serial[i], eight[i]) << "i=" << i;
  }
}

TEST(Ensemble, EarlyStopNeverSkipsIndicesBelowTheWinner) {
  // Indices are claimed in order and stop is checked before claiming, so a
  // win at index w guarantees 0..w all ran — the deterministic-winner
  // invariant. Everything after w may or may not have been claimed.
  constexpr std::size_t kCount = 200;
  constexpr std::size_t kWinner = 37;
  std::vector<std::atomic<int>> runs(kCount);
  EnsembleOptions opts;
  opts.threads = 8;
  const EnsembleStats stats =
      run_ensemble(kCount, opts, [&](std::size_t i, Workspace&) {
        runs[i].fetch_add(1);
        return i != kWinner;
      });
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_LT(stats.trajectories, kCount);
  for (std::size_t i = 0; i <= kWinner; ++i)
    EXPECT_EQ(runs[i].load(), 1) << "i=" << i;
  for (std::size_t i = 0; i < kCount; ++i)
    EXPECT_LE(runs[i].load(), 1) << "i=" << i;
}

TEST(Ensemble, WorkspacesAreIsolatedPerWorkerAndReusable) {
  // Each body stamps its whole block with its index and re-checks it after a
  // second acquisition round: cross-thread sharing or block movement would
  // corrupt the pattern. Run enough trajectories that workers iterate.
  constexpr std::size_t kCount = 256;
  std::atomic<int> corrupt{0};
  EnsembleOptions opts;
  opts.threads = 8;
  run_ensemble(kCount, opts, [&](std::size_t i, Workspace& ws) {
    const auto scope = ws.scope();
    const auto a = ws.real(128);
    const auto b = ws.real(64);
    const Real stamp = static_cast<Real>(i);
    for (Real& x : a) x = stamp;
    for (Real& x : b) x = -stamp;
    for (const Real x : a)
      if (x != stamp) corrupt.fetch_add(1);
    for (const Real x : b)
      if (x != -stamp) corrupt.fetch_add(1);
    return true;
  });
  EXPECT_EQ(corrupt.load(), 0);
}

TEST(Ensemble, BodyExceptionIsRethrown) {
  EnsembleOptions opts;
  opts.threads = 4;
  EXPECT_THROW(run_ensemble(50, opts,
                            [](std::size_t i, Workspace&) {
                              if (i == 13)
                                throw std::runtime_error("trajectory failed");
                              return true;
                            }),
               std::runtime_error);
}

TEST(RngStream, SameInputsSameStream) {
  Rng a = Rng::stream(99, 5);
  Rng b = Rng::stream(99, 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace rebooting::core
