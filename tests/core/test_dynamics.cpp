#include "core/dynamics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/ode.h"

namespace rebooting::core {
namespace {

/// dy/dt = -lambda y, solution y0 * exp(-lambda t).
struct DecayKernel {
  Real lambda = 1.0;
  void rhs(Real /*t*/, std::span<const Real> y, std::span<Real> dydt) const {
    for (std::size_t i = 0; i < y.size(); ++i) dydt[i] = -lambda * y[i];
  }
};

/// Harmonic oscillator (y0, y1) = (cos t, -sin t); conserves y0^2 + y1^2.
struct HarmonicKernel {
  void rhs(Real /*t*/, std::span<const Real> y, std::span<Real> dydt) const {
    dydt[0] = y[1];
    dydt[1] = -y[0];
  }
};

/// Kernels may be stateful (the SOLG native sweep mutates gate memories).
struct CountingKernel {
  std::size_t evals = 0;
  void rhs(Real /*t*/, std::span<const Real> y, std::span<Real> dydt) {
    ++evals;
    for (std::size_t i = 0; i < y.size(); ++i) dydt[i] = -y[i];
  }
};

TEST(Workspace, HandsOutDistinctBlocks) {
  Workspace ws;
  const auto a = ws.real(16);
  const auto b = ws.real(16);
  EXPECT_NE(a.data(), b.data());
  const auto ba = ws.bytes(8);
  const auto bb = ws.bytes(8);
  EXPECT_NE(ba.data(), bb.data());
}

TEST(Workspace, ScopeRecyclesBlocksWithoutReallocating) {
  Workspace ws;
  Real* first = nullptr;
  {
    const auto scope = ws.scope();
    first = ws.real(64).data();
  }
  {
    const auto scope = ws.scope();
    EXPECT_EQ(ws.real(64).data(), first);  // same block, not a new allocation
  }
}

TEST(Workspace, NestedScopesDoNotAliasOuterBlocks) {
  Workspace ws;
  const auto outer_scope = ws.scope();
  const auto outer = ws.real(32);
  std::fill(outer.begin(), outer.end(), 7.0);
  {
    const auto inner_scope = ws.scope();
    const auto inner = ws.real(32);
    EXPECT_NE(inner.data(), outer.data());
    std::fill(inner.begin(), inner.end(), -1.0);
  }
  for (const Real x : outer) EXPECT_EQ(x, 7.0);
}

TEST(Workspace, GrowingABlockDoesNotMoveOthers) {
  Workspace ws;
  const auto a = ws.real(8);
  std::fill(a.begin(), a.end(), 3.0);
  const Real* a_data = a.data();
  // Acquiring a large second block must not disturb the first one.
  const auto b = ws.real(1 << 16);
  (void)b;
  EXPECT_EQ(a.data(), a_data);
  for (const Real x : a) EXPECT_EQ(x, 3.0);
}

TEST(IntegrateFixed, TimeGridIsDriftFree) {
  // 0.1 is not representable in binary; an accumulating t += dt drifts off
  // the exact grid within a few thousand steps. The driver must report
  // t = t0 + k*dt exactly.
  DecayKernel f;
  Workspace ws;
  std::vector<Real> y{1.0};
  const Real dt = 0.1;
  std::size_t k = 0;
  bool exact = true;
  const Real t_final = integrate_fixed(
      f, Scheme::kHeun, 0.0, 1000.0, dt, std::span<Real>(y), ws,
      [&](Real t, std::span<const Real>) {
        ++k;
        if (t != std::min(static_cast<Real>(k) * dt, 1000.0)) exact = false;
        return true;
      });
  EXPECT_TRUE(exact);
  EXPECT_EQ(t_final, 1000.0);
  EXPECT_EQ(k, 10000u);
}

TEST(IntegrateFixed, KernelMatchesLegacyFunctionPathBitwise) {
  // The std::function API must be a pure adapter: same arithmetic, same
  // result to the last bit.
  DecayKernel f{0.7};
  Workspace ws;
  std::vector<Real> y_kernel{1.0, 2.0, -0.5};
  integrate_fixed(f, Scheme::kRk4, 0.0, 3.0, 1e-3, std::span<Real>(y_kernel),
                  ws);

  const OdeRhs rhs = [](Real, std::span<const Real> y, std::span<Real> dydt) {
    for (std::size_t i = 0; i < y.size(); ++i) dydt[i] = -0.7 * y[i];
  };
  std::vector<Real> y_fn{1.0, 2.0, -0.5};
  integrate_fixed(rhs, Scheme::kRk4, 0.0, 3.0, 1e-3, y_fn);

  for (std::size_t i = 0; i < y_fn.size(); ++i)
    EXPECT_EQ(y_kernel[i], y_fn[i]);
}

TEST(IntegrateFixed, SchemesConvergeAtTheirOrder) {
  const auto error_at = [](Scheme scheme, Real dt) {
    DecayKernel f;
    Workspace ws;
    std::vector<Real> y{1.0};
    integrate_fixed(f, scheme, 0.0, 1.0, dt, std::span<Real>(y), ws);
    return std::abs(y[0] - std::exp(-1.0));
  };
  // Halving dt must cut the global error by ~2^order.
  const Real euler = error_at(Scheme::kEuler, 1e-2) /
                     error_at(Scheme::kEuler, 5e-3);
  const Real heun = error_at(Scheme::kHeun, 1e-2) /
                    error_at(Scheme::kHeun, 5e-3);
  const Real rk4 = error_at(Scheme::kRk4, 1e-1) /
                   error_at(Scheme::kRk4, 5e-2);
  EXPECT_NEAR(euler, 2.0, 0.2);
  EXPECT_NEAR(heun, 4.0, 0.4);
  EXPECT_NEAR(rk4, 16.0, 1.6);
}

TEST(IntegrateFixed, ObserverStopsEarly) {
  DecayKernel f;
  Workspace ws;
  std::vector<Real> y{1.0};
  const Real t_final =
      integrate_fixed(f, Scheme::kEuler, 0.0, 10.0, 0.25, std::span<Real>(y),
                      ws, [](Real t, std::span<const Real>) {
                        return t < 2.0;  // stop at the first t >= 2
                      });
  EXPECT_EQ(t_final, 2.0);
}

TEST(IntegrateFixed, RejectsNonPositiveDt) {
  DecayKernel f;
  Workspace ws;
  std::vector<Real> y{1.0};
  EXPECT_THROW(integrate_fixed(f, Scheme::kEuler, 0.0, 1.0, 0.0,
                               std::span<Real>(y), ws),
               std::invalid_argument);
}

TEST(Steps, RejectUndersizedScratch) {
  DecayKernel f;
  std::vector<Real> y{1.0, 2.0};
  std::vector<Real> scratch(2 * y.size());  // heun needs 3x
  EXPECT_THROW(
      heun_step(f, 0.0, 0.1, std::span<Real>(y), std::span<Real>(scratch)),
      std::invalid_argument);
}

TEST(Steps, StatefulKernelsCompileAndRun) {
  CountingKernel f;
  std::vector<Real> y{1.0};
  std::vector<Real> scratch(5);
  rk4_step(f, 0.0, 0.1, std::span<Real>(y), std::span<Real>(scratch));
  EXPECT_EQ(f.evals, 4u);  // RK4 = four RHS evaluations
}

TEST(IntegrateAdaptive, MeetsToleranceOnDecay) {
  DecayKernel f;
  Workspace ws;
  std::vector<Real> y{1.0};
  AdaptiveOptions opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-8;
  const AdaptiveResult res =
      integrate_adaptive(f, 0.0, 5.0, std::span<Real>(y), opts, ws);
  EXPECT_EQ(res.t_final, 5.0);
  EXPECT_GT(res.accepted_steps, 0u);
  EXPECT_FALSE(res.hit_step_limit);
  EXPECT_NEAR(y[0], std::exp(-5.0), 1e-6);
}

TEST(IntegrateAdaptive, ConservesHarmonicEnergy) {
  HarmonicKernel f;
  Workspace ws;
  std::vector<Real> y{1.0, 0.0};
  AdaptiveOptions opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-9;
  integrate_adaptive(f, 0.0, 20.0, std::span<Real>(y), opts, ws);
  EXPECT_NEAR(y[0] * y[0] + y[1] * y[1], 1.0, 1e-5);
}

TEST(IntegrateAdaptive, ObserverStopFlagged) {
  DecayKernel f;
  Workspace ws;
  std::vector<Real> y{1.0};
  AdaptiveOptions opts;
  const AdaptiveResult res = integrate_adaptive(
      f, 0.0, 50.0, std::span<Real>(y), opts, ws,
      [](Real, std::span<const Real> s) { return s[0] > 0.5; });
  EXPECT_TRUE(res.stopped_by_observer);
  EXPECT_LT(res.t_final, 50.0);
  EXPECT_LE(y[0], 0.5);
}

}  // namespace
}  // namespace rebooting::core
