#include "core/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "memcomputing/dmm.h"
#include "oscillator/network.h"
#include "scheduler/scheduler.h"

namespace rebooting::core {
namespace {

constexpr const char* kPlanJson = R"({
  "seed": 1234,
  "kinds": {
    "quantum": {
      "transient_probability": 0.2,
      "latency_spike_probability": 0.05,
      "latency_spike_seconds": 0.001,
      "corruption_probability": 0.01
    },
    "oscillator": { "permanent_after": 100 }
  }
})";

FaultPlan transient_plan(std::uint64_t seed, Real p) {
  FaultPlan plan;
  plan.seed = seed;
  plan.kinds[AcceleratorKind::kClassicalCpu].transient_probability = p;
  return plan;
}

// ---------------------------------------------------------------- parsing --

TEST(FaultPlanParse, RoundTripFromJson) {
  const FaultPlan plan = FaultPlan::parse(kPlanJson);
  EXPECT_EQ(plan.seed, 1234u);
  ASSERT_EQ(plan.kinds.size(), 2u);
  const FaultSpec* q = plan.spec_for(AcceleratorKind::kQuantum);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->transient_probability, 0.2);
  EXPECT_EQ(q->latency_spike_probability, 0.05);
  EXPECT_EQ(q->latency_spike_seconds, 0.001);
  EXPECT_EQ(q->corruption_probability, 0.01);
  EXPECT_EQ(q->permanent_after, 0u);
  EXPECT_TRUE(q->enabled());
  const FaultSpec* o = plan.spec_for(AcceleratorKind::kOscillator);
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->permanent_after, 100u);
  EXPECT_TRUE(o->enabled());
  EXPECT_EQ(plan.spec_for(AcceleratorKind::kMemcomputing), nullptr);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanParse, StrictSchemaRejectsMistakes) {
  // Unknown top-level key.
  EXPECT_THROW(FaultPlan::parse(R"({"sed": 1, "kinds": {}})"),
               std::invalid_argument);
  // Unknown accelerator kind.
  EXPECT_THROW(FaultPlan::parse(R"({"kinds": {"gpu": {}}})"),
               std::invalid_argument);
  // Unknown spec key (typo'd probability).
  EXPECT_THROW(
      FaultPlan::parse(R"({"kinds": {"quantum": {"transient_prob": 0.5}}})"),
      std::invalid_argument);
  // Probability out of range.
  EXPECT_THROW(
      FaultPlan::parse(
          R"({"kinds": {"quantum": {"transient_probability": 1.5}}})"),
      std::invalid_argument);
  EXPECT_THROW(
      FaultPlan::parse(
          R"({"kinds": {"quantum": {"transient_probability": -0.1}}})"),
      std::invalid_argument);
  // Not even JSON.
  EXPECT_THROW(FaultPlan::parse("not json"), std::invalid_argument);
}

TEST(FaultPlanLoad, ReadsFileAndFailsLoudlyOnMissing) {
  const std::string path = ::testing::TempDir() + "fault_plan_test.json";
  { std::ofstream(path) << kPlanJson; }
  const FaultPlan plan = FaultPlan::load(path);
  EXPECT_EQ(plan.seed, 1234u);
  EXPECT_NE(plan.spec_for(AcceleratorKind::kQuantum), nullptr);
  std::remove(path.c_str());
  EXPECT_THROW(FaultPlan::load(path), std::runtime_error);
}

TEST(FaultPlanEnv, UnsetVariableMeansNoPlan) {
  // This binary never sets REBOOTING_FAULTS, and the loader caches per
  // process: both calls must agree on "no plan".
  EXPECT_EQ(FaultPlan::from_env(), nullptr);
  EXPECT_EQ(FaultPlan::from_env(), nullptr);
}

// ---------------------------------------------------------- determinism ----

TEST(FaultPlanDecide, IdenticalSeedsProduceIdenticalSequences) {
  const FaultPlan a = transient_plan(77, 0.3);
  const FaultPlan b = transient_plan(77, 0.3);
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    for (std::uint64_t attempt = 1; attempt <= 4; ++attempt) {
      const FaultOutcome oa =
          a.decide(AcceleratorKind::kClassicalCpu, seq, attempt);
      const FaultOutcome ob =
          b.decide(AcceleratorKind::kClassicalCpu, seq, attempt);
      ASSERT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind))
          << "seq=" << seq << " attempt=" << attempt;
      ASSERT_EQ(oa.description, ob.description);
    }
  }
}

TEST(FaultPlanDecide, DifferentSeedsDiverge) {
  const FaultPlan a = transient_plan(1, 0.3);
  const FaultPlan b = transient_plan(2, 0.3);
  std::size_t differing = 0;
  for (std::uint64_t seq = 0; seq < 500; ++seq)
    if (a.decide(AcceleratorKind::kClassicalCpu, seq, 1).kind !=
        b.decide(AcceleratorKind::kClassicalCpu, seq, 1).kind)
      ++differing;
  EXPECT_GT(differing, 0u);
}

TEST(FaultPlanDecide, VerdictIsReplicaIndependent) {
  // Two decorators over *different* inner instances share the plan's
  // counter-keyed stream: the same (seq, attempt) reaches the same verdict on
  // either replica — the property that makes chaos runs reproducible at any
  // worker count.
  auto plan = std::make_shared<const FaultPlan>(transient_plan(9, 0.4));
  FaultyAccelerator r0(std::make_shared<CpuAccelerator>(), plan);
  FaultyAccelerator r1(std::make_shared<CpuAccelerator>(), plan);
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const FaultOutcome a = r0.on_attempt(seq, 1);
    const FaultOutcome b = r1.on_attempt(seq, 1);
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind))
        << "seq=" << seq;
  }
}

// ----------------------------------------------------------- statistics ----

// Observed fault counts over N independent attempts are Binomial(N, p);
// |x - Np| <= 4 sqrt(Np(1-p)) holds with probability ~0.99994.
void expect_binomial(std::size_t hits, std::size_t n, Real p,
                     const char* what) {
  const Real mean = static_cast<Real>(n) * p;
  const Real bound = 4.0 * std::sqrt(mean * (1.0 - p));
  EXPECT_LE(std::abs(static_cast<Real>(hits) - mean), bound)
      << what << ": " << hits << " of " << n << " at p=" << p;
}

TEST(FaultPlanStats, TransientRateMatchesTheSpec) {
  for (const Real p : {0.05, 0.2, 0.5}) {
    const FaultPlan plan = transient_plan(321, p);
    constexpr std::size_t kAttempts = 4000;
    std::size_t transients = 0;
    for (std::uint64_t seq = 0; seq < kAttempts; ++seq)
      if (plan.decide(AcceleratorKind::kClassicalCpu, seq, 1).kind ==
          FaultKind::kTransient)
        ++transients;
    expect_binomial(transients, kAttempts, p, "transient");
  }
}

TEST(FaultPlanStats, SpikeAndCorruptionRatesMatchTheSpec) {
  FaultPlan plan;
  plan.seed = 555;
  FaultSpec& spec = plan.kinds[AcceleratorKind::kQuantum];
  spec.latency_spike_probability = 0.1;
  spec.latency_spike_seconds = 0.25;
  spec.corruption_probability = 0.15;
  constexpr std::size_t kAttempts = 4000;
  std::size_t spikes = 0, corruptions = 0;
  for (std::uint64_t seq = 0; seq < kAttempts; ++seq) {
    const FaultOutcome o = plan.decide(AcceleratorKind::kQuantum, seq, 1);
    if (o.kind == FaultKind::kLatencySpike) {
      ++spikes;
      EXPECT_EQ(o.latency_seconds, 0.25);
    } else if (o.kind == FaultKind::kCorruption) {
      ++corruptions;
    }
  }
  expect_binomial(spikes, kAttempts, 0.1, "latency spike");
  // A corruption verdict requires "no spike" first, so its marginal rate is
  // (1 - 0.1) * 0.15.
  expect_binomial(corruptions, kAttempts, 0.9 * 0.15, "corruption");
}

TEST(FaultPlanStats, AttemptsAreIndependentDraws) {
  // Attempt 2 must not mirror attempt 1 — retries get fresh randomness.
  const FaultPlan plan = transient_plan(8, 0.5);
  std::size_t both = 0, first_only = 0, second_only = 0;
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    const bool f1 = plan.decide(AcceleratorKind::kClassicalCpu, seq, 1).kind ==
                    FaultKind::kTransient;
    const bool f2 = plan.decide(AcceleratorKind::kClassicalCpu, seq, 2).kind ==
                    FaultKind::kTransient;
    both += f1 && f2;
    first_only += f1 && !f2;
    second_only += !f1 && f2;
  }
  // Independent fair coins: each joint cell has rate ~1/4.
  expect_binomial(both, 2000, 0.25, "both attempts faulted");
  expect_binomial(first_only, 2000, 0.25, "only attempt 1 faulted");
  expect_binomial(second_only, 2000, 0.25, "only attempt 2 faulted");
}

// ----------------------------------------------------------------- wear ----

TEST(FaultyAcceleratorWear, PermanentAfterNCallsPerReplica) {
  FaultPlan plan;
  plan.kinds[AcceleratorKind::kClassicalCpu].permanent_after = 5;
  auto shared = std::make_shared<const FaultPlan>(plan);
  FaultyAccelerator worn(std::make_shared<CpuAccelerator>(), shared);
  FaultyAccelerator fresh(std::make_shared<CpuAccelerator>(), shared);
  for (std::uint64_t attempt = 1; attempt <= 5; ++attempt)
    EXPECT_EQ(worn.on_attempt(0, attempt).kind, FaultKind::kNone)
        << "call " << attempt;
  for (std::uint64_t attempt = 6; attempt <= 10; ++attempt)
    EXPECT_EQ(worn.on_attempt(0, attempt).kind, FaultKind::kPermanent)
        << "call " << attempt;
  EXPECT_EQ(worn.calls(), 10u);
  // Wear is per decorator instance: the second replica is still healthy.
  EXPECT_EQ(fresh.on_attempt(0, 1).kind, FaultKind::kNone);
  EXPECT_EQ(fresh.calls(), 1u);
}

// ---------------------------------------------------------- passthrough ----

TEST(FaultyAcceleratorPassthrough, NullPlanIsInvisible) {
  auto cpu = std::make_shared<CpuAccelerator>();
  FaultyAccelerator wrapped(cpu, nullptr);
  EXPECT_EQ(wrapped.name(), cpu->name());
  EXPECT_EQ(wrapped.kind(), cpu->kind());
  EXPECT_EQ(wrapped.stack_layers(), cpu->stack_layers());
  EXPECT_EQ(&wrapped.inner(), cpu.get());
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const FaultOutcome o = wrapped.on_attempt(seq, 1);
    EXPECT_EQ(o.kind, FaultKind::kNone);
    EXPECT_TRUE(o.description.empty());
  }
  // The disabled fast path does not even age the call counter.
  EXPECT_EQ(wrapped.calls(), 0u);
}

TEST(FaultyAcceleratorPassthrough, NonCoveringPlanIsInvisible) {
  // The plan faults quantum; a CPU replica behind it stays untouched.
  auto plan = std::make_shared<const FaultPlan>(FaultPlan::parse(kPlanJson));
  auto cpu = std::make_shared<CpuAccelerator>();
  FaultyAccelerator wrapped(cpu, plan);
  EXPECT_EQ(wrapped.name(), cpu->name());
  EXPECT_EQ(wrapped.on_attempt(3, 1).kind, FaultKind::kNone);
  EXPECT_EQ(wrapped.calls(), 0u);
}

TEST(FaultyAcceleratorPassthrough, EnabledSpecAnnotatesTheName) {
  auto plan =
      std::make_shared<const FaultPlan>(transient_plan(1, 0.5));
  FaultyAccelerator wrapped(std::make_shared<CpuAccelerator>(), plan);
  EXPECT_NE(wrapped.name().find("faulty("), std::string::npos);
  ASSERT_FALSE(wrapped.stack_layers().empty());
  EXPECT_NE(wrapped.stack_layers().front().find("Fault-injection"),
            std::string::npos);
}

// ------------------------------------------------- golden regression -------
// The paradigm engines' trajectories must be bit-identical with the fault
// layer compiled in but disabled: same fingerprints as the DmmGolden /
// NetworkGolden seeds, produced through a scheduler whose replicas sit behind
// null-plan FaultyAccelerator decorators and whose jobs carry a RetryPolicy.

sched::JobOptions retry_opts() {
  sched::JobOptions opts;
  opts.retry.max_attempts = 3;
  return opts;
}

TEST(FaultGolden, DmmTrajectoryUnchangedThroughDisabledFaultLayer) {
  sched::Scheduler scheduler;
  scheduler.add_pool(
      AcceleratorKind::kClassicalCpu, 2,
      FaultyAccelerator::wrap(CpuAccelerator::factory(), nullptr));
  memcomputing::DmmResult r;
  Job job;
  job.name = "dmm-golden";
  job.payload = [&r] {
    memcomputing::Cnf cnf(3);
    cnf.add_clause({1, 2});
    cnf.add_clause({-1, 3});
    cnf.add_clause({-2, -3});
    Rng rng(42);
    r = memcomputing::DmmSolver(cnf, {}).solve(rng);
    JobResult out;
    out.ok = r.satisfied;
    return out;
  };
  const JobResult result =
      scheduler.submit(std::move(job), retry_opts()).get();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_FALSE(result.degraded);
  EXPECT_TRUE(result.fault_log.empty());
  // The DmmGolden.TinyFormulaTrajectoryUnchanged fingerprints, exactly.
  EXPECT_EQ(r.steps, 4u);
  EXPECT_EQ(r.sim_time, 0.93332303461574861);
  EXPECT_EQ(r.best_unsatisfied, 0u);
  ASSERT_EQ(r.assignment.size(), 4u);
  EXPECT_FALSE(r.assignment[1]);
  EXPECT_TRUE(r.assignment[2]);
  EXPECT_FALSE(r.assignment[3]);
}

TEST(FaultGolden, OscillatorWaveformUnchangedThroughDisabledFaultLayer) {
  sched::Scheduler scheduler;
  scheduler.add_pool(
      AcceleratorKind::kClassicalCpu, 2,
      FaultyAccelerator::wrap(CpuAccelerator::factory(), nullptr));
  oscillator::Trace tr;
  Job job;
  job.name = "oscillator-golden";
  job.payload = [&tr] {
    oscillator::CoupledOscillatorNetwork net(oscillator::OscillatorParams{},
                                             2);
    net.set_gate_voltage(0, 0.95);
    net.set_gate_voltage(1, 1.05);
    net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
    oscillator::SimulationOptions so;
    so.duration = 5e-6;
    so.dt = 1e-9;
    so.sample_stride = 4;
    tr = net.simulate(so);
    JobResult out;
    out.ok = true;
    return out;
  };
  const JobResult result =
      scheduler.submit(std::move(job), retry_opts()).get();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 1u);
  const auto sum = [](const std::vector<Real>& v) {
    Real s = 0.0;
    for (const Real x : v) s += x;
    return s;
  };
  // The NetworkGolden.SeriesRcWaveformUnchanged fingerprints, exactly.
  ASSERT_EQ(tr.samples(), 1251u);
  EXPECT_EQ(sum(tr.node_voltage[0]), 1909.7953089683781);
  EXPECT_EQ(sum(tr.node_voltage[1]), 1885.5753216547409);
  EXPECT_EQ(tr.node_voltage[0].back(), 1.6109489971678781);
  EXPECT_EQ(tr.node_voltage[1].back(), 1.2608751183922264);
  EXPECT_EQ(tr.supply_current.back(), 5.0872423209652297e-05);
}

}  // namespace
}  // namespace rebooting::core
