#include "core/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rebooting::core {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("b"), std::int64_t{7}});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, RealPrecisionRespected) {
  Table t({"x"}, 2);
  t.add_row({Real{3.14159}});
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), std::invalid_argument);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"text", "n"});
  t.add_row({std::string("hello, world"), std::int64_t{1}});
  t.add_row({std::string("quote\"inside"), std::int64_t{2}});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{1}, std::int64_t{2}});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\n1,2\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({std::int64_t{1}, std::int64_t{2}, std::int64_t{3}});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 5");
  EXPECT_NE(os.str().find("Figure 5"), std::string::npos);
}

}  // namespace
}  // namespace rebooting::core
