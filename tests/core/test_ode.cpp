#include "core/ode.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rebooting::core {
namespace {

/// dy/dt = -y, y(0)=1 -> y(t) = exp(-t).
const OdeRhs kDecay = [](Real, std::span<const Real> y, std::span<Real> dy) {
  dy[0] = -y[0];
};

/// Harmonic oscillator: y = (pos, vel), omega = 1.
const OdeRhs kOscillator = [](Real, std::span<const Real> y,
                              std::span<Real> dy) {
  dy[0] = y[1];
  dy[1] = -y[0];
};

TEST(FixedStep, EulerDecaysApproximately) {
  std::vector<Real> y{1.0};
  integrate_fixed(kDecay, Scheme::kEuler, 0.0, 1.0, 1e-4, y);
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-3);
}

TEST(FixedStep, Rk4IsMuchMoreAccurateThanEuler) {
  std::vector<Real> ye{1.0};
  std::vector<Real> yr{1.0};
  integrate_fixed(kDecay, Scheme::kEuler, 0.0, 2.0, 0.01, ye);
  integrate_fixed(kDecay, Scheme::kRk4, 0.0, 2.0, 0.01, yr);
  const Real exact = std::exp(-2.0);
  EXPECT_LT(std::abs(yr[0] - exact), std::abs(ye[0] - exact) / 100.0);
}

/// Convergence-order property: halving dt should reduce the error by ~2^p.
class ConvergenceOrder
    : public ::testing::TestWithParam<std::pair<Scheme, Real>> {};

TEST_P(ConvergenceOrder, MatchesTheory) {
  const auto [scheme, expected_order] = GetParam();
  const Real exact = std::exp(-1.0);
  auto error_at = [&](Real dt) {
    std::vector<Real> y{1.0};
    integrate_fixed(kDecay, scheme, 0.0, 1.0, dt, y);
    return std::abs(y[0] - exact);
  };
  const Real e1 = error_at(0.01);
  const Real e2 = error_at(0.005);
  const Real observed_order = std::log2(e1 / e2);
  EXPECT_NEAR(observed_order, expected_order, 0.35);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ConvergenceOrder,
    ::testing::Values(std::pair{Scheme::kEuler, 1.0},
                      std::pair{Scheme::kHeun, 2.0},
                      std::pair{Scheme::kRk4, 4.0}));

TEST(FixedStep, ObserverStopsEarly) {
  std::vector<Real> y{1.0};
  const Real t_stop = integrate_fixed(
      kDecay, Scheme::kRk4, 0.0, 10.0, 0.01, y,
      [](Real, std::span<const Real> s) { return s[0] > 0.5; });
  EXPECT_LT(t_stop, 1.0);
  EXPECT_NEAR(y[0], 0.5, 0.01);
}

TEST(FixedStep, FinalStepLandsExactlyOnT1) {
  std::vector<Real> y{1.0};
  const Real t_final =
      integrate_fixed(kDecay, Scheme::kRk4, 0.0, 0.95, 0.1, y);
  EXPECT_DOUBLE_EQ(t_final, 0.95);
}

TEST(FixedStep, RejectsNonPositiveDt) {
  std::vector<Real> y{1.0};
  EXPECT_THROW(integrate_fixed(kDecay, Scheme::kEuler, 0.0, 1.0, 0.0, y),
               std::invalid_argument);
}

TEST(Adaptive, DecayAccurateToTolerance) {
  std::vector<Real> y{1.0};
  AdaptiveOptions opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-10;
  const auto res = integrate_adaptive(kDecay, 0.0, 3.0, y, opts);
  EXPECT_NEAR(y[0], std::exp(-3.0), 1e-7);
  EXPECT_DOUBLE_EQ(res.t_final, 3.0);
  EXPECT_GT(res.accepted_steps, 0u);
}

TEST(Adaptive, HarmonicOscillatorConservesAmplitude) {
  std::vector<Real> y{1.0, 0.0};
  AdaptiveOptions opts;
  opts.rel_tol = 1e-9;
  opts.abs_tol = 1e-9;
  integrate_adaptive(kOscillator, 0.0, 2.0 * kPi, y, opts);
  EXPECT_NEAR(y[0], 1.0, 1e-6);
  EXPECT_NEAR(y[1], 0.0, 1e-6);
}

TEST(Adaptive, StepsAdaptToStiffness) {
  // A RHS that changes speed: slow then fast; the adaptive driver should use
  // far fewer steps than fixed stepping at the smallest needed dt.
  const OdeRhs rhs = [](Real t, std::span<const Real> y, std::span<Real> dy) {
    dy[0] = (t < 5.0 ? -0.01 : -50.0) * y[0];
  };
  std::vector<Real> y{1.0};
  AdaptiveOptions opts;
  opts.max_dt = 1.0;
  const auto res = integrate_adaptive(rhs, 0.0, 6.0, y, opts);
  EXPECT_LT(res.accepted_steps, 2000u);
  EXPECT_GE(y[0], -1e-6);
}

TEST(Adaptive, ObserverStops) {
  std::vector<Real> y{1.0};
  const auto res = integrate_adaptive(
      kDecay, 0.0, 100.0, y, AdaptiveOptions{},
      [](Real, std::span<const Real> s) { return s[0] > 0.1; });
  EXPECT_TRUE(res.stopped_by_observer);
  EXPECT_LT(res.t_final, 100.0);
}

TEST(Adaptive, StepLimitReported) {
  AdaptiveOptions opts;
  opts.max_steps = 5;
  std::vector<Real> y{1.0, 0.0};
  const auto res = integrate_adaptive(kOscillator, 0.0, 1000.0, y, opts);
  EXPECT_TRUE(res.hit_step_limit);
  EXPECT_LT(res.t_final, 1000.0);
}

TEST(Steps, ScratchTooSmallThrows) {
  std::vector<Real> y{1.0};
  std::vector<Real> scratch(2);  // rk4 needs 5n
  EXPECT_THROW(rk4_step(kDecay, 0.0, 0.1, y, scratch), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::core
