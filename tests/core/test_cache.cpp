#include "core/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "core/random.h"
#include "memcomputing/canonical.h"
#include "memcomputing/dmm.h"
#include "oscillator/network.h"

namespace rebooting::core {
namespace {

/// Pins a test to a chosen cache-toggle state and restores the ambient one.
struct ScopedCacheEnabled {
  bool previous = cache_enabled();
  explicit ScopedCacheEnabled(bool on) { set_cache_enabled(on); }
  ~ScopedCacheEnabled() { set_cache_enabled(previous); }
};

std::shared_ptr<const int> boxed(int v) { return std::make_shared<int>(v); }

HashKey128 key_of(std::uint64_t n) {
  HashWriter w;
  w.u64(n);
  return w.finish();
}

/// A key that lands in shard `shard` of `cache` (found by scanning).
template <typename V>
HashKey128 key_in_shard(const ShardedCache<V>& cache, std::size_t shard,
                        std::uint64_t salt) {
  for (std::uint64_t n = salt;; ++n) {
    const HashKey128 k = key_of(n);
    if (cache.shard_index(k) == shard) return k;
  }
}

// ----------------------------------------------------------------- hashing --
// The digest construction is a pinned wire format: these hex values may never
// change, or persisted/logged cache keys stop matching across versions.

TEST(HashWriter, GoldenDigestsPinnedForever) {
  {
    HashWriter w;
    EXPECT_EQ(w.finish().to_hex(), "724bdd6bc2c82792f596331cce0261b9");
  }
  {
    HashWriter w;
    w.u8(0x42);
    EXPECT_EQ(w.finish().to_hex(), "d348b2729f9e3be4fb6e07e2a5471f43");
  }
  {
    HashWriter w;
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.real(3.5);
    w.str("rebooting");
    EXPECT_EQ(w.finish().to_hex(), "92ff45377e292db6e4c9c67d2e60993d");
  }
}

TEST(HashWriter, SameEncodingSameDigestAcrossWriters) {
  HashWriter a, b;
  for (HashWriter* w : {&a, &b}) {
    w->u8(7);
    w->u32(123456u);
    w->u64(~0ull);
    w->real(-1.25);
    w->str("key");
  }
  EXPECT_EQ(a.finish(), b.finish());
  EXPECT_EQ(a.finish().to_hex(), b.finish().to_hex());
}

TEST(HashWriter, LengthPrefixPreventsFieldAliasing) {
  // "ab","c" vs "a","bc": same concatenated bytes, different field
  // boundaries — must not collide (and their digests are pinned too).
  HashWriter a, b;
  a.str("ab");
  a.str("c");
  b.str("a");
  b.str("bc");
  EXPECT_NE(a.finish(), b.finish());
  EXPECT_EQ(a.finish().to_hex(), "8e86b9dbed102d161446b4b6a5f23d07");
  EXPECT_EQ(b.finish().to_hex(), "905b589aabc82004c3f95ffbc73e2329");

  // Same value, different declared width: also distinct.
  HashWriter c, d;
  c.u32(5u);
  d.u64(5ull);
  EXPECT_NE(c.finish(), d.finish());
}

TEST(HashWriter, RealNormalizesNegativeZeroOnly) {
  HashWriter pos, neg;
  pos.real(0.0);
  neg.real(-0.0);
  EXPECT_EQ(pos.finish(), neg.finish());

  // Distinct NaN payloads stay distinct: the encoding identifies values, not
  // "numbers" — aliasing distinct bit patterns is the unsafe direction.
  Real nan1, nan2;
  std::uint64_t bits1 = 0x7FF8000000000001ull, bits2 = 0x7FF8000000000002ull;
  std::memcpy(&nan1, &bits1, sizeof nan1);
  std::memcpy(&nan2, &bits2, sizeof nan2);
  HashWriter a, b;
  a.real(nan1);
  b.real(nan2);
  EXPECT_NE(a.finish(), b.finish());
}

TEST(HashWriter, ExtendAndRefinish) {
  HashWriter w;
  w.u64(1);
  const HashKey128 first = w.finish();
  w.u64(2);
  const HashKey128 second = w.finish();
  EXPECT_NE(first, second);
  EXPECT_EQ(w.size(), 16u);
}

TEST(HashKey, HexFormatHiFirst) {
  HashKey128 k{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  EXPECT_EQ(k.to_hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(HashKey128{}.to_hex(), "00000000000000000000000000000000");
}

// ------------------------------------------------------------------- cache --

TEST(ShardedCache, HitMissCountersExact) {
  CacheConfig cfg;
  cfg.shards = 2;
  cfg.name = "test.counters";
  ShardedCache<int> cache(cfg);
  EXPECT_EQ(cache.get(key_of(1)), nullptr);
  cache.put(key_of(1), boxed(10), 8);
  const auto hit = cache.get(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 10);
  EXPECT_EQ(cache.get(key_of(2)), nullptr);

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 8u);
}

TEST(ShardedCache, LruEvictionOrderWithGetRefresh) {
  CacheConfig cfg;
  cfg.shards = 1;  // one shard so recency is a single total order
  cfg.max_entries = 3;
  cfg.name = "test.lru";
  ShardedCache<int> cache(cfg);
  cache.put(key_of(1), boxed(1), 1);
  cache.put(key_of(2), boxed(2), 1);
  cache.put(key_of(3), boxed(3), 1);
  ASSERT_NE(cache.get(key_of(1)), nullptr);  // 1 is now most recent
  cache.put(key_of(4), boxed(4), 1);         // evicts 2, the true LRU
  EXPECT_NE(cache.get(key_of(1)), nullptr);
  EXPECT_EQ(cache.get(key_of(2)), nullptr);
  EXPECT_NE(cache.get(key_of(3)), nullptr);
  EXPECT_NE(cache.get(key_of(4)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedCache, ShardsEvictIndependently) {
  CacheConfig cfg;
  cfg.shards = 4;
  cfg.max_entries = 8;  // 2 per shard
  cfg.name = "test.shards";
  ShardedCache<int> cache(cfg);
  ASSERT_EQ(cache.shard_count(), 4u);

  // Park one entry in shard 0, then churn shard 1 hard: the shard-0 entry
  // must survive — capacity pressure is per shard, not global.
  const HashKey128 parked = key_in_shard(cache, 0, 1000);
  cache.put(parked, boxed(42), 1);
  // Scan windows must not overlap or two iterations would yield one key: the
  // scan walks upward from the salt, so give each iteration a wide berth.
  for (std::uint64_t n = 0; n < 50; ++n)
    cache.put(key_in_shard(cache, 1, 2000 + 1000 * n), boxed(int(n)), 1);

  const auto survivor = cache.get(parked);
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(*survivor, 42);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 3u);  // parked + 2 live in shard 1
  EXPECT_EQ(s.evictions, 48u);
}

TEST(ShardedCache, TtlExpiryIsLazyAndCounted) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.ttl = std::chrono::milliseconds(5);
  cfg.name = "test.ttl";
  ShardedCache<int> cache(cfg);
  cache.put(key_of(1), boxed(1), 1);
  ASSERT_NE(cache.get(key_of(1)), nullptr);  // fresh: still a hit
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(cache.get(key_of(1)), nullptr);  // lapsed: dropped on access
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.expirations, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);  // the expiry counts as a miss too
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(ShardedCache, ByteCapacityExactUnderChurn) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.max_entries = 0;  // bytes only
  cfg.max_bytes = 100;
  cfg.name = "test.bytes";
  ShardedCache<int> cache(cfg);

  // Mirror every operation in a reference model; the cache's byte
  // accounting must match it exactly at every step.
  std::map<std::uint64_t, std::size_t> model;  // insertion irrelevant; size
  Rng rng(7);
  for (int step = 0; step < 500; ++step) {
    const std::uint64_t id = rng.uniform_index(20);
    const std::size_t bytes = 1 + static_cast<std::size_t>(rng.uniform_index(30));
    cache.put(key_of(id), boxed(int(id)), bytes);
    model[id] = bytes;
    // Evictions hit the model too: whatever the cache dropped, drop as well
    // (detectable as ids the cache no longer holds).
    std::size_t live_bytes = 0;
    for (auto it = model.begin(); it != model.end();) {
      if (cache.get(key_of(it->first)) == nullptr) {
        it = model.erase(it);
      } else {
        live_bytes += it->second;
        ++it;
      }
    }
    ASSERT_EQ(cache.stats().bytes, live_bytes) << "step " << step;
    ASSERT_LE(cache.stats().bytes, 100u) << "step " << step;
    ASSERT_EQ(cache.stats().entries, model.size()) << "step " << step;
  }
}

TEST(ShardedCache, ReplaceInPlaceReaccountsBytes) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.name = "test.replace";
  ShardedCache<int> cache(cfg);
  cache.put(key_of(1), boxed(1), 40);
  cache.put(key_of(1), boxed(2), 10);  // replace: old 40 bytes released
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 10u);
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.evictions, 0u);
  const auto v = cache.get(key_of(1));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 2);
}

TEST(ShardedCache, OversizedValueRefusedNotDestructive) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.max_bytes = 64;
  cfg.name = "test.oversize";
  ShardedCache<int> cache(cfg);
  cache.put(key_of(1), boxed(1), 10);
  cache.put(key_of(2), boxed(2), 1000);  // alone exceeds the budget: refused
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.refused, 1u);
  EXPECT_EQ(s.entries, 1u);  // the resident entry was not wiped for it
  EXPECT_EQ(s.bytes, 10u);
  EXPECT_EQ(cache.get(key_of(2)), nullptr);
}

TEST(ShardedCache, EvictedValueOutlivesEvictionForReaders) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.max_entries = 1;
  cfg.name = "test.pin";
  ShardedCache<int> cache(cfg);
  cache.put(key_of(1), boxed(11), 1);
  const auto held = cache.get(key_of(1));
  ASSERT_NE(held, nullptr);
  cache.put(key_of(2), boxed(22), 1);  // evicts key 1 while we hold it
  EXPECT_EQ(cache.get(key_of(1)), nullptr);
  EXPECT_EQ(*held, 11);  // shared_ptr keeps the evicted value alive
}

TEST(ShardedCache, ClearDropsEntriesKeepsHistory) {
  CacheConfig cfg;
  cfg.shards = 2;
  cfg.name = "test.clear";
  ShardedCache<int> cache(cfg);
  cache.put(key_of(1), boxed(1), 4);
  cache.put(key_of(2), boxed(2), 4);
  cache.clear();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.inserts, 2u);  // counters are history, not state
}

TEST(CacheRegistry, SnapshotTracksCacheLifetime) {
  const auto count_named = [](const std::string& name) {
    std::size_t n = 0;
    for (const auto& [cache_name, stats] : cache_stats_snapshot())
      if (cache_name == name) ++n;
    return n;
  };
  ASSERT_EQ(count_named("test.registry"), 0u);
  {
    CacheConfig cfg;
    cfg.name = "test.registry";
    ShardedCache<int> cache(cfg);
    cache.put(key_of(1), boxed(1), 16);
    ASSERT_EQ(count_named("test.registry"), 1u);
    for (const auto& [name, stats] : cache_stats_snapshot())
      if (name == "test.registry") {
        EXPECT_EQ(stats.inserts, 1u);
        EXPECT_EQ(stats.entries, 1u);
        EXPECT_EQ(stats.bytes, 16u);
      }
  }
  EXPECT_EQ(count_named("test.registry"), 0u);  // dtor unregistered
}

TEST(CacheToggle, RuntimeSwitchRoundTrips) {
  const bool ambient = cache_enabled();
  set_cache_enabled(false);
  EXPECT_FALSE(cache_enabled());
  set_cache_enabled(true);
  EXPECT_TRUE(cache_enabled());
  set_cache_enabled(ambient);
}

// ------------------------------------------------------------- MT hammer ---
// Churns one cache from many threads. Green under TSan; the final state must
// still satisfy every accounting invariant.

TEST(ShardedCacheMt, HammerKeepsAccountingCoherent) {
  CacheConfig cfg;
  cfg.shards = 4;
  cfg.max_entries = 64;
  cfg.max_bytes = 4096;
  cfg.name = "test.hammer";
  ShardedCache<int> cache(cfg);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &observed_hits, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t id = rng.uniform_index(128);
        if (rng.uniform() < 0.5) {
          const auto v = cache.get(key_of(id));
          if (v) {
            observed_hits.fetch_add(1, std::memory_order_relaxed);
            // A hit must carry the value its key was inserted with.
            ASSERT_EQ(*v, static_cast<int>(id));
          }
        } else {
          cache.put(key_of(id), boxed(static_cast<int>(id)),
                    1 + static_cast<std::size_t>(rng.uniform_index(64)));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const CacheStats s = cache.stats();
  EXPECT_LE(s.entries, 64u);
  EXPECT_LE(s.bytes, 4096u);
  EXPECT_EQ(s.hits, observed_hits.load());
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread -
                s.inserts - s.refused);
  EXPECT_GT(s.inserts, 0u);
}

// -------------------------------------------------- golden regression ------
// The engines' trajectories must be bit-identical with the cache layer
// compiled in — both disabled (the null-plan discipline of core/faults.h)
// and enabled-on-a-miss (a miss takes the original code path before caching
// the result). Fingerprints are the FaultGolden / DmmGolden seeds, exactly.

void expect_dmm_golden(const memcomputing::DmmResult& r) {
  EXPECT_EQ(r.steps, 4u);
  EXPECT_EQ(r.sim_time, 0.93332303461574861);
  EXPECT_EQ(r.best_unsatisfied, 0u);
  ASSERT_EQ(r.assignment.size(), 4u);
  EXPECT_FALSE(r.assignment[1]);
  EXPECT_TRUE(r.assignment[2]);
  EXPECT_FALSE(r.assignment[3]);
}

memcomputing::Cnf golden_cnf() {
  memcomputing::Cnf cnf(3);
  cnf.add_clause({1, 2});
  cnf.add_clause({-1, 3});
  cnf.add_clause({-2, -3});
  return cnf;
}

TEST(CacheGolden, DmmTrajectoryUnchangedWithCacheDisabled) {
  ScopedCacheEnabled off(false);
  const memcomputing::Cnf cnf = golden_cnf();
  Rng rng(42);
  const auto r = memcomputing::solve_dmm_cached(cnf, {}, rng);
  EXPECT_TRUE(r.satisfied);
  expect_dmm_golden(r);
}

TEST(CacheGolden, DmmTrajectoryUnchangedOnCacheMiss) {
  ScopedCacheEnabled on(true);
  memcomputing::dmm_cache().clear();
  const memcomputing::Cnf cnf = golden_cnf();
  Rng rng(42);
  const auto r = memcomputing::solve_dmm_cached(cnf, {}, rng);
  EXPECT_TRUE(r.satisfied);
  expect_dmm_golden(r);  // the miss path is the original solve, bit-exactly

  // And the subsequent hit replays the very same result.
  Rng rng2(42);
  const auto replay = memcomputing::solve_dmm_cached(cnf, {}, rng2);
  EXPECT_TRUE(replay.satisfied);
  expect_dmm_golden(replay);
}

TEST(CacheGolden, OscillatorWaveformUnchangedWithCacheCompiledIn) {
  // The oscillator engine has no cache layer; its fingerprints guard against
  // accidental drift from the cache subsystem riding in the same build.
  oscillator::CoupledOscillatorNetwork net(oscillator::OscillatorParams{}, 2);
  net.set_gate_voltage(0, 0.95);
  net.set_gate_voltage(1, 1.05);
  net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
  oscillator::SimulationOptions so;
  so.duration = 5e-6;
  so.dt = 1e-9;
  so.sample_stride = 4;
  const oscillator::Trace tr = net.simulate(so);
  const auto sum = [](const std::vector<Real>& v) {
    Real s = 0.0;
    for (const Real x : v) s += x;
    return s;
  };
  ASSERT_EQ(tr.samples(), 1251u);
  EXPECT_EQ(sum(tr.node_voltage[0]), 1909.7953089683781);
  EXPECT_EQ(sum(tr.node_voltage[1]), 1885.5753216547409);
  EXPECT_EQ(tr.node_voltage[0].back(), 1.6109489971678781);
  EXPECT_EQ(tr.node_voltage[1].back(), 1.2608751183922264);
  EXPECT_EQ(tr.supply_current.back(), 5.0872423209652297e-05);
}

}  // namespace
}  // namespace rebooting::core
