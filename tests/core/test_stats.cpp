#include "core/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random.h"

namespace rebooting::core {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<Real> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptyAndSingleInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const std::vector<Real> one{3.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(stderr_mean(one), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<Real>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<Real>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<Real> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.125), 15.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  const std::vector<Real> xs{1.0};
  EXPECT_THROW(percentile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, MinMax) {
  const std::vector<Real> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(FitLine, ExactLineRecovered) {
  std::vector<Real> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 2.0);
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineApproximated) {
  Rng rng(5);
  std::vector<Real> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i * 0.1);
    ys.push_back(2.0 * i * 0.1 + 1.0 + rng.normal(0.0, 0.05));
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_NEAR(fit.intercept, 1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<Real> x1{1.0};
  const std::vector<Real> constant{2.0, 2.0, 2.0};
  const std::vector<Real> ys{1.0, 2.0, 3.0};
  EXPECT_THROW(fit_line(x1, x1), std::invalid_argument);
  EXPECT_THROW(fit_line(constant, ys), std::invalid_argument);
}

class PowerLawFitTest : public ::testing::TestWithParam<Real> {};

TEST_P(PowerLawFitTest, RecoversExponent) {
  const Real k = GetParam();
  std::vector<Real> xs, ys;
  for (int i = 1; i <= 30; ++i) {
    const Real x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(2.5 * std::pow(x, k));
  }
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, k, 1e-9);
  EXPECT_NEAR(fit.amplitude, 2.5, 1e-9);
  EXPECT_EQ(fit.points_used, 30u);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerLawFitTest,
                         ::testing::Values(0.5, 1.0, 1.6, 2.0, 3.4));

TEST(PowerLawFit, SkipsNonPositivePoints) {
  const std::vector<Real> xs{-1.0, 0.0, 1.0, 2.0, 4.0};
  const std::vector<Real> ys{5.0, 5.0, 1.0, 2.0, 4.0};
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_EQ(fit.points_used, 3u);
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);
}

class ExponentialFitTest : public ::testing::TestWithParam<Real> {};

TEST_P(ExponentialFitTest, RecoversRate) {
  const Real b = GetParam();
  std::vector<Real> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(0.7 * std::exp(b * i));
  }
  const ExponentialFit fit = fit_exponential(xs, ys);
  EXPECT_NEAR(fit.rate, b, 1e-9);
  EXPECT_NEAR(fit.amplitude, 0.7, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialFitTest,
                         ::testing::Values(-0.3, 0.1, 0.5));

TEST(Correlation, PerfectAndNone) {
  const std::vector<Real> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<Real> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<Real> down{8.0, 6.0, 4.0, 2.0};
  const std::vector<Real> flat{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(correlation(xs, flat), 0.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  Rng rng(9);
  RunningStats rs;
  std::vector<Real> xs;
  for (int i = 0; i < 5000; ++i) {
    const Real x = rng.normal(2.0, 3.0);
    rs.add(x);
    xs.push_back(x);
  }
  EXPECT_EQ(rs.count(), 5000u);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
}

TEST(RunningStats, SmallCounts) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(4.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.4);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::core
