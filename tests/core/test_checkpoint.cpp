#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/dynamics.h"
#include "core/ensemble.h"
#include "core/json.h"
#include "core/random.h"

namespace rebooting::core {
namespace {

struct DecayKernel {
  Real lambda = 1.0;
  void rhs(Real /*t*/, std::span<const Real> y, std::span<Real> dydt) const {
    for (std::size_t i = 0; i < y.size(); ++i) dydt[i] = -lambda * y[i];
  }
};

struct HarmonicKernel {
  void rhs(Real /*t*/, std::span<const Real> y, std::span<Real> dydt) const {
    dydt[0] = y[1];
    dydt[1] = -y[0];
  }
};

Checkpoint sample_checkpoint() {
  Checkpoint c;
  c.tag = "test";
  c.step = 0xFFFFFFFFFFFFFFFFull;  // > 2^53: must survive the string path
  c.t = 0.1 + 0.2;                 // not representable exactly in decimal
  c.state = {1.0, -0.0, 1e-308, std::numeric_limits<Real>::denorm_min(),
             std::numeric_limits<Real>::max(), -1.0 / 3.0};
  c.aux = {3.141592653589793, -2.718281828459045e-12};
  c.counters = {0, 1, (1ull << 53) + 1, 0x8000000000000000ull};
  c.flags = {0x00, 0x01, 0xab, 0xff, 0x7f};
  Rng rng(12345);
  rng.normal();  // odd draw count parks a cached Box–Muller deviate
  c.rng = rng.save();
  return c;
}

TEST(Checkpoint, JsonRoundTripIsExact) {
  const Checkpoint original = sample_checkpoint();
  const auto parsed = Checkpoint::from_json(original.json_dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
  // Bitwise, not just ==, for every Real (covers -0.0 vs 0.0).
  for (std::size_t i = 0; i < original.state.size(); ++i)
    EXPECT_EQ(std::signbit(parsed->state[i]), std::signbit(original.state[i]));
}

TEST(Checkpoint, RngStateRoundTripContinuesTheExactStream) {
  Rng rng(987654321);
  for (int i = 0; i < 7; ++i) rng.normal();  // odd: cached deviate live
  Checkpoint c;
  c.tag = "rng";
  c.rng = rng.save();
  const auto parsed = Checkpoint::from_json(c.json_dump());
  ASSERT_TRUE(parsed.has_value());
  Rng resumed = Rng::restore(parsed->rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng(), resumed());
    EXPECT_EQ(rng.normal(), resumed.normal());
    EXPECT_EQ(rng.uniform(), resumed.uniform());
  }
}

TEST(Checkpoint, FromJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(Checkpoint::from_json("").has_value());
  EXPECT_FALSE(Checkpoint::from_json("[]").has_value());
  EXPECT_FALSE(Checkpoint::from_json("{\"tag\": 3}").has_value());
  // Tampered counters: non-integral string must be rejected, not truncated.
  Checkpoint c = sample_checkpoint();
  std::string text = c.json_dump();
  const auto pos = text.find("\"18446744073709551615\"");
  ASSERT_NE(pos, std::string::npos);
  std::string bad = text;
  bad.replace(pos, 22, "\"not-a-number-at-all-\"");
  EXPECT_FALSE(Checkpoint::from_json(bad).has_value());
}

TEST(CheckpointHelpers, U64StringsAreExactAndStrict) {
  EXPECT_EQ(u64_to_string(0), "0");
  EXPECT_EQ(u64_to_string(std::numeric_limits<std::uint64_t>::max()),
            "18446744073709551615");
  EXPECT_EQ(u64_from_string("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(u64_from_string("18446744073709551616").has_value());
  EXPECT_FALSE(u64_from_string("12x").has_value());
  EXPECT_FALSE(u64_from_string("").has_value());
  EXPECT_FALSE(u64_from_string("-1").has_value());
}

TEST(CheckpointHelpers, HexRoundTripAndRejection) {
  const std::vector<unsigned char> bytes{0x00, 0x01, 0xde, 0xad, 0xff};
  const std::string hex = bytes_to_hex(bytes);
  EXPECT_EQ(hex, "0001deadff");
  EXPECT_EQ(bytes_from_hex(hex), bytes);
  EXPECT_FALSE(bytes_from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(bytes_from_hex("zz").has_value());    // bad digit
  EXPECT_TRUE(bytes_from_hex("").has_value());       // empty is fine
}

// --- resume == uninterrupted, for every fixed scheme ----------------------

class FixedSchemeResume : public ::testing::TestWithParam<Scheme> {};

TEST_P(FixedSchemeResume, SlicedEqualsUninterrupted) {
  const Scheme scheme = GetParam();
  const Real t0 = 0.0, t1 = 2.0, dt = 1e-3;

  HarmonicKernel kernel;
  Workspace ws;
  std::vector<Real> direct{1.0, 0.0};
  integrate_fixed(kernel, scheme, t0, t1, dt, std::span<Real>(direct), ws);

  for (const std::size_t slice_steps : {1u, 7u, 64u, 1999u}) {
    std::vector<Real> sliced{1.0, 0.0};
    FixedCursor cursor;
    SliceOutcome out;
    std::size_t slices = 0;
    do {
      out = integrate_fixed_slice(kernel, scheme, t0, t1, dt,
                                  std::span<Real>(sliced), cursor,
                                  SliceBudget::steps(slice_steps), ws);
      ++slices;
    } while (!out.done);
    EXPECT_GE(slices, 2000 / slice_steps);  // it really was sliced
    EXPECT_EQ(out.t_reached, t1);
    // Bit-identical, not approximately equal: slicing must not change a
    // single operation.
    EXPECT_EQ(sliced[0], direct[0]) << "scheme " << static_cast<int>(scheme)
                                    << " slice " << slice_steps;
    EXPECT_EQ(sliced[1], direct[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FixedSchemeResume,
                         ::testing::Values(Scheme::kEuler, Scheme::kHeun,
                                           Scheme::kRk4));

TEST(AdaptiveResume, SlicedEqualsUninterruptedRkf45) {
  const Real t0 = 0.0, t1 = 3.0;
  AdaptiveOptions opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-8;

  DecayKernel kernel{2.5};
  Workspace ws;
  std::vector<Real> direct{1.0, -0.5, 0.25};
  const AdaptiveResult ref = integrate_adaptive(
      kernel, t0, t1, std::span<Real>(direct), opts, ws);

  for (const std::size_t slice_steps : {1u, 3u, 17u}) {
    std::vector<Real> sliced{1.0, -0.5, 0.25};
    AdaptiveCursor cursor;
    AdaptiveSliceOutcome out;
    std::size_t slices = 0;
    do {
      out = integrate_adaptive_slice(kernel, t0, t1, std::span<Real>(sliced),
                                     opts, cursor,
                                     SliceBudget::steps(slice_steps), ws);
      ++slices;
    } while (!out.done);
    EXPECT_GT(slices, 1u);
    EXPECT_EQ(out.result.t_final, ref.t_final);
    EXPECT_EQ(out.result.accepted_steps, ref.accepted_steps);
    EXPECT_EQ(out.result.rejected_steps, ref.rejected_steps);
    for (std::size_t i = 0; i < direct.size(); ++i)
      EXPECT_EQ(sliced[i], direct[i]) << "slice " << slice_steps;
  }
}

TEST(SliceBudget, WallBudgetAlwaysMakesForwardProgress) {
  HarmonicKernel kernel;
  Workspace ws;
  std::vector<Real> y{1.0, 0.0};
  FixedCursor cursor;
  // A zero-duration wall budget is exhausted immediately — but the contract
  // guarantees at least one step per slice, so the trajectory still finishes.
  const SliceBudget budget = SliceBudget::wall(1e-12);
  std::size_t slices = 0;
  SliceOutcome out;
  do {
    out = integrate_fixed_slice(kernel, Scheme::kHeun, 0.0, 0.01, 1e-3,
                                std::span<Real>(y), cursor, budget, ws);
    ++slices;
    ASSERT_LE(slices, 100u);  // 10 steps of work: must terminate promptly
  } while (!out.done);
  EXPECT_EQ(cursor.step, 10u);
}

// --- sliced ensembles -----------------------------------------------------

TEST(EnsembleCheckpoint, JsonRoundTrip) {
  EnsembleCheckpoint ec;
  ec.count = 3;
  ec.trajectories.assign(3, sample_checkpoint());
  ec.trajectories[1].step = 7;
  ec.started = {1, 1, 0};
  ec.finished = {1, 0, 0};
  ec.stop_index = 1;
  const auto parsed = EnsembleCheckpoint::from_json(ec.json_dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->count, ec.count);
  EXPECT_EQ(parsed->trajectories, ec.trajectories);
  EXPECT_EQ(parsed->started, ec.started);
  EXPECT_EQ(parsed->finished, ec.finished);
  EXPECT_EQ(parsed->stop_index, ec.stop_index);
}

TEST(SlicedEnsemble, ManySmallSlicesMatchOneUnlimitedRun) {
  // Each trajectory integrates a decaying mode seeded from its index; the
  // body keeps everything resumable in the checkpoint.
  const auto body = [](std::size_t index, Checkpoint& ckpt,
                       const SliceBudget& budget, Workspace& ws) {
    if (ckpt.tag.empty()) {
      ckpt.tag = "decay";
      Rng rng = Rng::stream(42, index);
      ckpt.state = {rng.uniform(), rng.uniform()};
      ckpt.rng = rng.save();
    }
    DecayKernel kernel{1.5};
    FixedCursor cursor{ckpt.step};
    const auto out = integrate_fixed_slice(kernel, Scheme::kRk4, 0.0, 1.0,
                                           1e-3, std::span<Real>(ckpt.state),
                                           cursor, budget, ws);
    ckpt.step = cursor.step;
    ckpt.t = out.t_reached;
    SliceStatus status;
    status.done = out.done;
    return status;
  };

  EnsembleOptions opts;
  opts.threads = 2;

  EnsembleCheckpoint one_shot;
  auto run = run_ensemble_sliced(8, opts, SliceBudget{}, one_shot, body);
  EXPECT_TRUE(run.done);
  EXPECT_TRUE(one_shot.done());

  EnsembleCheckpoint sliced;
  std::size_t invocations = 0;
  for (;;) {
    const auto r =
        run_ensemble_sliced(8, opts, SliceBudget::steps(100), sliced, body);
    ++invocations;
    ASSERT_LE(invocations, 50u);
    if (r.done) break;
    // Park and splice through JSON mid-flight, like a crash-resume would.
    const auto parked = EnsembleCheckpoint::from_json(sliced.json_dump());
    ASSERT_TRUE(parked.has_value());
    sliced = *parked;
  }
  EXPECT_GE(invocations, 10u);  // 1000 steps / 100 per slice
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sliced.trajectories[i].state, one_shot.trajectories[i].state)
        << "trajectory " << i;
  }
}

TEST(SlicedEnsemble, StopRequestFreezesHigherIndicesOnly) {
  const auto body = [](std::size_t index, Checkpoint& ckpt,
                       const SliceBudget& /*budget*/, Workspace& /*ws*/) {
    if (ckpt.tag.empty()) ckpt.tag = "stop";
    ckpt.step += 1;
    SliceStatus status;
    status.done = true;
    status.request_stop = index == 2;
    return status;
  };
  EnsembleOptions opts;
  opts.threads = 1;  // deterministic claim order for the assertion below
  EnsembleCheckpoint ckpt;
  const auto run = run_ensemble_sliced(6, opts, SliceBudget{}, ckpt, body);
  EXPECT_TRUE(run.done);
  EXPECT_EQ(ckpt.stop_index, 2u);
  EXPECT_TRUE(ckpt.finished[0] && ckpt.finished[1] && ckpt.finished[2]);
  // Indices above the stopper were never advanced (inline runner claims in
  // order, so nothing beyond 3 was even started before the stop landed).
  EXPECT_FALSE(ckpt.finished[4]);
  EXPECT_FALSE(ckpt.finished[5]);
}

}  // namespace
}  // namespace rebooting::core
