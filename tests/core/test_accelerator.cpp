#include "core/accelerator.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rebooting::core {
namespace {

class FakeAccelerator final : public Accelerator {
 public:
  explicit FakeAccelerator(AcceleratorKind kind) : kind_(kind) {}
  std::string name() const override { return "fake-" + to_string(kind_); }
  AcceleratorKind kind() const override { return kind_; }
  std::vector<std::string> stack_layers() const override {
    return {"app", "compiler", "device"};
  }

 private:
  AcceleratorKind kind_;
};

TEST(HostSystem, RegisterAndDispatch) {
  HostSystem host;
  host.register_accelerator(
      std::make_shared<FakeAccelerator>(AcceleratorKind::kQuantum));
  EXPECT_TRUE(host.has(AcceleratorKind::kQuantum));
  EXPECT_FALSE(host.has(AcceleratorKind::kOscillator));

  Job job;
  job.name = "probe";
  job.kind = AcceleratorKind::kQuantum;
  job.payload = [] {
    JobResult r;
    r.ok = true;
    r.summary = "done";
    r.metrics["answer"] = 42.0;
    return r;
  };
  const JobResult res = host.submit(job);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.summary, "done");
  EXPECT_GE(res.wall_seconds, 0.0);
  ASSERT_EQ(host.log().size(), 1u);
  EXPECT_EQ(host.log()[0].job_name, "probe");
  EXPECT_EQ(host.accelerator(AcceleratorKind::kQuantum).jobs_completed(), 1u);
}

TEST(HostSystem, DuplicateKindRejected) {
  HostSystem host;
  host.register_accelerator(
      std::make_shared<FakeAccelerator>(AcceleratorKind::kMemcomputing));
  EXPECT_THROW(host.register_accelerator(std::make_shared<FakeAccelerator>(
                   AcceleratorKind::kMemcomputing)),
               std::invalid_argument);
}

TEST(HostSystem, DuplicateKindErrorNamesKindAndExistingAccelerator) {
  HostSystem host;
  host.register_accelerator(
      std::make_shared<FakeAccelerator>(AcceleratorKind::kMemcomputing));
  try {
    host.register_accelerator(
        std::make_shared<FakeAccelerator>(AcceleratorKind::kMemcomputing));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("memcomputing"), std::string::npos) << what;
    EXPECT_NE(what.find("fake-memcomputing"), std::string::npos) << what;
  }
}

TEST(HostSystem, MissingAcceleratorThrows) {
  HostSystem host;
  Job job;
  job.kind = AcceleratorKind::kOscillator;
  job.payload = [] { return JobResult{}; };
  EXPECT_THROW(host.submit(job), std::out_of_range);
}

TEST(HostSystem, NullPayloadThrows) {
  HostSystem host;
  host.register_accelerator(
      std::make_shared<FakeAccelerator>(AcceleratorKind::kClassicalCpu));
  Job job;
  job.kind = AcceleratorKind::kClassicalCpu;
  EXPECT_THROW(host.submit(job), std::invalid_argument);
}

TEST(HostSystem, TotalMetricSumsAcrossJobs) {
  HostSystem host;
  host.register_accelerator(
      std::make_shared<FakeAccelerator>(AcceleratorKind::kClassicalCpu));
  for (int i = 1; i <= 3; ++i) {
    Job job;
    job.name = "j" + std::to_string(i);
    job.kind = AcceleratorKind::kClassicalCpu;
    job.payload = [i] {
      JobResult r;
      r.ok = true;
      r.metrics["cost"] = static_cast<Real>(i);
      return r;
    };
    host.submit(job);
  }
  EXPECT_DOUBLE_EQ(host.total_metric("cost"), 6.0);
  EXPECT_DOUBLE_EQ(host.total_metric("missing"), 0.0);
}

TEST(HostSystem, DescribeListsLayers) {
  HostSystem host;
  host.register_accelerator(
      std::make_shared<FakeAccelerator>(AcceleratorKind::kQuantum));
  const std::string desc = host.describe();
  EXPECT_NE(desc.find("fake-quantum"), std::string::npos);
  EXPECT_NE(desc.find("compiler"), std::string::npos);
}

TEST(HostSystem, FailedJobRecordedNotThrown) {
  HostSystem host;
  host.register_accelerator(
      std::make_shared<FakeAccelerator>(AcceleratorKind::kClassicalCpu));
  Job job;
  job.name = "failing";
  job.kind = AcceleratorKind::kClassicalCpu;
  job.payload = [] {
    JobResult r;
    r.ok = false;
    r.summary = "device refused";
    return r;
  };
  const JobResult res = host.submit(job);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(host.log().back().result.summary, "device refused");
}

TEST(Accelerator, UtilizationCountersAreThreadSafe) {
  FakeAccelerator accel(AcceleratorKind::kClassicalCpu);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&accel] {
      for (int i = 0; i < kPerThread; ++i) accel.record_completion(0.001);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(accel.jobs_completed(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_NEAR(accel.busy_seconds(), kThreads * kPerThread * 0.001, 1e-9);
}

TEST(CpuAccelerator, FactoryBuildsIndependentInstances) {
  const auto factory = CpuAccelerator::factory();
  const auto a = factory();
  const auto b = factory();
  ASSERT_TRUE(a && b);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->kind(), AcceleratorKind::kClassicalCpu);
  a->record_completion(1.0);
  EXPECT_EQ(a->jobs_completed(), 1u);
  EXPECT_EQ(b->jobs_completed(), 0u);
}

TEST(KindNames, AllDistinct) {
  EXPECT_EQ(to_string(AcceleratorKind::kQuantum), "quantum");
  EXPECT_EQ(to_string(AcceleratorKind::kOscillator), "oscillator");
  EXPECT_EQ(to_string(AcceleratorKind::kMemcomputing), "memcomputing");
  EXPECT_EQ(to_string(AcceleratorKind::kClassicalCpu), "classical-cpu");
}

}  // namespace
}  // namespace rebooting::core
