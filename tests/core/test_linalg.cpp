#include "core/linalg.h"

#include <gtest/gtest.h>

#include "core/random.h"

namespace rebooting::core {
namespace {

TEST(Matrix, IdentityActsTrivially) {
  const Matrix id = Matrix::identity(3);
  const std::vector<Real> v{1.0, -2.0, 3.0};
  EXPECT_EQ(id * v, v);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
  const std::vector<Real> v{1.0, 2.0};
  EXPECT_THROW(a * std::span<const Real>(v), std::invalid_argument);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  const LuFactorization lu(a);
  const auto x = lu.solve(std::vector<Real>{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(8);
    Matrix a(n, n);
    // Diagonally dominant => well conditioned and non-singular.
    for (std::size_t i = 0; i < n; ++i) {
      Real row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        a(i, j) = rng.uniform(-1.0, 1.0);
        row += std::abs(a(i, j));
      }
      a(i, i) += row + 1.0;
    }
    std::vector<Real> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-5.0, 5.0);
    const auto b = a * x_true;
    const LuFactorization lu(a);
    const auto x = lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const LuFactorization lu(a);
  const auto x = lu.solve(std::vector<Real>{3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, std::invalid_argument);
}

TEST(Lu, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(LuFactorization{a}, std::invalid_argument);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  Rng rng(17);
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 5.0;
  }
  const LuFactorization lu(a);
  const Matrix prod = a * lu.inverse();
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(4)), 1e-10);
}

}  // namespace
}  // namespace rebooting::core
