#include "quantum/canonical.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/cache.h"

namespace rebooting::quantum {
namespace {

/// Pins a test to the pre-cache compile path and restores the ambient toggle.
struct ScopedCacheDisable {
  bool previous = core::cache_enabled();
  ScopedCacheDisable() { core::set_cache_enabled(false); }
  ~ScopedCacheDisable() { core::set_cache_enabled(previous); }
};

// ------------------------------------------------------- canonical form ----

TEST(CircuitCanonical, FirstUseOrderIsIdentityForOrderedCircuit) {
  Circuit c(3);
  c.h(0).cx(0, 1).rz(2, 0.5);
  const CanonicalCircuit canon = canonicalize(c);
  EXPECT_TRUE(canon.identity);
  ASSERT_EQ(canon.perm.size(), 3u);
  for (std::size_t q = 0; q < 3; ++q) EXPECT_EQ(canon.perm[q], q);
}

TEST(CircuitCanonical, RelabeledCircuitsHashIdentically) {
  // h(0).cx(0,3) and h(1).cx(1,2) are the same program modulo qubit names:
  // both relabel to h(0).cx(0,1).
  Circuit a(4), b(4);
  a.h(0).cx(0, 3);
  b.h(1).cx(1, 2);
  const CanonicalCircuit ca = canonicalize(a);
  const CanonicalCircuit cb = canonicalize(b);
  EXPECT_EQ(ca.hash, cb.hash);
  EXPECT_TRUE(ca.identity ||
              !cb.identity);  // a uses 0 first; b needs relabeling
  EXPECT_FALSE(cb.identity);
  // b's relabeling: first-use order is 1, 2; unused 0, 3 fill the tail.
  ASSERT_EQ(cb.perm.size(), 4u);
  EXPECT_EQ(cb.perm[1], 0u);
  EXPECT_EQ(cb.perm[2], 1u);
  EXPECT_EQ(cb.perm[0], 2u);
  EXPECT_EQ(cb.perm[3], 3u);
}

TEST(CircuitCanonical, GateOrderIsSignificant) {
  // Straight-line programs: reordering operations is a different circuit
  // even when the gate multiset matches.
  Circuit a(2), b(2);
  a.h(0).x(1);
  b.x(1).h(0);
  EXPECT_NE(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(CircuitCanonical, OneChangedAngleChangesHash) {
  Circuit a(1), b(1);
  a.rz(0, 0.5);
  b.rz(0, 0.5 + 1e-15);  // one ulp-scale perturbation: different program
  EXPECT_NE(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(CircuitCanonical, NegativeZeroAngleIsPositiveZero) {
  // The one value identification the angle policy performs.
  Circuit a(1), b(1);
  a.rz(0, 0.0);
  b.rz(0, -0.0);
  EXPECT_EQ(canonicalize(a).hash, canonicalize(b).hash);
}

TEST(CircuitCanonical, QubitCountDistinguishesCircuits) {
  // Same gates, different register width: different programs (the extra
  // idle qubit doubles the state space).
  Circuit a(2), b(3);
  a.h(0).cx(0, 1);
  b.h(0).cx(0, 1);
  EXPECT_NE(canonicalize(a).hash, canonicalize(b).hash);
}

// ----------------------------------------------------------- compile key ----

TEST(CircuitCanonical, CompileKeyCoversTopologyAndOptions) {
  Circuit c(4);
  c.h(0).cx(0, 3);
  const CanonicalCircuit canon = canonicalize(c);
  const auto line = compile_key(canon, Topology::line(4), true);
  const auto full = compile_key(canon, Topology::all_to_all(4), true);
  const auto line_noopt = compile_key(canon, Topology::line(4), false);
  EXPECT_NE(line, full);        // routing constraints are part of the key
  EXPECT_NE(line, line_noopt);  // so are the compiler options
  EXPECT_EQ(line, compile_key(canon, Topology::line(4), true));
}

// ---------------------------------------------------------- compile cache --

TEST(CircuitCanonical, RelabeledCompileHitsAndSharesProgram) {
  compile_cache().clear();
  const auto before = compile_cache().stats();
  Circuit a(4), b(4);
  a.h(0).cx(0, 3);
  b.h(1).cx(1, 2);  // same canonical form
  std::vector<std::size_t> perm_a, perm_b;
  const auto prog_a =
      compile_cached(a, Topology::line(4), true, &perm_a);
  const auto prog_b =
      compile_cached(b, Topology::line(4), true, &perm_b);
  ASSERT_NE(prog_a, nullptr);
  EXPECT_EQ(prog_a.get(), prog_b.get());  // literally the same shared program
  const auto after = compile_cache().stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.inserts, before.inserts + 1);

  // The perms map each caller's labels onto the canonical program's.
  ASSERT_EQ(perm_a.size(), 4u);
  ASSERT_EQ(perm_b.size(), 4u);
  EXPECT_EQ(perm_a[0], 0u);
  EXPECT_EQ(perm_a[3], 1u);
  EXPECT_EQ(perm_b[1], 0u);
  EXPECT_EQ(perm_b[2], 1u);
}

TEST(CircuitCanonical, ComposedFinalMapPreservesTheDistribution) {
  // The runtime reads original logical l at physical final_map[perm[l]] of
  // the cached canonical program. Simulating both circuits, the original's
  // distribution must reappear under that composed map — the end-to-end
  // correctness of serving a relabeled circuit from cache.
  compile_cache().clear();
  Circuit c(4);
  c.h(2).cx(2, 0).rx(0, 0.7);
  std::vector<std::size_t> perm;
  const auto prog = compile_cached(c, Topology::line(4), true, &perm);
  ASSERT_NE(prog, nullptr);
  ASSERT_EQ(perm.size(), 4u);
  const auto ref_p = simulate(c).probabilities();
  const auto out_p = simulate(prog->circuit).probabilities();
  for (std::uint64_t logical = 0; logical < ref_p.size(); ++logical) {
    std::uint64_t physical = 0;
    for (std::size_t l = 0; l < 4; ++l)
      if (logical & (1ull << l)) physical |= 1ull << prog->final_map[perm[l]];
    EXPECT_NEAR(ref_p[logical], out_p[physical], 1e-9) << "state " << logical;
  }
}

TEST(CircuitCanonical, DisabledCacheIsDirectCompile) {
  ScopedCacheDisable off;
  const auto before = compile_cache().stats();
  Circuit c(4);
  c.h(1).cx(1, 2);
  std::vector<std::size_t> perm;
  const auto prog = compile_cached(c, Topology::line(4), true, &perm);
  ASSERT_NE(prog, nullptr);
  // Identity perm, untouched cache: the original code path, verbatim.
  for (std::size_t q = 0; q < 4; ++q) EXPECT_EQ(perm[q], q);
  const auto after = compile_cache().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.inserts, before.inserts);
  const CompiledProgram direct = compile(c, Topology::line(4), true);
  EXPECT_EQ(prog->final_map, direct.final_map);
  EXPECT_EQ(prog->report.swaps_inserted, direct.report.swaps_inserted);
}

}  // namespace
}  // namespace rebooting::quantum
