#include "quantum/circuit.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rebooting::quantum {
namespace {

TEST(Circuit, BuilderAddsOperations) {
  Circuit c(3);
  c.h(0).cx(0, 1).rz(2, 0.5).measure(1);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.operations()[1].kind, GateKind::kCx);
  EXPECT_EQ(c.operations()[2].angle, 0.5);
}

TEST(Circuit, RejectsBadOperations) {
  Circuit c(2);
  EXPECT_THROW(c.add(GateKind::kCx, {0}), std::invalid_argument);
  EXPECT_THROW(c.add(GateKind::kH, {5}), std::invalid_argument);
  EXPECT_THROW(c.add(GateKind::kCx, {1, 1}), std::invalid_argument);
  EXPECT_THROW(Circuit(0), std::invalid_argument);
}

TEST(Circuit, AppendRequiresMatchingWidth) {
  Circuit a(2);
  a.h(0);
  Circuit b(2);
  b.x(1);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  Circuit wrong(3);
  EXPECT_THROW(a.append(wrong), std::invalid_argument);
}

TEST(Circuit, DepthAccountsForParallelism) {
  Circuit c(3);
  c.h(0).h(1).h(2);  // all parallel: depth 1
  EXPECT_EQ(c.depth(), 1u);
  c.cx(0, 1);        // depth 2
  c.cx(1, 2);        // depth 3
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, MultiQubitGateCount) {
  Circuit c(3);
  c.h(0).cx(0, 1).cz(1, 2).swap(0, 2).t(1).ccx(0, 1, 2);
  EXPECT_EQ(c.multi_qubit_gates(), 4u);
}

TEST(Simulate, BellPairCorrelations) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const StateVector s = simulate(c);
  EXPECT_NEAR(std::norm(s.amplitude(0b00)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(s.amplitude(0b11)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(s.amplitude(0b01)), 0.0, 1e-12);
}

TEST(Simulate, GhzState) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2);
  const StateVector s = simulate(c);
  EXPECT_NEAR(std::norm(s.amplitude(0b000)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(s.amplitude(0b111)), 0.5, 1e-12);
}

TEST(Simulate, ToffoliTruthTable) {
  for (unsigned in = 0; in < 8; ++in) {
    Circuit c(3);
    for (std::size_t q = 0; q < 3; ++q)
      if (in & (1u << q)) c.x(q);
    c.ccx(0, 1, 2);
    const StateVector s = simulate(c);
    const unsigned expected =
        ((in & 0b11) == 0b11) ? (in ^ 0b100) : in;
    EXPECT_NEAR(std::norm(s.amplitude(expected)), 1.0, 1e-12) << "in=" << in;
  }
}

TEST(Simulate, SwapGate) {
  Circuit c(2);
  c.x(0).swap(0, 1);
  const StateVector s = simulate(c);
  EXPECT_NEAR(std::norm(s.amplitude(0b10)), 1.0, 1e-12);
}

class SelfInverseGates : public ::testing::TestWithParam<GateKind> {};

TEST_P(SelfInverseGates, TwiceIsIdentity) {
  Circuit c(1);
  c.add(GetParam(), {0});
  c.add(GetParam(), {0});
  const StateVector s = simulate(c);
  EXPECT_NEAR(std::norm(s.amplitude(0)), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Gates, SelfInverseGates,
                         ::testing::Values(GateKind::kX, GateKind::kY,
                                           GateKind::kZ, GateKind::kH));

TEST(GateMatrix, SAndSdgCompose) {
  Circuit c(1);
  c.h(0).s(0).sdg(0).h(0);
  const StateVector s = simulate(c);
  EXPECT_NEAR(std::norm(s.amplitude(0)), 1.0, 1e-12);
}

TEST(GateMatrix, TFourthPowerIsZ) {
  // T^4 = Z: H T T T T H |0> = H Z H |0> = |1>.
  Circuit c(1);
  c.h(0).t(0).t(0).t(0).t(0).h(0);
  const StateVector s = simulate(c);
  EXPECT_NEAR(std::norm(s.amplitude(1)), 1.0, 1e-12);
}

TEST(GateMatrix, RotationAngleAddition) {
  Circuit split(1);
  split.ry(0, 0.3).ry(0, 0.9);
  Circuit direct(1);
  direct.ry(0, 1.2);
  EXPECT_NEAR(simulate(split).fidelity(simulate(direct)), 1.0, 1e-12);
}

TEST(GateMatrix, ThrowsForMultiQubitKinds) {
  EXPECT_THROW(gate_matrix(GateKind::kCx), std::invalid_argument);
  EXPECT_THROW(gate_matrix(GateKind::kMeasure), std::invalid_argument);
}

TEST(ApplyOperation, MeasureRejected) {
  StateVector s(1);
  EXPECT_THROW(apply_operation(s, {GateKind::kMeasure, {0}, 0.0}),
               std::invalid_argument);
}

TEST(Operation, ToStringFormats) {
  const Operation op{GateKind::kRx, {2}, 1.5};
  const std::string s = op.to_string();
  EXPECT_NE(s.find("rx"), std::string::npos);
  EXPECT_NE(s.find("q2"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace rebooting::quantum
