#include "quantum/qaoa.h"

#include <gtest/gtest.h>

namespace rebooting::quantum {
namespace {

TEST(IsingEnergy, MatchesDefinition) {
  const std::vector<IsingBondView> bonds = {{0, 1, 1.0}, {1, 2, -2.0}};
  EXPECT_DOUBLE_EQ(ising_energy(bonds, {1, 1, 1}), -1.0 + 2.0);
  EXPECT_DOUBLE_EQ(ising_energy(bonds, {1, 1, -1}), -1.0 - 2.0);
}

TEST(Qaoa, FerromagneticPairReachesGroundState) {
  core::Rng rng(1);
  const std::vector<IsingBondView> bonds = {{0, 1, 1.0}};
  const QaoaResult r = qaoa_ising(2, bonds, rng);
  EXPECT_DOUBLE_EQ(r.best_energy, -1.0);
  EXPECT_EQ(r.best_spins[0], r.best_spins[1]);  // aligned
}

TEST(Qaoa, AntiferromagneticTriangleIsFrustrated) {
  // Ground energy of the AF triangle is -1 (one bond always violated).
  core::Rng rng(3);
  const std::vector<IsingBondView> bonds = {
      {0, 1, -1.0}, {1, 2, -1.0}, {0, 2, -1.0}};
  const QaoaResult r = qaoa_ising(3, bonds, rng);
  EXPECT_DOUBLE_EQ(r.best_energy, -1.0);
}

TEST(Qaoa, RingGroundState) {
  // Ferromagnetic 6-ring: ground energy -6.
  core::Rng rng(5);
  std::vector<IsingBondView> bonds;
  for (std::size_t i = 0; i < 6; ++i) bonds.push_back({i, (i + 1) % 6, 1.0});
  QaoaOptions opts;
  opts.layers = 2;
  const QaoaResult r = qaoa_ising(6, bonds, rng, opts);
  EXPECT_DOUBLE_EQ(r.best_energy, -6.0);
  EXPECT_DOUBLE_EQ(ising_energy(bonds, r.best_spins), r.best_energy);
}

TEST(Qaoa, ExpectationImprovesWithDepth) {
  core::Rng rng(7);
  std::vector<IsingBondView> bonds;
  for (std::size_t i = 0; i < 5; ++i) bonds.push_back({i, (i + 1) % 5, 1.0});
  bonds.push_back({0, 2, -1.0});
  QaoaOptions p1;
  p1.layers = 1;
  QaoaOptions p3;
  p3.layers = 3;
  const QaoaResult r1 = qaoa_ising(5, bonds, rng, p1);
  const QaoaResult r3 = qaoa_ising(5, bonds, rng, p3);
  EXPECT_LE(r3.expected_energy, r1.expected_energy + 1e-9);
}

TEST(Qaoa, ExpectedEnergyBoundsSampledBest) {
  core::Rng rng(9);
  std::vector<IsingBondView> bonds = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, -1.0}};
  const QaoaResult r = qaoa_ising(4, bonds, rng);
  // The sampled minimum cannot exceed the mean.
  EXPECT_LE(r.best_energy, r.expected_energy + 1e-9);
  EXPECT_EQ(r.gammas.size(), 2u);  // default layers
  EXPECT_GT(r.circuit_evaluations, 0u);
}

TEST(Qaoa, InputValidation) {
  core::Rng rng(1);
  EXPECT_THROW(qaoa_ising(0, {}, rng), std::invalid_argument);
  EXPECT_THROW(qaoa_ising(21, {}, rng), std::invalid_argument);
  EXPECT_THROW(qaoa_ising(2, {{0, 0, 1.0}}, rng), std::invalid_argument);
  EXPECT_THROW(qaoa_ising(2, {{0, 5, 1.0}}, rng), std::invalid_argument);
  QaoaOptions bad;
  bad.layers = 0;
  EXPECT_THROW(qaoa_ising(2, {{0, 1, 1.0}}, rng, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::quantum
