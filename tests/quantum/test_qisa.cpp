#include "quantum/qisa.h"

#include <gtest/gtest.h>

namespace rebooting::quantum {
namespace {

TEST(Qisa, AssemblesBasicProgram) {
  const Circuit c = assemble(
      "qubits 3\n"
      "h q0\n"
      "cz q0 q1\n"
      "rx q2 1.5707963\n"
      "measure q1\n");
  EXPECT_EQ(c.num_qubits(), 3u);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.operations()[0].kind, GateKind::kH);
  EXPECT_EQ(c.operations()[1].kind, GateKind::kCz);
  EXPECT_NEAR(c.operations()[2].angle, 1.5707963, 1e-12);
  EXPECT_EQ(c.operations()[3].kind, GateKind::kMeasure);
}

TEST(Qisa, CommentsAndBlankLinesIgnored) {
  const Circuit c = assemble(
      "# full-line comment\n"
      "qubits 2\n"
      "\n"
      "x q0  # trailing comment\n");
  EXPECT_EQ(c.size(), 1u);
}

TEST(Qisa, RoundTripPreservesProgram) {
  Circuit c(4);
  c.h(0).cx(0, 1).rz(2, 0.123456789012345).ccx(0, 1, 3).swap(2, 3).measure(0);
  const Circuit back = assemble(disassemble(c));
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back.operations()[i].kind, c.operations()[i].kind);
    EXPECT_EQ(back.operations()[i].qubits, c.operations()[i].qubits);
    EXPECT_DOUBLE_EQ(back.operations()[i].angle, c.operations()[i].angle);
  }
}

TEST(Qisa, ErrorsCarryLineNumbers) {
  try {
    assemble("qubits 2\nbogus q0\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Qisa, RejectsMalformedPrograms) {
  EXPECT_THROW(assemble("h q0\n"), std::runtime_error);          // no header
  EXPECT_THROW(assemble("qubits 0\n"), std::runtime_error);      // zero qubits
  EXPECT_THROW(assemble("qubits 2\nqubits 3\n"), std::runtime_error);
  EXPECT_THROW(assemble("qubits 2\ncx q0\n"), std::runtime_error);  // operand
  EXPECT_THROW(assemble("qubits 2\nrx q0\n"), std::runtime_error);  // angle
  EXPECT_THROW(assemble("qubits 2\nh q0 q1\n"), std::runtime_error);
  EXPECT_THROW(assemble("qubits 2\nh x0\n"), std::runtime_error);
  EXPECT_THROW(assemble("qubits 1\nh q7\n"), std::invalid_argument);
}

TEST(Qisa, InstructionCyclesOrdering) {
  // Measurement slowest, two-qubit gates slower than single-qubit ones.
  EXPECT_GT(instruction_cycles(GateKind::kMeasure),
            instruction_cycles(GateKind::kCz));
  EXPECT_GT(instruction_cycles(GateKind::kCz),
            instruction_cycles(GateKind::kRx));
  EXPECT_GT(instruction_cycles(GateKind::kCcx),
            instruction_cycles(GateKind::kCz));
}

TEST(Qisa, AssembledProgramSimulates) {
  const Circuit bell = assemble("qubits 2\nh q0\ncx q0 q1\n");
  const StateVector s = simulate(bell);
  EXPECT_NEAR(std::norm(s.amplitude(0b00)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(s.amplitude(0b11)), 0.5, 1e-12);
}

}  // namespace
}  // namespace rebooting::quantum
