#include "quantum/algorithms.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rebooting::quantum {
namespace {

TEST(Qft, InverseUndoesForward) {
  Circuit prep(4);
  prep.h(0).cx(0, 2).t(1);
  Circuit round_trip = prep;
  round_trip.append(qft_circuit(4)).append(inverse_qft_circuit(4));
  EXPECT_NEAR(simulate(prep).fidelity(simulate(round_trip)), 1.0, 1e-9);
}

TEST(Qft, MapsBasisStateToUniformMagnitudes) {
  Circuit c(3);
  c.x(0);
  c.append(qft_circuit(3));
  const StateVector s = simulate(c);
  for (std::uint64_t b = 0; b < 8; ++b)
    EXPECT_NEAR(std::norm(s.amplitude(b)), 1.0 / 8.0, 1e-12);
}

TEST(Qft, PeriodicStateProducesPeaks) {
  // Uniform superposition of states 0 and 4 (period 4 in an 8-dim space):
  // the QFT concentrates on multiples of 2.
  StateVector s(3);
  s.apply_1q(gate_matrix(GateKind::kH), 2);  // |0> + |4>
  const Circuit qft = qft_circuit(3);
  for (const Operation& op : qft.operations()) apply_operation(s, op);
  const auto p = s.probabilities();
  EXPECT_NEAR(p[0] + p[2] + p[4] + p[6], 1.0, 1e-9);
}

TEST(Grover, OptimalIterationFormula) {
  EXPECT_EQ(grover_optimal_iterations(8, 1), 12u);  // pi/4*sqrt(256) ~ 12.5
  EXPECT_EQ(grover_optimal_iterations(4, 1), 3u);
  EXPECT_GE(grover_optimal_iterations(2, 4), 1u);
}

class GroverSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroverSizes, FindsSingleMarkedState) {
  const std::size_t n = GetParam();
  core::Rng rng(n);
  const std::uint64_t target = (1ull << n) - 2;
  const GroverResult r =
      grover_search(n, [target](std::uint64_t s) { return s == target; }, rng);
  EXPECT_GT(r.success_probability, 0.8);
  EXPECT_EQ(r.found, target);
  EXPECT_TRUE(r.is_marked);
}

INSTANTIATE_TEST_SUITE_P(Widths, GroverSizes, ::testing::Values(4u, 6u, 8u, 10u));

TEST(Grover, MultipleMarkedStates) {
  core::Rng rng(5);
  const auto marked = [](std::uint64_t s) { return s % 16 == 3; };
  const GroverResult r = grover_search(8, marked, rng);
  EXPECT_GT(r.success_probability, 0.8);
  EXPECT_TRUE(marked(r.found));
}

TEST(Grover, OverRotationLowersSuccess) {
  core::Rng rng(7);
  const auto marked = [](std::uint64_t s) { return s == 5; };
  const GroverResult good = grover_search(6, marked, rng);
  const GroverResult over =
      grover_search(6, marked, rng, 2 * good.iterations);
  EXPECT_LT(over.success_probability, good.success_probability);
}

class ShorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShorTest, FactorsSemiprime) {
  const std::uint64_t n = GetParam();
  core::Rng rng(n * 7 + 1);
  const ShorResult r = shor_factor(n, rng, 30);
  ASSERT_TRUE(r.success) << "n=" << n;
  EXPECT_EQ(r.factor1 * r.factor2, n);
  EXPECT_GT(r.factor1, 1u);
  EXPECT_GT(r.factor2, 1u);
}

INSTANTIATE_TEST_SUITE_P(Semiprimes, ShorTest,
                         ::testing::Values(15ull, 21ull, 33ull, 35ull));

TEST(Shor, EvenAndPerfectPowerShortcuts) {
  core::Rng rng(1);
  const ShorResult even = shor_factor(14, rng);
  EXPECT_TRUE(even.success);
  EXPECT_EQ(even.factor1, 2u);
  const ShorResult power = shor_factor(27, rng);
  EXPECT_TRUE(power.success);
  EXPECT_EQ(power.factor1 * power.factor2, 27u);
  EXPECT_FALSE(power.used_quantum);
}

TEST(Shor, RejectsTinyInput) {
  core::Rng rng(1);
  EXPECT_THROW(shor_factor(3, rng), std::invalid_argument);
}

class BvTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BvTest, RecoversSecretInOneQuery) {
  core::Rng rng(2);
  EXPECT_EQ(bernstein_vazirani(GetParam(), 6, rng), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Secrets, BvTest,
                         ::testing::Values(0ull, 1ull, 0b101010ull, 0b111111ull));

TEST(DeutschJozsa, DistinguishesConstantFromBalanced) {
  core::Rng rng(3);
  EXPECT_TRUE(deutsch_jozsa_is_balanced(5, true, rng));
  EXPECT_FALSE(deutsch_jozsa_is_balanced(5, false, rng));
}

TEST(Dna, StringRoundTrip) {
  const DnaSequence seq = dna_from_string("ACGTACGT");
  EXPECT_EQ(seq.size(), 8u);
  EXPECT_EQ(dna_to_string(seq), "ACGTACGT");
  EXPECT_THROW(dna_from_string("ACGX"), std::invalid_argument);
}

TEST(Dna, ClassicalMatchFindsAllOccurrences) {
  const DnaSequence text = dna_from_string("ACGACGACG");
  const DnaSequence pat = dna_from_string("ACG");
  std::size_t cmp = 0;
  const auto matches = dna_match_classical(text, pat, &cmp);
  EXPECT_EQ(matches, (std::vector<std::size_t>{0, 3, 6}));
  EXPECT_GT(cmp, 0u);
}

TEST(Dna, GroverFindsPlantedPattern) {
  core::Rng rng(9);
  DnaSequence text = random_dna(rng, 60);
  // Plant a distinctive pattern at offset 23.
  const DnaSequence pat = dna_from_string("ACGTACGTT");
  for (std::size_t j = 0; j < pat.size(); ++j) text[23 + j] = pat[j];
  // Ensure no accidental second match confuses the check.
  const auto classical = dna_match_classical(text, pat);
  ASSERT_FALSE(classical.empty());
  const DnaMatchResult r = dna_match_grover(text, pat, rng);
  ASSERT_TRUE(r.position.has_value());
  // Whatever Grover returned must be a real match.
  bool is_real = false;
  for (const std::size_t m : classical)
    if (m == *r.position) is_real = true;
  EXPECT_TRUE(is_real);
  EXPECT_GT(r.success_probability, 0.5);
}

TEST(Dna, GroverOracleCallsScaleAsSqrt) {
  core::Rng rng(11);
  // 61-offset text (6 index qubits) vs 253-offset text (8 index qubits):
  // oracle calls should grow ~2x, not ~4x.
  DnaSequence pat = dna_from_string("ACGTACGT");
  DnaSequence small = random_dna(rng, 68);
  DnaSequence large = random_dna(rng, 260);
  for (std::size_t j = 0; j < pat.size(); ++j) {
    small[10 + j] = pat[j];
    large[100 + j] = pat[j];
  }
  const auto rs = dna_match_grover(small, pat, rng);
  const auto rl = dna_match_grover(large, pat, rng);
  EXPECT_NEAR(static_cast<double>(rl.oracle_calls) /
                  static_cast<double>(rs.oracle_calls),
              2.0, 0.7);
}

TEST(Dna, EmptyPatternHandled) {
  core::Rng rng(13);
  const DnaSequence text = random_dna(rng, 20);
  const DnaMatchResult r = dna_match_grover(text, {}, rng);
  EXPECT_FALSE(r.position.has_value());
}

}  // namespace
}  // namespace rebooting::quantum
