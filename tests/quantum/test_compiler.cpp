#include "quantum/compiler.h"

#include <gtest/gtest.h>

#include "core/random.h"

namespace rebooting::quantum {
namespace {

bool is_native(const Operation& op) {
  return op.kind == GateKind::kRx || op.kind == GateKind::kRy ||
         op.kind == GateKind::kRz || op.kind == GateKind::kCz ||
         op.kind == GateKind::kMeasure;
}

/// Random test circuit over the full sugar vocabulary.
Circuit random_circuit(core::Rng& rng, std::size_t qubits, std::size_t gates) {
  Circuit c(qubits);
  for (std::size_t g = 0; g < gates; ++g) {
    const auto pick = rng.uniform_index(10);
    const auto q0 = rng.uniform_index(qubits);
    auto q1 = rng.uniform_index(qubits);
    while (q1 == q0) q1 = rng.uniform_index(qubits);
    switch (pick) {
      case 0: c.h(q0); break;
      case 1: c.x(q0); break;
      case 2: c.t(q0); break;
      case 3: c.s(q0); break;
      case 4: c.rx(q0, rng.uniform(-3.0, 3.0)); break;
      case 5: c.ry(q0, rng.uniform(-3.0, 3.0)); break;
      case 6: c.rz(q0, rng.uniform(-3.0, 3.0)); break;
      case 7: c.cx(q0, q1); break;
      case 8: c.cz(q0, q1); break;
      default: c.swap(q0, q1); break;
    }
  }
  return c;
}

/// Compares probability distributions of the source circuit and the compiled
/// circuit after undoing the routing permutation.
void expect_equivalent(const Circuit& source, const CompiledProgram& prog) {
  const StateVector ref = simulate(source);
  const StateVector out = simulate(prog.circuit);
  const auto ref_p = ref.probabilities();
  const auto out_p = out.probabilities();
  for (std::uint64_t logical = 0; logical < ref_p.size(); ++logical) {
    // Map the logical basis state onto the physical qubit labels.
    std::uint64_t physical = 0;
    for (std::size_t l = 0; l < source.num_qubits(); ++l)
      if (logical & (1ull << l)) physical |= 1ull << prog.final_map[l];
    // Sum over the ancilla (unused physical) qubits is unnecessary: they
    // start and stay in |0>.
    EXPECT_NEAR(ref_p[logical], out_p[physical], 1e-9) << "state " << logical;
  }
}

TEST(Topology, Factories) {
  const Topology all = Topology::all_to_all(4);
  EXPECT_TRUE(all.connected(0, 3));
  const Topology line = Topology::line(4);
  EXPECT_TRUE(line.connected(1, 2));
  EXPECT_FALSE(line.connected(0, 3));
  const Topology grid = Topology::grid(2, 3);
  EXPECT_TRUE(grid.connected(0, 3));   // vertical neighbour
  EXPECT_FALSE(grid.connected(0, 4));  // diagonal
}

TEST(Topology, ShortestPathOnLine) {
  const Topology line = Topology::line(6);
  const auto path = line.shortest_path(1, 4);
  EXPECT_EQ(path, (std::vector<std::size_t>{1, 2, 3, 4}));
  EXPECT_EQ(line.shortest_path(2, 2), (std::vector<std::size_t>{2}));
}

TEST(Decompose, OutputsOnlyNativeGates) {
  core::Rng rng(1);
  const Circuit c = random_circuit(rng, 4, 40);
  const Circuit lowered = decompose_to_native(c);
  for (const Operation& op : lowered.operations()) EXPECT_TRUE(is_native(op));
}

TEST(Decompose, PreservesSemanticsUpToGlobalPhase) {
  core::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = random_circuit(rng, 3, 25);
    const Circuit lowered = decompose_to_native(c);
    EXPECT_NEAR(simulate(c).fidelity(simulate(lowered)), 1.0, 1e-9);
  }
}

TEST(Decompose, ToffoliLowersCorrectly) {
  for (unsigned in = 0; in < 8; ++in) {
    Circuit c(3);
    for (std::size_t q = 0; q < 3; ++q)
      if (in & (1u << q)) c.x(q);
    c.ccx(0, 1, 2);
    const Circuit lowered = decompose_to_native(c);
    EXPECT_NEAR(simulate(c).fidelity(simulate(lowered)), 1.0, 1e-9);
  }
}

TEST(Route, AllToAllInsertsNoSwaps) {
  core::Rng rng(5);
  const Circuit c = decompose_to_native(random_circuit(rng, 4, 30));
  const RoutingResult r = route(c, Topology::all_to_all(4));
  EXPECT_EQ(r.swaps_inserted, 0u);
  EXPECT_EQ(r.final_map, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Route, LineTopologyGetsConnectedGates) {
  Circuit c(4);
  c.cz(0, 3);
  const RoutingResult r = route(decompose_to_native(c), Topology::line(4));
  EXPECT_GT(r.swaps_inserted, 0u);
  const Topology line = Topology::line(4);
  for (const Operation& op : r.circuit.operations()) {
    if (op.qubits.size() == 2)
      EXPECT_TRUE(line.connected(op.qubits[0], op.qubits[1]))
          << op.to_string();
  }
}

TEST(Route, ThreeQubitGatesRejected) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  EXPECT_THROW(route(c, Topology::all_to_all(3)), std::invalid_argument);
}

TEST(Optimize, CancelsInverseRotations) {
  Circuit c(1);
  c.rz(0, 0.7).rz(0, -0.7).rx(0, 0.2);
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.size(), 1u);
  EXPECT_EQ(opt.operations()[0].kind, GateKind::kRx);
}

TEST(Optimize, MergesSameAxisRotations) {
  Circuit c(1);
  c.ry(0, 0.3).ry(0, 0.4);
  const Circuit opt = optimize(c);
  ASSERT_EQ(opt.size(), 1u);
  EXPECT_NEAR(opt.operations()[0].angle, 0.7, 1e-12);
}

TEST(Optimize, CancelsAdjacentCzPairs) {
  Circuit c(2);
  c.cz(0, 1).cz(1, 0).rx(0, 0.5);
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.size(), 1u);
}

TEST(Optimize, InterveningGateBlocksMerge) {
  Circuit c(2);
  c.rz(0, 0.3).cz(0, 1).rz(0, 0.3);
  const Circuit opt = optimize(c);
  EXPECT_EQ(opt.size(), 3u);
}

TEST(Optimize, PreservesSemantics) {
  core::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = decompose_to_native(random_circuit(rng, 3, 30));
    const Circuit opt = optimize(c);
    EXPECT_NEAR(simulate(c).fidelity(simulate(opt)), 1.0, 1e-9);
    EXPECT_LE(opt.size(), c.size());
  }
}

TEST(Schedule, RespectsDependenciesAndDurations) {
  Circuit c(2);
  c.rx(0, 0.1).cz(0, 1).rx(1, 0.2);
  const Schedule s = schedule_asap(c);
  ASSERT_EQ(s.start_cycle.size(), 3u);
  EXPECT_EQ(s.start_cycle[0], 0u);
  EXPECT_EQ(s.start_cycle[1], 1u);  // waits for rx on q0
  EXPECT_EQ(s.start_cycle[2], 3u);  // waits for cz (2 cycles)
  EXPECT_EQ(s.total_cycles, 4u);
}

TEST(Schedule, IndependentGatesOverlap) {
  Circuit c(2);
  c.rx(0, 0.1).rx(1, 0.2);
  const Schedule s = schedule_asap(c);
  EXPECT_EQ(s.start_cycle[0], 0u);
  EXPECT_EQ(s.start_cycle[1], 0u);
  EXPECT_EQ(s.total_cycles, 1u);
}

class FullPipeline : public ::testing::TestWithParam<bool> {};

TEST_P(FullPipeline, EquivalentOnLineTopology) {
  const bool optimizer = GetParam();
  core::Rng rng(11);
  for (int trial = 0; trial < 4; ++trial) {
    const Circuit c = random_circuit(rng, 4, 25);
    const CompiledProgram prog = compile(c, Topology::line(4), optimizer);
    expect_equivalent(c, prog);
    EXPECT_GT(prog.report.total_cycles, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(OptimizerOnOff, FullPipeline, ::testing::Bool());

TEST(FullPipelineGrid, EquivalentOnGridTopology) {
  core::Rng rng(19);
  for (int trial = 0; trial < 3; ++trial) {
    const Circuit c = random_circuit(rng, 6, 30);
    const CompiledProgram prog = compile(c, Topology::grid(2, 3), true);
    expect_equivalent(c, prog);
  }
}

TEST(FullPipelineGrid, GridNeedsFewerSwapsThanLine) {
  // Richer connectivity => cheaper routing, on average.
  core::Rng rng(23);
  std::size_t line_swaps = 0;
  std::size_t grid_swaps = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = random_circuit(rng, 6, 40);
    line_swaps += compile(c, Topology::line(6)).report.swaps_inserted;
    grid_swaps += compile(c, Topology::grid(2, 3)).report.swaps_inserted;
  }
  EXPECT_LE(grid_swaps, line_swaps);
}

TEST(FullPipeline, OptimizerNeverIncreasesGateCount) {
  core::Rng rng(13);
  const Circuit c = random_circuit(rng, 4, 40);
  const CompiledProgram raw = compile(c, Topology::line(4), false);
  const CompiledProgram opt = compile(c, Topology::line(4), true);
  EXPECT_LE(opt.report.optimized_gates, raw.report.optimized_gates);
}

TEST(FullPipeline, ReportCountsConsistent) {
  core::Rng rng(17);
  const Circuit c = random_circuit(rng, 3, 20);
  const CompiledProgram prog = compile(c, Topology::line(3));
  EXPECT_EQ(prog.report.source_gates, c.size());
  EXPECT_EQ(prog.report.optimized_gates, prog.circuit.size());
  EXPECT_EQ(prog.report.total_cycles, prog.schedule.total_cycles);
}

}  // namespace
}  // namespace rebooting::quantum
