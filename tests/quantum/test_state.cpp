#include "quantum/state.h"

#include <gtest/gtest.h>

#include <cmath>

#include "quantum/circuit.h"

namespace rebooting::quantum {
namespace {

TEST(StateVector, InitializesToGroundState) {
  StateVector s(3);
  EXPECT_EQ(s.dimension(), 8u);
  EXPECT_NEAR(std::abs(s.amplitude(0)), 1.0, 1e-15);
  EXPECT_NEAR(s.norm(), 1.0, 1e-15);
}

TEST(StateVector, QubitCountLimits) {
  EXPECT_THROW(StateVector(0), std::invalid_argument);
  EXPECT_THROW(StateVector(27), std::invalid_argument);
}

TEST(StateVector, HadamardCreatesEqualSuperposition) {
  StateVector s(1);
  s.apply_1q(gate_matrix(GateKind::kH), 0);
  EXPECT_NEAR(std::norm(s.amplitude(0)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(s.amplitude(1)), 0.5, 1e-12);
}

TEST(StateVector, PauliXFlipsBasisState) {
  StateVector s(2);
  s.apply_1q(gate_matrix(GateKind::kX), 1);
  EXPECT_NEAR(std::norm(s.amplitude(0b10)), 1.0, 1e-12);
}

class UnitarityTest : public ::testing::TestWithParam<GateKind> {};

TEST_P(UnitarityTest, NormPreservedByGate) {
  StateVector s(3);
  // Scramble a bit first.
  s.apply_1q(gate_matrix(GateKind::kH), 0);
  s.apply_1q(gate_matrix(GateKind::kH), 2);
  s.apply_1q(gate_matrix(GetParam(), 0.7), 1);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Gates, UnitarityTest,
                         ::testing::Values(GateKind::kX, GateKind::kY,
                                           GateKind::kZ, GateKind::kH,
                                           GateKind::kS, GateKind::kT,
                                           GateKind::kRx, GateKind::kRy,
                                           GateKind::kRz, GateKind::kPhase));

TEST(StateVector, ControlledGateActsOnlyWhenControlSet) {
  StateVector s(2);
  const std::size_t controls[] = {0};
  // Control |0>: nothing happens.
  s.apply_controlled(gate_matrix(GateKind::kX), controls, 1);
  EXPECT_NEAR(std::norm(s.amplitude(0b00)), 1.0, 1e-12);
  // Set the control, now the target flips.
  s.apply_1q(gate_matrix(GateKind::kX), 0);
  s.apply_controlled(gate_matrix(GateKind::kX), controls, 1);
  EXPECT_NEAR(std::norm(s.amplitude(0b11)), 1.0, 1e-12);
}

TEST(StateVector, MultiControlledRequiresAllControls) {
  StateVector s(3);
  s.apply_1q(gate_matrix(GateKind::kX), 0);  // only one of two controls set
  const std::size_t controls[] = {0, 1};
  s.apply_controlled(gate_matrix(GateKind::kX), controls, 2);
  EXPECT_NEAR(std::norm(s.amplitude(0b001)), 1.0, 1e-12);
}

TEST(StateVector, SwapQubitsPermutesAmplitudes) {
  StateVector s(2);
  s.apply_1q(gate_matrix(GateKind::kX), 0);  // |01> (qubit0 = 1)
  s.swap_qubits(0, 1);
  EXPECT_NEAR(std::norm(s.amplitude(0b10)), 1.0, 1e-12);
}

TEST(StateVector, DiagonalAppliesPhases) {
  StateVector s(1);
  s.apply_1q(gate_matrix(GateKind::kH), 0);
  s.apply_diagonal([](std::uint64_t b) { return b == 1 ? -1.0 : 1.0; });
  // H then Z-phase then H == X up to global phase.
  s.apply_1q(gate_matrix(GateKind::kH), 0);
  EXPECT_NEAR(std::norm(s.amplitude(1)), 1.0, 1e-12);
}

TEST(StateVector, PermutationMovesAmplitudes) {
  StateVector s(2);
  s.apply_1q(gate_matrix(GateKind::kH), 0);
  s.apply_permutation([](std::uint64_t b) { return b ^ 0b10u; });
  EXPECT_NEAR(std::norm(s.amplitude(0b10)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(s.amplitude(0b11)), 0.5, 1e-12);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(StateVector, ProbabilityOne) {
  StateVector s(2);
  s.apply_1q(gate_matrix(GateKind::kRy, 2.0 * std::acos(std::sqrt(0.25))), 0);
  EXPECT_NEAR(s.probability_one(0), 0.75, 1e-9);
  EXPECT_NEAR(s.probability_one(1), 0.0, 1e-12);
}

TEST(StateVector, SampleFollowsDistribution) {
  core::Rng rng(1);
  StateVector s(1);
  s.apply_1q(gate_matrix(GateKind::kH), 0);
  int ones = 0;
  const int shots = 20000;
  for (int i = 0; i < shots; ++i)
    if (s.sample(rng) == 1) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / shots, 0.5, 0.02);
}

TEST(StateVector, MeasureCollapsesState) {
  core::Rng rng(3);
  StateVector s(2);
  s.apply_1q(gate_matrix(GateKind::kH), 0);
  const std::size_t controls[] = {0};
  s.apply_controlled(gate_matrix(GateKind::kX), controls, 1);  // Bell pair
  const bool outcome = s.measure_qubit(0, rng);
  // After measuring qubit 0, qubit 1 is perfectly correlated.
  EXPECT_NEAR(s.probability_one(1), outcome ? 1.0 : 0.0, 1e-12);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(StateVector, FidelityOfIdenticalAndOrthogonalStates) {
  StateVector a(1);
  StateVector b(1);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
  b.apply_1q(gate_matrix(GateKind::kX), 0);
  EXPECT_NEAR(a.fidelity(b), 0.0, 1e-12);
}

TEST(StateVector, BadTargetsThrow) {
  StateVector s(2);
  EXPECT_THROW(s.apply_1q(gate_matrix(GateKind::kX), 2), std::invalid_argument);
  const std::size_t controls[] = {1};
  EXPECT_THROW(s.apply_controlled(gate_matrix(GateKind::kX), controls, 1),
               std::invalid_argument);
  EXPECT_THROW(s.probability_one(5), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::quantum
