#include "quantum/runtime.h"

#include <gtest/gtest.h>

#include "core/cache.h"
#include "quantum/canonical.h"

namespace rebooting::quantum {
namespace {

/// Pins a test to the pre-cache compile path (original qubit labels) and
/// restores the ambient toggle on exit.
struct ScopedCacheDisable {
  bool previous = core::cache_enabled();
  ScopedCacheDisable() { core::set_cache_enabled(false); }
  ~ScopedCacheDisable() { core::set_cache_enabled(previous); }
};

TEST(Runtime, BellPairOnAllToAll) {
  core::Rng rng(1);
  Circuit bell(2);
  bell.h(0).cx(0, 1);
  QuantumAccelerator acc({.topology = Topology::all_to_all(2)});
  const ExecutionResult r = acc.run(bell, 4000, rng);
  EXPECT_EQ(r.shots, 4000u);
  EXPECT_NEAR(r.frequency(0b00), 0.5, 0.05);
  EXPECT_NEAR(r.frequency(0b11), 0.5, 0.05);
  EXPECT_NEAR(r.frequency(0b01) + r.frequency(0b10), 0.0, 1e-12);
}

TEST(Runtime, RoutingPermutationUndoneInCounts) {
  // Cache disabled: the original-labeled circuit compiles as-is, so the
  // distant pair really costs SWAPs. (With the compile cache on, the
  // canonical relabeling 0,3 -> 0,1 makes the pair adjacent — covered by
  // test_circuit_canonical.cpp.)
  ScopedCacheDisable off;
  core::Rng rng(3);
  // Entangle distant qubits on a line; the result keys must still be the
  // LOGICAL bit patterns 0b0000 / 0b1001.
  Circuit bell(4);
  bell.h(0).cx(0, 3);
  QuantumAccelerator acc({.topology = Topology::line(4)});
  const ExecutionResult r = acc.run(bell, 4000, rng);
  EXPECT_GT(r.compile_report.swaps_inserted, 0u);
  EXPECT_NEAR(r.frequency(0b0000) + r.frequency(0b1001), 1.0, 1e-12);
}

TEST(Runtime, CachedCompilePreservesLogicalCounts) {
  // Same distant-pair circuit with the compile cache live: results must
  // stay logically correct through the canonical relabeling, and a second
  // run of a hash-equal relabeled circuit must reuse the compiled program.
  const auto before = compile_cache().stats();
  core::Rng rng(3);
  Circuit bell(4);
  bell.h(0).cx(0, 3);
  QuantumAccelerator acc({.topology = Topology::line(4)});
  const ExecutionResult r = acc.run(bell, 4000, rng);
  EXPECT_NEAR(r.frequency(0b0000) + r.frequency(0b1001), 1.0, 1e-12);

  Circuit relabeled(4);
  relabeled.h(1).cx(1, 2);  // same canonical form: h(0).cx(0, 1)
  const ExecutionResult r2 = acc.run(relabeled, 4000, rng);
  EXPECT_NEAR(r2.frequency(0b0000) + r2.frequency(0b0110), 1.0, 1e-12);
  const auto after = compile_cache().stats();
  EXPECT_GT(after.hits, before.hits);
}

TEST(Runtime, ExplicitMeasurementsCollapse) {
  core::Rng rng(5);
  Circuit c(2);
  c.h(0).cx(0, 1).measure(0).measure(1);
  QuantumAccelerator acc({.topology = Topology::all_to_all(2)});
  const ExecutionResult r = acc.run(c, 2000, rng);
  EXPECT_NEAR(r.frequency(0b00) + r.frequency(0b11), 1.0, 1e-12);
}

TEST(Runtime, DeviceTimeScalesWithShots) {
  core::Rng rng(7);
  Circuit c(2);
  c.h(0).cx(0, 1);
  QuantumAccelerator acc({.topology = Topology::all_to_all(2)});
  const auto r1 = acc.run(c, 100, rng);
  const auto r2 = acc.run(c, 200, rng);
  EXPECT_NEAR(r2.device_seconds, 2.0 * r1.device_seconds, 1e-12);
}

TEST(Runtime, DepolarizingNoiseDegradesBellFidelity) {
  core::Rng rng(9);
  Circuit bell(2);
  bell.h(0).cx(0, 1);
  QuantumDeviceConfig noisy;
  noisy.topology = Topology::all_to_all(2);
  noisy.noise.depolarizing_1q = 0.02;
  noisy.noise.depolarizing_2q = 0.05;
  QuantumAccelerator acc(noisy);
  const ExecutionResult r = acc.run(bell, 3000, rng);
  const core::Real good = r.frequency(0b00) + r.frequency(0b11);
  EXPECT_LT(good, 0.995);  // errors visible
  EXPECT_GT(good, 0.6);    // but not random
}

TEST(Runtime, ReadoutFlipsScrambleDeterministicOutcome) {
  core::Rng rng(11);
  Circuit c(1);
  c.x(0);
  QuantumDeviceConfig cfg;
  cfg.topology = Topology::all_to_all(1);
  cfg.noise.readout_flip = 0.1;
  QuantumAccelerator acc(cfg);
  const ExecutionResult r = acc.run(c, 5000, rng);
  EXPECT_NEAR(r.frequency(0b0), 0.1, 0.02);
}

TEST(Runtime, ModeReturnsMostFrequent) {
  core::Rng rng(13);
  Circuit c(2);
  c.x(1);
  QuantumAccelerator acc({.topology = Topology::all_to_all(2)});
  const ExecutionResult r = acc.run(c, 100, rng);
  EXPECT_EQ(r.mode(), 0b10u);
}

TEST(Runtime, ZeroShotsRejected) {
  core::Rng rng(1);
  Circuit c(1);
  c.h(0);
  QuantumAccelerator acc({.topology = Topology::all_to_all(1)});
  EXPECT_THROW(acc.run(c, 0, rng), std::invalid_argument);
}

TEST(Runtime, StackLayersDescribeFigTwo) {
  QuantumAccelerator acc({.topology = Topology::all_to_all(2)});
  const auto layers = acc.stack_layers();
  EXPECT_EQ(layers.size(), 6u);  // the six layers of Fig. 2
  EXPECT_EQ(acc.kind(), core::AcceleratorKind::kQuantum);
}

}  // namespace
}  // namespace rebooting::quantum
