// End-to-end service tests: a real rebootd::Server on an ephemeral port,
// driven by real sockets — admission control, coalescing, tenancy, teardown
// accounting, and the connection-level failure modes. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "rebootctl/client.h"
#include "rebootd/server.h"
#include "rebootd/tenancy.h"

namespace rebooting::rebootd {
namespace {

using namespace std::chrono_literals;

net::Request submit_spin(std::uint64_t id, double micros,
                         bool no_coalesce = true) {
  net::Request req;
  req.id = id;
  req.method = "submit";
  req.work = "spin";
  req.no_coalesce = no_coalesce;
  req.params = core::JsonValue::make_object(
      {{"micros", core::JsonValue::make_number(micros)}});
  return req;
}

rebootctl::Client connect_client(const Server& server) {
  rebootctl::Client client;
  std::string error;
  EXPECT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;
  return client;
}

/// Polls the status method until `pred(body)` holds (or ~400 ms elapse).
template <typename Pred>
bool wait_for_status(const Server& server, Pred pred) {
  rebootctl::Client client = connect_client(server);
  for (int i = 0; i < 200; ++i) {
    net::Request req;
    req.id = 1;
    req.method = "status";
    const auto resp = client.call(req);
    if (resp && resp->body.is_object() && pred(resp->body)) return true;
    std::this_thread::sleep_for(2ms);
  }
  return false;
}

double pool_stat(const core::JsonValue& body, const char* stat) {
  return body.at("pools").at("classical-cpu").at(stat).number();
}

TEST(Service, SubmitExecutesAndReportsMetrics) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());

  rebootctl::Client client = connect_client(server);
  const auto resp = client.call(submit_spin(7, 100.0));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->id, 7u);
  EXPECT_EQ(resp->status, net::Status::kOk);
  EXPECT_EQ(resp->attempts, 1u);
  EXPECT_DOUBLE_EQ(resp->metrics.at("work.spin_micros"), 100.0);
  EXPECT_GT(resp->wall_seconds, 0.0);
}

TEST(Service, TypedRejectionsForBadRequests) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());
  rebootctl::Client client = connect_client(server);

  net::Request ping;
  ping.id = 1;
  ping.method = "ping";
  auto resp = client.call(ping);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kOk);

  net::Request unknown;
  unknown.id = 2;
  unknown.method = "frobnicate";
  resp = client.call(unknown);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kBadRequest);

  net::Request bad_work;
  bad_work.id = 3;
  bad_work.method = "submit";
  bad_work.work = "no-such-work";
  resp = client.call(bad_work);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kBadRequest);

  // No quantum pool was added, so the kind is unroutable — typed, not fatal.
  net::Request bad_kind = submit_spin(4, 10.0);
  bad_kind.kind = core::AcceleratorKind::kQuantum;
  resp = client.call(bad_kind);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kBadRequest);

  // The connection survived all three rejections.
  ping.id = 5;
  resp = client.call(ping);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kOk);
}

TEST(Service, MalformedJsonKeepsTheConnectionUsable) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());

  net::Socket sock = net::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(sock.valid());
  ASSERT_TRUE(net::write_frame(sock, "{this is not json"));
  std::string frame;
  ASSERT_EQ(net::read_frame(sock, &frame, net::kMaxFrameBytes),
            net::FrameRead::kFrame);
  auto resp = net::decode_response(frame);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kBadRequest);

  // The framing was intact, so the same connection still serves requests.
  net::Request ping;
  ping.id = 9;
  ping.method = "ping";
  ASSERT_TRUE(net::write_frame(sock, net::encode_request(ping)));
  ASSERT_EQ(net::read_frame(sock, &frame, net::kMaxFrameBytes),
            net::FrameRead::kFrame);
  resp = net::decode_response(frame);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kOk);
  EXPECT_EQ(resp->id, 9u);
}

TEST(Service, OversizedFrameGetsATypedReplyThenHangup) {
  ServerConfig config;
  config.cpu_workers = 1;
  config.max_frame_bytes = 256;
  Server server(config);
  ASSERT_TRUE(server.start());

  net::Socket sock = net::connect_to("127.0.0.1", server.port());
  ASSERT_TRUE(sock.valid());
  ASSERT_TRUE(net::write_frame(sock, std::string(1024, 'x')));
  std::string frame;
  ASSERT_EQ(net::read_frame(sock, &frame, net::kMaxFrameBytes),
            net::FrameRead::kFrame);
  const auto resp = net::decode_response(frame);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kBadRequest);
  // The unread body poisons the stream; the server hangs up after replying.
  // (kError, not kEof, is possible: closing with the unread body still in
  // the server's receive buffer makes TCP reset the connection.)
  const net::FrameRead after = net::read_frame(sock, &frame, net::kMaxFrameBytes);
  EXPECT_TRUE(after == net::FrameRead::kEof || after == net::FrameRead::kError);
}

TEST(Service, MidRequestDisconnectLeavesTheServerServing) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());
  {
    net::Socket sock = net::connect_to("127.0.0.1", server.port());
    ASSERT_TRUE(sock.valid());
    const unsigned char half_prefix[2] = {0x00, 0x00};
    ASSERT_TRUE(sock.write_all(half_prefix, 2));
  }  // destructor disconnects mid-frame

  rebootctl::Client client = connect_client(server);
  const auto resp = client.call(submit_spin(1, 10.0));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kOk);
}

TEST(Service, ConcurrentClientsAllGetTheirAnswers) {
  ServerConfig config;
  config.cpu_workers = 2;
  config.pump_threads = 2;
  Server server(config);
  ASSERT_TRUE(server.start());

  constexpr int kThreads = 8;
  constexpr int kRequests = 50;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      rebootctl::Client client = connect_client(server);
      for (int i = 0; i < kRequests; ++i) {
        const std::uint64_t id =
            static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(i);
        const auto resp = client.call(submit_spin(id, 5.0));
        if (resp && resp->status == net::Status::kOk && resp->id == id) ++ok;
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(ok.load(), kThreads * kRequests);
}

TEST(Service, IdenticalBurstsCoalesceIntoOneJob) {
  ServerConfig config;
  config.cpu_workers = 1;
  config.coalesce_window_ms = 500.0;
  Server server(config);
  ASSERT_TRUE(server.start());
  rebootctl::Client client = connect_client(server);

  // A blocker pins the single worker, so the identical burst behind it is
  // all queued inside one coalescing window.
  ASSERT_TRUE(client.send(submit_spin(1, 50'000.0)));
  ASSERT_TRUE(wait_for_status(server, [](const core::JsonValue& body) {
    return pool_stat(body, "in_flight") == 1.0;
  }));

  constexpr int kBurst = 4;
  for (std::uint64_t id = 2; id < 2 + kBurst; ++id)
    ASSERT_TRUE(client.send(submit_spin(id, 1000.0, /*no_coalesce=*/false)));

  int ok = 0, coalesced = 0;
  for (int i = 0; i < 1 + kBurst; ++i) {
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    if (resp->status == net::Status::kOk) ++ok;
    if (resp->coalesced) ++coalesced;
  }
  EXPECT_EQ(ok, 1 + kBurst);
  EXPECT_EQ(coalesced, kBurst - 1);  // every burst member but the leader

  // The scheduler saw two jobs: the blocker and the burst leader.
  EXPECT_TRUE(wait_for_status(server, [](const core::JsonValue& body) {
    return body.at("submitted").number() == 2.0;
  }));
}

TEST(Service, QuotaExhaustionIsTypedWithARetryHint) {
  ServerConfig config;
  config.cpu_workers = 1;
  config.tenancy.default_quota = {.rate_per_s = 2.0, .burst = 2.0};
  Server server(config);
  ASSERT_TRUE(server.start());
  rebootctl::Client client = connect_client(server);

  net::Request echo;
  echo.method = "submit";
  echo.work = "echo";
  for (std::uint64_t id = 1; id <= 2; ++id) {
    echo.id = id;
    const auto resp = client.call(echo);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, net::Status::kOk) << "id " << id;
  }
  echo.id = 3;
  const auto resp = client.call(echo);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kQuotaExceeded);
  ASSERT_TRUE(resp->retry_after_ms.has_value());
  EXPECT_GT(*resp->retry_after_ms, 0.0);
}

TEST(Service, QueueHighWaterRejectsAsOverloaded) {
  ServerConfig config;
  config.cpu_workers = 1;
  config.admission_high_water = 1;
  config.coalesce_window_ms = 0.0;
  Server server(config);
  ASSERT_TRUE(server.start());
  rebootctl::Client client = connect_client(server);

  // One in flight, one queued, and the third must bounce off the high-water
  // mark. The reader handles frames of one connection in order, so by the
  // time request 3 is checked, request 2 is already in the queue.
  ASSERT_TRUE(client.send(submit_spin(1, 100'000.0)));
  ASSERT_TRUE(wait_for_status(server, [](const core::JsonValue& body) {
    return pool_stat(body, "in_flight") == 1.0;
  }));
  ASSERT_TRUE(client.send(submit_spin(2, 100.0)));
  ASSERT_TRUE(client.send(submit_spin(3, 100.0)));

  std::map<net::Status, int> statuses;
  std::map<net::Status, std::uint64_t> status_ids;
  for (int i = 0; i < 3; ++i) {
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value());
    ++statuses[resp->status];
    status_ids[resp->status] = resp->id;
  }
  EXPECT_EQ(statuses[net::Status::kOk], 2);
  EXPECT_EQ(statuses[net::Status::kOverloaded], 1);
  EXPECT_EQ(status_ids[net::Status::kOverloaded], 3u);
}

TEST(Service, StopAnswersEveryAcceptedRequest) {
  ServerConfig config;
  config.cpu_workers = 1;
  config.coalesce_window_ms = 0.0;
  Server server(config);
  ASSERT_TRUE(server.start());
  rebootctl::Client client = connect_client(server);

  ASSERT_TRUE(client.send(submit_spin(1, 200'000.0)));
  ASSERT_TRUE(wait_for_status(server, [](const core::JsonValue& body) {
    return pool_stat(body, "in_flight") == 1.0;
  }));
  for (std::uint64_t id = 2; id <= 4; ++id)
    ASSERT_TRUE(client.send(submit_spin(id, 100.0)));
  // Wait until the reader has *accepted* all three queued requests —
  // stop()'s response guarantee covers accepted requests, not bytes still
  // sitting unread in the socket buffer.
  ASSERT_TRUE(wait_for_status(server, [](const core::JsonValue& body) {
    return pool_stat(body, "queue_depth") == 3.0;
  }));

  server.stop();

  // The teardown contract: the in-flight job finished (ok), the queued jobs
  // were flushed (shutting_down), and nothing was dropped.
  std::map<net::Status, int> statuses;
  for (int i = 0; i < 4; ++i) {
    const auto resp = client.recv();
    ASSERT_TRUE(resp.has_value()) << "response " << i << " was dropped";
    ++statuses[resp->status];
  }
  EXPECT_EQ(statuses[net::Status::kOk], 1);
  EXPECT_EQ(statuses[net::Status::kShuttingDown], 3);
  EXPECT_FALSE(client.recv().has_value());  // then a clean EOF
}

TEST(Service, ShutdownMethodRaisesTheFlagForTheOwner) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());
  EXPECT_FALSE(server.shutdown_requested());

  rebootctl::Client client = connect_client(server);
  net::Request req;
  req.id = 1;
  req.method = "shutdown";
  const auto resp = client.call(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kOk);
  EXPECT_TRUE(server.shutdown_requested());
  server.stop();
}

// --- observability: metrics/watch verbs, trace-context echo ---------------

net::Request watch_request(std::uint64_t id, double interval_ms) {
  net::Request req;
  req.id = id;
  req.method = "watch";
  req.params = core::JsonValue::make_object(
      {{"interval_ms", core::JsonValue::make_number(interval_ms)}});
  return req;
}

TEST(Service, MetricsVerbReturnsSnapshotAndRates) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());

  rebootctl::Client client = connect_client(server);
  ASSERT_TRUE(client.call(submit_spin(1, 50.0)).has_value());

  net::Request req;
  req.id = 2;
  req.method = "metrics";
  const auto first = client.call(req);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, net::Status::kOk);
  ASSERT_TRUE(first->body.is_object());
  // One full registry snapshot: the submit above must be visible.
  EXPECT_GE(first->body.at("counters").at("net.requests").number(), 1.0);
  EXPECT_GE(
      first->body.at("histograms").at("net.request_seconds").at("count")
          .number(),
      1.0);
  EXPECT_TRUE(first->body.at("pools").is_object());
  EXPECT_TRUE(first->body.at("sched").is_object());

  // Each metrics call is one sampler tick; from the second on, counter
  // rates over the inter-call window are defined.
  std::this_thread::sleep_for(5ms);
  ASSERT_TRUE(client.call(submit_spin(3, 50.0)).has_value());
  const auto second = client.call(req);
  ASSERT_TRUE(second.has_value());
  const auto& rates = second->body.at("rates");
  EXPECT_GT(rates.at("dt_seconds").number(), 0.0);
  EXPECT_GT(rates.at("per_second").at("net.requests").number(), 0.0);
}

TEST(Service, WatchStreamsFramesUntilTheClientUnsubscribes) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());

  rebootctl::Client client = connect_client(server);
  // 5 ms requested, clamped to the 20 ms floor server-side.
  ASSERT_TRUE(client.send(watch_request(9, 5.0)));
  for (int i = 0; i < 3; ++i) {
    std::string error;
    const auto frame = client.recv(&error);
    ASSERT_TRUE(frame.has_value()) << error;
    EXPECT_EQ(frame->id, 9u);
    EXPECT_EQ(frame->status, net::Status::kOk);
    EXPECT_TRUE(frame->streaming) << "frame " << i << " must be non-terminal";
    EXPECT_TRUE(frame->body.is_object());
  }
  // Disconnecting is the unsubscribe; the server must shed the dead
  // subscription instead of wedging its watch pump on it.
  client.close();
  rebootctl::Client probe = connect_client(server);
  net::Request ping;
  ping.id = 1;
  ping.method = "ping";
  const auto pong = probe.call(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->status, net::Status::kOk);
}

TEST(Service, StopSendsEveryWatcherATerminalFrame) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());

  // Several subscribers at different cadences, all mid-stream when the
  // server stops. Each must see streaming frames end in exactly one
  // terminal (non-streaming) kShuttingDown frame, then EOF — the
  // one-response-per-request invariant extended to streams.
  constexpr int kWatchers = 3;
  std::vector<rebootctl::Client> clients;
  for (int i = 0; i < kWatchers; ++i) {
    clients.push_back(connect_client(server));
    ASSERT_TRUE(
        clients.back().send(watch_request(100 + i, 20.0 * (i + 1))));
    const auto first = clients.back().recv();
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->streaming);
  }

  std::thread stopper([&server] { server.stop(); });
  for (int i = 0; i < kWatchers; ++i) {
    bool terminal_seen = false;
    for (int frames = 0; frames < 1000 && !terminal_seen; ++frames) {
      std::string error;
      const auto frame = clients[i].recv(&error);
      ASSERT_TRUE(frame.has_value())
          << "watcher " << i << " hit EOF before its terminal frame: "
          << error;
      if (!frame->streaming) {
        terminal_seen = true;
        EXPECT_EQ(frame->id, 100u + i);
        EXPECT_EQ(frame->status, net::Status::kShuttingDown);
      }
    }
    EXPECT_TRUE(terminal_seen);
    // After the terminal frame the stream is over: clean EOF, no stray
    // extra responses.
    std::string error;
    EXPECT_FALSE(clients[i].recv(&error).has_value());
    EXPECT_EQ(error, "connection closed");
  }
  stopper.join();
}

TEST(Service, WatchRejectsMistypedInterval) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());

  rebootctl::Client client = connect_client(server);
  net::Request req;
  req.id = 4;
  req.method = "watch";
  req.params = core::JsonValue::make_object(
      {{"interval_ms", core::JsonValue::make_string("fast")}});
  const auto resp = client.call(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, net::Status::kBadRequest);
  EXPECT_FALSE(resp->streaming);
}

TEST(Service, TraceContextIsEchoedOnEveryOutcome) {
  ServerConfig config;
  config.cpu_workers = 1;
  Server server(config);
  ASSERT_TRUE(server.start());

  rebootctl::Client client = connect_client(server);
  // An explicit context (as rebootctl stamps when tracing): the server must
  // echo it whatever the outcome, so the client can close its flow chain.
  net::Request ok = submit_spin(1, 50.0);
  ok.trace_id = (1ull << 60) + 12345;
  ok.parent_span = 1;
  const auto ok_resp = client.call(ok);
  ASSERT_TRUE(ok_resp.has_value());
  EXPECT_EQ(ok_resp->status, net::Status::kOk);
  EXPECT_EQ(ok_resp->trace_id, (1ull << 60) + 12345);

  net::Request bad = submit_spin(2, 50.0);
  bad.work = "no-such-work";
  bad.trace_id = 77;
  const auto bad_resp = client.call(bad);
  ASSERT_TRUE(bad_resp.has_value());
  EXPECT_EQ(bad_resp->status, net::Status::kBadRequest);
  EXPECT_EQ(bad_resp->trace_id, 77u);

  net::Request ping;
  ping.id = 3;
  ping.method = "ping";
  ping.trace_id = 88;
  const auto pong = client.call(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->trace_id, 88u);

  // No context in -> no context out.
  const auto plain = client.call(submit_spin(4, 50.0));
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->trace_id, 0u);
}

// --- tenancy unit tests ---------------------------------------------------

TEST(Tenancy, TokenBucketRefillsAtTheConfiguredRate) {
  TenancyConfig config;
  config.default_quota = {.rate_per_s = 10.0, .burst = 2.0};
  TenantGovernor governor(config);

  const auto t0 = Clock::now();
  EXPECT_TRUE(governor.admit("a", t0).admitted);
  EXPECT_TRUE(governor.admit("a", t0).admitted);
  const Admission rejected = governor.admit("a", t0);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_NEAR(rejected.retry_after_ms, 100.0, 1.0);

  // 100 ms later exactly one token has refilled (synthetic clock — the
  // governor takes `now` as an argument precisely so this is testable).
  EXPECT_TRUE(governor.admit("a", t0 + 100ms).admitted);
  EXPECT_FALSE(governor.admit("a", t0 + 100ms).admitted);

  // Quotas are per tenant: "b" still has its full burst.
  EXPECT_TRUE(governor.admit("b", t0).admitted);
}

TEST(Tenancy, FairShareBiasGrowsWithInFlightAndRecoversOnRelease) {
  TenancyConfig config;
  config.fair_share_stride = 4;
  config.max_priority_penalty = 2;
  TenantGovernor governor(config);
  const auto t0 = Clock::now();

  std::vector<int> biases;
  for (int i = 0; i < 13; ++i) biases.push_back(governor.admit("a", t0).priority_bias);
  // in_flight 0..3 -> 0, 4..7 -> -1, 8..11 -> -2, 12 -> clamped at -2.
  EXPECT_EQ(biases[0], 0);
  EXPECT_EQ(biases[3], 0);
  EXPECT_EQ(biases[4], -1);
  EXPECT_EQ(biases[8], -2);
  EXPECT_EQ(biases[12], -2);

  // A light tenant is not penalized by the heavy one's backlog.
  EXPECT_EQ(governor.admit("b", t0).priority_bias, 0);

  for (int i = 0; i < 13; ++i) governor.release("a");
  EXPECT_EQ(governor.admit("a", t0).priority_bias, 0);
  EXPECT_EQ(governor.stats().at("a").in_flight, 1u);
}

}  // namespace
}  // namespace rebooting::rebootd
