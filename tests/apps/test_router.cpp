// Consistent-hash router tests: spread, lookup stability under shard death,
// and the ~1/N remap property that makes a mid-storm kill survivable.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "rebootctl/router.h"

namespace rebooting::rebootctl {
namespace {

std::vector<ShardAddress> three_shards() {
  return {{"127.0.0.1", 4700}, {"127.0.0.1", 4701}, {"127.0.0.1", 4702}};
}

std::string key_of(int i) { return "tenant-" + std::to_string(i % 7) + "/" +
                                   std::to_string(i); }

TEST(ShardRouter, SpreadsKeysAcrossShards) {
  ShardRouter router(three_shards());
  std::map<std::uint16_t, int> hits;
  const int keys = 30000;
  for (int i = 0; i < keys; ++i) ++hits[router.route(key_of(i))->port];
  ASSERT_EQ(hits.size(), 3u);
  for (const auto& [port, count] : hits) {
    // Fair share is 1/3; with 64 vnodes the arc variance stays well inside
    // [1/6, 1/2].
    EXPECT_GT(count, keys / 6) << "port " << port;
    EXPECT_LT(count, keys / 2) << "port " << port;
  }
}

TEST(ShardRouter, RoutingIsDeterministic) {
  ShardRouter a(three_shards());
  ShardRouter b(three_shards());
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.route(key_of(i))->port, b.route(key_of(i))->port);
}

TEST(ShardRouter, MarkDownRemapsOnlyTheDeadShardsKeys) {
  ShardRouter router(three_shards());
  const ShardAddress victim{"127.0.0.1", 4701};

  std::map<std::string, std::uint16_t> before;
  for (int i = 0; i < 5000; ++i)
    before[key_of(i)] = router.route(key_of(i))->port;

  router.mark_down(victim);
  EXPECT_EQ(router.live_count(), 2u);
  int remapped = 0;
  for (const auto& [key, port] : before) {
    const auto now = router.route(key);
    ASSERT_TRUE(now.has_value());
    EXPECT_NE(now->port, victim.port);
    if (port != victim.port) {
      // Keys of surviving shards must not move — that is the whole point of
      // consistent hashing.
      EXPECT_EQ(now->port, port) << key;
    } else {
      ++remapped;
    }
  }
  EXPECT_GT(remapped, 0);

  // Recovery restores the original placement exactly.
  router.mark_up(victim);
  for (const auto& [key, port] : before)
    EXPECT_EQ(router.route(key)->port, port);
}

TEST(ShardRouter, AllShardsDownRoutesNowhere) {
  ShardRouter router({{"127.0.0.1", 4700}});
  router.mark_down({"127.0.0.1", 4700});
  EXPECT_FALSE(router.route("anything").has_value());
  EXPECT_EQ(router.live_count(), 0u);
}

TEST(ShardRouter, Fnv1aMatchesTheReferenceConstants) {
  // Offset basis (empty input) and a published test vector.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xAF63DC4C8601EC8Cull);
}

}  // namespace
}  // namespace rebooting::rebootctl
