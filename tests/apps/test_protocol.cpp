// Wire-protocol tests: codec round trips, strict-on-type / silent-on-unknown
// decoding, and the framing edge cases the service must survive — partial
// reads, oversized frames, malformed JSON, and mid-frame disconnects.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "net/protocol.h"
#include "net/socket.h"

namespace rebooting::net {
namespace {

// --- codec ----------------------------------------------------------------

TEST(Protocol, RequestRoundTripsEveryField) {
  Request req;
  req.id = 42;
  req.method = "submit";
  req.tenant = "alice";
  req.work = "spin";
  req.kind = core::AcceleratorKind::kMemcomputing;
  req.params = core::JsonValue::make_object(
      {{"micros", core::JsonValue::make_number(50.0)}});
  req.priority = 3;
  req.deadline_ms = 250.0;
  req.no_coalesce = true;
  req.memo = true;

  const auto decoded = decode_request(encode_request(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 42u);
  EXPECT_EQ(decoded->method, "submit");
  EXPECT_EQ(decoded->tenant, "alice");
  EXPECT_EQ(decoded->work, "spin");
  EXPECT_EQ(decoded->kind, core::AcceleratorKind::kMemcomputing);
  EXPECT_DOUBLE_EQ(decoded->params.at("micros").number(), 50.0);
  EXPECT_EQ(decoded->priority, 3);
  ASSERT_TRUE(decoded->deadline_ms.has_value());
  EXPECT_DOUBLE_EQ(*decoded->deadline_ms, 250.0);
  EXPECT_TRUE(decoded->no_coalesce);
  EXPECT_TRUE(decoded->memo);
}

TEST(Protocol, MemoDefaultsOffAndStaysOffTheWire) {
  Request req;
  req.method = "submit";
  const std::string wire = encode_request(req);
  EXPECT_EQ(wire.find("memo"), std::string::npos);
  const auto decoded = decode_request(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->memo);
}

TEST(Protocol, ResponseRoundTripsEveryField) {
  Response resp;
  resp.id = 7;
  resp.status = Status::kQuotaExceeded;
  resp.summary = "tenant over quota";
  resp.attempts = 2;
  resp.degraded = true;
  resp.coalesced = true;
  resp.wall_seconds = 1.5e-3;
  resp.retry_after_ms = 12.5;
  resp.metrics["work.spin_micros"] = 50.0;
  resp.body = core::JsonValue::make_object(
      {{"outstanding", core::JsonValue::make_number(3.0)}});

  const auto decoded = decode_response(encode_response(resp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 7u);
  EXPECT_EQ(decoded->status, Status::kQuotaExceeded);
  EXPECT_EQ(decoded->summary, "tenant over quota");
  EXPECT_EQ(decoded->attempts, 2u);
  EXPECT_TRUE(decoded->degraded);
  EXPECT_TRUE(decoded->coalesced);
  EXPECT_DOUBLE_EQ(decoded->wall_seconds, 1.5e-3);
  ASSERT_TRUE(decoded->retry_after_ms.has_value());
  EXPECT_DOUBLE_EQ(*decoded->retry_after_ms, 12.5);
  EXPECT_DOUBLE_EQ(decoded->metrics.at("work.spin_micros"), 50.0);
  EXPECT_DOUBLE_EQ(decoded->body.at("outstanding").number(), 3.0);
}

TEST(Protocol, EveryStatusSurvivesTheStringMapping) {
  for (const Status s :
       {Status::kOk, Status::kFailed, Status::kOverloaded,
        Status::kQuotaExceeded, Status::kDeadlineMissed, Status::kCancelled,
        Status::kShuttingDown, Status::kBadRequest, Status::kError}) {
    const auto back = status_from_string(to_string(s));
    ASSERT_TRUE(back.has_value()) << to_string(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(status_from_string("no-such-status").has_value());
}

TEST(Protocol, TraceContextRoundTripsAsDecimalStrings) {
  // Full-width u64s: the decimal-string encoding must survive values a JSON
  // double would silently round (anything past 2^53).
  Request req;
  req.id = 7;
  req.method = "submit";
  req.work = "spin";
  req.trace_id = ~std::uint64_t{0};  // 18446744073709551615
  req.parent_span = (1ull << 53) + 1;
  const std::string frame = encode_request(req);
  EXPECT_NE(frame.find("\"trace_id\":\"18446744073709551615\""),
            std::string::npos);
  const auto decoded = decode_request(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->trace_id, ~std::uint64_t{0});
  EXPECT_EQ(decoded->parent_span, (1ull << 53) + 1);

  // Absent context decodes to 0 and encodes to nothing.
  Request bare;
  bare.id = 1;
  bare.method = "ping";
  EXPECT_EQ(encode_request(bare).find("trace_id"), std::string::npos);
  const auto bare_decoded = decode_request(encode_request(bare));
  ASSERT_TRUE(bare_decoded.has_value());
  EXPECT_EQ(bare_decoded->trace_id, 0u);
  EXPECT_EQ(bare_decoded->parent_span, 0u);

  Response resp;
  resp.id = 7;
  resp.status = Status::kOk;
  resp.streaming = true;
  resp.trace_id = req.trace_id;
  const auto resp_decoded = decode_response(encode_response(resp));
  ASSERT_TRUE(resp_decoded.has_value());
  EXPECT_TRUE(resp_decoded->streaming);
  EXPECT_EQ(resp_decoded->trace_id, ~std::uint64_t{0});
}

TEST(Protocol, TraceContextIsStrictlyParsed) {
  // Present-but-wrong is a hard error like any other type mismatch: a JSON
  // number would already have lost precision by the time we saw it.
  std::string error;
  EXPECT_FALSE(
      decode_request(R"({"id":1,"method":"ping","trace_id":7})", &error)
          .has_value());
  EXPECT_NE(error.find("trace_id"), std::string::npos);
  EXPECT_FALSE(
      decode_request(R"({"id":1,"method":"ping","trace_id":"7x"})")
          .has_value());
  EXPECT_FALSE(
      decode_request(R"({"id":1,"method":"ping","trace_id":""})")
          .has_value());
  // 2^64 exactly: 20 digits, overflows by one — the checked accumulate must
  // catch it, not wrap.
  EXPECT_FALSE(decode_request(
                   R"({"id":1,"method":"ping","trace_id":"18446744073709551616"})")
                   .has_value());
  EXPECT_FALSE(decode_response(R"({"id":1,"status":"ok","streaming":"yes"})")
                   .has_value());
}

TEST(Protocol, ParamsRideOnAnyMethodForWatch) {
  Request req;
  req.id = 3;
  req.method = "watch";
  req.params = core::JsonValue::make_object(
      {{"interval_ms", core::JsonValue::make_number(125.0)}});
  const auto decoded = decode_request(encode_request(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->method, "watch");
  ASSERT_TRUE(decoded->params.is_object());
  EXPECT_DOUBLE_EQ(decoded->params.at("interval_ms").number(), 125.0);
}

TEST(Protocol, DecodeRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(decode_request("{not json", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(decode_request("[1,2,3]", &error).has_value());
  EXPECT_FALSE(decode_request("{}", &error).has_value());  // no id/method
  EXPECT_FALSE(
      decode_request(R"({"id":1,"method":"submit","kind":"warp-drive"})")
          .has_value());
  EXPECT_FALSE(decode_response(R"({"id":1,"status":"nope"})").has_value());
}

TEST(Protocol, DecodeIsStrictOnTypesAndSilentOnUnknownFields) {
  // Mistyped known field: rejected with a diagnostic naming the field.
  std::string error;
  EXPECT_FALSE(
      decode_request(R"({"id":1,"method":"ping","tenant":7})", &error)
          .has_value());
  EXPECT_NE(error.find("tenant"), std::string::npos);
  // Unknown field: ignored (forward compatibility across shard versions).
  const auto req = decode_request(
      R"({"id":1,"method":"ping","some_future_field":{"a":[1]}})");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "ping");
}

TEST(Protocol, CoalesceKeySeparatesWhatMustNotMerge) {
  Request a;
  a.id = 1;
  a.method = "submit";
  a.tenant = "alice";
  a.work = "spin";
  Request b = a;
  b.id = 2;  // ids never enter the key
  EXPECT_EQ(coalesce_key(a), coalesce_key(b));

  Request c = a;
  c.tenant = "bob";
  EXPECT_NE(coalesce_key(a), coalesce_key(c));
  Request d = a;
  d.params = core::JsonValue::make_object(
      {{"micros", core::JsonValue::make_number(50.0)}});
  EXPECT_NE(coalesce_key(a), coalesce_key(d));
  Request e = a;
  e.priority = 1;
  EXPECT_NE(coalesce_key(a), coalesce_key(e));
  Request f = a;
  f.deadline_ms = 100.0;
  EXPECT_NE(coalesce_key(a), coalesce_key(f));
}

// --- framing --------------------------------------------------------------

/// A connected local socket pair for framing tests.
struct Pair {
  Socket a, b;
  Pair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

TEST(Framing, FrameRoundTrip) {
  Pair pair;
  ASSERT_TRUE(write_frame(pair.a, R"({"id":1})"));
  std::string frame;
  ASSERT_EQ(read_frame(pair.b, &frame, kMaxFrameBytes), FrameRead::kFrame);
  EXPECT_EQ(frame, R"({"id":1})");

  ASSERT_TRUE(write_frame(pair.a, ""));  // empty frames are legal transport
  ASSERT_EQ(read_frame(pair.b, &frame, kMaxFrameBytes), FrameRead::kFrame);
  EXPECT_TRUE(frame.empty());
}

TEST(Framing, PartialWritesStillAssembleOneFrame) {
  Pair pair;
  const std::string payload = R"({"id":9,"method":"ping"})";
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string wire;
  wire.push_back(static_cast<char>(n >> 24));
  wire.push_back(static_cast<char>(n >> 16));
  wire.push_back(static_cast<char>(n >> 8));
  wire.push_back(static_cast<char>(n));
  wire += payload;

  // Dribble the frame one byte at a time from another thread; read_frame
  // must block through every partial read and return the complete payload.
  std::thread writer([&] {
    for (const char c : wire) {
      ASSERT_TRUE(pair.a.write_all(&c, 1));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  std::string frame;
  EXPECT_EQ(read_frame(pair.b, &frame, kMaxFrameBytes), FrameRead::kFrame);
  EXPECT_EQ(frame, payload);
  writer.join();
}

TEST(Framing, OversizedFrameIsReportedWithoutBuffering) {
  Pair pair;
  // Declare a 256 MiB body (never sent); the reader must refuse at the
  // prefix instead of allocating it.
  const unsigned char prefix[4] = {0x10, 0x00, 0x00, 0x00};
  ASSERT_TRUE(pair.a.write_all(prefix, 4));
  std::string frame;
  EXPECT_EQ(read_frame(pair.b, &frame, kMaxFrameBytes),
            FrameRead::kOversized);
}

TEST(Framing, CleanEofVsMidFrameDisconnect) {
  {
    Pair pair;
    pair.a.close();  // nothing sent: clean EOF at a frame boundary
    std::string frame;
    EXPECT_EQ(read_frame(pair.b, &frame, kMaxFrameBytes), FrameRead::kEof);
  }
  {
    Pair pair;
    const unsigned char partial[2] = {0x00, 0x00};  // half a length prefix
    ASSERT_TRUE(pair.a.write_all(partial, 2));
    pair.a.close();
    std::string frame;
    EXPECT_EQ(read_frame(pair.b, &frame, kMaxFrameBytes), FrameRead::kError);
  }
  {
    Pair pair;
    // Full prefix declaring 100 bytes, then only 10 arrive before the close.
    const unsigned char prefix[4] = {0x00, 0x00, 0x00, 0x64};
    ASSERT_TRUE(pair.a.write_all(prefix, 4));
    ASSERT_TRUE(pair.a.write_all("0123456789", 10));
    pair.a.close();
    std::string frame;
    EXPECT_EQ(read_frame(pair.b, &frame, kMaxFrameBytes), FrameRead::kError);
  }
}

}  // namespace
}  // namespace rebooting::net
