// Chaos / resilience suite for the scheduler's fault-tolerant execution
// layer (DESIGN.md §10): retries with backoff, circuit breakers, failover to
// the classical-cpu pool, and graceful degradation — all driven by the
// deterministic core::FaultPlan, so every "storm" in here is bit-reproducible
// for a given seed at any worker count. The CI chaos matrix runs this binary
// under TSan with REBOOTING_CHAOS_SEED rotating through several seeds.
#include "scheduler/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/faults.h"
#include "memcomputing/accelerator.h"
#include "memcomputing/dmm.h"
#include "memcomputing/sat.h"
#include "telemetry/telemetry.h"

namespace rebooting::sched {
namespace {

using namespace std::chrono_literals;
using core::AcceleratorKind;
using core::FaultPlan;
using core::FaultyAccelerator;

core::JobResult ok_result(std::string summary = "ok") {
  core::JobResult r;
  r.ok = true;
  r.summary = std::move(summary);
  return r;
}

core::JobResult bad_result(std::string summary = "bad") {
  core::JobResult r;
  r.ok = false;
  r.summary = std::move(summary);
  return r;
}

core::Job cpu_job(std::string name, std::function<core::JobResult()> fn) {
  return core::Job{std::move(name), AcceleratorKind::kClassicalCpu,
                   std::move(fn)};
}

bool ready(const std::future<core::JobResult>& f) {
  return f.wait_for(0s) == std::future_status::ready;
}

/// The chaos seed rotated by the CI matrix; 0 when unset.
std::uint64_t chaos_seed() {
  const char* env = std::getenv("REBOOTING_CHAOS_SEED");
  return env && *env ? std::strtoull(env, nullptr, 10) : 0;
}

std::shared_ptr<const FaultPlan> transient_plan(AcceleratorKind kind,
                                                std::uint64_t seed,
                                                core::Real p) {
  FaultPlan plan;
  plan.seed = seed;
  plan.kinds[kind].transient_probability = p;
  return std::make_shared<const FaultPlan>(plan);
}

/// Fast retries for tests: generous attempts, microscopic backoff.
JobOptions retrying(std::size_t max_attempts) {
  JobOptions opts;
  opts.retry.max_attempts = max_attempts;
  opts.retry.initial_backoff = 100us;
  opts.retry.max_backoff = 1ms;
  return opts;
}

/// The per-job outcome fingerprint the reproducibility tests compare.
struct Outcome {
  bool ok = false;
  std::size_t attempts = 0;
  std::vector<std::string> fault_log;

  bool operator==(const Outcome&) const = default;
};

/// One seeded storm: `jobs` always-succeeding payloads through a single
/// fault-injected CPU pool of `workers` replicas, submitted from one thread
/// so scheduler sequence numbers equal submission order.
std::vector<Outcome> run_storm(std::uint64_t seed, core::Real p,
                               std::size_t workers, std::size_t jobs,
                               std::size_t max_attempts) {
  Scheduler scheduler;
  scheduler.add_pool(
      AcceleratorKind::kClassicalCpu, workers,
      FaultyAccelerator::wrap(core::CpuAccelerator::factory(),
                              transient_plan(AcceleratorKind::kClassicalCpu,
                                             seed, p)));
  std::vector<std::future<core::JobResult>> futures;
  futures.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i)
    futures.push_back(scheduler.submit(
        cpu_job("storm-" + std::to_string(i), [] { return ok_result(); }),
        retrying(max_attempts)));
  std::vector<Outcome> outcomes;
  outcomes.reserve(jobs);
  for (auto& f : futures) {
    core::JobResult r = f.get();
    outcomes.push_back({r.ok, r.attempts, std::move(r.fault_log)});
  }
  return outcomes;
}

// -------------------------------------------------------------- retries ----

TEST(Retry, SucceedsAfterTransientPayloadFailures) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  std::atomic<int> calls{0};
  auto f = scheduler.submit(cpu_job("flaky",
                                    [&] {
                                      return ++calls < 3
                                                 ? bad_result("glitch")
                                                 : ok_result("third time");
                                    }),
                            retrying(5));
  const auto r = f.get();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.summary, "third time");
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_TRUE(r.degraded);
  ASSERT_EQ(r.fault_log.size(), 2u);
  EXPECT_NE(r.fault_log[0].find("glitch"), std::string::npos);
  EXPECT_EQ(calls.load(), 3);
}

TEST(Retry, ExhaustionReturnsTheLastPayloadResultVerbatim) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  auto f = scheduler.submit(
      cpu_job("doomed", [] { return bad_result("engine saturated"); }),
      retrying(3));
  const auto r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.summary, "engine saturated");  // not a synthesized wrapper
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.fault_log.size(), 3u);
}

TEST(Retry, ExceptionRetriedThenSucceeds) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  std::atomic<int> calls{0};
  auto f = scheduler.submit(cpu_job("thrower",
                                    [&]() -> core::JobResult {
                                      if (++calls == 1)
                                        throw std::runtime_error("boom");
                                      return ok_result();
                                    }),
                            retrying(3));
  const auto r = f.get();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_TRUE(r.degraded);
  ASSERT_EQ(r.fault_log.size(), 1u);
  EXPECT_NE(r.fault_log[0].find("threw"), std::string::npos);
}

TEST(Retry, ExceptionOnFinalAttemptPropagates) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  auto f = scheduler.submit(cpu_job("always-throws",
                                    []() -> core::JobResult {
                                      throw std::runtime_error("boom");
                                    }),
                            retrying(2));
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Retry, BudgetCapsTimeSpentBackingOff) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  JobOptions opts;
  opts.retry.max_attempts = 10;
  opts.retry.initial_backoff = 5ms;
  opts.retry.backoff_multiplier = 1.0;  // constant 5 ms per retry
  opts.retry.retry_budget = 12ms;       // room for exactly two sleeps
  auto f = scheduler.submit(
      cpu_job("budgeted", [] { return bad_result("nope"); }), opts);
  const auto r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 3u);
  ASSERT_FALSE(r.fault_log.empty());
  EXPECT_NE(r.fault_log.back().find("retry budget"), std::string::npos);
}

TEST(Retry, BackoffThatWouldCrossTheDeadlineFailsInstead) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  JobOptions opts;
  opts.retry.max_attempts = 5;
  opts.retry.initial_backoff = 200ms;
  opts.deadline = deadline_in(50ms);
  const auto start = Clock::now();
  auto f = scheduler.submit(
      cpu_job("late-backoff", [] { return bad_result("nope"); }), opts);
  const auto r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 1u);  // the 200 ms backoff was never slept
  EXPECT_LT(Clock::now() - start, 150ms);
  ASSERT_FALSE(r.fault_log.empty());
  EXPECT_NE(r.fault_log.back().find("deadline"), std::string::npos);
}

TEST(Retry, BackoffActuallyWaitsBetweenAttempts) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  JobOptions opts;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff = 4ms;
  opts.retry.backoff_multiplier = 2.0;  // sleeps of ~4 ms then ~8 ms
  opts.retry.jitter = 0.25;
  const auto start = Clock::now();
  auto f = scheduler.submit(
      cpu_job("slow-burn", [] { return bad_result("nope"); }), opts);
  const auto r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 3u);
  // Two jittered sleeps of at least 3 ms and 6 ms.
  EXPECT_GE(Clock::now() - start, 9ms);
}

TEST(Retry, CancellationBetweenAttemptsStopsTheJob) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  CancelToken token;
  JobOptions opts;
  opts.retry.max_attempts = 50;
  opts.retry.initial_backoff = 2ms;
  opts.retry.backoff_multiplier = 1.0;
  opts.cancel = token;
  std::atomic<int> calls{0};
  auto f = scheduler.submit(cpu_job("cancel-mid-retry",
                                    [&] {
                                      if (++calls == 2) token.cancel();
                                      return bad_result("nope");
                                    }),
                            opts);
  const auto r = f.get();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary.find("cancelled"), std::string::npos);
  EXPECT_LT(calls.load(), 5);
}

// --------------------------------------------------------- fault storms ----

TEST(Chaos, SeededStormIsReproducibleAcrossRunsAndWorkerCounts) {
  const std::uint64_t seed = 0xC4A05ull + chaos_seed();
  const auto once = run_storm(seed, 0.2, 1, 60, 4);
  const auto again = run_storm(seed, 0.2, 1, 60, 4);
  const auto wide = run_storm(seed, 0.2, 4, 60, 4);
  EXPECT_EQ(once, again) << "same seed, same worker count";
  EXPECT_EQ(once, wide) << "same seed, different worker count";

  // Artifact for the CI chaos matrix: the full per-job fault log, so a
  // failing seed can be replayed offline.
  const char* artifact = std::getenv("REBOOTING_CHAOS_ARTIFACT");
  std::ofstream out(artifact && *artifact ? artifact : "chaos_fault_log.txt");
  out << "seed " << seed << "\n";
  for (std::size_t i = 0; i < once.size(); ++i) {
    out << "job " << i << " ok=" << once[i].ok
        << " attempts=" << once[i].attempts << "\n";
    for (const auto& line : once[i].fault_log) out << "  " << line << "\n";
  }
}

TEST(Chaos, DifferentSeedsProduceDifferentStorms) {
  const auto a = run_storm(1, 0.3, 1, 60, 4);
  const auto b = run_storm(2, 0.3, 1, 60, 4);
  EXPECT_NE(a, b);
}

TEST(Chaos, StormsAtSeveralProbabilitiesNeverAbandonJobs) {
  for (const core::Real p : {0.05, 0.2, 0.5}) {
    const auto outcomes = run_storm(7, p, 3, 80, 6);
    ASSERT_EQ(outcomes.size(), 80u);
    std::size_t degraded = 0, faults = 0;
    for (const auto& o : outcomes) {
      EXPECT_GE(o.attempts, 1u);
      EXPECT_LE(o.attempts, 6u);
      // A job that spent more than one attempt must say why.
      if (o.attempts > 1) {
        ++degraded;
        EXPECT_FALSE(o.fault_log.empty());
      }
      faults += o.fault_log.size();
      if (!o.ok) EXPECT_EQ(o.attempts, 6u) << "failed before exhaustion";
    }
    if (p >= 0.2) EXPECT_GT(degraded, 0u) << "p=" << p;
    if (p >= 0.2) EXPECT_GT(faults, 0u) << "p=" << p;
  }
}

TEST(Chaos, LatencySpikeStallsButSucceedsUndegraded) {
  FaultPlan plan;
  plan.seed = 3;
  plan.kinds[AcceleratorKind::kClassicalCpu].latency_spike_probability = 1.0;
  plan.kinds[AcceleratorKind::kClassicalCpu].latency_spike_seconds = 0.005;
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     FaultyAccelerator::wrap(
                         core::CpuAccelerator::factory(),
                         std::make_shared<const FaultPlan>(plan)));
  const auto start = Clock::now();
  const auto r =
      scheduler.submit(cpu_job("spiked", [] { return ok_result(); })).get();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_FALSE(r.degraded);  // the attempt succeeded, just slowly
  EXPECT_GE(Clock::now() - start, 4ms);
  ASSERT_EQ(r.fault_log.size(), 1u);
  EXPECT_NE(r.fault_log[0].find("latency spike"), std::string::npos);
}

TEST(Chaos, CorruptionDiscardsTheResultAndRetries) {
  FaultPlan plan;
  plan.seed = 4;
  plan.kinds[AcceleratorKind::kClassicalCpu].corruption_probability = 1.0;
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     FaultyAccelerator::wrap(
                         core::CpuAccelerator::factory(),
                         std::make_shared<const FaultPlan>(plan)));
  std::atomic<int> calls{0};
  const auto r = scheduler
                     .submit(cpu_job("corrupted",
                                     [&] {
                                       ++calls;
                                       return ok_result("tainted");
                                     }),
                             retrying(3))
                     .get();
  EXPECT_FALSE(r.ok);  // every attempt's result was discarded
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(calls.load(), 3);  // the payload DID run each time
  EXPECT_NE(r.summary.find("failed after 3 attempt"), std::string::npos);
  ASSERT_EQ(r.fault_log.size(), 3u);
  EXPECT_NE(r.fault_log[0].find("corruption"), std::string::npos);
}

TEST(Chaos, PermanentWearOutShiftsWorkToTheFallbackPool) {
  FaultPlan plan;
  plan.kinds[AcceleratorKind::kMemcomputing].permanent_after = 3;
  Scheduler scheduler;
  scheduler.add_pool(
      AcceleratorKind::kMemcomputing, 1,
      FaultyAccelerator::wrap(memcomputing::MemcomputingAccelerator::factory(),
                              std::make_shared<const FaultPlan>(plan)));
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  JobOptions opts = retrying(2);
  opts.retry.cpu_fallback = true;
  std::vector<std::future<core::JobResult>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(scheduler.submit(
        core::Job{"wear-" + std::to_string(i),
                  AcceleratorKind::kMemcomputing, [] { return ok_result(); }},
        opts));
  std::size_t failed_over = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_TRUE(r.ok) << r.summary;  // every job completes *somewhere*
    for (const auto& line : r.fault_log)
      if (line.find("failing over") != std::string::npos) {
        ++failed_over;
        break;
      }
  }
  // The device wore out after 3 calls; the bulk of the batch survived only
  // via the classical-cpu fallback.
  EXPECT_GE(failed_over, 5u);
}

// ------------------------------------------------------ circuit breaker ----

TEST(Breaker, OpensAfterConsecutiveFailuresAndRefusesWork) {
  Scheduler scheduler({.breaker = {.failure_threshold = 3, .cooldown = 10min}});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  std::atomic<int> calls{0};
  for (int i = 0; i < 3; ++i)
    scheduler
        .submit(cpu_job("fail-" + std::to_string(i),
                        [&] {
                          ++calls;
                          return bad_result();
                        }))
        .wait();
  auto health = scheduler.health(AcceleratorKind::kClassicalCpu);
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].state, BreakerState::kOpen);
  EXPECT_EQ(health[0].times_opened, 1u);
  EXPECT_GE(health[0].consecutive_failures, 3u);

  // The next job is refused without executing.
  const auto r = scheduler
                     .submit(cpu_job("refused",
                                     [&] {
                                       ++calls;
                                       return ok_result();
                                     }))
                     .get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(calls.load(), 3);
  ASSERT_FALSE(r.fault_log.empty());
  EXPECT_NE(r.fault_log[0].find("breaker open"), std::string::npos);
}

TEST(Breaker, HalfOpenProbeSuccessClosesTheCircuit) {
  Scheduler scheduler({.breaker = {.failure_threshold = 2, .cooldown = 20ms}});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  for (int i = 0; i < 2; ++i)
    scheduler.submit(cpu_job("fail", [] { return bad_result(); })).wait();
  EXPECT_EQ(scheduler.health(AcceleratorKind::kClassicalCpu)[0].state,
            BreakerState::kOpen);
  std::this_thread::sleep_for(30ms);
  // Cooldown elapsed: the snapshot reports half-open, and the next attempt
  // is the probe.
  EXPECT_EQ(scheduler.health(AcceleratorKind::kClassicalCpu)[0].state,
            BreakerState::kHalfOpen);
  const auto r =
      scheduler.submit(cpu_job("probe", [] { return ok_result(); })).get();
  EXPECT_TRUE(r.ok);
  const auto health = scheduler.health(AcceleratorKind::kClassicalCpu);
  EXPECT_EQ(health[0].state, BreakerState::kClosed);
  EXPECT_EQ(health[0].consecutive_failures, 0u);
}

TEST(Breaker, FailedProbeReopensForAnotherCooldown) {
  Scheduler scheduler({.breaker = {.failure_threshold = 2, .cooldown = 20ms}});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  for (int i = 0; i < 2; ++i)
    scheduler.submit(cpu_job("fail", [] { return bad_result(); })).wait();
  std::this_thread::sleep_for(30ms);
  scheduler.submit(cpu_job("bad-probe", [] { return bad_result(); })).wait();
  const auto health = scheduler.health(AcceleratorKind::kClassicalCpu);
  EXPECT_EQ(health[0].state, BreakerState::kOpen);
  EXPECT_EQ(health[0].times_opened, 2u);
}

TEST(Breaker, OpenBreakerFailsJobsOverToTheCpuPool) {
  Scheduler scheduler({.breaker = {.failure_threshold = 1, .cooldown = 10min}});
  scheduler.add_pool(AcceleratorKind::kMemcomputing, 1,
                     memcomputing::MemcomputingAccelerator::factory());
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  // Device-dependent payload: fails on the memcomputing replica, succeeds on
  // the CPU — the shape of work that is *worth* failing over.
  const auto device_payload = [](core::Accelerator& acc) {
    return acc.kind() == AcceleratorKind::kMemcomputing ? bad_result("device")
                                                        : ok_result("on cpu");
  };
  // Trip the memcomputing breaker (no fallback on this one).
  scheduler
      .submit("trip", AcceleratorKind::kMemcomputing, device_payload)
      .wait();
  ASSERT_EQ(scheduler.health(AcceleratorKind::kMemcomputing)[0].state,
            BreakerState::kOpen);

  JobOptions opts;
  opts.retry.cpu_fallback = true;
  const auto r = scheduler
                     .submit("rescued", AcceleratorKind::kMemcomputing,
                             device_payload, opts)
                     .get();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.summary, "on cpu");
  EXPECT_TRUE(r.degraded);
  ASSERT_FALSE(r.fault_log.empty());
  EXPECT_NE(r.fault_log[0].find("failing over"), std::string::npos);
}

TEST(Breaker, WithoutOptInThereIsNoFailover) {
  Scheduler scheduler({.breaker = {.failure_threshold = 1, .cooldown = 10min}});
  scheduler.add_pool(AcceleratorKind::kMemcomputing, 1,
                     memcomputing::MemcomputingAccelerator::factory());
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  scheduler
      .submit(core::Job{"trip", AcceleratorKind::kMemcomputing,
                        [] { return bad_result(); }})
      .wait();
  std::atomic<bool> ran{false};
  const auto r = scheduler
                     .submit(core::Job{"stuck", AcceleratorKind::kMemcomputing,
                                       [&] {
                                         ran = true;
                                         return ok_result();
                                       }})
                     .get();
  EXPECT_FALSE(r.ok);  // refused by the open breaker, no hop without opt-in
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(scheduler.stats(AcceleratorKind::kClassicalCpu).jobs_completed,
            0u);
}

TEST(Health, SnapshotCoversEveryReplica) {
  Scheduler scheduler({.breaker = {.failure_threshold = 5}});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 3,
                     core::CpuAccelerator::factory());
  const auto health = scheduler.health(AcceleratorKind::kClassicalCpu);
  ASSERT_EQ(health.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(health[i].replica, i);
    EXPECT_EQ(health[i].state, BreakerState::kClosed);
    EXPECT_EQ(health[i].total_failures, 0u);
  }
  EXPECT_THROW(scheduler.health(AcceleratorKind::kQuantum), std::out_of_range);
}

// ------------------------------------------------- lifecycle under fire ----

TEST(Lifecycle, DrainIsExactAcrossFailoverHops) {
  Scheduler scheduler;
  scheduler.add_pool(
      AcceleratorKind::kMemcomputing, 2,
      FaultyAccelerator::wrap(
          memcomputing::MemcomputingAccelerator::factory(),
          transient_plan(AcceleratorKind::kMemcomputing, 11, 0.6)));
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 2,
                     core::CpuAccelerator::factory());
  JobOptions opts = retrying(2);
  opts.retry.cpu_fallback = true;
  std::vector<std::future<core::JobResult>> futures;
  for (int i = 0; i < 40; ++i)
    futures.push_back(scheduler.submit(
        core::Job{"hop-" + std::to_string(i), AcceleratorKind::kMemcomputing,
                  [] { return ok_result(); }},
        opts));
  scheduler.drain();
  // drain() returned: every future must already be ready, even for jobs that
  // migrated between pools mid-flight.
  for (auto& f : futures) EXPECT_TRUE(ready(f));
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
}

TEST(Lifecycle, ShutdownUnderActiveFaultsCompletesEveryFuture) {
  std::vector<std::future<core::JobResult>> futures;
  {
    Scheduler scheduler({.queue_capacity = 128});
    scheduler.add_pool(
        AcceleratorKind::kClassicalCpu, 2,
        FaultyAccelerator::wrap(
            core::CpuAccelerator::factory(),
            transient_plan(AcceleratorKind::kClassicalCpu, 13, 0.5)));
    for (int i = 0; i < 50; ++i)
      futures.push_back(scheduler.submit(
          cpu_job("storm-" + std::to_string(i), [] { return ok_result(); }),
          retrying(4)));
    scheduler.shutdown();  // races the storm on purpose
  }
  for (auto& f : futures) {
    ASSERT_TRUE(ready(f));
    const auto r = f.get();  // ok, retried-ok, or flushed — never abandoned
    if (!r.ok)
      EXPECT_FALSE(r.summary.empty());
  }
}

TEST(Lifecycle, DestructorUnderStormNeverAbandonsFutures) {
  std::vector<std::future<core::JobResult>> futures;
  {
    Scheduler scheduler({.queue_capacity = 64,
                         .breaker = {.failure_threshold = 2, .cooldown = 1ms}});
    scheduler.add_pool(
        AcceleratorKind::kClassicalCpu, 3,
        FaultyAccelerator::wrap(
            core::CpuAccelerator::factory(),
            transient_plan(AcceleratorKind::kClassicalCpu, 17, 0.4)));
    for (int i = 0; i < 30; ++i)
      futures.push_back(scheduler.submit(
          cpu_job("doomed-" + std::to_string(i), [] { return ok_result(); }),
          retrying(3)));
    // No drain, no shutdown: the destructor handles the live storm.
  }
  for (auto& f : futures) EXPECT_TRUE(ready(f));
}

// ------------------------------------------------------------ telemetry ----

TEST(ResilienceTelemetry, CountersAreWired) {
  telemetry::Telemetry::set_enabled(true);
  telemetry::Telemetry::instance().reset();
  {
    // transient_probability = 1.0: every attempt faults, so one job with
    // max_attempts = 2 yields exactly 2 attempts, 2 injected faults, 1 retry,
    // 1 breaker-open (threshold 2), and 1 failed job.
    Scheduler scheduler({.breaker = {.failure_threshold = 2, .cooldown = 10min}});
    scheduler.add_pool(
        AcceleratorKind::kClassicalCpu, 1,
        FaultyAccelerator::wrap(
            core::CpuAccelerator::factory(),
            transient_plan(AcceleratorKind::kClassicalCpu, 21, 1.0)));
    scheduler
        .submit(cpu_job("always-faults", [] { return ok_result(); }),
                retrying(2))
        .wait();
  }
  const auto& metrics = telemetry::Telemetry::instance().metrics();
  EXPECT_DOUBLE_EQ(metrics.counter("sched.attempts"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sched.faults_injected"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sched.retries"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sched.breaker_open"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sched.jobs_failed"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sched.jobs"), 1.0);
  telemetry::Telemetry::instance().reset();
  telemetry::Telemetry::set_enabled(false);
}

TEST(ResilienceTelemetry, FailoverAndDegradedAreCounted) {
  telemetry::Telemetry::set_enabled(true);
  telemetry::Telemetry::instance().reset();
  {
    Scheduler scheduler(
        {.breaker = {.failure_threshold = 1, .cooldown = 10min}});
    scheduler.add_pool(AcceleratorKind::kMemcomputing, 1,
                       memcomputing::MemcomputingAccelerator::factory());
    scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                       core::CpuAccelerator::factory());
    scheduler
        .submit(core::Job{"trip", AcceleratorKind::kMemcomputing,
                          [] { return bad_result(); }})
        .wait();
    JobOptions opts;
    opts.retry.cpu_fallback = true;
    scheduler
        .submit(core::Job{"rescued", AcceleratorKind::kMemcomputing,
                          [] { return ok_result(); }},
                opts)
        .wait();
  }
  const auto& metrics = telemetry::Telemetry::instance().metrics();
  EXPECT_DOUBLE_EQ(metrics.counter("sched.failover"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sched.degraded"), 1.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sched.jobs.classical-cpu"), 1.0);
  telemetry::Telemetry::instance().reset();
  telemetry::Telemetry::set_enabled(false);
}

// ------------------------------------------- mid-slice preemption chaos ----

// The scheduler-level leg of the DESIGN.md §12 guarantee (the process-death
// leg is scripts/chaos_kill_resume.sh): a checkpointed DMM solve that is
// preempted many times by a seeded storm of higher-priority jobs must
// produce a bit-identical trajectory to the uninterrupted solver. The storm
// cadence derives from the CI chaos seed, so every matrix entry preempts at
// different checkpoints.
TEST(Chaos, PreemptedSlicedSolveIsBitIdenticalToUninterrupted) {
  // A 60-variable planted instance: thousands of integration steps, so the
  // 8-step slices give the storm thousands of preemption points.
  core::Rng gen(4242);
  const auto inst =
      memcomputing::planted_ksat(gen, 60, 255, 3);
  memcomputing::DmmOptions dopts;
  dopts.max_steps = 200'000;
  dopts.energy_stride = 8;
  const memcomputing::DmmSolver solver(inst.cnf, dopts);

  const std::uint64_t seed = 0x51CEull + chaos_seed();
  core::Rng v0_rng = core::Rng::stream(seed, 0);
  std::vector<core::Real> v0(60);
  for (auto& v : v0) v = v0_rng.uniform(-1.0, 1.0);

  core::Rng direct_rng = core::Rng::stream(seed, 1);
  const memcomputing::DmmResult direct = solver.solve_from(v0, direct_rng);

  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());

  struct SolveState {
    core::Checkpoint ckpt;
    core::Workspace ws;
  };
  const auto state = std::make_shared<SolveState>();
  state->ckpt = solver.begin(v0, core::Rng::stream(seed, 1));

  // The payload parks at EVERY checkpoint (8 accepted steps), so the whole
  // trajectory transits the yield/re-enqueue/resume machinery hundreds of
  // times while the storm's higher-priority jobs jump the queue between
  // slices — the densest interleaving the scheduler can produce.
  auto sliced = scheduler.submit_preemptible(
      "chaos-sliced-solve", AcceleratorKind::kClassicalCpu,
      [&solver, state](core::Accelerator&, const YieldProbe&)
          -> std::optional<core::JobResult> {
        const memcomputing::DmmSliceOutcome out =
            solver.advance(state->ckpt, core::SliceBudget::steps(8),
                           state->ws);
        if (!out.done) return std::nullopt;
        core::JobResult r;
        r.ok = true;  // fingerprints are compared below either way
        return r;
      });

  // The storm: seeded bursts of higher-priority jobs racing the slices.
  core::Rng storm(seed ^ 0xBADCAB1Eull);
  std::vector<std::future<core::JobResult>> bursts;
  while (sliced.wait_for(0s) != std::future_status::ready) {
    const int burst = 1 + static_cast<int>(storm() % 3);
    for (int i = 0; i < burst; ++i) {
      JobOptions opts;
      opts.priority = 5;
      bursts.push_back(scheduler.submit(
          cpu_job("storm-high", [] { return ok_result(); }), opts));
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(200 + storm() % 800));
  }
  for (auto& f : bursts) EXPECT_TRUE(f.get().ok);
  EXPECT_TRUE(sliced.get().ok);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.preempts, 1u);
  EXPECT_EQ(stats.preempts, stats.resumes);

  // Whatever the preemption pattern was, the trajectory is the direct one.
  const memcomputing::DmmResult got =
      solver.result_from_checkpoint(state->ckpt);
  EXPECT_EQ(got.satisfied, direct.satisfied);
  EXPECT_EQ(got.steps, direct.steps);
  EXPECT_EQ(got.sim_time, direct.sim_time);
  EXPECT_EQ(got.steps_to_best, direct.steps_to_best);
  EXPECT_EQ(got.assignment, direct.assignment);
  EXPECT_EQ(got.max_abs_voltage, direct.max_abs_voltage);
  EXPECT_EQ(got.energy_trace, direct.energy_trace);
}

}  // namespace
}  // namespace rebooting::sched
