// JobOptions::memo_key — the scheduler's memoization decorator (DESIGN.md
// §14): cached-result replay, single-flight collapse of identical in-flight
// submits, per-rider cancel/deadline honoring at delivery, and the
// never-cache-a-failure rule under a seeded fault storm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "core/cache.h"
#include "core/faults.h"
#include "scheduler/scheduler.h"

namespace rebooting::sched {
namespace {

using core::AcceleratorKind;
using core::JobResult;

/// Restores the ambient cache toggle on exit.
struct ScopedCacheEnabled {
  bool previous = core::cache_enabled();
  explicit ScopedCacheEnabled(bool on) { core::set_cache_enabled(on); }
  ~ScopedCacheEnabled() { core::set_cache_enabled(previous); }
};

/// A payload gate: jobs block inside the worker until release() — the window
/// in which rider submits must collapse onto the in-flight leader.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

void add_cpu_pool(Scheduler& scheduler, std::size_t workers = 1) {
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, workers,
                     core::CpuAccelerator::factory());
}

JobOptions memo(const std::string& key) {
  JobOptions opts;
  opts.memo_key = key;
  return opts;
}

DevicePayload counting_payload(std::atomic<int>& executions,
                               const std::string& summary = "ran") {
  return [&executions, summary](core::Accelerator&) {
    executions.fetch_add(1, std::memory_order_relaxed);
    JobResult r;
    r.ok = true;
    r.summary = summary;
    r.metrics["memo.test"] = 7.5;
    return r;
  };
}

// ------------------------------------------------------------ single-flight

TEST(Memoize, ConcurrentIdenticalSubmitsExecuteOnce) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler, 2);
  Gate gate;
  std::atomic<int> executions{0};
  const DevicePayload payload = [&](core::Accelerator&) {
    executions.fetch_add(1, std::memory_order_relaxed);
    gate.wait();
    JobResult r;
    r.ok = true;
    r.summary = "single flight";
    return r;
  };

  constexpr int kSubmits = 8;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kSubmits; ++i)
    futures.push_back(scheduler.submit(
        "flight", AcceleratorKind::kClassicalCpu, payload, memo("k1")));
  // Give the leader time to start executing; riders collapse meanwhile.
  while (executions.load() == 0) std::this_thread::yield();
  gate.release();

  for (auto& f : futures) {
    const JobResult r = f.get();
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.summary, "single flight");
  }
  EXPECT_EQ(executions.load(), 1);
  const SchedulerStats stats = scheduler.stats();
  // Everyone except the leader either rode the flight or replayed the cache.
  EXPECT_EQ(stats.memo_riders + stats.memo_hits,
            static_cast<std::uint64_t>(kSubmits - 1));
  EXPECT_GE(stats.memo_riders, 1u);
}

TEST(Memoize, CompletedResultReplaysWithoutExecuting) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler);
  std::atomic<int> executions{0};
  const JobResult first =
      scheduler
          .submit("original", AcceleratorKind::kClassicalCpu,
                  counting_payload(executions), memo("k2"))
          .get();
  ASSERT_TRUE(first.ok);
  ASSERT_EQ(executions.load(), 1);

  auto replay_future = scheduler.submit(
      "replayed", AcceleratorKind::kClassicalCpu,
      counting_payload(executions), memo("k2"));
  // A cache hit completes without touching a worker: ready immediately.
  ASSERT_EQ(replay_future.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  const JobResult replay = replay_future.get();
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(scheduler.stats().memo_hits, 1u);

  // Faithful replay: the stored JobResult, field for field.
  EXPECT_TRUE(replay.ok);
  EXPECT_EQ(replay.summary, first.summary);
  EXPECT_EQ(replay.attempts, first.attempts);
  EXPECT_EQ(replay.disposition, core::JobDisposition::kExecuted);
  ASSERT_EQ(replay.metrics.count("memo.test"), 1u);
  EXPECT_EQ(replay.metrics.at("memo.test"), 7.5);
}

TEST(Memoize, DistinctKeysDoNotCollapse) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler, 2);
  std::atomic<int> executions{0};
  auto f1 = scheduler.submit("a", AcceleratorKind::kClassicalCpu,
                             counting_payload(executions), memo("key-a"));
  auto f2 = scheduler.submit("b", AcceleratorKind::kClassicalCpu,
                             counting_payload(executions), memo("key-b"));
  EXPECT_TRUE(f1.get().ok);
  EXPECT_TRUE(f2.get().ok);
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(scheduler.stats().memo_hits, 0u);
  EXPECT_EQ(scheduler.stats().memo_riders, 0u);
}

TEST(Memoize, EmptyKeyMeansNoMemoization) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler);
  std::atomic<int> executions{0};
  for (int i = 0; i < 2; ++i)
    EXPECT_TRUE(scheduler
                    .submit("plain", AcceleratorKind::kClassicalCpu,
                            counting_payload(executions), JobOptions{})
                    .get()
                    .ok);
  EXPECT_EQ(executions.load(), 2);
}

TEST(Memoize, DisabledCacheIsInert) {
  ScopedCacheEnabled off(false);
  Scheduler scheduler;
  add_cpu_pool(scheduler);
  std::atomic<int> executions{0};
  for (int i = 0; i < 2; ++i)
    EXPECT_TRUE(scheduler
                    .submit("uncached", AcceleratorKind::kClassicalCpu,
                            counting_payload(executions), memo("k3"))
                    .get()
                    .ok);
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(scheduler.stats().memo_hits, 0u);
}

// ------------------------------------------------------- outcome fan-out ---

TEST(Memoize, LeaderExceptionFansOutToRiders) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler, 2);
  Gate gate;
  std::atomic<int> executions{0};
  const DevicePayload throwing = [&](core::Accelerator&) -> JobResult {
    executions.fetch_add(1, std::memory_order_relaxed);
    gate.wait();
    throw std::runtime_error("leader exploded");
  };

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(scheduler.submit(
        "thrower", AcceleratorKind::kClassicalCpu, throwing, memo("k4")));
  while (executions.load() == 0) std::this_thread::yield();
  gate.release();

  for (auto& f : futures)
    EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_EQ(executions.load(), 1);

  // An exception is not a result: nothing was cached, the next submit runs.
  std::atomic<int> fresh{0};
  EXPECT_TRUE(scheduler
                  .submit("after", AcceleratorKind::kClassicalCpu,
                          counting_payload(fresh), memo("k4"))
                  .get()
                  .ok);
  EXPECT_EQ(fresh.load(), 1);
}

TEST(Memoize, RiderCancelHonoredAtDelivery) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler, 2);
  Gate gate;
  std::atomic<int> executions{0};
  const DevicePayload payload = [&](core::Accelerator&) {
    executions.fetch_add(1, std::memory_order_relaxed);
    gate.wait();
    JobResult r;
    r.ok = true;
    return r;
  };

  auto leader = scheduler.submit("leader", AcceleratorKind::kClassicalCpu,
                                 payload, memo("k5"));
  while (executions.load() == 0) std::this_thread::yield();
  JobOptions rider_opts = memo("k5");
  CancelToken token;
  rider_opts.cancel = token;
  auto rider = scheduler.submit("rider", AcceleratorKind::kClassicalCpu,
                                payload, rider_opts);
  token.cancel();  // cancelled while parked on the flight
  gate.release();

  EXPECT_TRUE(leader.get().ok);
  const JobResult r = rider.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.disposition, core::JobDisposition::kCancelled);
  EXPECT_EQ(executions.load(), 1);
}

TEST(Memoize, RiderDeadlineHonoredAtDelivery) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler, 2);
  Gate gate;
  std::atomic<int> executions{0};
  const DevicePayload payload = [&](core::Accelerator&) {
    executions.fetch_add(1, std::memory_order_relaxed);
    gate.wait();
    JobResult r;
    r.ok = true;
    return r;
  };

  auto leader = scheduler.submit("leader", AcceleratorKind::kClassicalCpu,
                                 payload, memo("k6"));
  while (executions.load() == 0) std::this_thread::yield();
  JobOptions rider_opts = memo("k6");
  rider_opts.deadline = deadline_in(std::chrono::milliseconds(20));
  auto rider = scheduler.submit("rider", AcceleratorKind::kClassicalCpu,
                                payload, rider_opts);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate.release();  // the leader settles after the rider's deadline passed

  EXPECT_TRUE(leader.get().ok);
  const JobResult r = rider.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.disposition, core::JobDisposition::kDeadlineMissed);
  EXPECT_EQ(executions.load(), 1);
}

TEST(Memoize, CancelledSubmitNeverReplaysAHit) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler);
  std::atomic<int> executions{0};
  ASSERT_TRUE(scheduler
                  .submit("warm", AcceleratorKind::kClassicalCpu,
                          counting_payload(executions), memo("k7"))
                  .get()
                  .ok);
  JobOptions opts = memo("k7");
  CancelToken token;
  opts.cancel = token;
  token.cancel();
  const JobResult r = scheduler
                          .submit("cancelled", AcceleratorKind::kClassicalCpu,
                                  counting_payload(executions), opts)
                          .get();
  // Even with the answer in cache, a cancelled request is cancelled.
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.disposition, core::JobDisposition::kCancelled);
  EXPECT_EQ(executions.load(), 1);
}

// --------------------------------------------------------- failure rules ---

TEST(Memoize, OkFalseResultIsNeverCached) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler);
  std::atomic<int> executions{0};
  const DevicePayload failing = [&](core::Accelerator&) {
    executions.fetch_add(1, std::memory_order_relaxed);
    JobResult r;
    r.summary = "workload reported failure";
    return r;  // ok = false
  };
  for (int i = 0; i < 3; ++i) {
    const JobResult r = scheduler
                            .submit("failing", AcceleratorKind::kClassicalCpu,
                                    failing, memo("k8"))
                            .get();
    EXPECT_FALSE(r.ok);
  }
  EXPECT_EQ(executions.load(), 3);  // every submit ran; no failure replayed
  EXPECT_EQ(scheduler.stats().memo_hits, 0u);
}

TEST(Memoize, SeededFaultStormNeverCachesAFailure) {
  // Every attempt faults (p = 1): jobs exhaust their retry budget and fail.
  // No failed result may ever be served from the memo cache — each submit
  // must consume its own attempts.
  ScopedCacheEnabled on(true);
  core::FaultPlan plan;
  plan.seed = 1234;
  plan.kinds[AcceleratorKind::kClassicalCpu].transient_probability = 1.0;
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::FaultyAccelerator::wrap(
                         core::CpuAccelerator::factory(),
                         std::make_shared<const core::FaultPlan>(plan)));
  std::atomic<int> executions{0};
  JobOptions opts = memo("k9");
  opts.retry.max_attempts = 2;
  opts.retry.initial_backoff = std::chrono::microseconds(100);
  for (int i = 0; i < 3; ++i) {
    const JobResult r = scheduler
                            .submit("stormy", AcceleratorKind::kClassicalCpu,
                                    counting_payload(executions), opts)
                            .get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.attempts, 2u) << "replayed instead of executed";
    EXPECT_FALSE(r.fault_log.empty());
  }
  EXPECT_EQ(scheduler.stats().memo_hits, 0u);
}

// ------------------------------------------------------------- shutdown ----

TEST(Memoize, ShutdownSettlesQueuedLeaderAndRiders) {
  ScopedCacheEnabled on(true);
  Scheduler scheduler;
  add_cpu_pool(scheduler, 1);
  Gate gate;
  std::atomic<int> started{0};
  // Occupy the only worker so the memoized leader stays queued.
  auto blocker = scheduler.submit(
      "blocker", AcceleratorKind::kClassicalCpu,
      [&](core::Accelerator&) {
        started.fetch_add(1, std::memory_order_relaxed);
        gate.wait();
        JobResult r;
        r.ok = true;
        return r;
      },
      JobOptions{});
  while (started.load() == 0) std::this_thread::yield();

  std::atomic<int> executions{0};
  auto leader = scheduler.submit("queued-leader",
                                 AcceleratorKind::kClassicalCpu,
                                 counting_payload(executions), memo("k10"));
  auto rider = scheduler.submit("queued-rider",
                                AcceleratorKind::kClassicalCpu,
                                counting_payload(executions), memo("k10"));
  gate.release();
  scheduler.shutdown();

  // Both futures are ready — the flushed leader settled its riders too —
  // and a flush is not a result: nothing got cached.
  EXPECT_TRUE(blocker.get().ok);
  const JobResult lr = leader.get();
  const JobResult rr = rider.get();
  // The leader either ran before shutdown closed the queue or was flushed;
  // either way the rider's outcome mirrors it.
  EXPECT_EQ(lr.ok, rr.ok);
  if (!lr.ok) {
    EXPECT_EQ(lr.disposition, core::JobDisposition::kFlushed);
    EXPECT_EQ(rr.disposition, core::JobDisposition::kFlushed);
  }
}

}  // namespace
}  // namespace rebooting::sched
