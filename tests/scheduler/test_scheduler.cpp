// Scheduler test suite: queue ordering (FIFO within a priority class,
// priority over queue order), the three backpressure policies, deadline
// expiry, cooperative cancellation, drain-vs-shutdown semantics, telemetry
// wiring, and a multi-producer stress test. The whole binary is expected to
// pass under REBOOTING_SANITIZE=thread (the CI TSan job runs exactly this
// suite).
#include "scheduler/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <mutex>
#include <thread>
#include <vector>

#include "oscillator/comparator.h"
#include "scheduler/queue.h"
#include "telemetry/telemetry.h"

namespace rebooting::sched {
namespace {

using namespace std::chrono_literals;
using core::AcceleratorKind;

core::JobResult ok_result(std::string summary = "ok") {
  core::JobResult r;
  r.ok = true;
  r.summary = std::move(summary);
  return r;
}

core::Job cpu_job(std::string name, std::function<core::JobResult()> fn) {
  return core::Job{std::move(name), AcceleratorKind::kClassicalCpu,
                   std::move(fn)};
}

bool ready(const std::future<core::JobResult>& f) {
  return f.wait_for(0s) == std::future_status::ready;
}

JobOptions with_priority(int p) {
  JobOptions opts;
  opts.priority = p;
  return opts;
}

JobOptions with_deadline(Clock::time_point d) {
  JobOptions opts;
  opts.deadline = d;
  return opts;
}

JobOptions with_cancel(CancelToken token) {
  JobOptions opts;
  opts.cancel = std::move(token);
  return opts;
}

/// A scheduler with one single-worker CPU pool whose first job parks on the
/// gate; `entered` confirms the worker picked it up, so everything submitted
/// afterwards is guaranteed to still be queued. The latches are declared
/// before (and the destructor opens the gate ahead of) the scheduler, so an
/// early test exit still tears down cleanly: gate opens, workers join, and
/// only then do the latches die.
class BlockedPool {
 public:
  explicit BlockedPool(SchedulerConfig config) : scheduler(config) {
    scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                       core::CpuAccelerator::factory());
    blocker = scheduler.submit(cpu_job("blocker", [this] {
      entered.count_down();
      gate_.wait();
      return ok_result("unblocked");
    }));
    entered.wait();
  }

  ~BlockedPool() { open_gate(); }

  void open_gate() {
    if (!opened_.exchange(true)) gate_.count_down();
  }

 private:
  std::latch gate_{1};
  std::atomic<bool> opened_{false};

 public:
  std::latch entered{1};
  Scheduler scheduler;
  std::future<core::JobResult> blocker;
};

TEST(SchedulerOrdering, FifoWithinPriorityClass) {
  BlockedPool pool({.queue_capacity = 16});
  std::mutex mutex;
  std::vector<std::string> order;
  std::vector<std::future<core::JobResult>> futures;
  for (const char* name : {"a", "b", "c"})
    futures.push_back(pool.scheduler.submit(cpu_job(name, [&, name] {
      std::lock_guard lock(mutex);
      order.push_back(name);
      return ok_result();
    })));
  pool.open_gate();
  pool.scheduler.drain();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SchedulerOrdering, PriorityOverridesSubmissionOrder) {
  BlockedPool pool({.queue_capacity = 16});
  std::mutex mutex;
  std::vector<std::string> order;
  auto track = [&](const char* name) {
    return cpu_job(name, [&, name] {
      std::lock_guard lock(mutex);
      order.push_back(name);
      return ok_result();
    });
  };
  auto low = pool.scheduler.submit(track("low"), with_priority(0));
  auto mid = pool.scheduler.submit(track("mid"), with_priority(3));
  auto high = pool.scheduler.submit(track("high"), with_priority(7));
  pool.open_gate();
  pool.scheduler.drain();
  EXPECT_EQ(order, (std::vector<std::string>{"high", "mid", "low"}));
  EXPECT_TRUE(low.get().ok && mid.get().ok && high.get().ok);
}

TEST(SchedulerBackpressure, RejectCompletesNewcomerWithoutRunningIt) {
  BlockedPool pool({.queue_capacity = 1,
                    .backpressure = BackpressurePolicy::kReject});
  auto queued = pool.scheduler.submit(cpu_job("queued", [] {
    return ok_result();
  }));
  std::atomic<bool> ran{false};
  auto rejected = pool.scheduler.submit(cpu_job("rejected", [&] {
    ran = true;
    return ok_result();
  }));
  ASSERT_TRUE(ready(rejected));  // completed synchronously, never queued
  const auto result = rejected.get();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.summary.find("rejected"), std::string::npos);
  pool.open_gate();
  pool.scheduler.drain();
  EXPECT_TRUE(queued.get().ok);
  EXPECT_FALSE(ran.load());
}

TEST(SchedulerBackpressure, ShedOldestEvictsLongestWaitingJob) {
  BlockedPool pool({.queue_capacity = 2,
                    .backpressure = BackpressurePolicy::kShedOldest});
  auto j1 = pool.scheduler.submit(cpu_job("j1", [] { return ok_result(); }));
  auto j2 = pool.scheduler.submit(cpu_job("j2", [] { return ok_result(); }));
  auto j3 = pool.scheduler.submit(cpu_job("j3", [] { return ok_result(); }));
  ASSERT_TRUE(ready(j1));  // j1 was the oldest queued entry
  const auto shed = j1.get();
  EXPECT_FALSE(shed.ok);
  EXPECT_NE(shed.summary.find("shed"), std::string::npos);
  pool.open_gate();
  pool.scheduler.drain();
  EXPECT_TRUE(j2.get().ok);
  EXPECT_TRUE(j3.get().ok);
}

TEST(SchedulerBackpressure, BlockWaitsForRoomAndRunsEverything) {
  BlockedPool pool({.queue_capacity = 1,
                    .backpressure = BackpressurePolicy::kBlock});
  std::vector<std::future<core::JobResult>> futures;
  std::thread producer([&] {
    for (int i = 0; i < 3; ++i)  // second submit blocks until the gate opens
      futures.push_back(pool.scheduler.submit(
          cpu_job("p" + std::to_string(i), [] { return ok_result(); })));
  });
  std::this_thread::sleep_for(10ms);
  pool.open_gate();
  producer.join();
  pool.scheduler.drain();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  EXPECT_TRUE(pool.blocker.get().ok);
}

TEST(SchedulerDeadline, ExpiredJobCompletesWithoutExecuting) {
  BlockedPool pool({.queue_capacity = 16});
  std::atomic<bool> ran{false};
  auto doomed = pool.scheduler.submit(cpu_job("doomed",
                                              [&] {
                                                ran = true;
                                                return ok_result();
                                              }),
                                      with_deadline(deadline_in(1ms)));
  std::this_thread::sleep_for(20ms);  // let the deadline lapse while queued
  pool.open_gate();
  pool.scheduler.drain();
  const auto result = doomed.get();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.summary.find("deadline"), std::string::npos);
  EXPECT_FALSE(ran.load());
}

TEST(SchedulerCancel, CancelledWhileQueuedNeverRuns) {
  BlockedPool pool({.queue_capacity = 16});
  std::atomic<bool> ran{false};
  CancelToken token;
  auto cancelled = pool.scheduler.submit(cpu_job("cancelled",
                                                 [&] {
                                                   ran = true;
                                                   return ok_result();
                                                 }),
                                         with_cancel(token));
  token.cancel();
  pool.open_gate();
  pool.scheduler.drain();
  const auto result = cancelled.get();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.summary.find("cancelled"), std::string::npos);
  EXPECT_FALSE(ran.load());
}

TEST(SchedulerCancel, PayloadCanPollTokenMidExecution) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  CancelToken token;
  std::latch running{1};
  auto f = scheduler.submit(cpu_job("cooperative", [&] {
    running.count_down();
    while (!token.cancelled()) std::this_thread::sleep_for(1ms);
    core::JobResult r;
    r.ok = false;
    r.summary = "stopped cooperatively";
    return r;
  }));
  running.wait();
  token.cancel();
  const auto result = f.get();
  EXPECT_EQ(result.summary, "stopped cooperatively");
}

TEST(SchedulerLifecycle, DrainIsABarrierNotAShutdown) {
  Scheduler scheduler({.queue_capacity = 64});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 2,
                     core::CpuAccelerator::factory());
  std::vector<std::future<core::JobResult>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(scheduler.submit(cpu_job("j" + std::to_string(i), [] {
      std::this_thread::sleep_for(2ms);
      return ok_result();
    })));
  scheduler.drain();
  for (auto& f : futures) {
    ASSERT_TRUE(ready(f));  // drain returned only once everything finished
    EXPECT_TRUE(f.get().ok);
  }
  // Still accepting afterwards.
  auto after = scheduler.submit(cpu_job("after", [] { return ok_result(); }));
  scheduler.drain();
  EXPECT_TRUE(after.get().ok);
  EXPECT_EQ(scheduler.stats(AcceleratorKind::kClassicalCpu).jobs_completed,
            9u);
}

TEST(SchedulerLifecycle, ShutdownFinishesInFlightAndFlushesQueued) {
  BlockedPool pool({.queue_capacity = 16});
  auto q1 = pool.scheduler.submit(cpu_job("q1", [] { return ok_result(); }));
  auto q2 = pool.scheduler.submit(cpu_job("q2", [] { return ok_result(); }));
  auto q3 = pool.scheduler.submit(cpu_job("q3", [] { return ok_result(); }));
  std::thread closer([&] { pool.scheduler.shutdown(); });
  std::this_thread::sleep_for(10ms);  // shutdown is now waiting on the worker
  pool.open_gate();
  closer.join();
  EXPECT_TRUE(pool.blocker.get().ok);  // in-flight job finished normally
  for (auto* f : {&q1, &q2, &q3}) {
    ASSERT_TRUE(ready(*f));
    const auto result = f->get();
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.summary.find("flushed"), std::string::npos);
  }
  EXPECT_EQ(pool.scheduler.stats(AcceleratorKind::kClassicalCpu).jobs_completed,
            1u);
  EXPECT_FALSE(pool.scheduler.accepting());
  EXPECT_THROW(
      pool.scheduler.submit(cpu_job("late", [] { return ok_result(); })),
      std::runtime_error);
}

TEST(SchedulerLifecycle, DestructorCompletesOutstandingFutures) {
  std::future<core::JobResult> running, queued;
  {
    Scheduler scheduler;
    scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                       core::CpuAccelerator::factory());
    std::latch entered{1};
    running = scheduler.submit(cpu_job("running", [&entered] {
      entered.count_down();
      std::this_thread::sleep_for(5ms);
      return ok_result();
    }));
    queued = scheduler.submit(cpu_job("queued", [] { return ok_result(); }));
    entered.wait();
  }  // ~Scheduler: the in-flight job finishes, the queued one is flushed
  ASSERT_TRUE(ready(running));
  ASSERT_TRUE(ready(queued));
  EXPECT_TRUE(running.get().ok);
  EXPECT_FALSE(queued.get().ok);
}

TEST(SchedulerLifecycle, DestructorCompletesExpiredAndCancelledJobs) {
  // The nastier variant of DestructorCompletesOutstandingFutures: the queued
  // jobs hold an already-expired deadline AND an already-cancelled token when
  // the destructor flushes them. Whichever verdict wins, every future must
  // still complete — no promise may be abandoned.
  std::future<core::JobResult> running;
  std::vector<std::future<core::JobResult>> doomed;
  CancelToken token;
  {
    Scheduler scheduler;
    scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                       core::CpuAccelerator::factory());
    std::latch entered{1};
    running = scheduler.submit(cpu_job("running", [&entered] {
      entered.count_down();
      std::this_thread::sleep_for(10ms);
      return ok_result();
    }));
    entered.wait();  // everything below stays queued behind this job
    JobOptions opts;
    opts.deadline = Clock::now() - 1ms;  // expired before it was even queued
    opts.cancel = token;
    for (int i = 0; i < 4; ++i)
      doomed.push_back(scheduler.submit(
          cpu_job("doomed" + std::to_string(i), [] { return ok_result(); }),
          opts));
    token.cancel();
  }  // ~Scheduler races the worker against the flush of the doomed jobs
  ASSERT_TRUE(ready(running));
  EXPECT_TRUE(running.get().ok);
  for (auto& f : doomed) {
    ASSERT_TRUE(ready(f));
    const auto r = f.get();
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.summary.empty());
    EXPECT_EQ(r.attempts, 0u);  // none of them may ever have executed
  }
}

TEST(SchedulerBatch, FanOutReturnsFuturesInSubmissionOrder) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 2,
                     core::CpuAccelerator::factory());
  std::vector<core::Job> jobs;
  for (int i = 0; i < 10; ++i)
    jobs.push_back(cpu_job("batch" + std::to_string(i), [i] {
      auto r = ok_result("batch" + std::to_string(i));
      r.metrics["index"] = static_cast<core::Real>(i);
      return r;
    }));
  auto futures = scheduler.submit_batch(std::move(jobs));
  ASSERT_EQ(futures.size(), 10u);
  core::Real sum = 0.0;
  for (int i = 0; i < 10; ++i) {
    const auto result = futures[i].get();
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.summary, "batch" + std::to_string(i));
    sum += result.metrics.at("index");
  }
  EXPECT_DOUBLE_EQ(sum, 45.0);
}

TEST(SchedulerPools, DevicePayloadSeesDistinctReplicas) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 2,
                     core::CpuAccelerator::factory());
  std::latch both_running{2};
  std::mutex mutex;
  std::vector<const core::Accelerator*> seen;
  std::vector<std::future<core::JobResult>> futures;
  for (int i = 0; i < 2; ++i)
    futures.push_back(scheduler.submit(
        "replica" + std::to_string(i), AcceleratorKind::kClassicalCpu,
        [&](core::Accelerator& replica) {
          {
            std::lock_guard lock(mutex);
            seen.push_back(&replica);
          }
          both_running.arrive_and_wait();  // forces both workers concurrent
          return ok_result();
        }));
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_NE(seen[0], seen[1]);
}

TEST(SchedulerPools, ArgumentValidation) {
  Scheduler scheduler;
  EXPECT_THROW(scheduler.add_pool(AcceleratorKind::kClassicalCpu, 0,
                                  core::CpuAccelerator::factory()),
               std::invalid_argument);
  EXPECT_THROW(
      scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1, nullptr),
      std::invalid_argument);
  // Factory kind must match the pool kind.
  EXPECT_THROW(scheduler.add_pool(AcceleratorKind::kQuantum, 1,
                                  core::CpuAccelerator::factory()),
               std::invalid_argument);
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  EXPECT_THROW(scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                                  core::CpuAccelerator::factory()),
               std::invalid_argument);
  // No pool of the requested kind.
  EXPECT_THROW(scheduler.submit(core::Job{"nowhere",
                                          AcceleratorKind::kOscillator,
                                          [] { return core::JobResult{}; }}),
               std::out_of_range);
  // Null payload.
  EXPECT_THROW(
      scheduler.submit(core::Job{"empty", AcceleratorKind::kClassicalCpu, {}}),
      std::invalid_argument);
}

TEST(SchedulerPools, PayloadExceptionPropagatesThroughFuture) {
  Scheduler scheduler;
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  auto f = scheduler.submit(cpu_job(
      "thrower", []() -> core::JobResult { throw std::runtime_error("boom"); }));
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survived the exception and keeps serving.
  auto g = scheduler.submit(cpu_job("next", [] { return ok_result(); }));
  EXPECT_TRUE(g.get().ok);
}

TEST(SchedulerTelemetry, CountersGaugesAndHistogramsAreWired) {
  telemetry::Telemetry::set_enabled(true);
  telemetry::Telemetry::instance().reset();
  {
    BlockedPool pool({.queue_capacity = 16});
    auto late = pool.scheduler.submit(
        cpu_job("late", [] { return ok_result(); }),
        with_deadline(deadline_in(1ms)));
    std::this_thread::sleep_for(20ms);
    pool.open_gate();
    pool.scheduler.drain();
    for (int i = 0; i < 3; ++i)
      pool.scheduler
          .submit(cpu_job("t" + std::to_string(i), [] { return ok_result(); }))
          .wait();
    pool.scheduler.drain();
    late.wait();
  }
  const auto& metrics = telemetry::Telemetry::instance().metrics();
  EXPECT_DOUBLE_EQ(metrics.counter("sched.jobs"), 4.0);  // blocker + 3
  EXPECT_DOUBLE_EQ(metrics.counter("sched.jobs.classical-cpu"), 4.0);
  EXPECT_DOUBLE_EQ(metrics.counter("sched.deadline_missed"), 1.0);
  EXPECT_GT(metrics.counter("sched.busy_seconds.classical-cpu"), 0.0);
  EXPECT_EQ(metrics.histogram("sched.wait_seconds").count, 5u);
  EXPECT_EQ(metrics.histogram("sched.service_seconds").count, 4u);
  EXPECT_EQ(metrics.histogram("sched.latency_seconds").count, 5u);
  ASSERT_TRUE(metrics.gauge("sched.queue_depth.classical-cpu").has_value());
  telemetry::Telemetry::instance().reset();
  telemetry::Telemetry::set_enabled(false);
}

// The satellite-mandated stress test: >= 4 producer threads, >= 1000 jobs,
// through a small bounded queue with blocking backpressure and 4 workers.
// Run under REBOOTING_SANITIZE=thread this exercises every lock and atomic
// in the queue, the scheduler, and the Accelerator counters.
TEST(SchedulerStats, SnapshotCoversEveryPoolAndInFlightWork) {
  SchedulerConfig config;
  config.queue_capacity = 8;
  BlockedPool pool(config);  // one cpu worker, parked on the blocker

  auto queued = pool.scheduler.submit(cpu_job("queued", [] {
    return ok_result();
  }));

  SchedulerStats snap = pool.scheduler.stats();
  EXPECT_TRUE(snap.accepting);
  EXPECT_EQ(snap.submitted, 2u);    // blocker + queued
  EXPECT_EQ(snap.outstanding, 2u);  // neither has completed
  ASSERT_TRUE(snap.pools.contains(AcceleratorKind::kClassicalCpu));
  const PoolStats& cpu = snap.pools.at(AcceleratorKind::kClassicalCpu);
  EXPECT_EQ(cpu.workers, 1u);
  EXPECT_EQ(cpu.queue_capacity, 8u);
  EXPECT_EQ(cpu.queue_depth, 1u);  // "queued" waits behind the blocker
  EXPECT_EQ(cpu.in_flight, 1u);    // the blocker is mid-execution
  ASSERT_EQ(cpu.replicas.size(), 1u);
  EXPECT_EQ(cpu.replicas[0].state, BreakerState::kClosed);
  EXPECT_EQ(cpu.breakers_open, 0u);

  pool.open_gate();
  pool.scheduler.drain();
  snap = pool.scheduler.stats();
  EXPECT_EQ(snap.outstanding, 0u);
  // drain() returns at promise completion, a hair before the worker's
  // task_done(); poll until the in-flight count settles.
  for (int i = 0; i < 100 &&
                  snap.pools.at(AcceleratorKind::kClassicalCpu).in_flight != 0;
       ++i) {
    std::this_thread::sleep_for(1ms);
    snap = pool.scheduler.stats();
  }
  const PoolStats& idle = snap.pools.at(AcceleratorKind::kClassicalCpu);
  EXPECT_EQ(idle.queue_depth, 0u);
  EXPECT_EQ(idle.in_flight, 0u);
  EXPECT_EQ(idle.jobs_completed, 2u);
  EXPECT_TRUE(queued.get().ok);

  pool.scheduler.shutdown();
  EXPECT_FALSE(pool.scheduler.stats().accepting);
}

TEST(SchedulerStats, DispositionsAreTyped) {
  // kReject backpressure -> kRejected on the refused job; a flushed job ->
  // kFlushed; an executed job keeps kExecuted.
  SchedulerConfig config;
  config.queue_capacity = 1;
  config.backpressure = BackpressurePolicy::kReject;
  BlockedPool pool(config);

  auto queued = pool.scheduler.submit(cpu_job("queued", [] {
    return ok_result();
  }));
  auto rejected = pool.scheduler.submit(cpu_job("rejected", [] {
    return ok_result();
  }));
  auto r = rejected.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.disposition, core::JobDisposition::kRejected);

  std::thread closer([&] { pool.scheduler.shutdown(); });
  std::this_thread::sleep_for(10ms);  // shutdown is now waiting on the worker
  pool.open_gate();
  closer.join();  // "queued" was flushed, the blocker finished normally
  auto q = queued.get();
  EXPECT_FALSE(q.ok);
  EXPECT_EQ(q.disposition, core::JobDisposition::kFlushed);
  auto b = pool.blocker.get();
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(b.disposition, core::JobDisposition::kExecuted);
}

TEST(SchedulerStress, MultiProducerMultiWorker) {
  constexpr int kProducers = 4;
  constexpr int kJobsPerProducer = 250;
  Scheduler scheduler({.queue_capacity = 32,
                       .backpressure = BackpressurePolicy::kBlock});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 4,
                     core::CpuAccelerator::factory());
  std::atomic<int> executed{0};
  std::mutex futures_mutex;
  std::vector<std::future<core::JobResult>> futures;
  futures.reserve(kProducers * kJobsPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kJobsPerProducer; ++i) {
        auto f = scheduler.submit(
            cpu_job("p" + std::to_string(p) + "." + std::to_string(i),
                    [&executed] {
                      executed.fetch_add(1, std::memory_order_relaxed);
                      return ok_result();
                    }),
            with_priority(i % 3));
        std::lock_guard lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });
  for (auto& t : producers) t.join();
  scheduler.drain();
  EXPECT_EQ(executed.load(), kProducers * kJobsPerProducer);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
  const auto stats = scheduler.stats(AcceleratorKind::kClassicalCpu);
  EXPECT_EQ(stats.jobs_completed,
            static_cast<std::size_t>(kProducers * kJobsPerProducer));
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// --- Preemptible jobs & time-slicing (DESIGN.md §12) -----------------------

TEST(SchedulerPreemption, PreemptibleJobRunsAcrossYields) {
  Scheduler scheduler({.queue_capacity = 16});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  // Three voluntary yields before completing: each nullopt re-enqueues the
  // remainder, each pickup counts as a resume.
  auto slices_done = std::make_shared<std::atomic<int>>(0);
  auto future = scheduler.submit_preemptible(
      "sliced", AcceleratorKind::kClassicalCpu,
      [slices_done](core::Accelerator&,
                    const YieldProbe&) -> std::optional<core::JobResult> {
        if (slices_done->fetch_add(1) < 3) return std::nullopt;
        return ok_result("finished after slices");
      });
  ASSERT_EQ(future.wait_for(10s), std::future_status::ready);
  const core::JobResult r = future.get();
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(slices_done->load(), 4);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.slices, 4u);
  EXPECT_GE(stats.preempts, 3u);
  EXPECT_GE(stats.resumes, 3u);
}

TEST(SchedulerPreemption, HigherPriorityJobPreemptsRunningSlice) {
  Scheduler scheduler({.queue_capacity = 16});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());

  std::latch low_started{1};
  std::atomic<bool> high_done{false};
  std::mutex mutex;
  std::vector<std::string> order;

  // The low job spins inside one slice until the probe reports queued
  // higher-priority work, then parks at its "checkpoint". It can only
  // finish after the high job ran — so completion order proves preemption.
  auto low = scheduler.submit_preemptible(
      "low", AcceleratorKind::kClassicalCpu,
      [&](core::Accelerator&,
          const YieldProbe& probe) -> std::optional<core::JobResult> {
        low_started.count_down();
        const auto slice_start = Clock::now();
        while (!high_done.load()) {
          if (probe.should_yield()) return std::nullopt;
          if (Clock::now() - slice_start > 10s) {
            core::JobResult r;
            r.summary = "timed out waiting for preemption";
            return r;  // ok=false: fail the test instead of hanging it
          }
          std::this_thread::sleep_for(100us);
        }
        std::lock_guard lock(mutex);
        order.push_back("low");
        return ok_result();
      },
      with_priority(0));
  low_started.wait();

  auto high = scheduler.submit(cpu_job("high",
                                       [&] {
                                         {
                                           std::lock_guard lock(mutex);
                                           order.push_back("high");
                                         }
                                         high_done.store(true);
                                         return ok_result();
                                       }),
                               with_priority(5));
  ASSERT_EQ(high.wait_for(10s), std::future_status::ready);
  ASSERT_EQ(low.wait_for(10s), std::future_status::ready);
  EXPECT_TRUE(high.get().ok);
  EXPECT_TRUE(low.get().ok) << "low-priority slice never saw the preemption";
  EXPECT_EQ(order, (std::vector<std::string>{"high", "low"}));
  const SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.preempts, 1u);
  EXPECT_GE(stats.resumes, 1u);
  EXPECT_GE(stats.slices, 2u);
}

TEST(SchedulerPreemption, EqualPriorityDoesNotTriggerYield) {
  Scheduler scheduler({.queue_capacity = 16});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  std::latch started{1};
  std::latch release{1};
  auto first = scheduler.submit_preemptible(
      "first", AcceleratorKind::kClassicalCpu,
      [&](core::Accelerator&,
          const YieldProbe& probe) -> std::optional<core::JobResult> {
        started.count_down();
        release.wait();
        core::JobResult r;
        r.ok = !probe.should_yield();  // equal priority must not preempt
        return r;
      });
  started.wait();
  auto second = scheduler.submit(cpu_job("second", [] { return ok_result(); }));
  release.count_down();
  EXPECT_TRUE(first.get().ok);
  EXPECT_TRUE(second.get().ok);
  EXPECT_EQ(scheduler.stats().preempts, 0u);
}

// --- Work stealing between kind pools --------------------------------------

TEST(SchedulerStealing, IdleWorkersStealStealableJobs) {
  Scheduler scheduler({.queue_capacity = 16,
                       .work_stealing = true,
                       .steal_poll = 1ms});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  scheduler.add_pool(AcceleratorKind::kOscillator, 1,
                     oscillator::OscillatorAccelerator::factory({}));

  // Wedge the CPU pool's only worker, then pile stealable work on its queue:
  // the idle oscillator worker must drain it.
  std::latch entered{1};
  std::latch gate{1};
  auto blocker = scheduler.submit(cpu_job("blocker", [&] {
    entered.count_down();
    gate.wait();
    return ok_result();
  }));
  entered.wait();

  std::vector<std::future<core::JobResult>> futures;
  for (int i = 0; i < 4; ++i) {
    JobOptions opts;
    opts.stealable = true;
    futures.push_back(scheduler.submit(
        cpu_job("stealable" + std::to_string(i), [] { return ok_result(); }),
        opts));
  }
  // All four must complete while the CPU worker is still wedged.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(10s), std::future_status::ready);
    EXPECT_TRUE(f.get().ok);
  }
  EXPECT_FALSE(ready(blocker));
  EXPECT_GE(scheduler.stats().steals, 4u);
  gate.count_down();
  EXPECT_TRUE(blocker.get().ok);
  scheduler.drain();
  EXPECT_EQ(scheduler.stats(AcceleratorKind::kClassicalCpu).queue_depth, 0u);
}

TEST(SchedulerStealing, NonStealableJobsStayOnTheirQueue) {
  Scheduler scheduler({.queue_capacity = 16,
                       .work_stealing = true,
                       .steal_poll = 1ms});
  scheduler.add_pool(AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  scheduler.add_pool(AcceleratorKind::kOscillator, 1,
                     oscillator::OscillatorAccelerator::factory({}));

  std::latch entered{1};
  std::latch gate{1};
  auto blocker = scheduler.submit(cpu_job("blocker", [&] {
    entered.count_down();
    gate.wait();
    return ok_result();
  }));
  entered.wait();

  auto pinned =
      scheduler.submit(cpu_job("pinned", [] { return ok_result(); }));
  // Give the oscillator worker ample steal-poll cycles to (wrongly) grab it.
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(ready(pinned));
  EXPECT_EQ(scheduler.stats().steals, 0u);
  gate.count_down();
  EXPECT_TRUE(pinned.get().ok);
  EXPECT_TRUE(blocker.get().ok);
}

// --- BoundedJobQueue unit tests (no threads) -------------------------------

QueuedJob entry(std::uint64_t seq, int priority = 0) {
  QueuedJob item;
  item.name = "e" + std::to_string(seq);
  item.seq = seq;
  item.opts.priority = priority;
  item.payload = [](core::Accelerator&) { return core::JobResult{}; };
  return item;
}

TEST(BoundedJobQueue, PopsPriorityThenFifo) {
  BoundedJobQueue queue(8, BackpressurePolicy::kBlock);
  for (auto [seq, pri] :
       std::vector<std::pair<std::uint64_t, int>>{{0, 0}, {1, 2}, {2, 0}, {3, 2}}) {
    auto item = entry(seq, pri);
    ASSERT_EQ(queue.push(item, nullptr),
              BoundedJobQueue::PushStatus::kAccepted);
  }
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    order.push_back(item->seq);
    queue.task_done();
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 0, 2}));
}

TEST(BoundedJobQueue, ShedOldestIgnoresPriority) {
  BoundedJobQueue queue(2, BackpressurePolicy::kShedOldest);
  auto a = entry(0, /*priority=*/9);  // oldest, though highest priority
  auto b = entry(1, 0);
  std::optional<QueuedJob> shed;
  ASSERT_EQ(queue.push(a, &shed), BoundedJobQueue::PushStatus::kAccepted);
  ASSERT_EQ(queue.push(b, &shed), BoundedJobQueue::PushStatus::kAccepted);
  auto c = entry(2, 0);
  ASSERT_EQ(queue.push(c, &shed), BoundedJobQueue::PushStatus::kAccepted);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->seq, 0u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedJobQueue, RejectLeavesItemIntact) {
  BoundedJobQueue queue(1, BackpressurePolicy::kReject);
  auto a = entry(0);
  ASSERT_EQ(queue.push(a, nullptr), BoundedJobQueue::PushStatus::kAccepted);
  auto b = entry(1);
  EXPECT_EQ(queue.push(b, nullptr), BoundedJobQueue::PushStatus::kRejected);
  EXPECT_EQ(b.name, "e1");  // not consumed
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedJobQueue, CloseStopsPopsAndFlushReturnsLeftoversInOrder) {
  BoundedJobQueue queue(8, BackpressurePolicy::kBlock);
  for (auto [seq, pri] :
       std::vector<std::pair<std::uint64_t, int>>{{0, 0}, {1, 5}, {2, 1}}) {
    auto item = entry(seq, pri);
    ASSERT_EQ(queue.push(item, nullptr),
              BoundedJobQueue::PushStatus::kAccepted);
  }
  queue.close();
  EXPECT_FALSE(queue.pop().has_value());
  auto leftovers = queue.flush();
  ASSERT_EQ(leftovers.size(), 3u);
  EXPECT_EQ(leftovers[0].seq, 1u);  // priority 5 first
  EXPECT_EQ(leftovers[1].seq, 2u);
  EXPECT_EQ(leftovers[2].seq, 0u);
  auto late = entry(9);
  EXPECT_EQ(queue.push(late, nullptr), BoundedJobQueue::PushStatus::kClosed);
}

TEST(BoundedJobQueue, ZeroCapacityThrows) {
  EXPECT_THROW(BoundedJobQueue(0, BackpressurePolicy::kBlock),
               std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::sched
