#include "oscillator/analysis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random.h"

namespace rebooting::oscillator {
namespace {

/// Builds a trace of two synthetic square waves with the given frequencies,
/// phases (radians), and duty cycles.
Trace synthetic_pair(Real f1, Real f2, Real phase2, Real duty = 0.5,
                     Real duration = 1e-3, Real dt = 1e-7) {
  Trace tr;
  tr.dt = dt;
  tr.node_voltage.assign(2, {});
  const auto n = static_cast<std::size_t>(duration / dt);
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = static_cast<Real>(i) * dt;
    tr.time.push_back(t);
    const Real p1 = std::fmod(f1 * t, 1.0);
    // phase_difference measures how much channel b LAGS a, so shift b late.
    const Real p2 = std::fmod(f2 * t - phase2 / core::kTwoPi + 10.0, 1.0);
    tr.node_voltage[0].push_back(p1 < duty ? 1.0 : 0.0);
    tr.node_voltage[1].push_back(p2 < duty ? 1.0 : 0.0);
    tr.supply_current.push_back(0.0);
  }
  return tr;
}

TEST(EdgeTimes, CountsAndInterpolates) {
  const Trace tr = synthetic_pair(10e3, 10e3, 0.0);
  const auto edges =
      rising_edge_times(tr.node_voltage[0], tr.time.front(), tr.dt);
  ASSERT_GT(edges.size(), 5u);
  // Edge spacing equals the period.
  const Real period = edges[1] - edges[0];
  EXPECT_NEAR(period, 1.0 / 10e3, tr.dt * 2);
}

TEST(EdgeTimes, FlatChannelHasNoEdges) {
  std::vector<Real> flat(100, 0.7);
  EXPECT_TRUE(rising_edge_times(flat, 0.0, 1e-6).empty());
}

TEST(Frequency, RecoversKnownFrequency) {
  const Trace tr = synthetic_pair(25e3, 25e3, 0.0);
  EXPECT_NEAR(trace_frequency(tr, 0), 25e3, 100.0);
}

TEST(Frequency, ZeroForNonOscillating) {
  Trace tr;
  tr.dt = 1e-6;
  tr.node_voltage.assign(1, std::vector<Real>(100, 0.3));
  tr.time.assign(100, 0.0);
  EXPECT_DOUBLE_EQ(trace_frequency(tr, 0), 0.0);
}

TEST(Locking, EqualFrequenciesLocked) {
  const Trace tr = synthetic_pair(20e3, 20e3, 1.0);
  EXPECT_TRUE(is_locked(tr, 0, 1));
}

TEST(Locking, DifferentFrequenciesNotLocked) {
  const Trace tr = synthetic_pair(20e3, 23e3, 0.0);
  EXPECT_FALSE(is_locked(tr, 0, 1));
}

class PhaseDifferenceTest : public ::testing::TestWithParam<Real> {};

TEST_P(PhaseDifferenceTest, RecoversSetPhase) {
  const Real phase = GetParam();
  const Trace tr = synthetic_pair(20e3, 20e3, phase);
  const Real measured = phase_difference(tr, 0, 1);
  // Circular distance to the expected value.
  Real diff = std::abs(measured - phase);
  diff = std::min(diff, core::kTwoPi - diff);
  EXPECT_LT(diff, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Phases, PhaseDifferenceTest,
                         ::testing::Values(0.5, core::kPi / 2.0, core::kPi,
                                           4.0, 5.5));

TEST(XorMeasure, InPhaseGivesFullMeasure) {
  const Trace tr = synthetic_pair(20e3, 20e3, 0.0);
  EXPECT_NEAR(xor_average(tr, 0, 1), 0.0, 0.02);
  EXPECT_NEAR(xor_distance_measure(tr, 0, 1), 1.0, 0.02);
}

TEST(XorMeasure, AntiPhaseGivesZeroMeasure) {
  // Perfect anti-phase 50% duty square waves disagree everywhere.
  const Trace tr = synthetic_pair(20e3, 20e3, core::kPi);
  EXPECT_NEAR(xor_average(tr, 0, 1), 1.0, 0.02);
  EXPECT_NEAR(xor_distance_measure(tr, 0, 1), 0.0, 0.02);
}

TEST(XorMeasure, QuarterPhaseIsIntermediate) {
  const Trace tr = synthetic_pair(20e3, 20e3, core::kPi / 2.0);
  EXPECT_NEAR(xor_distance_measure(tr, 0, 1), 0.5, 0.05);
}

TEST(XorMeasure, MeasureGrowsWithPhaseDeviationFromPi) {
  // The distance measure is monotone in |phase - pi| — the property the
  // comparator relies on.
  Real prev = -1.0;
  for (const Real dev : {0.0, 0.4, 0.8, 1.2, 1.6}) {
    const Trace tr = synthetic_pair(20e3, 20e3, core::kPi + dev);
    const Real m = xor_distance_measure(tr, 0, 1);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(WindowedMeasure, FewerCyclesIsNoisierButBounded) {
  const Trace tr = synthetic_pair(20e3, 20e3, core::kPi + 0.7);
  const Real full = xor_distance_measure(tr, 0, 1);
  const Real windowed = xor_distance_measure_windowed(tr, 0, 1, 4);
  EXPECT_GE(windowed, 0.0);
  EXPECT_LE(windowed, 1.0);
  EXPECT_NEAR(windowed, full, 0.25);
}

TEST(LkFit, RecoversSyntheticExponent) {
  std::vector<Real> deltas, measures;
  for (Real d = -0.3; d <= 0.3001; d += 0.02) {
    deltas.push_back(d);
    measures.push_back(0.1 + 2.0 * std::pow(std::abs(d), 2.0));
  }
  const LkFit fit = fit_lk_exponent(deltas, measures);
  EXPECT_NEAR(fit.k, 2.0, 0.1);
  EXPECT_NEAR(fit.delta0, 0.0, 1e-9);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LkFit, RejectsFlatCurve) {
  const std::vector<Real> deltas{-0.2, -0.1, 0.0, 0.1, 0.2};
  const std::vector<Real> flat{0.3, 0.3, 0.3, 0.3, 0.3};
  EXPECT_THROW(fit_lk_exponent(deltas, flat), std::invalid_argument);
}

class WidthEstimatorTest : public ::testing::TestWithParam<Real> {};

TEST_P(WidthEstimatorTest, RecoversExponent) {
  const Real k = GetParam();
  std::vector<Real> deltas, measures;
  for (Real d = -0.4; d <= 0.4001; d += 0.01) {
    deltas.push_back(d);
    measures.push_back(0.15 + 1.5 * std::pow(std::abs(d), k));
  }
  EXPECT_NEAR(estimate_lk_by_widths(deltas, measures), k, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Exponents, WidthEstimatorTest,
                         ::testing::Values(1.0, 1.6, 2.0, 3.4));

TEST(WidthEstimator, RobustToFloorNoise) {
  core::Rng rng(3);
  std::vector<Real> deltas, measures;
  for (Real d = -0.4; d <= 0.4001; d += 0.01) {
    deltas.push_back(d);
    measures.push_back(0.15 + 1.5 * std::pow(std::abs(d), 2.0) +
                       rng.uniform(0.0, 0.01));
  }
  EXPECT_NEAR(estimate_lk_by_widths(deltas, measures), 2.0, 0.4);
}

TEST(WidthEstimator, RejectsBadLevels) {
  const std::vector<Real> deltas{-0.1, 0.0, 0.1, 0.2, 0.3};
  const std::vector<Real> ms{0.5, 0.1, 0.5, 0.6, 0.7};
  EXPECT_THROW(estimate_lk_by_widths(deltas, ms, 0.9, 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::oscillator
