#include "oscillator/matcher.h"

#include <gtest/gtest.h>

namespace rebooting::oscillator {
namespace {

const OscillatorComparator& shared_comparator() {
  static const OscillatorComparator* cmp = [] {
    ComparatorConfig cfg;
    cfg.calibration_points = 6;
    cfg.sim.duration = 60e-6;
    cfg.sim.dt = 1e-9;
    cfg.sim.sample_stride = 4;
    return new OscillatorComparator(cfg);
  }();
  return *cmp;
}

TEST(Matcher, NearestTemplateWins) {
  TemplateMatcher matcher(shared_comparator());
  matcher.add_template({0.1, 0.1, 0.1});
  matcher.add_template({0.5, 0.5, 0.5});
  matcher.add_template({0.9, 0.9, 0.9});
  EXPECT_EQ(matcher.best_match({0.12, 0.08, 0.1}), 0u);
  EXPECT_EQ(matcher.best_match({0.52, 0.49, 0.5}), 1u);
  EXPECT_EQ(matcher.best_match({0.88, 0.92, 0.9}), 2u);
}

TEST(Matcher, RankIsSortedAscending) {
  TemplateMatcher matcher(shared_comparator());
  matcher.add_template({0.2, 0.2});
  matcher.add_template({0.8, 0.8});
  matcher.add_template({0.5, 0.5});
  const auto ranks = matcher.rank({0.21, 0.2});
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_EQ(ranks[0].template_index, 0u);
  for (std::size_t i = 1; i < ranks.size(); ++i)
    EXPECT_GE(ranks[i].aggregate_distance, ranks[i - 1].aggregate_distance);
}

TEST(Matcher, StatsAccountForComparisons) {
  TemplateMatcher matcher(shared_comparator());
  matcher.add_template({0.2, 0.3, 0.4, 0.5});
  matcher.add_template({0.6, 0.7, 0.8, 0.9});
  MatcherStats stats;
  matcher.rank({0.5, 0.5, 0.5, 0.5}, &stats);
  EXPECT_EQ(stats.comparisons, 8u);  // 2 templates x 4 components
  EXPECT_GT(stats.energy_joules, 0.0);
  // Latency: one comparison window per template (components in parallel).
  EXPECT_NEAR(stats.latency_seconds,
              2.0 * shared_comparator().comparison_seconds(), 1e-12);
}

TEST(Matcher, DimensionMismatchRejected) {
  TemplateMatcher matcher(shared_comparator());
  matcher.add_template({0.1, 0.2});
  EXPECT_THROW(matcher.add_template({0.1}), std::invalid_argument);
  EXPECT_THROW(matcher.rank({0.1, 0.2, 0.3}), std::invalid_argument);
  EXPECT_THROW(matcher.add_template({}), std::invalid_argument);
}

TEST(Matcher, EmptyStoreRejected) {
  TemplateMatcher matcher(shared_comparator());
  EXPECT_THROW(matcher.rank({0.5}), std::invalid_argument);
}

TEST(Matcher, ClusteringSeparatesGroups) {
  TemplateMatcher matcher(shared_comparator());
  // Two well-separated groups of three.
  matcher.add_template({0.1, 0.1});
  matcher.add_template({0.15, 0.1});
  matcher.add_template({0.1, 0.15});
  matcher.add_template({0.85, 0.9});
  matcher.add_template({0.9, 0.9});
  matcher.add_template({0.9, 0.85});
  const auto assignment = matcher.cluster(2);
  ASSERT_EQ(assignment.size(), 6u);
  EXPECT_EQ(assignment[0], assignment[1]);
  EXPECT_EQ(assignment[1], assignment[2]);
  EXPECT_EQ(assignment[3], assignment[4]);
  EXPECT_EQ(assignment[4], assignment[5]);
  EXPECT_NE(assignment[0], assignment[3]);
}

TEST(Matcher, ClusterArgumentValidation) {
  TemplateMatcher matcher(shared_comparator());
  matcher.add_template({0.5});
  EXPECT_THROW(matcher.cluster(0), std::invalid_argument);
  EXPECT_THROW(matcher.cluster(2), std::invalid_argument);
}

TEST(TextFeature, EncodingProperties) {
  const Feature f = text_to_feature("AB", 4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_GT(f[1], f[0]);             // 'B' > 'A'
  EXPECT_DOUBLE_EQ(f[2], 0.0);       // padding
  EXPECT_DOUBLE_EQ(f[3], 0.0);
  for (const core::Real v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_THROW(text_to_feature("x", 0), std::invalid_argument);
}

TEST(TextFeature, SimilarStringsMatchBetter) {
  TemplateMatcher matcher(shared_comparator());
  matcher.add_template(text_to_feature("hello", 8));
  matcher.add_template(text_to_feature("world", 8));
  matcher.add_template(text_to_feature("zzzzz", 8));
  EXPECT_EQ(matcher.best_match(text_to_feature("hallo", 8)), 0u);
  EXPECT_EQ(matcher.best_match(text_to_feature("worlt", 8)), 1u);
}

}  // namespace
}  // namespace rebooting::oscillator
