#include "oscillator/coloring.h"

#include <gtest/gtest.h>

namespace rebooting::oscillator {
namespace {

ColoringOptions fast_options(std::size_t colors) {
  ColoringOptions o;
  o.colors = colors;
  o.restarts = 2;
  o.sim.duration = 120e-6;
  o.sim.dt = 1e-9;
  o.sim.sample_stride = 4;
  return o;
}

TEST(Graph, Factories) {
  const Graph c5 = Graph::cycle(5);
  EXPECT_EQ(c5.num_vertices, 5u);
  EXPECT_EQ(c5.edges.size(), 5u);
  const Graph k4 = Graph::complete(4);
  EXPECT_EQ(k4.edges.size(), 6u);
  EXPECT_THROW(Graph::cycle(2), std::invalid_argument);
}

TEST(Graph, ConflictCounting) {
  const Graph c4 = Graph::cycle(4);
  EXPECT_EQ(c4.conflicts({0, 1, 0, 1}), 0u);
  EXPECT_EQ(c4.conflicts({0, 0, 0, 0}), 4u);
  EXPECT_EQ(c4.conflicts({0, 0, 1, 1}), 2u);
  EXPECT_THROW(c4.conflicts({0, 1}), std::invalid_argument);
}

class BipartiteColoring : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BipartiteColoring, EvenCyclesColorPerfectlyWithTwoColors) {
  // Anti-phase locking IS 2-coloring: even cycles resolve exactly.
  const Graph g = Graph::cycle(GetParam());
  const ColoringResult r = color_graph(g, fast_options(2));
  EXPECT_EQ(r.conflicts, 0u);
}

INSTANTIATE_TEST_SUITE_P(EvenCycles, BipartiteColoring,
                         ::testing::Values(4u, 6u, 8u));

TEST(Coloring, FrustratedGraphsGetLowConflictApproximations) {
  // The two-state relaxation dynamics lock at phase 0/pi only, so odd
  // structures cannot settle at 2*pi/3 spacings; the heuristic still leaves
  // at most ~1 conflict per frustrated odd cycle (documented limitation).
  const ColoringResult c5 = color_graph(Graph::cycle(5), fast_options(3));
  EXPECT_LE(c5.conflicts, 1u);
  const ColoringResult k3 = color_graph(Graph::complete(3), fast_options(3));
  EXPECT_LE(k3.conflicts, 1u);
}

TEST(Coloring, ResultShapeConsistent) {
  const Graph g = Graph::cycle(6);
  const ColoringResult r = color_graph(g, fast_options(2));
  EXPECT_EQ(r.coloring.size(), 6u);
  EXPECT_EQ(r.phases.size(), 6u);
  for (const std::size_t c : r.coloring) EXPECT_LT(c, 2u);
  EXPECT_EQ(g.conflicts(r.coloring), r.conflicts);
}

TEST(Coloring, InputValidation) {
  EXPECT_THROW(color_graph(Graph{1, {}}, fast_options(2)),
               std::invalid_argument);
  EXPECT_THROW(color_graph(Graph::cycle(4), fast_options(1)),
               std::invalid_argument);
}

TEST(GreedyBaseline, ProperColoringsOnStandardGraphs) {
  for (const Graph& g : {Graph::cycle(4), Graph::cycle(5), Graph::complete(5)}) {
    const auto coloring = greedy_coloring(g);
    EXPECT_EQ(g.conflicts(coloring), 0u);
  }
  // Greedy uses exactly n colors on K_n.
  const auto kc = greedy_coloring(Graph::complete(4));
  std::size_t used = 0;
  for (const std::size_t c : kc) used = std::max(used, c + 1);
  EXPECT_EQ(used, 4u);
}

TEST(GreedyBaseline, TwoColorsOnEvenCycle) {
  const auto coloring = greedy_coloring(Graph::cycle(8));
  std::size_t used = 0;
  for (const std::size_t c : coloring) used = std::max(used, c + 1);
  EXPECT_EQ(used, 2u);
}

}  // namespace
}  // namespace rebooting::oscillator
