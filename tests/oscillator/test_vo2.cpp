#include "oscillator/vo2.h"

#include <gtest/gtest.h>

namespace rebooting::oscillator {
namespace {

TEST(Vo2Device, HysteresisSwitchingRules) {
  Vo2Device dev;  // defaults: v_imt 1.4, v_mit 0.6
  // Insulating stays insulating below the IMT threshold.
  EXPECT_EQ(dev.next_phase(Vo2Phase::kInsulating, 1.0), Vo2Phase::kInsulating);
  // Crossing the IMT threshold switches to metallic.
  EXPECT_EQ(dev.next_phase(Vo2Phase::kInsulating, 1.5), Vo2Phase::kMetallic);
  // Metallic stays metallic in the hysteresis window...
  EXPECT_EQ(dev.next_phase(Vo2Phase::kMetallic, 1.0), Vo2Phase::kMetallic);
  // ...and releases below the MIT threshold.
  EXPECT_EQ(dev.next_phase(Vo2Phase::kMetallic, 0.5), Vo2Phase::kInsulating);
}

TEST(Vo2Device, HysteresisWindowIsSticky) {
  // Inside (v_mit, v_imt) both phases are stable — that is the memory.
  Vo2Device dev;
  const Real v_mid = 0.5 * (dev.v_mit + dev.v_imt);
  EXPECT_EQ(dev.next_phase(Vo2Phase::kInsulating, v_mid), Vo2Phase::kInsulating);
  EXPECT_EQ(dev.next_phase(Vo2Phase::kMetallic, v_mid), Vo2Phase::kMetallic);
}

TEST(Vo2Device, ResistanceByPhase) {
  Vo2Device dev;
  EXPECT_DOUBLE_EQ(dev.resistance(Vo2Phase::kInsulating), dev.r_insulating);
  EXPECT_DOUBLE_EQ(dev.resistance(Vo2Phase::kMetallic), dev.r_metallic);
  EXPECT_GT(dev.resistance(Vo2Phase::kInsulating),
            dev.resistance(Vo2Phase::kMetallic));
}

TEST(Vo2Device, ValidationRejectsBadWindows) {
  Vo2Device dev;
  dev.v_mit = 2.0;  // above v_imt
  EXPECT_THROW(dev.validate(), std::invalid_argument);
  dev = Vo2Device{};
  dev.r_metallic = dev.r_insulating + 1.0;
  EXPECT_THROW(dev.validate(), std::invalid_argument);
}

TEST(SeriesTransistor, ConductanceAboveThresholdIsLinear) {
  SeriesTransistor tr;
  const Real g1 = tr.conductance(tr.vth + 0.2);
  const Real g2 = tr.conductance(tr.vth + 0.4);
  EXPECT_NEAR(g2 - tr.g_leak, 2.0 * (g1 - tr.g_leak), 1e-12);
}

TEST(SeriesTransistor, SubthresholdFloorsAtLeakage) {
  SeriesTransistor tr;
  EXPECT_DOUBLE_EQ(tr.conductance(tr.vth - 0.1), tr.g_leak);
  EXPECT_DOUBLE_EQ(tr.conductance(0.0), tr.g_leak);
}

TEST(SeriesTransistor, ResistanceIsReciprocal) {
  SeriesTransistor tr;
  const Real vgs = tr.vth + 0.5;
  EXPECT_NEAR(tr.resistance(vgs) * tr.conductance(vgs), 1.0, 1e-12);
}

TEST(OscillatorParams, DefaultSustainsOscillationMidRange) {
  OscillatorParams p;
  p.validate();
  EXPECT_TRUE(p.sustains_oscillation(1.0));
}

TEST(OscillatorParams, LoadLineFailsForExtremeGateVoltages) {
  OscillatorParams p;
  // A very strong transistor pulls the metallic divider above the MIT
  // threshold: no oscillation (the Sec. III-A load-line condition).
  EXPECT_FALSE(p.sustains_oscillation(6.0));
}

TEST(OscillatorParams, ValidateRejectsLowSupply) {
  OscillatorParams p;
  p.vdd = p.vo2.v_imt;  // cannot ever trip the IMT
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(OscillatorParams, ValidateRejectsZeroCapacitance) {
  OscillatorParams p;
  p.c_node = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::oscillator
