#include "oscillator/comparator.h"

#include <gtest/gtest.h>

namespace rebooting::oscillator {
namespace {

/// One shared calibrated comparator for the whole suite: calibration runs
/// dozens of pair simulations, so building it per-test would dominate the
/// suite's runtime.
const OscillatorComparator& shared_comparator() {
  static const OscillatorComparator* cmp = [] {
    ComparatorConfig cfg;
    cfg.calibration_points = 8;
    cfg.sim.duration = 60e-6;
    cfg.sim.dt = 1e-9;
    cfg.sim.sample_stride = 4;
    return new OscillatorComparator(cfg);
  }();
  return *cmp;
}

TEST(Comparator, EqualInputsGiveMinimalDistance) {
  const auto& cmp = shared_comparator();
  const Real d_eq = cmp.distance(0.5, 0.5);
  const Real d_far = cmp.distance(0.1, 0.9);
  EXPECT_LT(d_eq, d_far);
}

TEST(Comparator, DistanceIsSymmetric) {
  const auto& cmp = shared_comparator();
  for (const Real a : {0.2, 0.5, 0.8}) {
    for (const Real b : {0.1, 0.6}) {
      EXPECT_NEAR(cmp.distance(a, b), cmp.distance(b, a), 1e-9);
    }
  }
}

TEST(Comparator, DistanceIsMonotoneInInputGap) {
  const auto& cmp = shared_comparator();
  Real prev = -1.0;
  for (const Real gap : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const Real d = cmp.distance(0.5 - gap / 2.0, 0.5 + gap / 2.0);
    EXPECT_GE(d, prev - 1e-9);
    prev = d;
  }
}

TEST(Comparator, InputsClampedOutsideUnitRange) {
  const auto& cmp = shared_comparator();
  EXPECT_NEAR(cmp.distance(-2.0, 3.0), cmp.distance(0.0, 1.0), 1e-9);
}

TEST(Comparator, CalibrationExtractsElectricalFigures) {
  const auto& cal = shared_comparator().calibration();
  EXPECT_GT(cal.oscillation_hz, 1e6);
  // Pair power: tens of microwatts (the Sec. III-B budget).
  EXPECT_GT(cal.pair_power_watts, 10e-6);
  EXPECT_LT(cal.pair_power_watts, 200e-6);
  EXPECT_EQ(cal.delta_vgs.size(), cal.measure.size());
}

TEST(Comparator, UnitPowerIncludesReadout) {
  const auto& cmp = shared_comparator();
  EXPECT_GT(cmp.unit_power_watts(), cmp.calibration().pair_power_watts);
}

TEST(Comparator, ComparisonTimeMatchesReadoutCycles) {
  const auto& cmp = shared_comparator();
  const Real expected = static_cast<Real>(cmp.config().readout_cycles) /
                        cmp.calibration().oscillation_hz;
  EXPECT_NEAR(cmp.comparison_seconds(), expected, 1e-12);
  EXPECT_NEAR(cmp.energy_per_comparison(),
              cmp.unit_power_watts() * cmp.comparison_seconds(), 1e-18);
}

TEST(Comparator, ThresholdForInputDeltaIsMonotone) {
  const auto& cmp = shared_comparator();
  const Real t1 = cmp.threshold_for_input_delta(0.1);
  const Real t2 = cmp.threshold_for_input_delta(0.3);
  EXPECT_LE(t1, t2);
}

TEST(Comparator, SimulatedDistanceAgreesWithCalibratedCurve) {
  const auto& cmp = shared_comparator();
  // The interpolated LUT should track a fresh full simulation to within the
  // measurement noise of the XOR readout.
  const Real lut = cmp.distance(0.3, 0.7);
  const Real sim = cmp.distance_simulated(0.3, 0.7);
  EXPECT_NEAR(lut, sim, 0.15);
}

TEST(Comparator, RejectsBadConfig) {
  ComparatorConfig cfg;
  cfg.calibration_points = 2;  // too few
  EXPECT_THROW(OscillatorComparator{cfg}, std::invalid_argument);
  cfg = ComparatorConfig{};
  cfg.vgs_half_span = 0.0;
  EXPECT_THROW(OscillatorComparator{cfg}, std::invalid_argument);
}

TEST(Accelerator, ExposesStackAndComparator) {
  ComparatorConfig cfg;
  cfg.calibration_points = 4;
  cfg.sim.duration = 30e-6;
  const OscillatorAccelerator accel(cfg);
  EXPECT_EQ(accel.kind(), core::AcceleratorKind::kOscillator);
  EXPECT_GE(accel.stack_layers().size(), 4u);
  EXPECT_GT(accel.comparator().calibration().oscillation_hz, 0.0);
}

}  // namespace
}  // namespace rebooting::oscillator
