#include "oscillator/network.h"

#include <gtest/gtest.h>

#include "oscillator/analysis.h"

namespace rebooting::oscillator {
namespace {

SimulationOptions fast_sim() {
  SimulationOptions so;
  so.duration = 30e-6;
  so.dt = 1e-9;
  so.sample_stride = 4;
  return so;
}

TEST(SingleOscillator, ProducesRelaxationOscillation) {
  RelaxationOscillator osc{OscillatorParams{}};
  const Trace tr = osc.simulate(1.0, fast_sim());
  const Real f = trace_frequency(tr, 0);
  EXPECT_GT(f, 1e6);   // MHz-scale per the VO2 literature
  EXPECT_LT(f, 50e6);
}

TEST(SingleOscillator, FrequencyIncreasesWithVgsInLinearRegion) {
  RelaxationOscillator osc{OscillatorParams{}};
  const Real f_lo = trace_frequency(osc.simulate(0.9, fast_sim()), 0);
  const Real f_hi = trace_frequency(osc.simulate(1.05, fast_sim()), 0);
  EXPECT_GT(f_hi, f_lo);
}

TEST(SingleOscillator, SwingStaysWithinSupply) {
  RelaxationOscillator osc{OscillatorParams{}};
  const Trace tr = osc.simulate(1.0, fast_sim());
  for (const Real v : tr.node_voltage[0]) {
    EXPECT_GE(v, -1e-6);
    EXPECT_LE(v, osc.params().vdd + 1e-6);
  }
}

TEST(SingleOscillator, NoOscillationOutsideLoadLineWindow) {
  OscillatorParams p;
  RelaxationOscillator osc{p};
  // Far above the window the metallic divider no longer releases.
  ASSERT_FALSE(p.sustains_oscillation(2.0));
  const Trace tr = osc.simulate(2.0, fast_sim());
  EXPECT_DOUBLE_EQ(trace_frequency(tr, 0), 0.0);
}

TEST(Network, PowerIsPositiveAndPerOscillatorScale) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 1);
  net.set_gate_voltage(0, 1.0);
  const Trace tr = net.simulate(fast_sim());
  const Real p = net.average_power(tr, 0.3);
  // Tens of microwatts per oscillator (the Sec. III-B power scale).
  EXPECT_GT(p, 5e-6);
  EXPECT_LT(p, 200e-6);
}

TEST(Network, MatchedPairLocksAntiPhase) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, 1.0);
  net.set_gate_voltage(1, 1.0);
  net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
  SimulationOptions so = fast_sim();
  so.duration = 80e-6;
  const Trace tr = net.simulate(so);
  EXPECT_TRUE(is_locked(tr, 0, 1));
  const Real phase = phase_difference(tr, 0, 1);
  EXPECT_NEAR(phase, core::kPi, 0.5);
}

TEST(Network, DetunedPairStaysLockedInsideRange) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, 0.97);
  net.set_gate_voltage(1, 1.03);
  net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
  SimulationOptions so = fast_sim();
  so.duration = 80e-6;
  const Trace tr = net.simulate(so);
  EXPECT_TRUE(is_locked(tr, 0, 1));
}

TEST(Network, UncoupledDetunedPairRunsAtDifferentFrequencies) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, 0.9);
  net.set_gate_voltage(1, 1.05);
  SimulationOptions so = fast_sim();
  so.duration = 80e-6;
  const Trace tr = net.simulate(so);
  EXPECT_FALSE(is_locked(tr, 0, 1, 1e-3));
}

TEST(Network, ParallelTopologyAlsoSimulates) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.add_coupling({.a = 0, .b = 1, .r = 400e3, .c = 1e-12,
                    .topology = CouplingTopology::kParallelRC});
  const Trace tr = net.simulate(fast_sim());
  EXPECT_GT(trace_frequency(tr, 0), 1e6);
}

TEST(Network, ThreeOscillatorChain) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 3);
  net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
  net.add_coupling({.a = 1, .b = 2, .r = 15e3, .c = 1e-12});
  SimulationOptions so = fast_sim();
  so.duration = 60e-6;
  const Trace tr = net.simulate(so);
  // The chain locks to a common frequency.
  EXPECT_TRUE(is_locked(tr, 0, 1, 1e-2));
  EXPECT_TRUE(is_locked(tr, 1, 2, 1e-2));
}

TEST(Network, TraceShapeMatchesOptions) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  SimulationOptions so = fast_sim();
  const Trace tr = net.simulate(so);
  EXPECT_EQ(tr.oscillators(), 2u);
  EXPECT_EQ(tr.samples(), tr.time.size());
  EXPECT_EQ(tr.supply_current.size(), tr.time.size());
  EXPECT_NEAR(tr.dt, so.dt * static_cast<Real>(so.sample_stride), 1e-15);
}

TEST(Network, InvalidCouplingRejected) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  EXPECT_THROW(net.add_coupling({.a = 0, .b = 0, .r = 1e3, .c = 1e-12}),
               std::invalid_argument);
  EXPECT_THROW(net.add_coupling({.a = 0, .b = 5, .r = 1e3, .c = 1e-12}),
               std::invalid_argument);
  EXPECT_THROW(net.add_coupling({.a = 0, .b = 1, .r = -1.0, .c = 1e-12}),
               std::invalid_argument);
  // Series topology requires a real capacitor.
  EXPECT_THROW(net.add_coupling({.a = 0, .b = 1, .r = 1e3, .c = 0.0,
                                 .topology = CouplingTopology::kSeriesRC}),
               std::invalid_argument);
}

TEST(Network, ZeroOscillatorsRejected) {
  EXPECT_THROW(CoupledOscillatorNetwork(OscillatorParams{}, 0),
               std::invalid_argument);
}

TEST(Network, BadSimulationOptionsRejected) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 1);
  SimulationOptions so = fast_sim();
  so.dt = 0.0;
  EXPECT_THROW(net.simulate(so), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::oscillator
