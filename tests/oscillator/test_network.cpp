#include "oscillator/network.h"

#include <gtest/gtest.h>

#include "oscillator/analysis.h"

namespace rebooting::oscillator {
namespace {

SimulationOptions fast_sim() {
  SimulationOptions so;
  so.duration = 30e-6;
  so.dt = 1e-9;
  so.sample_stride = 4;
  return so;
}

TEST(SingleOscillator, ProducesRelaxationOscillation) {
  RelaxationOscillator osc{OscillatorParams{}};
  const Trace tr = osc.simulate(1.0, fast_sim());
  const Real f = trace_frequency(tr, 0);
  EXPECT_GT(f, 1e6);   // MHz-scale per the VO2 literature
  EXPECT_LT(f, 50e6);
}

TEST(SingleOscillator, FrequencyIncreasesWithVgsInLinearRegion) {
  RelaxationOscillator osc{OscillatorParams{}};
  const Real f_lo = trace_frequency(osc.simulate(0.9, fast_sim()), 0);
  const Real f_hi = trace_frequency(osc.simulate(1.05, fast_sim()), 0);
  EXPECT_GT(f_hi, f_lo);
}

TEST(SingleOscillator, SwingStaysWithinSupply) {
  RelaxationOscillator osc{OscillatorParams{}};
  const Trace tr = osc.simulate(1.0, fast_sim());
  for (const Real v : tr.node_voltage[0]) {
    EXPECT_GE(v, -1e-6);
    EXPECT_LE(v, osc.params().vdd + 1e-6);
  }
}

TEST(SingleOscillator, NoOscillationOutsideLoadLineWindow) {
  OscillatorParams p;
  RelaxationOscillator osc{p};
  // Far above the window the metallic divider no longer releases.
  ASSERT_FALSE(p.sustains_oscillation(2.0));
  const Trace tr = osc.simulate(2.0, fast_sim());
  EXPECT_DOUBLE_EQ(trace_frequency(tr, 0), 0.0);
}

TEST(Network, PowerIsPositiveAndPerOscillatorScale) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 1);
  net.set_gate_voltage(0, 1.0);
  const Trace tr = net.simulate(fast_sim());
  const Real p = net.average_power(tr, 0.3);
  // Tens of microwatts per oscillator (the Sec. III-B power scale).
  EXPECT_GT(p, 5e-6);
  EXPECT_LT(p, 200e-6);
}

TEST(Network, MatchedPairLocksAntiPhase) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, 1.0);
  net.set_gate_voltage(1, 1.0);
  net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
  SimulationOptions so = fast_sim();
  so.duration = 80e-6;
  const Trace tr = net.simulate(so);
  EXPECT_TRUE(is_locked(tr, 0, 1));
  const Real phase = phase_difference(tr, 0, 1);
  EXPECT_NEAR(phase, core::kPi, 0.5);
}

TEST(Network, DetunedPairStaysLockedInsideRange) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, 0.97);
  net.set_gate_voltage(1, 1.03);
  net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
  SimulationOptions so = fast_sim();
  so.duration = 80e-6;
  const Trace tr = net.simulate(so);
  EXPECT_TRUE(is_locked(tr, 0, 1));
}

TEST(Network, UncoupledDetunedPairRunsAtDifferentFrequencies) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, 0.9);
  net.set_gate_voltage(1, 1.05);
  SimulationOptions so = fast_sim();
  so.duration = 80e-6;
  const Trace tr = net.simulate(so);
  EXPECT_FALSE(is_locked(tr, 0, 1, 1e-3));
}

TEST(Network, ParallelTopologyAlsoSimulates) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.add_coupling({.a = 0, .b = 1, .r = 400e3, .c = 1e-12,
                    .topology = CouplingTopology::kParallelRC});
  const Trace tr = net.simulate(fast_sim());
  EXPECT_GT(trace_frequency(tr, 0), 1e6);
}

TEST(Network, ThreeOscillatorChain) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 3);
  net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
  net.add_coupling({.a = 1, .b = 2, .r = 15e3, .c = 1e-12});
  SimulationOptions so = fast_sim();
  so.duration = 60e-6;
  const Trace tr = net.simulate(so);
  // The chain locks to a common frequency.
  EXPECT_TRUE(is_locked(tr, 0, 1, 1e-2));
  EXPECT_TRUE(is_locked(tr, 1, 2, 1e-2));
}

TEST(Network, TraceShapeMatchesOptions) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  SimulationOptions so = fast_sim();
  const Trace tr = net.simulate(so);
  EXPECT_EQ(tr.oscillators(), 2u);
  EXPECT_EQ(tr.samples(), tr.time.size());
  EXPECT_EQ(tr.supply_current.size(), tr.time.size());
  EXPECT_NEAR(tr.dt, so.dt * static_cast<Real>(so.sample_stride), 1e-15);
}

// Golden-trajectory regression tests: fingerprints captured from the
// pre-kernel std::function implementation. The static-dispatch kernel (and
// the drift-free time grid — the node dynamics are autonomous, so only the
// reported sample times could differ, not the voltages) must reproduce the
// seed waveforms bit-for-bit.
class NetworkGolden : public ::testing::Test {
 protected:
  static Trace run(CouplingTopology topology) {
    CoupledOscillatorNetwork net(OscillatorParams{}, 2);
    net.set_gate_voltage(0, 0.95);
    net.set_gate_voltage(1, 1.05);
    net.add_coupling(
        {.a = 0, .b = 1, .r = 15e3, .c = 1e-12, .topology = topology});
    SimulationOptions so;
    so.duration = 5e-6;
    so.dt = 1e-9;
    so.sample_stride = 4;
    return net.simulate(so);
  }
  static Real sum(const std::vector<Real>& v) {
    Real s = 0.0;
    for (const Real x : v) s += x;
    return s;
  }
};

TEST_F(NetworkGolden, SeriesRcWaveformUnchanged) {
  const Trace tr = run(CouplingTopology::kSeriesRC);
  ASSERT_EQ(tr.samples(), 1251u);
  EXPECT_EQ(sum(tr.node_voltage[0]), 1909.7953089683781);
  EXPECT_EQ(sum(tr.node_voltage[1]), 1885.5753216547409);
  EXPECT_EQ(tr.node_voltage[0].back(), 1.6109489971678781);
  EXPECT_EQ(tr.node_voltage[1].back(), 1.2608751183922264);
  EXPECT_EQ(tr.supply_current.back(), 5.0872423209652297e-05);
}

TEST_F(NetworkGolden, ParallelRcWaveformUnchanged) {
  const Trace tr = run(CouplingTopology::kParallelRC);
  ASSERT_EQ(tr.samples(), 1251u);
  EXPECT_EQ(sum(tr.node_voltage[0]), 2059.7777230630181);
  EXPECT_EQ(sum(tr.node_voltage[1]), 2261.0429121805828);
  EXPECT_EQ(tr.node_voltage[0].back(), 1.6716691681581812);
  EXPECT_EQ(tr.node_voltage[1].back(), 1.8351911865518171);
  EXPECT_EQ(tr.supply_current.back(), 2.7810486114165285e-05);
}

TEST_F(NetworkGolden, SampleTimesSitExactlyOnTheGrid) {
  // The drift-free clock: sample k records t = (k * stride) * dt exactly.
  const Trace tr = run(CouplingTopology::kSeriesRC);
  for (std::size_t k = 0; k < tr.samples(); ++k)
    EXPECT_EQ(tr.time[k], static_cast<Real>(4 * k) * 1e-9) << "k=" << k;
}

TEST_F(NetworkGolden, CallerWorkspaceReproducesThreadLocalPath) {
  const Trace a = run(CouplingTopology::kSeriesRC);
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, 0.95);
  net.set_gate_voltage(1, 1.05);
  net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
  SimulationOptions so;
  so.duration = 5e-6;
  so.dt = 1e-9;
  so.sample_stride = 4;
  core::Workspace ws;
  // Two runs from the same (reused) workspace: stale blocks must not leak
  // into the second trajectory.
  const Trace b = net.simulate(so, ws);
  const Trace c = net.simulate(so, ws);
  ASSERT_EQ(b.samples(), a.samples());
  for (std::size_t k = 0; k < a.samples(); ++k) {
    EXPECT_EQ(b.node_voltage[0][k], a.node_voltage[0][k]) << "k=" << k;
    EXPECT_EQ(c.node_voltage[1][k], a.node_voltage[1][k]) << "k=" << k;
  }
}

TEST(Network, InvalidCouplingRejected) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  EXPECT_THROW(net.add_coupling({.a = 0, .b = 0, .r = 1e3, .c = 1e-12}),
               std::invalid_argument);
  EXPECT_THROW(net.add_coupling({.a = 0, .b = 5, .r = 1e3, .c = 1e-12}),
               std::invalid_argument);
  EXPECT_THROW(net.add_coupling({.a = 0, .b = 1, .r = -1.0, .c = 1e-12}),
               std::invalid_argument);
  // Series topology requires a real capacitor.
  EXPECT_THROW(net.add_coupling({.a = 0, .b = 1, .r = 1e3, .c = 0.0,
                                 .topology = CouplingTopology::kSeriesRC}),
               std::invalid_argument);
}

TEST(Network, ZeroOscillatorsRejected) {
  EXPECT_THROW(CoupledOscillatorNetwork(OscillatorParams{}, 0),
               std::invalid_argument);
}

TEST(Network, BadSimulationOptionsRejected) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 1);
  SimulationOptions so = fast_sim();
  so.dt = 0.0;
  EXPECT_THROW(net.simulate(so), std::invalid_argument);
}

// --- sliced execution (DESIGN.md §12): N budgeted slices must rebuild the
// exact Trace of one uninterrupted simulate(), wherever the cuts fall. -----

class NetworkSliced : public ::testing::Test {
 protected:
  // The golden series-RC pair: detuned gates + one series branch exercises
  // the branch-capacitor state, phase flips, and the hysteresis tally.
  static CoupledOscillatorNetwork make_net() {
    CoupledOscillatorNetwork net(OscillatorParams{}, 2);
    net.set_gate_voltage(0, 0.95);
    net.set_gate_voltage(1, 1.05);
    net.add_coupling({.a = 0, .b = 1, .r = 15e3, .c = 1e-12});
    return net;
  }
  static SimulationOptions sim() {
    SimulationOptions so;
    so.duration = 5e-6;
    so.dt = 1e-9;
    so.sample_stride = 4;
    return so;
  }
  static void expect_traces_equal(const Trace& got, const Trace& want) {
    ASSERT_EQ(got.samples(), want.samples());
    ASSERT_EQ(got.oscillators(), want.oscillators());
    EXPECT_EQ(got.dt, want.dt);
    for (std::size_t k = 0; k < want.samples(); ++k) {
      EXPECT_EQ(got.time[k], want.time[k]) << "k=" << k;
      EXPECT_EQ(got.supply_current[k], want.supply_current[k]) << "k=" << k;
      for (std::size_t i = 0; i < want.oscillators(); ++i)
        EXPECT_EQ(got.node_voltage[i][k], want.node_voltage[i][k])
            << "i=" << i << " k=" << k;
    }
  }
};

TEST_F(NetworkSliced, BudgetedSlicesMatchUninterruptedSimulate) {
  const CoupledOscillatorNetwork net = make_net();
  const SimulationOptions so = sim();
  const Trace whole = net.simulate(so);

  for (const std::size_t slice_steps : {1u, 63u, 997u}) {
    core::Workspace ws;
    core::Checkpoint ckpt = net.begin_simulation(so);
    std::size_t slices = 0;
    while (!net.simulate_slice(ckpt, so, core::SliceBudget::steps(slice_steps),
                               ws)) {
      ++slices;
      ASSERT_LE(slices, 100000u);
    }
    EXPECT_GE(slices, 5000u / slice_steps / 2);
    expect_traces_equal(net.trace_from_checkpoint(ckpt, so), whole);
    // A finished checkpoint is idempotent under further slicing.
    EXPECT_TRUE(net.simulate_slice(ckpt, so, core::SliceBudget::steps(1), ws));
    expect_traces_equal(net.trace_from_checkpoint(ckpt, so), whole);
  }
}

TEST_F(NetworkSliced, JsonParkAndResumeMidRunIsExact) {
  const CoupledOscillatorNetwork net = make_net();
  const SimulationOptions so = sim();
  const Trace whole = net.simulate(so);

  core::Workspace ws;
  core::Checkpoint ckpt = net.begin_simulation(so);
  bool done = false;
  while (!done) {
    done = net.simulate_slice(ckpt, so, core::SliceBudget::steps(321), ws);
    // Park through JSON every slice — the crash/resume path of the chaos
    // harness, including the packed partial Trace in aux.
    const auto parked = core::Checkpoint::from_json(ckpt.json_dump());
    ASSERT_TRUE(parked.has_value());
    EXPECT_EQ(*parked, ckpt);
    ckpt = *parked;
  }
  expect_traces_equal(net.trace_from_checkpoint(ckpt, so), whole);
}

TEST_F(NetworkSliced, WallClockBudgetStillFinishesExactly) {
  const CoupledOscillatorNetwork net = make_net();
  SimulationOptions so = sim();
  so.duration = 1e-6;  // 1000 steps
  const Trace whole = net.simulate(so);

  core::Workspace ws;
  core::Checkpoint ckpt = net.begin_simulation(so);
  std::size_t slices = 0;
  // A vanishing wall budget may only move the cut points, never the values,
  // and must still make forward progress every slice.
  while (!net.simulate_slice(ckpt, so, core::SliceBudget::wall(1e-12), ws)) {
    ++slices;
    ASSERT_LE(slices, 2000u);
  }
  expect_traces_equal(net.trace_from_checkpoint(ckpt, so), whole);
}

TEST_F(NetworkSliced, RejectsForeignCheckpoints) {
  const CoupledOscillatorNetwork net = make_net();
  const SimulationOptions so = sim();
  core::Workspace ws;
  core::Checkpoint ckpt;
  ckpt.tag = "dmm";
  EXPECT_THROW(net.simulate_slice(ckpt, so, core::SliceBudget{}, ws),
               std::invalid_argument);
  EXPECT_THROW(net.trace_from_checkpoint(ckpt, so), std::invalid_argument);
  // Tampering with the packed trace sections must be caught, not decoded.
  core::Checkpoint fresh = net.begin_simulation(so);
  fresh.aux.pop_back();
  EXPECT_THROW(net.trace_from_checkpoint(fresh, so), std::invalid_argument);
}

}  // namespace
}  // namespace rebooting::oscillator
