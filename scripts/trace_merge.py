#!/usr/bin/env python3
"""Merge per-process Chrome trace JSONs into one cross-process timeline.

Every binary that links the telemetry layer writes its own trace file
(REBOOTING_TRACE=path), each with its own pid=1 and its own steady-clock
origin. This script stitches N of those files into a single Perfetto/
chrome://tracing-loadable JSON:

  * each input file becomes one process (pid = position in argv, named by
    its label) with all its thread tracks preserved;
  * timestamps are aligned on the wall clock: every trace carries
    otherData.epoch_unix_ns — the system_clock instant of its ts 0 — so
    events shift by (epoch - min_epoch) microseconds;
  * flow events pass through untouched. They bind by (cat, id) globally, and
    the client stamps its trace_id into the submit frame (the server adopts
    it), so a "net.request" chain drawn client-side continues through the
    shard's reader -> scheduler -> pump spans and back to the client's recv
    as one set of arrows.

Usage:
  trace_merge.py --out merged.json client=trace-client.json \\
                 shard-a=trace-a.json shard-b=trace-b.json
  trace_merge.py --out merged.json trace-*.json   # labels = file stems

--require-cross-flow N exits nonzero unless at least N flow ids have events
in more than one input file — the CI assertion that cross-process
propagation actually happened (a typo'd trace_id field would otherwise
degrade silently into N disjoint per-process chains).

Caveat: wall-clock alignment is as good as the hosts' clocks. Same-host
merges (the smoke test) are exact to clock-read jitter; cross-host merges
inherit NTP skew, which Perfetto renders but cannot correct.
"""

import argparse
import json
import os
import sys


def load_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace JSON object")
    other = doc.get("otherData", {})
    epoch = other.get("epoch_unix_ns")
    if epoch is None:
        raise ValueError(
            f"{path}: otherData.epoch_unix_ns missing — written by an older "
            "build? re-record with a binary that stamps its trace epoch")
    return doc, int(epoch)


def main():
    parser = argparse.ArgumentParser(
        description="merge per-process Chrome traces into one timeline")
    parser.add_argument("traces", nargs="+", metavar="[LABEL=]PATH",
                        help="input trace files; LABEL names the process "
                             "row (default: file stem)")
    parser.add_argument("--out", required=True, help="merged JSON path")
    parser.add_argument("--require-cross-flow", type=int, default=0,
                        metavar="N",
                        help="fail unless >= N flow ids span multiple "
                             "input files")
    args = parser.parse_args()

    inputs = []
    for spec in args.traces:
        label, sep, path = spec.partition("=")
        if not sep:
            path = spec
            label = os.path.splitext(os.path.basename(spec))[0]
        inputs.append((label, path))

    loaded = []
    for label, path in inputs:
        try:
            doc, epoch = load_trace(path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"trace_merge: {err}", file=sys.stderr)
            return 1
        loaded.append((label, doc, epoch))

    min_epoch = min(epoch for _, _, epoch in loaded)

    merged = []
    flow_pids = {}  # flow id -> set of pids it appears in
    dropped_events = 0
    for index, (label, doc, epoch) in enumerate(loaded):
        pid = index + 1
        shift_us = (epoch - min_epoch) / 1000.0
        merged.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": label}})
        other = doc.get("otherData", {})
        dropped_events += int(other.get("dropped_events", 0))
        for ev in doc["traceEvents"]:
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                continue  # replaced by the labeled one above
            ev = dict(ev)
            ev["pid"] = pid
            if "ts" in ev:
                ev["ts"] = ev["ts"] + shift_us
            if ev.get("ph") in ("s", "t", "f"):
                flow_pids.setdefault((ev.get("cat"), ev.get("id")),
                                     set()).add(pid)
            merged.append(ev)

    cross = sum(1 for pids in flow_pids.values() if len(pids) > 1)
    out_doc = {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "merged_from": [label for label, _, _ in loaded],
            "epoch_unix_ns": str(min_epoch),
            "dropped_events": dropped_events,
            "flow_ids": len(flow_pids),
            "cross_process_flow_ids": cross,
        },
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(out_doc, f)
        f.write("\n")

    print(f"trace_merge: {len(merged)} events from {len(loaded)} process(es) "
          f"-> {args.out} ({len(flow_pids)} flow chain(s), {cross} "
          f"cross-process, {dropped_events} dropped at record time)")
    if cross < args.require_cross_flow:
        print(f"trace_merge: FAIL: {cross} cross-process flow chain(s), "
              f"need >= {args.require_cross_flow}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
