#!/usr/bin/env bash
# Mid-slice SIGKILL chaos for the checkpointable DMM runner (DESIGN.md §12).
#
# Protocol:
#   1. `dmmslice solve` produces the uninterrupted fingerprint (steps,
#      sim_time, assignment, ... with exact doubles).
#   2. `dmmslice slice` runs the same trajectory in small budgeted slices,
#      atomically rewriting its checkpoint JSON after every slice — and is
#      SIGKILLed mid-run KILLS times at staggered offsets, resuming from the
#      checkpoint file each time.
#   3. The final fingerprint must be BYTE-identical to the uninterrupted
#      one: process death may move the cut points, never the values.
#
# On failure the last checkpoint JSON is preserved at CHAOS_CKPT_ARTIFACT
# (default chaos_checkpoint.json in the CWD) for offline replay.
#
# Usage: scripts/chaos_kill_resume.sh BUILD_DIR
# Env:   CHAOS_KILLS (default 4), CHAOS_STEPS (slice budget, default 4),
#        CHAOS_SEEDS (rng seeds, default "99 5"), CHAOS_CKPT_ARTIFACT
set -euo pipefail

build_dir=${1:?usage: chaos_kill_resume.sh BUILD_DIR}
kills=${CHAOS_KILLS:-4}
steps=${CHAOS_STEPS:-4}
seeds=${CHAOS_SEEDS:-"99 5"}
artifact=${CHAOS_CKPT_ARTIFACT:-chaos_checkpoint.json}

dmmslice=$build_dir/apps/dmmslice
[[ -x $dmmslice ]] || { echo "missing binary: $dmmslice" >&2; exit 1; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail() {
  echo "chaos_kill_resume: FAIL — $1" >&2
  # Preserve the checkpoint that produced the divergence for replay.
  cp -f "$workdir/ckpt.json" "$artifact" 2>/dev/null || true
  exit 1
}

for seed in $seeds; do
  echo "=== seed $seed: uninterrupted reference run"
  "$dmmslice" solve --rng-seed "$seed" --out "$workdir/expected.json" \
      > /dev/null

  rm -f "$workdir/ckpt.json" "$workdir/got.json"
  for ((k = 1; k <= kills; ++k)); do
    # Stagger the kill point so different runs die in different slices —
    # including inside the very first one.
    "$dmmslice" slice --rng-seed "$seed" --ckpt "$workdir/ckpt.json" \
        --steps "$steps" --sleep-ms 3 --out "$workdir/got.json" \
        > /dev/null &
    pid=$!
    sleep "0.0$((2 + k * 3))"
    if kill -9 "$pid" 2>/dev/null; then
      wait "$pid" 2>/dev/null || true
      echo "  kill $k: SIGKILLed pid $pid mid-slice"
    else
      wait "$pid" 2>/dev/null || true
      echo "  kill $k: run finished before the kill landed"
      break
    fi
    # Whatever instant the kill hit, the checkpoint file must be loadable
    # (atomic tmp+rename) — a torn write here is itself a failure.
    [[ ! -e $workdir/ckpt.json ]] || python3 -m json.tool \
        < "$workdir/ckpt.json" > /dev/null \
        || fail "torn checkpoint JSON after kill $k (seed $seed)"
  done

  echo "  resuming to completion"
  "$dmmslice" slice --rng-seed "$seed" --ckpt "$workdir/ckpt.json" \
      --steps "$steps" --out "$workdir/got.json" > /dev/null \
      || fail "resume exited non-zero (seed $seed)"

  cmp -s "$workdir/expected.json" "$workdir/got.json" \
      || { diff "$workdir/expected.json" "$workdir/got.json" >&2 || true
           fail "fingerprint diverged after kill/resume (seed $seed)"; }
  echo "  fingerprint byte-identical to the uninterrupted run"
done

echo "chaos_kill_resume: PASS"
