#!/usr/bin/env bash
# Two-shard rebootd smoke: the CI acceptance run for the networked service.
#
# Phase 1 — throughput: two clean shards, pipelined loadgen, gated on
#   >= SMOKE_MIN_RPS successful requests/second (server-side p50/p99 are
#   printed from each shard's own latency histogram).
# Phase 2 — chaos + observability: both shards restart under a 20% transient
#   fault plan on the classical-cpu pool; shard A and the loadgen client both
#   record Chrome traces. Mid-storm (before the kill) `rebootctl top --once
#   --json` must report per-shard queue depth, req/s, and p99 for both live
#   shards. Then shard B is killed with SIGKILL. Loadgen must still exit 0:
#   every request accounted for (ok + typed rejections + transport errors ==
#   attempted, no duplicates), with the dead shard's in-flight requests
#   surfacing as transport errors, not hangs. The survivor is then shut down
#   cleanly over the wire so its trace flushes; both traces must be valid
#   JSON, and scripts/trace_merge.py must stitch them into one timeline with
#   at least one client -> shard -> client cross-process flow chain
#   (trace-merged.json).
#
# Usage: scripts/service_smoke.sh BUILD_DIR
# Env:   SMOKE_MIN_RPS (default 10000), SMOKE_PORT_A/B (default 47801/47802)
set -euo pipefail

build_dir=${1:?usage: service_smoke.sh BUILD_DIR}
script_dir=$(cd "$(dirname "$0")" && pwd)
min_rps=${SMOKE_MIN_RPS:-10000}
port_a=${SMOKE_PORT_A:-47801}
port_b=${SMOKE_PORT_B:-47802}
workdir=$(mktemp -d)

rebootd=$build_dir/apps/rebootd
rebootctl=$build_dir/apps/rebootctl
loadgen=$build_dir/apps/loadgen

pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

# Starts one shard and waits for its listening line. start_shard NAME PORT
# [ENV=VAL...]; the PID lands in $shard_pid.
start_shard() {
  local name=$1 port=$2
  shift 2
  env "$@" "$rebootd" --port "$port" --cpu-workers 2 --queue-capacity 512 \
    > "$workdir/$name.log" 2>&1 &
  shard_pid=$!
  pids+=("$shard_pid")
  for _ in $(seq 1 100); do
    grep -q "listening on" "$workdir/$name.log" 2>/dev/null && return 0
    kill -0 "$shard_pid" 2>/dev/null || break
    sleep 0.1
  done
  echo "FATAL: shard $name did not come up:" >&2
  cat "$workdir/$name.log" >&2
  return 1
}

echo "=== phase 1: two-shard throughput (gate: >= $min_rps req/s) ==="
start_shard shard-a "$port_a"
pid_a=$shard_pid
start_shard shard-b "$port_b"
pid_b=$shard_pid

"$loadgen" --shards "127.0.0.1:$port_a,127.0.0.1:$port_b" \
  --threads 4 --window 32 --seconds 4 --work spin --micros 10 \
  --min-rps "$min_rps"

echo
echo "--- memoized replay: duplicate submits must hit the result cache ---"
# Same work, same params, --memo on both: the second submit must replay the
# first's JobResult from the scheduler memo cache, and `top --once --json`
# must surface the nonzero hit count through the per-cache stats block.
"$rebootctl" --port "$port_a" submit spin --micros 50 --memo > /dev/null
"$rebootctl" --port "$port_a" submit spin --micros 50 --memo > /dev/null
"$rebootctl" top --shards "127.0.0.1:$port_a" --once --json \
  > "$workdir/top-memo.json"
python3 - "$workdir/top-memo.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
shard = doc["shards"][0]
assert shard["ok"], shard
caches = shard["cache"]
hits = sum(c["hits"] for c in caches.values())
assert hits > 0, caches
print("memo replay OK: %d cache hit(s) across %s" % (hits, sorted(caches)))
EOF

"$rebootctl" --port "$port_a" shutdown
"$rebootctl" --port "$port_b" shutdown
wait "$pid_a" "$pid_b"
pids=()

echo
echo "=== phase 2: 20% fault storm + mid-run SIGKILL of shard B ==="
cat > "$workdir/faults.json" <<EOF
{
  "seed": 20260808,
  "kinds": {
    "classical-cpu": { "transient_probability": 0.2 }
  }
}
EOF

start_shard storm-a "$port_a" \
  REBOOTING_FAULTS="$workdir/faults.json" REBOOTING_TRACE=trace-service.json
pid_a=$shard_pid
start_shard storm-b "$port_b" REBOOTING_FAULTS="$workdir/faults.json"
pid_b=$shard_pid

# Prime each shard's sampler with a first sample so the rates reported by
# `top` below span the load window rather than starting mid-storm.
"$rebootctl" --port "$port_a" metrics > /dev/null
"$rebootctl" --port "$port_b" metrics > /dev/null

# The storm run is gated on accounting only (exit 1 = lost/duplicated
# response, exit 2 = nothing succeeded at all); throughput was phase 1's job.
# Tracing the client closes the cross-process "net.request" flow chains that
# the traced shard A continues server-side.
REBOOTING_TRACE=trace-loadgen.json \
  "$loadgen" --shards "127.0.0.1:$port_a,127.0.0.1:$port_b" \
  --threads 4 --window 16 --seconds 6 --work spin --micros 20 &
loadgen_pid=$!
pids+=("$loadgen_pid")

sleep 3
echo "--- top --once --json against the live fleet ---"
"$rebootctl" top --shards "127.0.0.1:$port_a,127.0.0.1:$port_b" \
  --once --json > "$workdir/top.json"
python3 - "$workdir/top.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
shards = doc["shards"]
assert len(shards) == 2, shards
for s in shards:
    assert s["ok"], s
    for key in ("queue_depth", "req_per_s", "p50_ms", "p99_ms"):
        assert isinstance(s[key], (int, float)), (s["shard"], key)
print("top --once --json OK: " + ", ".join(
    "%s req/s=%.0f p99=%.3fms" % (s["shard"], s["req_per_s"], s["p99_ms"])
    for s in shards))
EOF

echo "--- killing shard B (pid $pid_b) mid-storm ---"
kill -9 "$pid_b"

wait "$loadgen_pid"
pids=("$pid_a")

# Clean wire shutdown of the survivor so its trace recorder flushes.
"$rebootctl" --port "$port_a" shutdown
wait "$pid_a"
pids=()

python3 -m json.tool trace-service.json > /dev/null
events=$(python3 -c \
  "import json; print(len(json.load(open('trace-service.json'))['traceEvents']))")
echo "survivor trace OK: $events events in trace-service.json"

python3 -m json.tool trace-loadgen.json > /dev/null
echo "client trace OK: trace-loadgen.json"

# Stitch the client and surviving-shard timelines; the merge must contain at
# least one request flow that spans both processes (client begin -> shard
# steps -> client end).
python3 "$script_dir/trace_merge.py" --out trace-merged.json \
  --require-cross-flow 1 \
  client=trace-loadgen.json shard-a=trace-service.json
echo
echo "service smoke: PASS"
