// loadgen — pipelined traffic generator that drives a fleet of rebootd
// shards as one logical service and proves the accounting invariant: every
// request it writes ends in exactly one bucket (a typed response status, or
// a transport error when the shard died with the request in flight) — none
// lost, none answered twice.
//
//   loadgen --shards 127.0.0.1:4700,127.0.0.1:4701 --threads 4
//           --seconds 10 --window 32 --work spin --micros 50 --min-rps 10000
//
// Each worker thread opens one connection per shard and keeps up to --window
// requests in flight per connection (pipelining decouples throughput from
// round-trip latency). Requests are routed over the shards by consistent
// hash of "tenant/seq"; a connection failure marks that shard down in the
// thread's router, counts its in-flight requests as transport errors, and
// the remaining traffic re-routes to the survivors — the mid-storm
// shard-kill scenario of the service smoke test.
//
// Exit codes: 0 success; 1 accounting violation (lost or duplicated
// response); 2 no request succeeded; 3 --min-rps not met.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "rebootctl/client.h"
#include "rebootctl/router.h"
#include "telemetry/trace.h"

namespace {

using namespace rebooting;
using Clock = std::chrono::steady_clock;

struct Options {
  std::vector<rebootctl::ShardAddress> shards;
  std::size_t threads = 2;
  double seconds = 5.0;
  std::uint64_t requests = 0;  ///< 0 = until --seconds elapse
  std::size_t window = 32;
  std::string work = "spin";
  double micros = 50.0;
  std::size_t tenants = 4;
  bool coalesce = false;
  bool memo = false;  ///< server-side memoization (Request::memo)
  double min_rps = 0.0;
};

/// Per-thread tallies, merged after join. Buckets are mutually exclusive.
struct Tally {
  std::uint64_t sent = 0;       ///< frames written successfully
  std::uint64_t attempted = 0;  ///< sent + writes that failed
  std::uint64_t transport_errors = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t backoffs = 0;  ///< retry_after_ms hints honored
  std::map<net::Status, std::uint64_t> by_status;

  std::uint64_t responses() const {
    std::uint64_t n = 0;
    for (const auto& [status, count] : by_status) n += count;
    return n;
  }
};

struct ShardConn {
  rebootctl::Client client;
  /// Outstanding request ids on this connection (id -> unused slot; a map so
  /// response ids can be checked for membership exactly once).
  std::map<std::uint64_t, bool> outstanding;
  /// Earliest instant the shard wants to see the next submit — the
  /// retry_after_ms hint from its last overloaded/quota rejection.
  Clock::time_point backoff_until{};
};

void fail_shard(rebootctl::ShardRouter& router,
                const rebootctl::ShardAddress& shard, ShardConn& conn,
                Tally& tally) {
  router.mark_down(shard);
  conn.client.close();
  tally.transport_errors += conn.outstanding.size();
  conn.outstanding.clear();
}

/// Receives one response on `conn`; false when the connection died.
bool recv_one(ShardConn& conn, Tally& tally) {
  std::string error;
  const auto resp = conn.client.recv(&error);
  if (!resp) return false;
  const auto it = conn.outstanding.find(resp->id);
  if (it == conn.outstanding.end()) {
    ++tally.duplicates;  // unknown or already-answered id
    return true;
  }
  conn.outstanding.erase(it);
  ++tally.by_status[resp->status];
  // Honor the server's pacing hint: after an overload/quota rejection with a
  // retry_after_ms, hold further submits to this shard until the hinted
  // instant instead of hammering it.
  if ((resp->status == net::Status::kOverloaded ||
       resp->status == net::Status::kQuotaExceeded) &&
      resp->retry_after_ms && *resp->retry_after_ms > 0.0) {
    const auto until =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               *resp->retry_after_ms));
    if (until > conn.backoff_until) conn.backoff_until = until;
  }
  return true;
}

void worker(const Options& opts, std::size_t thread_index,
            std::atomic<bool>& stop, Tally& tally) {
  telemetry::TraceRecorder::instance().set_thread_name(
      "loadgen worker " + std::to_string(thread_index));
  rebootctl::ShardRouter router(opts.shards);
  std::map<std::string, ShardConn> conns;  // keyed host:port
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts.seconds));
  const std::uint64_t quota =
      opts.requests ? opts.requests / opts.threads : ~0ull;

  std::uint64_t seq = 0;
  while (!stop.load(std::memory_order_relaxed) && tally.attempted < quota &&
         Clock::now() < deadline) {
    const std::string tenant =
        "tenant-" + std::to_string(seq % opts.tenants);
    const auto shard = router.route(tenant + "/" + std::to_string(seq));
    if (!shard) break;  // every shard is down
    const std::string conn_key =
        shard->host + ":" + std::to_string(shard->port);
    ShardConn& conn = conns[conn_key];
    if (!conn.client.connected()) {
      std::string error;
      if (!conn.client.connect(shard->host, shard->port, &error)) {
        fail_shard(router, *shard, conn, tally);
        continue;  // re-route; nothing was attempted
      }
    }

    // Back off while the shard's retry_after hint is live (capped per
    // iteration so a large hint cannot freeze the thread past --seconds, and
    // so responses keep draining meanwhile).
    if (const auto now = Clock::now(); conn.backoff_until > now) {
      ++tally.backoffs;
      std::this_thread::sleep_for(std::min<Clock::duration>(
          conn.backoff_until - now, std::chrono::milliseconds(20)));
    }

    net::Request req;
    req.id = (static_cast<std::uint64_t>(thread_index) << 40) | ++seq;
    req.method = "submit";
    req.tenant = opts.coalesce ? "default" : tenant;
    req.work = opts.work;
    req.no_coalesce = !opts.coalesce;
    req.memo = opts.memo;
    core::JsonValue::Members params;
    if (opts.work == "spin")
      params.emplace_back("micros", core::JsonValue::make_number(opts.micros));
    if (opts.work == "sat")
      // --memo draws seeds from a small pool so repeats hit the result
      // cache; --coalesce collapses everything into one instance; otherwise
      // every request is a distinct formula.
      params.emplace_back(
          "seed", core::JsonValue::make_number(
                      opts.coalesce ? 1.0
                      : opts.memo
                          ? static_cast<double>(seq % 8)
                          : static_cast<double>(req.id)));
    if (!params.empty())
      req.params = core::JsonValue::make_object(std::move(params));

    ++tally.attempted;
    if (!conn.client.send(req)) {
      ++tally.transport_errors;  // this request, then its window-mates
      fail_shard(router, *shard, conn, tally);
      continue;
    }
    ++tally.sent;
    conn.outstanding.emplace(req.id, true);

    while (conn.outstanding.size() >= opts.window) {
      if (!recv_one(conn, tally)) {
        fail_shard(router, *shard, conn, tally);
        break;
      }
    }
  }

  // Drain: every in-flight request still gets its response (or its shard's
  // death turns it into a transport error). Nothing may stay unaccounted.
  for (auto& [key, conn] : conns) {
    while (!conn.outstanding.empty()) {
      if (!recv_one(conn, tally)) {
        tally.transport_errors += conn.outstanding.size();
        conn.outstanding.clear();
      }
    }
    conn.client.close();
  }
}

void print_server_latency(const Options& opts) {
  for (const auto& shard : opts.shards) {
    rebootctl::Client client;
    if (!client.connect(shard.host, shard.port)) {
      std::printf("shard %s:%u: down\n", shard.host.c_str(), shard.port);
      continue;
    }
    net::Request req;
    req.id = 1;
    req.method = "status";
    const auto resp = client.call(req);
    if (!resp || !resp->body.is_object() ||
        !resp->body.contains("latency")) {
      std::printf("shard %s:%u: no status\n", shard.host.c_str(), shard.port);
      continue;
    }
    const auto& latency = resp->body.at("latency");
    std::printf("shard %s:%u: served %.0f  p50 %.3f ms  p99 %.3f ms\n",
                shard.host.c_str(), shard.port,
                latency.at("count").number(),
                latency.at("p50_seconds").number() * 1e3,
                latency.at("p99_seconds").number() * 1e3);
  }
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --shards H:P[,H:P...] [--threads N] [--seconds F]\n"
               "          [--requests N] [--window N] [--work W] [--micros F]\n"
               "          [--tenants N] [--coalesce] [--memo] [--min-rps F]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(arg, "--shards")) {
      std::string list = next();
      std::size_t start = 0;
      while (start < list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        const std::string entry = list.substr(start, comma - start);
        const std::size_t colon = entry.rfind(':');
        if (colon == std::string::npos) usage(argv[0]);
        opts.shards.push_back(
            {entry.substr(0, colon),
             static_cast<std::uint16_t>(std::atoi(entry.c_str() + colon + 1))});
        start = comma + 1;
      }
    } else if (!std::strcmp(arg, "--threads")) {
      opts.threads = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(arg, "--seconds")) {
      opts.seconds = std::atof(next());
    } else if (!std::strcmp(arg, "--requests")) {
      opts.requests = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (!std::strcmp(arg, "--window")) {
      opts.window = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(arg, "--work")) {
      opts.work = next();
    } else if (!std::strcmp(arg, "--micros")) {
      opts.micros = std::atof(next());
    } else if (!std::strcmp(arg, "--tenants")) {
      opts.tenants = std::max(1, std::atoi(next()));
    } else if (!std::strcmp(arg, "--coalesce")) {
      opts.coalesce = true;
    } else if (!std::strcmp(arg, "--memo")) {
      opts.memo = true;
    } else if (!std::strcmp(arg, "--min-rps")) {
      opts.min_rps = std::atof(next());
    } else {
      usage(argv[0]);
    }
  }
  if (opts.shards.empty() || opts.threads == 0 || opts.window == 0)
    usage(argv[0]);

  std::atomic<bool> stop{false};
  std::vector<Tally> tallies(opts.threads);
  std::vector<std::thread> threads;
  const auto started = Clock::now();
  for (std::size_t t = 0; t < opts.threads; ++t)
    threads.emplace_back(
        [&, t] { worker(opts, t, stop, tallies[t]); });
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - started).count();

  Tally total;
  for (const Tally& tally : tallies) {
    total.sent += tally.sent;
    total.attempted += tally.attempted;
    total.transport_errors += tally.transport_errors;
    total.duplicates += tally.duplicates;
    total.backoffs += tally.backoffs;
    for (const auto& [status, count] : tally.by_status)
      total.by_status[status] += count;
  }

  const std::uint64_t accounted = total.responses() + total.transport_errors;
  std::printf("attempted %llu in %.2f s  (%.0f req/s)\n",
              static_cast<unsigned long long>(total.attempted), elapsed,
              static_cast<double>(total.attempted) / elapsed);
  for (const auto& [status, count] : total.by_status)
    std::printf("  %-16s %llu\n", net::to_string(status).c_str(),
                static_cast<unsigned long long>(count));
  std::printf("  %-16s %llu\n", "transport_error",
              static_cast<unsigned long long>(total.transport_errors));
  if (total.backoffs > 0)
    std::printf("  %-16s %llu\n", "backoffs",
                static_cast<unsigned long long>(total.backoffs));
  print_server_latency(opts);

  if (accounted != total.attempted || total.duplicates > 0) {
    std::printf("ACCOUNTING VIOLATION: attempted %llu != accounted %llu "
                "(duplicates %llu)\n",
                static_cast<unsigned long long>(total.attempted),
                static_cast<unsigned long long>(accounted),
                static_cast<unsigned long long>(total.duplicates));
    return 1;
  }
  std::printf("accounting balanced: %llu attempted == %llu accounted\n",
              static_cast<unsigned long long>(total.attempted),
              static_cast<unsigned long long>(accounted));
  if (total.by_status[net::Status::kOk] == 0) {
    std::printf("FAILED: no request succeeded\n");
    return 2;
  }
  const double rps = static_cast<double>(total.attempted) / elapsed;
  if (opts.min_rps > 0.0 && rps < opts.min_rps) {
    std::printf("FAILED: %.0f req/s below --min-rps %.0f\n", rps,
                opts.min_rps);
    return 3;
  }
  return 0;
}
