#include "rebootctl/router.h"

#include <algorithm>

namespace rebooting::rebootctl {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

namespace {

/// splitmix64 finalizer. FNV alone clusters the vnodes of near-identical
/// shard strings ("127.0.0.1:4700#1" vs "#2") into adjacent ring arcs; the
/// avalanche mix spreads them uniformly.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(std::vector<ShardAddress> shards, std::size_t vnodes)
    : shards_(std::move(shards)), down_(shards_.size(), false) {
  ring_.reserve(shards_.size() * vnodes);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t base =
        fnv1a(shards_[s].host + ":" + std::to_string(shards_[s].port));
    for (std::size_t i = 0; i < vnodes; ++i)
      ring_.push_back({mix(base + i), s});
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const VNode& a, const VNode& b) { return a.hash < b.hash; });
}

std::optional<ShardAddress> ShardRouter::route(std::string_view key) const {
  if (ring_.empty()) return std::nullopt;
  const std::uint64_t hash = mix(fnv1a(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const VNode& node, std::uint64_t h) { return node.hash < h; });
  // Walk clockwise (wrapping) past vnodes of dead shards.
  for (std::size_t steps = 0; steps < ring_.size(); ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (!down_[it->shard]) return shards_[it->shard];
    ++it;
  }
  return std::nullopt;
}

void ShardRouter::mark_down(const ShardAddress& shard) {
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (shards_[s] == shard) down_[s] = true;
}

void ShardRouter::mark_up(const ShardAddress& shard) {
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (shards_[s] == shard) down_[s] = false;
}

std::size_t ShardRouter::live_count() const {
  std::size_t live = 0;
  for (const bool down : down_)
    if (!down) ++live;
  return live;
}

}  // namespace rebooting::rebootctl
