// `rebootctl top` — a fleet dashboard over the `watch` wire verb. One watch
// subscription per shard, one collector thread per subscription, and a
// renderer that repaints an aligned multi-shard table every interval:
// per-pool queue depth and breaker state, request rate, latency quantiles,
// and scheduler preempt/steal/slice rates.
//
// Two modes:
//
//   live (default)   ANSI repaint until the terminal interrupts us or every
//                    shard's subscription ends (server stopped). --frames N
//                    bounds the run for scripts that cannot send SIGINT.
//   --once           one frame per shard, no threads, no repaint — connect,
//                    read the watch verb's immediate first frame, disconnect.
//                    With --json the frame set prints as one JSON object
//                    (the shape service_smoke.sh asserts on), exit 0 iff
//                    every shard answered.
//
// Rates: counter rates (req/s) come from the server's sampler
// (body.rates.per_second); scheduler slice/preempt/steal rates are computed
// client-side from consecutive frames, since Scheduler::stats() counters
// live outside the metrics registry.
#pragma once

#include <string>
#include <vector>

namespace rebooting::rebootctl {

struct TopOptions {
  /// "host:port" per shard; a bare "port" means 127.0.0.1.
  std::vector<std::string> shards;
  double interval_ms = 500.0;
  bool once = false;
  bool json = false;
  /// Live mode: stop after this many repaints (0 = until the subscriptions
  /// end or the process is interrupted).
  std::size_t frames = 0;
  std::string tenant = "default";
};

/// Runs the dashboard; returns the process exit code (0 = every shard
/// reachable for the whole run).
int run_top(const TopOptions& options);

}  // namespace rebooting::rebootctl
