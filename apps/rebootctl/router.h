// Consistent-hash shard router: lets loadgen (and any client) treat N
// rebootd processes as one logical service. Each shard contributes ~64
// virtual nodes (FNV-1a of "host:port#i") on a 64-bit ring; a key routes to
// the first vnode clockwise from its hash.
//
// Properties the soak test leans on:
//  - stability: adding/removing one shard remaps only ~1/N of the keyspace,
//    so a shard killed mid-storm does not reshuffle every tenant's traffic;
//  - mark_down(): a dead shard's vnodes are skipped (not rebuilt), so the
//    failover target of each key is deterministic and the ring can be
//    cheaply restored if the shard returns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rebooting::rebootctl {

struct ShardAddress {
  std::string host;
  std::uint16_t port = 0;

  bool operator==(const ShardAddress&) const = default;
};

/// FNV-1a, the same 64-bit flavor everywhere so tests can predict placement.
std::uint64_t fnv1a(std::string_view bytes);

class ShardRouter {
 public:
  /// `vnodes` virtual nodes per shard; more = smoother distribution.
  explicit ShardRouter(std::vector<ShardAddress> shards,
                       std::size_t vnodes = 64);

  /// The live shard owning `key`; nullopt when every shard is down.
  std::optional<ShardAddress> route(std::string_view key) const;

  /// Marks one shard dead: its vnodes are skipped until marked up again.
  void mark_down(const ShardAddress& shard);
  void mark_up(const ShardAddress& shard);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t live_count() const;
  const std::vector<ShardAddress>& shards() const { return shards_; }

 private:
  struct VNode {
    std::uint64_t hash = 0;
    std::size_t shard = 0;  ///< index into shards_
  };

  std::vector<ShardAddress> shards_;
  std::vector<bool> down_;
  std::vector<VNode> ring_;  ///< sorted by hash
};

}  // namespace rebooting::rebootctl
