// rebootctl — operator CLI for a rebootd shard (or a fleet of them).
//
//   rebootctl --port 4700 ping
//   rebootctl --port 4700 status
//   rebootctl --port 4700 metrics
//   rebootctl --port 4700 submit spin --micros 200 --kind classical-cpu
//   rebootctl top --shards 127.0.0.1:4700,127.0.0.1:4701 [--interval-ms 250]
//   rebootctl --port 4700 top --once --json
//   rebootctl --port 4700 shutdown
//
// Exit code 0 on Status::kOk, 1 on any other status or transport failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rebootctl/client.h"
#include "rebootctl/top.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--tenant T] COMMAND\n"
               "commands:\n"
               "  ping\n"
               "  status\n"
               "  metrics\n"
               "  watch [--interval-ms F]   (prints the first frame and exits)\n"
               "  top [--shards H:P,H:P,...] [--interval-ms F] [--once]"
               " [--json] [--frames N]\n"
               "  submit WORK [--kind K] [--micros F] [--vars N]"
               " [--clauses N] [--seed N] [--priority N] [--deadline-ms F]"
               " [--memo]\n"
               "  shutdown\n",
               argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rebooting;

  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  net::Request req;
  req.id = 1;
  core::JsonValue::Members params;
  rebootctl::TopOptions top;

  int i = 1;
  for (; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (!std::strcmp(arg, "--host")) {
      host = next();
    } else if (!std::strcmp(arg, "--port")) {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (!std::strcmp(arg, "--tenant")) {
      req.tenant = next();
    } else if (!std::strcmp(arg, "--kind")) {
      const std::string name = next();
      const auto kind = core::kind_from_string(name);
      if (!kind) {
        std::fprintf(stderr, "rebootctl: unknown kind '%s'\n", name.c_str());
        return 2;
      }
      req.kind = *kind;
    } else if (!std::strcmp(arg, "--priority")) {
      req.priority = std::atoi(next());
    } else if (!std::strcmp(arg, "--deadline-ms")) {
      req.deadline_ms = std::atof(next());
    } else if (!std::strcmp(arg, "--shards")) {
      top.shards = split_csv(next());
    } else if (!std::strcmp(arg, "--interval-ms")) {
      const double interval = std::atof(next());
      top.interval_ms = interval;
      params.emplace_back("interval_ms",
                          core::JsonValue::make_number(interval));
    } else if (!std::strcmp(arg, "--memo")) {
      req.memo = true;
    } else if (!std::strcmp(arg, "--once")) {
      top.once = true;
    } else if (!std::strcmp(arg, "--json")) {
      top.json = true;
    } else if (!std::strcmp(arg, "--frames")) {
      top.frames = static_cast<std::size_t>(std::atoi(next()));
    } else if (!std::strcmp(arg, "--micros") || !std::strcmp(arg, "--vars") ||
               !std::strcmp(arg, "--clauses") || !std::strcmp(arg, "--seed")) {
      params.emplace_back(arg + 2,
                          core::JsonValue::make_number(std::atof(next())));
    } else if (req.method.empty() && arg[0] != '-') {
      req.method = arg;
    } else if (req.method == "submit" && req.work.empty() && arg[0] != '-') {
      req.work = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (req.method.empty()) usage(argv[0]);
  if (req.method == "top") {
    // Fleet mode: --shards wins; otherwise the single --host/--port shard.
    if (top.shards.empty()) {
      if (port == 0) usage(argv[0]);
      top.shards.push_back(host + ":" + std::to_string(port));
    }
    top.tenant = req.tenant;
    return rebootctl::run_top(top);
  }
  if (port == 0) usage(argv[0]);
  if (req.method == "submit" && req.work.empty()) usage(argv[0]);
  if (!params.empty())
    req.params = core::JsonValue::make_object(std::move(params));

  rebootctl::Client client;
  std::string error;
  if (!client.connect(host, port, &error)) {
    std::fprintf(stderr, "rebootctl: %s\n", error.c_str());
    return 1;
  }
  const auto resp = client.call(req, &error);
  if (!resp) {
    std::fprintf(stderr, "rebootctl: %s\n", error.c_str());
    return 1;
  }

  std::printf("status: %s\n", net::to_string(resp->status).c_str());
  if (!resp->summary.empty())
    std::printf("summary: %s\n", resp->summary.c_str());
  if (resp->attempts > 0)
    std::printf("attempts: %llu%s\n",
                static_cast<unsigned long long>(resp->attempts),
                resp->degraded ? " (degraded)" : "");
  if (resp->retry_after_ms)
    std::printf("retry_after_ms: %g\n", *resp->retry_after_ms);
  for (const auto& [name, value] : resp->metrics)
    std::printf("metric %s: %g\n", name.c_str(), value);
  if (!resp->body.is_null())
    std::printf("%s\n", core::json_dump(resp->body).c_str());
  return resp->status == net::Status::kOk ? 0 : 1;
}
