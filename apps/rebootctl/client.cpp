#include "rebootctl/client.h"

namespace rebooting::rebootctl {

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  socket_ = net::connect_to(host, port, error);
  return socket_.valid();
}

bool Client::send(const net::Request& req, std::string* error) {
  if (!socket_.valid()) {
    if (error) *error = "not connected";
    return false;
  }
  if (!net::write_frame(socket_, net::encode_request(req))) {
    if (error) *error = "write failed (connection lost)";
    socket_.close();
    return false;
  }
  return true;
}

std::optional<net::Response> Client::recv(std::string* error) {
  if (!socket_.valid()) {
    if (error) *error = "not connected";
    return std::nullopt;
  }
  std::string frame;
  switch (net::read_frame(socket_, &frame, net::kMaxFrameBytes)) {
    case net::FrameRead::kFrame:
      break;
    case net::FrameRead::kEof:
      if (error) *error = "connection closed";
      socket_.close();
      return std::nullopt;
    case net::FrameRead::kError:
      if (error) *error = "read failed (connection lost mid-frame)";
      socket_.close();
      return std::nullopt;
    case net::FrameRead::kOversized:
      if (error) *error = "oversized response frame";
      socket_.close();
      return std::nullopt;
  }
  return net::decode_response(frame, error);
}

std::optional<net::Response> Client::call(const net::Request& req,
                                          std::string* error) {
  if (!send(req, error)) return std::nullopt;
  return recv(error);
}

}  // namespace rebooting::rebootctl
