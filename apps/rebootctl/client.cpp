#include "rebootctl/client.h"

#include <atomic>
#include <chrono>

#include "telemetry/trace.h"

namespace rebooting::rebootctl {

namespace {

/// splitmix64: one multiply-shift-xor pass per call, full-period over u64.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Process-unique trace ids. Seeded from the wall clock and the address of a
/// static (ASLR entropy), then advanced per call, so two client processes
/// started in the same nanosecond still draw from disjoint streams — flow
/// arrows in a merged trace bind purely by id, and a collision would stitch
/// two unrelated requests together. Never returns 0 (0 means "no context"
/// on the wire).
std::uint64_t fresh_trace_id() {
  static std::atomic<std::uint64_t> state{[] {
    std::uint64_t seed = static_cast<std::uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    seed ^= static_cast<std::uint64_t>(
        reinterpret_cast<std::uintptr_t>(&fresh_trace_id));
    return mix64(seed);
  }()};
  std::uint64_t id = 0;
  do {
    id = mix64(state.fetch_add(0x9e3779b97f4a7c15ull,
                               std::memory_order_relaxed));
  } while (id == 0);
  return id;
}

}  // namespace

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  socket_ = net::connect_to(host, port, error);
  return socket_.valid();
}

bool Client::send(const net::Request& req, std::string* error) {
  if (!socket_.valid()) {
    if (error) *error = "not connected";
    return false;
  }
  // When this process is tracing, stamp a distributed trace context onto
  // submits that don't already carry one: the server then continues the
  // "net.request" flow chain under *our* id, and trace_merge.py can draw the
  // client -> shard -> client arrows across the two processes' trace files.
  const net::Request* to_send = &req;
  net::Request stamped;
  if (telemetry::trace_enabled() && req.method == "submit" &&
      req.trace_id == 0) {
    stamped = req;
    stamped.trace_id = fresh_trace_id();
    stamped.parent_span = req.id;  // the client-side span this submit is
    to_send = &stamped;
  }
  {
    TELEM_TRACE_SCOPE("net.send");
    if (to_send->trace_id != 0 && to_send->method == "submit")
      TELEM_TRACE_FLOW_BEGIN("net.request", to_send->trace_id);
    if (!net::write_frame(socket_, net::encode_request(*to_send))) {
      if (error) *error = "write failed (connection lost)";
      socket_.close();
      return false;
    }
  }
  return true;
}

std::optional<net::Response> Client::recv(std::string* error) {
  if (!socket_.valid()) {
    if (error) *error = "not connected";
    return std::nullopt;
  }
  std::string frame;
  switch (net::read_frame(socket_, &frame, net::kMaxFrameBytes)) {
    case net::FrameRead::kFrame:
      break;
    case net::FrameRead::kEof:
      if (error) *error = "connection closed";
      socket_.close();
      return std::nullopt;
    case net::FrameRead::kError:
      if (error) *error = "read failed (connection lost mid-frame)";
      socket_.close();
      return std::nullopt;
    case net::FrameRead::kOversized:
      if (error) *error = "oversized response frame";
      socket_.close();
      return std::nullopt;
  }
  auto resp = net::decode_response(frame, error);
  // Close the distributed flow on the terminal frame only: for a watch
  // subscription every streaming frame echoes the id, but the chain has one
  // end, and it is the response in the one-per-request accounting sense.
  if (resp && resp->trace_id != 0 && !resp->streaming) {
    TELEM_TRACE_SCOPE("net.recv");
    TELEM_TRACE_FLOW_END("net.request", resp->trace_id);
  }
  return resp;
}

std::optional<net::Response> Client::call(const net::Request& req,
                                          std::string* error) {
  if (!send(req, error)) return std::nullopt;
  return recv(error);
}

}  // namespace rebooting::rebootctl
