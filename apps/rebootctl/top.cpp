#include "rebootctl/top.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "core/json.h"
#include "core/table.h"
#include "net/protocol.h"
#include "rebootctl/client.h"

namespace rebooting::rebootctl {

namespace {

using core::JsonValue;

const JsonValue* find(const JsonValue& obj, const char* key) {
  if (!obj.is_object() || !obj.contains(key)) return nullptr;
  return &obj.at(key);
}

double num_or(const JsonValue& obj, const char* key, double fallback = 0.0) {
  const JsonValue* v = find(obj, key);
  if (v == nullptr || v->type() != JsonValue::Type::kNumber) return fallback;
  return v->number();
}

/// "host:port" -> pair; a bare "4700" means 127.0.0.1. Returns false on an
/// unparseable port.
bool parse_shard(const std::string& spec, std::string* host,
                 std::uint16_t* port) {
  std::string port_text = spec;
  *host = "127.0.0.1";
  const auto colon = spec.rfind(':');
  if (colon != std::string::npos) {
    *host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  const long value = std::strtol(port_text.c_str(), nullptr, 10);
  if (value <= 0 || value > 65535) return false;
  *port = static_cast<std::uint16_t>(value);
  return true;
}

struct PoolRow {
  std::string pool;
  double depth = 0.0;
  double capacity = 0.0;
  double in_flight = 0.0;
  double workers = 0.0;
  double breakers_open = 0.0;
};

/// Everything one table row set / one JSON shard entry needs, extracted from
/// a `watch` frame body (and the previous frame, for client-side scheduler
/// rates — those counters live in Scheduler::stats(), not the registry, so
/// the server's sampler cannot rate them for us).
struct ShardView {
  std::string shard;
  bool ok = false;
  std::string error;
  double t_seconds = 0.0;
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double queue_depth = 0.0;
  double outstanding = 0.0;
  double preempts_per_s = 0.0;
  double steals_per_s = 0.0;
  double slices_per_s = 0.0;
  std::vector<PoolRow> pools;
  JsonValue pools_json;  ///< verbatim body.pools for --json passthrough
  JsonValue sched_json;  ///< verbatim body.sched (absolute counts)
  JsonValue cache_json;  ///< verbatim body.cache (per-cache hit/miss counts)
};

ShardView extract(const std::string& shard, const JsonValue& body,
                  const JsonValue& prev) {
  ShardView view;
  view.shard = shard;
  view.ok = true;
  view.t_seconds = num_or(body, "t_seconds");
  view.outstanding = num_or(body, "outstanding");

  if (const JsonValue* rates = find(body, "rates"))
    if (const JsonValue* per_second = find(*rates, "per_second"))
      view.req_per_s = num_or(*per_second, "net.requests");

  if (const JsonValue* histograms = find(body, "histograms"))
    if (const JsonValue* latency = find(*histograms, "net.request_seconds")) {
      view.p50_ms = num_or(*latency, "p50") * 1.0e3;
      view.p99_ms = num_or(*latency, "p99") * 1.0e3;
    }

  if (const JsonValue* pools = find(body, "pools")) {
    view.pools_json = *pools;
    for (const auto& [name, pool] : pools->object()) {
      PoolRow row;
      row.pool = name;
      row.depth = num_or(pool, "queue_depth");
      row.capacity = num_or(pool, "queue_capacity");
      row.in_flight = num_or(pool, "in_flight");
      row.workers = num_or(pool, "workers");
      row.breakers_open = num_or(pool, "breakers_open");
      view.queue_depth += row.depth;
      view.pools.push_back(std::move(row));
    }
  }

  if (const JsonValue* sched = find(body, "sched")) {
    view.sched_json = *sched;
    const double dt = view.t_seconds - num_or(prev, "t_seconds");
    const JsonValue* prev_sched = find(prev, "sched");
    if (dt > 0.0 && prev_sched != nullptr) {
      const auto rate = [&](const char* key) {
        return (num_or(*sched, key) - num_or(*prev_sched, key)) / dt;
      };
      view.preempts_per_s = rate("preempts");
      view.steals_per_s = rate("steals");
      view.slices_per_s = rate("slices");
    }
  }

  if (const JsonValue* cache = find(body, "cache")) view.cache_json = *cache;
  return view;
}

JsonValue json_of_view(const ShardView& view) {
  const auto num = [](double v) { return JsonValue::make_number(v); };
  JsonValue::Members m;
  m.emplace_back("shard", JsonValue::make_string(view.shard));
  m.emplace_back("ok", JsonValue::make_bool(view.ok));
  if (!view.ok) {
    m.emplace_back("error", JsonValue::make_string(view.error));
    return JsonValue::make_object(std::move(m));
  }
  m.emplace_back("t_seconds", num(view.t_seconds));
  m.emplace_back("req_per_s", num(view.req_per_s));
  m.emplace_back("p50_ms", num(view.p50_ms));
  m.emplace_back("p99_ms", num(view.p99_ms));
  m.emplace_back("queue_depth", num(view.queue_depth));
  m.emplace_back("outstanding", num(view.outstanding));
  if (!view.pools_json.is_null()) m.emplace_back("pools", view.pools_json);
  if (!view.sched_json.is_null()) m.emplace_back("sched", view.sched_json);
  if (!view.cache_json.is_null()) m.emplace_back("cache", view.cache_json);
  return JsonValue::make_object(std::move(m));
}

std::string render_table(const std::vector<ShardView>& views) {
  core::Table table({"shard", "pool", "depth", "infl", "brk", "req/s",
                     "p50_ms", "p99_ms", "pre/s", "stl/s", "slc/s"},
                    /*precision=*/1);
  for (const ShardView& view : views) {
    if (!view.ok) {
      table.add_row({view.shard, "(down: " + view.error + ")", std::string(),
                     std::string(), std::string(), std::string(),
                     std::string(), std::string(), std::string(),
                     std::string(), std::string()});
      continue;
    }
    bool first = true;
    std::vector<PoolRow> pools = view.pools;
    if (pools.empty()) pools.push_back(PoolRow{"-", 0, 0, 0, 0, 0});
    for (const PoolRow& pool : pools) {
      // Shard-level columns print once, on the shard's first row.
      if (first) {
        table.add_row({view.shard, pool.pool,
                       static_cast<std::int64_t>(pool.depth),
                       static_cast<std::int64_t>(pool.in_flight),
                       static_cast<std::int64_t>(pool.breakers_open),
                       view.req_per_s, view.p50_ms, view.p99_ms,
                       view.preempts_per_s, view.steals_per_s,
                       view.slices_per_s});
      } else {
        table.add_row({std::string(), pool.pool,
                       static_cast<std::int64_t>(pool.depth),
                       static_cast<std::int64_t>(pool.in_flight),
                       static_cast<std::int64_t>(pool.breakers_open),
                       std::string(), std::string(), std::string(),
                       std::string(), std::string(), std::string()});
      }
      first = false;
    }
  }
  return table.to_string();
}

net::Request watch_request(const TopOptions& options) {
  net::Request req;
  req.id = 1;
  req.method = "watch";
  req.tenant = options.tenant;
  JsonValue::Members params;
  params.emplace_back("interval_ms",
                      JsonValue::make_number(options.interval_ms));
  req.params = JsonValue::make_object(std::move(params));
  return req;
}

/// One shard's collector: a watch subscription drained by its own thread,
/// latest two frame bodies kept for rate math.
struct Collector {
  std::string shard;
  std::string host;
  std::uint16_t port = 0;
  Client client;
  std::thread thread;

  std::mutex mutex;
  bool closed = false;
  bool transport_error = false;
  std::string error;
  JsonValue latest;
  JsonValue prev;
};

void collect(Collector* c, const net::Request& req) {
  std::string error;
  if (!c->client.connect(c->host, c->port, &error) ||
      !c->client.send(req, &error)) {
    const std::lock_guard<std::mutex> lock(c->mutex);
    c->closed = true;
    c->transport_error = true;
    c->error = error;
    return;
  }
  for (;;) {
    auto resp = c->client.recv(&error);
    const std::lock_guard<std::mutex> lock(c->mutex);
    if (!resp) {
      // EOF after shutdown_read() is our own teardown, not a shard failure.
      c->closed = true;
      c->transport_error = error != "connection closed";
      c->error = error;
      return;
    }
    if (!resp->streaming) {  // terminal frame: the server is stopping
      c->closed = true;
      c->error = resp->summary;
      return;
    }
    c->prev = std::move(c->latest);
    c->latest = std::move(resp->body);
  }
}

int run_once(const TopOptions& options) {
  std::vector<ShardView> views;
  for (const std::string& spec : options.shards) {
    ShardView view;
    view.shard = spec;
    std::string host;
    std::uint16_t port = 0;
    std::string error;
    Client client;
    std::optional<net::Response> resp;
    if (!parse_shard(spec, &host, &port)) {
      view.error = "unparseable shard spec";
    } else if (!client.connect(host, port, &error)) {
      view.error = error;
    } else if (resp = client.call(watch_request(options), &error); !resp) {
      // call() returns the watch verb's immediate first frame; disconnecting
      // afterwards is how a watch client unsubscribes.
      view.error = error;
    } else if (resp->status != net::Status::kOk) {
      view.error = net::to_string(resp->status) + ": " + resp->summary;
    } else {
      view = extract(spec, resp->body, JsonValue());
    }
    views.push_back(std::move(view));
  }

  if (options.json) {
    JsonValue::Members root;
    root.emplace_back("interval_ms",
                      JsonValue::make_number(options.interval_ms));
    std::vector<JsonValue> shards;
    for (const ShardView& view : views) shards.push_back(json_of_view(view));
    root.emplace_back("shards", JsonValue::make_array(std::move(shards)));
    std::printf("%s\n",
                core::json_dump(JsonValue::make_object(std::move(root)))
                    .c_str());
  } else {
    std::printf("%s", render_table(views).c_str());
  }
  return std::all_of(views.begin(), views.end(),
                     [](const ShardView& v) { return v.ok; })
             ? 0
             : 1;
}

int run_live(const TopOptions& options) {
  std::vector<std::unique_ptr<Collector>> collectors;
  const net::Request req = watch_request(options);
  for (const std::string& spec : options.shards) {
    auto c = std::make_unique<Collector>();
    c->shard = spec;
    if (!parse_shard(spec, &c->host, &c->port)) {
      c->closed = true;
      c->transport_error = true;
      c->error = "unparseable shard spec";
    } else {
      c->thread = std::thread(collect, c.get(), req);
    }
    collectors.push_back(std::move(c));
  }

  std::size_t frame = 0;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options.interval_ms));
    std::vector<ShardView> views;
    bool all_closed = true;
    for (const auto& c : collectors) {
      const std::lock_guard<std::mutex> lock(c->mutex);
      if (!c->closed) all_closed = false;
      if (c->latest.is_null()) {
        ShardView view;
        view.shard = c->shard;
        view.error = c->closed ? (c->error.empty() ? "closed" : c->error)
                               : "connecting";
        views.push_back(std::move(view));
      } else {
        views.push_back(extract(c->shard, c->latest, c->prev));
      }
    }
    ++frame;
    // Home + clear-to-end repaint; cheaper than full clears and flicker-free
    // on every terminal that made it past 1980.
    std::printf("\x1b[H\x1b[J%s\nshards: %zu   interval: %.0f ms   frame: %zu"
                "   (ctrl-c quits)\n",
                render_table(views).c_str(), collectors.size(),
                options.interval_ms, frame);
    std::fflush(stdout);
    if (all_closed) break;
    if (options.frames != 0 && frame >= options.frames) break;
  }

  int exit_code = 0;
  for (const auto& c : collectors) {
    c->client.shutdown_read();  // unblocks a recv() parked on the socket
    if (c->thread.joinable()) c->thread.join();
    const std::lock_guard<std::mutex> lock(c->mutex);
    if (c->transport_error) exit_code = 1;
  }
  return exit_code;
}

}  // namespace

int run_top(const TopOptions& options) {
  if (options.shards.empty()) {
    std::fprintf(stderr, "rebootctl top: no shards given\n");
    return 2;
  }
  return options.once ? run_once(options) : run_live(options);
}

}  // namespace rebooting::rebootctl
