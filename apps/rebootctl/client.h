// Client half of the rebootd wire protocol: one Client is one TCP
// connection. Two usage modes:
//
//   call()        synchronous request/response — the CLI's mode
//   send()/recv() pipelined — keep a window of requests in flight on one
//                 connection and match responses by id at the caller
//                 (loadgen's mode; a single connection then sustains far
//                 more than 1/RTT requests per second)
//
// A Client is single-threaded: callers wanting concurrency open one Client
// per thread (connections are cheap, and per-connection ordering keeps the
// accounting simple).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/protocol.h"
#include "net/socket.h"

namespace rebooting::rebootctl {

class Client {
 public:
  Client() = default;

  /// Connects; false (with *error) on failure.
  bool connect(const std::string& host, std::uint16_t port,
               std::string* error = nullptr);
  bool connected() const { return socket_.valid(); }
  void close() { socket_.close(); }
  /// Cross-thread unblock: a recv() parked on this connection returns EOF
  /// ("connection closed"). How `top` tears down its collector threads.
  void shutdown_read() { socket_.shutdown_read(); }

  /// Writes one request frame; false on a dead connection. When the process
  /// is tracing (REBOOTING_TRACE), submits without a trace_id get a fresh
  /// process-unique one stamped on the wire copy and a "net.request" flow
  /// opened under it; recv() closes the flow on the matching terminal frame.
  bool send(const net::Request& req, std::string* error = nullptr);
  /// Reads one response frame; nullopt on EOF, error, or undecodable frame
  /// (*error distinguishes them). Blocks until a frame arrives.
  std::optional<net::Response> recv(std::string* error = nullptr);

  /// send + recv. Only valid when no pipelined requests are outstanding.
  std::optional<net::Response> call(const net::Request& req,
                                    std::string* error = nullptr);

 private:
  net::Socket socket_;
};

}  // namespace rebooting::rebootctl
