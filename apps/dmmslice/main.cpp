// dmmslice — the crash/resume harness for sliced DMM execution.
//
// Two modes over the same deterministically generated planted 3-SAT
// instance (gen-seed fixes the formula, rng-seed fixes the trajectory):
//
//   dmmslice solve ...               one uninterrupted solve_from(); prints
//                                    the trajectory fingerprint as JSON.
//   dmmslice slice --ckpt F ...      budgeted advance() loop; after every
//                                    slice the checkpoint is written to F
//                                    atomically (tmp + rename), so a SIGKILL
//                                    at ANY instant leaves a loadable file.
//                                    Re-running the same command resumes
//                                    from F and prints the same fingerprint.
//
// The chaos script (scripts/chaos_kill_resume.sh) SIGKILLs `slice` mid-run
// several times and asserts the final fingerprint is byte-identical to the
// `solve` one — the process-death leg of the DESIGN.md §12 guarantee that
// slicing never changes values, only cut points.
//
// Exit codes: 0 fingerprint written; 2 usage error; 3 unreadable or foreign
// checkpoint (corrupt file, wrong instance, tampered payload).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/json.h"
#include "core/random.h"
#include "memcomputing/dmm.h"
#include "memcomputing/sat.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

namespace {

struct Args {
  std::string mode;
  std::uint64_t gen_seed = 1234;
  std::uint64_t rng_seed = 99;
  std::size_t vars = 40;
  std::size_t clauses = 168;
  std::size_t max_steps = 400000;
  std::size_t steps_per_slice = 32;
  double sleep_ms = 0.0;
  std::string ckpt_path;
  std::string out_path;
};

int usage() {
  std::cerr
      << "usage: dmmslice solve|slice [--gen-seed N] [--rng-seed N]\n"
         "               [--vars N] [--clauses N] [--max-steps N]\n"
         "               [--steps N] [--sleep-ms X] [--ckpt FILE] [--out FILE]\n"
         "  solve  uninterrupted run; prints the trajectory fingerprint\n"
         "  slice  budgeted advance loop, checkpointing to --ckpt after\n"
         "         every slice (required); resumes from --ckpt if present\n";
  return 2;
}

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args args;
  args.mode = argv[1];
  if (args.mode != "solve" && args.mode != "slice") return std::nullopt;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return std::nullopt;
    const std::string value = argv[++i];
    try {
      if (flag == "--gen-seed")
        args.gen_seed = std::stoull(value);
      else if (flag == "--rng-seed")
        args.rng_seed = std::stoull(value);
      else if (flag == "--vars")
        args.vars = std::stoul(value);
      else if (flag == "--clauses")
        args.clauses = std::stoul(value);
      else if (flag == "--max-steps")
        args.max_steps = std::stoul(value);
      else if (flag == "--steps")
        args.steps_per_slice = std::stoul(value);
      else if (flag == "--sleep-ms")
        args.sleep_ms = std::stod(value);
      else if (flag == "--ckpt")
        args.ckpt_path = value;
      else if (flag == "--out")
        args.out_path = value;
      else
        return std::nullopt;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (args.mode == "slice" && args.ckpt_path.empty()) return std::nullopt;
  if (args.steps_per_slice == 0) return std::nullopt;
  return args;
}

/// Everything slicing must preserve, serialized with exact doubles — the
/// comparison in the chaos script is a byte-level diff of this document.
std::string fingerprint(const DmmResult& r) {
  std::ostringstream os;
  os << "{\n"
     << "  \"satisfied\": " << (r.satisfied ? "true" : "false") << ",\n"
     << "  \"steps\": " << r.steps << ",\n"
     << "  \"steps_to_best\": " << r.steps_to_best << ",\n"
     << "  \"sim_time\": " << core::json_number(r.sim_time) << ",\n"
     << "  \"best_unsatisfied\": " << r.best_unsatisfied << ",\n"
     << "  \"max_abs_voltage\": " << core::json_number(r.max_abs_voltage)
     << ",\n"
     << "  \"hit_limit\": " << (r.hit_limit ? "true" : "false") << ",\n"
     << "  \"assignment\": \"";
  for (const bool b : r.assignment) os << (b ? '1' : '0');
  os << "\"\n}\n";
  return os.str();
}

/// Write-then-rename: the path never holds a torn document, whatever
/// instant the process dies at.
bool atomic_write(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out << contents;
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void emit(const Args& args, const DmmResult& result) {
  const std::string doc = fingerprint(result);
  if (!args.out_path.empty()) atomic_write(args.out_path, doc);
  std::cout << doc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return usage();
  const Args& args = *parsed;

  core::Rng gen(args.gen_seed);
  const auto inst = planted_ksat(gen, args.vars, args.clauses, 3);
  DmmOptions opts;
  opts.max_steps = args.max_steps;
  const DmmSolver solver(inst.cnf, opts);

  // The trajectory's randomness: v0 and the solve stream both come from
  // rng-seed, identically in both modes.
  core::Rng rng(args.rng_seed);
  std::vector<core::Real> v0(args.vars);
  for (auto& v : v0) v = rng.uniform(-1.0, 1.0);

  if (args.mode == "solve") {
    const DmmResult result = solver.solve_from(std::move(v0), rng);
    emit(args, result);
    return 0;
  }

  core::Checkpoint ckpt;
  if (const auto doc = read_file(args.ckpt_path)) {
    const auto loaded = core::Checkpoint::from_json(*doc);
    if (!loaded) {
      std::cerr << "dmmslice: unreadable checkpoint " << args.ckpt_path
                << '\n';
      return 3;
    }
    ckpt = *loaded;
  } else {
    ckpt = solver.begin(std::move(v0), rng);
  }

  core::Workspace ws;
  DmmSliceOutcome out;
  try {
    for (;;) {
      out = solver.advance(ckpt, core::SliceBudget::steps(args.steps_per_slice),
                           ws);
      if (!atomic_write(args.ckpt_path, ckpt.json_dump())) {
        std::cerr << "dmmslice: cannot write checkpoint " << args.ckpt_path
                  << '\n';
        return 3;
      }
      if (out.done) break;
      if (args.sleep_ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(args.sleep_ms));
    }
  } catch (const std::invalid_argument& err) {
    std::cerr << "dmmslice: " << err.what() << '\n';
    return 3;
  }
  emit(args, out.result);
  return 0;
}
