// The rebootd daemon core: a sched::Scheduler wrapped in the wire protocol
// of apps/net, embeddable in-process (tests, benches) or behind main().
//
// Thread architecture — no stage ever blocks another stage's progress:
//
//   accept loop (1)    poll-based; hands each connection a reader thread.
//                      Admission problems never reach this thread.
//   readers (1/conn)   read_frame -> decode -> admission (quota, then
//                      queue high-water) -> coalesce -> Scheduler::submit.
//                      Submission uses kReject backpressure, so a reader
//                      never sleeps on a full queue: the overload answer is
//                      a typed frame, written immediately.
//   pumps (N)          bridge the scheduler's std::future completions back
//                      to sockets: block on future.get(), map the
//                      JobDisposition to a wire Status, fan the response out
//                      to every coalesced waiter (per-connection write
//                      mutex; a reader and a pump may share a socket).
//   watch pump (1)     pushes periodic metrics frames (telemetry::Sampler
//                      ticks) to every `watch` subscriber; at stop() it owes
//                      each subscriber one terminal frame.
//
// Accounting invariant: every frame that decodes into a request gets exactly
// one response, including during stop() — the ordered teardown (stop
// accepting -> unblock readers -> scheduler shutdown flushes queued jobs as
// kFlushed -> pumps drain every remaining future) turns in-flight work into
// kShuttingDown responses instead of dropping it.
//
// Coalescing: identical submits (net::coalesce_key) arriving within
// coalesce_window_ms share one scheduler job; every waiter gets its own
// response frame (coalesced=true for the riders). The window keys on the
// *leader's* arrival, so a hot key cannot chain a window forever.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/socket.h"
#include "rebootd/tenancy.h"
#include "scheduler/scheduler.h"
#include "telemetry/sampler.h"

namespace rebooting::rebootd {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with Server::port()
  /// Worker threads of the classical-cpu pool (the only pool rebootd opens
  /// by default; engine pools are added by main() flags or test setup).
  std::size_t cpu_workers = 2;
  std::size_t queue_capacity = 256;
  /// Queue depth at which submits are rejected kOverloaded. 0 = queue
  /// capacity. Keeping it below capacity leaves headroom for races between
  /// the depth check and the enqueue (which then surface as kRejected, the
  /// same wire status).
  std::size_t admission_high_water = 0;
  std::size_t pump_threads = 2;
  std::size_t max_frame_bytes = net::kMaxFrameBytes;
  double coalesce_window_ms = 5.0;
  /// RetryPolicy for submitted workloads; all workloads are self-contained,
  /// so cpu_fallback is always enabled.
  std::size_t retry_attempts = 3;
  /// Consecutive-failure threshold of each worker's breaker (0 = disabled).
  std::size_t breaker_threshold = 8;
  TenancyConfig tenancy;
  bool enable_telemetry = true;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adds an engine pool before start() (classical-cpu is built in).
  void add_pool(core::AcceleratorKind kind, std::size_t workers,
                const core::AcceleratorFactory& factory);

  /// Binds, spawns the accept loop and pumps. False on bind failure.
  bool start(std::string* error = nullptr);
  std::uint16_t port() const { return port_; }

  /// Ordered teardown; every accepted request still gets a response.
  /// Idempotent.
  void stop();

  /// True once a client sent the "shutdown" method; the owner of the Server
  /// decides when to act on it (main() polls it next to the signal flag).
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  const ServerConfig& config() const { return config_; }

 private:
  /// One accepted socket, shared by its reader thread and every pump that
  /// still owes it a response. The fd closes when the last owner drops.
  struct Connection {
    net::Socket socket;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
  };

  /// One response owed: which connection, which wire id, when it arrived.
  struct Waiter {
    std::shared_ptr<Connection> conn;
    std::uint64_t wire_id = 0;
    /// The waiter's own distributed trace context (0 = none), echoed in its
    /// response frame. Coalesced riders keep their own ids even though the
    /// flow chain follows the leader's.
    std::uint64_t trace_id = 0;
    Clock::time_point received{};
    bool coalesced = false;
    std::string tenant;
  };

  /// The waiters sharing one scheduler job. closed flips (under mutex) when
  /// the pump starts fanning out, so late attach attempts start a new job.
  struct Fanout {
    std::mutex mutex;
    bool closed = false;
    std::vector<Waiter> waiters;
  };

  /// Pump work item: one scheduler future plus its fanout.
  struct Pending {
    std::future<core::JobResult> future;
    std::shared_ptr<Fanout> fanout;
    std::string key;  ///< coalescer entry to retire ("" = uncoalesced)
    std::uint64_t rid = 0;
    /// "net.request" flow-chain id: the client's trace_id when the leader
    /// carried one, else the server-local rid. `remote` distinguishes the
    /// two at complete(): a remote chain gets a flow *step* at reply time
    /// (the client's recv closes it), a local one gets the flow end here.
    std::uint64_t flow = 0;
    bool remote = false;
    /// Which pool the job went to — needed to derive the retry_after_ms
    /// hint if the scheduler itself answers kOverloaded.
    core::AcceleratorKind kind = core::AcceleratorKind::kClassicalCpu;
  };

  struct ReaderSlot {
    std::thread thread;
    std::shared_ptr<Connection> conn;
    std::atomic<bool> done{false};
  };

  /// One live `watch` subscription: where to push frames and how often.
  struct WatchSub {
    std::shared_ptr<Connection> conn;
    std::uint64_t wire_id = 0;
    std::uint64_t trace_id = 0;
    double interval_ms = 500.0;
    Clock::time_point next_due{};
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn, std::uint64_t conn_id);
  void pump_loop(std::size_t index);
  /// Pushes periodic metrics frames to every watch subscriber; on shutdown,
  /// sends each one its terminal (non-streaming) kShuttingDown frame so the
  /// one-response-per-request accounting closes for streams too.
  void watch_loop();
  /// Decodes and dispatches one frame; false = hang up the connection.
  bool handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::string& frame);
  void handle_submit(const std::shared_ptr<Connection>& conn,
                     const net::Request& req, std::uint64_t rid);
  void handle_watch(const std::shared_ptr<Connection>& conn,
                    const net::Request& req);
  net::Response status_response(const net::Request& req) const;
  /// Body of the `metrics` verb and of every watch frame: one fresh sampler
  /// tick (counters, gauges, histogram quantiles), counter rates over the
  /// last sampling interval, and Scheduler::stats().
  core::JsonValue metrics_body();
  /// retry_after_ms hint for kOverloaded rejections, derived from the load
  /// actually present: queued jobs of `kind` divided across its workers,
  /// each costing the observed mean service time (1 ms floor).
  double overload_retry_hint(core::AcceleratorKind kind) const;
  void send_response(const std::shared_ptr<Connection>& conn,
                     const net::Response& resp);
  /// Completes one fanout from a settled future (or exception).
  void complete(Pending&& pending);
  void reap_readers(bool all);

  ServerConfig config_;
  sched::Scheduler scheduler_;
  TenantGovernor governor_;
  /// Samples the process-wide registry for the metrics/watch verbs. Driven
  /// by tick() from this class (watch cadence), never by its own thread.
  telemetry::Sampler sampler_;
  net::Listener listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> next_rid_{1};
  std::atomic<std::int64_t> active_connections_{0};

  std::thread accept_thread_;
  std::mutex readers_mutex_;
  std::list<ReaderSlot> readers_;

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::deque<Pending> pending_;
  bool pending_closed_ = false;
  std::vector<std::thread> pumps_;

  std::mutex watch_mutex_;
  std::condition_variable watch_cv_;
  std::vector<WatchSub> watchers_;
  bool watch_closed_ = false;
  std::thread watch_thread_;

  std::mutex coalesce_mutex_;
  struct CoalesceEntry {
    std::shared_ptr<Fanout> fanout;
    Clock::time_point created_at{};
  };
  std::map<std::string, CoalesceEntry> coalesce_;
};

}  // namespace rebooting::rebootd
