// rebootd — the networked accelerator daemon. One process is one shard; a
// fleet of shards behind rebootctl's consistent-hash router is the service.
//
//   rebootd --port 4700 --cpu-workers 4 --engines
//   REBOOTING_FAULTS=plan.json REBOOTING_TRACE=shard.trace.json rebootd ...
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "memcomputing/accelerator.h"
#include "oscillator/comparator.h"
#include "quantum/compiler.h"
#include "quantum/runtime.h"
#include "rebootd/server.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--cpu-workers N]\n"
               "          [--queue-capacity N] [--high-water N] [--pumps N]\n"
               "          [--coalesce-ms F] [--retries N] [--engines]\n"
               "          [--quota-rate F --quota-burst F]\n"
               "Port 0 (default) picks an ephemeral port; the bound port is\n"
               "printed on stdout as 'rebootd listening on HOST:PORT'.\n",
               argv0);
  std::exit(2);
}

double number_arg(int argc, char** argv, int& i, const char* argv0) {
  if (i + 1 >= argc) usage(argv0);
  return std::atof(argv[++i]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rebooting;

  rebootd::ServerConfig config;
  bool engines = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--host")) {
      if (i + 1 >= argc) usage(argv[0]);
      config.host = argv[++i];
    } else if (!std::strcmp(arg, "--port")) {
      config.port = static_cast<std::uint16_t>(number_arg(argc, argv, i, argv[0]));
    } else if (!std::strcmp(arg, "--cpu-workers")) {
      config.cpu_workers = static_cast<std::size_t>(number_arg(argc, argv, i, argv[0]));
    } else if (!std::strcmp(arg, "--queue-capacity")) {
      config.queue_capacity = static_cast<std::size_t>(number_arg(argc, argv, i, argv[0]));
    } else if (!std::strcmp(arg, "--high-water")) {
      config.admission_high_water = static_cast<std::size_t>(number_arg(argc, argv, i, argv[0]));
    } else if (!std::strcmp(arg, "--pumps")) {
      config.pump_threads = static_cast<std::size_t>(number_arg(argc, argv, i, argv[0]));
    } else if (!std::strcmp(arg, "--coalesce-ms")) {
      config.coalesce_window_ms = number_arg(argc, argv, i, argv[0]);
    } else if (!std::strcmp(arg, "--retries")) {
      config.retry_attempts = static_cast<std::size_t>(number_arg(argc, argv, i, argv[0]));
    } else if (!std::strcmp(arg, "--quota-rate")) {
      config.tenancy.default_quota.rate_per_s = number_arg(argc, argv, i, argv[0]);
    } else if (!std::strcmp(arg, "--quota-burst")) {
      config.tenancy.default_quota.burst = number_arg(argc, argv, i, argv[0]);
    } else if (!std::strcmp(arg, "--engines")) {
      engines = true;
    } else {
      usage(argv[0]);
    }
  }

  rebootd::Server server(config);
  if (engines) {
    server.add_pool(core::AcceleratorKind::kQuantum, 1,
                    quantum::QuantumAccelerator::factory(
                        {.topology = quantum::Topology::line(4)}));
    server.add_pool(core::AcceleratorKind::kOscillator, 1,
                    oscillator::OscillatorAccelerator::factory({}));
    server.add_pool(core::AcceleratorKind::kMemcomputing, 1,
                    memcomputing::MemcomputingAccelerator::factory());
  }

  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "rebootd: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::printf("rebootd listening on %s:%u\n", server.config().host.c_str(),
              server.port());
  std::fflush(stdout);

  while (!g_stop.load() && !server.shutdown_requested())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.stop();
  std::printf("rebootd stopped\n");
  return 0;
}
