#include "rebootd/tenancy.h"

#include <algorithm>

namespace rebooting::rebootd {

TenantGovernor::TenantGovernor(TenancyConfig config)
    : config_(std::move(config)) {}

const TenantQuota& TenantGovernor::quota_for(
    const std::string& tenant) const {
  const auto it = config_.quotas.find(tenant);
  return it != config_.quotas.end() ? it->second : config_.default_quota;
}

Admission TenantGovernor::admit(const std::string& tenant,
                                Clock::time_point now) {
  std::lock_guard lock(mutex_);
  const TenantQuota& quota = quota_for(tenant);
  auto [it, fresh] = buckets_.try_emplace(tenant);
  Bucket& bucket = it->second;
  if (fresh) {
    bucket.tokens = quota.burst;
    bucket.refilled_at = now;
  }

  Admission result;
  if (quota.rate_per_s > 0.0) {
    const double elapsed =
        std::chrono::duration<double>(now - bucket.refilled_at).count();
    bucket.tokens =
        std::min(quota.burst, bucket.tokens + elapsed * quota.rate_per_s);
    bucket.refilled_at = now;
    if (bucket.tokens < 1.0) {
      ++bucket.rejected;
      result.admitted = false;
      result.retry_after_ms =
          (1.0 - bucket.tokens) / quota.rate_per_s * 1000.0;
      return result;
    }
    bucket.tokens -= 1.0;
  }

  if (config_.fair_share_stride > 0) {
    const int penalty =
        static_cast<int>(bucket.in_flight / config_.fair_share_stride);
    result.priority_bias =
        -std::min(penalty, config_.max_priority_penalty);
  }
  ++bucket.in_flight;
  ++bucket.admitted;
  return result;
}

void TenantGovernor::release(const std::string& tenant) {
  std::lock_guard lock(mutex_);
  const auto it = buckets_.find(tenant);
  if (it != buckets_.end() && it->second.in_flight > 0)
    --it->second.in_flight;
}

std::map<std::string, TenantStats> TenantGovernor::stats() const {
  std::lock_guard lock(mutex_);
  std::map<std::string, TenantStats> out;
  for (const auto& [tenant, bucket] : buckets_)
    out.emplace(tenant, TenantStats{bucket.tokens, bucket.in_flight,
                                    bucket.admitted, bucket.rejected});
  return out;
}

}  // namespace rebooting::rebootd
