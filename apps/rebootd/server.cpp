#include "rebootd/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/cache.h"
#include "rebootd/workloads.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace rebooting::rebootd {

namespace {

sched::SchedulerConfig scheduler_config(const ServerConfig& config) {
  sched::SchedulerConfig sc;
  sc.queue_capacity = config.queue_capacity;
  // kReject, never kBlock: a reader thread must answer "overloaded" and move
  // to its next frame, not sleep inside submit holding the connection.
  sc.backpressure = sched::BackpressurePolicy::kReject;
  sc.breaker.failure_threshold = config.breaker_threshold;
  // Every rebootd workload is self-contained (cpu_fallback is uniformly on),
  // so jobs are marked stealable and idle pools may drain overloaded ones.
  sc.work_stealing = true;
  return sc;
}

/// Disposition-to-wire mapping: the reason a job never ran (or ran) is the
/// client's typed outcome.
net::Status status_of(const core::JobResult& result) {
  switch (result.disposition) {
    case core::JobDisposition::kExecuted:
      return result.ok ? net::Status::kOk : net::Status::kFailed;
    case core::JobDisposition::kRejected:
    case core::JobDisposition::kShed:
      return net::Status::kOverloaded;
    case core::JobDisposition::kFlushed:
      return net::Status::kShuttingDown;
    case core::JobDisposition::kDeadlineMissed:
      return net::Status::kDeadlineMissed;
    case core::JobDisposition::kCancelled:
      return net::Status::kCancelled;
  }
  return net::Status::kError;
}

core::JsonValue json_of_pool(const sched::PoolStats& pool) {
  core::JsonValue::Members m;
  const auto num = [](std::size_t v) {
    return core::JsonValue::make_number(static_cast<core::Real>(v));
  };
  m.emplace_back("workers", num(pool.workers));
  m.emplace_back("queue_depth", num(pool.queue_depth));
  m.emplace_back("queue_capacity", num(pool.queue_capacity));
  m.emplace_back("in_flight", num(pool.in_flight));
  m.emplace_back("jobs_completed", num(pool.jobs_completed));
  m.emplace_back("busy_seconds",
                 core::JsonValue::make_number(pool.busy_seconds));
  m.emplace_back("breakers_open", num(pool.breakers_open));
  return core::JsonValue::make_object(std::move(m));
}

/// One object per registered result cache (DESIGN.md §14): the compile,
/// DMM-solve, and scheduler-memo caches each report their counters, keyed by
/// their registry name.
core::JsonValue json_of_caches() {
  const auto num = [](std::uint64_t v) {
    return core::JsonValue::make_number(static_cast<core::Real>(v));
  };
  core::JsonValue::Members caches;
  for (const auto& [name, stats] : core::cache_stats_snapshot()) {
    core::JsonValue::Members c;
    c.emplace_back("hits", num(stats.hits));
    c.emplace_back("misses", num(stats.misses));
    c.emplace_back("inserts", num(stats.inserts));
    c.emplace_back("evictions", num(stats.evictions));
    c.emplace_back("expirations", num(stats.expirations));
    c.emplace_back("entries", num(stats.entries));
    c.emplace_back("bytes", num(stats.bytes));
    caches.emplace_back(name, core::JsonValue::make_object(std::move(c)));
  }
  return core::JsonValue::make_object(std::move(caches));
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      scheduler_(scheduler_config(config_)),
      governor_(config_.tenancy),
      sampler_(telemetry::Telemetry::instance().metrics()) {
  if (config_.admission_high_water == 0)
    config_.admission_high_water = config_.queue_capacity;
  if (config_.enable_telemetry) telemetry::Telemetry::set_enabled(true);
  scheduler_.add_pool(core::AcceleratorKind::kClassicalCpu,
                      config_.cpu_workers, core::CpuAccelerator::factory());
}

Server::~Server() { stop(); }

void Server::add_pool(core::AcceleratorKind kind, std::size_t workers,
                      const core::AcceleratorFactory& factory) {
  scheduler_.add_pool(kind, workers, factory);
}

bool Server::start(std::string* error) {
  if (running_.exchange(true)) return true;
  if (!listener_.listen_on(config_.host, config_.port, error)) {
    running_.store(false);
    return false;
  }
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.pump_threads);
       ++i)
    pumps_.emplace_back([this, i] { pump_loop(i); });
  {
    std::lock_guard lock(watch_mutex_);
    watch_closed_ = false;
  }
  watch_thread_ = std::thread([this] { watch_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false)) return;

  // 1. No new connections: running_ is false, so the accept loop exits at
  //    its next poll tick (<= 50 ms). Joining before close() keeps the
  //    listener fd single-threaded.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // 2. No new requests: unblock every reader's recv (write side stays open
  //    so responses already owed can still drain), then join readers.
  {
    std::lock_guard lock(readers_mutex_);
    for (auto& slot : readers_)
      if (slot.conn) slot.conn->socket.shutdown_read();
  }
  reap_readers(/*all=*/true);

  // 2b. Close the watch pump: readers are joined, so no new subscription can
  //     register. The pump exits its loop and sends each subscriber its
  //     terminal kShuttingDown frame (the subscription's one *response*)
  //     before the thread returns; the subscribers' Connection shared_ptrs
  //     keep the write sides alive until then.
  {
    std::lock_guard lock(watch_mutex_);
    watch_closed_ = true;
  }
  watch_cv_.notify_all();
  if (watch_thread_.joinable()) watch_thread_.join();

  // 3. Settle every accepted job: in-flight work finishes, queued work is
  //    flushed (kFlushed -> kShuttingDown on the wire). After this, every
  //    Pending future is ready.
  scheduler_.shutdown();

  // 4. Drain the pumps; they exit once the deque is empty and closed.
  {
    std::lock_guard lock(pending_mutex_);
    pending_closed_ = true;
  }
  pending_cv_.notify_all();
  for (auto& pump : pumps_)
    if (pump.joinable()) pump.join();
  pumps_.clear();
}

void Server::accept_loop() {
  telemetry::TraceRecorder::instance().set_thread_name("net accept");
  std::uint64_t conn_id = 0;
  while (running_.load(std::memory_order_acquire)) {
    net::Socket socket = listener_.accept(/*timeout_ms=*/50);
    reap_readers(/*all=*/false);
    if (!socket.valid()) continue;
    TELEM_COUNT("net.connections");
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(socket);
    std::lock_guard lock(readers_mutex_);
    auto& slot = readers_.emplace_back();
    slot.conn = conn;
    ReaderSlot* slot_ptr = &slot;
    const std::uint64_t id = ++conn_id;
    slot.thread = std::thread([this, conn, id, slot_ptr] {
      reader_loop(conn, id);
      slot_ptr->done.store(true, std::memory_order_release);
    });
  }
}

void Server::reap_readers(bool all) {
  std::list<ReaderSlot> finished;
  {
    std::lock_guard lock(readers_mutex_);
    for (auto it = readers_.begin(); it != readers_.end();) {
      if (all || it->done.load(std::memory_order_acquire)) {
        finished.splice(finished.end(), readers_, it++);
      } else {
        ++it;
      }
    }
  }
  for (auto& slot : finished)
    if (slot.thread.joinable()) slot.thread.join();
}

void Server::reader_loop(std::shared_ptr<Connection> conn,
                         std::uint64_t conn_id) {
  telemetry::TraceRecorder::instance().set_thread_name(
      "net reader " + std::to_string(conn_id));
  TELEM_GAUGE("net.connections_active",
              static_cast<core::Real>(
                  active_connections_.fetch_add(1, std::memory_order_relaxed) +
                  1));
  std::string frame;
  while (running_.load(std::memory_order_acquire)) {
    const net::FrameRead read =
        net::read_frame(conn->socket, &frame, config_.max_frame_bytes);
    if (read == net::FrameRead::kEof) break;
    if (read == net::FrameRead::kError) {
      // Mid-frame disconnect; anything already submitted still completes,
      // its write just fails against the dead socket.
      TELEM_COUNT("net.frame_errors");
      break;
    }
    if (read == net::FrameRead::kOversized) {
      TELEM_COUNT("net.frame_oversized");
      net::Response resp;
      resp.status = net::Status::kBadRequest;
      resp.summary = "frame exceeds " +
                     std::to_string(config_.max_frame_bytes) + " bytes";
      send_response(conn, resp);
      break;  // the unread body makes the stream unparseable; hang up
    }
    TELEM_COUNT("net.bytes_in", static_cast<core::Real>(frame.size() + 4));
    if (!handle_frame(conn, frame)) break;
  }
  // Note: the reader does NOT mark the connection closed — during stop() the
  // read side is shut down while pumps still owe responses on the write
  // side. `open` flips only when a write actually fails.
  TELEM_GAUGE("net.connections_active",
              static_cast<core::Real>(
                  active_connections_.fetch_sub(1, std::memory_order_relaxed) -
                  1));
}

bool Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          const std::string& frame) {
  TELEM_TRACE_SCOPE("net.recv");
  std::string error;
  const auto req = net::decode_request(frame, &error);
  if (!req) {
    // The framing is intact, so the connection stays usable; only this
    // request is unanswerable by id (we may not have one) — reply id 0.
    TELEM_COUNT("net.bad_request");
    net::Response resp;
    resp.status = net::Status::kBadRequest;
    resp.summary = error;
    send_response(conn, resp);
    return true;
  }
  TELEM_COUNT("net.requests");

  if (req->method == "ping") {
    net::Response resp;
    resp.id = req->id;
    resp.trace_id = req->trace_id;
    resp.status = net::Status::kOk;
    resp.summary = "pong";
    send_response(conn, resp);
    return true;
  }
  if (req->method == "status") {
    send_response(conn, status_response(*req));
    return true;
  }
  if (req->method == "metrics") {
    net::Response resp;
    resp.id = req->id;
    resp.trace_id = req->trace_id;
    resp.status = net::Status::kOk;
    resp.summary = "metrics";
    resp.body = metrics_body();
    send_response(conn, resp);
    return true;
  }
  if (req->method == "watch") {
    handle_watch(conn, *req);
    return true;
  }
  if (req->method == "shutdown") {
    // Flag first, reply second: a client that has read this response must
    // already be able to observe shutdown_requested().
    shutdown_requested_.store(true, std::memory_order_release);
    net::Response resp;
    resp.id = req->id;
    resp.trace_id = req->trace_id;
    resp.status = net::Status::kOk;
    resp.summary = "shutdown requested";
    send_response(conn, resp);
    return true;
  }
  if (req->method == "submit") {
    const std::uint64_t rid =
        next_rid_.fetch_add(1, std::memory_order_relaxed);
    // Trace adoption: a submit carrying a client trace_id continues the
    // client's "net.request" flow chain (the client already opened it at its
    // send); a bare submit starts a server-local chain keyed by rid.
    if (req->trace_id != 0)
      TELEM_TRACE_FLOW_STEP("net.request", req->trace_id);
    else
      TELEM_TRACE_FLOW_BEGIN("net.request", rid);
    handle_submit(conn, *req, rid);
    return true;
  }

  TELEM_COUNT("net.bad_request");
  net::Response resp;
  resp.id = req->id;
  resp.trace_id = req->trace_id;
  resp.status = net::Status::kBadRequest;
  resp.summary = "unknown method '" + req->method + "'";
  send_response(conn, resp);
  return true;
}

void Server::handle_submit(const std::shared_ptr<Connection>& conn,
                           const net::Request& req, std::uint64_t rid) {
  const auto now = Clock::now();
  net::Response reject;
  reject.id = req.id;
  reject.trace_id = req.trace_id;

  if (!scheduler_.has_pool(req.kind)) {
    TELEM_COUNT("net.bad_request");
    reject.status = net::Status::kBadRequest;
    reject.summary = "no pool for kind '" + core::to_string(req.kind) + "'";
    send_response(conn, reject);
    return;
  }
  std::string error;
  auto payload = build_workload(req, &error);
  if (!payload) {
    TELEM_COUNT("net.bad_request");
    reject.status = net::Status::kBadRequest;
    reject.summary = error;
    send_response(conn, reject);
    return;
  }

  // Admission: tenant quota first (cheapest, and per-tenant fairness must
  // not depend on global load), then the queue high-water mark.
  const Admission admission = governor_.admit(req.tenant, now);
  if (!admission.admitted) {
    TELEM_COUNT("net.rejected_quota");
    reject.status = net::Status::kQuotaExceeded;
    reject.summary = "tenant '" + req.tenant + "' over quota";
    reject.retry_after_ms = admission.retry_after_ms;
    send_response(conn, reject);
    return;
  }
  if (scheduler_.queue_depth(req.kind) >= config_.admission_high_water) {
    governor_.release(req.tenant);
    TELEM_COUNT("net.rejected_overloaded");
    reject.status = net::Status::kOverloaded;
    reject.summary = "queue high-water for '" + core::to_string(req.kind) +
                     "'";
    reject.retry_after_ms = overload_retry_hint(req.kind);
    send_response(conn, reject);
    return;
  }

  Waiter waiter;
  waiter.conn = conn;
  waiter.wire_id = req.id;
  waiter.trace_id = req.trace_id;
  waiter.received = now;
  waiter.tenant = req.tenant;

  // Coalescing: ride an identical in-window submit instead of re-running it.
  std::string key;
  if (!req.no_coalesce && config_.coalesce_window_ms > 0.0) {
    key = net::coalesce_key(req);
    std::lock_guard map_lock(coalesce_mutex_);
    const auto it = coalesce_.find(key);
    if (it != coalesce_.end() &&
        std::chrono::duration<double, std::milli>(now - it->second.created_at)
                .count() <= config_.coalesce_window_ms) {
      std::lock_guard fanout_lock(it->second.fanout->mutex);
      if (!it->second.fanout->closed) {
        waiter.coalesced = true;
        it->second.fanout->waiters.push_back(std::move(waiter));
        TELEM_COUNT("net.coalesced");
        return;  // the leader's pump completion answers this waiter too
      }
    }
  }

  auto fanout = std::make_shared<Fanout>();
  fanout->waiters.push_back(std::move(waiter));
  if (!key.empty()) {
    std::lock_guard map_lock(coalesce_mutex_);
    coalesce_[key] = CoalesceEntry{fanout, now};
  }

  sched::JobOptions opts;
  opts.priority = req.priority + admission.priority_bias;
  if (req.deadline_ms)
    opts.deadline = sched::deadline_in(std::chrono::duration_cast<
                                       sched::Clock::duration>(
        std::chrono::duration<double, std::milli>(*req.deadline_ms)));
  opts.retry.max_attempts = std::max<std::size_t>(1, config_.retry_attempts);
  opts.retry.cpu_fallback = true;  // every workload is self-contained
  opts.stealable = true;           // ...and so safe to run on any pool
  if (req.memo) {
    // Memoization identity: what runs (kind, work, params) — NOT who asked
    // (tenant) or how urgently (priority/deadline), so identical work
    // collapses across tenants. json_dump of params is canonical enough for
    // same-client repeats, same argument as coalesce_key().
    opts.memo_key = core::to_string(req.kind) + '\x1f' + req.work + '\x1f' +
                    core::json_dump(req.params);
  }

  Pending pending;
  pending.fanout = std::move(fanout);
  pending.key = std::move(key);
  pending.rid = rid;
  pending.flow = req.trace_id != 0 ? req.trace_id : rid;
  pending.remote = req.trace_id != 0;
  pending.kind = req.kind;
  try {
    TELEM_TRACE_SCOPE("net.enqueue");
    TELEM_TRACE_FLOW_STEP("net.request", pending.flow);
    pending.future = scheduler_.submit(
        req.tenant + "/" + req.work, req.kind, std::move(*payload), opts);
  } catch (const std::exception& e) {
    // Shutdown raced the running_ check; answer every waiter typed.
    net::Response resp;
    resp.status = net::Status::kShuttingDown;
    resp.summary = e.what();
    std::lock_guard fanout_lock(pending.fanout->mutex);
    pending.fanout->closed = true;
    for (const Waiter& w : pending.fanout->waiters) {
      resp.id = w.wire_id;
      resp.trace_id = w.trace_id;
      resp.coalesced = w.coalesced;
      send_response(w.conn, resp);
      governor_.release(w.tenant);
    }
    if (!pending.key.empty()) {
      std::lock_guard map_lock(coalesce_mutex_);
      coalesce_.erase(pending.key);
    }
    return;
  }

  {
    std::lock_guard lock(pending_mutex_);
    pending_.push_back(std::move(pending));
  }
  pending_cv_.notify_one();
}

void Server::pump_loop(std::size_t index) {
  telemetry::TraceRecorder::instance().set_thread_name(
      "net pump " + std::to_string(index));
  for (;;) {
    Pending pending;
    {
      std::unique_lock lock(pending_mutex_);
      pending_cv_.wait(lock,
                       [this] { return pending_closed_ || !pending_.empty(); });
      if (pending_.empty()) return;  // closed and drained
      pending = std::move(pending_.front());
      pending_.pop_front();
    }
    complete(std::move(pending));
  }
}

void Server::complete(Pending&& pending) {
  TELEM_TRACE_SCOPE("net.reply");
  TELEM_TRACE_FLOW_STEP("net.request", pending.flow);

  net::Response base;
  try {
    const core::JobResult result = pending.future.get();
    base.status = status_of(result);
    base.summary = result.summary;
    base.attempts = result.attempts;
    base.degraded = result.degraded;
    base.wall_seconds = result.wall_seconds;
    base.metrics = result.metrics;
    if (base.status == net::Status::kOverloaded)
      base.retry_after_ms = overload_retry_hint(pending.kind);
  } catch (const std::exception& e) {
    base.status = net::Status::kError;
    base.summary = e.what();
  }

  // Retire the coalescer entry *before* closing the fanout (map lock first,
  // matching handle_submit), so a new identical request starts a fresh job
  // instead of attaching to this closed one.
  if (!pending.key.empty()) {
    std::lock_guard map_lock(coalesce_mutex_);
    const auto it = coalesce_.find(pending.key);
    if (it != coalesce_.end() && it->second.fanout == pending.fanout)
      coalesce_.erase(it);
  }

  std::vector<Waiter> waiters;
  {
    std::lock_guard lock(pending.fanout->mutex);
    pending.fanout->closed = true;
    waiters = std::move(pending.fanout->waiters);
  }
  const auto now = Clock::now();
  for (const Waiter& waiter : waiters) {
    net::Response resp = base;
    resp.id = waiter.wire_id;
    resp.trace_id = waiter.trace_id;
    resp.coalesced = waiter.coalesced;
    send_response(waiter.conn, resp);
    TELEM_RECORD(
        "net.request_seconds",
        std::chrono::duration<core::Real>(now - waiter.received).count());
    governor_.release(waiter.tenant);
  }
  // A remote chain is closed by the client's recv; ending it here too would
  // give the flow two heads in the merged view.
  if (pending.remote)
    TELEM_TRACE_FLOW_STEP("net.request", pending.flow);
  else
    TELEM_TRACE_FLOW_END("net.request", pending.flow);
}

void Server::send_response(const std::shared_ptr<Connection>& conn,
                           const net::Response& resp) {
  const std::string frame = net::encode_response(resp);
  std::lock_guard lock(conn->write_mutex);
  if (!conn->open.load(std::memory_order_acquire)) return;
  if (!net::write_frame(conn->socket, frame)) {
    conn->open.store(false, std::memory_order_release);
    return;
  }
  TELEM_COUNT("net.responses");
  TELEM_COUNT("net.bytes_out", static_cast<core::Real>(frame.size() + 4));
}

double Server::overload_retry_hint(core::AcceleratorKind kind) const {
  // Estimate how long the backlog ahead of the client takes to drain: the
  // queued jobs of this kind run in `depth / workers` waves, each wave
  // costing the observed mean service time (1 ms floor before any job has
  // completed). A client that honors the hint re-arrives roughly when the
  // high-water mark clears instead of hammering a fixed 1 ms backoff.
  std::size_t depth = 0;
  std::size_t workers = 1;
  try {
    const sched::PoolStats stats = scheduler_.stats(kind);
    depth = stats.queue_depth;
    workers = std::max<std::size_t>(1, stats.workers);
  } catch (const std::out_of_range&) {
    // Pool vanished between the check and the hint; fall through to floor.
  }
  double mean_ms = 1.0;
  if (telemetry::Telemetry::enabled()) {
    const telemetry::HistogramSnapshot service =
        telemetry::Telemetry::instance().metrics().histogram(
            "sched.service_seconds");
    if (service.count > 0) mean_ms = std::max(1.0e-3, service.mean() * 1.0e3);
  }
  const double waves =
      std::ceil(static_cast<double>(depth) / static_cast<double>(workers));
  return std::max(1.0, waves * mean_ms);
}

net::Response Server::status_response(const net::Request& req) const {
  net::Response resp;
  resp.id = req.id;
  resp.trace_id = req.trace_id;
  resp.status = net::Status::kOk;
  resp.summary = "status";

  const sched::SchedulerStats stats = scheduler_.stats();
  core::JsonValue::Members body;
  body.emplace_back("accepting", core::JsonValue::make_bool(stats.accepting));
  body.emplace_back("submitted",
                    core::JsonValue::make_number(
                        static_cast<core::Real>(stats.submitted)));
  body.emplace_back("outstanding",
                    core::JsonValue::make_number(
                        static_cast<core::Real>(stats.outstanding)));

  // Time-slicing counters (DESIGN.md §12): slices executed, preemptions,
  // resumes, and cross-pool steals since the scheduler started.
  core::JsonValue::Members sched;
  sched.emplace_back("slices", core::JsonValue::make_number(
                                   static_cast<core::Real>(stats.slices)));
  sched.emplace_back("preempts", core::JsonValue::make_number(
                                     static_cast<core::Real>(stats.preempts)));
  sched.emplace_back("resumes", core::JsonValue::make_number(
                                    static_cast<core::Real>(stats.resumes)));
  sched.emplace_back("steals", core::JsonValue::make_number(
                                   static_cast<core::Real>(stats.steals)));
  sched.emplace_back("memo_hits",
                     core::JsonValue::make_number(
                         static_cast<core::Real>(stats.memo_hits)));
  sched.emplace_back("memo_riders",
                     core::JsonValue::make_number(
                         static_cast<core::Real>(stats.memo_riders)));
  body.emplace_back("sched", core::JsonValue::make_object(std::move(sched)));
  body.emplace_back("cache", json_of_caches());

  core::JsonValue::Members pools;
  for (const auto& [kind, pool] : stats.pools)
    pools.emplace_back(core::to_string(kind), json_of_pool(pool));
  body.emplace_back("pools", core::JsonValue::make_object(std::move(pools)));

  core::JsonValue::Members tenants;
  for (const auto& [tenant, ts] : governor_.stats()) {
    core::JsonValue::Members t;
    t.emplace_back("in_flight",
                   core::JsonValue::make_number(
                       static_cast<core::Real>(ts.in_flight)));
    t.emplace_back("admitted",
                   core::JsonValue::make_number(
                       static_cast<core::Real>(ts.admitted)));
    t.emplace_back("rejected",
                   core::JsonValue::make_number(
                       static_cast<core::Real>(ts.rejected)));
    tenants.emplace_back(tenant, core::JsonValue::make_object(std::move(t)));
  }
  body.emplace_back("tenants",
                    core::JsonValue::make_object(std::move(tenants)));

  // Server-side latency quantiles — what loadgen prints as the soak gate.
  const auto& registry = telemetry::Telemetry::instance().metrics();
  const telemetry::HistogramSnapshot latency =
      registry.histogram("net.request_seconds");
  core::JsonValue::Members lat;
  lat.emplace_back("count", core::JsonValue::make_number(
                                static_cast<core::Real>(latency.count)));
  lat.emplace_back("mean_seconds",
                   core::JsonValue::make_number(latency.mean()));
  lat.emplace_back("p50_seconds",
                   core::JsonValue::make_number(latency.quantile(0.5)));
  lat.emplace_back("p99_seconds",
                   core::JsonValue::make_number(latency.quantile(0.99)));
  body.emplace_back("latency", core::JsonValue::make_object(std::move(lat)));

  core::JsonValue::Members counters;
  for (const char* name :
       {"net.connections", "net.requests", "net.responses", "net.coalesced",
        "net.rejected_overloaded", "net.rejected_quota", "net.bad_request",
        "net.frame_errors", "net.frame_oversized", "net.bytes_in",
        "net.bytes_out"})
    counters.emplace_back(
        name, core::JsonValue::make_number(registry.counter(name)));
  body.emplace_back("counters",
                    core::JsonValue::make_object(std::move(counters)));

  resp.body = core::JsonValue::make_object(std::move(body));
  return resp;
}

core::JsonValue Server::metrics_body() {
  const auto num = [](core::Real v) { return core::JsonValue::make_number(v); };

  const telemetry::MetricsSample sample = sampler_.tick();
  const telemetry::MetricsRates rates = sampler_.rates();

  core::JsonValue::Members body;
  body.emplace_back("t_seconds", num(sample.t_seconds));

  core::JsonValue::Members counters;
  for (const auto& [name, value] : sample.counters)
    counters.emplace_back(name, num(value));
  body.emplace_back("counters",
                    core::JsonValue::make_object(std::move(counters)));

  core::JsonValue::Members gauges;
  for (const auto& [name, value] : sample.gauges)
    gauges.emplace_back(name, num(value));
  body.emplace_back("gauges", core::JsonValue::make_object(std::move(gauges)));

  // Counter deltas over the last sampling interval, normalized to /s — the
  // "is it busy right now" signal a monotonic counter cannot give.
  core::JsonValue::Members rate_members;
  rate_members.emplace_back("dt_seconds", num(rates.dt_seconds));
  core::JsonValue::Members per_second;
  for (const auto& [name, value] : rates.per_second)
    per_second.emplace_back(name, num(value));
  rate_members.emplace_back("per_second",
                            core::JsonValue::make_object(std::move(per_second)));
  body.emplace_back("rates",
                    core::JsonValue::make_object(std::move(rate_members)));

  core::JsonValue::Members histograms;
  for (const auto& [name, h] : sample.histograms) {
    core::JsonValue::Members hm;
    hm.emplace_back("count", num(static_cast<core::Real>(h.count)));
    hm.emplace_back("mean", num(h.mean()));
    hm.emplace_back("p50", num(h.quantile(0.5)));
    hm.emplace_back("p90", num(h.quantile(0.9)));
    hm.emplace_back("p99", num(h.quantile(0.99)));
    hm.emplace_back("max", num(h.max));
    histograms.emplace_back(name, core::JsonValue::make_object(std::move(hm)));
  }
  body.emplace_back("histograms",
                    core::JsonValue::make_object(std::move(histograms)));

  const sched::SchedulerStats stats = scheduler_.stats();
  body.emplace_back("accepting", core::JsonValue::make_bool(stats.accepting));
  body.emplace_back("outstanding",
                    num(static_cast<core::Real>(stats.outstanding)));
  core::JsonValue::Members sched;
  sched.emplace_back("slices", num(static_cast<core::Real>(stats.slices)));
  sched.emplace_back("preempts", num(static_cast<core::Real>(stats.preempts)));
  sched.emplace_back("resumes", num(static_cast<core::Real>(stats.resumes)));
  sched.emplace_back("steals", num(static_cast<core::Real>(stats.steals)));
  sched.emplace_back("memo_hits",
                     num(static_cast<core::Real>(stats.memo_hits)));
  sched.emplace_back("memo_riders",
                     num(static_cast<core::Real>(stats.memo_riders)));
  body.emplace_back("sched", core::JsonValue::make_object(std::move(sched)));
  body.emplace_back("cache", json_of_caches());

  core::JsonValue::Members pools;
  for (const auto& [kind, pool] : stats.pools)
    pools.emplace_back(core::to_string(kind), json_of_pool(pool));
  body.emplace_back("pools", core::JsonValue::make_object(std::move(pools)));

  return core::JsonValue::make_object(std::move(body));
}

void Server::handle_watch(const std::shared_ptr<Connection>& conn,
                          const net::Request& req) {
  double interval_ms = 500.0;
  if (req.params.is_object() && req.params.contains("interval_ms")) {
    const core::JsonValue& v = req.params.at("interval_ms");
    if (v.type() != core::JsonValue::Type::kNumber) {
      net::Response resp;
      resp.id = req.id;
      resp.trace_id = req.trace_id;
      resp.status = net::Status::kBadRequest;
      resp.summary = "watch params.interval_ms must be a number";
      send_response(conn, resp);
      return;
    }
    interval_ms = v.number();
  }
  interval_ms = std::min(60000.0, std::max(20.0, interval_ms));

  // First frame synchronously, so `rebootctl top --once` gets its answer in
  // one round trip instead of one watch interval.
  net::Response first;
  first.id = req.id;
  first.trace_id = req.trace_id;
  first.status = net::Status::kOk;
  first.summary = "watch";
  first.streaming = true;
  first.body = metrics_body();
  send_response(conn, first);

  WatchSub sub;
  sub.conn = conn;
  sub.wire_id = req.id;
  sub.trace_id = req.trace_id;
  sub.interval_ms = interval_ms;
  sub.next_due = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double, std::milli>(
                                        interval_ms));
  {
    std::lock_guard lock(watch_mutex_);
    if (watch_closed_) {
      // stop() already passed the watch teardown; answer terminally now
      // rather than registering a subscriber nobody will ever close.
      net::Response resp;
      resp.id = req.id;
      resp.trace_id = req.trace_id;
      resp.status = net::Status::kShuttingDown;
      resp.summary = "watch closed: server stopping";
      send_response(conn, resp);
      return;
    }
    watchers_.push_back(std::move(sub));
  }
  watch_cv_.notify_all();
  TELEM_COUNT("net.watch_subscribed");
}

void Server::watch_loop() {
  telemetry::TraceRecorder::instance().set_thread_name("net watch");
  std::unique_lock lock(watch_mutex_);
  while (!watch_closed_) {
    if (watchers_.empty()) {
      watch_cv_.wait(lock,
                     [this] { return watch_closed_ || !watchers_.empty(); });
      continue;
    }
    Clock::time_point due = watchers_.front().next_due;
    for (const WatchSub& sub : watchers_) due = std::min(due, sub.next_due);
    if (watch_cv_.wait_until(lock, due, [this] { return watch_closed_; }))
      break;

    const auto now = Clock::now();
    bool any_due = false;
    for (const WatchSub& sub : watchers_)
      any_due = any_due || sub.next_due <= now;
    if (!any_due) continue;  // spurious wake or a new earlier subscriber

    // One sampler tick serves every due subscriber this wake; ticking per
    // subscriber would skew rates with near-zero dt samples.
    const core::JsonValue body = metrics_body();
    for (WatchSub& sub : watchers_) {
      if (sub.next_due > now) continue;
      net::Response frame;
      frame.id = sub.wire_id;
      frame.trace_id = sub.trace_id;
      frame.status = net::Status::kOk;
      frame.summary = "watch";
      frame.streaming = true;
      frame.body = body;
      send_response(sub.conn, frame);
      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(sub.interval_ms));
      // Re-anchor on `now`: a stalled pump catches up with one frame, not a
      // burst of back-dated ones.
      sub.next_due = now + interval;
    }
    // A failed push (send_response flipped conn->open) ends the
    // subscription; its client is gone, nobody is owed the terminal frame.
    watchers_.erase(
        std::remove_if(watchers_.begin(), watchers_.end(),
                       [](const WatchSub& sub) {
                         return !sub.conn->open.load(
                             std::memory_order_acquire);
                       }),
        watchers_.end());
  }

  // Teardown: one terminal (non-streaming) frame per surviving subscriber —
  // the stream's single *response* in the accounting sense.
  for (const WatchSub& sub : watchers_) {
    net::Response resp;
    resp.id = sub.wire_id;
    resp.trace_id = sub.trace_id;
    resp.status = net::Status::kShuttingDown;
    resp.summary = "watch closed: server stopping";
    send_response(sub.conn, resp);
  }
  watchers_.clear();
}

}  // namespace rebooting::rebootd
