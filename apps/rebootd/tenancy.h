// Per-tenant admission control for rebootd: a token bucket bounds each
// tenant's sustained submit rate (quota), and an in-flight count biases the
// scheduler priority of tenants hogging the pools (fair share).
//
// The two mechanisms answer different abuse shapes. The bucket handles "one
// tenant floods faster than anyone can execute": refills at rate_per_s up to
// burst, and an empty bucket is a typed kQuotaExceeded rejection with a
// retry_after_ms hint — cheap, before any job is built. The priority bias
// handles "one tenant keeps the queues legitimately full": every
// fair_share_stride requests a tenant has in flight cost it one priority
// level (down to -max_priority_penalty), so the scheduler's priority queue
// interleaves a light tenant's work ahead of the heavy tenant's backlog
// without starving either.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rebooting::rebootd {

using Clock = std::chrono::steady_clock;

/// One tenant's rate limit. rate_per_s == 0 means unlimited (the bucket is
/// bypassed entirely); burst is the bucket capacity, i.e. the largest spike
/// admitted after an idle period.
struct TenantQuota {
  double rate_per_s = 0.0;
  double burst = 0.0;
};

struct TenancyConfig {
  /// Quota applied to tenants without an explicit entry in `quotas`.
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> quotas;
  /// Every `fair_share_stride` in-flight requests cost a tenant one priority
  /// level. 0 disables the bias.
  std::size_t fair_share_stride = 16;
  /// Floor of the bias: a tenant is never pushed more than this many levels
  /// below its requested priority.
  int max_priority_penalty = 8;
};

/// Verdict of TenantGovernor::admit for one request.
struct Admission {
  bool admitted = true;
  /// With admitted == false: when one token will have refilled.
  double retry_after_ms = 0.0;
  /// With admitted == true: add to the request's priority (<= 0).
  int priority_bias = 0;
};

/// Point-in-time view of one tenant, for the `status` method.
struct TenantStats {
  double tokens = 0.0;
  std::size_t in_flight = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
};

/// Mutex-guarded; admit/release are a few map lookups and arithmetic, far
/// off the execution hot path.
class TenantGovernor {
 public:
  explicit TenantGovernor(TenancyConfig config);

  /// Charges one token and one in-flight slot to `tenant`.
  Admission admit(const std::string& tenant, Clock::time_point now);
  /// Returns `tenant`'s in-flight slot; called once per admitted request
  /// when its response is sent (coalesced waiters each hold their own slot).
  void release(const std::string& tenant);

  std::map<std::string, TenantStats> stats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point refilled_at{};
    std::size_t in_flight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
  };

  const TenantQuota& quota_for(const std::string& tenant) const;

  TenancyConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace rebooting::rebootd
