// The workload vocabulary a submit request can name. Every workload builds a
// *self-contained* sched::DevicePayload — it ignores the worker's accelerator
// argument — so jobs stay eligible for RetryPolicy::cpu_fallback and survive
// the chaos plans' replica faults on any pool.
//
//   "echo"   immediate success; params are echoed into the summary
//   "spin"   busy-waits params.micros microseconds (default 50) — the
//            loadgen's calibrated unit of synthetic service time
//   "sat"    generates a random 3-SAT instance (params.vars/clauses/seed)
//            and runs the digital-memcomputing solver on it — the real
//            computation for soak tests
//   "fail"   executes and reports ok=false (a *workload* failure, distinct
//            from the scheduler-level dispositions)
//   "throw"  throws mid-execution (surfaces as Status::kError)
#pragma once

#include <optional>
#include <string>

#include "net/protocol.h"
#include "scheduler/job.h"

namespace rebooting::rebootd {

/// Builds the payload for `req.work`; nullopt (with *error set) for an
/// unknown workload name or out-of-range params.
std::optional<sched::DevicePayload> build_workload(const net::Request& req,
                                                   std::string* error);

}  // namespace rebooting::rebootd
