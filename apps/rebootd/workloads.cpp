#include "rebootd/workloads.h"

#include <chrono>
#include <stdexcept>

#include "core/random.h"
#include "memcomputing/canonical.h"
#include "memcomputing/cnf.h"
#include "memcomputing/dmm.h"

namespace rebooting::rebootd {

namespace {

double param_number(const core::JsonValue& params, const std::string& key,
                    double fallback) {
  if (!params.is_object() || !params.contains(key)) return fallback;
  const core::JsonValue& v = params.at(key);
  return v.type() == core::JsonValue::Type::kNumber ? v.number() : fallback;
}

core::JobResult spin_for(double micros) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double, std::micro>(micros);
  // Busy-wait, not sleep: the point is to occupy a worker the way a real
  // kernel would, so queueing and fair-share effects are observable.
  volatile std::uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) sink = sink + 1;
  core::JobResult result;
  result.ok = true;
  result.summary = "spun " + core::json_number(micros) + " us";
  result.metrics["work.spin_micros"] = micros;
  return result;
}

core::JobResult solve_sat(std::size_t vars, std::size_t clauses,
                          std::uint64_t seed) {
  core::Rng rng(seed);
  const auto cnf = memcomputing::random_ksat(rng, vars, clauses, 3);
  memcomputing::DmmOptions options;
  options.max_steps = 20'000;
  // Content-addressed: a repeated (vars, clauses, seed) request replays the
  // cached solution (or warm-restarts from the best known assignment)
  // instead of integrating the DMM dynamics from scratch.
  const auto dmm = memcomputing::solve_dmm_cached(cnf, options, rng);
  core::JobResult result;
  result.ok = true;  // an unsolved instance is still a completed request
  result.summary = dmm.satisfied
                       ? "sat: satisfied in " +
                             std::to_string(dmm.steps) + " steps"
                       : "sat: best " +
                             std::to_string(dmm.best_unsatisfied) +
                             " unsatisfied after " +
                             std::to_string(dmm.steps) + " steps";
  result.metrics["work.sat_satisfied"] = dmm.satisfied ? 1.0 : 0.0;
  result.metrics["work.sat_steps"] = static_cast<core::Real>(dmm.steps);
  return result;
}

}  // namespace

std::optional<sched::DevicePayload> build_workload(const net::Request& req,
                                                   std::string* error) {
  if (req.work == "echo") {
    const std::string echoed = core::json_dump(req.params);
    return sched::DevicePayload([echoed](core::Accelerator&) {
      core::JobResult result;
      result.ok = true;
      result.summary = "echo " + echoed;
      return result;
    });
  }
  if (req.work == "spin") {
    const double micros = param_number(req.params, "micros", 50.0);
    if (micros < 0.0 || micros > 1e7) {
      if (error) *error = "spin: 'micros' out of range [0, 1e7]";
      return std::nullopt;
    }
    return sched::DevicePayload(
        [micros](core::Accelerator&) { return spin_for(micros); });
  }
  if (req.work == "sat") {
    const double vars = param_number(req.params, "vars", 20.0);
    const double clauses = param_number(req.params, "clauses", 80.0);
    const double seed = param_number(req.params, "seed", 1.0);
    if (vars < 3.0 || vars > 200.0 || clauses < 1.0 || clauses > 2000.0) {
      if (error) *error = "sat: 'vars' in [3, 200], 'clauses' in [1, 2000]";
      return std::nullopt;
    }
    return sched::DevicePayload([n = static_cast<std::size_t>(vars),
                                 m = static_cast<std::size_t>(clauses),
                                 s = static_cast<std::uint64_t>(seed)](
                                    core::Accelerator&) {
      return solve_sat(n, m, s);
    });
  }
  if (req.work == "fail") {
    return sched::DevicePayload([](core::Accelerator&) {
      core::JobResult result;
      result.summary = "fail: workload reported failure";
      return result;
    });
  }
  if (req.work == "throw") {
    return sched::DevicePayload([](core::Accelerator&) -> core::JobResult {
      throw std::runtime_error("throw: workload threw");
    });
  }
  if (error) *error = "unknown work '" + req.work + "'";
  return std::nullopt;
}

}  // namespace rebooting::rebootd
