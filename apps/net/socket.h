// POSIX TCP plumbing for the rebootd service tier (apps/): RAII sockets, a
// poll-based listener, and the length-prefixed frame codec every wire
// conversation uses.
//
// Framing: each message is a 4-byte big-endian payload length followed by
// that many bytes of UTF-8 JSON. The length prefix makes partial reads a
// non-event (read_frame loops until the frame is complete or the peer goes
// away) and makes oversized frames detectable *before* buffering them —
// read_frame reports kOversized without consuming the body, so a server can
// answer with a typed error and hang up instead of allocating an attacker's
// length field.
//
// Threading: one Socket may be used by a reader thread and a writer thread
// simultaneously (recv and send on one fd are independent); writes from
// several threads need external serialization (rebootd's per-connection
// write mutex). shutdown_read()/shutdown_both() are the cross-thread
// unblocking knobs: they make a blocked recv return 0 without closing the
// fd out from under the other thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace rebooting::net {

/// Move-only RAII wrapper over one connected TCP fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `n` bytes; false on EOF or error (including a mid-read
  /// disconnect — the partial prefix is discarded).
  bool read_exact(void* buf, std::size_t n);
  /// Writes all `n` bytes (MSG_NOSIGNAL: a dead peer is a false return, not
  /// a SIGPIPE); false on error.
  bool write_all(const void* buf, std::size_t n);

  /// Unblocks a reader on another thread: recv returns 0 (EOF). The write
  /// side stays usable, so pending responses can still drain.
  void shutdown_read();
  /// Unblocks reader and writer both.
  void shutdown_both();
  void close();

 private:
  int fd_ = -1;
};

/// Blocking connect to host:port; the returned socket is invalid() on
/// failure (*error carries errno text when provided).
Socket connect_to(const std::string& host, std::uint16_t port,
                  std::string* error = nullptr);

/// Listening socket with poll-based accept so an owner can stop the accept
/// loop with a flag instead of signal games.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; port 0 picks an ephemeral port (read it back with
  /// port()). False on failure (*error carries errno text when provided).
  bool listen_on(const std::string& host, std::uint16_t port,
                 std::string* error = nullptr);
  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection; the returned socket is
  /// invalid() on timeout, error, or a closed listener.
  Socket accept(int timeout_ms);
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// How one read_frame call ended.
enum class FrameRead {
  kFrame,      ///< *out holds one complete payload
  kEof,        ///< clean close (or shutdown_read) at a frame boundary...
  kError,      ///< ...or a mid-frame disconnect / socket error
  kOversized,  ///< declared length exceeds max_bytes; body not consumed
};

/// Reads one length-prefixed frame into *out.
FrameRead read_frame(Socket& sock, std::string* out, std::size_t max_bytes);
/// Writes one frame (4-byte big-endian length + payload). False on error or
/// a payload longer than fits the 32-bit prefix.
bool write_frame(Socket& sock, std::string_view payload);

}  // namespace rebooting::net
