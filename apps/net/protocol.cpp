#include "net/protocol.h"

#include <cmath>
#include <utility>

namespace rebooting::net {

namespace {

using core::JsonValue;

void put(JsonValue::Members& obj, const char* key, JsonValue v) {
  obj.emplace_back(key, std::move(v));
}

/// Type-checked field extraction: each returns false (setting *error) on a
/// present-but-mistyped member, true otherwise.
bool take_string(const JsonValue& doc, const char* key, std::string* out,
                 std::string* error) {
  if (!doc.contains(key)) return true;
  const JsonValue& v = doc.at(key);
  if (v.type() != JsonValue::Type::kString) {
    if (error) *error = std::string("field '") + key + "' must be a string";
    return false;
  }
  *out = v.string();
  return true;
}

bool take_number(const JsonValue& doc, const char* key, double* out,
                 std::string* error) {
  if (!doc.contains(key)) return true;
  const JsonValue& v = doc.at(key);
  if (v.type() != JsonValue::Type::kNumber) {
    if (error) *error = std::string("field '") + key + "' must be a number";
    return false;
  }
  *out = v.number();
  return true;
}

bool take_bool(const JsonValue& doc, const char* key, bool* out,
               std::string* error) {
  if (!doc.contains(key)) return true;
  const JsonValue& v = doc.at(key);
  if (v.type() != JsonValue::Type::kBool) {
    if (error) *error = std::string("field '") + key + "' must be a bool";
    return false;
  }
  *out = v.boolean();
  return true;
}

/// Trace ids travel as decimal strings (u64 does not fit a JSON double), so
/// "present but not a digit string" is a strict-parse failure like any other
/// type mismatch. Absent leaves *out at 0.
bool take_u64_string(const JsonValue& doc, const char* key,
                     std::uint64_t* out, std::string* error) {
  if (!doc.contains(key)) return true;
  const JsonValue& v = doc.at(key);
  const auto fail = [&] {
    if (error)
      *error = std::string("field '") + key +
               "' must be a u64 as a decimal string";
    return false;
  };
  if (v.type() != JsonValue::Type::kString) return fail();
  const std::string& s = v.string();
  if (s.empty() || s.size() > 20) return fail();
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return fail();
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) return fail();  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

void put_u64_string(JsonValue::Members& obj, const char* key,
                    std::uint64_t value) {
  put(obj, key, JsonValue::make_string(std::to_string(value)));
}

std::optional<JsonValue> parse_object_frame(const std::string& frame,
                                            std::string* error) {
  auto doc = core::json_parse(frame);
  if (!doc) {
    if (error) *error = "frame is not valid JSON";
    return std::nullopt;
  }
  if (!doc->is_object()) {
    if (error) *error = "frame must be a JSON object";
    return std::nullopt;
  }
  return doc;
}

}  // namespace

std::string to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kFailed: return "failed";
    case Status::kOverloaded: return "overloaded";
    case Status::kQuotaExceeded: return "quota_exceeded";
    case Status::kDeadlineMissed: return "deadline_missed";
    case Status::kCancelled: return "cancelled";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kBadRequest: return "bad_request";
    case Status::kError: return "error";
  }
  return "error";
}

std::optional<Status> status_from_string(const std::string& name) {
  for (const Status s :
       {Status::kOk, Status::kFailed, Status::kOverloaded,
        Status::kQuotaExceeded, Status::kDeadlineMissed, Status::kCancelled,
        Status::kShuttingDown, Status::kBadRequest, Status::kError})
    if (to_string(s) == name) return s;
  return std::nullopt;
}

std::string encode_request(const Request& req) {
  JsonValue::Members obj;
  put(obj, "v", JsonValue::make_number(kProtocolVersion));
  put(obj, "id", JsonValue::make_number(static_cast<core::Real>(req.id)));
  put(obj, "method", JsonValue::make_string(req.method));
  put(obj, "tenant", JsonValue::make_string(req.tenant));
  if (req.trace_id != 0) {
    put_u64_string(obj, "trace_id", req.trace_id);
    if (req.parent_span != 0)
      put_u64_string(obj, "parent_span", req.parent_span);
  }
  if (req.method == "submit") {
    put(obj, "work", JsonValue::make_string(req.work));
    put(obj, "kind", JsonValue::make_string(core::to_string(req.kind)));
    if (req.priority != 0)
      put(obj, "priority", JsonValue::make_number(req.priority));
    if (req.deadline_ms)
      put(obj, "deadline_ms", JsonValue::make_number(*req.deadline_ms));
    if (req.no_coalesce) put(obj, "no_coalesce", JsonValue::make_bool(true));
    if (req.memo) put(obj, "memo", JsonValue::make_bool(true));
  }
  // params ride on any method that takes them (submit's workload knobs,
  // watch's interval_ms).
  if (!req.params.is_null()) put(obj, "params", req.params);
  return core::json_dump(JsonValue::make_object(std::move(obj)));
}

std::optional<Request> decode_request(const std::string& frame,
                                      std::string* error) {
  const auto doc = parse_object_frame(frame, error);
  if (!doc) return std::nullopt;

  Request req;
  double id = -1.0;
  if (!take_number(*doc, "id", &id, error)) return std::nullopt;
  if (id < 0.0) {
    if (error) *error = "missing or negative 'id'";
    return std::nullopt;
  }
  req.id = static_cast<std::uint64_t>(id);
  if (!take_string(*doc, "method", &req.method, error)) return std::nullopt;
  if (req.method.empty()) {
    if (error) *error = "missing 'method'";
    return std::nullopt;
  }
  if (!take_string(*doc, "tenant", &req.tenant, error)) return std::nullopt;
  if (!take_u64_string(*doc, "trace_id", &req.trace_id, error))
    return std::nullopt;
  if (!take_u64_string(*doc, "parent_span", &req.parent_span, error))
    return std::nullopt;
  if (!take_string(*doc, "work", &req.work, error)) return std::nullopt;

  std::string kind_name;
  if (!take_string(*doc, "kind", &kind_name, error)) return std::nullopt;
  if (!kind_name.empty()) {
    const auto kind = core::kind_from_string(kind_name);
    if (!kind) {
      if (error) *error = "unknown accelerator kind '" + kind_name + "'";
      return std::nullopt;
    }
    req.kind = *kind;
  }

  if (doc->contains("params")) {
    const JsonValue& params = doc->at("params");
    if (!params.is_object()) {
      if (error) *error = "field 'params' must be an object";
      return std::nullopt;
    }
    req.params = params;
  }

  double priority = 0.0;
  if (!take_number(*doc, "priority", &priority, error)) return std::nullopt;
  req.priority = static_cast<int>(priority);

  if (doc->contains("deadline_ms")) {
    double deadline = 0.0;
    if (!take_number(*doc, "deadline_ms", &deadline, error))
      return std::nullopt;
    if (!(deadline > 0.0)) {
      if (error) *error = "field 'deadline_ms' must be > 0";
      return std::nullopt;
    }
    req.deadline_ms = deadline;
  }
  if (!take_bool(*doc, "no_coalesce", &req.no_coalesce, error))
    return std::nullopt;
  if (!take_bool(*doc, "memo", &req.memo, error)) return std::nullopt;
  return req;
}

std::string encode_response(const Response& resp) {
  JsonValue::Members obj;
  put(obj, "id", JsonValue::make_number(static_cast<core::Real>(resp.id)));
  put(obj, "status", JsonValue::make_string(to_string(resp.status)));
  if (!resp.summary.empty())
    put(obj, "summary", JsonValue::make_string(resp.summary));
  if (resp.attempts != 0)
    put(obj, "attempts",
        JsonValue::make_number(static_cast<core::Real>(resp.attempts)));
  if (resp.degraded) put(obj, "degraded", JsonValue::make_bool(true));
  if (resp.coalesced) put(obj, "coalesced", JsonValue::make_bool(true));
  if (resp.streaming) put(obj, "streaming", JsonValue::make_bool(true));
  if (resp.trace_id != 0) put_u64_string(obj, "trace_id", resp.trace_id);
  if (resp.wall_seconds > 0.0)
    put(obj, "wall_seconds", JsonValue::make_number(resp.wall_seconds));
  if (resp.retry_after_ms)
    put(obj, "retry_after_ms", JsonValue::make_number(*resp.retry_after_ms));
  if (!resp.metrics.empty()) {
    JsonValue::Members metrics;
    for (const auto& [key, value] : resp.metrics)
      metrics.emplace_back(key, JsonValue::make_number(value));
    put(obj, "metrics", JsonValue::make_object(std::move(metrics)));
  }
  if (!resp.body.is_null()) put(obj, "body", resp.body);
  return core::json_dump(JsonValue::make_object(std::move(obj)));
}

std::optional<Response> decode_response(const std::string& frame,
                                        std::string* error) {
  const auto doc = parse_object_frame(frame, error);
  if (!doc) return std::nullopt;

  Response resp;
  double id = -1.0;
  if (!take_number(*doc, "id", &id, error)) return std::nullopt;
  if (id < 0.0) {
    if (error) *error = "missing or negative 'id'";
    return std::nullopt;
  }
  resp.id = static_cast<std::uint64_t>(id);

  std::string status_name;
  if (!take_string(*doc, "status", &status_name, error)) return std::nullopt;
  const auto status = status_from_string(status_name);
  if (!status) {
    if (error) *error = "missing or unknown 'status'";
    return std::nullopt;
  }
  resp.status = *status;

  if (!take_string(*doc, "summary", &resp.summary, error))
    return std::nullopt;
  double attempts = 0.0;
  if (!take_number(*doc, "attempts", &attempts, error)) return std::nullopt;
  resp.attempts = static_cast<std::uint64_t>(attempts);
  if (!take_bool(*doc, "degraded", &resp.degraded, error))
    return std::nullopt;
  if (!take_bool(*doc, "coalesced", &resp.coalesced, error))
    return std::nullopt;
  if (!take_bool(*doc, "streaming", &resp.streaming, error))
    return std::nullopt;
  if (!take_u64_string(*doc, "trace_id", &resp.trace_id, error))
    return std::nullopt;
  if (!take_number(*doc, "wall_seconds", &resp.wall_seconds, error))
    return std::nullopt;
  if (doc->contains("retry_after_ms")) {
    double retry = 0.0;
    if (!take_number(*doc, "retry_after_ms", &retry, error))
      return std::nullopt;
    resp.retry_after_ms = retry;
  }
  if (doc->contains("metrics")) {
    const JsonValue& metrics = doc->at("metrics");
    if (!metrics.is_object()) {
      if (error) *error = "field 'metrics' must be an object";
      return std::nullopt;
    }
    for (const auto& [key, value] : metrics.object()) {
      if (value.type() != JsonValue::Type::kNumber) {
        if (error) *error = "metric '" + key + "' must be a number";
        return std::nullopt;
      }
      resp.metrics.emplace(key, value.number());
    }
  }
  if (doc->contains("body")) resp.body = doc->at("body");
  return resp;
}

std::string coalesce_key(const Request& req) {
  // json_dump of params is canonical enough here: clients that build the
  // same params object the same way produce the same member order. A nonce
  // member anywhere in params opts a request out naturally.
  std::string key;
  key.reserve(64);
  key += req.tenant;
  key += '\x1f';
  key += core::to_string(req.kind);
  key += '\x1f';
  key += req.work;
  key += '\x1f';
  key += core::json_dump(req.params);
  key += '\x1f';
  key += std::to_string(req.priority);
  key += '\x1f';
  key += req.deadline_ms ? std::to_string(*req.deadline_ms) : std::string();
  return key;
}

}  // namespace rebooting::net
