// The rebootd wire protocol: JSON documents inside the length-prefixed
// frames of socket.h. One request frame yields exactly one response frame
// with the same `id` — the invariant the loadgen accounting leans on ("every
// request ends as success, typed error, or rejection; none lost").
//
// Request (client -> server):
//   {"v":1, "id":7, "method":"submit", "tenant":"alice",
//    "work":"spin", "kind":"classical-cpu", "params":{"micros":50},
//    "priority":0, "deadline_ms":250, "no_coalesce":false}
//
//   methods: "ping"      liveness probe; params-free
//            "status"    full ops snapshot (scheduler pools, tenants,
//                        latency quantiles, net.* counters)
//            "submit"    run workload `work` on the `kind` pool
//            "shutdown"  ask the daemon to stop (it finishes the reply first)
//
// Response (server -> client):
//   {"id":7, "status":"ok", "summary":"...", "attempts":1,
//    "degraded":false, "coalesced":false, "wall_seconds":1.2e-4,
//    "metrics":{"work.spin_micros":50}, "body":{...}}
//
// `status` is a closed vocabulary (Status below) so clients switch on a
// type, not on prose: the admission-control rejections ("overloaded",
// "quota_exceeded") are first-class outcomes, distinct from a workload that
// ran and failed ("failed") and from transport-level trouble (which has no
// response at all — the client library surfaces it separately).
//
// Parsing is strict about the types of known fields and silent about unknown
// ones (forward compatibility across shard versions); decode_* return
// nullopt with a diagnostic instead of throwing, since every byte here
// crossed a trust boundary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/accelerator.h"
#include "core/json.h"

namespace rebooting::net {

inline constexpr int kProtocolVersion = 1;
/// Default ceiling for one frame; a 32-bit length field must never translate
/// into a 4 GiB allocation on behalf of an unauthenticated peer.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

struct Request {
  std::uint64_t id = 0;
  std::string method;
  std::string tenant = "default";
  // --- submit fields (ignored for other methods) -------------------------
  std::string work;
  core::AcceleratorKind kind = core::AcceleratorKind::kClassicalCpu;
  core::JsonValue params;  ///< object (or null for none)
  int priority = 0;
  std::optional<double> deadline_ms;
  bool no_coalesce = false;
};

/// Typed response outcomes. kOk/kFailed mean the workload executed; the rest
/// mean it never ran (or never will).
enum class Status {
  kOk,
  kFailed,          ///< executed, workload reported failure
  kOverloaded,      ///< admission control / backpressure rejection
  kQuotaExceeded,   ///< tenant token bucket empty (see retry_after_ms)
  kDeadlineMissed,  ///< queued past its deadline
  kCancelled,
  kShuttingDown,  ///< arrived or was queued while the daemon stopped
  kBadRequest,    ///< malformed frame/JSON/fields, unknown work or pool
  kError,         ///< internal failure (workload threw, ...)
};

std::string to_string(Status status);
std::optional<Status> status_from_string(const std::string& name);

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kError;
  std::string summary;
  std::uint64_t attempts = 0;
  bool degraded = false;
  bool coalesced = false;  ///< answered by a collapsed identical job
  double wall_seconds = 0.0;
  std::optional<double> retry_after_ms;  ///< with kQuotaExceeded/kOverloaded
  std::map<std::string, core::Real> metrics;
  core::JsonValue body;  ///< method-specific payload (status snapshot)
};

std::string encode_request(const Request& req);
std::optional<Request> decode_request(const std::string& frame,
                                      std::string* error = nullptr);

std::string encode_response(const Response& resp);
std::optional<Response> decode_response(const std::string& frame,
                                        std::string* error = nullptr);

/// The coalescing identity of a submit request: tenant, kind, work, params,
/// priority, and deadline — everything that changes what executing it means.
/// Two requests with equal keys may share one execution.
std::string coalesce_key(const Request& req);

}  // namespace rebooting::net
