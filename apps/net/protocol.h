// The rebootd wire protocol: JSON documents inside the length-prefixed
// frames of socket.h. One request frame yields exactly one response frame
// with the same `id` — the invariant the loadgen accounting leans on ("every
// request ends as success, typed error, or rejection; none lost").
//
// Request (client -> server):
//   {"v":1, "id":7, "method":"submit", "tenant":"alice",
//    "work":"spin", "kind":"classical-cpu", "params":{"micros":50},
//    "priority":0, "deadline_ms":250, "no_coalesce":false,
//    "trace_id":"81985529216486895", "parent_span":"7"}
//
//   methods: "ping"      liveness probe; params-free
//            "status"    full ops snapshot (scheduler pools, tenants,
//                        latency quantiles, net.* counters)
//            "metrics"   one full registry snapshot: counters, gauges,
//                        histogram quantiles, counter rates from the
//                        server's telemetry::Sampler, Scheduler::stats()
//            "watch"     server-push subscription: the server immediately
//                        answers with one `metrics`-shaped frame marked
//                        "streaming":true, then keeps pushing one frame per
//                        params.interval_ms (default 500, clamped to
//                        [20, 60000]) until the client closes or the server
//                        stops — the terminal frame (streaming absent) is
//                        the subscription's *response* in the
//                        one-response-per-request accounting sense
//            "submit"    run workload `work` on the `kind` pool
//            "shutdown"  ask the daemon to stop (it finishes the reply first)
//
//   trace_id/parent_span (optional, u64s as decimal strings — they must
//   round-trip exactly, and 2^53 is where JSON numbers stop doing that):
//   the client's distributed trace context. A rebootd that receives a
//   trace_id continues the "net.request" flow chain under *that* id instead
//   of a server-local one and echoes it in every response frame, so
//   per-process Chrome traces stitch into one cross-process timeline
//   (scripts/trace_merge.py). parent_span names the client-side span the
//   submit belongs to; it is carried for the merged view, never interpreted.
//
// Response (server -> client):
//   {"id":7, "status":"ok", "summary":"...", "attempts":1,
//    "degraded":false, "coalesced":false, "wall_seconds":1.2e-4,
//    "trace_id":"81985529216486895", "streaming":false,
//    "metrics":{"work.spin_micros":50}, "body":{...}}
//
// `status` is a closed vocabulary (Status below) so clients switch on a
// type, not on prose: the admission-control rejections ("overloaded",
// "quota_exceeded") are first-class outcomes, distinct from a workload that
// ran and failed ("failed") and from transport-level trouble (which has no
// response at all — the client library surfaces it separately).
//
// `streaming` (encoded only when true) marks a non-terminal `watch` frame:
// more frames with the same id follow. Every subscription still ends in
// exactly one terminal frame — normally "shutting_down" when the server
// stops — so the "every request ends exactly once" invariant holds for
// streams too.
//
// Parsing is strict about the types of known fields and silent about unknown
// ones (forward compatibility across shard versions); decode_* return
// nullopt with a diagnostic instead of throwing, since every byte here
// crossed a trust boundary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/accelerator.h"
#include "core/json.h"

namespace rebooting::net {

inline constexpr int kProtocolVersion = 1;
/// Default ceiling for one frame; a 32-bit length field must never translate
/// into a 4 GiB allocation on behalf of an unauthenticated peer.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

struct Request {
  std::uint64_t id = 0;
  std::string method;
  std::string tenant = "default";
  /// Distributed trace context (0 = none). See the header comment; stamped
  /// by rebootctl::Client when the client process is tracing.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  // --- submit fields (ignored for other methods) -------------------------
  std::string work;
  core::AcceleratorKind kind = core::AcceleratorKind::kClassicalCpu;
  core::JsonValue params;  ///< object (or null for none); also carries the
                           ///< `watch` verb's interval_ms
  int priority = 0;
  std::optional<double> deadline_ms;
  bool no_coalesce = false;
  /// Opt into server-side memoization (DESIGN.md §14): the submit carries a
  /// JobOptions::memo_key derived from (kind, work, params) — tenant and
  /// priority excluded, so identical work collapses across tenants — and an
  /// identical already-cached or in-flight submit replays/shares its result.
  /// Unlike coalescing (a scheduling-window optimization), memoization
  /// persists across time in the server's result cache.
  bool memo = false;
};

/// Typed response outcomes. kOk/kFailed mean the workload executed; the rest
/// mean it never ran (or never will).
enum class Status {
  kOk,
  kFailed,          ///< executed, workload reported failure
  kOverloaded,      ///< admission control / backpressure rejection
  kQuotaExceeded,   ///< tenant token bucket empty (see retry_after_ms)
  kDeadlineMissed,  ///< queued past its deadline
  kCancelled,
  kShuttingDown,  ///< arrived or was queued while the daemon stopped
  kBadRequest,    ///< malformed frame/JSON/fields, unknown work or pool
  kError,         ///< internal failure (workload threw, ...)
};

std::string to_string(Status status);
std::optional<Status> status_from_string(const std::string& name);

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kError;
  std::string summary;
  std::uint64_t attempts = 0;
  bool degraded = false;
  bool coalesced = false;  ///< answered by a collapsed identical job
  bool streaming = false;  ///< non-terminal watch frame; more follow
  std::uint64_t trace_id = 0;  ///< echo of the request's context (0 = none)
  double wall_seconds = 0.0;
  std::optional<double> retry_after_ms;  ///< with kQuotaExceeded/kOverloaded
  std::map<std::string, core::Real> metrics;
  core::JsonValue body;  ///< method-specific payload (status snapshot)
};

std::string encode_request(const Request& req);
std::optional<Request> decode_request(const std::string& frame,
                                      std::string* error = nullptr);

std::string encode_response(const Response& resp);
std::optional<Response> decode_response(const std::string& frame,
                                        std::string* error = nullptr);

/// The coalescing identity of a submit request: tenant, kind, work, params,
/// priority, and deadline — everything that changes what executing it means.
/// Two requests with equal keys may share one execution.
std::string coalesce_key(const Request& req);

}  // namespace rebooting::net
