#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rebooting::net {

namespace {

void set_errno_message(std::string* error, const char* what) {
  if (error) *error = std::string(what) + ": " + std::strerror(errno);
}

/// The request/response frames here are small; Nagle would add 40 ms stalls
/// to every sync round trip.
void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool Socket::read_exact(void* buf, std::size_t n) {
  auto* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd_, p, n, 0);
    if (got == 0) return false;  // peer closed
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool Socket::write_all(const void* buf, std::size_t n) {
  const auto* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_to(const std::string& host, std::uint16_t port,
                  std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                   &result);
      rc != 0) {
    if (error) *error = std::string("getaddrinfo: ") + ::gai_strerror(rc);
    return Socket{};
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    set_errno_message(error, "connect");
    return Socket{};
  }
  set_nodelay(fd);
  return Socket{fd};
}

bool Listener::listen_on(const std::string& host, std::uint16_t port,
                         std::string* error) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "listen_on: not an IPv4 address: " + host;
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_errno_message(error, "socket");
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    set_errno_message(error, "bind/listen");
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    set_errno_message(error, "getsockname");
    ::close(fd);
    return false;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return true;
}

Socket Listener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket{};
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0 || !(pfd.revents & POLLIN)) return Socket{};
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Socket{};
  set_nodelay(fd);
  return Socket{fd};
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameRead read_frame(Socket& sock, std::string* out, std::size_t max_bytes) {
  unsigned char prefix[4];
  // Distinguish a clean close (nothing read) from a mid-prefix disconnect:
  // peek the first byte, then read the prefix for real.
  {
    const ssize_t got = ::recv(sock.fd(), prefix, 1, 0);
    if (got == 0) return FrameRead::kEof;
    if (got < 0) return errno == EINTR ? read_frame(sock, out, max_bytes)
                                       : FrameRead::kError;
  }
  if (!sock.read_exact(prefix + 1, 3)) return FrameRead::kError;
  const std::uint32_t n = (std::uint32_t{prefix[0]} << 24) |
                          (std::uint32_t{prefix[1]} << 16) |
                          (std::uint32_t{prefix[2]} << 8) |
                          std::uint32_t{prefix[3]};
  if (n > max_bytes) return FrameRead::kOversized;
  out->resize(n);
  if (n > 0 && !sock.read_exact(out->data(), n)) return FrameRead::kError;
  return FrameRead::kFrame;
}

bool write_frame(Socket& sock, std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFull) return false;
  const auto n = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {static_cast<unsigned char>(n >> 24),
                             static_cast<unsigned char>(n >> 16),
                             static_cast<unsigned char>(n >> 8),
                             static_cast<unsigned char>(n)};
  // One send per part; TCP_NODELAY is set, but the prefix+payload pair still
  // coalesces in the socket buffer under load.
  return sock.write_all(prefix, sizeof prefix) &&
         sock.write_all(payload.data(), payload.size());
}

}  // namespace rebooting::net
