// Sec. III scenario (ref [44]): the coupled-oscillator co-processor as an
// associative matcher — "degree of matching" for pattern recognition,
// clustering and text recognition. Stores noisy digit glyphs and fuzzy
// strings, then matches corrupted queries against them, with the analog
// energy/latency account.
//
// Usage:  ./build/examples/pattern_match
#include <iostream>

#include "core/random.h"
#include "oscillator/matcher.h"

using namespace rebooting;
using namespace rebooting::oscillator;

namespace {

/// 5x3 digit glyphs as intensity vectors (0 = background, 1 = stroke).
Feature glyph(const char* rows) {
  Feature f;
  for (const char* p = rows; *p; ++p)
    if (*p == '#' || *p == '.') f.push_back(*p == '#' ? 0.9 : 0.1);
  return f;
}

}  // namespace

int main() {
  core::Rng rng(9);
  ComparatorConfig cfg;
  cfg.calibration_points = 8;
  cfg.sim.duration = 120e-6;
  const OscillatorComparator comparator(cfg);
  std::cout << "Comparator unit: " << comparator.unit_power_watts() * 1e6
            << " uW, " << comparator.comparison_seconds() * 1e6
            << " us per comparison\n\n";

  // --- Glyph recognition ----------------------------------------------------
  TemplateMatcher glyphs(comparator);
  const char* shapes[] = {
      "### #.# #.# #.# ###",  // 0
      ".#. ##. .#. .#. ###",  // 1
      "### ..# ### #.. ###",  // 2
      "### ..# ### ..# ###",  // 3
  };
  for (const char* s : shapes) glyphs.add_template(glyph(s));

  std::cout << "Glyph recognition (5x3 digits, queries with pixel noise):\n";
  int correct = 0;
  constexpr int kQueries = 12;
  MatcherStats stats;
  for (int q = 0; q < kQueries; ++q) {
    const std::size_t truth = rng.uniform_index(4);
    Feature noisy = glyph(shapes[truth]);
    for (auto& px : noisy)
      px = std::clamp(px + rng.normal(0.0, 0.12), 0.0, 1.0);
    const std::size_t found = glyphs.best_match(noisy, &stats);
    if (found == truth) ++correct;
  }
  std::cout << "  " << correct << "/" << kQueries << " noisy glyphs matched; "
            << stats.comparisons << " analog comparisons, "
            << stats.energy_joules * 1e9 << " nJ, "
            << stats.latency_seconds * 1e3 << " ms total\n\n";

  // --- Fuzzy text matching ----------------------------------------------------
  TemplateMatcher words(comparator);
  const char* vocabulary[] = {"memcomputing", "oscillator", "quantum",
                              "accelerator", "neuromorphic"};
  for (const char* w : vocabulary) words.add_template(text_to_feature(w, 12));
  std::cout << "Fuzzy text matching:\n";
  for (const char* query : {"memcomputing", "oscilator", "quantun",
                            "accelerador"}) {
    const std::size_t best = words.best_match(text_to_feature(query, 12));
    std::cout << "  '" << query << "' -> '" << vocabulary[best] << "'\n";
  }

  // --- Clustering ----------------------------------------------------------
  TemplateMatcher points(comparator);
  for (int i = 0; i < 5; ++i)
    points.add_template({0.15 + 0.02 * i, 0.2});
  for (int i = 0; i < 5; ++i)
    points.add_template({0.8, 0.75 + 0.02 * i});
  const auto clusters = points.cluster(2);
  std::cout << "\nClustering 10 feature vectors into 2 groups:";
  for (const std::size_t c : clusters) std::cout << ' ' << c;
  std::cout << "\n(first five and last five should form the two groups)\n";
  return 0;
}
