// Sec. IV scenario: solve a SAT instance with the digital memcomputing
// machine and compare against the classical solvers. Reads DIMACS from
// argv[1], or generates a planted 3-SAT instance.
//
// Usage:  ./build/examples/solve_sat [formula.cnf]
#include <chrono>
#include <fstream>
#include <iostream>

#include "memcomputing/dmm.h"
#include "memcomputing/sat.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

namespace {

template <typename F>
core::Real timed_ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<core::Real, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  core::Rng rng(123);
  Cnf cnf;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    cnf = Cnf::from_dimacs(in);
    std::cout << "Loaded " << argv[1] << ": " << cnf.num_variables()
              << " variables, " << cnf.num_clauses() << " clauses\n";
  } else {
    const auto inst = planted_ksat(rng, 150, 637, 3);
    cnf = inst.cnf;
    std::cout << "Generated planted 3-SAT: n=150, m=637 (ratio 4.25)\n";
  }

  // --- DMM: the self-organizing circuit dynamics of Eqs. 1-2 --------------
  DmmOptions opts;
  opts.max_steps = 2'000'000;
  DmmResult dmm;
  const core::Real dmm_ms =
      timed_ms([&] { dmm = DmmSolver(cnf, opts).solve(rng); });
  std::cout << "\nDMM dynamics:      "
            << (dmm.satisfied ? "SATISFIED" : "no solution found") << " in "
            << dmm.steps << " steps (" << dmm_ms << " ms), simulated time "
            << dmm.sim_time << "\n";
  if (dmm.satisfied && !cnf.satisfied(dmm.assignment)) {
    std::cerr << "internal error: certificate check failed\n";
    return 1;
  }

  // --- Classical baselines --------------------------------------------------
  SatResult ws;
  const core::Real ws_ms = timed_ms([&] {
    WalkSatOptions wopts;
    wopts.max_flips = 5'000'000;
    ws = walksat(cnf, rng, wopts);
  });
  std::cout << "WalkSAT (SKC):     "
            << (ws.satisfied ? "SATISFIED" : "gave up") << " after "
            << ws.flips << " flips (" << ws_ms << " ms)\n";

  if (cnf.num_variables() <= 120) {
    SatResult dp;
    const core::Real dp_ms = timed_ms([&] {
      DpllOptions popts;
      popts.max_decisions = 20'000'000;
      dp = dpll(cnf, popts);
    });
    std::cout << "DPLL (complete):   "
              << (dp.satisfied ? "SATISFIED"
                               : (dp.hit_limit ? "decision limit" : "UNSAT"))
              << " after " << dp.decisions << " decisions (" << dp_ms
              << " ms)\n";
  } else {
    std::cout << "DPLL (complete):   skipped (instance too large for the "
                 "exhaustive baseline)\n";
  }

  if (dmm.satisfied) {
    std::cout << "\nSatisfying assignment (first 20 variables): ";
    for (std::size_t v = 1; v <= std::min<std::size_t>(20, cnf.num_variables());
         ++v)
      std::cout << (dmm.assignment[v] ? '1' : '0');
    std::cout << "...\n";
  }
  return 0;
}
