// Sec. II-C genome scenario: find where a DNA pattern occurs in a sequence,
// classically and by Grover search over the offset register — the paper's
// "entire inputted data-set ... encoded simultaneously as a superposition".
//
// Usage:  ./build/examples/dna_search [text_length] [pattern]
#include <cstdlib>
#include <iostream>

#include "quantum/algorithms.h"

using namespace rebooting;
using namespace rebooting::quantum;

int main(int argc, char** argv) {
  const std::size_t length =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const std::string pattern_text = argc > 2 ? argv[2] : "GATTACA";
  core::Rng rng(77);

  DnaSequence text = random_dna(rng, length);
  const DnaSequence pattern = dna_from_string(pattern_text);
  // Plant one occurrence so there is always something to find.
  const std::size_t plant = length / 3;
  for (std::size_t j = 0; j < pattern.size(); ++j) text[plant + j] = pattern[j];

  std::cout << "Text   (" << length << " bases): "
            << dna_to_string(text).substr(0, 60) << "...\n"
            << "Pattern (" << pattern.size() << " bases): " << pattern_text
            << "\n\n";

  std::size_t comparisons = 0;
  const auto classical = dna_match_classical(text, pattern, &comparisons);
  std::cout << "Classical scan: " << classical.size() << " match(es) at";
  for (const std::size_t m : classical) std::cout << ' ' << m;
  std::cout << " — " << comparisons << " base comparisons\n";

  const DnaMatchResult grover = dna_match_grover(text, pattern, rng);
  std::cout << "Grover search:  ";
  if (grover.position) {
    std::cout << "match at " << *grover.position << " — "
              << grover.oracle_calls << " oracle calls over "
              << grover.index_qubits << " index qubits (success prob "
              << grover.success_probability << ")\n";
    std::cout << "\nEach oracle call interrogates all "
              << (text.size() - pattern.size() + 1)
              << " candidate offsets in superposition; the number of calls "
                 "grows only as sqrt(offsets).\n";
  } else {
    std::cout << "no match returned (rerun: Grover is probabilistic)\n";
  }
  return 0;
}
