// Quickstart: the three post-von-Neumann computing models of the paper in
// one heterogeneous system (Fig. 1). A host registers the quantum, coupled-
// oscillator and memcomputing accelerators and offloads one representative
// job to each.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "core/accelerator.h"
#include "memcomputing/accelerator.h"
#include "memcomputing/dmm.h"
#include "oscillator/comparator.h"
#include "quantum/runtime.h"

using namespace rebooting;

int main() {
  core::Rng rng(1);
  core::HostSystem host;

  // --- Register the three accelerators of the paper -----------------------
  auto quantum_dev = std::make_shared<quantum::QuantumAccelerator>(
      quantum::QuantumDeviceConfig{.topology = quantum::Topology::line(4)});
  oscillator::ComparatorConfig osc_cfg;
  osc_cfg.calibration_points = 6;
  osc_cfg.sim.duration = 60e-6;
  auto oscillator_dev =
      std::make_shared<oscillator::OscillatorAccelerator>(osc_cfg);
  auto memcomputing_dev =
      std::make_shared<memcomputing::MemcomputingAccelerator>();
  host.register_accelerator(quantum_dev);
  host.register_accelerator(oscillator_dev);
  host.register_accelerator(memcomputing_dev);

  // --- Quantum job: entangle distant qubits through the full stack --------
  host.submit({.name = "bell-pair",
               .kind = core::AcceleratorKind::kQuantum,
               .payload = [&] {
                 quantum::Circuit bell(4);
                 bell.h(0).cx(0, 3);  // routed with SWAPs on the line device
                 const auto res = quantum_dev->run(bell, 1000, rng);
                 core::JobResult jr;
                 jr.ok = true;
                 jr.summary = "P(00)=" + std::to_string(res.frequency(0b0000)) +
                              " P(11)=" + std::to_string(res.frequency(0b1001));
                 return jr;
               }});

  // --- Oscillator job: an analog distance comparison -----------------------
  host.submit({.name = "analog-compare",
               .kind = core::AcceleratorKind::kOscillator,
               .payload = [&] {
                 const auto& cmp = oscillator_dev->comparator();
                 core::JobResult jr;
                 jr.ok = true;
                 jr.summary =
                     "d(0.2,0.8)=" + std::to_string(cmp.distance(0.2, 0.8)) +
                     "  d(0.5,0.5)=" + std::to_string(cmp.distance(0.5, 0.5)) +
                     "  unit power=" +
                     std::to_string(cmp.unit_power_watts() * 1e6) + " uW";
                 return jr;
               }});

  // --- Memcomputing job: solve a 3-SAT instance with DMM dynamics ----------
  host.submit({.name = "3sat-dmm",
               .kind = core::AcceleratorKind::kMemcomputing,
               .payload = [&] {
                 const auto inst = memcomputing::planted_ksat(rng, 60, 255, 3);
                 const auto r =
                     memcomputing::DmmSolver(inst.cnf, {}).solve(rng);
                 core::JobResult jr;
                 jr.ok = r.satisfied;
                 jr.summary = "solved n=60 m=255 in " +
                              std::to_string(r.steps) + " integration steps";
                 return jr;
               }});

  // --- Report ---------------------------------------------------------------
  std::cout << host.describe() << "\nJob log:\n";
  for (const auto& rec : host.log())
    std::cout << "  [" << core::to_string(rec.kind) << "] " << rec.job_name
              << ": " << (rec.result.ok ? "ok" : "FAILED") << " — "
              << rec.result.summary << '\n';
  return 0;
}
