// Quickstart: the three post-von-Neumann computing models of the paper in
// one heterogeneous system (Fig. 1). The async scheduler (src/scheduler/)
// owns one worker pool per accelerator kind and runs one representative job
// on each *concurrently* — the host overlaps quantum, oscillator, and
// memcomputing work instead of waiting on them one at a time, so the
// end-to-end wall time approaches the slowest job rather than the sum.
//
// Every job carries a RetryPolicy, so the example also demonstrates the
// resilience layer (DESIGN.md §10): run it with a fault plan, e.g.
//   REBOOTING_FAULTS=fault_plan.json ./build/examples/quickstart
// and all three jobs still complete — via retries (and, for the
// device-agnostic memcomputing job, failover to the classical-cpu pool) —
// with their attempt counts and fault logs printed per row. Exits nonzero if
// any paradigm job ultimately fails.
//
// Build & run:  ./build/examples/quickstart
#include <chrono>
#include <iostream>

#include "core/accelerator.h"
#include "memcomputing/accelerator.h"
#include "memcomputing/cnf.h"
#include "memcomputing/dmm.h"
#include "oscillator/comparator.h"
#include "quantum/circuit.h"
#include "quantum/runtime.h"
#include "scheduler/scheduler.h"

using namespace rebooting;

int main() {
  // --- One worker pool per paradigm of the paper --------------------------
  // (plus a classical-cpu pool: the failover target for jobs that opt in).
  sched::Scheduler scheduler;
  scheduler.add_pool(core::AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());
  scheduler.add_pool(core::AcceleratorKind::kQuantum, 1,
                     quantum::QuantumAccelerator::factory(
                         {.topology = quantum::Topology::line(4)}));
  oscillator::ComparatorConfig osc_cfg;
  osc_cfg.calibration_points = 6;
  osc_cfg.sim.duration = 60e-6;
  scheduler.add_pool(core::AcceleratorKind::kOscillator, 1,
                     oscillator::OscillatorAccelerator::factory(osc_cfg));
  scheduler.add_pool(core::AcceleratorKind::kMemcomputing, 1,
                     memcomputing::MemcomputingAccelerator::factory());

  // Retry hard enough to ride out a 20% transient-fault plan. The quantum
  // and oscillator payloads downcast to their device APIs, so they must stay
  // on their own pool; the memcomputing payload ignores its accelerator and
  // may fail over to the CPU pool.
  sched::JobOptions device_bound;
  device_bound.retry.max_attempts = 6;
  device_bound.retry.initial_backoff = std::chrono::milliseconds(1);
  sched::JobOptions portable = device_bound;
  portable.retry.max_attempts = 4;
  portable.retry.cpu_fallback = true;

  const auto start = std::chrono::steady_clock::now();

  // --- Quantum job: entangle distant qubits through the full stack --------
  auto quantum_f = scheduler.submit(
      "bell-pair", core::AcceleratorKind::kQuantum,
      [](core::Accelerator& a) {
        auto& dev = dynamic_cast<quantum::QuantumAccelerator&>(a);
        core::Rng rng(1);
        quantum::Circuit bell(4);
        bell.h(0).cx(0, 3);  // routed with SWAPs on the line device
        const auto res = dev.run(bell, 1000, rng);
        core::JobResult jr;
        jr.ok = true;
        jr.summary = "P(00)=" + std::to_string(res.frequency(0b0000)) +
                     " P(11)=" + std::to_string(res.frequency(0b1001));
        return jr;
      },
      device_bound);

  // --- Oscillator job: an analog distance comparison ----------------------
  auto oscillator_f = scheduler.submit(
      "analog-compare", core::AcceleratorKind::kOscillator,
      [](core::Accelerator& a) {
        const auto& cmp =
            dynamic_cast<oscillator::OscillatorAccelerator&>(a).comparator();
        core::JobResult jr;
        jr.ok = true;
        jr.summary = "d(0.2,0.8)=" + std::to_string(cmp.distance(0.2, 0.8)) +
                     "  d(0.5,0.5)=" + std::to_string(cmp.distance(0.5, 0.5)) +
                     "  unit power=" +
                     std::to_string(cmp.unit_power_watts() * 1e6) + " uW";
        return jr;
      },
      device_bound);

  // --- Memcomputing job: solve a 3-SAT instance with DMM dynamics ---------
  auto memcomputing_f = scheduler.submit(
      "3sat-dmm", core::AcceleratorKind::kMemcomputing,
      [](core::Accelerator&) {
        core::Rng rng(2);
        const auto inst = memcomputing::planted_ksat(rng, 60, 255, 3);
        const auto r = memcomputing::DmmSolver(inst.cnf, {}).solve(rng);
        core::JobResult jr;
        jr.ok = r.satisfied;
        jr.summary = "solved n=60 m=255 in " + std::to_string(r.steps) +
                     " integration steps";
        return jr;
      },
      portable);

  // --- Fan-in: wait for all three, then compare overlap vs serial ---------
  struct Row {
    const char* kind;
    core::JobResult result;
  };
  const Row rows[] = {
      {"quantum", quantum_f.get()},
      {"oscillator", oscillator_f.get()},
      {"memcomputing", memcomputing_f.get()},
  };
  const core::Real end_to_end =
      std::chrono::duration<core::Real>(std::chrono::steady_clock::now() -
                                        start)
          .count();
  core::Real sum_of_parts = 0.0;
  for (const auto& row : rows) sum_of_parts += row.result.wall_seconds;

  std::cout << scheduler.describe() << "\nJob results:\n";
  bool all_ok = true;
  for (const auto& row : rows) {
    all_ok = all_ok && row.result.ok;
    std::cout << "  [" << row.kind << "] "
              << (row.result.ok ? "ok" : "FAILED") << " in "
              << row.result.wall_seconds << " s, " << row.result.attempts
              << " attempt(s)" << (row.result.degraded ? " (degraded)" : "")
              << " — " << row.result.summary << '\n';
    for (const auto& line : row.result.fault_log)
      std::cout << "      fault: " << line << '\n';
  }
  std::cout << "\nEnd-to-end wall time:  " << end_to_end << " s\n"
            << "Sum of job times:      " << sum_of_parts << " s\n"
            << "Overlap speedup:       " << sum_of_parts / end_to_end
            << "x (the three paradigms ran concurrently; exceeding 1x "
               "needs spare host cores, since these devices are simulated "
               "on the CPU)\n";
  return all_ok ? 0 : 1;
}
