// Sec. III-B scenario: FAST corner detection on the coupled-oscillator
// distance norm. Generates a synthetic scene (or loads a PGM given as
// argv[1]), runs both the software baseline and the oscillator pipeline,
// writes annotated output images, and prints the power/energy account.
//
// Usage:  ./build/examples/corner_detection [input.pgm]
#include <iostream>

#include "core/random.h"
#include "vision/oscillator_fast.h"
#include "vision/power.h"

using namespace rebooting;
using namespace rebooting::vision;

namespace {

/// Draws a 3x3 cross at each detection (white).
void annotate(Image& img, const std::vector<FastDetection>& detections) {
  for (const auto& d : detections) {
    for (int k = -2; k <= 2; ++k) {
      if (img.in_bounds(d.position.x + k, d.position.y))
        img.at(static_cast<std::size_t>(d.position.x + k),
               static_cast<std::size_t>(d.position.y)) = 1.0;
      if (img.in_bounds(d.position.x, d.position.y + k))
        img.at(static_cast<std::size_t>(d.position.x),
               static_cast<std::size_t>(d.position.y + k)) = 1.0;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::Rng rng(7);
  Scene scene;
  if (argc > 1) {
    scene.image = Image::load_pgm(argv[1]);
    std::cout << "Loaded " << argv[1] << " (" << scene.image.width() << "x"
              << scene.image.height() << ")\n";
  } else {
    scene = make_polygon_scene(rng, 128, 128, 5, 0.6, 0.01);
    scene.image.save_pgm("corner_input.pgm");
    std::cout << "Generated synthetic scene -> corner_input.pgm ("
              << scene.true_corners.size() << " true corners)\n";
  }

  // Calibrate the analog comparison primitive once.
  oscillator::ComparatorConfig cfg;
  cfg.calibration_points = 8;
  cfg.sim.duration = 120e-6;
  const oscillator::OscillatorComparator comparator(cfg);
  std::cout << "Comparator calibrated: f = "
            << comparator.calibration().oscillation_hz / 1e6
            << " MHz, unit power = " << comparator.unit_power_watts() * 1e6
            << " uW\n";

  // Software baseline.
  std::size_t sw_ops = 0;
  const auto sw = fast_detect(scene.image, FastOptions{}, &sw_ops);
  std::cout << "\nSoftware FAST-9: " << sw.size() << " corners ("
            << sw_ops << " comparisons)\n";

  // Oscillator pipeline (Fig. 6 two-step dataflow).
  OscillatorFastStats stats;
  const OscillatorFastDetector detector(comparator, OscillatorFastOptions{});
  const auto osc = detector.detect(scene.image, &stats);
  std::cout << "Oscillator FAST: " << osc.size() << " corners ("
            << stats.step1_comparisons << " step-1 + "
            << stats.step2_comparisons << " step-2 comparisons, "
            << stats.rejected_by_step2 << " false positives suppressed)\n";

  if (!scene.true_corners.empty()) {
    auto positions = [](const std::vector<FastDetection>& ds) {
      std::vector<Pixel> px;
      for (const auto& d : ds) px.push_back(d.position);
      return px;
    };
    const auto sw_score = score_detections(positions(sw), scene.true_corners);
    const auto osc_score = score_detections(positions(osc), scene.true_corners);
    std::cout << "\nvs ground truth:  software P/R = " << sw_score.precision
              << "/" << sw_score.recall
              << "   oscillator P/R = " << osc_score.precision << "/"
              << osc_score.recall << '\n';
  }

  const auto energy = frame_energy(comparator, stats);
  std::cout << "\nEnergy for this frame's comparisons:\n"
            << "  oscillator block: " << energy.oscillator_joules * 1e9
            << " nJ over " << energy.oscillator_seconds * 1e3 << " ms\n"
            << "  CMOS 32nm block:  " << energy.cmos_joules * 1e9 << " nJ over "
            << energy.cmos_seconds * 1e6 << " us\n";

  Image annotated = scene.image;
  annotate(annotated, osc);
  annotated.save_pgm("corner_detected.pgm");
  std::cout << "\nAnnotated detections written to corner_detected.pgm\n";
  return 0;
}
