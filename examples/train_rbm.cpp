// Sec. IV machine-learning scenario: pre-train a small RBM on the
// bars-and-stripes dataset with (a) plain contrastive divergence and (b)
// memcomputing mode-assisted training, where a DMM finds the model's
// lowest-energy joint state to drive the negative gradient.
//
// Usage:  ./build/examples/train_rbm [epochs]
#include <cstdlib>
#include <iostream>

#include "memcomputing/rbm.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

namespace {

void report(const char* label, const RbmTrainResult& result) {
  std::cout << label << ":\n  epoch    NLL    recon-err\n";
  for (const auto& pt : result.history)
    std::cout << "  " << pt.epoch << "\t" << pt.nll << "\t"
              << pt.reconstruction_error << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t epochs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1200;
  const Dataset data = bars_and_stripes(3);
  std::cout << "Dataset: bars-and-stripes 3x3 (" << data.size()
            << " patterns). Optimal NLL = ln(" << data.size()
            << ") = " << std::log(static_cast<double>(data.size())) << "\n\n";

  RbmTrainOptions base;
  base.epochs = epochs;
  base.learning_rate = 0.2;
  base.eval_stride = epochs / 5;
  base.dmm_max_steps = 3000;

  core::Rng rng_cd(99);
  BinaryRbm cd_rbm(9, 12, rng_cd);
  RbmTrainOptions cd_opts = base;
  cd_opts.trainer = RbmTrainer::kCdBaseline;
  const auto cd = train_rbm(cd_rbm, data, cd_opts, rng_cd);
  report("CD-1 baseline", cd);

  core::Rng rng_mode(99);
  BinaryRbm mode_rbm(9, 12, rng_mode);
  RbmTrainOptions mode_opts = base;
  mode_opts.trainer = RbmTrainer::kModeAssistedDmm;
  const auto mode = train_rbm(mode_rbm, data, mode_opts, rng_mode);
  report("\nDMM mode-assisted", mode);

  std::cout << "\nFinal NLL: CD = " << cd.final_nll
            << "   mode-assisted = " << mode.final_nll << '\n';
  if (mode.final_nll < cd.final_nll)
    std::cout << "Mode-assisted training ended at better quality — the "
                 "Sec. IV training-quality advantage.\n";
  else
    std::cout << "(Stochastic run: rerun with more epochs to see the "
                 "mode-assisted advantage emerge.)\n";
  return 0;
}
