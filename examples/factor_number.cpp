// Cross-paradigm scenario: factor a small semiprime two entirely different
// post-von-Neumann ways — Shor's algorithm on the quantum accelerator
// (Sec. II-C) and an inverted self-organizing-logic-gate multiplier on the
// memcomputing machine (Sec. IV, ref [47]).
//
// Usage:  ./build/examples/factor_number [N]     (default 35)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "memcomputing/solg.h"
#include "quantum/algorithms.h"

using namespace rebooting;

int main(int argc, char** argv) {
  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 35ull;
  if (n < 4 || n > 255) {
    std::cerr << "N must be in [4, 255] (simulator-scale factoring)\n";
    return 1;
  }
  core::Rng rng(2026);

  std::cout << "Factoring N = " << n << "\n";

  // --- Route 1: quantum period finding -------------------------------------
  {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = quantum::shor_factor(n, rng, 40);
    const auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::cout << "\n[quantum / Shor]      ";
    if (r.success) {
      std::cout << n << " = " << r.factor1 << " x " << r.factor2 << "  ("
                << r.attempts << " order-finding runs, " << r.qubits_used
                << " qubits";
      if (r.period) std::cout << ", period r = " << r.period;
      std::cout << ", " << ms << " ms)\n";
    } else {
      std::cout << "failed after " << r.attempts << " attempts (prime N?)\n";
    }
  }

  // --- Route 2: memcomputing SOLG multiplier inversion ---------------------
  {
    // Size the multiplier to the target: factors fit in half the bits + 1.
    std::size_t bits = 1;
    while ((1ull << bits) * (1ull << bits) < n) ++bits;
    ++bits;  // headroom for asymmetric factorizations
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = memcomputing::solg_factor(n, bits, bits, rng);
    const auto ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::cout << "[memcomputing / SOLG] ";
    if (r.found) {
      std::cout << n << " = " << r.a << " x " << r.b << "  ("
                << r.dynamics.steps << " integration steps, "
                << r.dynamics.restarts_used << " restarts, " << ms << " ms)\n";
      std::cout << "\nThe multiplier circuit ran BACKWARD: its product "
                   "terminals were pinned to " << n
                << "\nand the self-organizing gates relaxed the input "
                   "terminals to the factors —\nthe terminal-agnostic "
                   "operation of Sec. IV.\n";
    } else {
      std::cout << "no consistent factorization found (prime N?)\n";
    }
  }
  return 0;
}
