// Preemption latency acceptance bench (DESIGN.md §12, exit-gated).
//
// A single-worker CPU pool runs a long low-priority sliced DMM solve
// (~5-20 ms per slice). High-priority jobs submitted while it runs must
// START within one slice budget plus dispatch overhead: the worker notices
// the queued job through the YieldProbe at the next checkpoint, parks the
// solve, and runs the newcomer. The gate is deliberately generous (250 ms
// worst case over several trials) so it only catches a broken preemption
// path — a non-yielding payload would hold the worker for the full solve,
// seconds — never a slow CI runner.
//
// Writes BENCH_preemption.json; exits 1 when the gate fails.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "core/json.h"
#include "core/table.h"
#include "memcomputing/dmm.h"
#include "memcomputing/sat.h"
#include "scheduler/scheduler.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

constexpr int kTrials = 5;
constexpr double kGateMs = 250.0;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      rebooting::bench::artifact_path(argc, argv, "BENCH_preemption.json");
  core::print_banner(std::cout,
                     "preemption latency — high-priority start time while a "
                     "sliced DMM solve holds the only worker");

  sched::Scheduler scheduler({.queue_capacity = 16});
  scheduler.add_pool(core::AcceleratorKind::kClassicalCpu, 1,
                     core::CpuAccelerator::factory());

  // The background workload: repeated checkpointed trajectories of a planted
  // instance, advanced a few thousand steps per slice (~5-20 ms). The slice
  // loop keeps integrating until the probe reports queued higher-priority
  // work, so every trial exercises a genuine mid-solve preemption.
  core::Rng gen(424242);
  const auto inst = planted_ksat(gen, 60, 255, 3);
  DmmOptions dopts;
  dopts.max_steps = 100'000;
  const auto solver = std::make_shared<DmmSolver>(inst.cnf, dopts);

  struct SolveState {
    core::Checkpoint ckpt;
    core::Workspace ws;
    std::uint64_t trajectory = 0;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> slices{0};
  };
  const auto state = std::make_shared<SolveState>();

  auto low = scheduler.submit_preemptible(
      "background-solve", core::AcceleratorKind::kClassicalCpu,
      [solver, state](core::Accelerator&, const sched::YieldProbe& probe)
          -> std::optional<core::JobResult> {
        while (!state->stop.load(std::memory_order_relaxed)) {
          if (state->ckpt.tag.empty()) {
            core::Rng rng = core::Rng::stream(7, state->trajectory++);
            std::vector<core::Real> v0(60);
            for (auto& v : v0) v = rng.uniform(-1.0, 1.0);
            state->ckpt = solver->begin(std::move(v0), rng);
          }
          const DmmSliceOutcome out = solver->advance(
              state->ckpt, core::SliceBudget::steps(4000), state->ws);
          state->slices.fetch_add(1, std::memory_order_relaxed);
          if (out.done) state->ckpt = core::Checkpoint{};  // next trajectory
          if (probe.should_yield()) return std::nullopt;
        }
        core::JobResult r;
        r.ok = true;
        r.summary = "stopped after " +
                    std::to_string(state->slices.load()) + " slices";
        return r;
      });

  // Wait until the solve is actually occupying the worker.
  while (state->slices.load(std::memory_order_relaxed) == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::vector<double> latencies_ms;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto submitted = Clock::now();
    auto high = scheduler.submit(
        core::Job{"probe-" + std::to_string(trial),
                  core::AcceleratorKind::kClassicalCpu,
                  [] {
                    core::JobResult r;
                    r.ok = true;
                    return r;
                  }},
        [] {
          sched::JobOptions opts;
          opts.priority = 9;
          return opts;
        }());
    const core::JobResult r = high.get();
    const double latency = ms_between(submitted, Clock::now());
    if (!r.ok) {
      std::cerr << "high-priority probe failed: " << r.summary << '\n';
      return 1;
    }
    latencies_ms.push_back(latency);
    // Let the background solve resume and re-occupy the worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  state->stop.store(true);
  const core::JobResult low_result = low.get();

  double worst = 0.0, sum = 0.0;
  for (const double l : latencies_ms) {
    worst = std::max(worst, l);
    sum += l;
  }
  const double mean = sum / static_cast<double>(latencies_ms.size());
  const sched::SchedulerStats stats = scheduler.stats();
  const bool gate_ok = worst <= kGateMs;

  core::Table table({"metric", "value"}, 4);
  table.add_row({std::string("trials"),
                 static_cast<std::int64_t>(kTrials)});
  table.add_row({std::string("mean start latency [ms]"), mean});
  table.add_row({std::string("worst start latency [ms]"), worst});
  table.add_row({std::string("gate [ms]"), kGateMs});
  table.add_row({std::string("slices run"),
                 static_cast<std::int64_t>(stats.slices)});
  table.add_row({std::string("preempts"),
                 static_cast<std::int64_t>(stats.preempts)});
  table.add_row({std::string("resumes"),
                 static_cast<std::int64_t>(stats.resumes)});
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nbackground solve: " << low_result.summary
            << "\npreemption gate: worst " << worst << " ms vs " << kGateMs
            << " ms -> " << (gate_ok ? "PASS" : "FAIL") << '\n';

  {
    std::ofstream json(out_path);
    json << "{\n"
         << "  \"bench\": " << core::json_quote("preemption_latency") << ",\n"
         << "  \"trials\": " << kTrials << ",\n"
         << "  \"mean_start_ms\": " << core::json_number(mean) << ",\n"
         << "  \"worst_start_ms\": " << core::json_number(worst) << ",\n"
         << "  \"gate_ms\": " << core::json_number(kGateMs) << ",\n"
         << "  \"slices\": " << stats.slices << ",\n"
         << "  \"preempts\": " << stats.preempts << ",\n"
         << "  \"resumes\": " << stats.resumes << ",\n"
         << "  \"gate\": " << core::json_quote(gate_ok ? "pass" : "fail")
         << "\n}\n";
    std::cout << "wrote " << out_path << '\n';
  }

  // Sanity: every trial must have gone through the preemption machinery.
  if (stats.preempts < static_cast<std::uint64_t>(kTrials)) {
    std::cerr << "expected >= " << kTrials << " preempts, saw "
              << stats.preempts << '\n';
    return 1;
  }
  return gate_ok ? 0 : 1;
}
