// E8 — Sec. IV spin-glass claim (ref [56]): on frustrated-loop Ising
// instances, DMM dynamics reach the (planted) ground state through
// COLLECTIVE spin flips — avalanches spanning a finite fraction of the
// lattice — where single-spin-flip simulated annealing needs many more
// elementary moves.
#include <iostream>
#include <vector>

#include "core/stats.h"
#include "core/table.h"
#include "memcomputing/dmm.h"
#include "memcomputing/ising.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

int main() {
  core::print_banner(std::cout,
                     "E8 / Sec. IV — frustrated-loop Ising spin glass: DMM vs "
                     "simulated annealing");

  core::Rng rng(404);
  core::Table table({"side", "spins", "bonds", "DMM ground hit",
                     "DMM steps to ground", "SA ground hit",
                     "SA flips attempted",
                     "max avalanche [spins]", "avalanches >= 4 spins"},
                    2);

  core::Histogram avalanche_hist(0.5, 24.5, 24);

  for (const std::size_t side : {4u, 6u, 8u}) {
    constexpr int kInstances = 4;
    int dmm_hits = 0;
    int sa_hits = 0;
    std::vector<core::Real> dmm_steps, sa_flips;
    std::size_t max_avalanche = 0;
    std::size_t big_avalanches = 0;

    for (int i = 0; i < kInstances; ++i) {
      const auto inst =
          make_frustrated_loops(rng, side, 2 * side, 2 * side);
      const Cnf cnf = ising_to_cnf(inst.model);

      DmmOptions dopts;
      dopts.maxsat_mode = true;
      dopts.max_steps = 60'000;
      dopts.track_avalanches = true;
      const DmmResult dr = DmmSolver(cnf, dopts).solve(rng);
      const core::Real dmm_energy =
          cnf_assignment_energy(inst.model, dr.assignment);
      if (std::abs(dmm_energy - inst.ground_energy) < 1e-9) {
        ++dmm_hits;
        dmm_steps.push_back(static_cast<core::Real>(dr.steps_to_best));
      }
      for (const std::size_t a : dr.avalanche_sizes) {
        avalanche_hist.add(static_cast<core::Real>(a));
        max_avalanche = std::max(max_avalanche, a);
        if (a >= 4) ++big_avalanches;
      }

      AnnealOptions aopts;
      aopts.sweeps = 3000;
      aopts.restarts = 2;
      const AnnealResult ar = simulated_annealing(inst.model, rng, aopts);
      if (std::abs(ar.best_energy - inst.ground_energy) < 1e-9) {
        ++sa_hits;
        sa_flips.push_back(static_cast<core::Real>(ar.total_flips_attempted));
      }
    }

    auto frac = [&](int hits) {
      return std::string(std::to_string(hits) + "/" +
                         std::to_string(kInstances));
    };
    table.add_row({static_cast<std::int64_t>(side),
                   static_cast<std::int64_t>(side * side),
                   static_cast<std::int64_t>(4 * side),  // approximate
                   frac(dmm_hits),
                   dmm_steps.empty() ? 0.0 : core::median(dmm_steps),
                   frac(sa_hits),
                   sa_flips.empty() ? 0.0 : core::median(sa_flips),
                   static_cast<std::int64_t>(max_avalanche),
                   static_cast<std::int64_t>(big_avalanches)});
  }
  std::cout << '\n';
  table.print(std::cout);

  std::cout << "\nDMM avalanche-size distribution (spins flipped per "
               "integration step):\n";
  core::Table hist({"avalanche size", "fraction of events"}, 4);
  for (std::size_t b = 0; b < avalanche_hist.bins(); ++b) {
    if (avalanche_hist.bin_count(b) == 0) continue;
    hist.add_row({static_cast<std::int64_t>(
                      static_cast<long long>(avalanche_hist.bin_center(b))),
                  avalanche_hist.bin_fraction(b)});
  }
  hist.print(std::cout);
  std::cout << "\nPaper shape: the DMM performs collective (multi-spin) "
               "flips — the heavy tail above size 1 — while SA is restricted "
               "to single-spin moves by construction.\n";
  return 0;
}
