// Micro-kernel timings (google-benchmark): the elementary operations each
// simulated substrate is built from. Useful for regression-tracking the
// engines' inner loops.
#include <benchmark/benchmark.h>

#include "core/random.h"
#include "memcomputing/dmm.h"
#include "memcomputing/sat.h"
#include "oscillator/network.h"
#include "quantum/circuit.h"

using namespace rebooting;

namespace {

void BM_StateVectorHadamard(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  quantum::StateVector sv(qubits);
  const auto h = quantum::gate_matrix(quantum::GateKind::kH);
  std::size_t target = 0;
  for (auto _ : state) {
    sv.apply_1q(h, target);
    target = (target + 1) % qubits;
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(1ull << qubits));
}
BENCHMARK(BM_StateVectorHadamard)->Arg(10)->Arg(16)->Arg(20);

void BM_DmmStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(1);
  const auto inst = memcomputing::planted_ksat(
      rng, n, static_cast<std::size_t>(4.25 * static_cast<double>(n)), 3);
  // Time a bounded solve; steps/op reported via items processed.
  for (auto _ : state) {
    memcomputing::DmmOptions opts;
    opts.max_steps = 200;
    core::Rng r(7);
    auto result = memcomputing::DmmSolver(inst.cnf, opts).solve(r);
    benchmark::DoNotOptimize(result.steps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_DmmStep)->Arg(50)->Arg(200);

void BM_OscillatorNetworkStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  oscillator::CoupledOscillatorNetwork net(oscillator::OscillatorParams{}, n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    net.add_coupling({.a = i, .b = i + 1, .r = 15e3, .c = 1e-12});
  oscillator::SimulationOptions so;
  so.duration = 1e-6;
  so.dt = 1e-9;
  so.sample_stride = 1000;
  for (auto _ : state) {
    const auto trace = net.simulate(so);
    benchmark::DoNotOptimize(trace.samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_OscillatorNetworkStep)->Arg(2)->Arg(8)->Arg(16);

void BM_WalkSatFlips(benchmark::State& state) {
  core::Rng rng(3);
  const auto inst = memcomputing::planted_ksat(rng, 100, 425, 3);
  for (auto _ : state) {
    memcomputing::WalkSatOptions opts;
    opts.max_flips = 2000;
    core::Rng r(5);
    auto result = memcomputing::walksat(inst.cnf, r, opts);
    benchmark::DoNotOptimize(result.flips);
  }
}
BENCHMARK(BM_WalkSatFlips);

}  // namespace

BENCHMARK_MAIN();
