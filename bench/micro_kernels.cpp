// Micro-kernel timings (google-benchmark): the elementary operations each
// simulated substrate is built from. Useful for regression-tracking the
// engines' inner loops.
#include <benchmark/benchmark.h>

#include "core/random.h"
#include "memcomputing/dmm.h"
#include "memcomputing/sat.h"
#include "oscillator/network.h"
#include "quantum/circuit.h"
#include "telemetry/telemetry.h"

using namespace rebooting;

namespace {

void BM_StateVectorHadamard(benchmark::State& state) {
  const auto qubits = static_cast<std::size_t>(state.range(0));
  quantum::StateVector sv(qubits);
  const auto h = quantum::gate_matrix(quantum::GateKind::kH);
  std::size_t target = 0;
  for (auto _ : state) {
    sv.apply_1q(h, target);
    target = (target + 1) % qubits;
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(1ull << qubits));
}
BENCHMARK(BM_StateVectorHadamard)->Arg(10)->Arg(16)->Arg(20);

void BM_DmmStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::Rng rng(1);
  const auto inst = memcomputing::planted_ksat(
      rng, n, static_cast<std::size_t>(4.25 * static_cast<double>(n)), 3);
  // Time a bounded solve; steps/op reported via items processed. The solver
  // may terminate (solution found) before max_steps, so count actual steps.
  std::int64_t total_steps = 0;
  for (auto _ : state) {
    memcomputing::DmmOptions opts;
    opts.max_steps = 200;
    core::Rng r(7);
    auto result = memcomputing::DmmSolver(inst.cnf, opts).solve(r);
    total_steps += static_cast<std::int64_t>(result.steps);
    benchmark::DoNotOptimize(result.steps);
  }
  state.SetItemsProcessed(total_steps);
}
BENCHMARK(BM_DmmStep)->Arg(50)->Arg(200);

void BM_OscillatorNetworkStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  oscillator::CoupledOscillatorNetwork net(oscillator::OscillatorParams{}, n);
  for (std::size_t i = 0; i + 1 < n; ++i)
    net.add_coupling({.a = i, .b = i + 1, .r = 15e3, .c = 1e-12});
  oscillator::SimulationOptions so;
  so.duration = 1e-6;
  so.dt = 1e-9;
  so.sample_stride = 1000;
  for (auto _ : state) {
    const auto trace = net.simulate(so);
    benchmark::DoNotOptimize(trace.samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_OscillatorNetworkStep)->Arg(2)->Arg(8)->Arg(16);

// Overhead of the telemetry instrumentation in its default (disabled) state:
// one relaxed atomic load + branch per TELEM_SPAN site. This is the number
// that keeps spans allowed inside per-gate device code — compare against
// BM_StateVectorHadamard / BM_OscillatorNetworkStep, which carry spans on
// their hot paths.
void BM_TelemetrySpanDisabled(benchmark::State& state) {
  telemetry::Telemetry::set_enabled(false);
  int sink = 0;
  for (auto _ : state) {
    TELEM_SPAN("bench.noop");
    benchmark::DoNotOptimize(++sink);
  }
}
BENCHMARK(BM_TelemetrySpanDisabled);

// Cost of a live span (two clock reads + locked tree update) — the price an
// engine pays per instrumented call while a report is being collected.
void BM_TelemetrySpanEnabled(benchmark::State& state) {
  telemetry::Telemetry::set_enabled(true);
  int sink = 0;
  for (auto _ : state) {
    TELEM_SPAN("bench.noop");
    benchmark::DoNotOptimize(++sink);
  }
  telemetry::Telemetry::set_enabled(false);
  telemetry::Telemetry::instance().reset();
}
BENCHMARK(BM_TelemetrySpanEnabled);

void BM_WalkSatFlips(benchmark::State& state) {
  core::Rng rng(3);
  const auto inst = memcomputing::planted_ksat(rng, 100, 425, 3);
  for (auto _ : state) {
    memcomputing::WalkSatOptions opts;
    opts.max_flips = 2000;
    core::Rng r(5);
    auto result = memcomputing::walksat(inst.cnf, r, opts);
    benchmark::DoNotOptimize(result.flips);
  }
}
BENCHMARK(BM_WalkSatFlips);

}  // namespace

BENCHMARK_MAIN();
