// Shared plumbing for the exit-gated benches: where the machine-readable
// BENCH_*.json artifact lands.
//
// Default is next to the binary itself (${CMAKE_BINARY_DIR}/bench), not the
// CWD — `./build/bench/trace_overhead` from the repo root must not litter
// the checkout, and CI's artifact-upload globs stay valid no matter which
// directory the job happens to run the bench from. `--out PATH` overrides
// for scripted runs that want artifacts elsewhere.
#pragma once

#include <cstring>
#include <string>

namespace rebooting::bench {

/// Resolves the artifact path: `--out PATH` from argv wins, else
/// `<dir of argv[0]>/<default_name>`.
inline std::string artifact_path(int argc, char** argv,
                                 const std::string& default_name) {
  for (int i = 1; i + 1 < argc; ++i)
    if (!std::strcmp(argv[i], "--out")) return argv[i + 1];
  const std::string self = argc > 0 && argv[0] != nullptr ? argv[0] : "";
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return default_name;
  return self.substr(0, slash + 1) + default_name;
}

}  // namespace rebooting::bench
