// E3 — Sec. III-B power claim: the 16-unit coupled-oscillator corner
// comparison block (including XOR readout) draws 0.936 mW vs 3 mW for the
// corresponding CMOS datapath at 32 nm (~3.2x advantage).
//
// The oscillator number comes from the circuit simulation (supply current of
// the calibrated pairs + readout logic); the CMOS number is rebuilt from a
// gate inventory at the 32 nm node.
#include <iostream>

#include "core/table.h"
#include "vision/power.h"

using namespace rebooting;
using namespace rebooting::vision;

int main() {
  core::print_banner(std::cout,
                     "E3 / Sec. III-B — corner-detection block power: "
                     "oscillator vs 32 nm CMOS");

  oscillator::ComparatorConfig cfg;
  cfg.calibration_points = 8;
  cfg.sim.duration = 120e-6;
  cfg.sim.dt = 1e-9;
  cfg.sim.sample_stride = 4;
  const oscillator::OscillatorComparator comparator(cfg);

  const auto& cal = comparator.calibration();
  std::cout << "\nCalibrated comparison unit (pair of coupled VO2 oscillators):\n";
  core::Table unit({"quantity", "value"}, 4);
  unit.add_row({std::string("oscillation frequency [MHz]"),
                cal.oscillation_hz / 1e6});
  unit.add_row({std::string("pair supply power [uW]"),
                cal.pair_power_watts * 1e6});
  unit.add_row({std::string("unit power incl. XOR readout [uW]"),
                comparator.unit_power_watts() * 1e6});
  unit.add_row({std::string("comparison latency [us]"),
                comparator.comparison_seconds() * 1e6});
  unit.add_row({std::string("energy per comparison [pJ]"),
                comparator.energy_per_comparison() * 1e12});
  unit.print(std::cout);

  const CmosBlockConfig cmos{};
  const FastBlockPowerReport report = compare_fast_block_power(comparator, cmos);

  std::cout << "\nCMOS 16-lane comparison datapath @ " << cmos.tech.node_name
            << ", " << cmos.clock_hz / 1e9 << " GHz, activity "
            << cmos.activity << ":\n";
  core::Table gates({"block", "NAND2-equivalent gates"}, 1);
  gates.add_row({std::string("one comparison lane"),
                 cmos_comparison_lane().nand2_equivalents()});
  gates.add_row({std::string("full 16-lane block + control"),
                 cmos_fast_block().nand2_equivalents()});
  gates.print(std::cout);

  std::cout << "\nHeadline comparison (paper: 0.936 mW vs 3 mW, ratio 3.2x):\n";
  core::Table head({"block", "power [mW]"}, 3);
  head.add_row({std::string("oscillator block (16 units + readout)"),
                report.oscillator_block_watts * 1e3});
  head.add_row({std::string("CMOS block dynamic"),
                report.cmos_dynamic_watts * 1e3});
  head.add_row({std::string("CMOS block leakage"),
                report.cmos_leakage_watts * 1e3});
  head.add_row({std::string("CMOS block total"), report.cmos_block_watts * 1e3});
  head.print(std::cout);
  std::cout << "CMOS / oscillator power ratio: " << report.power_ratio
            << "x  (paper: 3.2x)\n";

  std::cout << "\nPer-comparison energy:\n";
  core::Table e({"implementation", "energy per comparison [pJ]"}, 3);
  e.add_row({std::string("oscillator unit"),
             report.oscillator_energy_per_cmp * 1e12});
  e.add_row({std::string("CMOS lane"), report.cmos_energy_per_cmp * 1e12});
  e.print(std::cout);

  // Node sweep: how the CMOS side moves across process nodes (context for
  // the 32 nm number).
  core::print_banner(std::cout, "CMOS power across process nodes");
  core::Table nodes({"node", "block power [mW]"}, 3);
  for (const auto& tech :
       {core::CmosTechnology::node_45nm(), core::CmosTechnology::node_32nm(),
        core::CmosTechnology::node_22nm()}) {
    CmosBlockConfig c{};
    c.tech = tech;
    const auto r = compare_fast_block_power(comparator, c);
    nodes.add_row({tech.node_name, r.cmos_block_watts * 1e3});
  }
  nodes.print(std::cout);
  return 0;
}
