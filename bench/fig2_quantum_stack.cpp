// E10 — Fig. 1/2 reproduction: the quantum accelerator as one device in a
// heterogeneous host system, with the full stack (application -> algorithm ->
// compiler -> QISA -> microarchitecture -> device) reporting per-layer
// statistics for representative workloads, plus the compiler ablation
// (topology and optimizer) called out in DESIGN.md.
#include <iostream>
#include <memory>

#include "core/accelerator.h"
#include "core/table.h"
#include "quantum/algorithms.h"
#include "quantum/qisa.h"
#include "quantum/runtime.h"

using namespace rebooting;
using namespace rebooting::quantum;

namespace {

Circuit ghz_circuit(std::size_t n) {
  Circuit c(n);
  c.h(0);
  for (std::size_t q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  return c;
}

Circuit qft_workload(std::size_t n) {
  Circuit c(n);
  for (std::size_t q = 0; q < n; ++q) c.h(q);
  c.append(qft_circuit(n));
  return c;
}

}  // namespace

int main() {
  core::print_banner(std::cout,
                     "E10 / Fig. 1+2 — quantum accelerator stack in the "
                     "heterogeneous host");

  core::Rng rng(8);
  core::HostSystem host;
  auto accel = std::make_shared<QuantumAccelerator>(
      QuantumDeviceConfig{.topology = Topology::line(8)});
  host.register_accelerator(accel);

  struct Workload {
    const char* name;
    Circuit circuit;
  };
  const std::vector<Workload> workloads = {
      {"GHZ-8", ghz_circuit(8)},
      {"QFT-6", qft_workload(6)},
      {"Bell distant (q0,q7)", [] {
         Circuit c(8);
         c.h(0).cx(0, 7);
         return c;
       }()},
  };

  core::Table table({"workload", "source gates", "native gates", "swaps",
                     "optimized gates", "depth", "device cycles",
                     "device time/shot [us]"},
                    2);
  for (const auto& [name, circuit] : workloads) {
    core::Job job;
    job.name = name;
    job.kind = core::AcceleratorKind::kQuantum;
    const Circuit* cptr = &circuit;
    job.payload = [&, cptr] {
      const ExecutionResult res = accel->run(*cptr, 256, rng);
      core::JobResult jr;
      jr.ok = true;
      jr.metrics["compile.source_gates"] =
          static_cast<core::Real>(res.compile_report.source_gates);
      jr.metrics["compile.routed_gates"] =
          static_cast<core::Real>(res.compile_report.routed_gates);
      jr.metrics["compile.swaps"] =
          static_cast<core::Real>(res.compile_report.swaps_inserted);
      jr.metrics["compile.optimized_gates"] =
          static_cast<core::Real>(res.compile_report.optimized_gates);
      jr.metrics["compile.depth"] =
          static_cast<core::Real>(res.compile_report.final_depth);
      jr.metrics["device.cycles"] =
          static_cast<core::Real>(res.compile_report.total_cycles);
      jr.metrics["device.seconds_per_shot"] =
          res.device_seconds / static_cast<core::Real>(res.shots);
      return jr;
    };
    const core::JobResult jr = host.submit(job);
    table.add_row(
        {std::string(name),
         static_cast<std::int64_t>(jr.metrics.at("compile.source_gates")),
         static_cast<std::int64_t>(jr.metrics.at("compile.routed_gates")),
         static_cast<std::int64_t>(jr.metrics.at("compile.swaps")),
         static_cast<std::int64_t>(jr.metrics.at("compile.optimized_gates")),
         static_cast<std::int64_t>(jr.metrics.at("compile.depth")),
         static_cast<std::int64_t>(jr.metrics.at("device.cycles")),
         jr.metrics.at("device.seconds_per_shot") * 1e6});
  }
  std::cout << "\nPer-layer statistics on a line-topology device:\n";
  table.print(std::cout);

  std::cout << '\n' << host.describe();

  core::print_banner(std::cout,
                     "Ablation — routing topology and optimizer (QFT-6)");
  core::Table ab({"topology", "optimizer", "gates", "swaps", "cycles"}, 1);
  const Circuit qft6 = qft_workload(6);
  struct Cfg {
    const char* name;
    Topology topo;
    bool opt;
  };
  for (const Cfg cfg : {Cfg{"all-to-all", Topology::all_to_all(6), true},
                        Cfg{"line", Topology::line(6), true},
                        Cfg{"line", Topology::line(6), false},
                        Cfg{"grid 2x3", Topology::grid(2, 3), true}}) {
    const CompiledProgram prog = compile(qft6, cfg.topo, cfg.opt);
    ab.add_row({std::string(cfg.name), std::string(cfg.opt ? "on" : "off"),
                static_cast<std::int64_t>(prog.report.optimized_gates),
                static_cast<std::int64_t>(prog.report.swaps_inserted),
                static_cast<std::int64_t>(prog.report.total_cycles)});
  }
  ab.print(std::cout);
  std::cout << "(QFT-6 has no adjacent-cancel redundancy, so the peephole "
               "pass is a no-op there.)\n";

  // A workload the optimizer does bite on: interleaved H-pairs and
  // back-to-back CZs, typical of naive oracle constructions.
  Circuit redundant(4);
  for (int rep = 0; rep < 6; ++rep) {
    redundant.h(0).h(0).cz(1, 2).cz(1, 2).t(3).tdg(3).rx(1, 0.4).rx(1, -0.4);
  }
  const CompiledProgram raw = compile(redundant, Topology::line(4), false);
  const CompiledProgram opt = compile(redundant, Topology::line(4), true);
  std::cout << "Redundant workload: " << raw.report.optimized_gates
            << " native gates unoptimized -> " << opt.report.optimized_gates
            << " optimized (" << raw.report.total_cycles << " -> "
            << opt.report.total_cycles << " cycles)\n";

  core::print_banner(std::cout, "QISA layer — assembled program sample (GHZ-3)");
  std::cout << disassemble(decompose_to_native(ghz_circuit(3)));
  return 0;
}
