// Extension bench (DESIGN.md Sec. 4 capstone): all three of the paper's
// computing models attack the SAME combinatorial problem — a planted
// frustrated-loop Ising instance — head to head with the classical baseline:
//
//   quantum       QAOA on the state-vector accelerator
//   memcomputing  DMM dynamics on the parity-clause CNF
//   classical     simulated annealing
//
// The paper presents the three paradigms side by side; this bench makes the
// comparison executable. Ground energy is known by construction, so every
// engine is scored on reaching it.
#include <chrono>
#include <iostream>

#include "core/table.h"
#include "memcomputing/dmm.h"
#include "memcomputing/ising.h"
#include "quantum/qaoa.h"

using namespace rebooting;

namespace {

template <typename F>
core::Real timed_ms(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<core::Real, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<quantum::IsingBondView> to_views(
    const memcomputing::IsingModel& model) {
  std::vector<quantum::IsingBondView> views;
  views.reserve(model.bonds().size());
  for (const auto& b : model.bonds())
    views.push_back({b.i, b.j, b.coupling});
  return views;
}

}  // namespace

int main() {
  core::print_banner(std::cout,
                     "Extension — one frustrated-loop Ising instance, three "
                     "computing models");

  core::Rng rng(31);
  const auto inst = memcomputing::make_frustrated_loops(rng, 4, 6, 8);
  std::cout << "\nInstance: 4x4 periodic grid, "
            << inst.model.bonds().size() << " bonds, "
            << inst.model.num_spins()
            << " spins; planted ground energy = " << inst.ground_energy
            << "\n\n";

  core::Table table({"engine", "energy reached", "gap to ground",
                     "work metric", "wall [ms]"},
                    3);

  // --- Quantum: QAOA at increasing depth ----------------------------------
  for (const std::size_t p : {1u, 2u, 3u}) {
    quantum::QaoaResult qr;
    const core::Real ms = timed_ms([&] {
      quantum::QaoaOptions qopts;
      qopts.layers = p;
      qopts.grid_points = 12;
      qopts.sweeps = 1;
      qr = quantum::qaoa_ising(inst.model.num_spins(), to_views(inst.model),
                               rng, qopts);
    });
    table.add_row({std::string("QAOA p=" + std::to_string(p)), qr.best_energy,
                   qr.best_energy - inst.ground_energy,
                   std::string(std::to_string(qr.circuit_evaluations) +
                               " circuit evals"),
                   ms});
  }

  // --- Memcomputing: DMM on the parity CNF --------------------------------
  {
    const auto cnf = memcomputing::ising_to_cnf(inst.model);
    memcomputing::DmmResult dr;
    const core::Real ms = timed_ms([&] {
      memcomputing::DmmOptions dopts;
      dopts.maxsat_mode = true;
      dopts.max_steps = 40'000;
      dr = memcomputing::DmmSolver(cnf, dopts).solve(rng);
    });
    const core::Real energy =
        memcomputing::cnf_assignment_energy(inst.model, dr.assignment);
    table.add_row({std::string("DMM (memcomputing)"), energy,
                   energy - inst.ground_energy,
                   std::string(std::to_string(dr.steps_to_best) +
                               " steps to best"),
                   ms});
  }

  // --- Classical: simulated annealing --------------------------------------
  {
    memcomputing::AnnealResult ar;
    const core::Real ms = timed_ms([&] {
      memcomputing::AnnealOptions aopts;
      aopts.sweeps = 3000;
      aopts.restarts = 2;
      ar = memcomputing::simulated_annealing(inst.model, rng, aopts);
    });
    table.add_row({std::string("simulated annealing"), ar.best_energy,
                   ar.best_energy - inst.ground_energy,
                   std::string(std::to_string(ar.total_flips_attempted) +
                               " flips"),
                   ms});
  }

  table.print(std::cout);
  std::cout << "\nAll engines are scored against the planted ground state. "
               "QAOA's gap closes with\ncircuit depth p; the DMM and the "
               "annealer both reach the ground state on this\nsize, with the "
               "DMM needing orders of magnitude fewer elementary updates.\n";
  return 0;
}
