// E7 — Sec. IV dynamical-systems claims (refs [47],[52],[53]): valid DMMs
// are point-dissipative — trajectories are bounded, converge to point
// attractors that are the solutions, and exhibit no periodic orbits when a
// solution exists.
//
// Checks on planted 3-SAT trajectories:
//   (a) boundedness: max |v| never exceeds 1;
//   (b) descent: the clause-energy envelope decreases;
//   (c) no recurrence: the digital state (sign pattern) never repeats before
//       the solution is reached (a repeat would witness a periodic orbit of
//       the digitized trajectory);
//   (d) attractor: once a solution is reached, it persists.
#include <iostream>
#include <map>
#include <vector>

#include "core/ensemble.h"
#include "core/stats.h"
#include "core/table.h"
#include "memcomputing/dmm.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

namespace {

/// Runs one instance recording digital-state recurrences.
struct TrajectoryReport {
  bool solved = false;
  std::size_t steps = 0;
  core::Real max_abs_v = 0.0;
  core::Real energy_start = 0.0;
  core::Real energy_end = 0.0;
  core::Real energy_peak_after_half = 0.0;
  std::size_t flips_total = 0;
};

TrajectoryReport run_instance(const Cnf& cnf, core::Rng& rng,
                              core::Workspace& ws) {
  DmmOptions opts;
  opts.max_steps = 400'000;
  opts.energy_stride = 20;
  opts.track_avalanches = true;
  const DmmSolver solver(cnf, opts);
  std::vector<core::Real> v0(cnf.num_variables());
  for (core::Real& v : v0) v = rng.uniform(-1.0, 1.0);
  const DmmResult r = solver.solve_from(std::move(v0), rng, ws);
  TrajectoryReport rep;
  rep.solved = r.satisfied;
  rep.steps = r.steps;
  rep.max_abs_v = r.max_abs_voltage;
  if (!r.energy_trace.empty()) {
    rep.energy_start = r.energy_trace.front();
    rep.energy_end = r.energy_trace.back();
    const std::size_t half = r.energy_trace.size() / 2;
    for (std::size_t i = half; i < r.energy_trace.size(); ++i)
      rep.energy_peak_after_half =
          std::max(rep.energy_peak_after_half, r.energy_trace[i]);
  }
  for (const std::size_t f : r.avalanche_sizes) rep.flips_total += f;
  return rep;
}

}  // namespace

int main() {
  core::print_banner(std::cout,
                     "E7 / Sec. IV — point-dissipative DMM dynamics "
                     "(boundedness, descent, no periodic orbits)");

  core::Rng rng(5);
  // Generate the instance set serially (shared rng), then run the six
  // trajectories as a parallel ensemble with per-index stream seeds.
  constexpr std::size_t kTrajectories = 6;
  std::vector<PlantedInstance> instances;
  instances.reserve(kTrajectories);
  for (std::size_t i = 0; i < kTrajectories; ++i)
    instances.push_back(planted_ksat(rng, 80, 340, 3));
  std::vector<TrajectoryReport> reports(kTrajectories);
  const std::uint64_t traj_seed = rng();
  core::EnsembleOptions eopts;
  eopts.telemetry_label = "secIV.dynamics";
  core::run_ensemble(kTrajectories, eopts,
                     [&](std::size_t i, core::Workspace& ws) {
                       core::Rng trng = core::Rng::stream(traj_seed, i);
                       reports[i] = run_instance(instances[i].cnf, trng, ws);
                       return true;
                     });

  core::Table table({"instance", "solved", "steps", "max |v|",
                     "clause energy start", "clause energy end",
                     "peak energy (2nd half)", "total sign flips"},
                    3);
  for (std::size_t i = 0; i < kTrajectories; ++i) {
    const TrajectoryReport& rep = reports[i];
    table.add_row({static_cast<std::int64_t>(i),
                   std::string(rep.solved ? "yes" : "no"),
                   static_cast<std::int64_t>(rep.steps), rep.max_abs_v,
                   rep.energy_start, rep.energy_end,
                   rep.energy_peak_after_half,
                   static_cast<std::int64_t>(rep.flips_total)});
  }
  std::cout << '\n';
  table.print(std::cout);

  // (d) Attractor persistence: keep integrating past the solution in MaxSAT
  // mode (which does not stop) and verify the best state is never lost.
  core::print_banner(std::cout, "Attractor persistence past the solution");
  const auto inst = planted_ksat(rng, 40, 170, 3);
  DmmOptions opts;
  opts.maxsat_mode = true;
  opts.max_steps = 50'000;
  opts.energy_stride = 10;
  const DmmResult r = DmmSolver(inst.cnf, opts).solve(rng);
  std::cout << "best unsatisfied clauses over a " << r.steps
            << "-step run: " << r.best_unsatisfied
            << " (0 = the solution attractor was reached and retained)\n";
  std::cout << "final clause energy: "
            << (r.energy_trace.empty() ? 0.0 : r.energy_trace.back())
            << " (monotone approach to the attractor => no periodic orbit "
               "or chaotic wandering)\n";
  return 0;
}
