// E5 — Sec. IV scaling claim (ref [54] shape): DMM dynamics solve hard
// 3-SAT instances with mildly growing cost while classical solvers blow up.
//
// Workload: planted 3-SAT at clause ratio 4.25 (verifiably satisfiable), N
// sweep; solvers: DMM (integration steps), WalkSAT (flips), GSAT (flips),
// DPLL (decisions, capped). Reports medians over instances plus fitted
// growth rates. Run with --ablate for the DESIGN.md memory-term ablation.
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/ensemble.h"
#include "core/stats.h"
#include "core/table.h"
#include "memcomputing/dmm.h"
#include "memcomputing/sat.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

namespace {

constexpr core::Real kRatio = 4.25;
constexpr int kInstances = 7;

struct Row {
  std::size_t n;
  core::Real dmm_steps;
  core::Real dmm_solved;
  core::Real walksat_flips;
  core::Real walksat_solved;
  core::Real gsat_flips;
  core::Real gsat_solved;
  core::Real dpll_decisions;
  core::Real dpll_solved;
};

Row run_size(std::size_t n, core::Rng& rng) {
  const auto m = static_cast<std::size_t>(kRatio * static_cast<core::Real>(n));
  std::vector<core::Real> dmm_steps, ws_flips, gs_flips, dp_dec;
  int dmm_ok = 0, ws_ok = 0, gs_ok = 0, dp_ok = 0;

  // Instance generation stays serial (it advances the shared rng); the DMM
  // trajectories then fan out as one ensemble, one stream-seeded solve per
  // instance, while the classical solvers keep their serial loop below.
  std::vector<PlantedInstance> instances;
  instances.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i)
    instances.push_back(planted_ksat(rng, n, m, 3));

  std::vector<DmmResult> dmm_results(instances.size());
  const std::uint64_t dmm_seed = rng();
  core::EnsembleOptions eopts;
  eopts.telemetry_label = "secIV.dmm";
  core::run_ensemble(instances.size(), eopts,
                     [&](std::size_t i, core::Workspace& ws) {
                       DmmOptions dopts;
                       dopts.max_steps = 400'000;
                       const DmmSolver solver(instances[i].cnf, dopts);
                       core::Rng trng = core::Rng::stream(dmm_seed, i);
                       std::vector<core::Real> v0(n);
                       for (core::Real& v : v0) v = trng.uniform(-1.0, 1.0);
                       dmm_results[i] = solver.solve_from(std::move(v0), trng, ws);
                       return true;
                     });
  for (const DmmResult& dr : dmm_results) {
    if (dr.satisfied) {
      ++dmm_ok;
      dmm_steps.push_back(static_cast<core::Real>(dr.steps));
    }
  }

  for (int i = 0; i < kInstances; ++i) {
    const auto& inst = instances[static_cast<std::size_t>(i)];

    WalkSatOptions wopts;
    wopts.max_flips = 4'000'000;
    const SatResult wr = walksat(inst.cnf, rng, wopts);
    if (wr.satisfied) {
      ++ws_ok;
      ws_flips.push_back(static_cast<core::Real>(wr.flips));
    }

    GsatOptions gopts;
    gopts.max_flips = 200'000;
    gopts.max_tries = 20;
    const SatResult gr = gsat(inst.cnf, rng, gopts);
    if (gr.satisfied) {
      ++gs_ok;
      gs_flips.push_back(static_cast<core::Real>(gr.flips));
    }

    if (n <= 120) {  // the complete solver's tree explodes beyond this
      DpllOptions popts;
      popts.max_decisions = 20'000'000;
      const SatResult pr = dpll(inst.cnf, popts);
      if (pr.satisfied) {
        ++dp_ok;
        dp_dec.push_back(static_cast<core::Real>(pr.decisions));
      }
    }
  }

  auto med = [](const std::vector<core::Real>& v) {
    return v.empty() ? 0.0 : core::median(v);
  };
  auto frac = [](int ok) {
    return static_cast<core::Real>(ok) / static_cast<core::Real>(kInstances);
  };
  return Row{n,        med(dmm_steps), frac(dmm_ok), med(ws_flips),
             frac(ws_ok), med(gs_flips), frac(gs_ok), med(dp_dec),
             frac(dp_ok)};
}

void fit_and_report(const char* label, const std::vector<core::Real>& ns,
                    const std::vector<core::Real>& cost) {
  if (cost.size() < 3) return;
  try {
    const auto exp_fit = core::fit_exponential(ns, cost);
    const auto pow_fit = core::fit_power_law(ns, cost);
    std::cout << "  " << label << ": power-law N^" << pow_fit.exponent
              << " (r2=" << pow_fit.r_squared << "), exponential rate "
              << exp_fit.rate << " per variable (r2=" << exp_fit.r_squared
              << ")\n";
  } catch (const std::exception&) {
    // Too few positive points; skip the fit.
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool ablate = argc > 1 && std::strcmp(argv[1], "--ablate") == 0;
  core::Rng rng(20260704);

  core::print_banner(std::cout,
                     "E5 / Sec. IV — DMM vs classical SAT solvers, planted "
                     "3-SAT at ratio 4.25");

  const std::vector<std::size_t> sizes = {25, 50, 75, 100, 150, 200, 300};
  core::Table table({"N", "DMM med steps", "DMM solved", "WalkSAT med flips",
                     "WS solved", "GSAT med flips", "GSAT solved",
                     "DPLL med decisions", "DPLL solved"},
                    2);
  std::vector<core::Real> ns, dmm_cost, ws_cost, dp_ns, dp_cost;
  for (const std::size_t n : sizes) {
    const Row row = run_size(n, rng);
    const bool dpll_ran = n <= 120;
    table.add_row({static_cast<std::int64_t>(n), row.dmm_steps, row.dmm_solved,
                   row.walksat_flips, row.walksat_solved, row.gsat_flips,
                   row.gsat_solved,
                   dpll_ran ? core::Cell{row.dpll_decisions}
                            : core::Cell{std::string("skipped")},
                   dpll_ran ? core::Cell{row.dpll_solved}
                            : core::Cell{std::string("-")}});
    ns.push_back(static_cast<core::Real>(n));
    dmm_cost.push_back(row.dmm_steps);
    ws_cost.push_back(row.walksat_flips);
    if (n <= 120 && row.dpll_decisions > 0) {
      dp_ns.push_back(static_cast<core::Real>(n));
      dp_cost.push_back(row.dpll_decisions);
    }
  }
  std::cout << '\n';
  table.print(std::cout);

  std::cout << "\nGrowth-rate fits (paper shape: DMM scales gently where the "
               "classical costs climb):\n";
  fit_and_report("DMM steps", ns, dmm_cost);
  fit_and_report("WalkSAT flips", ns, ws_cost);
  fit_and_report("DPLL decisions", dp_ns, dp_cost);

  if (ablate) {
    core::print_banner(std::cout,
                       "Ablation — DMM memory terms (DESIGN.md Sec. 4)");
    core::Table ab({"variant", "solved/21", "median steps"}, 1);
    struct Variant {
      const char* name;
      bool rigidity;
      bool long_term;
    };
    for (const Variant v : {Variant{"full dynamics", true, true},
                            Variant{"no rigidity term", false, true},
                            Variant{"no long-term memory", true, false},
                            Variant{"neither", false, false}}) {
      int solved = 0;
      std::vector<core::Real> steps;
      core::Rng arng(7);
      for (int i = 0; i < 21; ++i) {
        const auto inst = planted_ksat(arng, 100, 425, 3);
        DmmOptions opts;
        opts.max_steps = 150'000;
        opts.params.rigidity = v.rigidity;
        opts.params.long_term_memory = v.long_term;
        const DmmResult r = DmmSolver(inst.cnf, opts).solve(arng);
        if (r.satisfied) {
          ++solved;
          steps.push_back(static_cast<core::Real>(r.steps));
        }
      }
      ab.add_row({std::string(v.name), static_cast<std::int64_t>(solved),
                  steps.empty() ? 0.0 : core::median(steps)});
    }
    ab.print(std::cout);
  } else {
    std::cout << "\n(run with --ablate for the memory-term ablation)\n";
  }
  return 0;
}
