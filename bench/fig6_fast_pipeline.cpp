// E4 — Fig. 6 reproduction: the two-step oscillator FAST pipeline (distance
// norm vs threshold, then adjacent-pixel false-positive suppression) detects
// the same corners as the software FAST baseline, and the second step is
// what keeps the directionless analog comparison honest.
#include <iostream>

#include "core/random.h"
#include "core/table.h"
#include "vision/oscillator_fast.h"
#include "vision/power.h"

using namespace rebooting;
using namespace rebooting::vision;

namespace {

std::vector<Pixel> positions(const std::vector<FastDetection>& ds) {
  std::vector<Pixel> px;
  px.reserve(ds.size());
  for (const auto& d : ds) px.push_back(d.position);
  return px;
}

}  // namespace

int main() {
  core::print_banner(std::cout,
                     "E4 / Fig. 6 — FAST corner detection on the oscillator "
                     "distance norm");

  oscillator::ComparatorConfig cfg;
  cfg.calibration_points = 8;
  cfg.sim.duration = 120e-6;
  cfg.sim.dt = 1e-9;
  cfg.sim.sample_stride = 4;
  const oscillator::OscillatorComparator comparator(cfg);

  core::Rng rng(2026);
  struct SceneSpec {
    const char* name;
    Scene scene;
  };
  std::vector<SceneSpec> scenes;
  scenes.push_back({"rectangles 96x96", make_rectangle_scene(rng, 96, 96, 4, 0.6)});
  scenes.push_back({"rectangles+noise", make_rectangle_scene(rng, 96, 96, 4, 0.6, 0.02)});
  scenes.push_back({"polygons 96x96", make_polygon_scene(rng, 96, 96, 4, 0.6)});
  scenes.push_back(
      {"rectangles low-contrast", make_rectangle_scene(rng, 96, 96, 4, 0.35)});

  core::Table table({"scene", "truth", "SW FAST P/R", "osc FAST P/R",
                     "SW-vs-osc agreement F1", "osc comparisons",
                     "step2 rejected"},
                    2);

  core::Table energy_table(
      {"scene", "osc energy [nJ]", "CMOS energy [nJ]", "osc frame [ms]",
       "CMOS frame [us]"},
      2);

  for (const auto& [name, scene] : scenes) {
    const auto sw = fast_detect(scene.image, FastOptions{});
    OscillatorFastStats stats;
    const OscillatorFastDetector det(comparator, OscillatorFastOptions{});
    const auto osc = det.detect(scene.image, &stats);

    const MatchScore sw_score =
        score_detections(positions(sw), scene.true_corners);
    const MatchScore osc_score =
        score_detections(positions(osc), scene.true_corners);
    const MatchScore agree =
        score_detections(positions(osc), positions(sw), 2.0);

    auto pr = [](const MatchScore& s) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f/%.2f", s.precision, s.recall);
      return std::string(buf);
    };
    table.add_row({std::string(name),
                   static_cast<std::int64_t>(scene.true_corners.size()),
                   pr(sw_score), pr(osc_score), agree.f1(),
                   static_cast<std::int64_t>(stats.total_comparisons()),
                   static_cast<std::int64_t>(stats.rejected_by_step2)});

    const auto fe = frame_energy(comparator, stats);
    energy_table.add_row({std::string(name), fe.oscillator_joules * 1e9,
                          fe.cmos_joules * 1e9, fe.oscillator_seconds * 1e3,
                          fe.cmos_seconds * 1e6});
  }

  std::cout << "\nDetection quality (precision/recall vs ground truth) and "
               "agreement with the software baseline:\n";
  table.print(std::cout);

  std::cout << "\nPer-frame energy and latency of the comparison workload:\n";
  energy_table.print(std::cout);

  // Ablation: the Fig. 6 second step (false-positive suppression) on/off, on
  // a scene engineered to contain mixed bright/dark arcs.
  core::print_banner(std::cout,
                     "Ablation — step-2 false-positive suppression on/off");
  const Scene noisy = make_polygon_scene(rng, 96, 96, 5, 0.6, 0.03);
  const auto sw = fast_detect(noisy.image, FastOptions{});
  OscillatorFastOptions with;
  OscillatorFastOptions without;
  without.false_positive_suppression = false;
  OscillatorFastStats s1, s2;
  const auto d_with =
      OscillatorFastDetector(comparator, with).detect(noisy.image, &s1);
  const auto d_without =
      OscillatorFastDetector(comparator, without).detect(noisy.image, &s2);
  core::Table ab({"pipeline", "detections", "precision vs SW", "recall vs SW"},
                 3);
  const auto a1 = score_detections(positions(d_with), positions(sw), 2.0);
  const auto a2 = score_detections(positions(d_without), positions(sw), 2.0);
  ab.add_row({std::string("two-step (paper)"),
              static_cast<std::int64_t>(d_with.size()), a1.precision,
              a1.recall});
  ab.add_row({std::string("step 1 only"),
              static_cast<std::int64_t>(d_without.size()), a2.precision,
              a2.recall});
  ab.print(std::cout);
  std::cout << "(The suppression step trades a little recall for precision — "
               "it exists because the analog distance is directionless.)\n";
  return 0;
}
