// E11 — Sec. II-C application claims: (a) Shor's algorithm factors RSA-style
// moduli via quantum period finding; (b) data-parallel search over a
// superposed dataset — the genome use case — realized as Grover substring
// matching with square-root oracle scaling against the classical scan.
#include <chrono>
#include <iostream>

#include "core/table.h"
#include "quantum/algorithms.h"

using namespace rebooting;
using namespace rebooting::quantum;

int main() {
  core::print_banner(std::cout,
                     "E11 / Sec. II-C — Shor factoring and Grover DNA matching");

  core::Rng rng(15);

  std::cout << "\n(a) Shor's algorithm (quantum order finding + continued "
               "fractions):\n";
  core::Table shor_table({"N", "factors", "order-finding runs", "qubits",
                          "period r", "wall [ms]"},
                         1);
  for (const std::uint64_t n : {15ull, 21ull, 33ull, 35ull, 39ull, 55ull}) {
    const auto t0 = std::chrono::steady_clock::now();
    // require_quantum: resample bases that would win by gcd luck, so every
    // row demonstrates order finding.
    const ShorResult r = shor_factor(n, rng, 40, /*require_quantum=*/true);
    const core::Real ms =
        std::chrono::duration<core::Real, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    shor_table.add_row(
        {static_cast<std::int64_t>(n),
         std::string(r.success ? std::to_string(r.factor1) + " x " +
                                     std::to_string(r.factor2)
                               : "FAILED"),
         static_cast<std::int64_t>(r.attempts),
         static_cast<std::int64_t>(r.qubits_used),
         static_cast<std::int64_t>(r.period), ms});
  }
  shor_table.print(std::cout);
  std::cout << "(The paper's RSA claim in miniature: the private key of any "
               "modulus this machine\ncan hold falls to period finding.)\n";

  std::cout << "\n(b) DNA subsequence matching — Grover over the offset "
               "register vs classical scan:\n";
  core::Table dna({"text length", "index qubits", "grover oracle calls",
                   "classical comparisons", "speedup (cmp/oracle)",
                   "found valid match", "success prob"},
                  2);
  for (const std::size_t length : {60u, 120u, 250u, 500u, 1000u}) {
    DnaSequence text = random_dna(rng, length);
    const DnaSequence pattern = dna_from_string("ACGTACGTTG");
    // Plant one occurrence mid-text.
    const std::size_t plant = length / 2;
    for (std::size_t j = 0; j < pattern.size(); ++j)
      text[plant + j] = pattern[j];

    std::size_t comparisons = 0;
    const auto classical = dna_match_classical(text, pattern, &comparisons);
    const DnaMatchResult grover = dna_match_grover(text, pattern, rng);

    bool valid = false;
    if (grover.position) {
      for (const std::size_t m : classical)
        if (m == *grover.position) valid = true;
    }
    dna.add_row({static_cast<std::int64_t>(length),
                 static_cast<std::int64_t>(grover.index_qubits),
                 static_cast<std::int64_t>(grover.oracle_calls),
                 static_cast<std::int64_t>(comparisons),
                 static_cast<core::Real>(comparisons) /
                     static_cast<core::Real>(std::max<std::size_t>(
                         1, grover.oracle_calls)),
                 std::string(valid ? "yes" : "no"),
                 grover.success_probability});
  }
  dna.print(std::cout);
  std::cout << "(Each oracle call evaluates the entire encoded dataset in "
               "superposition — the\npaper's 'computation of the entire "
               "data-set in parallel'; oracle calls grow as\nsqrt(offsets) "
               "while the classical scan grows linearly.)\n";

  std::cout << "\n(c) One-query oracle algorithms through the same device:\n";
  core::Table misc({"algorithm", "result"}, 1);
  misc.add_row({std::string("Bernstein-Vazirani, secret 0b101101"),
                std::string(bernstein_vazirani(0b101101, 6, rng) == 0b101101
                                ? "recovered in 1 query"
                                : "FAILED")});
  misc.add_row({std::string("Deutsch-Jozsa balanced oracle"),
                std::string(deutsch_jozsa_is_balanced(6, true, rng)
                                ? "declared balanced (correct)"
                                : "FAILED")});
  misc.add_row({std::string("Deutsch-Jozsa constant oracle"),
                std::string(!deutsch_jozsa_is_balanced(6, false, rng)
                                ? "declared constant (correct)"
                                : "FAILED")});
  misc.print(std::cout);
  return 0;
}
