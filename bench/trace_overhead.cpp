// Trace-recorder overhead bench — gates the cost discipline documented in
// telemetry/trace.h with a machine-readable BENCH_trace.json.
//
// Two claims are gated:
//
//   1. Disabled tracing costs < 2 ns per instrumented point (one relaxed
//      atomic load + branch) — instrumentation can stay compiled into the
//      engines' hot loops.
//   2. Enabled tracing costs < 100 ns per event (steady_clock read + one
//      48-byte ring slot store; no locks, no allocation) — a timeline
//      capture does not distort the workload it is observing.
//
// Methodology: each measured loop runs kEventsPerPass macro expansions of
// the real TELEM_TRACE_* macros (not hand-inlined copies, so the gate tracks
// whatever the header actually does), repeated over kPasses passes; we
// report the *minimum* pass (least scheduler noise), as is conventional for
// nanosecond-scale micro-benches. An empty-loop baseline with the same
// volatile accumulator is subtracted so loop overhead is not billed to the
// recorder. An asm memory clobber after each event keeps the compiler from
// hoisting or collapsing the disabled-path checks.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>

#include "bench_util.h"
#include "core/table.h"
#include "core/json.h"
#include "telemetry/trace.h"
#include "telemetry/telemetry.h"

using namespace rebooting;
using core::Real;

namespace {

constexpr std::size_t kEventsPerPass = 200000;
constexpr std::size_t kPasses = 25;
constexpr Real kDisabledGateNs = 2.0;
constexpr Real kEnabledGateNs = 100.0;

using Clock = std::chrono::steady_clock;

/// Prevents the optimizer from proving the loop body dead or hoisting the
/// enabled-flag load out of the loop (which would measure one check instead
/// of kEventsPerPass).
inline void clobber() { asm volatile("" ::: "memory"); }

template <typename Body>
Real min_pass_ns(const Body& body) {
  Real best = std::numeric_limits<Real>::infinity();
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < kEventsPerPass; ++i) {
      body(i);
      clobber();
    }
    const Real ns =
        std::chrono::duration<Real, std::nano>(Clock::now() - start).count();
    best = std::min(best, ns / static_cast<Real>(kEventsPerPass));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      rebooting::bench::artifact_path(argc, argv, "BENCH_trace.json");
  core::print_banner(std::cout,
                     "Trace recorder overhead — disabled / enabled path cost");
  std::cout << "\n"
            << kEventsPerPass << " events/pass, " << kPasses
            << " passes, min-pass reported; gates: disabled < "
            << kDisabledGateNs << " ns, enabled < " << kEnabledGateNs
            << " ns\n\n";

  auto& recorder = telemetry::TraceRecorder::instance();

  const Real baseline_ns = min_pass_ns([](std::size_t) {});

  // Disabled path: the macro's whole cost is trace_enabled().
  telemetry::TraceRecorder::set_enabled(false);
  recorder.reset();
  const Real disabled_instant_ns =
      min_pass_ns([](std::size_t) { TELEM_TRACE_INSTANT("bench.off"); }) -
      baseline_ns;
  const Real disabled_scope_ns =
      min_pass_ns([](std::size_t) { TELEM_TRACE_SCOPE("bench.off.scope"); }) -
      baseline_ns;

  // Enabled path: clock read + ring store. The ring wraps millions of times
  // over the run — by design; overwrite-oldest is the steady state.
  telemetry::TraceRecorder::set_enabled(true);
  const Real enabled_instant_ns =
      min_pass_ns([](std::size_t) { TELEM_TRACE_INSTANT("bench.on"); }) -
      baseline_ns;
  const Real enabled_counter_ns =
      min_pass_ns([](std::size_t i) {
        TELEM_TRACE_COUNTER("bench.on.counter", i);
      }) -
      baseline_ns;
  // A scope is two events (B + E): report per-event cost.
  const Real enabled_scope_ns =
      (min_pass_ns([](std::size_t) { TELEM_TRACE_SCOPE("bench.on.scope"); }) -
       baseline_ns) /
      2.0;
  const std::uint64_t events_recorded =
      telemetry::TraceRecorder::instance().snapshot().empty()
          ? 0
          : telemetry::TraceRecorder::instance().snapshot()[0].written;
  telemetry::TraceRecorder::set_enabled(false);
  recorder.reset();

  const Real disabled_worst = std::max(disabled_instant_ns, disabled_scope_ns);
  const Real enabled_worst = std::max(
      {enabled_instant_ns, enabled_counter_ns, enabled_scope_ns});
  const bool disabled_ok = disabled_worst < kDisabledGateNs;
  const bool enabled_ok = enabled_worst < kEnabledGateNs;

  core::Table table({"path", "ns/event", "gate [ns]", "verdict"}, 3);
  table.add_row({std::string("disabled instant"), disabled_instant_ns,
                 kDisabledGateNs,
                 std::string(disabled_instant_ns < kDisabledGateNs ? "PASS"
                                                                   : "FAIL")});
  table.add_row({std::string("disabled scope"), disabled_scope_ns,
                 kDisabledGateNs,
                 std::string(disabled_scope_ns < kDisabledGateNs ? "PASS"
                                                                 : "FAIL")});
  table.add_row({std::string("enabled instant"), enabled_instant_ns,
                 kEnabledGateNs,
                 std::string(enabled_instant_ns < kEnabledGateNs ? "PASS"
                                                                 : "FAIL")});
  table.add_row({std::string("enabled counter"), enabled_counter_ns,
                 kEnabledGateNs,
                 std::string(enabled_counter_ns < kEnabledGateNs ? "PASS"
                                                                 : "FAIL")});
  table.add_row({std::string("enabled scope (per event)"), enabled_scope_ns,
                 kEnabledGateNs,
                 std::string(enabled_scope_ns < kEnabledGateNs ? "PASS"
                                                               : "FAIL")});
  table.print(std::cout);
  std::cout << "\nloop baseline: " << baseline_ns << " ns; "
            << events_recorded << " events recorded during enabled passes\n"
            << "disabled gate: " << (disabled_ok ? "PASS" : "FAIL")
            << ", enabled gate: " << (enabled_ok ? "PASS" : "FAIL") << '\n';

  {
    std::ofstream json(out_path);
    json << "{\n"
         << "  \"bench\": " << core::json_quote("trace_overhead") << ",\n"
         << "  \"events_per_pass\": "
         << core::json_number(static_cast<std::int64_t>(kEventsPerPass))
         << ",\n"
         << "  \"passes\": "
         << core::json_number(static_cast<std::int64_t>(kPasses)) << ",\n"
         << "  \"baseline_ns\": " << core::json_number(baseline_ns) << ",\n"
         << "  \"disabled_instant_ns\": "
         << core::json_number(disabled_instant_ns) << ",\n"
         << "  \"disabled_scope_ns\": " << core::json_number(disabled_scope_ns)
         << ",\n"
         << "  \"enabled_instant_ns\": "
         << core::json_number(enabled_instant_ns) << ",\n"
         << "  \"enabled_counter_ns\": "
         << core::json_number(enabled_counter_ns) << ",\n"
         << "  \"enabled_scope_ns_per_event\": "
         << core::json_number(enabled_scope_ns) << ",\n"
         << "  \"disabled_gate_ns\": " << core::json_number(kDisabledGateNs)
         << ",\n"
         << "  \"enabled_gate_ns\": " << core::json_number(kEnabledGateNs)
         << ",\n"
         << "  \"disabled_gate_pass\": " << (disabled_ok ? "true" : "false")
         << ",\n"
         << "  \"enabled_gate_pass\": " << (enabled_ok ? "true" : "false")
         << "\n}\n";
    std::cout << "wrote " << out_path << '\n';
  }

  if (!disabled_ok) return 1;
  if (!enabled_ok) return 2;
  return 0;
}
