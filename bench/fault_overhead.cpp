// Fault-injector overhead bench — gates the cost discipline documented in
// core/faults.h with a machine-readable BENCH_faults.json.
//
// Two claims are gated:
//
//   1. A disabled injector (null plan, or a plan that does not cover the
//      wrapped kind) costs < 2 ns per on_attempt() call — one pointer load
//      and a branch — so production pools can keep the decorator compiled in
//      and flip it on purely via REBOOTING_FAULTS.
//   2. An enabled injector costs < 250 ns per verdict (one relaxed atomic
//      increment + a counter-based Rng::stream split + three uniforms) — a
//      chaos run measures the *scheduler's* resilience, not the injector's
//      own drag.
//
// Methodology: identical to bench/trace_overhead.cpp — kPasses passes of
// kCallsPerPass real on_attempt() calls, minimum pass reported, empty-loop
// baseline with the same volatile sink subtracted, asm memory clobber after
// each call so the disabled-path branch cannot be hoisted.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>

#include "bench_util.h"
#include "core/accelerator.h"
#include "core/faults.h"
#include "core/json.h"
#include "core/table.h"

using namespace rebooting;
using core::Real;

namespace {

constexpr std::size_t kCallsPerPass = 200000;
constexpr std::size_t kPasses = 25;
constexpr Real kDisabledGateNs = 2.0;
constexpr Real kEnabledGateNs = 250.0;

using Clock = std::chrono::steady_clock;

inline void clobber() { asm volatile("" ::: "memory"); }

template <typename Body>
Real min_pass_ns(const Body& body) {
  Real best = std::numeric_limits<Real>::infinity();
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < kCallsPerPass; ++i) {
      body(i);
      clobber();
    }
    const Real ns =
        std::chrono::duration<Real, std::nano>(Clock::now() - start).count();
    best = std::min(best, ns / static_cast<Real>(kCallsPerPass));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      rebooting::bench::artifact_path(argc, argv, "BENCH_faults.json");
  core::print_banner(std::cout,
                     "Fault injector overhead — disabled / enabled path cost");
  std::cout << "\n"
            << kCallsPerPass << " calls/pass, " << kPasses
            << " passes, min-pass reported; gates: disabled < "
            << kDisabledGateNs << " ns, enabled < " << kEnabledGateNs
            << " ns\n\n";

  // The three decorators under test share one inner accelerator type; the
  // sink keeps the verdicts observable.
  core::FaultyAccelerator null_plan(std::make_shared<core::CpuAccelerator>(),
                                    nullptr);
  core::FaultPlan other_kind_plan;
  other_kind_plan.kinds[core::AcceleratorKind::kQuantum]
      .transient_probability = 0.5;
  core::FaultyAccelerator non_covering(
      std::make_shared<core::CpuAccelerator>(),
      std::make_shared<const core::FaultPlan>(other_kind_plan));
  core::FaultPlan cpu_plan;
  cpu_plan.seed = 42;
  cpu_plan.kinds[core::AcceleratorKind::kClassicalCpu]
      .transient_probability = 0.2;
  cpu_plan.kinds[core::AcceleratorKind::kClassicalCpu]
      .corruption_probability = 0.05;
  core::FaultyAccelerator enabled(
      std::make_shared<core::CpuAccelerator>(),
      std::make_shared<const core::FaultPlan>(cpu_plan));

  volatile int sink = 0;

  const Real baseline_ns = min_pass_ns([&](std::size_t) { sink = sink + 1; });

  const Real null_plan_ns = min_pass_ns([&](std::size_t i) {
    sink = static_cast<int>(null_plan.on_attempt(i, 1).kind);
  }) - baseline_ns;
  const Real non_covering_ns = min_pass_ns([&](std::size_t i) {
    sink = static_cast<int>(non_covering.on_attempt(i, 1).kind);
  }) - baseline_ns;
  const Real enabled_ns = min_pass_ns([&](std::size_t i) {
    sink = static_cast<int>(enabled.on_attempt(i, 1).kind);
  }) - baseline_ns;

  const Real disabled_worst = std::max(null_plan_ns, non_covering_ns);
  const bool disabled_ok = disabled_worst < kDisabledGateNs;
  const bool enabled_ok = enabled_ns < kEnabledGateNs;

  core::Table table({"path", "ns/call", "gate [ns]", "verdict"}, 3);
  table.add_row({std::string("disabled (null plan)"), null_plan_ns,
                 kDisabledGateNs,
                 std::string(null_plan_ns < kDisabledGateNs ? "PASS"
                                                            : "FAIL")});
  table.add_row({std::string("disabled (non-covering plan)"), non_covering_ns,
                 kDisabledGateNs,
                 std::string(non_covering_ns < kDisabledGateNs ? "PASS"
                                                               : "FAIL")});
  table.add_row({std::string("enabled verdict"), enabled_ns, kEnabledGateNs,
                 std::string(enabled_ns < kEnabledGateNs ? "PASS" : "FAIL")});
  table.print(std::cout);
  std::cout << "\nloop baseline: " << baseline_ns << " ns; "
            << enabled.calls() << " verdicts drawn on the enabled path\n"
            << "disabled gate: " << (disabled_ok ? "PASS" : "FAIL")
            << ", enabled gate: " << (enabled_ok ? "PASS" : "FAIL") << '\n';

  {
    std::ofstream json(out_path);
    json << "{\n"
         << "  \"bench\": " << core::json_quote("fault_overhead") << ",\n"
         << "  \"calls_per_pass\": "
         << core::json_number(static_cast<std::int64_t>(kCallsPerPass))
         << ",\n"
         << "  \"passes\": "
         << core::json_number(static_cast<std::int64_t>(kPasses)) << ",\n"
         << "  \"baseline_ns\": " << core::json_number(baseline_ns) << ",\n"
         << "  \"disabled_null_plan_ns\": " << core::json_number(null_plan_ns)
         << ",\n"
         << "  \"disabled_non_covering_ns\": "
         << core::json_number(non_covering_ns) << ",\n"
         << "  \"enabled_verdict_ns\": " << core::json_number(enabled_ns)
         << ",\n"
         << "  \"disabled_gate_ns\": " << core::json_number(kDisabledGateNs)
         << ",\n"
         << "  \"enabled_gate_ns\": " << core::json_number(kEnabledGateNs)
         << ",\n"
         << "  \"disabled_gate_pass\": " << (disabled_ok ? "true" : "false")
         << ",\n"
         << "  \"enabled_gate_pass\": " << (enabled_ok ? "true" : "false")
         << "\n}\n";
    std::cout << "wrote " << out_path << '\n';
  }

  if (!disabled_ok) return 1;
  if (!enabled_ok) return 2;
  return 0;
}
