// E9 — Sec. IV deep-learning claim (refs [55],[57]): memcomputing
// mode-assisted RBM pre-training matches or beats annealer-style sampling in
// iterations and ends with better final quality than the CD baseline
// (paper: >1% accuracy, ~20% relative error reduction).
//
// Workload: bars-and-stripes 3x3 (exact NLL computable), three trainers:
//   CD-1 baseline | annealer-surrogate Gibbs sampling | DMM mode-assisted.
#include <iostream>
#include <vector>

#include "core/stats.h"
#include "core/table.h"
#include "memcomputing/rbm.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

namespace {

struct TrainerSpec {
  const char* name;
  RbmTrainer trainer;
};

}  // namespace

int main() {
  core::print_banner(std::cout,
                     "E9 / Sec. IV — RBM training: CD vs annealer-sampled vs "
                     "DMM mode-assisted");

  const Dataset data = bars_and_stripes(3);
  const core::Real optimal_nll =
      std::log(static_cast<core::Real>(data.size()));
  std::cout << "\nDataset: bars-and-stripes 3x3, " << data.size()
            << " patterns; optimal NLL = ln(" << data.size()
            << ") = " << optimal_nll << "\n";

  const std::vector<TrainerSpec> trainers = {
      {"CD-1 baseline", RbmTrainer::kCdBaseline},
      {"annealer-sampled (Adachi-Henderson surrogate)",
       RbmTrainer::kAnnealerSampled},
      {"DMM mode-assisted (memcomputing)", RbmTrainer::kModeAssistedDmm},
  };
  const std::vector<std::uint64_t> seeds = {99, 7};
  constexpr std::size_t kEpochs = 1500;

  core::Table curves({"trainer", "seed", "epoch", "exact NLL",
                      "reconstruction error"},
                     3);
  core::Table final_table({"trainer", "mean final NLL", "mean best NLL",
                           "mean final recon err",
                           "excess NLL vs optimum"},
                          3);

  std::vector<core::Real> cd_final;
  std::vector<core::Real> mode_final;

  for (const auto& spec : trainers) {
    std::vector<core::Real> finals, bests, recons;
    for (const std::uint64_t seed : seeds) {
      core::Rng rng(seed);
      BinaryRbm rbm(9, 12, rng);
      RbmTrainOptions opts;
      opts.trainer = spec.trainer;
      opts.epochs = kEpochs;
      opts.learning_rate = 0.2;
      opts.eval_stride = 300;
      opts.dmm_max_steps = 3000;
      const RbmTrainResult res = train_rbm(rbm, data, opts, rng);
      core::Real best = 1e300;
      for (const auto& pt : res.history) {
        best = std::min(best, pt.nll);
        curves.add_row({std::string(spec.name),
                        static_cast<std::int64_t>(seed),
                        static_cast<std::int64_t>(pt.epoch), pt.nll,
                        pt.reconstruction_error});
      }
      finals.push_back(res.final_nll);
      bests.push_back(best);
      recons.push_back(res.final_reconstruction_error);
    }
    final_table.add_row({std::string(spec.name), core::mean(finals),
                         core::mean(bests), core::mean(recons),
                         core::mean(finals) - optimal_nll});
    if (spec.trainer == RbmTrainer::kCdBaseline) cd_final = finals;
    if (spec.trainer == RbmTrainer::kModeAssistedDmm) mode_final = finals;
  }

  std::cout << "\nLearning curves (exact NLL; lower is better):\n";
  curves.print(std::cout);
  std::cout << "\nFinal quality after " << kEpochs << " epochs:\n";
  final_table.print(std::cout);

  if (!cd_final.empty() && !mode_final.empty()) {
    const core::Real cd_excess = core::mean(cd_final) - optimal_nll;
    const core::Real mode_excess = core::mean(mode_final) - optimal_nll;
    if (cd_excess > 0.0) {
      std::cout << "\nRelative reduction of excess NLL (distance to the "
                   "optimum) by mode-assisted training: "
                << 100.0 * (1.0 - mode_excess / cd_excess)
                << "%  (paper shape: ~20% error-rate reduction)\n";
    }
  }
  return 0;
}
