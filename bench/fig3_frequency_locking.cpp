// E1 — Fig. 3 reproduction: two RC-coupled VO2 relaxation oscillators lock
// to a common frequency inside a finite detuning window.
//
// Prints (a) the free-running tuning curve f(Vgs), (b) coupled-pair series:
// free-running detuning vs locked/unlocked state, common frequency and phase,
// for three coupling strengths, and (c) the lock-range summary.
#include <iostream>
#include <vector>

#include "core/ensemble.h"
#include "core/table.h"
#include "oscillator/analysis.h"
#include "oscillator/network.h"

using namespace rebooting;
using namespace rebooting::oscillator;

namespace {

constexpr core::Real kCenterVgs = 1.0;

SimulationOptions sim_options() {
  SimulationOptions so;
  so.duration = 120e-6;
  so.dt = 1e-9;
  so.sample_stride = 4;
  return so;
}

struct PairResult {
  bool locked = false;
  core::Real f0 = 0.0;
  core::Real f1 = 0.0;
  core::Real phase = 0.0;
};

PairResult run_pair(core::Real delta_vgs, core::Real rc, core::Workspace& ws) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, kCenterVgs - 0.5 * delta_vgs);
  net.set_gate_voltage(1, kCenterVgs + 0.5 * delta_vgs);
  net.add_coupling({.a = 0, .b = 1, .r = rc, .c = 1e-12});
  const Trace tr = net.simulate(sim_options(), ws);
  PairResult r;
  r.locked = is_locked(tr, 0, 1);
  r.f0 = trace_frequency(tr, 0);
  r.f1 = trace_frequency(tr, 1);
  r.phase = phase_difference(tr, 0, 1);
  return r;
}

/// One (detuning, coupling) grid point of the Fig. 3 sweep.
struct SweepPoint {
  core::Real d = 0.0;
  core::Real rc = 0.0;
  PairResult result;
};

}  // namespace

int main() {
  core::print_banner(std::cout, "E1 / Fig. 3 — VO2 oscillator frequency locking");

  {
    // Free-running tuning curve: every Vgs point is an independent
    // trajectory, so the grid runs as a parallel ensemble.
    std::vector<core::Real> grid;
    for (core::Real vgs = 0.85; vgs <= 1.351; vgs += 0.05)
      grid.push_back(vgs);
    std::vector<core::Real> freq(grid.size(), 0.0);
    core::EnsembleOptions eopts;
    eopts.telemetry_label = "fig3.tuning";
    core::run_ensemble(grid.size(), eopts,
                       [&](std::size_t i, core::Workspace& ws) {
                         CoupledOscillatorNetwork net(OscillatorParams{}, 1);
                         net.set_gate_voltage(0, grid[i]);
                         const Trace tr = net.simulate(sim_options(), ws);
                         freq[i] = trace_frequency(tr, 0);
                         return true;
                       });
    core::Table tuning({"Vgs [V]", "free-running f [MHz]"}, 3);
    for (std::size_t i = 0; i < grid.size(); ++i)
      tuning.add_row({grid[i], freq[i] / 1e6});
    std::cout << "\nFree-running tuning curve (the Vgs input encoding):\n";
    tuning.print(std::cout);
  }

  // The full (coupling x detuning) grid is one flat ensemble; each point's
  // slot is written independently, so the table below is identical at any
  // thread count.
  std::vector<SweepPoint> points;
  for (const core::Real rc : {40e3, 15e3, 5e3})
    for (core::Real d = 0.0; d <= 0.321; d += 0.04)
      points.push_back({d, rc, {}});
  core::EnsembleOptions eopts;
  eopts.telemetry_label = "fig3.pairs";
  core::run_ensemble(points.size(), eopts,
                     [&](std::size_t i, core::Workspace& ws) {
                       points[i].result = run_pair(points[i].d, points[i].rc, ws);
                       return true;
                     });

  for (const core::Real rc : {40e3, 15e3, 5e3}) {
    core::Table table({"dVgs [V]", "f_osc1 [MHz]", "f_osc2 [MHz]", "locked",
                       "phase [rad]"},
                      3);
    core::Real lock_edge = 0.0;
    for (const SweepPoint& p : points) {
      if (p.rc != rc) continue;
      table.add_row({p.d, p.result.f0 / 1e6, p.result.f1 / 1e6,
                     std::string(p.result.locked ? "yes" : "no"),
                     p.result.phase});
      if (p.result.locked) lock_edge = p.d;
    }
    std::cout << "\nCoupled pair, Rc = " << rc / 1e3
              << " kOhm (series RC, Cc = 1 pF):\n";
    table.print(std::cout);
    std::cout << "Lock range: |dVgs| <= ~" << lock_edge
              << " V (paper shape: finite plateau of equal frequencies,\n"
              << "widening with stronger coupling; matched pair locks "
                 "anti-phase ~pi).\n";
  }
  return 0;
}
