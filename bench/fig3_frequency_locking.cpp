// E1 — Fig. 3 reproduction: two RC-coupled VO2 relaxation oscillators lock
// to a common frequency inside a finite detuning window.
//
// Prints (a) the free-running tuning curve f(Vgs), (b) coupled-pair series:
// free-running detuning vs locked/unlocked state, common frequency and phase,
// for three coupling strengths, and (c) the lock-range summary.
#include <iostream>

#include "core/table.h"
#include "oscillator/analysis.h"
#include "oscillator/network.h"

using namespace rebooting;
using namespace rebooting::oscillator;

namespace {

constexpr core::Real kCenterVgs = 1.0;

SimulationOptions sim_options() {
  SimulationOptions so;
  so.duration = 120e-6;
  so.dt = 1e-9;
  so.sample_stride = 4;
  return so;
}

struct PairResult {
  bool locked = false;
  core::Real f0 = 0.0;
  core::Real f1 = 0.0;
  core::Real phase = 0.0;
};

PairResult run_pair(core::Real delta_vgs, core::Real rc) {
  CoupledOscillatorNetwork net(OscillatorParams{}, 2);
  net.set_gate_voltage(0, kCenterVgs - 0.5 * delta_vgs);
  net.set_gate_voltage(1, kCenterVgs + 0.5 * delta_vgs);
  net.add_coupling({.a = 0, .b = 1, .r = rc, .c = 1e-12});
  const Trace tr = net.simulate(sim_options());
  PairResult r;
  r.locked = is_locked(tr, 0, 1);
  r.f0 = trace_frequency(tr, 0);
  r.f1 = trace_frequency(tr, 1);
  r.phase = phase_difference(tr, 0, 1);
  return r;
}

}  // namespace

int main() {
  core::print_banner(std::cout, "E1 / Fig. 3 — VO2 oscillator frequency locking");

  {
    core::Table tuning({"Vgs [V]", "free-running f [MHz]"}, 3);
    RelaxationOscillator osc{OscillatorParams{}};
    for (core::Real vgs = 0.85; vgs <= 1.351; vgs += 0.05) {
      const Trace tr = osc.simulate(vgs, sim_options());
      tuning.add_row({vgs, trace_frequency(tr, 0) / 1e6});
    }
    std::cout << "\nFree-running tuning curve (the Vgs input encoding):\n";
    tuning.print(std::cout);
  }

  for (const core::Real rc : {40e3, 15e3, 5e3}) {
    core::Table table({"dVgs [V]", "f_osc1 [MHz]", "f_osc2 [MHz]", "locked",
                       "phase [rad]"},
                      3);
    core::Real lock_edge = 0.0;
    for (core::Real d = 0.0; d <= 0.321; d += 0.04) {
      const PairResult r = run_pair(d, rc);
      table.add_row({d, r.f0 / 1e6, r.f1 / 1e6,
                     std::string(r.locked ? "yes" : "no"), r.phase});
      if (r.locked) lock_edge = d;
    }
    std::cout << "\nCoupled pair, Rc = " << rc / 1e3
              << " kOhm (series RC, Cc = 1 pF):\n";
    table.print(std::cout);
    std::cout << "Lock range: |dVgs| <= ~" << lock_edge
              << " V (paper shape: finite plateau of equal frequencies,\n"
              << "widening with stronger coupling; matched pair locks "
                 "anti-phase ~pi).\n";
  }
  return 0;
}
