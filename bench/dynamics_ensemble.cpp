// E9 — dynamics-kernel + ensemble-runner acceptance bench.
//
// Two claims are gated here, with a machine-readable BENCH_dynamics.json
// report for CI:
//
//  1. Reproducibility (hard gate on any machine): a 64-restart DMM ensemble
//     produces bit-identical per-restart trajectories and the same winner at
//     1, 2, and hardware_concurrency threads.
//  2. Throughput (gated only where the hardware can show it): the parallel
//     ensemble beats the serial run by >= 3x on >= 8 cores, >= 1.8x on 4-7
//     cores; below 4 cores the curve is reported but not gated.
//
// Plus an ungated static-vs-dynamic dispatch microbenchmark: the templated
// kernel path must not be slower than the std::function path it replaced.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/json.h"
#include "core/ode.h"
#include "core/table.h"
#include "memcomputing/dmm.h"
#include "memcomputing/sat.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

namespace {

using Clock = std::chrono::steady_clock;

core::Real seconds_since(Clock::time_point start) {
  return std::chrono::duration<core::Real>(Clock::now() - start).count();
}

constexpr std::size_t kRestarts = 64;
constexpr std::uint64_t kSeed = 20260805;

DmmEnsembleResult run_sweep(const DmmSolver& solver, std::size_t threads) {
  DmmEnsembleOptions opts;
  opts.threads = threads;
  // Full budget: every restart runs, so serial and parallel sweeps do the
  // same amount of integration work and the timing ratio is a real speedup.
  opts.stop_on_first_solution = false;
  return solver.solve_ensemble(kRestarts, kSeed, opts);
}

bool sweeps_identical(const DmmEnsembleResult& a, const DmmEnsembleResult& b) {
  if (a.best_index != b.best_index || a.any_satisfied != b.any_satisfied)
    return false;
  for (std::size_t i = 0; i < kRestarts; ++i) {
    if (!a.ran[i] || !b.ran[i]) return false;
    if (a.results[i].steps != b.results[i].steps ||
        a.results[i].sim_time != b.results[i].sim_time ||
        a.results[i].satisfied != b.results[i].satisfied ||
        a.results[i].assignment != b.results[i].assignment)
      return false;
  }
  return true;
}

/// Static-vs-dynamic dispatch on a pure stepping workload: the same decay
/// system driven through the templated kernel and through the std::function
/// adapter. Returns ns per RHS-state element.
struct DecayKernel {
  void rhs(core::Real, std::span<const core::Real> y,
           std::span<core::Real> dydt) const {
    for (std::size_t i = 0; i < y.size(); ++i) dydt[i] = -y[i];
  }
};

std::pair<core::Real, core::Real> dispatch_microbench() {
  constexpr std::size_t kDim = 64;
  constexpr core::Real kT1 = 200.0;
  constexpr core::Real kDt = 1e-3;

  DecayKernel kernel;
  core::Workspace ws;
  std::vector<core::Real> y(kDim, 1.0);
  auto start = Clock::now();
  core::integrate_fixed(kernel, core::Scheme::kHeun, 0.0, kT1, kDt,
                        std::span<core::Real>(y), ws);
  const core::Real kernel_s = seconds_since(start);

  const core::OdeRhs fn = [](core::Real, std::span<const core::Real> yy,
                             std::span<core::Real> dydt) {
    for (std::size_t i = 0; i < yy.size(); ++i) dydt[i] = -yy[i];
  };
  std::vector<core::Real> y2(kDim, 1.0);
  start = Clock::now();
  core::integrate_fixed(fn, core::Scheme::kHeun, 0.0, kT1, kDt, y2);
  const core::Real fn_s = seconds_since(start);

  const auto steps = static_cast<core::Real>(kT1 / kDt);
  const core::Real scale = 1e9 / (steps * static_cast<core::Real>(kDim));
  return {kernel_s * scale, fn_s * scale};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      rebooting::bench::artifact_path(argc, argv, "BENCH_dynamics.json");
  core::print_banner(std::cout,
                     "E9 — static-dispatch kernels & parallel trajectory "
                     "ensembles (64-restart DMM sweep)");

  const std::size_t cores =
      std::max(1u, std::thread::hardware_concurrency());

  core::Rng gen(424242);
  const auto inst = planted_ksat(gen, 70, 297, 3);
  DmmOptions dopts;
  dopts.max_steps = 60'000;
  const DmmSolver solver(inst.cnf, dopts);

  // Warm-up (first-touch allocation, page faults) outside the timings.
  (void)run_sweep(solver, 1);

  const auto t_serial = Clock::now();
  const DmmEnsembleResult serial = run_sweep(solver, 1);
  const core::Real serial_s = seconds_since(t_serial);

  const auto t_par = Clock::now();
  const DmmEnsembleResult parallel = run_sweep(solver, cores);
  const core::Real parallel_s = seconds_since(t_par);

  const DmmEnsembleResult two = run_sweep(solver, 2);

  const bool reproducible =
      sweeps_identical(serial, parallel) && sweeps_identical(serial, two);
  const core::Real speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const auto [kernel_ns, fn_ns] = dispatch_microbench();

  core::Table table({"metric", "value"}, 4);
  table.add_row({std::string("hardware cores"),
                 static_cast<std::int64_t>(cores)});
  table.add_row({std::string("restarts"),
                 static_cast<std::int64_t>(kRestarts)});
  table.add_row({std::string("satisfied restarts winner idx"),
                 static_cast<std::int64_t>(serial.best_index)});
  table.add_row({std::string("serial wall [s]"), serial_s});
  table.add_row({std::string("parallel wall [s]"), parallel_s});
  table.add_row({std::string("speedup"), speedup});
  table.add_row({std::string("bit-reproducible across 1/2/all threads"),
                 std::string(reproducible ? "yes" : "NO")});
  table.add_row({std::string("kernel stepping [ns/elem]"), kernel_ns});
  table.add_row({std::string("std::function stepping [ns/elem]"), fn_ns});
  std::cout << '\n';
  table.print(std::cout);

  // Hardware-aware throughput gate.
  core::Real required = 0.0;
  if (cores >= 8)
    required = 3.0;
  else if (cores >= 4)
    required = 1.8;
  const bool speedup_ok = required == 0.0 || speedup >= required;
  // Three-way verdict, emitted into the JSON as well: a 1-core CI runner
  // must show up as an explicit "skipped", not silently report exit 0 as if
  // the parallel claim had been checked.
  const char* gate_verdict =
      required == 0.0 ? "skipped" : (speedup_ok ? "pass" : "fail");
  std::string gate_reason;
  if (required == 0.0)
    gate_reason = "only " + std::to_string(cores) +
                  " core(s) visible; gating needs >= 4";
  if (required == 0.0)
    std::cout << "\nspeedup gate skipped: only " << cores
              << " core(s) visible (need >= 4 to gate)\n";
  else
    std::cout << "\nspeedup gate: " << speedup << "x vs required "
              << required << "x on " << cores << " cores -> "
              << (speedup_ok ? "PASS" : "FAIL") << '\n';
  std::cout << "reproducibility gate: "
            << (reproducible ? "PASS" : "FAIL") << '\n';

  {
    std::ofstream json(out_path);
    json << "{\n"
         << "  \"bench\": " << core::json_quote("dynamics_ensemble") << ",\n"
         << "  \"cores\": " << core::json_number(static_cast<std::int64_t>(cores))
         << ",\n"
         << "  \"restarts\": "
         << core::json_number(static_cast<std::int64_t>(kRestarts)) << ",\n"
         << "  \"serial_seconds\": " << core::json_number(serial_s) << ",\n"
         << "  \"parallel_seconds\": " << core::json_number(parallel_s) << ",\n"
         << "  \"speedup\": " << core::json_number(speedup) << ",\n"
         << "  \"speedup_required\": " << core::json_number(required) << ",\n"
         << "  \"speedup_gated\": " << (required > 0.0 ? "true" : "false")
         << ",\n"
         << "  \"speedup_gate\": " << core::json_quote(gate_verdict) << ",\n"
         << "  \"speedup_gate_reason\": " << core::json_quote(gate_reason)
         << ",\n"
         << "  \"reproducible\": " << (reproducible ? "true" : "false") << ",\n"
         << "  \"winner_index\": "
         << core::json_number(static_cast<std::int64_t>(serial.best_index))
         << ",\n"
         << "  \"kernel_ns_per_element\": " << core::json_number(kernel_ns)
         << ",\n"
         << "  \"function_ns_per_element\": " << core::json_number(fn_ns)
         << "\n}\n";
    std::cout << "wrote " << out_path << '\n';
  }

  if (!reproducible) return 1;
  if (!speedup_ok) return 2;
  return 0;
}
