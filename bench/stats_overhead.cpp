// Metrics/sampling overhead bench — gates the cost discipline the
// fleet-observability surface (telemetry::Sampler, rebootd's metrics/watch
// verbs) depends on, with a machine-readable BENCH_stats.json.
//
// Two claims are gated:
//
//   1. A disabled metric update costs < 2 ns per instrumented point (one
//      relaxed atomic load + branch) — the same discipline trace_overhead
//      gates for trace points, re-asserted here for TELEM_COUNT/TELEM_RECORD
//      so instrumentation stays compiled into engine hot loops.
//   2. One Sampler::tick() on a *populated* registry (hundreds of counters,
//      dozens of live histograms) costs < 5 ms. The watch pump ticks once
//      per interval (floor 20 ms), so the gate bounds sampling overhead at
//      < 25% of one core in the worst configuration and ~1% at the default
//      500 ms cadence — an ops dashboard must never become the load.
//
// Methodology matches the other exit-gated benches: min-pass timing over
// repeated passes, empty-loop baseline subtracted for the ns-scale paths,
// asm memory clobber so the disabled-path check cannot be hoisted.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/json.h"
#include "core/table.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"

using namespace rebooting;
using core::Real;

namespace {

constexpr std::size_t kOpsPerPass = 200000;
constexpr std::size_t kPasses = 25;
constexpr std::size_t kTickPasses = 50;
constexpr Real kDisabledGateNs = 2.0;
constexpr Real kTickGateMs = 5.0;

// Registry population: sized like a busy multi-pool rebootd after a long
// soak, then some (net.*, sched.*, work.*, per-pool gauges, latency
// histograms), so the tick gate measures the realistic worst case, not an
// empty-map walk.
constexpr std::size_t kCounters = 400;
constexpr std::size_t kGauges = 100;
constexpr std::size_t kHistograms = 40;
constexpr std::size_t kRecordsPerHistogram = 4096;

using Clock = std::chrono::steady_clock;

inline void clobber() { asm volatile("" ::: "memory"); }

template <typename Body>
Real min_pass_ns(const Body& body) {
  Real best = std::numeric_limits<Real>::infinity();
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < kOpsPerPass; ++i) {
      body(i);
      clobber();
    }
    const Real ns =
        std::chrono::duration<Real, std::nano>(Clock::now() - start).count();
    best = std::min(best, ns / static_cast<Real>(kOpsPerPass));
  }
  return best;
}

void populate(telemetry::MetricsRegistry& registry) {
  for (std::size_t i = 0; i < kCounters; ++i)
    registry.add("bench.counter." + std::to_string(i),
                 static_cast<Real>(i + 1));
  for (std::size_t i = 0; i < kGauges; ++i)
    registry.set("bench.gauge." + std::to_string(i), static_cast<Real>(i));
  for (std::size_t i = 0; i < kHistograms; ++i) {
    const std::string name = "bench.hist." + std::to_string(i);
    for (std::size_t k = 0; k < kRecordsPerHistogram; ++k)
      registry.record(name, 1.0e-6 * static_cast<Real>(k + 1));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      rebooting::bench::artifact_path(argc, argv, "BENCH_stats.json");
  core::print_banner(std::cout,
                     "Metrics/sampler overhead — disabled path & tick cost");
  std::cout << "\n"
            << kOpsPerPass << " ops/pass, " << kPasses
            << " passes, min-pass reported; gates: disabled < "
            << kDisabledGateNs << " ns, sampler tick < " << kTickGateMs
            << " ms on " << kCounters << " counters / " << kGauges
            << " gauges / " << kHistograms << " histograms\n\n";

  const Real baseline_ns = min_pass_ns([](std::size_t) {});

  // 1. Disabled path: TELEM_COUNT / TELEM_RECORD cost one enabled() check.
  telemetry::Telemetry::set_enabled(false);
  const Real disabled_count_ns =
      min_pass_ns([](std::size_t) { TELEM_COUNT("bench.off"); }) -
      baseline_ns;
  const Real disabled_record_ns =
      min_pass_ns([](std::size_t i) {
        TELEM_RECORD("bench.off.hist", static_cast<Real>(i));
      }) -
      baseline_ns;

  // 2. Tick cost on a populated registry. A standalone registry, not the
  //    global one, so the numbers do not depend on what earlier passes left
  //    behind.
  telemetry::MetricsRegistry registry;
  populate(registry);
  telemetry::Sampler sampler(registry);

  Real tick_best_ms = std::numeric_limits<Real>::infinity();
  Real tick_worst_ms = 0.0;
  for (std::size_t pass = 0; pass < kTickPasses; ++pass) {
    const auto start = Clock::now();
    const telemetry::MetricsSample sample = sampler.tick();
    const Real ms =
        std::chrono::duration<Real, std::milli>(Clock::now() - start).count();
    tick_best_ms = std::min(tick_best_ms, ms);
    tick_worst_ms = std::max(tick_worst_ms, ms);
    if (sample.counters.size() != kCounters) return 3;  // self-check
  }

  // Rate computation over the full ring tail (not gated; reported so a
  // regression is visible in the trajectory even below the tick gate).
  const auto rates_start = Clock::now();
  const telemetry::MetricsRates rates = sampler.rates();
  const Real rates_ms = std::chrono::duration<Real, std::milli>(
                            Clock::now() - rates_start)
                            .count();

  const Real disabled_worst = std::max(disabled_count_ns, disabled_record_ns);
  const bool disabled_ok = disabled_worst < kDisabledGateNs;
  // Gate on the *minimum* tick like the ns-scale paths: it is the cost of
  // the code, not of scheduler noise; the max is reported alongside.
  const bool tick_ok = tick_best_ms < kTickGateMs;

  core::Table table({"path", "cost", "gate", "verdict"}, 4);
  table.add_row({std::string("disabled TELEM_COUNT [ns]"), disabled_count_ns,
                 kDisabledGateNs,
                 std::string(disabled_count_ns < kDisabledGateNs ? "PASS"
                                                                 : "FAIL")});
  table.add_row({std::string("disabled TELEM_RECORD [ns]"),
                 disabled_record_ns, kDisabledGateNs,
                 std::string(disabled_record_ns < kDisabledGateNs ? "PASS"
                                                                  : "FAIL")});
  table.add_row({std::string("sampler tick, populated [ms]"), tick_best_ms,
                 kTickGateMs,
                 std::string(tick_ok ? "PASS" : "FAIL")});
  table.add_row({std::string("sampler tick, worst pass [ms]"), tick_worst_ms,
                 std::string("-"), std::string("report")});
  table.add_row({std::string("rates() over ring [ms]"), rates_ms,
                 std::string("-"), std::string("report")});
  table.print(std::cout);
  std::cout << "\nloop baseline: " << baseline_ns << " ns; rate set holds "
            << rates.per_second.size() << " counters over dt="
            << rates.dt_seconds << " s\n"
            << "disabled gate: " << (disabled_ok ? "PASS" : "FAIL")
            << ", tick gate: " << (tick_ok ? "PASS" : "FAIL") << '\n';

  {
    std::ofstream json(out_path);
    json << "{\n"
         << "  \"bench\": " << core::json_quote("stats_overhead") << ",\n"
         << "  \"ops_per_pass\": "
         << core::json_number(static_cast<std::int64_t>(kOpsPerPass)) << ",\n"
         << "  \"passes\": "
         << core::json_number(static_cast<std::int64_t>(kPasses)) << ",\n"
         << "  \"counters\": "
         << core::json_number(static_cast<std::int64_t>(kCounters)) << ",\n"
         << "  \"gauges\": "
         << core::json_number(static_cast<std::int64_t>(kGauges)) << ",\n"
         << "  \"histograms\": "
         << core::json_number(static_cast<std::int64_t>(kHistograms)) << ",\n"
         << "  \"baseline_ns\": " << core::json_number(baseline_ns) << ",\n"
         << "  \"disabled_count_ns\": "
         << core::json_number(disabled_count_ns) << ",\n"
         << "  \"disabled_record_ns\": "
         << core::json_number(disabled_record_ns) << ",\n"
         << "  \"tick_ms\": " << core::json_number(tick_best_ms) << ",\n"
         << "  \"tick_worst_ms\": " << core::json_number(tick_worst_ms)
         << ",\n"
         << "  \"rates_ms\": " << core::json_number(rates_ms) << ",\n"
         << "  \"disabled_gate_ns\": " << core::json_number(kDisabledGateNs)
         << ",\n"
         << "  \"tick_gate_ms\": " << core::json_number(kTickGateMs) << ",\n"
         << "  \"disabled_gate_pass\": " << (disabled_ok ? "true" : "false")
         << ",\n"
         << "  \"tick_gate_pass\": " << (tick_ok ? "true" : "false")
         << "\n}\n";
    std::cout << "wrote " << out_path << '\n';
  }

  if (!disabled_ok) return 1;
  if (!tick_ok) return 2;
  return 0;
}
