// rebootd loopback throughput bench — gates the service tier's wire path
// (framing, decode, admission, scheduler round trip, response fan-in) with a
// machine-readable BENCH_service.json.
//
// Setup: one in-process Server on 127.0.0.1:<ephemeral>, classical-cpu pool
// only, coalescing bypassed (no_coalesce on every request). kThreads client
// threads each hold one pipelined connection with kWindow "echo" submits in
// flight and exact accounting: at the end, sent == received and every
// response id was seen exactly once.
//
// The gate is deliberately conservative — kMinRps is an order of magnitude
// below what the loopback path sustains on the 4-vCPU CI runners — because
// this bench exists to catch a collapse of the pipelined path (a reader
// blocking on the queue, a pump serializing on the wrong lock), not to chase
// a peak number. Latency quantiles come from the server-side
// net.request_seconds histogram via a status call, the same numbers the
// loadgen soak prints.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "core/json.h"
#include "core/table.h"
#include "net/protocol.h"
#include "rebootctl/client.h"
#include "rebootd/server.h"

using namespace rebooting;
using core::Real;

namespace {

constexpr std::size_t kThreads = 2;
constexpr std::size_t kWindow = 32;
constexpr double kSeconds = 2.0;
constexpr Real kMinRps = 2000.0;

using Clock = std::chrono::steady_clock;

struct WorkerTally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t other = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t duplicates = 0;
};

net::Request echo_request(std::uint64_t id) {
  net::Request req;
  req.id = id;
  req.method = "submit";
  req.tenant = "bench";
  req.work = "echo";
  req.no_coalesce = true;
  return req;
}

void worker(std::uint16_t port, std::size_t index, Clock::time_point deadline,
            WorkerTally* tally) {
  rebootctl::Client client;
  std::string error;
  if (!client.connect("127.0.0.1", port, &error)) {
    std::cerr << "worker " << index << ": connect failed: " << error << '\n';
    tally->transport_errors = 1;
    return;
  }

  std::unordered_set<std::uint64_t> outstanding;
  std::uint64_t seq = 0;
  const auto take_one = [&]() -> bool {
    const auto resp = client.recv(&error);
    if (!resp.has_value()) {
      tally->transport_errors += outstanding.size();
      outstanding.clear();
      return false;
    }
    if (outstanding.erase(resp->id) == 0) {
      // Seen twice or never sent — either way the accounting is broken.
      ++tally->duplicates;
      return true;
    }
    ++(resp->status == net::Status::kOk ? tally->ok : tally->other);
    return true;
  };

  while (Clock::now() < deadline) {
    while (outstanding.size() < kWindow) {
      const std::uint64_t id =
          (static_cast<std::uint64_t>(index) << 40) | ++seq;
      if (!client.send(echo_request(id), &error)) {
        tally->transport_errors += outstanding.size() + 1;
        outstanding.clear();
        return;
      }
      outstanding.insert(id);
      ++tally->sent;
    }
    if (!take_one()) return;
  }
  while (!outstanding.empty())
    if (!take_one()) return;
  client.close();
}

Real body_number(const core::JsonValue& body, const char* group,
                 const char* field) {
  return body.at(group).at(field).number();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      rebooting::bench::artifact_path(argc, argv, "BENCH_service.json");
  core::print_banner(std::cout,
                     "rebootd loopback echo — pipelined wire-path throughput");
  std::cout << "\n" << kThreads << " connections x window " << kWindow
            << ", " << kSeconds << " s, gate: >= " << kMinRps << " req/s\n\n";

  rebootd::ServerConfig config;
  config.cpu_workers = 2;
  config.queue_capacity = 512;
  config.pump_threads = 2;
  rebootd::Server server(config);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "server start failed: " << error << '\n';
    return 3;
  }

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(kSeconds));
  std::vector<WorkerTally> tallies(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i)
    threads.emplace_back(worker, server.port(), i, deadline, &tallies[i]);
  for (auto& t : threads) t.join();
  const Real elapsed =
      std::chrono::duration<Real>(Clock::now() - start).count();

  WorkerTally total;
  for (const auto& t : tallies) {
    total.sent += t.sent;
    total.ok += t.ok;
    total.other += t.other;
    total.transport_errors += t.transport_errors;
    total.duplicates += t.duplicates;
  }
  const std::uint64_t accounted =
      total.ok + total.other + total.transport_errors;
  const Real rps = static_cast<Real>(total.ok) / elapsed;

  // Server-side quantiles over the whole run, then a clean stop.
  Real p50 = 0.0, p99 = 0.0, server_count = 0.0;
  {
    rebootctl::Client client;
    if (client.connect("127.0.0.1", server.port(), &error)) {
      net::Request req;
      req.id = 1;
      req.method = "status";
      if (const auto resp = client.call(req, &error);
          resp.has_value() && resp->status == net::Status::kOk) {
        p50 = body_number(resp->body, "latency", "p50_seconds");
        p99 = body_number(resp->body, "latency", "p99_seconds");
        server_count = body_number(resp->body, "latency", "count");
      }
    }
  }
  server.stop();

  const bool balanced = accounted == total.sent && total.duplicates == 0;
  const bool fast_enough = rps >= kMinRps;

  core::Table table({"metric", "value"}, 3);
  table.add_row({std::string("ok responses"), static_cast<Real>(total.ok)});
  table.add_row({std::string("non-ok responses"),
                 static_cast<Real>(total.other)});
  table.add_row({std::string("transport errors"),
                 static_cast<Real>(total.transport_errors)});
  table.add_row({std::string("throughput [req/s]"), rps});
  table.add_row({std::string("server p50 [ms]"), p50 * 1e3});
  table.add_row({std::string("server p99 [ms]"), p99 * 1e3});
  table.print(std::cout);
  std::cout << "\naccounting: " << (balanced ? "BALANCED" : "BROKEN")
            << " (" << total.sent << " sent, " << accounted
            << " accounted, server histogram count " << server_count << ")\n"
            << "throughput gate: " << (fast_enough ? "PASS" : "FAIL") << '\n';

  {
    std::ofstream json(out_path);
    json << "{\n"
         << "  \"bench\": " << core::json_quote("service_echo") << ",\n"
         << "  \"threads\": "
         << core::json_number(static_cast<std::int64_t>(kThreads)) << ",\n"
         << "  \"window\": "
         << core::json_number(static_cast<std::int64_t>(kWindow)) << ",\n"
         << "  \"seconds\": " << core::json_number(elapsed) << ",\n"
         << "  \"ok\": "
         << core::json_number(static_cast<std::int64_t>(total.ok)) << ",\n"
         << "  \"non_ok\": "
         << core::json_number(static_cast<std::int64_t>(total.other))
         << ",\n"
         << "  \"transport_errors\": "
         << core::json_number(
                static_cast<std::int64_t>(total.transport_errors))
         << ",\n"
         << "  \"requests_per_second\": " << core::json_number(rps) << ",\n"
         << "  \"server_p50_seconds\": " << core::json_number(p50) << ",\n"
         << "  \"server_p99_seconds\": " << core::json_number(p99) << ",\n"
         << "  \"min_rps_gate\": " << core::json_number(kMinRps) << ",\n"
         << "  \"accounting_balanced\": " << (balanced ? "true" : "false")
         << ",\n"
         << "  \"throughput_gate_pass\": " << (fast_enough ? "true" : "false")
         << "\n}\n";
    std::cout << "wrote " << out_path << '\n';
  }

  if (!balanced) return 1;
  if (!fast_enough) return 2;
  return 0;
}
