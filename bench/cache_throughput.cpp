// Result-cache acceptance bench (DESIGN.md §14, exit-gated).
//
// Three claims:
//   1. Memoized submit throughput scales with hit rate: the same stream of
//      jobs at a 90% key-repeat rate must complete >= 5x faster than at 0%,
//      because hits replay a stored JobResult instead of occupying a worker.
//   2. The price of looking is near zero: with every key distinct (100%
//      miss — the cache never helps), memoized submits may cost at most 5%
//      more wall time than the same jobs submitted without a memo_key.
//   3. A raw ShardedCache::get on a hot key costs nanoseconds, reported as
//      ns/lookup from a tight microloop.
//
// Writes BENCH_cache.json; exits 1 when a gate fails.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cache.h"
#include "core/json.h"
#include "core/table.h"
#include "scheduler/scheduler.h"

using namespace rebooting;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kJobs = 1000;          // submits per phase
constexpr int kDistinctAt90 = 100;   // 100 distinct keys over 1000 submits
constexpr int kOverheadTrials = 3;   // best-of for the noise-sensitive gate
constexpr double kSpeedupGate = 5.0;
constexpr double kOverheadGate = 0.05;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Fixed-cost payload: ~10^5 xorshift rounds (~100 us), so a worker-side
/// execution is clearly distinguishable from a cache replay, and a ~1 us
/// lookup is clearly inside the 5% overhead budget.
core::JobResult spin_payload(core::Accelerator&) {
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 100'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  core::JobResult r;
  r.ok = true;
  r.metrics["spin.checksum"] = static_cast<core::Real>(x & 0xFFFF);
  return r;
}

/// Submits kJobs spin jobs whose memo keys come from `key_of(i)` (empty
/// string = no memoization) and returns the wall seconds to drain them all.
double run_phase(const std::string& label,
                 const std::function<std::string(int)>& key_of) {
  sched::Scheduler scheduler;
  scheduler.add_pool(core::AcceleratorKind::kClassicalCpu, 4,
                     core::CpuAccelerator::factory());
  std::vector<std::future<core::JobResult>> futures;
  futures.reserve(kJobs);
  const auto start = Clock::now();
  for (int i = 0; i < kJobs; ++i) {
    sched::JobOptions opts;
    opts.memo_key = key_of(i);
    futures.push_back(scheduler.submit(label, core::AcceleratorKind::kClassicalCpu,
                                       spin_payload, opts));
  }
  for (auto& f : futures)
    if (!f.get().ok) throw std::runtime_error(label + ": job failed");
  return seconds_between(start, Clock::now());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      rebooting::bench::artifact_path(argc, argv, "BENCH_cache.json");
  core::print_banner(std::cout,
                     "result-cache throughput — memoized submit rate vs hit "
                     "rate, plus the price of a miss");
  core::set_cache_enabled(true);

  // --- claim 1: throughput scales with hit rate --------------------------
  const double t_hit0 =
      run_phase("hit0", [](int i) { return "a-" + std::to_string(i); });
  const double t_hit90 = run_phase("hit90", [](int i) {
    return "b-" + std::to_string(i % kDistinctAt90);
  });
  const double tput_hit0 = kJobs / t_hit0;
  const double tput_hit90 = kJobs / t_hit90;
  const double speedup = tput_hit90 / tput_hit0;
  const bool speedup_ok = speedup >= kSpeedupGate;

  // --- claim 2: a miss costs <= 5% over no memoization at all ------------
  // Best-of-N on both sides: the gate compares the machinery, not the
  // scheduler's worst jitter. Keys are distinct across trials so every
  // memoized submit is a genuine miss.
  double t_memo_off = 1e9, t_memo_on = 1e9;
  for (int trial = 0; trial < kOverheadTrials; ++trial) {
    t_memo_off = std::min(
        t_memo_off, run_phase("plain", [](int) { return std::string(); }));
    t_memo_on = std::min(t_memo_on, run_phase("miss", [trial](int i) {
      return "c-" + std::to_string(trial) + "-" + std::to_string(i);
    }));
  }
  const double overhead = t_memo_on / t_memo_off - 1.0;
  const bool overhead_ok = overhead <= kOverheadGate;

  // --- claim 3: ns per hot lookup ----------------------------------------
  core::CacheConfig cfg;
  cfg.name = "bench.lookup";
  core::ShardedCache<int> cache(cfg);
  constexpr int kKeys = 1024;
  std::vector<core::HashKey128> keys;
  for (int i = 0; i < kKeys; ++i) {
    core::HashWriter w;
    w.u64(static_cast<std::uint64_t>(i));
    keys.push_back(w.finish());
    cache.put(keys.back(), std::make_shared<const int>(i), 4);
  }
  constexpr int kLookups = 1'000'000;
  std::uint64_t sink = 0;
  const auto lk_start = Clock::now();
  for (int i = 0; i < kLookups; ++i)
    sink += static_cast<std::uint64_t>(*cache.get(keys[i & (kKeys - 1)]));
  const double ns_per_lookup =
      seconds_between(lk_start, Clock::now()) * 1e9 / kLookups;

  core::Table table({"metric", "value"}, 4);
  table.add_row({std::string("jobs per phase"),
                 static_cast<std::int64_t>(kJobs)});
  table.add_row({std::string("throughput @ 0% hit [jobs/s]"), tput_hit0});
  table.add_row({std::string("throughput @ 90% hit [jobs/s]"), tput_hit90});
  table.add_row({std::string("speedup (gate >= 5)"), speedup});
  table.add_row({std::string("miss path overhead (gate <= 0.05)"), overhead});
  table.add_row({std::string("ns per hot lookup"), ns_per_lookup});
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nspeedup gate: " << speedup << "x vs " << kSpeedupGate
            << "x -> " << (speedup_ok ? "PASS" : "FAIL")
            << "\noverhead gate: " << overhead * 100.0 << "% vs "
            << kOverheadGate * 100.0 << "% -> "
            << (overhead_ok ? "PASS" : "FAIL") << '\n';

  {
    std::ofstream json(out_path);
    json << "{\n"
         << "  \"bench\": " << core::json_quote("cache_throughput") << ",\n"
         << "  \"jobs\": " << kJobs << ",\n"
         << "  \"throughput_hit0_per_s\": " << core::json_number(tput_hit0)
         << ",\n"
         << "  \"throughput_hit90_per_s\": " << core::json_number(tput_hit90)
         << ",\n"
         << "  \"speedup\": " << core::json_number(speedup) << ",\n"
         << "  \"speedup_gate\": " << core::json_number(kSpeedupGate) << ",\n"
         << "  \"miss_overhead\": " << core::json_number(overhead) << ",\n"
         << "  \"miss_overhead_gate\": " << core::json_number(kOverheadGate)
         << ",\n"
         << "  \"ns_per_lookup\": " << core::json_number(ns_per_lookup)
         << ",\n"
         << "  \"lookup_checksum\": " << (sink & 0xFFFF) << ",\n"
         << "  \"gate\": "
         << core::json_quote(speedup_ok && overhead_ok ? "pass" : "fail")
         << "\n}\n";
    std::cout << "wrote " << out_path << '\n';
  }
  return speedup_ok && overhead_ok ? 0 : 1;
}
