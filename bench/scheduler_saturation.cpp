// Scheduler saturation bench — the repo's first cross-paradigm *system*
// benchmark. Where every other bench exercises one engine, this one drives a
// mixed stream of quantum, oscillator, and DMM jobs through the async
// scheduler (src/scheduler/) with 1 -> N workers per kind and reports
// end-to-end throughput plus p50/p99 latency read back from the telemetry
// histograms (`sched.wait_seconds` / `sched.latency_seconds`).
//
// Latency model: each job does its host-side compute (circuit simulation,
// calibrated-curve lookups, DMM integration) and then *waits out* the latency
// its own device model predicts for the physical accelerator — the quantum
// stack's scheduled cycle count x cycle time x shots, the comparator's
// readout_cycles / f_osc per comparison, and an RC time constant per accepted
// DMM integration step. In the paper's Fig. 1 deployment the host really does
// block on the device for exactly that long, so worker scaling here measures
// what the scheduler is for: keeping many devices busy concurrently, not
// spreading host FLOPs over cores. Throughput therefore scales with workers
// even on a single-core host.
#include <chrono>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "core/random.h"
#include "core/table.h"
#include "memcomputing/accelerator.h"
#include "memcomputing/cnf.h"
#include "memcomputing/dmm.h"
#include "oscillator/comparator.h"
#include "quantum/circuit.h"
#include "quantum/runtime.h"
#include "scheduler/scheduler.h"
#include "telemetry/telemetry.h"

using namespace rebooting;
using core::Real;

namespace {

constexpr std::size_t kJobsPerKind = 24;
constexpr std::size_t kQuantumShots = 1024;
constexpr std::size_t kComparisonsPerJob = 256;
/// SOLG RC time constant per accepted integration step: the dimensionless
/// DMM dynamics map onto hardware at ~1 us per unit time (Sec. IV scale).
constexpr Real kDmmStepSeconds = 1e-6;

void sleep_device(Real seconds) {
  std::this_thread::sleep_for(std::chrono::duration<Real>(seconds));
}

oscillator::ComparatorConfig cheap_comparator_config() {
  oscillator::ComparatorConfig cfg;
  cfg.calibration_points = 4;  // keep per-replica calibration quick
  cfg.sim.duration = 40e-6;
  return cfg;
}

/// The default mixed job stream: kJobsPerKind jobs of each paradigm,
/// interleaved, seeded per job so results are reproducible regardless of
/// which worker runs what.
std::vector<std::future<core::JobResult>> submit_mix(sched::Scheduler& s) {
  std::vector<std::future<core::JobResult>> futures;
  futures.reserve(3 * kJobsPerKind);
  for (std::size_t i = 0; i < kJobsPerKind; ++i) {
    futures.push_back(s.submit(
        "ghz-" + std::to_string(i), core::AcceleratorKind::kQuantum,
        [i](core::Accelerator& a) {
          auto& dev = dynamic_cast<quantum::QuantumAccelerator&>(a);
          core::Rng rng(1000 + i);
          quantum::Circuit ghz(4);
          ghz.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
          const auto res = dev.run(ghz, kQuantumShots, rng);
          sleep_device(res.device_seconds);
          core::JobResult jr;
          jr.ok = true;
          jr.metrics["device_seconds"] = res.device_seconds;
          return jr;
        }));
    futures.push_back(s.submit(
        "compare-" + std::to_string(i), core::AcceleratorKind::kOscillator,
        [i](core::Accelerator& a) {
          auto& dev = dynamic_cast<oscillator::OscillatorAccelerator&>(a);
          core::Rng rng(2000 + i);
          Real checksum = 0.0;
          for (std::size_t c = 0; c < kComparisonsPerJob; ++c)
            checksum += dev.comparator().distance(rng.uniform(), rng.uniform());
          sleep_device(static_cast<Real>(kComparisonsPerJob) *
                       dev.comparator().comparison_seconds());
          core::JobResult jr;
          jr.ok = checksum >= 0.0;
          jr.metrics["comparisons"] = static_cast<Real>(kComparisonsPerJob);
          return jr;
        }));
    futures.push_back(s.submit(
        "3sat-" + std::to_string(i), core::AcceleratorKind::kMemcomputing,
        [i](core::Accelerator&) {
          core::Rng rng(3000 + i);
          const auto inst = memcomputing::planted_ksat(rng, 16, 67, 3);
          const auto r = memcomputing::DmmSolver(inst.cnf, {}).solve(rng);
          sleep_device(static_cast<Real>(r.steps) * kDmmStepSeconds);
          core::JobResult jr;
          jr.ok = r.satisfied;
          jr.metrics["dmm_steps"] = static_cast<Real>(r.steps);
          return jr;
        }));
  }
  return futures;
}

struct RunResult {
  Real wall_seconds = 0.0;
  Real throughput = 0.0;  ///< jobs / s
  Real wait_p50 = 0.0, wait_p99 = 0.0;
  Real latency_p50 = 0.0, latency_p99 = 0.0;
  std::size_t failed = 0;
};

RunResult run_with_workers(std::size_t workers) {
  telemetry::Telemetry::set_enabled(true);
  telemetry::Telemetry::instance().reset();

  sched::Scheduler scheduler({.queue_capacity = 256});
  scheduler.add_pool(core::AcceleratorKind::kQuantum, workers,
                     quantum::QuantumAccelerator::factory(
                         {.topology = quantum::Topology::line(4)}));
  scheduler.add_pool(
      core::AcceleratorKind::kOscillator, workers,
      oscillator::OscillatorAccelerator::factory(cheap_comparator_config()));
  scheduler.add_pool(core::AcceleratorKind::kMemcomputing, workers,
                     memcomputing::MemcomputingAccelerator::factory());

  const auto start = std::chrono::steady_clock::now();
  auto futures = submit_mix(scheduler);
  RunResult out;
  for (auto& f : futures)
    if (!f.get().ok) ++out.failed;
  scheduler.drain();
  out.wall_seconds = std::chrono::duration<Real>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  out.throughput = static_cast<Real>(futures.size()) / out.wall_seconds;

  const auto& metrics = telemetry::Telemetry::instance().metrics();
  const auto wait = metrics.histogram("sched.wait_seconds");
  const auto latency = metrics.histogram("sched.latency_seconds");
  out.wait_p50 = wait.quantile(0.50);
  out.wait_p99 = wait.quantile(0.99);
  out.latency_p50 = latency.quantile(0.50);
  out.latency_p99 = latency.quantile(0.99);

  scheduler.shutdown();
  telemetry::Telemetry::instance().reset();
  telemetry::Telemetry::set_enabled(false);
  return out;
}

}  // namespace

int main() {
  core::print_banner(
      std::cout,
      "Scheduler saturation — mixed quantum / oscillator / DMM job stream");
  std::cout << "\n"
            << 3 * kJobsPerKind << " jobs (" << kJobsPerKind
            << " per paradigm); per-kind worker pools of 1, 2, 4; latency "
               "histograms from telemetry\n\n";

  core::Table table({"workers/kind", "wall [s]", "jobs/s", "speedup",
                     "wait p50 [ms]", "wait p99 [ms]", "latency p50 [ms]",
                     "latency p99 [ms]", "failed"},
                    3);
  Real base_throughput = 0.0;
  Real best_speedup = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const auto r = run_with_workers(workers);
    if (workers == 1) base_throughput = r.throughput;
    const Real speedup = r.throughput / base_throughput;
    best_speedup = std::max(best_speedup, speedup);
    table.add_row({static_cast<std::int64_t>(workers), r.wall_seconds,
                   r.throughput, speedup, r.wait_p50 * 1e3, r.wait_p99 * 1e3,
                   r.latency_p50 * 1e3, r.latency_p99 * 1e3,
                   static_cast<std::int64_t>(r.failed)});
  }
  table.print(std::cout);
  std::cout << "\nPeak scaling vs 1 worker/kind: " << best_speedup
            << "x (device-latency-bound mix; the scheduler's job is keeping "
               "replicated devices busy)\n";
  return best_speedup >= 1.5 ? 0 : 1;
}
