// E6 — Sec. IV robustness claim (ref [59]): the DMM solution search is
// robust to dynamical noise because its critical points are topological.
//
// Workload: planted 3-SAT, Langevin noise of increasing amplitude injected
// into the voltage dynamics; reports success rate and median slowdown.
#include <iostream>
#include <vector>

#include "core/stats.h"
#include "core/table.h"
#include "memcomputing/dmm.h"

using namespace rebooting;
using namespace rebooting::memcomputing;

int main() {
  core::print_banner(std::cout,
                     "E6 / Sec. IV — DMM robustness to dynamical noise");

  constexpr std::size_t kN = 80;
  constexpr std::size_t kM = 340;
  constexpr int kInstances = 10;

  core::Rng rng(11);
  std::vector<PlantedInstance> instances;
  for (int i = 0; i < kInstances; ++i)
    instances.push_back(planted_ksat(rng, kN, kM, 3));

  core::Table table({"noise stddev", "solved", "median steps",
                     "slowdown vs noiseless"},
                    3);
  core::Real baseline_steps = 0.0;
  for (const core::Real noise :
       {0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6}) {
    int solved = 0;
    std::vector<core::Real> steps;
    core::Rng run_rng(99);
    for (const auto& inst : instances) {
      DmmOptions opts;
      opts.max_steps = 400'000;
      opts.params.noise_stddev = noise;
      const DmmResult r = DmmSolver(inst.cnf, opts).solve(run_rng);
      if (r.satisfied) {
        ++solved;
        steps.push_back(static_cast<core::Real>(r.steps));
      }
    }
    const core::Real med = steps.empty() ? 0.0 : core::median(steps);
    if (noise == 0.0) baseline_steps = med;
    table.add_row(
        {noise,
         std::string(std::to_string(solved) + "/" + std::to_string(kInstances)),
         med, baseline_steps > 0.0 ? med / baseline_steps : 0.0});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nPaper shape: success persists over a wide noise range, with "
               "graceful slowdown;\nonly noise comparable to the signal "
               "amplitude (v in [-1,1]) destroys the search.\n";
  return 0;
}
