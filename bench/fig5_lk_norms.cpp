// E2 — Fig. 4/5 reproduction: the thresholded, time-averaged XOR readout of
// a coupled pair traces [1 - Avg(XOR)] curves whose shape around the minimum
// follows an lk norm, with the exponent k tunable through the coupling
// configuration (paper: k ~ 1.6 -> 2.0 -> 3.4 as coupling strengthens).
//
// Our calibrated two-state device reproduces the same family through the
// coupling configuration (Rc + operating point on the f(Vgs) tuning curve):
// operating in the linear tuning region gives k ~ 1, approaching the tuning
// extremum gives strongly super-linear curves (k ~ 3). See EXPERIMENTS.md
// for the paper-vs-measured discussion.
#include <iostream>
#include <vector>

#include "core/stats.h"
#include "core/table.h"
#include "oscillator/analysis.h"
#include "oscillator/network.h"

using namespace rebooting;
using namespace rebooting::oscillator;

namespace {

struct CouplingConfig {
  const char* label;
  core::Real rc;
  core::Real center;
  core::Real max_delta;
};

core::Real averaged_measure(const CouplingConfig& cfg, core::Real delta,
                            std::size_t readout_cycles) {
  SimulationOptions so;
  so.duration = 240e-6;
  so.dt = 1e-9;
  so.sample_stride = 4;
  core::Real sum = 0.0;
  int reps = 0;
  for (const core::Real offset : {0.8, 1.2, 1.6}) {
    so.initial_offset = offset;
    CoupledOscillatorNetwork net(OscillatorParams{}, 2);
    net.set_gate_voltage(0, cfg.center - 0.5 * delta);
    net.set_gate_voltage(1, cfg.center + 0.5 * delta);
    net.add_coupling({.a = 0, .b = 1, .r = cfg.rc, .c = 1e-12});
    const Trace tr = net.simulate(so);
    sum += readout_cycles == 0
               ? xor_distance_measure(tr, 0, 1)
               : xor_distance_measure_windowed(tr, 0, 1, readout_cycles);
    ++reps;
  }
  return sum / static_cast<core::Real>(reps);
}

}  // namespace

int main() {
  core::print_banner(std::cout,
                     "E2 / Fig. 5 — lk-norm family of the XOR distance readout");

  const std::vector<CouplingConfig> configs = {
      {"C1: weak    (Rc=30k, linear tuning point Vgs=1.00)", 30e3, 1.00, 0.16},
      {"C2: medium  (Rc=15k, knee of tuning curve Vgs=1.06)", 15e3, 1.06, 0.20},
      {"C3: strong  (Rc=40k, tuning extremum   Vgs=1.12)", 40e3, 1.12, 0.28},
  };

  core::Table summary({"config", "k (width est.)", "k (power-law fit)",
                       "fit r^2", "measure floor", "measure max"},
                      3);

  for (const auto& cfg : configs) {
    std::vector<core::Real> deltas;
    std::vector<core::Real> measures;
    core::Table curve({"dVgs [V]", "1-Avg(XOR)"}, 4);
    const core::Real step = cfg.max_delta / 8.0;
    for (core::Real d = 0.0; d <= cfg.max_delta + 1e-9; d += step) {
      const core::Real m = averaged_measure(cfg, d, 0);
      curve.add_row({d, m});
      deltas.push_back(d);
      measures.push_back(m);
      if (d > 0.0) {
        deltas.insert(deltas.begin(), -d);
        measures.insert(measures.begin(), m);
      }
    }
    std::cout << '\n' << cfg.label << ":\n";
    curve.print(std::cout);

    core::Real k_width = 0.0;
    core::Real k_fit = 0.0;
    core::Real r2 = 0.0;
    try {
      k_width = estimate_lk_by_widths(deltas, measures);
    } catch (const std::exception& e) {
      std::cout << "  width estimate unavailable: " << e.what() << '\n';
    }
    try {
      const LkFit fit = fit_lk_exponent(deltas, measures);
      k_fit = fit.k;
      r2 = fit.r_squared;
    } catch (const std::exception& e) {
      std::cout << "  regression fit unavailable: " << e.what() << '\n';
    }
    summary.add_row({std::string(cfg.label).substr(0, 2), k_width, k_fit, r2,
                     core::min_value(measures), core::max_value(measures)});
  }

  std::cout << "\nFitted lk-norm exponents (paper: 1.6 / 2.0 / 3.4):\n";
  summary.print(std::cout);

  // Ablation (DESIGN.md Sec. 4): readout accuracy vs averaging window — the
  // accuracy-tunable co-processor idea of ref [44].
  core::print_banner(std::cout,
                     "Ablation — readout cycles vs measure stability (ref [44])");
  core::Table ab({"readout cycles", "measure @ d=0.04", "measure @ d=0.12"}, 4);
  const CouplingConfig& cfg = configs[0];
  for (const std::size_t cycles : {4u, 16u, 64u, 0u}) {
    ab.add_row({static_cast<std::int64_t>(cycles),
                averaged_measure(cfg, 0.04, cycles),
                averaged_measure(cfg, 0.12, cycles)});
  }
  std::cout << "(cycles = 0 means the full trace window)\n";
  ab.print(std::cout);
  return 0;
}
