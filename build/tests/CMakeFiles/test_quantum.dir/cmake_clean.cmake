file(REMOVE_RECURSE
  "CMakeFiles/test_quantum.dir/quantum/test_algorithms.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_algorithms.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_circuit.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_circuit.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_compiler.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_compiler.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_qaoa.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_qaoa.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_qisa.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_qisa.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_runtime.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_runtime.cpp.o.d"
  "CMakeFiles/test_quantum.dir/quantum/test_state.cpp.o"
  "CMakeFiles/test_quantum.dir/quantum/test_state.cpp.o.d"
  "test_quantum"
  "test_quantum.pdb"
  "test_quantum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
