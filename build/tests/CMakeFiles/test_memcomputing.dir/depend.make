# Empty dependencies file for test_memcomputing.
# This may be replaced when dependencies are built.
