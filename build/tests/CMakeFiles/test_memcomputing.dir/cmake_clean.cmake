file(REMOVE_RECURSE
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_cnf.cpp.o"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_cnf.cpp.o.d"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_dmm.cpp.o"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_dmm.cpp.o.d"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_ising.cpp.o"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_ising.cpp.o.d"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_rbm.cpp.o"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_rbm.cpp.o.d"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_sat.cpp.o"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_sat.cpp.o.d"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_solg.cpp.o"
  "CMakeFiles/test_memcomputing.dir/memcomputing/test_solg.cpp.o.d"
  "test_memcomputing"
  "test_memcomputing.pdb"
  "test_memcomputing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memcomputing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
