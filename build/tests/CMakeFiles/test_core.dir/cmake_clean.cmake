file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_accelerator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_accelerator.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_energy.cpp.o"
  "CMakeFiles/test_core.dir/core/test_energy.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_linalg.cpp.o"
  "CMakeFiles/test_core.dir/core/test_linalg.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_ode.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ode.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_random.cpp.o"
  "CMakeFiles/test_core.dir/core/test_random.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_stats.cpp.o"
  "CMakeFiles/test_core.dir/core/test_stats.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_table.cpp.o"
  "CMakeFiles/test_core.dir/core/test_table.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
