
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_accelerator.cpp" "tests/CMakeFiles/test_core.dir/core/test_accelerator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_accelerator.cpp.o.d"
  "/root/repo/tests/core/test_energy.cpp" "tests/CMakeFiles/test_core.dir/core/test_energy.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_energy.cpp.o.d"
  "/root/repo/tests/core/test_linalg.cpp" "tests/CMakeFiles/test_core.dir/core/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_linalg.cpp.o.d"
  "/root/repo/tests/core/test_ode.cpp" "tests/CMakeFiles/test_core.dir/core/test_ode.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ode.cpp.o.d"
  "/root/repo/tests/core/test_random.cpp" "tests/CMakeFiles/test_core.dir/core/test_random.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_random.cpp.o.d"
  "/root/repo/tests/core/test_stats.cpp" "tests/CMakeFiles/test_core.dir/core/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_stats.cpp.o.d"
  "/root/repo/tests/core/test_table.cpp" "tests/CMakeFiles/test_core.dir/core/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebooting_core.dir/DependInfo.cmake"
  "/root/repo/build/src/oscillator/CMakeFiles/rebooting_oscillator.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/rebooting_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/DependInfo.cmake"
  "/root/repo/build/src/quantum/CMakeFiles/rebooting_quantum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
