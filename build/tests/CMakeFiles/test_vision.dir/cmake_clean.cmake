file(REMOVE_RECURSE
  "CMakeFiles/test_vision.dir/vision/test_fast.cpp.o"
  "CMakeFiles/test_vision.dir/vision/test_fast.cpp.o.d"
  "CMakeFiles/test_vision.dir/vision/test_image.cpp.o"
  "CMakeFiles/test_vision.dir/vision/test_image.cpp.o.d"
  "CMakeFiles/test_vision.dir/vision/test_oscillator_fast.cpp.o"
  "CMakeFiles/test_vision.dir/vision/test_oscillator_fast.cpp.o.d"
  "CMakeFiles/test_vision.dir/vision/test_power.cpp.o"
  "CMakeFiles/test_vision.dir/vision/test_power.cpp.o.d"
  "test_vision"
  "test_vision.pdb"
  "test_vision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
