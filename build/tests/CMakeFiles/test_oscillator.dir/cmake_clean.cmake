file(REMOVE_RECURSE
  "CMakeFiles/test_oscillator.dir/oscillator/test_analysis.cpp.o"
  "CMakeFiles/test_oscillator.dir/oscillator/test_analysis.cpp.o.d"
  "CMakeFiles/test_oscillator.dir/oscillator/test_coloring.cpp.o"
  "CMakeFiles/test_oscillator.dir/oscillator/test_coloring.cpp.o.d"
  "CMakeFiles/test_oscillator.dir/oscillator/test_comparator.cpp.o"
  "CMakeFiles/test_oscillator.dir/oscillator/test_comparator.cpp.o.d"
  "CMakeFiles/test_oscillator.dir/oscillator/test_matcher.cpp.o"
  "CMakeFiles/test_oscillator.dir/oscillator/test_matcher.cpp.o.d"
  "CMakeFiles/test_oscillator.dir/oscillator/test_network.cpp.o"
  "CMakeFiles/test_oscillator.dir/oscillator/test_network.cpp.o.d"
  "CMakeFiles/test_oscillator.dir/oscillator/test_vo2.cpp.o"
  "CMakeFiles/test_oscillator.dir/oscillator/test_vo2.cpp.o.d"
  "test_oscillator"
  "test_oscillator.pdb"
  "test_oscillator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
