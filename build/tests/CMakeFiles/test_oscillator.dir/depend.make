# Empty dependencies file for test_oscillator.
# This may be replaced when dependencies are built.
