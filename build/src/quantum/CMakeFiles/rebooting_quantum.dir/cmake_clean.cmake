file(REMOVE_RECURSE
  "CMakeFiles/rebooting_quantum.dir/algorithms.cpp.o"
  "CMakeFiles/rebooting_quantum.dir/algorithms.cpp.o.d"
  "CMakeFiles/rebooting_quantum.dir/circuit.cpp.o"
  "CMakeFiles/rebooting_quantum.dir/circuit.cpp.o.d"
  "CMakeFiles/rebooting_quantum.dir/compiler.cpp.o"
  "CMakeFiles/rebooting_quantum.dir/compiler.cpp.o.d"
  "CMakeFiles/rebooting_quantum.dir/qaoa.cpp.o"
  "CMakeFiles/rebooting_quantum.dir/qaoa.cpp.o.d"
  "CMakeFiles/rebooting_quantum.dir/qisa.cpp.o"
  "CMakeFiles/rebooting_quantum.dir/qisa.cpp.o.d"
  "CMakeFiles/rebooting_quantum.dir/runtime.cpp.o"
  "CMakeFiles/rebooting_quantum.dir/runtime.cpp.o.d"
  "CMakeFiles/rebooting_quantum.dir/state.cpp.o"
  "CMakeFiles/rebooting_quantum.dir/state.cpp.o.d"
  "librebooting_quantum.a"
  "librebooting_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebooting_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
