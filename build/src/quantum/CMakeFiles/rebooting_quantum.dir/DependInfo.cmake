
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quantum/algorithms.cpp" "src/quantum/CMakeFiles/rebooting_quantum.dir/algorithms.cpp.o" "gcc" "src/quantum/CMakeFiles/rebooting_quantum.dir/algorithms.cpp.o.d"
  "/root/repo/src/quantum/circuit.cpp" "src/quantum/CMakeFiles/rebooting_quantum.dir/circuit.cpp.o" "gcc" "src/quantum/CMakeFiles/rebooting_quantum.dir/circuit.cpp.o.d"
  "/root/repo/src/quantum/compiler.cpp" "src/quantum/CMakeFiles/rebooting_quantum.dir/compiler.cpp.o" "gcc" "src/quantum/CMakeFiles/rebooting_quantum.dir/compiler.cpp.o.d"
  "/root/repo/src/quantum/qaoa.cpp" "src/quantum/CMakeFiles/rebooting_quantum.dir/qaoa.cpp.o" "gcc" "src/quantum/CMakeFiles/rebooting_quantum.dir/qaoa.cpp.o.d"
  "/root/repo/src/quantum/qisa.cpp" "src/quantum/CMakeFiles/rebooting_quantum.dir/qisa.cpp.o" "gcc" "src/quantum/CMakeFiles/rebooting_quantum.dir/qisa.cpp.o.d"
  "/root/repo/src/quantum/runtime.cpp" "src/quantum/CMakeFiles/rebooting_quantum.dir/runtime.cpp.o" "gcc" "src/quantum/CMakeFiles/rebooting_quantum.dir/runtime.cpp.o.d"
  "/root/repo/src/quantum/state.cpp" "src/quantum/CMakeFiles/rebooting_quantum.dir/state.cpp.o" "gcc" "src/quantum/CMakeFiles/rebooting_quantum.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebooting_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
