file(REMOVE_RECURSE
  "librebooting_quantum.a"
)
