# Empty dependencies file for rebooting_quantum.
# This may be replaced when dependencies are built.
