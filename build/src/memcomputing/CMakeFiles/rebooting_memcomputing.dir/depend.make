# Empty dependencies file for rebooting_memcomputing.
# This may be replaced when dependencies are built.
