file(REMOVE_RECURSE
  "CMakeFiles/rebooting_memcomputing.dir/cnf.cpp.o"
  "CMakeFiles/rebooting_memcomputing.dir/cnf.cpp.o.d"
  "CMakeFiles/rebooting_memcomputing.dir/dmm.cpp.o"
  "CMakeFiles/rebooting_memcomputing.dir/dmm.cpp.o.d"
  "CMakeFiles/rebooting_memcomputing.dir/ising.cpp.o"
  "CMakeFiles/rebooting_memcomputing.dir/ising.cpp.o.d"
  "CMakeFiles/rebooting_memcomputing.dir/rbm.cpp.o"
  "CMakeFiles/rebooting_memcomputing.dir/rbm.cpp.o.d"
  "CMakeFiles/rebooting_memcomputing.dir/sat.cpp.o"
  "CMakeFiles/rebooting_memcomputing.dir/sat.cpp.o.d"
  "CMakeFiles/rebooting_memcomputing.dir/solg.cpp.o"
  "CMakeFiles/rebooting_memcomputing.dir/solg.cpp.o.d"
  "librebooting_memcomputing.a"
  "librebooting_memcomputing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebooting_memcomputing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
