
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memcomputing/cnf.cpp" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/cnf.cpp.o" "gcc" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/cnf.cpp.o.d"
  "/root/repo/src/memcomputing/dmm.cpp" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/dmm.cpp.o" "gcc" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/dmm.cpp.o.d"
  "/root/repo/src/memcomputing/ising.cpp" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/ising.cpp.o" "gcc" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/ising.cpp.o.d"
  "/root/repo/src/memcomputing/rbm.cpp" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/rbm.cpp.o" "gcc" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/rbm.cpp.o.d"
  "/root/repo/src/memcomputing/sat.cpp" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/sat.cpp.o" "gcc" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/sat.cpp.o.d"
  "/root/repo/src/memcomputing/solg.cpp" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/solg.cpp.o" "gcc" "src/memcomputing/CMakeFiles/rebooting_memcomputing.dir/solg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebooting_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
