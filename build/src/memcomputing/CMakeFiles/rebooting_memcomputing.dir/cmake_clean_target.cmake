file(REMOVE_RECURSE
  "librebooting_memcomputing.a"
)
