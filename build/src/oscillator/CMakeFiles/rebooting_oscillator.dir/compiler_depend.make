# Empty compiler generated dependencies file for rebooting_oscillator.
# This may be replaced when dependencies are built.
