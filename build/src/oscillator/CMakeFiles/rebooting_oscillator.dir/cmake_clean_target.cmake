file(REMOVE_RECURSE
  "librebooting_oscillator.a"
)
