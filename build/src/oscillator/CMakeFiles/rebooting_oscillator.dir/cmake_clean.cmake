file(REMOVE_RECURSE
  "CMakeFiles/rebooting_oscillator.dir/analysis.cpp.o"
  "CMakeFiles/rebooting_oscillator.dir/analysis.cpp.o.d"
  "CMakeFiles/rebooting_oscillator.dir/coloring.cpp.o"
  "CMakeFiles/rebooting_oscillator.dir/coloring.cpp.o.d"
  "CMakeFiles/rebooting_oscillator.dir/comparator.cpp.o"
  "CMakeFiles/rebooting_oscillator.dir/comparator.cpp.o.d"
  "CMakeFiles/rebooting_oscillator.dir/matcher.cpp.o"
  "CMakeFiles/rebooting_oscillator.dir/matcher.cpp.o.d"
  "CMakeFiles/rebooting_oscillator.dir/network.cpp.o"
  "CMakeFiles/rebooting_oscillator.dir/network.cpp.o.d"
  "librebooting_oscillator.a"
  "librebooting_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebooting_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
