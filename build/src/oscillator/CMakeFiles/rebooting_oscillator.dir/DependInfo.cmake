
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oscillator/analysis.cpp" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/analysis.cpp.o" "gcc" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/analysis.cpp.o.d"
  "/root/repo/src/oscillator/coloring.cpp" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/coloring.cpp.o" "gcc" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/coloring.cpp.o.d"
  "/root/repo/src/oscillator/comparator.cpp" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/comparator.cpp.o" "gcc" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/comparator.cpp.o.d"
  "/root/repo/src/oscillator/matcher.cpp" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/matcher.cpp.o" "gcc" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/matcher.cpp.o.d"
  "/root/repo/src/oscillator/network.cpp" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/network.cpp.o" "gcc" "src/oscillator/CMakeFiles/rebooting_oscillator.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebooting_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
