
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/fast.cpp" "src/vision/CMakeFiles/rebooting_vision.dir/fast.cpp.o" "gcc" "src/vision/CMakeFiles/rebooting_vision.dir/fast.cpp.o.d"
  "/root/repo/src/vision/image.cpp" "src/vision/CMakeFiles/rebooting_vision.dir/image.cpp.o" "gcc" "src/vision/CMakeFiles/rebooting_vision.dir/image.cpp.o.d"
  "/root/repo/src/vision/oscillator_fast.cpp" "src/vision/CMakeFiles/rebooting_vision.dir/oscillator_fast.cpp.o" "gcc" "src/vision/CMakeFiles/rebooting_vision.dir/oscillator_fast.cpp.o.d"
  "/root/repo/src/vision/power.cpp" "src/vision/CMakeFiles/rebooting_vision.dir/power.cpp.o" "gcc" "src/vision/CMakeFiles/rebooting_vision.dir/power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebooting_core.dir/DependInfo.cmake"
  "/root/repo/build/src/oscillator/CMakeFiles/rebooting_oscillator.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
