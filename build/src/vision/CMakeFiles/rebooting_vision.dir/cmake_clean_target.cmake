file(REMOVE_RECURSE
  "librebooting_vision.a"
)
