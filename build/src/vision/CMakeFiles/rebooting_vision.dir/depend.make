# Empty dependencies file for rebooting_vision.
# This may be replaced when dependencies are built.
