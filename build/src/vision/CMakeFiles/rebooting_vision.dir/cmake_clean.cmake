file(REMOVE_RECURSE
  "CMakeFiles/rebooting_vision.dir/fast.cpp.o"
  "CMakeFiles/rebooting_vision.dir/fast.cpp.o.d"
  "CMakeFiles/rebooting_vision.dir/image.cpp.o"
  "CMakeFiles/rebooting_vision.dir/image.cpp.o.d"
  "CMakeFiles/rebooting_vision.dir/oscillator_fast.cpp.o"
  "CMakeFiles/rebooting_vision.dir/oscillator_fast.cpp.o.d"
  "CMakeFiles/rebooting_vision.dir/power.cpp.o"
  "CMakeFiles/rebooting_vision.dir/power.cpp.o.d"
  "librebooting_vision.a"
  "librebooting_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebooting_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
