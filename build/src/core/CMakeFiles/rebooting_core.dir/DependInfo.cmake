
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accelerator.cpp" "src/core/CMakeFiles/rebooting_core.dir/accelerator.cpp.o" "gcc" "src/core/CMakeFiles/rebooting_core.dir/accelerator.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/rebooting_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/rebooting_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/linalg.cpp" "src/core/CMakeFiles/rebooting_core.dir/linalg.cpp.o" "gcc" "src/core/CMakeFiles/rebooting_core.dir/linalg.cpp.o.d"
  "/root/repo/src/core/ode.cpp" "src/core/CMakeFiles/rebooting_core.dir/ode.cpp.o" "gcc" "src/core/CMakeFiles/rebooting_core.dir/ode.cpp.o.d"
  "/root/repo/src/core/random.cpp" "src/core/CMakeFiles/rebooting_core.dir/random.cpp.o" "gcc" "src/core/CMakeFiles/rebooting_core.dir/random.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/rebooting_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/rebooting_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/core/CMakeFiles/rebooting_core.dir/table.cpp.o" "gcc" "src/core/CMakeFiles/rebooting_core.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
