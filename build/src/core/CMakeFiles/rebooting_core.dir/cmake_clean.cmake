file(REMOVE_RECURSE
  "CMakeFiles/rebooting_core.dir/accelerator.cpp.o"
  "CMakeFiles/rebooting_core.dir/accelerator.cpp.o.d"
  "CMakeFiles/rebooting_core.dir/energy.cpp.o"
  "CMakeFiles/rebooting_core.dir/energy.cpp.o.d"
  "CMakeFiles/rebooting_core.dir/linalg.cpp.o"
  "CMakeFiles/rebooting_core.dir/linalg.cpp.o.d"
  "CMakeFiles/rebooting_core.dir/ode.cpp.o"
  "CMakeFiles/rebooting_core.dir/ode.cpp.o.d"
  "CMakeFiles/rebooting_core.dir/random.cpp.o"
  "CMakeFiles/rebooting_core.dir/random.cpp.o.d"
  "CMakeFiles/rebooting_core.dir/stats.cpp.o"
  "CMakeFiles/rebooting_core.dir/stats.cpp.o.d"
  "CMakeFiles/rebooting_core.dir/table.cpp.o"
  "CMakeFiles/rebooting_core.dir/table.cpp.o.d"
  "librebooting_core.a"
  "librebooting_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebooting_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
