file(REMOVE_RECURSE
  "librebooting_core.a"
)
