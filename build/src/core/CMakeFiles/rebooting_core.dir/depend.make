# Empty dependencies file for rebooting_core.
# This may be replaced when dependencies are built.
