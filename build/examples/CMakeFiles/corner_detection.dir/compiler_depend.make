# Empty compiler generated dependencies file for corner_detection.
# This may be replaced when dependencies are built.
