file(REMOVE_RECURSE
  "CMakeFiles/corner_detection.dir/corner_detection.cpp.o"
  "CMakeFiles/corner_detection.dir/corner_detection.cpp.o.d"
  "corner_detection"
  "corner_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corner_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
