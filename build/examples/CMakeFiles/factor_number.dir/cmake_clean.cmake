file(REMOVE_RECURSE
  "CMakeFiles/factor_number.dir/factor_number.cpp.o"
  "CMakeFiles/factor_number.dir/factor_number.cpp.o.d"
  "factor_number"
  "factor_number.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_number.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
