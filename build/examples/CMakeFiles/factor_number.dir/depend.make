# Empty dependencies file for factor_number.
# This may be replaced when dependencies are built.
