file(REMOVE_RECURSE
  "CMakeFiles/train_rbm.dir/train_rbm.cpp.o"
  "CMakeFiles/train_rbm.dir/train_rbm.cpp.o.d"
  "train_rbm"
  "train_rbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_rbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
