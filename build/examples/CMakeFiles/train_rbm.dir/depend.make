# Empty dependencies file for train_rbm.
# This may be replaced when dependencies are built.
