file(REMOVE_RECURSE
  "CMakeFiles/solve_sat.dir/solve_sat.cpp.o"
  "CMakeFiles/solve_sat.dir/solve_sat.cpp.o.d"
  "solve_sat"
  "solve_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
