# Empty compiler generated dependencies file for solve_sat.
# This may be replaced when dependencies are built.
