# Empty compiler generated dependencies file for secIV_dmm_dynamics.
# This may be replaced when dependencies are built.
