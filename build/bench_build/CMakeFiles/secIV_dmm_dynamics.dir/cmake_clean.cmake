file(REMOVE_RECURSE
  "../bench/secIV_dmm_dynamics"
  "../bench/secIV_dmm_dynamics.pdb"
  "CMakeFiles/secIV_dmm_dynamics.dir/secIV_dmm_dynamics.cpp.o"
  "CMakeFiles/secIV_dmm_dynamics.dir/secIV_dmm_dynamics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIV_dmm_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
