# Empty compiler generated dependencies file for fig3_frequency_locking.
# This may be replaced when dependencies are built.
