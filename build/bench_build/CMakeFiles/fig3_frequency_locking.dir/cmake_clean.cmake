file(REMOVE_RECURSE
  "../bench/fig3_frequency_locking"
  "../bench/fig3_frequency_locking.pdb"
  "CMakeFiles/fig3_frequency_locking.dir/fig3_frequency_locking.cpp.o"
  "CMakeFiles/fig3_frequency_locking.dir/fig3_frequency_locking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_frequency_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
