# Empty dependencies file for fig2_quantum_stack.
# This may be replaced when dependencies are built.
