file(REMOVE_RECURSE
  "../bench/fig2_quantum_stack"
  "../bench/fig2_quantum_stack.pdb"
  "CMakeFiles/fig2_quantum_stack.dir/fig2_quantum_stack.cpp.o"
  "CMakeFiles/fig2_quantum_stack.dir/fig2_quantum_stack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_quantum_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
