# Empty compiler generated dependencies file for fig6_fast_pipeline.
# This may be replaced when dependencies are built.
