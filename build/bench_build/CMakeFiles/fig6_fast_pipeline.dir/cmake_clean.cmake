file(REMOVE_RECURSE
  "../bench/fig6_fast_pipeline"
  "../bench/fig6_fast_pipeline.pdb"
  "CMakeFiles/fig6_fast_pipeline.dir/fig6_fast_pipeline.cpp.o"
  "CMakeFiles/fig6_fast_pipeline.dir/fig6_fast_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fast_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
