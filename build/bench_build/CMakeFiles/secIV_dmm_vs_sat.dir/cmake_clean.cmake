file(REMOVE_RECURSE
  "../bench/secIV_dmm_vs_sat"
  "../bench/secIV_dmm_vs_sat.pdb"
  "CMakeFiles/secIV_dmm_vs_sat.dir/secIV_dmm_vs_sat.cpp.o"
  "CMakeFiles/secIV_dmm_vs_sat.dir/secIV_dmm_vs_sat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIV_dmm_vs_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
