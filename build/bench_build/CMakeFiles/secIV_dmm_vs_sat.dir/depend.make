# Empty dependencies file for secIV_dmm_vs_sat.
# This may be replaced when dependencies are built.
