# Empty dependencies file for secIV_dmm_noise.
# This may be replaced when dependencies are built.
