file(REMOVE_RECURSE
  "../bench/secIV_dmm_noise"
  "../bench/secIV_dmm_noise.pdb"
  "CMakeFiles/secIV_dmm_noise.dir/secIV_dmm_noise.cpp.o"
  "CMakeFiles/secIV_dmm_noise.dir/secIV_dmm_noise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIV_dmm_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
