file(REMOVE_RECURSE
  "../bench/secIIIB_corner_power"
  "../bench/secIIIB_corner_power.pdb"
  "CMakeFiles/secIIIB_corner_power.dir/secIIIB_corner_power.cpp.o"
  "CMakeFiles/secIIIB_corner_power.dir/secIIIB_corner_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIIIB_corner_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
