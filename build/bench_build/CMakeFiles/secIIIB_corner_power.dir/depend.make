# Empty dependencies file for secIIIB_corner_power.
# This may be replaced when dependencies are built.
