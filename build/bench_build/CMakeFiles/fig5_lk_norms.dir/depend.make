# Empty dependencies file for fig5_lk_norms.
# This may be replaced when dependencies are built.
