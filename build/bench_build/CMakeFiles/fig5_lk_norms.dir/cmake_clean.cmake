file(REMOVE_RECURSE
  "../bench/fig5_lk_norms"
  "../bench/fig5_lk_norms.pdb"
  "CMakeFiles/fig5_lk_norms.dir/fig5_lk_norms.cpp.o"
  "CMakeFiles/fig5_lk_norms.dir/fig5_lk_norms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lk_norms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
