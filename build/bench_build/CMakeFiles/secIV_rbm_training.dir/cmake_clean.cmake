file(REMOVE_RECURSE
  "../bench/secIV_rbm_training"
  "../bench/secIV_rbm_training.pdb"
  "CMakeFiles/secIV_rbm_training.dir/secIV_rbm_training.cpp.o"
  "CMakeFiles/secIV_rbm_training.dir/secIV_rbm_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIV_rbm_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
