# Empty dependencies file for secIV_rbm_training.
# This may be replaced when dependencies are built.
