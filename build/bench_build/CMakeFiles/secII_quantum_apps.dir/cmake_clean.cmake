file(REMOVE_RECURSE
  "../bench/secII_quantum_apps"
  "../bench/secII_quantum_apps.pdb"
  "CMakeFiles/secII_quantum_apps.dir/secII_quantum_apps.cpp.o"
  "CMakeFiles/secII_quantum_apps.dir/secII_quantum_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secII_quantum_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
