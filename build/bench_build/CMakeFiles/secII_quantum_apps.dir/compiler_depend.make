# Empty compiler generated dependencies file for secII_quantum_apps.
# This may be replaced when dependencies are built.
