file(REMOVE_RECURSE
  "../bench/cross_paradigm_ising"
  "../bench/cross_paradigm_ising.pdb"
  "CMakeFiles/cross_paradigm_ising.dir/cross_paradigm_ising.cpp.o"
  "CMakeFiles/cross_paradigm_ising.dir/cross_paradigm_ising.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_paradigm_ising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
