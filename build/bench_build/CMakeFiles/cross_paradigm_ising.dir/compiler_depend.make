# Empty compiler generated dependencies file for cross_paradigm_ising.
# This may be replaced when dependencies are built.
