file(REMOVE_RECURSE
  "../bench/secIV_spin_glass"
  "../bench/secIV_spin_glass.pdb"
  "CMakeFiles/secIV_spin_glass.dir/secIV_spin_glass.cpp.o"
  "CMakeFiles/secIV_spin_glass.dir/secIV_spin_glass.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secIV_spin_glass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
