# Empty compiler generated dependencies file for secIV_spin_glass.
# This may be replaced when dependencies are built.
