# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for secIV_spin_glass.
