#include "memcomputing/cnf.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace rebooting::memcomputing {

void Cnf::add_clause(Clause clause) {
  if (clause.literals.empty())
    throw std::invalid_argument("add_clause: empty clause");
  for (const Literal lit : clause.literals) {
    if (lit == 0) throw std::invalid_argument("add_clause: zero literal");
    if (static_cast<std::size_t>(std::abs(lit)) > num_variables_)
      throw std::invalid_argument("add_clause: variable out of range");
  }
  clauses_.push_back(std::move(clause));
}

void Cnf::add_clause(std::initializer_list<Literal> lits, core::Real weight) {
  Clause c;
  c.literals.assign(lits);
  c.weight = weight;
  add_clause(std::move(c));
}

core::Real Cnf::clause_ratio() const {
  if (num_variables_ == 0) return 0.0;
  return static_cast<core::Real>(clauses_.size()) /
         static_cast<core::Real>(num_variables_);
}

bool Cnf::clause_satisfied(const Clause& clause, const Assignment& a) const {
  for (const Literal lit : clause.literals) {
    const auto v = static_cast<std::size_t>(std::abs(lit));
    if (a[v] == (lit > 0)) return true;
  }
  return false;
}

bool Cnf::satisfied(const Assignment& a) const {
  for (const Clause& c : clauses_)
    if (!clause_satisfied(c, a)) return false;
  return true;
}

std::size_t Cnf::count_unsatisfied(const Assignment& a) const {
  std::size_t count = 0;
  for (const Clause& c : clauses_)
    if (!clause_satisfied(c, a)) ++count;
  return count;
}

core::Real Cnf::unsatisfied_weight(const Assignment& a) const {
  core::Real total = 0.0;
  for (const Clause& c : clauses_)
    if (!clause_satisfied(c, a)) total += c.weight;
  return total;
}

std::string Cnf::to_dimacs() const {
  std::ostringstream os;
  os << "p cnf " << num_variables_ << ' ' << clauses_.size() << '\n';
  for (const Clause& c : clauses_) {
    for (const Literal lit : c.literals) os << lit << ' ';
    os << "0\n";
  }
  return os.str();
}

Cnf Cnf::from_dimacs(std::istream& in) {
  std::string tok;
  std::size_t n = 0;
  std::size_t m = 0;
  bool have_header = false;
  Cnf cnf;
  Clause current;
  while (in >> tok) {
    if (tok == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (tok == "p") {
      std::string fmt;
      if (!(in >> fmt >> n >> m) || fmt != "cnf")
        throw std::runtime_error("from_dimacs: malformed problem line");
      cnf = Cnf(n);
      have_header = true;
      continue;
    }
    if (!have_header)
      throw std::runtime_error("from_dimacs: literal before problem line");
    const long lit = std::stol(tok);
    if (lit == 0) {
      cnf.add_clause(std::move(current));
      current = Clause{};
    } else {
      current.literals.push_back(static_cast<Literal>(lit));
    }
  }
  if (!current.literals.empty())
    throw std::runtime_error("from_dimacs: clause not terminated by 0");
  if (have_header && cnf.num_clauses() != m)
    throw std::runtime_error("from_dimacs: clause count mismatch with header");
  if (!have_header) throw std::runtime_error("from_dimacs: missing header");
  return cnf;
}

Cnf Cnf::from_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return from_dimacs(in);
}

namespace {

Clause random_clause(core::Rng& rng, std::size_t n, std::size_t k) {
  Clause c;
  const auto vars = core::sample_without_replacement(rng, n, k);
  c.literals.reserve(k);
  for (const std::size_t v : vars) {
    const auto var = static_cast<Literal>(v + 1);
    c.literals.push_back(rng.bernoulli(0.5) ? var : -var);
  }
  return c;
}

}  // namespace

Cnf random_ksat(core::Rng& rng, std::size_t n, std::size_t m, std::size_t k) {
  if (k == 0 || k > n) throw std::invalid_argument("random_ksat: need 0 < k <= n");
  Cnf cnf(n);
  for (std::size_t i = 0; i < m; ++i) cnf.add_clause(random_clause(rng, n, k));
  return cnf;
}

PlantedInstance planted_ksat(core::Rng& rng, std::size_t n, std::size_t m,
                             std::size_t k) {
  if (k == 0 || k > n)
    throw std::invalid_argument("planted_ksat: need 0 < k <= n");
  PlantedInstance inst;
  inst.plant = random_assignment(rng, n);
  inst.cnf = Cnf(n);
  for (std::size_t i = 0; i < m; ++i) {
    Clause c;
    do {
      c = random_clause(rng, n, k);
    } while (!inst.cnf.clause_satisfied(c, inst.plant));
    inst.cnf.add_clause(std::move(c));
  }
  return inst;
}

Assignment random_assignment(core::Rng& rng, std::size_t n) {
  Assignment a(n + 1, false);
  for (std::size_t v = 1; v <= n; ++v) a[v] = rng.bernoulli(0.5);
  return a;
}

}  // namespace rebooting::memcomputing
