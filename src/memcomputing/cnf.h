// CNF formulas, DIMACS I/O, and the SAT workload generators used by the
// Sec. IV experiments: uniform random k-SAT (the hard-instance ensemble at
// clause ratio ~4.27) and planted-solution instances (so success can be
// verified against a known satisfying assignment).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/random.h"

namespace rebooting::memcomputing {

/// A literal is a non-zero integer: +v means variable v, -v its negation
/// (DIMACS convention, variables numbered from 1).
using Literal = std::int32_t;

struct Clause {
  std::vector<Literal> literals;
  /// Weight used by the MaxSAT/QUBO paths; 1 for plain SAT.
  core::Real weight = 1.0;
};

/// Boolean assignment: index 0 unused, values for variables 1..n.
using Assignment = std::vector<bool>;

class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(std::size_t num_variables) : num_variables_(num_variables) {}

  std::size_t num_variables() const { return num_variables_; }
  std::size_t num_clauses() const { return clauses_.size(); }
  const std::vector<Clause>& clauses() const { return clauses_; }

  /// Appends a clause; throws std::invalid_argument on a zero literal or a
  /// variable index beyond num_variables().
  void add_clause(Clause clause);
  void add_clause(std::initializer_list<Literal> lits, core::Real weight = 1.0);

  /// Clause-to-variable ratio m/n.
  core::Real clause_ratio() const;

  bool clause_satisfied(const Clause& clause, const Assignment& a) const;
  bool satisfied(const Assignment& a) const;
  std::size_t count_unsatisfied(const Assignment& a) const;
  /// Sum of weights of unsatisfied clauses (the MaxSAT objective).
  core::Real unsatisfied_weight(const Assignment& a) const;

  /// DIMACS "p cnf" serialization (weights are not encoded; standard CNF).
  std::string to_dimacs() const;
  static Cnf from_dimacs(std::istream& in);
  static Cnf from_dimacs_string(const std::string& text);

 private:
  std::size_t num_variables_ = 0;
  std::vector<Clause> clauses_;
};

/// Uniform random k-SAT: m clauses of k distinct variables each, signs fair
/// coins. Duplicate clauses are allowed (standard ensemble). Requires k <= n.
Cnf random_ksat(core::Rng& rng, std::size_t n, std::size_t m, std::size_t k);

/// Random k-SAT with a planted satisfying assignment: clauses are resampled
/// until satisfied by the plant, giving verifiable-by-construction instances.
/// Returns the formula and the plant.
struct PlantedInstance {
  Cnf cnf;
  Assignment plant;
};
PlantedInstance planted_ksat(core::Rng& rng, std::size_t n, std::size_t m,
                             std::size_t k);

/// A fresh random assignment of n variables.
Assignment random_assignment(core::Rng& rng, std::size_t n);

}  // namespace rebooting::memcomputing
