#include "memcomputing/rbm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "memcomputing/dmm.h"

namespace rebooting::memcomputing {

namespace {

Real sigmoid(Real x) { return 1.0 / (1.0 + std::exp(-x)); }

Real softplus(Real x) {
  // Stable: softplus(x) = max(x, 0) + log1p(exp(-|x|)).
  return std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x)));
}

}  // namespace

BinaryRbm::BinaryRbm(std::size_t visible, std::size_t hidden, core::Rng& rng,
                     Real init_stddev)
    : nv_(visible), nh_(hidden), w_(visible * hidden), b_(visible, 0.0),
      c_(hidden, 0.0) {
  if (visible == 0 || hidden == 0)
    throw std::invalid_argument("BinaryRbm: zero layer size");
  for (Real& w : w_) w = rng.normal(0.0, init_stddev);
}

std::vector<Real> BinaryRbm::hidden_probability(const Pattern& v) const {
  std::vector<Real> p(nh_);
  for (std::size_t j = 0; j < nh_; ++j) {
    Real act = c_[j];
    for (std::size_t i = 0; i < nv_; ++i)
      if (v[i]) act += w_[j * nv_ + i];
    p[j] = sigmoid(act);
  }
  return p;
}

std::vector<Real> BinaryRbm::visible_probability(const Pattern& h) const {
  std::vector<Real> p(nv_);
  for (std::size_t i = 0; i < nv_; ++i) {
    Real act = b_[i];
    for (std::size_t j = 0; j < nh_; ++j)
      if (h[j]) act += w_[j * nv_ + i];
    p[i] = sigmoid(act);
  }
  return p;
}

Pattern BinaryRbm::sample_hidden(const Pattern& v, core::Rng& rng) const {
  const auto p = hidden_probability(v);
  Pattern h(nh_);
  for (std::size_t j = 0; j < nh_; ++j) h[j] = rng.bernoulli(p[j]) ? 1 : 0;
  return h;
}

Pattern BinaryRbm::sample_visible(const Pattern& h, core::Rng& rng) const {
  const auto p = visible_probability(h);
  Pattern v(nv_);
  for (std::size_t i = 0; i < nv_; ++i) v[i] = rng.bernoulli(p[i]) ? 1 : 0;
  return v;
}

Real BinaryRbm::joint_energy(const Pattern& v, const Pattern& h) const {
  Real e = 0.0;
  for (std::size_t i = 0; i < nv_; ++i)
    if (v[i]) e -= b_[i];
  for (std::size_t j = 0; j < nh_; ++j) {
    if (!h[j]) continue;
    e -= c_[j];
    for (std::size_t i = 0; i < nv_; ++i)
      if (v[i]) e -= w_[j * nv_ + i];
  }
  return e;
}

Real BinaryRbm::free_energy(const Pattern& v) const {
  Real f = 0.0;
  for (std::size_t i = 0; i < nv_; ++i)
    if (v[i]) f -= b_[i];
  for (std::size_t j = 0; j < nh_; ++j) {
    Real act = c_[j];
    for (std::size_t i = 0; i < nv_; ++i)
      if (v[i]) act += w_[j * nv_ + i];
    f -= softplus(act);
  }
  return f;
}

void BinaryRbm::cd_step(const Dataset& batch, std::size_t k,
                        Real learning_rate, core::Rng& rng) {
  if (batch.empty()) return;
  std::vector<Real> dw(w_.size(), 0.0), db(nv_, 0.0), dc(nh_, 0.0);
  for (const Pattern& v0 : batch) {
    const auto h0p = hidden_probability(v0);
    // Gibbs chain of length k from the data.
    Pattern v = v0;
    Pattern h = sample_hidden(v, rng);
    for (std::size_t step = 0; step < k; ++step) {
      v = sample_visible(h, rng);
      h = sample_hidden(v, rng);
    }
    const auto hkp = hidden_probability(v);
    for (std::size_t j = 0; j < nh_; ++j)
      for (std::size_t i = 0; i < nv_; ++i)
        dw[j * nv_ + i] += h0p[j] * static_cast<Real>(v0[i]) -
                           hkp[j] * static_cast<Real>(v[i]);
    for (std::size_t i = 0; i < nv_; ++i)
      db[i] += static_cast<Real>(v0[i]) - static_cast<Real>(v[i]);
    for (std::size_t j = 0; j < nh_; ++j) dc[j] += h0p[j] - hkp[j];
  }
  const Real scale = learning_rate / static_cast<Real>(batch.size());
  for (std::size_t x = 0; x < w_.size(); ++x) w_[x] += scale * dw[x];
  for (std::size_t i = 0; i < nv_; ++i) b_[i] += scale * db[i];
  for (std::size_t j = 0; j < nh_; ++j) c_[j] += scale * dc[j];
}

void BinaryRbm::negative_sample_step(const Dataset& batch, const Pattern& neg_v,
                                     const Pattern& neg_h,
                                     Real learning_rate) {
  if (batch.empty()) return;
  std::vector<Real> dw(w_.size(), 0.0), db(nv_, 0.0), dc(nh_, 0.0);
  for (const Pattern& v0 : batch) {
    const auto h0p = hidden_probability(v0);
    for (std::size_t j = 0; j < nh_; ++j)
      for (std::size_t i = 0; i < nv_; ++i)
        dw[j * nv_ + i] += h0p[j] * static_cast<Real>(v0[i]);
    for (std::size_t i = 0; i < nv_; ++i) db[i] += static_cast<Real>(v0[i]);
    for (std::size_t j = 0; j < nh_; ++j) dc[j] += h0p[j];
  }
  const auto n = static_cast<Real>(batch.size());
  // The single negative sample stands for the model expectation.
  for (std::size_t j = 0; j < nh_; ++j)
    for (std::size_t i = 0; i < nv_; ++i)
      dw[j * nv_ + i] -= n * static_cast<Real>(neg_h[j]) *
                         static_cast<Real>(neg_v[i]);
  for (std::size_t i = 0; i < nv_; ++i) db[i] -= n * static_cast<Real>(neg_v[i]);
  for (std::size_t j = 0; j < nh_; ++j) dc[j] -= n * static_cast<Real>(neg_h[j]);

  const Real scale = learning_rate / n;
  for (std::size_t x = 0; x < w_.size(); ++x) w_[x] += scale * dw[x];
  for (std::size_t i = 0; i < nv_; ++i) b_[i] += scale * db[i];
  for (std::size_t j = 0; j < nh_; ++j) c_[j] += scale * dc[j];
}

std::vector<std::pair<Pattern, Pattern>> BinaryRbm::gibbs_samples(
    core::Rng& rng, std::size_t n_chains, std::size_t sweeps) const {
  std::vector<std::pair<Pattern, Pattern>> out;
  out.reserve(n_chains);
  for (std::size_t chain = 0; chain < n_chains; ++chain) {
    Pattern v(nv_);
    for (auto& bit : v) bit = rng.bernoulli(0.5) ? 1 : 0;
    Pattern h = sample_hidden(v, rng);
    for (std::size_t s = 0; s < sweeps; ++s) {
      v = sample_visible(h, rng);
      h = sample_hidden(v, rng);
    }
    out.emplace_back(std::move(v), std::move(h));
  }
  return out;
}

void BinaryRbm::negative_expectation_step(
    const Dataset& batch,
    const std::vector<std::pair<Pattern, Pattern>>& samples,
    Real learning_rate) {
  if (batch.empty() || samples.empty()) return;
  std::vector<Real> dw(w_.size(), 0.0), db(nv_, 0.0), dc(nh_, 0.0);
  for (const Pattern& v0 : batch) {
    const auto h0p = hidden_probability(v0);
    for (std::size_t j = 0; j < nh_; ++j)
      for (std::size_t i = 0; i < nv_; ++i)
        dw[j * nv_ + i] += h0p[j] * static_cast<Real>(v0[i]);
    for (std::size_t i = 0; i < nv_; ++i) db[i] += static_cast<Real>(v0[i]);
    for (std::size_t j = 0; j < nh_; ++j) dc[j] += h0p[j];
  }
  const Real pos_scale = 1.0 / static_cast<Real>(batch.size());
  for (auto& x : dw) x *= pos_scale;
  for (auto& x : db) x *= pos_scale;
  for (auto& x : dc) x *= pos_scale;

  const Real neg_scale = 1.0 / static_cast<Real>(samples.size());
  for (const auto& [v, h] : samples) {
    for (std::size_t j = 0; j < nh_; ++j) {
      if (!h[j]) continue;
      dc[j] -= neg_scale;
      for (std::size_t i = 0; i < nv_; ++i)
        if (v[i]) dw[j * nv_ + i] -= neg_scale;
    }
    for (std::size_t i = 0; i < nv_; ++i)
      if (v[i]) db[i] -= neg_scale;
  }

  for (std::size_t x = 0; x < w_.size(); ++x) w_[x] += learning_rate * dw[x];
  for (std::size_t i = 0; i < nv_; ++i) b_[i] += learning_rate * db[i];
  for (std::size_t j = 0; j < nh_; ++j) c_[j] += learning_rate * dc[j];
}

Real BinaryRbm::exact_nll(const Dataset& data) const {
  if (nv_ > 20)
    throw std::invalid_argument("exact_nll: visible layer too large");
  if (data.empty()) return 0.0;
  // log Z over the visible space via the free energy.
  const std::size_t states = 1ull << nv_;
  Real max_neg_f = -1e300;
  std::vector<Real> neg_f(states);
  Pattern v(nv_);
  for (std::size_t s = 0; s < states; ++s) {
    for (std::size_t i = 0; i < nv_; ++i) v[i] = (s >> i) & 1u;
    neg_f[s] = -free_energy(v);
    max_neg_f = std::max(max_neg_f, neg_f[s]);
  }
  Real z = 0.0;
  for (const Real nf : neg_f) z += std::exp(nf - max_neg_f);
  const Real log_z = max_neg_f + std::log(z);

  Real nll = 0.0;
  for (const Pattern& p : data) nll += free_energy(p) + log_z;
  return nll / static_cast<Real>(data.size());
}

Real BinaryRbm::reconstruction_error(const Dataset& data, core::Rng& rng,
                                     std::size_t repeats) const {
  if (data.empty()) return 0.0;
  std::size_t wrong = 0;
  std::size_t total = 0;
  for (std::size_t r = 0; r < std::max<std::size_t>(1, repeats); ++r) {
    for (const Pattern& v : data) {
      const Pattern h = sample_hidden(v, rng);
      const auto vp = visible_probability(h);
      for (std::size_t i = 0; i < nv_; ++i) {
        const bool bit = vp[i] > 0.5;
        if (bit != (v[i] != 0)) ++wrong;
        ++total;
      }
    }
  }
  return static_cast<Real>(wrong) / static_cast<Real>(total);
}

Cnf BinaryRbm::joint_energy_cnf() const {
  // Variables: visible i -> i+1, hidden j -> nv+j+1.
  Cnf cnf(nv_ + nh_);
  const auto vis = [](std::size_t i) { return static_cast<Literal>(i + 1); };
  const auto hid = [this](std::size_t j) {
    return static_cast<Literal>(nv_ + j + 1);
  };
  const Real tiny = 1e-9;
  // Linear terms -b_i v_i: cost |b| on the losing polarity.
  for (std::size_t i = 0; i < nv_; ++i) {
    if (b_[i] > tiny) cnf.add_clause({vis(i)}, b_[i]);
    else if (b_[i] < -tiny) cnf.add_clause({-vis(i)}, -b_[i]);
  }
  for (std::size_t j = 0; j < nh_; ++j) {
    if (c_[j] > tiny) cnf.add_clause({hid(j)}, c_[j]);
    else if (c_[j] < -tiny) cnf.add_clause({-hid(j)}, -c_[j]);
  }
  // Quadratic terms -W h v. W > 0: cost W unless h=v=1, encoded as the pair
  // {(h), (!h | v)}; W < 0: cost |W| when h=v=1, encoded as (!h | !v).
  for (std::size_t j = 0; j < nh_; ++j) {
    for (std::size_t i = 0; i < nv_; ++i) {
      const Real w = w_[j * nv_ + i];
      if (w > tiny) {
        cnf.add_clause({hid(j)}, w);
        cnf.add_clause({-hid(j), vis(i)}, w);
      } else if (w < -tiny) {
        cnf.add_clause({-hid(j), -vis(i)}, -w);
      }
    }
  }
  return cnf;
}

BinaryRbm::Mode BinaryRbm::find_mode_exact() const {
  if (nv_ > 20)
    throw std::invalid_argument("find_mode_exact: visible layer too large");
  Mode best;
  best.energy = 1e300;
  const std::size_t states = 1ull << nv_;
  Pattern v(nv_);
  for (std::size_t s = 0; s < states; ++s) {
    for (std::size_t i = 0; i < nv_; ++i) v[i] = (s >> i) & 1u;
    // Given v, each hidden unit independently minimizes energy.
    Pattern h(nh_);
    Real e = 0.0;
    for (std::size_t i = 0; i < nv_; ++i)
      if (v[i]) e -= b_[i];
    for (std::size_t j = 0; j < nh_; ++j) {
      Real act = c_[j];
      for (std::size_t i = 0; i < nv_; ++i)
        if (v[i]) act += w_[j * nv_ + i];
      if (act > 0.0) {
        h[j] = 1;
        e -= act;
      }
    }
    if (e < best.energy) {
      best.energy = e;
      best.v = v;
      best.h = h;
    }
  }
  return best;
}

BinaryRbm::Mode BinaryRbm::find_mode_annealed(core::Rng& rng,
                                              std::size_t sweeps) const {
  // Annealed block-Gibbs: sample h|v and v|h with inverse temperature ramped
  // from 0.2 to 3, tracking the lowest-energy joint state encountered.
  Pattern v(nv_);
  for (auto& bit : v) bit = rng.bernoulli(0.5) ? 1 : 0;
  Pattern h = sample_hidden(v, rng);
  Mode best{v, h, joint_energy(v, h)};
  for (std::size_t s = 0; s < sweeps; ++s) {
    const Real beta =
        0.2 + (3.0 - 0.2) * static_cast<Real>(s) /
                  static_cast<Real>(std::max<std::size_t>(1, sweeps - 1));
    // Tempered conditional sampling.
    for (std::size_t j = 0; j < nh_; ++j) {
      Real act = c_[j];
      for (std::size_t i = 0; i < nv_; ++i)
        if (v[i]) act += w_[j * nv_ + i];
      h[j] = rng.bernoulli(sigmoid(beta * act)) ? 1 : 0;
    }
    for (std::size_t i = 0; i < nv_; ++i) {
      Real act = b_[i];
      for (std::size_t j = 0; j < nh_; ++j)
        if (h[j]) act += w_[j * nv_ + i];
      v[i] = rng.bernoulli(sigmoid(beta * act)) ? 1 : 0;
    }
    const Real e = joint_energy(v, h);
    if (e < best.energy) best = Mode{v, h, e};
  }
  return best;
}

BinaryRbm::Mode BinaryRbm::find_mode_dmm(core::Rng& rng,
                                         std::size_t max_steps) const {
  const Cnf cnf = joint_energy_cnf();
  Mode mode;
  if (cnf.num_clauses() == 0) {
    mode.v.assign(nv_, 0);
    mode.h.assign(nh_, 0);
    mode.energy = 0.0;
    return mode;
  }
  DmmOptions opts;
  opts.max_steps = max_steps;
  opts.maxsat_mode = true;
  const DmmSolver solver(cnf, opts);
  const DmmResult r = solver.solve(rng);
  mode.v.assign(nv_, 0);
  mode.h.assign(nh_, 0);
  for (std::size_t i = 0; i < nv_; ++i) mode.v[i] = r.assignment[i + 1] ? 1 : 0;
  for (std::size_t j = 0; j < nh_; ++j)
    mode.h[j] = r.assignment[nv_ + j + 1] ? 1 : 0;
  mode.energy = joint_energy(mode.v, mode.h);
  return mode;
}

Dataset bars_and_stripes(std::size_t side) {
  if (side == 0 || side > 5)
    throw std::invalid_argument("bars_and_stripes: side in [1,5]");
  Dataset data;
  const std::size_t nv = side * side;
  const std::size_t combos = 1ull << side;
  // All row patterns (bars) and all column patterns (stripes); the all-on
  // and all-off patterns appear in both sets, deduplicated at the end.
  for (std::size_t mask = 0; mask < combos; ++mask) {
    Pattern rows(nv, 0);
    Pattern cols(nv, 0);
    for (std::size_t y = 0; y < side; ++y)
      for (std::size_t x = 0; x < side; ++x) {
        rows[y * side + x] = (mask >> y) & 1u;
        cols[y * side + x] = (mask >> x) & 1u;
      }
    data.push_back(rows);
    data.push_back(cols);
  }
  std::sort(data.begin(), data.end());
  data.erase(std::unique(data.begin(), data.end()), data.end());
  return data;
}

Dataset noisy_prototypes(core::Rng& rng, const Dataset& prototypes,
                         std::size_t samples_per_prototype, Real flip_prob) {
  Dataset out;
  out.reserve(prototypes.size() * samples_per_prototype);
  for (const Pattern& proto : prototypes) {
    for (std::size_t s = 0; s < samples_per_prototype; ++s) {
      Pattern p = proto;
      for (auto& bit : p)
        if (rng.bernoulli(flip_prob)) bit ^= 1u;
      out.push_back(std::move(p));
    }
  }
  return out;
}

RbmTrainResult train_rbm(BinaryRbm& rbm, const Dataset& data,
                         const RbmTrainOptions& opts, core::Rng& rng) {
  if (data.empty()) throw std::invalid_argument("train_rbm: empty dataset");
  RbmTrainResult result;

  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  const bool small_enough = rbm.visible() <= 16;
  auto record = [&](std::size_t epoch) {
    RbmHistoryPoint pt;
    pt.epoch = epoch;
    pt.nll = small_enough ? rbm.exact_nll(data) : 0.0;
    pt.reconstruction_error = rbm.reconstruction_error(data, rng, 2);
    result.history.push_back(pt);
  };

  record(0);
  for (std::size_t epoch = 1; epoch <= opts.epochs; ++epoch) {
    rng.shuffle(order);
    const Real frac = static_cast<Real>(epoch) /
                      static_cast<Real>(std::max<std::size_t>(1, opts.epochs));
    const Real p_mode = opts.mode_p0 + (opts.mode_p1 - opts.mode_p0) * frac;

    for (std::size_t start = 0; start < data.size();
         start += opts.batch_size) {
      Dataset batch;
      for (std::size_t i = start;
           i < std::min(start + opts.batch_size, data.size()); ++i)
        batch.push_back(data[order[i]]);

      switch (opts.trainer) {
        case RbmTrainer::kCdBaseline:
          rbm.cd_step(batch, opts.cd_k, opts.learning_rate, rng);
          break;
        case RbmTrainer::kAnnealerSampled: {
          const auto samples =
              rbm.gibbs_samples(rng, opts.anneal_chains, opts.anneal_sweeps);
          rbm.negative_expectation_step(batch, samples, opts.learning_rate);
          break;
        }
        case RbmTrainer::kModeAssistedDmm:
          if (rng.bernoulli(p_mode)) {
            const auto mode = rbm.find_mode_dmm(rng, opts.dmm_max_steps);
            rbm.negative_sample_step(batch, mode.v, mode.h,
                                     opts.learning_rate * opts.mode_lr_scale);
          } else {
            rbm.cd_step(batch, opts.cd_k, opts.learning_rate, rng);
          }
          break;
      }
    }
    if (epoch % std::max<std::size_t>(1, opts.eval_stride) == 0 ||
        epoch == opts.epochs)
      record(epoch);
  }
  result.final_nll = result.history.back().nll;
  result.final_reconstruction_error =
      result.history.back().reconstruction_error;
  return result;
}

}  // namespace rebooting::memcomputing
