// Ising spin-glass substrate for the Sec. IV frustrated-loop experiment
// (ref [56]): model, frustrated-loop instance generator with planted ground
// state, simulated-annealing baseline, and the parity-constraint CNF bridge
// that lets the DMM solve Ising ground states as MaxSAT.
#pragma once

#include <cstddef>
#include <vector>

#include "core/random.h"
#include "memcomputing/cnf.h"

namespace rebooting::memcomputing {

using core::Real;

/// Spins are +/-1, stored as int8.
using SpinConfig = std::vector<std::int8_t>;

struct IsingBond {
  std::size_t i = 0;
  std::size_t j = 0;
  Real coupling = 1.0;  ///< J_ij; H = -sum J_ij s_i s_j (J>0 ferromagnetic)
};

class IsingModel {
 public:
  explicit IsingModel(std::size_t num_spins) : num_spins_(num_spins) {}

  std::size_t num_spins() const { return num_spins_; }
  const std::vector<IsingBond>& bonds() const { return bonds_; }

  void add_bond(std::size_t i, std::size_t j, Real coupling);

  Real energy(const SpinConfig& s) const;
  /// Energy change from flipping spin k (O(degree) via adjacency).
  Real flip_delta(const SpinConfig& s, std::size_t k) const;

  /// Bonds incident to each spin (built lazily on first use of flip_delta).
  const std::vector<std::vector<std::size_t>>& adjacency() const;

 private:
  std::size_t num_spins_;
  std::vector<IsingBond> bonds_;
  mutable std::vector<std::vector<std::size_t>> adjacency_;
};

/// A frustrated-loop instance (Hen et al. construction, used by ref [56]):
/// random loops on an LxL grid, each loop ferromagnetic except one
/// antiferromagnetic bond. The all-up configuration violates exactly the AF
/// bond of every loop, achieving each loop's minimum simultaneously, so the
/// planted ground-state energy is known by construction.
struct FrustratedLoopInstance {
  IsingModel model;
  Real ground_energy = 0.0;
  SpinConfig planted;  ///< all-up ground state
  std::size_t grid_side = 0;
};

/// Builds an instance on an LxL periodic grid with `n_loops` random lattice
/// loops of length in [4, max_loop_len]. Bonds traversed by several loops
/// accumulate their couplings (couplings that cancel to zero are removed).
FrustratedLoopInstance make_frustrated_loops(core::Rng& rng, std::size_t side,
                                             std::size_t n_loops,
                                             std::size_t max_loop_len = 12);

/// Simulated-annealing baseline (single-spin Metropolis flips, geometric
/// temperature schedule). Also the "quantum annealer surrogate" used by the
/// E9 RBM study (Adachi–Henderson role).
struct AnnealOptions {
  Real t_start = 3.0;
  Real t_end = 0.05;
  std::size_t sweeps = 2000;   ///< temperature steps; one sweep = N flips each
  std::size_t restarts = 1;
};

struct AnnealResult {
  SpinConfig best;
  Real best_energy = 0.0;
  std::size_t total_flips_attempted = 0;
  std::size_t accepted_flips = 0;
  std::size_t sweeps_to_best = 0;  ///< sweep index when the best was found
};

AnnealResult simulated_annealing(const IsingModel& model, core::Rng& rng,
                                 const AnnealOptions& opts = {});

/// Parity-constraint CNF encoding: each bond becomes two 2-literal clauses
/// of weight |J| such that exactly one is violated iff the bond is violated
/// (s_i s_j != sign(J)). Variable v = spin v-1 up. Minimizing unsatisfied
/// weight == minimizing Ising energy; energy = ground contribution +
/// 2 * unsatisfied_weight relative to sum(-|J|).
Cnf ising_to_cnf(const IsingModel& model);

/// Converts a CNF assignment (from the DMM/MaxSAT path) back into spins.
SpinConfig assignment_to_spins(const Assignment& a, std::size_t num_spins);

/// Ising energy implied by a CNF assignment under ising_to_cnf's encoding.
Real cnf_assignment_energy(const IsingModel& model, const Assignment& a);

}  // namespace rebooting::memcomputing
