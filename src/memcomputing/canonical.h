// CNF canonicalization + the content-addressed DMM solve cache
// (DESIGN.md §14). Two CNF formulas that differ only by renaming variables,
// reordering clauses, or reordering literals within clauses are the same
// SAT instance; the cache keys on a canonical form so repeated structured
// instances — the repeated-benchmark workloads of arXiv:2309.12437 — turn
// into hash lookups.
//
// Unlike circuits (where gate order pins the labeling), CNF canonicalization
// is graph canonicalization in disguise. The canonicalizer runs
// Weisfeiler-Leman color refinement over variables, then an
// individualization-refinement search that picks the lexicographically
// smallest canonical encoding, under a work budget. When the budget runs out
// (pathologically symmetric formulas), remaining ties break by original
// variable index — which can only *miss* hits across renamed copies, never
// alias distinct formulas: the canonical encoding IS the renumbered formula,
// so equal encodings are genuinely isomorphic instances, and the cached
// assignment maps back through an exact permutation either way.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cache.h"
#include "memcomputing/cnf.h"
#include "memcomputing/dmm.h"

namespace rebooting::memcomputing {

/// A formula rewritten into canonical variable labels with sorted literals
/// and clauses, plus the renaming that got it there.
struct CanonicalCnf {
  Cnf cnf;  ///< canonical labels; literals sorted in clauses, clauses sorted
  /// perm[original_variable] = canonical_variable (1-based; index 0 unused).
  std::vector<std::size_t> perm;
  core::HashKey128 hash;  ///< digest of the canonical encoding
};

/// Canonicalizes under variable renaming x clause permutation x
/// literal-order permutation (signs travel with their variables).
CanonicalCnf canonicalize(const Cnf& cnf);

/// Cache key for a DMM solve: canonical formula + every DmmParams/DmmOptions
/// field that shapes the trajectory or the recorded result.
core::HashKey128 dmm_solve_key(const CanonicalCnf& canon,
                               const DmmOptions& options);

/// Content-addressed `DmmSolver::solve`. Miss: runs the original solve
/// bit-exactly and caches the result (best-known assignment included, in
/// canonical space). Hit on a satisfied result: replays it with the
/// assignment mapped back through the permutation. Hit on an unsatisfied
/// result: warm-restarts `solve_from` with voltages snapped to the cached
/// best-known assignment, and writes back only if the fresh result improves
/// (never caches a downgrade). With caching disabled this is exactly
/// `DmmSolver(cnf, options).solve(rng)`.
DmmResult solve_dmm_cached(const Cnf& cnf, const DmmOptions& options,
                           core::Rng& rng);

/// The process-wide DMM result cache ("dmm.solve"), for stats and tests.
core::ShardedCache<DmmResult>& dmm_cache();

}  // namespace rebooting::memcomputing
