// Digital Memcomputing Machine (DMM) dynamics for k-SAT — the concrete form
// of the paper's Eqs. 1-2.
//
// Each Boolean variable n is a continuous voltage v_n in [-1, 1]; each clause
// m is a self-organizing OR gate carrying two memory variables: a fast one
// x_s (the "resistive memory" conductance of Eq. 1) and a slow one x_l (the
// long-term weight that the feedback of the active elements builds up). With
// C_m the clause unsatisfaction degree, the flow is
//
//   dv_n/dt = sum_m w_m [ x_l x_s G_nm(v) + (1 + zeta x_l)(1 - x_s) R_nm(v) ]
//   dx_s/dt = beta (x_s + eps)(C_m - gamma)          (fast memory)
//   dx_l/dt = alpha (C_m - delta)                    (slow memory)
//
// with the gradient-like term G_nm = q_nm/2 * min_{j != n}(1 - q_jm v_j) and
// the rigidity term R_nm = (q_nm - v_n)/2 applied to the clause's critical
// (minimizing) literal only. This is the published form of the SAT DMM
// (Traversa & Di Ventra 2017; Bearden et al.), whose trajectories are
// point-dissipative: bounded, no periodic orbits, equilibria = solutions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dynamics.h"
#include "core/ensemble.h"
#include "core/random.h"
#include "memcomputing/cnf.h"

namespace rebooting::memcomputing {

using core::Real;

struct DmmParams {
  Real alpha = 5.0;     ///< long-term memory growth rate
  Real beta = 20.0;     ///< short-term memory rate
  Real gamma = 0.25;    ///< short-term memory threshold on C_m
  Real delta = 0.05;    ///< long-term memory threshold on C_m
  Real epsilon = 1e-3;  ///< keeps x_s from sticking at 0
  Real zeta = 0.1;      ///< rigidity weighting by long-term memory
  Real xl_max = 1e4;    ///< long-term memory ceiling (per clause)

  /// Forward-Euler adaptive step: dt = clamp(dv_cap / max|dv|, dt_min, dt_max).
  Real dt_min = 1.0 / 128.0;
  Real dt_max = 10.0;
  Real dv_cap = 0.15;  ///< max voltage change allowed per step

  /// Langevin noise amplitude on the voltage dynamics (E6 robustness study):
  /// each step adds noise_stddev * sqrt(dt) * N(0,1) per variable.
  Real noise_stddev = 0.0;

  /// Ablation switches (DESIGN.md Sec. 4): disable the rigidity term or
  /// freeze the long-term memory at 1.
  bool rigidity = true;
  bool long_term_memory = true;
};

struct DmmOptions {
  DmmParams params{};
  std::size_t max_steps = 2'000'000;
  /// Record sum_m C_m every `energy_stride` steps into result.energy_trace
  /// (0 = off). Used by the E7 dynamics study.
  std::size_t energy_stride = 0;
  /// Record the number of sign flips per integration step (avalanche sizes,
  /// E8 spin-glass study); only nonzero counts are kept.
  bool track_avalanches = false;
  /// In MaxSAT mode the run does not stop at full satisfaction of weights>0
  /// clauses but keeps improving best_unsatisfied_weight until max_steps.
  bool maxsat_mode = false;
};

struct DmmResult {
  bool satisfied = false;
  Assignment assignment;           ///< best assignment seen
  std::size_t steps = 0;           ///< accepted integration steps
  /// Step index at which the best assignment was first reached (the honest
  /// time-to-solution in maxsat_mode, where the run does not stop early).
  std::size_t steps_to_best = 0;
  Real sim_time = 0.0;             ///< integrated dimensionless time
  std::size_t best_unsatisfied = 0;
  Real best_unsatisfied_weight = 0.0;
  bool hit_limit = false;
  std::vector<Real> energy_trace;        ///< if energy_stride > 0
  std::vector<std::size_t> avalanche_sizes;  ///< if track_avalanches
  /// Largest |v| reached — point-dissipativity check (must stay <= 1 + tol).
  Real max_abs_voltage = 0.0;
};

/// Controls for the parallel multi-restart driver (solve_ensemble).
struct DmmEnsembleOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = inline serial.
  std::size_t threads = 0;
  /// Stop launching new restarts once one satisfies (ignored in MaxSAT mode,
  /// which always runs the full budget looking for better weights).
  bool stop_on_first_solution = true;
};

struct DmmEnsembleResult {
  /// Deterministic winner: the lowest-index satisfying restart, or (when
  /// none satisfies) the lowest-index restart achieving the best
  /// unsatisfied count/weight. Bit-identical across thread counts.
  DmmResult best;
  std::size_t best_index = 0;
  bool any_satisfied = false;
  /// Per-restart results; results[i] is valid iff ran[i] != 0. With early
  /// stop, every index <= best_index is guaranteed to have run.
  std::vector<DmmResult> results;
  std::vector<std::uint8_t> ran;
  /// Throughput accounting (timing-dependent, informational only).
  std::size_t trajectories = 0;
  std::size_t threads_used = 0;
  Real wall_seconds = 0.0;
  Real trajectories_per_second = 0.0;
};

/// Outcome of one budgeted slice of a DMM trajectory (DmmSolver::advance).
struct DmmSliceOutcome {
  bool done = false;  ///< trajectory finished; `result` is final
  DmmResult result;   ///< valid only when done
};

class DmmSolver {
 public:
  DmmSolver(const Cnf& cnf, DmmOptions options);

  /// Integrates one trajectory from random initial voltages.
  DmmResult solve(core::Rng& rng) const;

  /// Integrates from given initial voltages (size = num_variables; values in
  /// [-1,1]); exposed for the dynamics study and tests.
  DmmResult solve_from(std::vector<Real> v0, core::Rng& rng) const;

  /// As above, but all integration state (voltages, memories, derivatives,
  /// sign bits) is carved from the caller-owned workspace — zero scratch
  /// allocation per solve once the workspace has warmed up. The ensemble
  /// runner hands each worker thread its own workspace.
  DmmResult solve_from(std::vector<Real> v0, core::Rng& rng,
                       core::Workspace& ws) const;

  /// Runs `restarts` independent trajectories across a thread pool, each
  /// seeded from core::Rng::stream(base_seed, restart_index) so every
  /// trajectory — and the selected winner — is reproducible regardless of
  /// thread count or scheduling. Implemented as a single unlimited slice of
  /// solve_ensemble_slice.
  DmmEnsembleResult solve_ensemble(std::size_t restarts,
                                   std::uint64_t base_seed,
                                   const DmmEnsembleOptions& opts = {}) const;

  // --- Preemptible / checkpointable execution (DESIGN.md §12) ---

  /// Packs initial voltages + RNG into a fresh "dmm" checkpoint and performs
  /// the initial digital readout (the trajectory may already be finished if
  /// v0 satisfies the formula). The checkpoint carries *everything* the
  /// trajectory needs — state vector, sign bits, best-so-far records, traces,
  /// RNG stream position — so advance() can run on any thread or process.
  core::Checkpoint begin(std::vector<Real> v0, const core::Rng& rng) const;

  /// Advances a checkpointed trajectory by at most `budget` steps/seconds.
  /// Calling with an unlimited budget integrates to completion. The sequence
  /// of states is bit-identical no matter how the work is sliced: N bounded
  /// advances produce exactly the final result of one unlimited advance.
  DmmSliceOutcome advance(core::Checkpoint& ckpt,
                          const core::SliceBudget& budget,
                          core::Workspace& ws) const;

  /// Reconstructs the DmmResult recorded in a finished checkpoint (throws
  /// std::invalid_argument on an unfinished or foreign checkpoint) — this is
  /// how an ensemble resumed after a crash recovers completed restarts.
  DmmResult result_from_checkpoint(const core::Checkpoint& ckpt) const;

  /// Advances a multi-restart ensemble by one `budget` slice per pending
  /// restart, keeping all resumable state (including partial trajectories
  /// and the early-stop line) in `ckpt` — serializable via its json_dump.
  /// Returns true when the ensemble is complete, at which point `*result`
  /// (if non-null) is filled exactly as solve_ensemble would have filled it.
  bool solve_ensemble_slice(std::size_t restarts, std::uint64_t base_seed,
                            const DmmEnsembleOptions& opts,
                            const core::SliceBudget& budget,
                            core::EnsembleCheckpoint& ckpt,
                            DmmEnsembleResult* result = nullptr) const;

 private:
  struct ClauseData {
    std::vector<std::size_t> vars;  ///< 0-based variable indices
    std::vector<Real> q;            ///< +1 / -1 literal signs
    Real weight = 1.0;
  };
  struct Kernel;  // static-dispatch RHS over packed state [v | xs | xl]

  const Cnf& cnf_;
  DmmOptions opts_;
  std::vector<ClauseData> clauses_;
};

}  // namespace rebooting::memcomputing
