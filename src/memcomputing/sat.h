// Classical von-Neumann SAT baselines for the Sec. IV comparison: WalkSAT
// (SKC noise heuristic), GSAT, and DPLL with unit propagation and pure
// literals. The scaling benches run these against the DMM solver on the same
// instances.
#pragma once

#include <cstddef>
#include <optional>

#include "core/random.h"
#include "memcomputing/cnf.h"

namespace rebooting::memcomputing {

struct SatResult {
  bool satisfied = false;
  /// Valid when satisfied; for MaxSAT-style use, the best assignment found.
  Assignment assignment;
  /// Work counters: flips for local search, decisions for DPLL.
  std::size_t flips = 0;
  std::size_t decisions = 0;
  std::size_t propagations = 0;
  /// Fewest unsatisfied clauses seen during the run.
  std::size_t best_unsatisfied = 0;
  bool hit_limit = false;  ///< gave up at the work limit (result inconclusive)
};

struct WalkSatOptions {
  std::size_t max_flips = 1'000'000;
  /// Number of independent restarts; each gets max_flips.
  std::size_t max_tries = 1;
  /// SKC noise: with this probability pick a random variable from the broken
  /// clause instead of the greedy one.
  core::Real noise = 0.5;
};

/// WalkSAT with the Selman–Kautz–Cohen heuristic: in the chosen unsatisfied
/// clause, a variable with zero break-count is flipped greedily; otherwise
/// flip greedy-or-random according to the noise parameter.
SatResult walksat(const Cnf& cnf, core::Rng& rng,
                  const WalkSatOptions& opts = {});

struct GsatOptions {
  std::size_t max_flips = 200'000;
  std::size_t max_tries = 5;
  /// Sideways moves allowed (plateau walking).
  bool allow_sideways = true;
};

/// GSAT: always flip a variable with the best gain over the whole formula.
SatResult gsat(const Cnf& cnf, core::Rng& rng, const GsatOptions& opts = {});

struct DpllOptions {
  /// Abort after this many decisions (exponential blow-up guard).
  std::size_t max_decisions = 50'000'000;
};

/// Complete DPLL search with unit propagation and pure-literal elimination.
/// result.satisfied == false with hit_limit == false is a proof of UNSAT.
SatResult dpll(const Cnf& cnf, const DpllOptions& opts = {});

}  // namespace rebooting::memcomputing
