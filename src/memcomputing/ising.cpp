#include "memcomputing/ising.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace rebooting::memcomputing {

void IsingModel::add_bond(std::size_t i, std::size_t j, Real coupling) {
  if (i >= num_spins_ || j >= num_spins_ || i == j)
    throw std::invalid_argument("IsingModel::add_bond: bad spin indices");
  bonds_.push_back({i, j, coupling});
  adjacency_.clear();  // invalidate cache
}

Real IsingModel::energy(const SpinConfig& s) const {
  if (s.size() != num_spins_)
    throw std::invalid_argument("IsingModel::energy: config size mismatch");
  Real e = 0.0;
  for (const IsingBond& b : bonds_)
    e -= b.coupling * static_cast<Real>(s[b.i]) * static_cast<Real>(s[b.j]);
  return e;
}

const std::vector<std::vector<std::size_t>>& IsingModel::adjacency() const {
  if (adjacency_.empty() && !bonds_.empty()) {
    adjacency_.assign(num_spins_, {});
    for (std::size_t b = 0; b < bonds_.size(); ++b) {
      adjacency_[bonds_[b].i].push_back(b);
      adjacency_[bonds_[b].j].push_back(b);
    }
  }
  return adjacency_;
}

Real IsingModel::flip_delta(const SpinConfig& s, std::size_t k) const {
  const auto& adj = adjacency();
  Real field = 0.0;
  for (const std::size_t bi : adj[k]) {
    const IsingBond& b = bonds_[bi];
    const std::size_t other = (b.i == k) ? b.j : b.i;
    field += b.coupling * static_cast<Real>(s[other]);
  }
  return 2.0 * static_cast<Real>(s[k]) * field;
}

FrustratedLoopInstance make_frustrated_loops(core::Rng& rng, std::size_t side,
                                             std::size_t n_loops,
                                             std::size_t max_loop_len) {
  if (side < 3)
    throw std::invalid_argument("make_frustrated_loops: side must be >= 3");
  if (max_loop_len < 4) max_loop_len = 4;

  const std::size_t n = side * side;
  auto spin_at = [side](std::size_t x, std::size_t y) {
    return (y % side) * side + (x % side);
  };

  // Accumulate couplings on grid edges keyed by the (ordered) spin pair.
  std::map<std::pair<std::size_t, std::size_t>, Real> coupling;
  auto add_edge = [&](std::size_t a, std::size_t b, Real j) {
    if (a > b) std::swap(a, b);
    coupling[{a, b}] += j;
  };

  for (std::size_t loop = 0; loop < n_loops; ++loop) {
    // Rectangle loops: simple, guaranteed closed lattice loops. Perimeter
    // 2(w+h) is kept within max_loop_len.
    const std::size_t max_span =
        std::max<std::size_t>(1, std::min(side - 1, max_loop_len / 2 - 1));
    const auto w = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(max_span)));
    const std::size_t h_cap = std::max<std::size_t>(
        1, std::min(side - 1, max_loop_len / 2 > w ? max_loop_len / 2 - w : 1));
    const auto h = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(h_cap)));
    const auto x0 = rng.uniform_index(side);
    const auto y0 = rng.uniform_index(side);

    // Collect the perimeter edges in order.
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t x = 0; x < w; ++x) {
      edges.emplace_back(spin_at(x0 + x, y0), spin_at(x0 + x + 1, y0));
      edges.emplace_back(spin_at(x0 + x, y0 + h), spin_at(x0 + x + 1, y0 + h));
    }
    for (std::size_t y = 0; y < h; ++y) {
      edges.emplace_back(spin_at(x0, y0 + y), spin_at(x0, y0 + y + 1));
      edges.emplace_back(spin_at(x0 + w, y0 + y), spin_at(x0 + w, y0 + y + 1));
    }
    // One random edge is antiferromagnetic; the rest ferromagnetic.
    const std::size_t af = rng.uniform_index(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e)
      add_edge(edges[e].first, edges[e].second, e == af ? -1.0 : 1.0);
  }

  FrustratedLoopInstance inst{IsingModel(n), 0.0, SpinConfig(n, 1), side};
  for (const auto& [key, j] : coupling)
    if (std::abs(j) > 1e-12) inst.model.add_bond(key.first, key.second, j);
  // All-up attains each loop's minimum simultaneously (violating exactly the
  // AF bond of every loop), so its energy is the planted ground energy.
  inst.ground_energy = inst.model.energy(inst.planted);
  return inst;
}

AnnealResult simulated_annealing(const IsingModel& model, core::Rng& rng,
                                 const AnnealOptions& opts) {
  if (opts.sweeps == 0 || opts.t_start <= 0.0 || opts.t_end <= 0.0)
    throw std::invalid_argument("simulated_annealing: bad options");
  const std::size_t n = model.num_spins();

  AnnealResult result;
  result.best_energy = 0.0;
  bool have_best = false;

  const Real ratio = opts.t_end / opts.t_start;
  for (std::size_t restart = 0; restart < std::max<std::size_t>(1, opts.restarts);
       ++restart) {
    SpinConfig s(n);
    for (auto& sp : s) sp = rng.bernoulli(0.5) ? 1 : -1;
    Real e = model.energy(s);
    for (std::size_t sweep = 0; sweep < opts.sweeps; ++sweep) {
      const Real frac = static_cast<Real>(sweep) /
                        static_cast<Real>(std::max<std::size_t>(1, opts.sweeps - 1));
      const Real temp = opts.t_start * std::pow(ratio, frac);
      for (std::size_t f = 0; f < n; ++f) {
        const std::size_t k = rng.uniform_index(n);
        const Real delta = model.flip_delta(s, k);
        ++result.total_flips_attempted;
        if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
          s[k] = static_cast<std::int8_t>(-s[k]);
          e += delta;
          ++result.accepted_flips;
          if (!have_best || e < result.best_energy) {
            have_best = true;
            result.best_energy = e;
            result.best = s;
            result.sweeps_to_best = sweep;
          }
        }
      }
    }
  }
  if (!have_best) {
    // Nothing ever accepted (pathological); fall back to a random state.
    result.best.assign(n, 1);
    result.best_energy = model.energy(result.best);
  }
  return result;
}

Cnf ising_to_cnf(const IsingModel& model) {
  Cnf cnf(model.num_spins());
  for (const IsingBond& b : model.bonds()) {
    const auto vi = static_cast<Literal>(b.i + 1);
    const auto vj = static_cast<Literal>(b.j + 1);
    const Real w = std::abs(b.coupling);
    if (w <= 0.0) continue;
    if (b.coupling > 0.0) {
      // Ferromagnetic: want equal spins; one clause breaks iff they differ.
      cnf.add_clause({vi, -vj}, w);
      cnf.add_clause({-vi, vj}, w);
    } else {
      // Antiferromagnetic: want opposite spins.
      cnf.add_clause({vi, vj}, w);
      cnf.add_clause({-vi, -vj}, w);
    }
  }
  return cnf;
}

SpinConfig assignment_to_spins(const Assignment& a, std::size_t num_spins) {
  SpinConfig s(num_spins);
  for (std::size_t i = 0; i < num_spins; ++i) s[i] = a[i + 1] ? 1 : -1;
  return s;
}

Real cnf_assignment_energy(const IsingModel& model, const Assignment& a) {
  return model.energy(assignment_to_spins(a, model.num_spins()));
}

}  // namespace rebooting::memcomputing
