#include "memcomputing/dmm.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace rebooting::memcomputing {

DmmSolver::DmmSolver(const Cnf& cnf, DmmOptions options)
    : cnf_(cnf), opts_(options) {
  if (cnf.num_variables() == 0 || cnf.num_clauses() == 0)
    throw std::invalid_argument("DmmSolver: empty formula");
  clauses_.reserve(cnf.num_clauses());
  for (const Clause& c : cnf.clauses()) {
    ClauseData d;
    d.weight = c.weight;
    d.vars.reserve(c.literals.size());
    d.q.reserve(c.literals.size());
    for (const Literal lit : c.literals) {
      d.vars.push_back(static_cast<std::size_t>(std::abs(lit)) - 1);
      d.q.push_back(lit > 0 ? 1.0 : -1.0);
    }
    clauses_.push_back(std::move(d));
  }
}

// Static-dispatch dynamics kernel over the packed state y = [v | xs | xl]
// (n voltages, then m fast memories, then m slow memories). rhs() is the one
// clause sweep of Eqs. 1-2: it fills dydt with (dv, dxs, dxl) and leaves the
// summed clause unsatisfaction in clause_energy for the energy traces. The
// solve loop calls it directly (no std::function), so the compiler inlines
// the sweep into the stepping loop.
struct DmmSolver::Kernel {
  const DmmSolver& solver;
  Real clause_energy = 0.0;

  void rhs(Real /*t*/, std::span<const Real> y, std::span<Real> dydt) {
    const std::size_t n = solver.cnf_.num_variables();
    const std::size_t m = solver.clauses_.size();
    const DmmParams& p = solver.opts_.params;
    const auto v = y.first(n);
    const auto xs = y.subspan(n, m);
    const auto xl = y.subspan(n + m, m);
    const auto dv = dydt.first(n);
    const auto dxs = dydt.subspan(n, m);
    const auto dxl = dydt.subspan(n + m, m);

    std::fill(dv.begin(), dv.end(), 0.0);
    clause_energy = 0.0;
    for (std::size_t cm = 0; cm < m; ++cm) {
      const ClauseData& c = solver.clauses_[cm];
      const std::size_t k = c.vars.size();

      // Smallest and second-smallest (1 - q v) over the clause's literals.
      Real min1 = 2.0, min2 = 2.0;
      std::size_t arg1 = 0;
      for (std::size_t i = 0; i < k; ++i) {
        const Real s = 1.0 - c.q[i] * v[c.vars[i]];
        if (s < min1) {
          min2 = min1;
          min1 = s;
          arg1 = i;
        } else if (s < min2) {
          min2 = s;
        }
      }
      const Real cmeas = 0.5 * min1;  // C_m in [0, 1]
      clause_energy += cmeas;

      const Real gate_g = xl[cm] * xs[cm];
      const Real gate_r = (1.0 + p.zeta * xl[cm]) * (1.0 - xs[cm]);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t var = c.vars[i];
        // Gradient-like term: push literal i toward satisfaction, scaled by
        // how far the *other* literals are from satisfying the clause.
        const Real min_excl = (i == arg1) ? min2 : min1;
        const Real g_term = 0.5 * c.q[i] * min_excl;
        Real r_term = 0.0;
        if (p.rigidity && i == arg1) {
          // Rigidity holds the critical literal at its target.
          r_term = 0.5 * (c.q[i] - v[var]);
        }
        dv[var] += c.weight * (gate_g * g_term + gate_r * r_term);
      }

      dxs[cm] = p.beta * (xs[cm] + p.epsilon) * (cmeas - p.gamma);
      dxl[cm] = p.long_term_memory ? p.alpha * (cmeas - p.delta) : 0.0;
    }
  }
};

namespace {

// Checkpoint layout for tag "dmm". The packed state vector [v | xs | xl]
// lives in Checkpoint::state; everything else fans out over the envelope's
// side channels at the fixed offsets below. All of it together is the
// *entire* mutable state of the solve loop, which is what makes a resumed
// trajectory bit-identical to an uninterrupted one.
constexpr const char kDmmTag[] = "dmm";
// flags: [finished, satisfied, hit_limit, sign_bit[n], best assignment[n+1]]
constexpr std::size_t kFlagFinished = 0;
constexpr std::size_t kFlagSatisfied = 1;
constexpr std::size_t kFlagHitLimit = 2;
constexpr std::size_t kFlagSign = 3;
// counters: [steps_to_best, best_unsatisfied, n, m, avalanche sizes...]
constexpr std::size_t kCtrStepsToBest = 0;
constexpr std::size_t kCtrBestUnsat = 1;
constexpr std::size_t kCtrVars = 2;
constexpr std::size_t kCtrClauses = 3;
constexpr std::size_t kCtrTail = 4;
// aux: [best_weight, max_abs_voltage, final weight, energy trace...]
constexpr std::size_t kAuxBestWeight = 0;
constexpr std::size_t kAuxMaxAbsV = 1;
constexpr std::size_t kAuxFinalWeight = 2;
constexpr std::size_t kAuxTail = 3;

}  // namespace

DmmResult DmmSolver::solve(core::Rng& rng) const {
  std::vector<Real> v0(cnf_.num_variables());
  for (Real& v : v0) v = rng.uniform(-1.0, 1.0);
  return solve_from(std::move(v0), rng);
}

DmmResult DmmSolver::solve_from(std::vector<Real> v0, core::Rng& rng) const {
  // One lazily grown arena per thread keeps the legacy signature
  // allocation-free after its first call.
  thread_local core::Workspace ws;
  return solve_from(std::move(v0), rng, ws);
}

DmmResult DmmSolver::solve_from(std::vector<Real> v0, core::Rng& rng,
                                core::Workspace& ws) const {
  // One unlimited slice is exactly the uninterrupted solve; the caller's
  // generator is advanced past the noise draws via the checkpoint, keeping
  // the legacy by-reference RNG contract.
  core::Checkpoint ckpt = begin(std::move(v0), rng);
  DmmSliceOutcome out = advance(ckpt, core::SliceBudget{}, ws);
  rng = core::Rng::restore(ckpt.rng);
  return std::move(out.result);
}

core::Checkpoint DmmSolver::begin(std::vector<Real> v0,
                                  const core::Rng& rng) const {
  const std::size_t n = cnf_.num_variables();
  const std::size_t m = clauses_.size();
  if (v0.size() != n)
    throw std::invalid_argument("DmmSolver::begin: bad v0 size");

  core::Checkpoint ckpt;
  ckpt.tag = kDmmTag;
  ckpt.rng = rng.save();
  ckpt.state.resize(n + 2 * m);
  std::copy(v0.begin(), v0.end(), ckpt.state.begin());
  std::fill(ckpt.state.begin() + n, ckpt.state.begin() + n + m, 0.5);
  std::fill(ckpt.state.begin() + n + m, ckpt.state.end(), 1.0);
  ckpt.flags.assign(kFlagSign + n + (n + 1), 0);
  for (std::size_t i = 0; i < n; ++i)
    ckpt.flags[kFlagSign + i] = v0[i] > 0.0 ? 1 : 0;
  ckpt.counters.assign(kCtrTail, 0);
  ckpt.counters[kCtrBestUnsat] = m;
  ckpt.counters[kCtrVars] = n;
  ckpt.counters[kCtrClauses] = m;
  ckpt.aux.assign(kAuxTail, 0.0);
  ckpt.aux[kAuxBestWeight] = -1.0;  // negative = nothing recorded yet

  // Initial digital readout, identical to the head of the classic solve: it
  // seeds best_unsatisfied / best assignment, and may finish the trajectory
  // outright when v0 already satisfies the formula.
  Assignment a(n + 1, false);
  for (std::size_t i = 0; i < n; ++i) a[i + 1] = v0[i] > 0.0;
  const std::size_t unsat = cnf_.count_unsatisfied(a);
  ckpt.counters[kCtrBestUnsat] = std::min<std::uint64_t>(m, unsat);
  ckpt.aux[kAuxBestWeight] = opts_.maxsat_mode
                                 ? cnf_.unsatisfied_weight(a)
                                 : static_cast<Real>(unsat);
  for (std::size_t i = 0; i <= n; ++i)
    ckpt.flags[kFlagSign + n + i] = a[i] ? 1 : 0;
  if (unsat == 0) {
    ckpt.flags[kFlagFinished] = 1;
    ckpt.flags[kFlagSatisfied] = 1;
    ckpt.counters[kCtrBestUnsat] = 0;
    ckpt.aux[kAuxFinalWeight] = 0.0;
  }
  return ckpt;
}

DmmResult DmmSolver::result_from_checkpoint(
    const core::Checkpoint& ckpt) const {
  const std::size_t n = cnf_.num_variables();
  const std::size_t m = clauses_.size();
  if (ckpt.tag != kDmmTag || ckpt.counters.size() < kCtrTail ||
      ckpt.counters[kCtrVars] != n || ckpt.counters[kCtrClauses] != m ||
      ckpt.flags.size() != kFlagSign + n + (n + 1) ||
      ckpt.state.size() != n + 2 * m || ckpt.aux.size() < kAuxTail)
    throw std::invalid_argument(
        "DmmSolver::result_from_checkpoint: foreign or corrupt checkpoint");
  if (!ckpt.flags[kFlagFinished])
    throw std::invalid_argument(
        "DmmSolver::result_from_checkpoint: trajectory not finished");

  DmmResult result;
  result.satisfied = ckpt.flags[kFlagSatisfied] != 0;
  result.hit_limit = ckpt.flags[kFlagHitLimit] != 0;
  result.steps = static_cast<std::size_t>(ckpt.step);
  result.steps_to_best = static_cast<std::size_t>(ckpt.counters[kCtrStepsToBest]);
  result.sim_time = ckpt.t;
  result.best_unsatisfied = static_cast<std::size_t>(ckpt.counters[kCtrBestUnsat]);
  result.best_unsatisfied_weight = ckpt.aux[kAuxFinalWeight];
  result.max_abs_voltage = ckpt.aux[kAuxMaxAbsV];
  result.assignment.assign(n + 1, false);
  for (std::size_t i = 0; i <= n; ++i)
    result.assignment[i] = ckpt.flags[kFlagSign + n + i] != 0;
  result.energy_trace.assign(ckpt.aux.begin() + kAuxTail, ckpt.aux.end());
  result.avalanche_sizes.clear();
  for (std::size_t i = kCtrTail; i < ckpt.counters.size(); ++i)
    result.avalanche_sizes.push_back(
        static_cast<std::size_t>(ckpt.counters[i]));
  return result;
}

DmmSliceOutcome DmmSolver::advance(core::Checkpoint& ckpt,
                                   const core::SliceBudget& budget,
                                   core::Workspace& ws) const {
  TELEM_SPAN("dmm.solve");
  TELEM_TRACE_SCOPE("dmm.solve");
  const std::size_t n = cnf_.num_variables();
  const std::size_t m = clauses_.size();
  if (ckpt.tag != kDmmTag || ckpt.counters.size() < kCtrTail ||
      ckpt.counters[kCtrVars] != n || ckpt.counters[kCtrClauses] != m ||
      ckpt.flags.size() != kFlagSign + n + (n + 1) ||
      ckpt.state.size() != n + 2 * m || ckpt.aux.size() < kAuxTail)
    throw std::invalid_argument(
        "DmmSolver::advance: foreign or corrupt checkpoint");

  DmmSliceOutcome out;
  if (ckpt.flags[kFlagFinished]) {
    out.done = true;
    out.result = result_from_checkpoint(ckpt);
    return out;
  }

  const DmmParams& p = opts_.params;
  // Hoisted enable check: the integration loop below runs up to max_steps
  // (millions) iterations; per-step telemetry must cost nothing when off.
  const bool telem = telemetry::Telemetry::enabled();
  std::size_t dt_clamped_min = 0;
  std::size_t dt_clamped_max = 0;
  // Stride for the clause-energy trajectory histogram — full per-step
  // recording would dominate the solve at registry-lock granularity.
  constexpr std::size_t kEnergyTelemStride = 64;

  // All integration scratch comes from the workspace: packed state y, its
  // derivative, and the digital sign bits. The Scope recycles the blocks for
  // the next slice on this thread; resumable state is copied in from the
  // checkpoint here and copied back out at every slice boundary.
  const auto ws_scope = ws.scope();
  const std::span<Real> y = ws.real(n + 2 * m);
  const std::span<Real> dydt = ws.real(n + 2 * m);
  const std::span<unsigned char> sign_bit = ws.bytes(n);

  const auto v = y.first(n);
  const auto xs = y.subspan(n, m);
  const auto xl = y.subspan(n + m, m);
  const auto dv = dydt.first(n);
  const auto dxs = dydt.subspan(n, m);
  const auto dxl = dydt.subspan(n + m, m);

  std::copy(ckpt.state.begin(), ckpt.state.end(), y.begin());
  std::copy(ckpt.flags.begin() + kFlagSign,
            ckpt.flags.begin() + kFlagSign + n, sign_bit.begin());

  core::Rng rng = core::Rng::restore(ckpt.rng);
  Kernel kernel{*this};

  DmmResult result;
  result.steps = static_cast<std::size_t>(ckpt.step);
  result.sim_time = ckpt.t;
  result.steps_to_best = static_cast<std::size_t>(ckpt.counters[kCtrStepsToBest]);
  result.best_unsatisfied = static_cast<std::size_t>(ckpt.counters[kCtrBestUnsat]);
  result.max_abs_voltage = ckpt.aux[kAuxMaxAbsV];
  result.energy_trace.assign(ckpt.aux.begin() + kAuxTail, ckpt.aux.end());
  for (std::size_t i = kCtrTail; i < ckpt.counters.size(); ++i)
    result.avalanche_sizes.push_back(
        static_cast<std::size_t>(ckpt.counters[i]));
  result.assignment.assign(n + 1, false);
  for (std::size_t i = 0; i <= n; ++i)
    result.assignment[i] = ckpt.flags[kFlagSign + n + i] != 0;
  Real best_weight = ckpt.aux[kAuxBestWeight];

  const std::size_t steps_at_entry = result.steps;

  // Counter dump on every return path (finished or preempted), while the
  // dmm.solve span is still open. Only this slice's step delta is added so
  // sliced and unsliced runs report identical totals.
  struct TelemFlush {
    const DmmResult& result;
    std::size_t entry_steps;
    const std::size_t& clamped_min;
    const std::size_t& clamped_max;
    std::size_t clauses;
    ~TelemFlush() {
      if (!telemetry::Telemetry::enabled()) return;
      const auto slice_steps =
          static_cast<Real>(result.steps - entry_steps);
      auto& metrics = telemetry::Telemetry::instance().metrics();
      metrics.add("dmm.steps", slice_steps);
      // One full clause sweep (all dv/dxs/dxl derivatives) per step.
      metrics.add("dmm.rhs_evals", slice_steps);
      metrics.add("dmm.clause_rhs_evals",
                  slice_steps * static_cast<Real>(clauses));
      metrics.add("dmm.dt_clamped_min", static_cast<Real>(clamped_min));
      metrics.add("dmm.dt_clamped_max", static_cast<Real>(clamped_max));
      metrics.set("dmm.best_unsatisfied",
                  static_cast<Real>(result.best_unsatisfied));
    }
  } telem_flush{result, steps_at_entry, dt_clamped_min, dt_clamped_max, m};

  Assignment a(n + 1, false);
  const auto evaluate_assignment = [&]() {
    TELEM_SPAN("dmm.evaluate_assignment");
    for (std::size_t i = 0; i < n; ++i) a[i + 1] = v[i] > 0.0;
    const std::size_t unsat = cnf_.count_unsatisfied(a);
    result.best_unsatisfied = std::min(result.best_unsatisfied, unsat);
    const Real w = opts_.maxsat_mode ? cnf_.unsatisfied_weight(a)
                                     : static_cast<Real>(unsat);
    if (best_weight < 0.0 || w < best_weight) {
      best_weight = w;
      result.assignment = a;
      result.steps_to_best = result.steps;
    }
    return unsat;
  };

  const Real xl_ceiling = p.xl_max * static_cast<Real>(m);
  const core::detail::SliceClock clock(budget);
  bool finished = false;

  for (std::size_t step = result.steps; step < opts_.max_steps; ++step) {
    if (clock.exhausted(step - steps_at_entry)) break;
    kernel.rhs(result.sim_time, y, dydt);

    // Adaptive forward-Euler step from the largest voltage rate.
    Real max_rate = 0.0;
    for (const Real r : dv) max_rate = std::max(max_rate, std::abs(r));
    const Real dt_wanted = (max_rate > 0.0) ? p.dv_cap / max_rate : p.dt_max;
    const Real dt = std::clamp(dt_wanted, p.dt_min, p.dt_max);
    // The step-control analogue of acceptance/rejection in this scheme: a
    // clamp at dt_min means the dv_cap error target was overridden.
    dt_clamped_min += dt_wanted < p.dt_min;
    dt_clamped_max += dt_wanted > p.dt_max;
    const Real noise_scale =
        p.noise_stddev > 0.0 ? p.noise_stddev * std::sqrt(dt) : 0.0;

    std::size_t flips = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Real nv = v[i] + dt * dv[i];
      if (noise_scale > 0.0) nv += noise_scale * rng.normal();
      v[i] = std::clamp(nv, -1.0, 1.0);
      result.max_abs_voltage = std::max(result.max_abs_voltage, std::abs(v[i]));
      const unsigned char s = v[i] > 0.0 ? 1 : 0;
      if (s != sign_bit[i]) {
        sign_bit[i] = s;
        ++flips;
      }
    }
    for (std::size_t cm = 0; cm < m; ++cm) {
      xs[cm] = std::clamp(xs[cm] + dt * dxs[cm], 0.0, 1.0);
      xl[cm] = std::clamp(xl[cm] + dt * dxl[cm], 1.0, xl_ceiling);
    }

    result.sim_time += dt;
    ++result.steps;
    if (opts_.track_avalanches && flips > 0)
      result.avalanche_sizes.push_back(flips);
    if (opts_.energy_stride > 0 && step % opts_.energy_stride == 0)
      result.energy_trace.push_back(kernel.clause_energy);
    if (step % kEnergyTelemStride == 0) {
      if (telem)
        telemetry::Telemetry::instance().metrics().record(
            "dmm.clause_energy", kernel.clause_energy);
      // Same decimation keeps the timeline's energy track bounded: one
      // sample per 64 integration steps, not one per step.
      TELEM_TRACE_COUNTER("dmm.clause_energy", kernel.clause_energy);
    }

    // The digital readout only changes when some voltage crossed zero.
    if (flips > 0) {
      const std::size_t unsat = evaluate_assignment();
      if (unsat == 0 && !opts_.maxsat_mode) {
        result.satisfied = true;
        result.best_unsatisfied = 0;
        result.best_unsatisfied_weight = 0.0;
        finished = true;
        break;
      }
    }
  }

  if (!finished && result.steps >= opts_.max_steps) {
    result.hit_limit = true;
    result.satisfied = result.best_unsatisfied == 0;
    result.best_unsatisfied_weight =
        opts_.maxsat_mode ? std::max(best_weight, 0.0)
                          : static_cast<Real>(result.best_unsatisfied);
    finished = true;
  }

  // Park the trajectory: every mutable of the loop above goes back into the
  // checkpoint, so the next advance — anywhere — continues seamlessly.
  ckpt.step = result.steps;
  ckpt.t = result.sim_time;
  std::copy(y.begin(), y.end(), ckpt.state.begin());
  std::copy(sign_bit.begin(), sign_bit.end(), ckpt.flags.begin() + kFlagSign);
  for (std::size_t i = 0; i <= n; ++i)
    ckpt.flags[kFlagSign + n + i] = result.assignment[i] ? 1 : 0;
  ckpt.counters.resize(kCtrTail);
  ckpt.counters[kCtrStepsToBest] = result.steps_to_best;
  ckpt.counters[kCtrBestUnsat] = result.best_unsatisfied;
  for (const std::size_t flips : result.avalanche_sizes)
    ckpt.counters.push_back(flips);
  ckpt.aux.resize(kAuxTail);
  ckpt.aux[kAuxBestWeight] = best_weight;
  ckpt.aux[kAuxMaxAbsV] = result.max_abs_voltage;
  ckpt.aux[kAuxFinalWeight] = result.best_unsatisfied_weight;
  ckpt.aux.insert(ckpt.aux.end(), result.energy_trace.begin(),
                  result.energy_trace.end());
  ckpt.rng = rng.save();
  if (finished) {
    ckpt.flags[kFlagFinished] = 1;
    ckpt.flags[kFlagSatisfied] = result.satisfied ? 1 : 0;
    ckpt.flags[kFlagHitLimit] = result.hit_limit ? 1 : 0;
    out.done = true;
    out.result = std::move(result);
  }
  return out;
}

bool DmmSolver::solve_ensemble_slice(std::size_t restarts,
                                     std::uint64_t base_seed,
                                     const DmmEnsembleOptions& opts,
                                     const core::SliceBudget& budget,
                                     core::EnsembleCheckpoint& ckpt,
                                     DmmEnsembleResult* result) const {
  TELEM_SPAN("dmm.solve_ensemble");
  TELEM_TRACE_SCOPE("dmm.solve_ensemble");
  if (restarts == 0)
    throw std::invalid_argument("solve_ensemble: need >= 1 restart");

  core::EnsembleOptions ropts;
  ropts.threads = opts.threads;
  ropts.telemetry_label = "dmm.ensemble";
  const bool stop_early = opts.stop_on_first_solution && !opts_.maxsat_mode;

  const core::SlicedEnsembleResult run = core::run_ensemble_sliced(
      restarts, ropts, budget,
      ckpt, [&](std::size_t i, core::Checkpoint& traj,
                const core::SliceBudget& slice, core::Workspace& ws) {
        if (traj.tag.empty()) {
          // Fresh restart: all randomness of restart i comes from its
          // counter-based stream — bit-identical at any thread count, any
          // slicing, and across process restarts.
          core::Rng rng = core::Rng::stream(base_seed, i);
          std::vector<Real> v0(cnf_.num_variables());
          for (Real& v : v0) v = rng.uniform(-1.0, 1.0);
          traj = begin(std::move(v0), rng);
        }
        const DmmSliceOutcome out = advance(traj, slice, ws);
        core::SliceStatus status;
        status.done = out.done;
        status.request_stop = out.done && stop_early && out.result.satisfied;
        return status;
      });

  if (!run.done) return false;
  if (result == nullptr) return true;

  DmmEnsembleResult er;
  er.results.resize(restarts);
  er.ran.assign(restarts, 0);
  // Completed restarts are recovered from their checkpoints — including ones
  // finished by an earlier invocation, possibly in a different process.
  for (std::size_t i = 0; i < restarts; ++i) {
    if (!ckpt.finished[i]) continue;
    er.results[i] = result_from_checkpoint(ckpt.trajectories[i]);
    er.ran[i] = 1;
  }

  // Winner: scan ascending, so the choice only depends on slots that are
  // guaranteed to have run (everything up to the first satisfying index).
  bool have_best = false;
  Real best_key = 0.0;
  for (std::size_t i = 0; i < restarts; ++i) {
    if (!er.ran[i]) continue;
    const DmmResult& r = er.results[i];
    if (r.satisfied) {
      er.best = r;
      er.best_index = i;
      er.any_satisfied = true;
      break;
    }
    const Real key = opts_.maxsat_mode
                         ? r.best_unsatisfied_weight
                         : static_cast<Real>(r.best_unsatisfied);
    if (!have_best || key < best_key) {
      have_best = true;
      best_key = key;
      er.best = r;
      er.best_index = i;
    }
  }

  er.trajectories = run.stats.trajectories;
  er.threads_used = run.stats.threads_used;
  er.wall_seconds = run.stats.wall_seconds;
  er.trajectories_per_second = run.stats.trajectories_per_second;
  *result = std::move(er);
  return true;
}

DmmEnsembleResult DmmSolver::solve_ensemble(
    std::size_t restarts, std::uint64_t base_seed,
    const DmmEnsembleOptions& opts) const {
  core::EnsembleCheckpoint ckpt;
  DmmEnsembleResult er;
  solve_ensemble_slice(restarts, base_seed, opts, core::SliceBudget{}, ckpt,
                       &er);
  return er;
}

}  // namespace rebooting::memcomputing
