#include "memcomputing/dmm.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace rebooting::memcomputing {

DmmSolver::DmmSolver(const Cnf& cnf, DmmOptions options)
    : cnf_(cnf), opts_(options) {
  if (cnf.num_variables() == 0 || cnf.num_clauses() == 0)
    throw std::invalid_argument("DmmSolver: empty formula");
  clauses_.reserve(cnf.num_clauses());
  for (const Clause& c : cnf.clauses()) {
    ClauseData d;
    d.weight = c.weight;
    d.vars.reserve(c.literals.size());
    d.q.reserve(c.literals.size());
    for (const Literal lit : c.literals) {
      d.vars.push_back(static_cast<std::size_t>(std::abs(lit)) - 1);
      d.q.push_back(lit > 0 ? 1.0 : -1.0);
    }
    clauses_.push_back(std::move(d));
  }
}

// Static-dispatch dynamics kernel over the packed state y = [v | xs | xl]
// (n voltages, then m fast memories, then m slow memories). rhs() is the one
// clause sweep of Eqs. 1-2: it fills dydt with (dv, dxs, dxl) and leaves the
// summed clause unsatisfaction in clause_energy for the energy traces. The
// solve loop calls it directly (no std::function), so the compiler inlines
// the sweep into the stepping loop.
struct DmmSolver::Kernel {
  const DmmSolver& solver;
  Real clause_energy = 0.0;

  void rhs(Real /*t*/, std::span<const Real> y, std::span<Real> dydt) {
    const std::size_t n = solver.cnf_.num_variables();
    const std::size_t m = solver.clauses_.size();
    const DmmParams& p = solver.opts_.params;
    const auto v = y.first(n);
    const auto xs = y.subspan(n, m);
    const auto xl = y.subspan(n + m, m);
    const auto dv = dydt.first(n);
    const auto dxs = dydt.subspan(n, m);
    const auto dxl = dydt.subspan(n + m, m);

    std::fill(dv.begin(), dv.end(), 0.0);
    clause_energy = 0.0;
    for (std::size_t cm = 0; cm < m; ++cm) {
      const ClauseData& c = solver.clauses_[cm];
      const std::size_t k = c.vars.size();

      // Smallest and second-smallest (1 - q v) over the clause's literals.
      Real min1 = 2.0, min2 = 2.0;
      std::size_t arg1 = 0;
      for (std::size_t i = 0; i < k; ++i) {
        const Real s = 1.0 - c.q[i] * v[c.vars[i]];
        if (s < min1) {
          min2 = min1;
          min1 = s;
          arg1 = i;
        } else if (s < min2) {
          min2 = s;
        }
      }
      const Real cmeas = 0.5 * min1;  // C_m in [0, 1]
      clause_energy += cmeas;

      const Real gate_g = xl[cm] * xs[cm];
      const Real gate_r = (1.0 + p.zeta * xl[cm]) * (1.0 - xs[cm]);
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t var = c.vars[i];
        // Gradient-like term: push literal i toward satisfaction, scaled by
        // how far the *other* literals are from satisfying the clause.
        const Real min_excl = (i == arg1) ? min2 : min1;
        const Real g_term = 0.5 * c.q[i] * min_excl;
        Real r_term = 0.0;
        if (p.rigidity && i == arg1) {
          // Rigidity holds the critical literal at its target.
          r_term = 0.5 * (c.q[i] - v[var]);
        }
        dv[var] += c.weight * (gate_g * g_term + gate_r * r_term);
      }

      dxs[cm] = p.beta * (xs[cm] + p.epsilon) * (cmeas - p.gamma);
      dxl[cm] = p.long_term_memory ? p.alpha * (cmeas - p.delta) : 0.0;
    }
  }
};

DmmResult DmmSolver::solve(core::Rng& rng) const {
  std::vector<Real> v0(cnf_.num_variables());
  for (Real& v : v0) v = rng.uniform(-1.0, 1.0);
  return solve_from(std::move(v0), rng);
}

DmmResult DmmSolver::solve_from(std::vector<Real> v0, core::Rng& rng) const {
  // One lazily grown arena per thread keeps the legacy signature
  // allocation-free after its first call.
  thread_local core::Workspace ws;
  return solve_from(std::move(v0), rng, ws);
}

DmmResult DmmSolver::solve_from(std::vector<Real> v0, core::Rng& rng,
                                core::Workspace& ws) const {
  TELEM_SPAN("dmm.solve");
  TELEM_TRACE_SCOPE("dmm.solve");
  const std::size_t n = cnf_.num_variables();
  const std::size_t m = clauses_.size();
  if (v0.size() != n)
    throw std::invalid_argument("DmmSolver::solve_from: bad v0 size");
  const DmmParams& p = opts_.params;
  // Hoisted enable check: the integration loop below runs up to max_steps
  // (millions) iterations; per-step telemetry must cost nothing when off.
  const bool telem = telemetry::Telemetry::enabled();
  std::size_t dt_clamped_min = 0;
  std::size_t dt_clamped_max = 0;
  // Stride for the clause-energy trajectory histogram — full per-step
  // recording would dominate the solve at registry-lock granularity.
  constexpr std::size_t kEnergyTelemStride = 64;

  // All integration state comes from the workspace: packed state y, its
  // derivative, and the digital sign bits. The Scope recycles the blocks for
  // the next trajectory on this thread.
  const auto ws_scope = ws.scope();
  const std::span<Real> y = ws.real(n + 2 * m);
  const std::span<Real> dydt = ws.real(n + 2 * m);
  const std::span<unsigned char> sign_bit = ws.bytes(n);

  const auto v = y.first(n);
  const auto xs = y.subspan(n, m);
  const auto xl = y.subspan(n + m, m);
  const auto dv = dydt.first(n);
  const auto dxs = dydt.subspan(n, m);
  const auto dxl = dydt.subspan(n + m, m);

  std::copy(v0.begin(), v0.end(), v.begin());
  std::fill(xs.begin(), xs.end(), 0.5);
  std::fill(xl.begin(), xl.end(), 1.0);
  for (std::size_t i = 0; i < n; ++i) sign_bit[i] = v[i] > 0.0 ? 1 : 0;

  Kernel kernel{*this};

  DmmResult result;
  result.best_unsatisfied = m;
  Real best_weight = -1.0;  // negative = nothing recorded yet

  // Counter dump on every return path (solved early, solved mid-loop, or
  // step-limit hit), while the dmm.solve span is still open.
  struct TelemFlush {
    const DmmResult& result;
    const std::size_t& clamped_min;
    const std::size_t& clamped_max;
    std::size_t clauses;
    ~TelemFlush() {
      if (!telemetry::Telemetry::enabled()) return;
      auto& metrics = telemetry::Telemetry::instance().metrics();
      metrics.add("dmm.steps", static_cast<Real>(result.steps));
      // One full clause sweep (all dv/dxs/dxl derivatives) per step.
      metrics.add("dmm.rhs_evals", static_cast<Real>(result.steps));
      metrics.add("dmm.clause_rhs_evals",
                  static_cast<Real>(result.steps * clauses));
      metrics.add("dmm.dt_clamped_min", static_cast<Real>(clamped_min));
      metrics.add("dmm.dt_clamped_max", static_cast<Real>(clamped_max));
      metrics.set("dmm.best_unsatisfied",
                  static_cast<Real>(result.best_unsatisfied));
    }
  } telem_flush{result, dt_clamped_min, dt_clamped_max, m};

  Assignment a(n + 1, false);
  const auto evaluate_assignment = [&]() {
    TELEM_SPAN("dmm.evaluate_assignment");
    for (std::size_t i = 0; i < n; ++i) a[i + 1] = v[i] > 0.0;
    const std::size_t unsat = cnf_.count_unsatisfied(a);
    result.best_unsatisfied = std::min(result.best_unsatisfied, unsat);
    const Real w = opts_.maxsat_mode ? cnf_.unsatisfied_weight(a)
                                     : static_cast<Real>(unsat);
    if (best_weight < 0.0 || w < best_weight) {
      best_weight = w;
      result.assignment = a;
      result.steps_to_best = result.steps;
    }
    return unsat;
  };

  if (evaluate_assignment() == 0) {
    result.satisfied = true;
    result.best_unsatisfied = 0;
    result.best_unsatisfied_weight = 0.0;
    return result;
  }

  const Real xl_ceiling = p.xl_max * static_cast<Real>(m);

  for (std::size_t step = 0; step < opts_.max_steps; ++step) {
    kernel.rhs(result.sim_time, y, dydt);

    // Adaptive forward-Euler step from the largest voltage rate.
    Real max_rate = 0.0;
    for (const Real r : dv) max_rate = std::max(max_rate, std::abs(r));
    const Real dt_wanted = (max_rate > 0.0) ? p.dv_cap / max_rate : p.dt_max;
    const Real dt = std::clamp(dt_wanted, p.dt_min, p.dt_max);
    // The step-control analogue of acceptance/rejection in this scheme: a
    // clamp at dt_min means the dv_cap error target was overridden.
    dt_clamped_min += dt_wanted < p.dt_min;
    dt_clamped_max += dt_wanted > p.dt_max;
    const Real noise_scale =
        p.noise_stddev > 0.0 ? p.noise_stddev * std::sqrt(dt) : 0.0;

    std::size_t flips = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Real nv = v[i] + dt * dv[i];
      if (noise_scale > 0.0) nv += noise_scale * rng.normal();
      v[i] = std::clamp(nv, -1.0, 1.0);
      result.max_abs_voltage = std::max(result.max_abs_voltage, std::abs(v[i]));
      const unsigned char s = v[i] > 0.0 ? 1 : 0;
      if (s != sign_bit[i]) {
        sign_bit[i] = s;
        ++flips;
      }
    }
    for (std::size_t cm = 0; cm < m; ++cm) {
      xs[cm] = std::clamp(xs[cm] + dt * dxs[cm], 0.0, 1.0);
      xl[cm] = std::clamp(xl[cm] + dt * dxl[cm], 1.0, xl_ceiling);
    }

    result.sim_time += dt;
    ++result.steps;
    if (opts_.track_avalanches && flips > 0)
      result.avalanche_sizes.push_back(flips);
    if (opts_.energy_stride > 0 && step % opts_.energy_stride == 0)
      result.energy_trace.push_back(kernel.clause_energy);
    if (step % kEnergyTelemStride == 0) {
      if (telem)
        telemetry::Telemetry::instance().metrics().record(
            "dmm.clause_energy", kernel.clause_energy);
      // Same decimation keeps the timeline's energy track bounded: one
      // sample per 64 integration steps, not one per step.
      TELEM_TRACE_COUNTER("dmm.clause_energy", kernel.clause_energy);
    }

    // The digital readout only changes when some voltage crossed zero.
    if (flips > 0) {
      const std::size_t unsat = evaluate_assignment();
      if (unsat == 0 && !opts_.maxsat_mode) {
        result.satisfied = true;
        result.best_unsatisfied = 0;
        result.best_unsatisfied_weight = 0.0;
        return result;
      }
    }
  }

  result.hit_limit = true;
  result.satisfied = result.best_unsatisfied == 0;
  result.best_unsatisfied_weight =
      opts_.maxsat_mode ? std::max(best_weight, 0.0)
                        : static_cast<Real>(result.best_unsatisfied);
  return result;
}

DmmEnsembleResult DmmSolver::solve_ensemble(
    std::size_t restarts, std::uint64_t base_seed,
    const DmmEnsembleOptions& opts) const {
  TELEM_SPAN("dmm.solve_ensemble");
  TELEM_TRACE_SCOPE("dmm.solve_ensemble");
  if (restarts == 0)
    throw std::invalid_argument("solve_ensemble: need >= 1 restart");

  DmmEnsembleResult er;
  er.results.resize(restarts);
  er.ran.assign(restarts, 0);

  core::EnsembleOptions ropts;
  ropts.threads = opts.threads;
  ropts.telemetry_label = "dmm.ensemble";
  const bool stop_early = opts.stop_on_first_solution && !opts_.maxsat_mode;

  const core::EnsembleStats stats = core::run_ensemble(
      restarts, ropts, [&](std::size_t i, core::Workspace& ws) {
        // All randomness of restart i comes from its counter-based stream:
        // bit-identical at any thread count.
        core::Rng rng = core::Rng::stream(base_seed, i);
        std::vector<Real> v0(cnf_.num_variables());
        for (Real& v : v0) v = rng.uniform(-1.0, 1.0);
        er.results[i] = solve_from(std::move(v0), rng, ws);
        er.ran[i] = 1;  // each trajectory touches only its own slots
        return !(stop_early && er.results[i].satisfied);
      });

  // Winner: scan ascending, so the choice only depends on slots that are
  // guaranteed to have run (everything up to the first satisfying index).
  bool have_best = false;
  Real best_key = 0.0;
  for (std::size_t i = 0; i < restarts; ++i) {
    if (!er.ran[i]) continue;
    const DmmResult& r = er.results[i];
    if (r.satisfied) {
      er.best = r;
      er.best_index = i;
      er.any_satisfied = true;
      break;
    }
    const Real key = opts_.maxsat_mode
                         ? r.best_unsatisfied_weight
                         : static_cast<Real>(r.best_unsatisfied);
    if (!have_best || key < best_key) {
      have_best = true;
      best_key = key;
      er.best = r;
      er.best_index = i;
    }
  }

  er.trajectories = stats.trajectories;
  er.threads_used = stats.threads_used;
  er.wall_seconds = stats.wall_seconds;
  er.trajectories_per_second = stats.trajectories_per_second;
  return er;
}

}  // namespace rebooting::memcomputing
