#include "memcomputing/sat.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace rebooting::memcomputing {

namespace {

/// Shared bookkeeping for the local-search solvers: occurrence lists,
/// per-clause satisfied-literal counts, and the unsatisfied-clause set, all
/// maintained incrementally under single-variable flips.
class LocalSearchState {
 public:
  LocalSearchState(const Cnf& cnf, Assignment a)
      : cnf_(cnf),
        assignment_(std::move(a)),
        true_count_(cnf.num_clauses(), 0),
        clause_pos_(cnf.num_clauses(), kNone),
        occurrences_(cnf.num_variables() + 1) {
    for (std::size_t m = 0; m < cnf_.num_clauses(); ++m) {
      for (const Literal lit : cnf_.clauses()[m].literals) {
        const auto v = static_cast<std::size_t>(std::abs(lit));
        occurrences_[v].push_back(m);
        if (assignment_[v] == (lit > 0)) ++true_count_[m];
      }
      if (true_count_[m] == 0) push_unsat(m);
    }
  }

  const Assignment& assignment() const { return assignment_; }
  std::size_t unsat_count() const { return unsat_.size(); }
  std::size_t random_unsat_clause(core::Rng& rng) const {
    return unsat_[rng.uniform_index(unsat_.size())];
  }

  /// Clauses this variable would break (satisfied now only by it) and make
  /// (unsatisfied now, contains a literal of it that becomes true).
  std::size_t break_count(std::size_t var) const {
    std::size_t breaks = 0;
    for (const std::size_t m : occurrences_[var]) {
      if (true_count_[m] == 1 && literal_true_of(m, var)) ++breaks;
    }
    return breaks;
  }

  std::size_t make_count(std::size_t var) const {
    std::size_t makes = 0;
    for (const std::size_t m : occurrences_[var]) {
      if (true_count_[m] == 0) ++makes;  // any literal of var flips it true
    }
    return makes;
  }

  void flip(std::size_t var) {
    assignment_[var] = !assignment_[var];
    for (const std::size_t m : occurrences_[var]) {
      // Recompute this clause's contribution incrementally: the flip changes
      // the truth of every literal of `var` in clause m.
      for (const Literal lit : cnf_.clauses()[m].literals) {
        if (static_cast<std::size_t>(std::abs(lit)) != var) continue;
        const bool now_true = assignment_[var] == (lit > 0);
        if (now_true) {
          if (true_count_[m]++ == 0) pop_unsat(m);
        } else {
          if (--true_count_[m] == 0) push_unsat(m);
        }
      }
    }
  }

 private:
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

  /// True when clause m's only satisfied literal belongs to `var`.
  bool literal_true_of(std::size_t m, std::size_t var) const {
    for (const Literal lit : cnf_.clauses()[m].literals) {
      const auto v = static_cast<std::size_t>(std::abs(lit));
      if (v == var && assignment_[v] == (lit > 0)) return true;
    }
    return false;
  }

  void push_unsat(std::size_t m) {
    clause_pos_[m] = unsat_.size();
    unsat_.push_back(m);
  }

  void pop_unsat(std::size_t m) {
    const std::size_t pos = clause_pos_[m];
    const std::size_t last = unsat_.back();
    unsat_[pos] = last;
    clause_pos_[last] = pos;
    unsat_.pop_back();
    clause_pos_[m] = kNone;
  }

  const Cnf& cnf_;
  Assignment assignment_;
  std::vector<std::size_t> true_count_;
  std::vector<std::size_t> unsat_;
  std::vector<std::size_t> clause_pos_;
  std::vector<std::vector<std::size_t>> occurrences_;
};

}  // namespace

SatResult walksat(const Cnf& cnf, core::Rng& rng, const WalkSatOptions& opts) {
  SatResult result;
  result.best_unsatisfied = cnf.num_clauses();

  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(1, opts.max_tries);
       ++attempt) {
    LocalSearchState state(cnf, random_assignment(rng, cnf.num_variables()));
    for (std::size_t f = 0; f < opts.max_flips; ++f) {
      if (state.unsat_count() < result.best_unsatisfied) {
        result.best_unsatisfied = state.unsat_count();
        result.assignment = state.assignment();
      }
      if (state.unsat_count() == 0) {
        result.satisfied = true;
        return result;
      }
      const std::size_t m = state.random_unsat_clause(rng);
      const auto& lits = cnf.clauses()[m].literals;

      std::size_t best_var = 0;
      std::size_t best_break = std::numeric_limits<std::size_t>::max();
      std::size_t ties = 0;
      for (const Literal lit : lits) {
        const auto v = static_cast<std::size_t>(std::abs(lit));
        const std::size_t b = state.break_count(v);
        if (b < best_break) {
          best_break = b;
          best_var = v;
          ties = 1;
        } else if (b == best_break && rng.uniform_index(++ties) == 0) {
          best_var = v;
        }
      }

      std::size_t flip_var = best_var;
      if (best_break > 0 && rng.bernoulli(opts.noise)) {
        const Literal lit = lits[rng.uniform_index(lits.size())];
        flip_var = static_cast<std::size_t>(std::abs(lit));
      }
      state.flip(flip_var);
      ++result.flips;
    }
  }
  result.hit_limit = true;
  return result;
}

SatResult gsat(const Cnf& cnf, core::Rng& rng, const GsatOptions& opts) {
  SatResult result;
  result.best_unsatisfied = cnf.num_clauses();
  const std::size_t n = cnf.num_variables();

  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(1, opts.max_tries);
       ++attempt) {
    LocalSearchState state(cnf, random_assignment(rng, n));
    for (std::size_t f = 0; f < opts.max_flips; ++f) {
      if (state.unsat_count() < result.best_unsatisfied) {
        result.best_unsatisfied = state.unsat_count();
        result.assignment = state.assignment();
      }
      if (state.unsat_count() == 0) {
        result.satisfied = true;
        return result;
      }
      // Best make-break gain over all variables, random tie-break.
      std::ptrdiff_t best_gain = std::numeric_limits<std::ptrdiff_t>::min();
      std::size_t best_var = 0;
      std::size_t ties = 0;
      for (std::size_t v = 1; v <= n; ++v) {
        const auto gain = static_cast<std::ptrdiff_t>(state.make_count(v)) -
                          static_cast<std::ptrdiff_t>(state.break_count(v));
        if (gain > best_gain) {
          best_gain = gain;
          best_var = v;
          ties = 1;
        } else if (gain == best_gain && rng.uniform_index(++ties) == 0) {
          best_var = v;
        }
      }
      if (best_gain < 0 || (best_gain == 0 && !opts.allow_sideways)) break;
      state.flip(best_var);
      ++result.flips;
    }
  }
  if (!result.satisfied) result.hit_limit = true;
  return result;
}

namespace {

enum class VarState : std::uint8_t { kUnset, kTrue, kFalse };

struct DpllContext {
  const Cnf& cnf;
  const DpllOptions& opts;
  SatResult& result;
  std::vector<VarState> values;

  bool literal_satisfied(Literal lit) const {
    const auto v = static_cast<std::size_t>(std::abs(lit));
    if (values[v] == VarState::kUnset) return false;
    return (values[v] == VarState::kTrue) == (lit > 0);
  }
  bool literal_falsified(Literal lit) const {
    const auto v = static_cast<std::size_t>(std::abs(lit));
    if (values[v] == VarState::kUnset) return false;
    return (values[v] == VarState::kTrue) != (lit > 0);
  }

  /// Returns false on conflict. Appends assigned variables to `trail`.
  bool propagate(std::vector<std::size_t>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& c : cnf.clauses()) {
        std::size_t unset = 0;
        Literal unit = 0;
        bool sat = false;
        for (const Literal lit : c.literals) {
          if (literal_satisfied(lit)) {
            sat = true;
            break;
          }
          if (!literal_falsified(lit)) {
            ++unset;
            unit = lit;
          }
        }
        if (sat) continue;
        if (unset == 0) return false;  // conflict
        if (unset == 1) {
          const auto v = static_cast<std::size_t>(std::abs(unit));
          values[v] = unit > 0 ? VarState::kTrue : VarState::kFalse;
          trail.push_back(v);
          ++result.propagations;
          changed = true;
        }
      }
    }
    return true;
  }

  /// Assigns pure literals; appends to trail.
  void assign_pure_literals(std::vector<std::size_t>& trail) {
    const std::size_t n = cnf.num_variables();
    std::vector<std::uint8_t> pos(n + 1, 0);
    std::vector<std::uint8_t> neg(n + 1, 0);
    for (const Clause& c : cnf.clauses()) {
      bool sat = false;
      for (const Literal lit : c.literals)
        if (literal_satisfied(lit)) {
          sat = true;
          break;
        }
      if (sat) continue;
      for (const Literal lit : c.literals) {
        const auto v = static_cast<std::size_t>(std::abs(lit));
        if (values[v] != VarState::kUnset) continue;
        (lit > 0 ? pos[v] : neg[v]) = 1;
      }
    }
    for (std::size_t v = 1; v <= n; ++v) {
      if (values[v] != VarState::kUnset) continue;
      if (pos[v] != neg[v]) {
        values[v] = pos[v] ? VarState::kTrue : VarState::kFalse;
        trail.push_back(v);
      }
    }
  }

  bool all_satisfied() const {
    for (const Clause& c : cnf.clauses()) {
      bool sat = false;
      for (const Literal lit : c.literals)
        if (literal_satisfied(lit)) {
          sat = true;
          break;
        }
      if (!sat) return false;
    }
    return true;
  }

  std::size_t pick_branch_variable() const {
    // Most-occurring unset variable in unsatisfied clauses (MOMS-lite).
    const std::size_t n = cnf.num_variables();
    std::vector<std::size_t> count(n + 1, 0);
    for (const Clause& c : cnf.clauses()) {
      bool sat = false;
      for (const Literal lit : c.literals)
        if (literal_satisfied(lit)) {
          sat = true;
          break;
        }
      if (sat) continue;
      for (const Literal lit : c.literals) {
        const auto v = static_cast<std::size_t>(std::abs(lit));
        if (values[v] == VarState::kUnset) ++count[v];
      }
    }
    std::size_t best = 0;
    for (std::size_t v = 1; v <= n; ++v)
      if (count[v] > count[best]) best = v;
    return best;
  }

  bool search() {
    if (result.decisions >= opts.max_decisions) {
      result.hit_limit = true;
      return false;
    }
    std::vector<std::size_t> trail;
    if (!propagate(trail)) {
      undo(trail);
      return false;
    }
    assign_pure_literals(trail);
    if (all_satisfied()) return true;

    const std::size_t var = pick_branch_variable();
    if (var == 0) {
      // Everything assigned but not satisfied: conflict.
      undo(trail);
      return false;
    }
    for (const VarState branch : {VarState::kTrue, VarState::kFalse}) {
      ++result.decisions;
      values[var] = branch;
      if (search()) return true;
      values[var] = VarState::kUnset;
      if (result.hit_limit) break;
    }
    undo(trail);
    return false;
  }

  void undo(const std::vector<std::size_t>& trail) {
    for (const std::size_t v : trail) values[v] = VarState::kUnset;
  }
};

}  // namespace

SatResult dpll(const Cnf& cnf, const DpllOptions& opts) {
  SatResult result;
  result.best_unsatisfied = cnf.num_clauses();
  DpllContext ctx{cnf, opts, result,
                  std::vector<VarState>(cnf.num_variables() + 1,
                                        VarState::kUnset)};
  if (ctx.search()) {
    result.satisfied = true;
    result.assignment.assign(cnf.num_variables() + 1, false);
    for (std::size_t v = 1; v <= cnf.num_variables(); ++v)
      result.assignment[v] = ctx.values[v] == VarState::kTrue;
    result.best_unsatisfied = 0;
  }
  return result;
}

}  // namespace rebooting::memcomputing
