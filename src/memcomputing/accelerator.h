// The Sec. IV engine as a Fig. 1 accelerator: the host offloads SAT /
// MaxSAT / Ising jobs and the DMM circuit dynamics "execute" them.
#pragma once

#include "core/accelerator.h"

namespace rebooting::memcomputing {

class MemcomputingAccelerator final : public core::Accelerator {
 public:
  std::string name() const override {
    return "Digital memcomputing machine (SOLG circuit)";
  }
  core::AcceleratorKind kind() const override {
    return core::AcceleratorKind::kMemcomputing;
  }
  std::vector<std::string> stack_layers() const override {
    return {"Combinatorial problem (SAT / MaxSAT / Ising / QUBO)",
            "Boolean / algebraic formulation",
            "Self-organizing logic circuit construction",
            "ODE dynamics (Eqs. 1-2: voltages + memory variables)",
            "Point-attractor readout (digital solution)"};
  }

  /// Factory for sched::Scheduler worker pools (the MemCPU-style deployment:
  /// many independent DMM instances behind one front end).
  static core::AcceleratorFactory factory() {
    return []() -> std::shared_ptr<core::Accelerator> {
      return std::make_shared<MemcomputingAccelerator>();
    };
  }
};

}  // namespace rebooting::memcomputing
