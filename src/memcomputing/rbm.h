// Restricted Boltzmann Machine training for the Sec. IV deep-learning claim
// (refs [55], [57]): contrastive-divergence baseline, an annealer-surrogate
// negative phase (the role D-Wave plays in Adachi–Henderson), and
// memcomputing mode-assisted training, where the DMM finds the mode (lowest
// joint-energy state) of the current model via a weighted-MaxSAT encoding of
// the RBM's QUBO energy and that mode drives the negative gradient.
#pragma once

#include <cstddef>
#include <vector>

#include "core/random.h"
#include "memcomputing/cnf.h"

namespace rebooting::memcomputing {

using core::Real;

/// Binary data vectors (one pattern = nv bits).
using Pattern = std::vector<std::uint8_t>;
using Dataset = std::vector<Pattern>;

/// Binary-binary RBM with energy
///   E(v, h) = -b.v - c.h - h^T W v .
class BinaryRbm {
 public:
  BinaryRbm(std::size_t visible, std::size_t hidden, core::Rng& rng,
            Real init_stddev = 0.05);

  std::size_t visible() const { return nv_; }
  std::size_t hidden() const { return nh_; }

  Real weight(std::size_t j, std::size_t i) const { return w_[j * nv_ + i]; }
  Real visible_bias(std::size_t i) const { return b_[i]; }
  Real hidden_bias(std::size_t j) const { return c_[j]; }

  /// p(h_j = 1 | v) for all j.
  std::vector<Real> hidden_probability(const Pattern& v) const;
  /// p(v_i = 1 | h) for all i.
  std::vector<Real> visible_probability(const Pattern& h) const;

  Pattern sample_hidden(const Pattern& v, core::Rng& rng) const;
  Pattern sample_visible(const Pattern& h, core::Rng& rng) const;

  Real joint_energy(const Pattern& v, const Pattern& h) const;
  /// Free energy F(v) = -b.v - sum_j softplus(c_j + W_j . v).
  Real free_energy(const Pattern& v) const;

  /// One contrastive-divergence (CD-k) update on a minibatch.
  void cd_step(const Dataset& batch, std::size_t k, Real learning_rate,
               core::Rng& rng);

  /// One update whose negative phase is the given joint state (the mode, or
  /// an annealer sample). Positive phase from the minibatch as usual.
  void negative_sample_step(const Dataset& batch, const Pattern& neg_v,
                            const Pattern& neg_h, Real learning_rate);

  /// A set of (v, h) samples from `n_chains` independent Gibbs chains of
  /// `sweeps` block updates at unit temperature — the role the quantum
  /// annealer plays in Adachi–Henderson (a cheap source of model samples).
  std::vector<std::pair<Pattern, Pattern>> gibbs_samples(
      core::Rng& rng, std::size_t n_chains, std::size_t sweeps) const;

  /// Update whose negative phase is the average over the given samples
  /// (a proper estimate of the model expectation).
  void negative_expectation_step(
      const Dataset& batch,
      const std::vector<std::pair<Pattern, Pattern>>& samples,
      Real learning_rate);

  /// Exact mean negative log-likelihood of the dataset; requires nv <= 20
  /// (enumerates visible space). Used as the training-quality metric.
  Real exact_nll(const Dataset& data) const;

  /// Mean per-bit reconstruction error over the dataset (v -> h -> v').
  Real reconstruction_error(const Dataset& data, core::Rng& rng,
                            std::size_t repeats = 1) const;

  /// Weighted-CNF encoding of the joint energy: variables 1..nv are the
  /// visible units, nv+1..nv+nh the hidden ones; minimizing unsatisfied
  /// weight minimizes E(v,h) (up to a constant). This is the bridge the DMM
  /// mode search runs on.
  Cnf joint_energy_cnf() const;

  /// Mode search backends. Each returns the best (v, h) found.
  struct Mode {
    Pattern v;
    Pattern h;
    Real energy = 0.0;
  };
  /// Exhaustive over visible space (nv <= 20), hidden maximized analytically.
  Mode find_mode_exact() const;
  /// Gibbs-chain annealing on the joint energy.
  Mode find_mode_annealed(core::Rng& rng, std::size_t sweeps = 300) const;
  /// DMM MaxSAT dynamics on joint_energy_cnf().
  Mode find_mode_dmm(core::Rng& rng, std::size_t max_steps = 30'000) const;

 private:
  std::size_t nv_;
  std::size_t nh_;
  std::vector<Real> w_;  ///< row-major [nh][nv]
  std::vector<Real> b_;
  std::vector<Real> c_;
};

/// Synthetic structured dataset: bars-and-stripes on a side x side grid
/// (every full-row and full-column pattern, plus all-on/all-off), the
/// standard small generative benchmark. nv = side * side.
Dataset bars_and_stripes(std::size_t side);

/// Noisy copies of `prototypes`: each sample is a prototype with every bit
/// flipped with probability flip_prob.
Dataset noisy_prototypes(core::Rng& rng, const Dataset& prototypes,
                         std::size_t samples_per_prototype, Real flip_prob);

/// Training procedure selector for the E9 comparison.
enum class RbmTrainer {
  kCdBaseline,        ///< plain CD-1 (the supervised-training stand-in)
  kAnnealerSampled,   ///< negative phase from annealed Gibbs samples
  kModeAssistedDmm,   ///< negative phase from the DMM mode with prob. p_mode
};

struct RbmTrainOptions {
  RbmTrainer trainer = RbmTrainer::kCdBaseline;
  std::size_t epochs = 100;
  std::size_t batch_size = 8;
  Real learning_rate = 0.1;
  std::size_t cd_k = 1;
  /// Mode-assisted mixing probability (linearly ramped from p0 to p1 over
  /// the epochs, per the mode-training recipe) and the reduced step size of
  /// mode updates relative to the CD learning rate.
  Real mode_p0 = 0.02;
  Real mode_p1 = 0.3;
  Real mode_lr_scale = 0.3;
  /// Annealer surrogate: chains x sweeps of Gibbs sampling per update.
  std::size_t anneal_chains = 10;
  std::size_t anneal_sweeps = 20;
  std::size_t dmm_max_steps = 20'000;
  /// Record metrics every `eval_stride` epochs.
  std::size_t eval_stride = 5;
};

struct RbmHistoryPoint {
  std::size_t epoch = 0;
  Real nll = 0.0;
  Real reconstruction_error = 0.0;
};

struct RbmTrainResult {
  std::vector<RbmHistoryPoint> history;
  Real final_nll = 0.0;
  Real final_reconstruction_error = 0.0;
};

RbmTrainResult train_rbm(BinaryRbm& rbm, const Dataset& data,
                         const RbmTrainOptions& opts, core::Rng& rng);

}  // namespace rebooting::memcomputing
