#include "memcomputing/solg.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <stdexcept>

#include "core/dynamics.h"
#include "core/ensemble.h"
#include "memcomputing/dmm.h"

namespace rebooting::memcomputing {

std::string to_string(GateType type) {
  switch (type) {
    case GateType::kAnd: return "AND";
    case GateType::kOr: return "OR";
    case GateType::kNot: return "NOT";
    case GateType::kXor: return "XOR";
    case GateType::kNand: return "NAND";
    case GateType::kNor: return "NOR";
    case GateType::kXnor: return "XNOR";
  }
  return "?";
}

bool gate_truth(GateType type, bool a, bool b) {
  switch (type) {
    case GateType::kAnd: return a && b;
    case GateType::kOr: return a || b;
    case GateType::kNot: return !a;
    case GateType::kXor: return a != b;
    case GateType::kNand: return !(a && b);
    case GateType::kNor: return !(a || b);
    case GateType::kXnor: return a == b;
  }
  return false;
}

std::size_t gate_arity(GateType type) {
  return type == GateType::kNot ? 2 : 3;
}

namespace {

/// Satisfying rows of a gate's truth table, each terminal as +/-1.
std::vector<std::vector<Real>> satisfying_rows(GateType type) {
  std::vector<std::vector<Real>> rows;
  if (type == GateType::kNot) {
    for (const bool a : {false, true})
      rows.push_back({a ? 1.0 : -1.0, gate_truth(type, a, false) ? 1.0 : -1.0});
    return rows;
  }
  for (const bool a : {false, true})
    for (const bool b : {false, true})
      rows.push_back({a ? 1.0 : -1.0, b ? 1.0 : -1.0,
                      gate_truth(type, a, b) ? 1.0 : -1.0});
  return rows;
}

// Stateful native-relaxation kernel: one rhs() call is one softmin gate
// sweep over the net voltages. The sweep's side effects — the per-gate
// memory updates and the accumulated mismatch — live in the kernel itself
// (the dynamics update x_g mid-sweep, so they are not part of the ODE state).
struct NativeKernel {
  const std::vector<SolgGate>& gates;
  const std::vector<std::vector<std::vector<Real>>>& rows_of;
  const SolgOptions& opts;
  std::span<Real> xg;
  Real total_mismatch = 0.0;

  void rhs(Real /*t*/, std::span<const Real> v, std::span<Real> dv) {
    std::array<Real, 3> term{};
    std::array<Real, 3> attract{};
    std::fill(dv.begin(), dv.end(), 0.0);
    total_mismatch = 0.0;

    for (std::size_t g = 0; g < gates.size(); ++g) {
      const SolgGate& gate = gates[g];
      const std::size_t arity = gate.terminals.size();
      for (std::size_t t = 0; t < arity; ++t) term[t] = v[gate.terminals[t]];

      // Softmin attraction toward the satisfying rows.
      Real wsum = 0.0;
      Real best_dist = 1e30;
      std::fill(attract.begin(), attract.begin() + arity, 0.0);
      for (const auto& row : rows_of[g]) {
        Real d2 = 0.0;
        for (std::size_t t = 0; t < arity; ++t) {
          const Real diff = term[t] - row[t];
          d2 += diff * diff;
        }
        best_dist = std::min(best_dist, d2);
        const Real w = std::exp(-d2 / opts.softmin_tau);
        wsum += w;
        for (std::size_t t = 0; t < arity; ++t)
          attract[t] += w * (row[t] - term[t]);
      }
      // Mismatch in [0, ~1]: distance to the nearest satisfying row.
      const Real mismatch = std::sqrt(best_dist) / 2.0;
      total_mismatch += mismatch;

      if (wsum > 0.0) {
        const Real scale = xg[g] / wsum;
        for (std::size_t t = 0; t < arity; ++t)
          dv[gate.terminals[t]] += scale * attract[t];
      }
      // Gate memory: grows while inconsistent (feedback of the active
      // elements), relaxes once the gate self-organized.
      xg[g] = std::clamp(
          xg[g] + opts.memory_rate * (mismatch - opts.memory_threshold) *
                      opts.dt_max / 16.0,
          1.0, opts.memory_max);
    }
  }
};

}  // namespace

std::size_t SolgCircuit::add_net() {
  pinned_.push_back(-1);
  return pinned_.size() - 1;
}

std::size_t SolgCircuit::add_nets(std::size_t count) {
  const std::size_t first = pinned_.size();
  pinned_.insert(pinned_.end(), count, static_cast<std::int8_t>(-1));
  return first;
}

void SolgCircuit::pin(std::size_t net, bool value) {
  pinned_.at(net) = value ? 1 : 0;
}

void SolgCircuit::unpin(std::size_t net) { pinned_.at(net) = -1; }

bool SolgCircuit::is_pinned(std::size_t net) const {
  return pinned_.at(net) >= 0;
}

void SolgCircuit::add_gate(GateType type, std::vector<std::size_t> terminals) {
  if (terminals.size() != gate_arity(type))
    throw std::invalid_argument("add_gate: wrong terminal count for " +
                                to_string(type));
  for (const std::size_t t : terminals)
    if (t >= pinned_.size())
      throw std::invalid_argument("add_gate: unknown net");
  gates_.push_back({type, std::move(terminals)});
}

bool SolgCircuit::check(const std::vector<bool>& values) const {
  if (values.size() != pinned_.size())
    throw std::invalid_argument("check: values size mismatch");
  for (const SolgGate& g : gates_) {
    const bool a = values[g.terminals[0]];
    const bool b = g.type == GateType::kNot ? false : values[g.terminals[1]];
    const bool out = values[g.terminals.back()];
    if (gate_truth(g.type, a, b) != out) return false;
  }
  return true;
}

Cnf SolgCircuit::to_cnf() const {
  Cnf cnf(pinned_.size());
  auto lit = [](std::size_t net, bool positive) {
    const auto v = static_cast<Literal>(net + 1);
    return positive ? v : -v;
  };
  for (const SolgGate& g : gates_) {
    const std::size_t o = g.terminals.back();
    const std::size_t a = g.terminals[0];
    // For inverted gates the output literal polarity is flipped relative to
    // the base AND/OR/XOR encoding.
    const bool inv = g.type == GateType::kNand || g.type == GateType::kNor ||
                     g.type == GateType::kXnor || g.type == GateType::kNot;
    switch (g.type) {
      case GateType::kNot:
        cnf.add_clause({lit(o, true), lit(a, true)});
        cnf.add_clause({lit(o, false), lit(a, false)});
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        const std::size_t b = g.terminals[1];
        cnf.add_clause({lit(o, inv), lit(a, true)});
        cnf.add_clause({lit(o, inv), lit(b, true)});
        cnf.add_clause({lit(o, !inv), lit(a, false), lit(b, false)});
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        const std::size_t b = g.terminals[1];
        cnf.add_clause({lit(o, !inv), lit(a, false)});
        cnf.add_clause({lit(o, !inv), lit(b, false)});
        cnf.add_clause({lit(o, inv), lit(a, true), lit(b, true)});
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        const std::size_t b = g.terminals[1];
        cnf.add_clause({lit(o, inv), lit(a, true), lit(b, true)});
        cnf.add_clause({lit(o, inv), lit(a, false), lit(b, false)});
        cnf.add_clause({lit(o, !inv), lit(a, true), lit(b, false)});
        cnf.add_clause({lit(o, !inv), lit(a, false), lit(b, true)});
        break;
      }
    }
  }
  for (std::size_t net = 0; net < pinned_.size(); ++net)
    if (pinned_[net] >= 0) cnf.add_clause({lit(net, pinned_[net] != 0)});
  return cnf;
}

SolgResult SolgCircuit::solve(core::Rng& rng, const SolgOptions& opts) const {
  return opts.engine == SolgEngine::kDmm ? solve_dmm(rng, opts)
                                         : solve_native(rng, opts);
}

SolgResult SolgCircuit::solve_dmm(core::Rng& rng,
                                  const SolgOptions& opts) const {
  const Cnf cnf = to_cnf();
  DmmOptions dopts;
  dopts.max_steps = opts.max_steps;
  const DmmSolver solver(cnf, dopts);

  const std::size_t restarts = std::max<std::size_t>(1, opts.restarts);
  DmmEnsembleOptions eopts;
  eopts.threads = opts.threads;
  const DmmEnsembleResult er = solver.solve_ensemble(restarts, rng(), eopts);

  SolgResult result;
  result.restarts_used = er.best_index;
  // Step accounting mirrors the old serial restart loop: everything up to and
  // including the winning restart (all of which are guaranteed to have run);
  // without a winner every restart ran.
  const std::size_t last = er.any_satisfied ? er.best_index : restarts - 1;
  for (std::size_t i = 0; i <= last; ++i)
    if (er.ran[i]) result.steps += er.results[i].steps;
  result.values.assign(pinned_.size(), false);
  if (er.any_satisfied) {
    for (std::size_t net = 0; net < pinned_.size(); ++net)
      result.values[net] = er.best.assignment[net + 1];
    result.consistent = check(result.values);
    result.residual = 0.0;
  }
  return result;
}

SolgResult SolgCircuit::solve_native(core::Rng& rng,
                                     const SolgOptions& opts) const {
  const std::size_t nets = pinned_.size();

  // Precompute each gate's satisfying rows once per type.
  std::vector<std::vector<std::vector<Real>>> rows_of(gates_.size());
  for (std::size_t g = 0; g < gates_.size(); ++g)
    rows_of[g] = satisfying_rows(gates_[g].type);

  struct Attempt {
    bool consistent = false;
    std::size_t steps = 0;
    std::vector<bool> values;
    Real residual = 0.0;
  };
  const std::size_t restarts = std::max<std::size_t>(1, opts.restarts);
  std::vector<Attempt> attempts(restarts);
  std::vector<std::uint8_t> ran(restarts, 0);
  const std::uint64_t base_seed = rng();

  core::EnsembleOptions ropts;
  ropts.threads = opts.threads;
  ropts.telemetry_label = "solg.native";
  core::run_ensemble(
      restarts, ropts, [&](std::size_t index, core::Workspace& ws) {
        core::Rng r = core::Rng::stream(base_seed, index);
        Attempt& out = attempts[index];  // each restart owns its slot
        const auto ws_scope = ws.scope();
        const std::span<Real> v = ws.real(nets);
        const std::span<Real> dv = ws.real(nets);
        const std::span<Real> xg = ws.real(gates_.size());
        for (std::size_t i = 0; i < nets; ++i)
          v[i] = pinned_[i] >= 0 ? (pinned_[i] ? 1.0 : -1.0)
                                 : r.uniform(-0.8, 0.8);
        std::fill(xg.begin(), xg.end(), 1.0);
        NativeKernel kernel{gates_, rows_of, opts, xg};

        for (std::size_t step = 0; step < opts.max_steps; ++step) {
          kernel.rhs(0.0, v, dv);

          Real max_rate = 0.0;
          for (std::size_t i = 0; i < nets; ++i) {
            if (pinned_[i] >= 0) dv[i] = 0.0;
            max_rate = std::max(max_rate, std::abs(dv[i]));
          }
          const Real dt = max_rate > 0.0
                              ? std::clamp(opts.dv_cap / max_rate, opts.dt_min,
                                           opts.dt_max)
                              : opts.dt_max;
          const Real noise = opts.noise_stddev * std::sqrt(dt);
          for (std::size_t i = 0; i < nets; ++i) {
            if (pinned_[i] >= 0) continue;
            v[i] =
                std::clamp(v[i] + dt * dv[i] + noise * r.normal(), -1.0, 1.0);
          }

          ++out.steps;
          if (step % 16 == 0) {
            std::vector<bool> digit(nets);
            for (std::size_t i = 0; i < nets; ++i) digit[i] = v[i] > 0.0;
            if (check(digit)) {
              out.consistent = true;
              out.values = std::move(digit);
              out.residual = kernel.total_mismatch /
                             static_cast<Real>(gates_.size());
              ran[index] = 1;
              return false;  // consistent: stop launching further restarts
            }
          }
        }

        out.values.assign(nets, false);
        for (std::size_t i = 0; i < nets; ++i) out.values[i] = v[i] > 0.0;
        out.consistent = check(out.values);
        ran[index] = 1;
        return !out.consistent;
      });

  // Winner: the lowest-index consistent restart (everything below it is
  // guaranteed to have run); with no winner, the last restart (all ran).
  std::size_t winner = restarts - 1;
  for (std::size_t i = 0; i < restarts; ++i) {
    if (ran[i] && attempts[i].consistent) {
      winner = i;
      break;
    }
  }
  SolgResult result;
  result.restarts_used = winner;
  for (std::size_t i = 0; i <= winner; ++i)
    if (ran[i]) result.steps += attempts[i].steps;
  result.consistent = attempts[winner].consistent;
  result.values = std::move(attempts[winner].values);
  result.residual = attempts[winner].residual;
  return result;
}

MultiplierCircuit build_multiplier(std::size_t a_width, std::size_t b_width) {
  if (a_width == 0 || b_width == 0)
    throw std::invalid_argument("build_multiplier: zero width");
  MultiplierCircuit mc;
  SolgCircuit& c = mc.circuit;

  for (std::size_t i = 0; i < a_width; ++i) mc.a_bits.push_back(c.add_net());
  for (std::size_t i = 0; i < b_width; ++i) mc.b_bits.push_back(c.add_net());

  // Partial products pp[i][j] = a_i AND b_j.
  std::vector<std::vector<std::size_t>> pp(a_width,
                                           std::vector<std::size_t>(b_width));
  for (std::size_t i = 0; i < a_width; ++i)
    for (std::size_t j = 0; j < b_width; ++j) {
      pp[i][j] = c.add_net();
      c.add_gate(GateType::kAnd, {mc.a_bits[i], mc.b_bits[j], pp[i][j]});
    }

  // Column-wise carry-save reduction with full/half adders built from SOLGs.
  auto half_adder = [&c](std::size_t x, std::size_t y, std::size_t& sum,
                         std::size_t& carry) {
    sum = c.add_net();
    carry = c.add_net();
    c.add_gate(GateType::kXor, {x, y, sum});
    c.add_gate(GateType::kAnd, {x, y, carry});
  };
  auto full_adder = [&c](std::size_t x, std::size_t y, std::size_t z,
                         std::size_t& sum, std::size_t& carry) {
    const std::size_t s1 = c.add_net();
    const std::size_t c1 = c.add_net();
    const std::size_t c2 = c.add_net();
    sum = c.add_net();
    carry = c.add_net();
    c.add_gate(GateType::kXor, {x, y, s1});
    c.add_gate(GateType::kAnd, {x, y, c1});
    c.add_gate(GateType::kXor, {s1, z, sum});
    c.add_gate(GateType::kAnd, {s1, z, c2});
    c.add_gate(GateType::kOr, {c1, c2, carry});
  };

  const std::size_t out_width = a_width + b_width;
  // One spare column: the top column's adder still produces a carry net
  // (always 0 for in-range products); it lands there and is simply not part
  // of the product readout.
  std::vector<std::vector<std::size_t>> columns(out_width + 1);
  for (std::size_t i = 0; i < a_width; ++i)
    for (std::size_t j = 0; j < b_width; ++j)
      columns[i + j].push_back(pp[i][j]);

  for (std::size_t col = 0; col < out_width; ++col) {
    while (columns[col].size() > 1) {
      if (columns[col].size() >= 3) {
        const std::size_t x = columns[col].back(); columns[col].pop_back();
        const std::size_t y = columns[col].back(); columns[col].pop_back();
        const std::size_t z = columns[col].back(); columns[col].pop_back();
        std::size_t sum = 0, carry = 0;
        full_adder(x, y, z, sum, carry);
        columns[col].push_back(sum);
        columns[col + 1].push_back(carry);
      } else {
        const std::size_t x = columns[col].back(); columns[col].pop_back();
        const std::size_t y = columns[col].back(); columns[col].pop_back();
        std::size_t sum = 0, carry = 0;
        half_adder(x, y, sum, carry);
        columns[col].push_back(sum);
        columns[col + 1].push_back(carry);
      }
    }
    if (columns[col].empty()) {
      // Column with no contributions: a constant-0 product bit.
      const std::size_t zero = c.add_net();
      c.pin(zero, false);
      columns[col].push_back(zero);
    }
    mc.product_bits.push_back(columns[col].front());
  }
  return mc;
}

SubsetSumCircuit build_subset_sum(const std::vector<std::uint64_t>& values) {
  if (values.empty())
    throw std::invalid_argument("build_subset_sum: no values");
  std::uint64_t total = 0;
  for (const std::uint64_t v : values) {
    if (v == 0) throw std::invalid_argument("build_subset_sum: zero value");
    if (total > ~0ull - v)
      throw std::invalid_argument("build_subset_sum: total overflows");
    total += v;
  }
  std::size_t width = 1;
  while ((total >> width) != 0) ++width;

  SubsetSumCircuit sc;
  SolgCircuit& c = sc.circuit;
  const std::size_t zero = c.add_net();
  c.pin(zero, false);

  for (std::size_t i = 0; i < values.size(); ++i)
    sc.selectors.push_back(c.add_net());

  // Gated operand i: bit j is the selector net where value bit j is 1 and
  // the shared zero net otherwise — selecting multiplies by 0 or 1 for free.
  auto operand = [&](std::size_t i) {
    std::vector<std::size_t> bits(width, zero);
    for (std::size_t j = 0; j < width; ++j)
      if ((values[i] >> j) & 1ull) bits[j] = sc.selectors[i];
    return bits;
  };

  auto full_adder = [&c](std::size_t x, std::size_t y, std::size_t z,
                         std::size_t& sum, std::size_t& carry) {
    const std::size_t s1 = c.add_net();
    const std::size_t c1 = c.add_net();
    const std::size_t c2 = c.add_net();
    sum = c.add_net();
    carry = c.add_net();
    c.add_gate(GateType::kXor, {x, y, s1});
    c.add_gate(GateType::kAnd, {x, y, c1});
    c.add_gate(GateType::kXor, {s1, z, sum});
    c.add_gate(GateType::kAnd, {s1, z, c2});
    c.add_gate(GateType::kOr, {c1, c2, carry});
  };

  // Sequential ripple accumulation. The final carry out of the top bit is a
  // free net: the sum register is sized for the total, so it is 0 in every
  // consistent state.
  std::vector<std::size_t> acc = operand(0);
  for (std::size_t i = 1; i < values.size(); ++i) {
    const std::vector<std::size_t> b = operand(i);
    std::vector<std::size_t> next(width);
    std::size_t carry = zero;
    for (std::size_t j = 0; j < width; ++j) {
      std::size_t sum = 0;
      std::size_t carry_out = 0;
      full_adder(acc[j], b[j], carry, sum, carry_out);
      next[j] = sum;
      carry = carry_out;
    }
    acc = std::move(next);
  }
  sc.sum_bits = std::move(acc);
  return sc;
}

SubsetSumResult solg_subset_sum(const std::vector<std::uint64_t>& values,
                                std::uint64_t target, core::Rng& rng,
                                const SolgOptions& opts) {
  SubsetSumCircuit sc = build_subset_sum(values);
  if (sc.sum_bits.size() < 64 && (target >> sc.sum_bits.size()) != 0)
    throw std::invalid_argument("solg_subset_sum: target exceeds total");
  for (std::size_t j = 0; j < sc.sum_bits.size(); ++j)
    sc.circuit.pin(sc.sum_bits[j], ((target >> j) & 1ull) != 0);

  SubsetSumResult result;
  result.dynamics = sc.circuit.solve(rng, opts);
  if (!result.dynamics.consistent) return result;
  result.selection.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    result.selection[i] = result.dynamics.values[sc.selectors[i]];
    if (result.selection[i]) result.achieved += values[i];
  }
  result.found = result.achieved == target;
  return result;
}

FactorResult solg_factor(std::uint64_t n, std::size_t a_width,
                         std::size_t b_width, core::Rng& rng,
                         const SolgOptions& opts) {
  MultiplierCircuit mc = build_multiplier(a_width, b_width);
  const std::size_t out_width = mc.product_bits.size();
  if (out_width < 64 && (n >> out_width) != 0)
    throw std::invalid_argument("solg_factor: n does not fit the multiplier");

  for (std::size_t b = 0; b < out_width; ++b)
    mc.circuit.pin(mc.product_bits[b], ((n >> b) & 1ull) != 0);
  if (n % 2 == 1) {
    // Odd target: both factors must be odd.
    mc.circuit.pin(mc.a_bits[0], true);
    mc.circuit.pin(mc.b_bits[0], true);
  }

  FactorResult fr;
  fr.dynamics = mc.circuit.solve(rng, opts);
  if (!fr.dynamics.consistent) return fr;

  auto read_bits = [&](const std::vector<std::size_t>& bits) {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < bits.size(); ++i)
      if (fr.dynamics.values[bits[i]]) value |= 1ull << i;
    return value;
  };
  fr.a = read_bits(mc.a_bits);
  fr.b = read_bits(mc.b_bits);
  fr.found = fr.a * fr.b == n;
  return fr;
}

}  // namespace rebooting::memcomputing
