#include "memcomputing/canonical.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace rebooting::memcomputing {

namespace {

// Bumped whenever the canonical encoding changes meaning, so digests from
// older builds can never alias.
constexpr std::uint32_t kCnfEncodingVersion = 1;
constexpr std::uint32_t kDmmKeyVersion = 1;

// Work budget for the individualization-refinement search. Random k-SAT
// discretizes in one or two refinement passes; the budget only bites on
// deliberately symmetric formulas, where the fallback (original-index
// tiebreak) costs cross-renaming hits but never correctness.
constexpr std::size_t kMaxLeaves = 32;
constexpr std::size_t kMaxRefinePasses = 64;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t weight_bits(core::Real w) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &w, sizeof(bits));
  return bits;
}

/// One clause under a candidate variable ranking: literals encoded as
/// 2*var + negated, sorted — the unit of the lexicographic comparison that
/// picks the canonical form.
struct ClauseRec {
  std::vector<std::uint64_t> keys;
  std::uint64_t wbits = 0;

  bool operator<(const ClauseRec& other) const {
    if (keys != other.keys) return keys < other.keys;
    return wbits < other.wbits;
  }
};

struct Candidate {
  std::vector<std::size_t> rank;  ///< 1-based: rank[orig_var] = canon_var
  std::vector<ClauseRec> recs;
  std::vector<std::uint64_t> flat;  ///< full encoding; the comparison key
};

class Canonicalizer {
 public:
  explicit Canonicalizer(const Cnf& cnf) : cnf_(cnf), n_(cnf.num_variables()) {
    occurrences_.resize(n_ + 1);
    for (std::size_t c = 0; c < cnf_.clauses().size(); ++c)
      for (const Literal lit : cnf_.clauses()[c].literals)
        occurrences_[static_cast<std::size_t>(lit < 0 ? -lit : lit)]
            .push_back({c, lit < 0});
  }

  Candidate run() {
    std::vector<std::uint64_t> colors(n_ + 1, 0);
    for (std::size_t v = 1; v <= n_; ++v) {
      std::size_t pos = 0, neg = 0;
      for (const auto& [c, negated] : occurrences_[v]) (negated ? neg : pos)++;
      colors[v] = mix64(mix64(pos) ^ (neg * 0xA5A5A5A5A5A5A5A5ull));
    }
    descend(std::move(colors));
    return std::move(best_);
  }

 private:
  /// WL color refinement to a stable partition. Each pass folds, per
  /// variable, the sorted multiset of its occurrence signatures (clause
  /// weight, clause length, own sign, sorted co-literal (color, sign)
  /// pairs) into its color. New colors are functions of old ones, so the
  /// partition only refines; when the class count stops growing it is
  /// stable.
  void refine(std::vector<std::uint64_t>& colors) const {
    std::size_t distinct = count_distinct(colors);
    for (std::size_t pass = 0; pass < kMaxRefinePasses; ++pass) {
      std::vector<std::uint64_t> next(n_ + 1, 0);
      std::vector<std::vector<std::uint64_t>> sigs;
      std::vector<std::pair<std::uint64_t, std::uint64_t>> co;
      for (std::size_t v = 1; v <= n_; ++v) {
        sigs.clear();
        for (const auto& [c, negated] : occurrences_[v]) {
          const Clause& clause = cnf_.clauses()[c];
          co.clear();
          for (const Literal lit : clause.literals) {
            const auto u = static_cast<std::size_t>(lit < 0 ? -lit : lit);
            if (u == v) continue;
            co.emplace_back(colors[u], lit < 0 ? 1u : 0u);
          }
          std::sort(co.begin(), co.end());
          std::vector<std::uint64_t> sig;
          sig.reserve(3 + 2 * co.size());
          sig.push_back(weight_bits(clause.weight));
          sig.push_back(clause.literals.size());
          sig.push_back(negated ? 1u : 0u);
          for (const auto& [color, sign] : co) {
            sig.push_back(color);
            sig.push_back(sign);
          }
          sigs.push_back(std::move(sig));
        }
        std::sort(sigs.begin(), sigs.end());
        std::uint64_t h = colors[v];
        for (const auto& sig : sigs) {
          h = mix64(h + sig.size());
          for (const std::uint64_t word : sig) h = mix64(h ^ word);
        }
        next[v] = h;
      }
      colors = std::move(next);
      const std::size_t now = count_distinct(colors);
      if (now <= distinct || now == n_) return;
      distinct = now;
    }
  }

  std::size_t count_distinct(const std::vector<std::uint64_t>& colors) const {
    std::vector<std::uint64_t> sorted(colors.begin() + 1, colors.end());
    std::sort(sorted.begin(), sorted.end());
    return static_cast<std::size_t>(
        std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  }

  /// Individualization-refinement: refine, then split the non-singleton
  /// class with the smallest color by individualizing each member in turn,
  /// keeping the lexicographically smallest complete encoding. The first
  /// branch of every level is always explored, so at least one leaf is
  /// reached regardless of budget.
  void descend(std::vector<std::uint64_t> colors) {
    refine(colors);
    std::uint64_t target_color = 0;
    std::vector<std::size_t> members;
    {
      // Smallest color owning >1 variables — an invariant choice.
      bool found = false;
      for (std::size_t v = 1; v <= n_; ++v) {
        std::size_t same = 0;
        for (std::size_t u = 1; u <= n_; ++u)
          if (colors[u] == colors[v]) ++same;
        if (same > 1 && (!found || colors[v] < target_color)) {
          target_color = colors[v];
          found = true;
        }
      }
      if (found)
        for (std::size_t v = 1; v <= n_; ++v)
          if (colors[v] == target_color) members.push_back(v);
    }
    if (members.empty()) {
      leaf(colors);
      if (leaves_used_ < kMaxLeaves) ++leaves_used_;
      return;
    }
    for (const std::size_t v : members) {
      if (leaves_used_ >= kMaxLeaves && have_best_) break;
      std::vector<std::uint64_t> branched = colors;
      branched[v] = mix64(colors[v] ^ 0xD6E8FEB86659FD93ull);
      descend(std::move(branched));
    }
  }

  void leaf(const std::vector<std::uint64_t>& colors) {
    // Complete ordering: by color, residual ties (hash collisions or budget
    // exhaustion) by original index.
    std::vector<std::size_t> vars(n_);
    for (std::size_t v = 1; v <= n_; ++v) vars[v - 1] = v;
    std::sort(vars.begin(), vars.end(), [&](std::size_t a, std::size_t b) {
      if (colors[a] != colors[b]) return colors[a] < colors[b];
      return a < b;
    });
    std::vector<std::size_t> rank(n_ + 1, 0);
    for (std::size_t i = 0; i < n_; ++i) rank[vars[i]] = i + 1;

    std::vector<ClauseRec> recs;
    recs.reserve(cnf_.clauses().size());
    for (const Clause& clause : cnf_.clauses()) {
      ClauseRec rec;
      rec.wbits = weight_bits(clause.weight);
      rec.keys.reserve(clause.literals.size());
      for (const Literal lit : clause.literals) {
        const auto v = static_cast<std::size_t>(lit < 0 ? -lit : lit);
        rec.keys.push_back(2 * static_cast<std::uint64_t>(rank[v]) +
                           (lit < 0 ? 1u : 0u));
      }
      std::sort(rec.keys.begin(), rec.keys.end());
      recs.push_back(std::move(rec));
    }
    std::sort(recs.begin(), recs.end());

    std::vector<std::uint64_t> flat;
    flat.reserve(3 + 2 * recs.size() + 3 * n_);
    flat.push_back(kCnfEncodingVersion);
    flat.push_back(n_);
    flat.push_back(recs.size());
    for (const ClauseRec& rec : recs) {
      flat.push_back(rec.wbits);
      flat.push_back(rec.keys.size());
      for (const std::uint64_t key : rec.keys) flat.push_back(key);
    }

    if (!have_best_ || flat < best_.flat) {
      best_ = Candidate{std::move(rank), std::move(recs), std::move(flat)};
      have_best_ = true;
    }
  }

  const Cnf& cnf_;
  std::size_t n_;
  /// occurrences_[v] = (clause index, negated) per occurrence of v.
  std::vector<std::vector<std::pair<std::size_t, bool>>> occurrences_;
  Candidate best_;
  bool have_best_ = false;
  std::size_t leaves_used_ = 0;
};

core::Real weight_from_bits(std::uint64_t bits) {
  core::Real w = 0;
  std::memcpy(&w, &bits, sizeof(w));
  return w;
}

std::size_t result_bytes(const DmmResult& r) {
  return sizeof(DmmResult) + r.assignment.size() / 8 +
         r.energy_trace.size() * sizeof(core::Real) +
         r.avalanche_sizes.size() * sizeof(std::size_t);
}

/// Strictly-better ordering used to decide cache write-back: a satisfied
/// result beats any unsatisfied one; among unsatisfied, fewer (lighter)
/// unsatisfied clauses win.
bool improves(const DmmResult& fresh, const DmmResult& cached) {
  if (fresh.satisfied != cached.satisfied) return fresh.satisfied;
  if (fresh.best_unsatisfied != cached.best_unsatisfied)
    return fresh.best_unsatisfied < cached.best_unsatisfied;
  return fresh.best_unsatisfied_weight < cached.best_unsatisfied_weight;
}

}  // namespace

CanonicalCnf canonicalize(const Cnf& cnf) {
  Candidate cand = Canonicalizer(cnf).run();
  const std::size_t n = cnf.num_variables();

  Cnf canonical(n);
  for (const ClauseRec& rec : cand.recs) {
    Clause clause;
    clause.weight = weight_from_bits(rec.wbits);
    clause.literals.reserve(rec.keys.size());
    for (const std::uint64_t key : rec.keys) {
      const auto var = static_cast<Literal>(key >> 1);
      clause.literals.push_back((key & 1) ? -var : var);
    }
    canonical.add_clause(std::move(clause));
  }

  core::HashWriter w;
  for (const std::uint64_t word : cand.flat) w.u64(word);
  return CanonicalCnf{std::move(canonical), std::move(cand.rank), w.finish()};
}

core::HashKey128 dmm_solve_key(const CanonicalCnf& canon,
                               const DmmOptions& options) {
  core::HashWriter w;
  w.u32(kDmmKeyVersion);
  w.u64(canon.hash.hi);
  w.u64(canon.hash.lo);
  const DmmParams& p = options.params;
  w.real(p.alpha);
  w.real(p.beta);
  w.real(p.gamma);
  w.real(p.delta);
  w.real(p.epsilon);
  w.real(p.zeta);
  w.real(p.xl_max);
  w.real(p.dt_min);
  w.real(p.dt_max);
  w.real(p.dv_cap);
  w.real(p.noise_stddev);
  w.u8(p.rigidity ? 1 : 0);
  w.u8(p.long_term_memory ? 1 : 0);
  w.u64(options.max_steps);
  w.u64(options.energy_stride);
  w.u8(options.track_avalanches ? 1 : 0);
  w.u8(options.maxsat_mode ? 1 : 0);
  return w.finish();
}

core::ShardedCache<DmmResult>& dmm_cache() {
  static auto* cache = new core::ShardedCache<DmmResult>([] {
    core::CacheConfig config;
    config.name = "dmm.solve";
    config.max_entries = 4096;
    config.max_bytes = std::size_t{64} << 20;
    return config;
  }());
  return *cache;
}

namespace {

/// orig assignment -> canonical labels (and back with the flag flipped).
Assignment permute_assignment(const Assignment& a,
                              const std::vector<std::size_t>& perm,
                              bool to_canonical) {
  Assignment out(a.size(), false);
  for (std::size_t v = 1; v < a.size(); ++v) {
    if (to_canonical)
      out[perm[v]] = a[v];
    else
      out[v] = a[perm[v]];
  }
  return out;
}

}  // namespace

DmmResult solve_dmm_cached(const Cnf& cnf, const DmmOptions& options,
                           core::Rng& rng) {
  if (!core::cache_enabled())
    return DmmSolver(cnf, options).solve(rng);  // pre-cache path, bit-exact

  const CanonicalCnf canon = canonicalize(cnf);
  const core::HashKey128 key = dmm_solve_key(canon, options);
  const std::size_t n = cnf.num_variables();

  const std::shared_ptr<const DmmResult> cached = dmm_cache().get(key);
  if (cached && cached->assignment.size() == n + 1) {
    if (cached->satisfied) {
      // Deterministic replay: everything but the assignment is
      // label-independent (step counts, traces, energies), and the
      // assignment maps back through the exact permutation.
      DmmResult replay = *cached;
      replay.assignment =
          permute_assignment(cached->assignment, canon.perm, false);
      return replay;
    }
    // Best-known-assignment warm restart: snap initial voltages to the
    // cached best and integrate from there.
    const Assignment warm =
        permute_assignment(cached->assignment, canon.perm, false);
    std::vector<Real> v0(n);
    for (std::size_t v = 1; v <= n; ++v) v0[v - 1] = warm[v] ? 1.0 : -1.0;
    DmmResult fresh = DmmSolver(cnf, options).solve_from(std::move(v0), rng);
    if (improves(fresh, *cached)) {
      auto store = std::make_shared<DmmResult>(fresh);
      store->assignment =
          permute_assignment(fresh.assignment, canon.perm, true);
      dmm_cache().put(key, std::move(store), result_bytes(fresh));
    }
    return fresh;
  }

  DmmResult result = DmmSolver(cnf, options).solve(rng);
  if (result.assignment.size() == n + 1) {
    auto store = std::make_shared<DmmResult>(result);
    store->assignment =
        permute_assignment(result.assignment, canon.perm, true);
    dmm_cache().put(key, std::move(store), result_bytes(result));
  }
  return result;
}

}  // namespace rebooting::memcomputing
