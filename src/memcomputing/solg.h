// Self-Organizing Logic Gates (SOLGs) and circuits of them — Sec. IV's
// building block.
//
// A SOLG is "terminal agnostic": any terminal may be driven, and the gate's
// dynamic correction modules push ALL terminals toward a consistent row of
// the gate's truth table. Assembling SOLGs into the Boolean circuit of a
// problem, pinning the known terminals (e.g. a multiplier's output to the
// integer to factor), and letting the continuous dynamics relax yields the
// unknown terminals (the factors) at the equilibrium — the DMM-as-circuit
// picture of Eqs. 1-2.
//
// The per-gate dynamics implemented here: every satisfying truth-table row r
// attracts the gate's terminal voltages with a softmin weight in the
// distance to r, scaled by a per-gate memory x_g that grows while the gate
// is inconsistent (the "active element feedback") and decays once satisfied.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/types.h"
#include "memcomputing/cnf.h"

namespace rebooting::memcomputing {

using core::Real;

enum class GateType { kAnd, kOr, kNot, kXor, kNand, kNor, kXnor };

std::string to_string(GateType type);

/// Logic value of the gate output for the given inputs (b-size 1 for NOT).
bool gate_truth(GateType type, bool a, bool b);

/// Number of terminals (inputs + output).
std::size_t gate_arity(GateType type);

struct SolgGate {
  GateType type = GateType::kAnd;
  /// Net ids, inputs first, output last (NOT: {in, out}).
  std::vector<std::size_t> terminals;
};

/// Which continuous dynamics relax the circuit.
enum class SolgEngine {
  /// Tseitin-encode the circuit into CNF and run the DMM clause dynamics of
  /// dmm.h — the scalable realization (a CNF clause IS a self-organizing OR
  /// gate). Default.
  kDmm,
  /// Direct per-gate relaxation: every terminal is attracted to the
  /// softmin-nearest satisfying truth-table row, amplified by a per-gate
  /// memory. Transparent and instructive, but prone to freezing on deep
  /// circuits — kept as the didactic engine and for the ablation comparison.
  kNativeRelaxation,
};

struct SolgOptions {
  SolgEngine engine = SolgEngine::kDmm;
  Real softmin_tau = 0.5;     ///< sharpness of the row attraction (native)
  Real memory_rate = 2.0;     ///< gate-memory growth/decay rate (native)
  Real memory_threshold = 0.25;
  Real memory_max = 20.0;
  Real dt_min = 1.0 / 256.0;
  Real dt_max = 1.0;
  Real dv_cap = 0.12;
  Real noise_stddev = 0.02;   ///< small exploration noise (native)
  std::size_t max_steps = 400'000;
  std::size_t restarts = 8;   ///< independent trajectories before giving up
  /// Worker threads for the restart ensemble (0 = hardware concurrency,
  /// 1 = inline serial). Restarts are seeded by counter-based streams, so
  /// the selected solution is identical at any thread count.
  std::size_t threads = 0;
};

struct SolgResult {
  bool consistent = false;       ///< all gates satisfied at digitization
  std::vector<bool> values;      ///< digitized net values
  std::size_t steps = 0;         ///< steps in the successful (or last) run
  std::size_t restarts_used = 0;
  Real residual = 0.0;           ///< final mean gate mismatch
};

/// A circuit of SOLGs over a set of nets.
class SolgCircuit {
 public:
  /// Adds a floating net; returns its id.
  std::size_t add_net();
  /// Adds `count` nets; returns the id of the first (ids are consecutive).
  std::size_t add_nets(std::size_t count);

  /// Pins a net to a logic value (its voltage is held at +/-1).
  void pin(std::size_t net, bool value);
  void unpin(std::size_t net);
  bool is_pinned(std::size_t net) const;

  void add_gate(GateType type, std::vector<std::size_t> terminals);

  std::size_t num_nets() const { return pinned_.size(); }
  std::size_t num_gates() const { return gates_.size(); }
  const std::vector<SolgGate>& gates() const { return gates_; }

  /// True when `values` satisfies every gate relation.
  bool check(const std::vector<bool>& values) const;

  /// Tseitin encoding of the circuit: one CNF variable per net (net i ->
  /// variable i+1), the standard gate clauses, and a unit clause per pinned
  /// net. Satisfying assignments == consistent circuit states.
  Cnf to_cnf() const;

  /// Relaxes the circuit from random initial voltages (restarting up to
  /// opts.restarts times) until every gate is digitally consistent, using
  /// the engine selected in the options. Restarts run as a parallel ensemble
  /// over opts.threads workers: one base seed is drawn from `rng` and restart
  /// i uses core::Rng::stream(base, i), so the returned solution (the
  /// lowest-index consistent restart) does not depend on the thread count.
  SolgResult solve(core::Rng& rng, const SolgOptions& opts = {}) const;

 private:
  SolgResult solve_native(core::Rng& rng, const SolgOptions& opts) const;
  SolgResult solve_dmm(core::Rng& rng, const SolgOptions& opts) const;

  std::vector<SolgGate> gates_;
  std::vector<std::int8_t> pinned_;      // -1 not pinned, else 0/1
};

/// Ripple-carry unsigned multiplier built from SOLGs (AND partial products +
/// full adders from XOR/AND/OR). Exposes the operand and product nets so the
/// circuit runs forward (multiply) or backward (factor) — the terminal-
/// agnostic showcase.
struct MultiplierCircuit {
  SolgCircuit circuit;
  std::vector<std::size_t> a_bits;        ///< LSB first
  std::vector<std::size_t> b_bits;
  std::vector<std::size_t> product_bits;  ///< a_bits + b_bits wide
};

MultiplierCircuit build_multiplier(std::size_t a_width, std::size_t b_width);

/// Factors `n` by pinning the product of an a_width x b_width SOLG
/// multiplier and letting the inputs self-organize. Both operands' LSBs are
/// pinned to 1 (odd factors) when `n` is odd. Returns factors on success.
struct FactorResult {
  bool found = false;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  SolgResult dynamics;
};

FactorResult solg_factor(std::uint64_t n, std::size_t a_width,
                         std::size_t b_width, core::Rng& rng,
                         const SolgOptions& opts = {});

/// Subset sum as a self-organizing algebraic circuit (the integer-linear-
/// programming flavour of ref [48]): selector bits gate each value into an
/// SOLG adder tree whose sum output is pinned to the target; relaxing the
/// circuit finds which subset adds up to it.
struct SubsetSumCircuit {
  SolgCircuit circuit;
  std::vector<std::size_t> selectors;  ///< one net per input value
  std::vector<std::size_t> sum_bits;   ///< LSB first
};

/// Builds the circuit for the given values (each value's bits are hardwired
/// into AND gates with its selector). Sum register is wide enough for the
/// total of all values.
SubsetSumCircuit build_subset_sum(const std::vector<std::uint64_t>& values);

struct SubsetSumResult {
  bool found = false;
  std::vector<bool> selection;  ///< per input value
  std::uint64_t achieved = 0;
  SolgResult dynamics;
};

/// Finds a subset of `values` summing exactly to `target` by pinning the
/// adder-tree output and relaxing. Returns found=false when no subset exists
/// (within the solver budget — the DMM cannot certify infeasibility).
SubsetSumResult solg_subset_sum(const std::vector<std::uint64_t>& values,
                                std::uint64_t target, core::Rng& rng,
                                const SolgOptions& opts = {});

}  // namespace rebooting::memcomputing
