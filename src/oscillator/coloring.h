// Graph vertex coloring via the phase dynamics of coupled oscillators
// (ref [42], Parihar et al., cited by Sec. III as a computer-vision-adjacent
// application of the same arrays).
//
// One oscillator per vertex; every graph edge becomes an anti-phase-favouring
// coupling branch. After the network settles, oscillators that must differ
// (neighbours) sit apart in phase, and clustering the settled phases into k
// circular groups reads out a k-coloring. The method is a heuristic — like
// the hardware it models, it minimizes conflicts rather than certifying
// optimality — so results report the conflict count alongside the coloring.
#pragma once

#include <cstddef>
#include <vector>

#include "core/random.h"
#include "oscillator/network.h"

namespace rebooting::oscillator {

/// Undirected simple graph on vertices [0, n).
struct Graph {
  std::size_t num_vertices = 0;
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  static Graph cycle(std::size_t n);
  static Graph complete(std::size_t n);
  /// Erdos–Renyi G(n, p).
  static Graph random(core::Rng& rng, std::size_t n, core::Real p);

  /// Number of edges whose endpoints share a color.
  std::size_t conflicts(const std::vector<std::size_t>& coloring) const;
};

struct ColoringOptions {
  std::size_t colors = 3;
  Real coupling_r = 15e3;
  Real coupling_c = 1e-12;
  SimulationOptions sim{};
  /// Independent runs with different initial conditions; best kept.
  std::size_t restarts = 3;
};

struct ColoringResult {
  std::vector<std::size_t> coloring;  ///< color per vertex
  std::size_t conflicts = 0;
  std::vector<Real> phases;           ///< settled phase per vertex [rad]
  std::size_t restarts_used = 0;
};

/// Runs the oscillator network for the graph and clusters the settled phases
/// into `colors` circular groups (greedy farthest-first circular clustering).
ColoringResult color_graph(const Graph& graph, const ColoringOptions& opts = {});

/// Classical baseline: greedy coloring in descending-degree order. Returns
/// the coloring (may use more than k colors; the bench reports how many).
std::vector<std::size_t> greedy_coloring(const Graph& graph);

}  // namespace rebooting::oscillator
