#include "oscillator/analysis.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/stats.h"

namespace rebooting::oscillator {

namespace {

struct Window {
  std::size_t first = 0;
  std::size_t count = 0;
};

Window settle_window(std::size_t samples, Real settle_fraction) {
  const auto first =
      static_cast<std::size_t>(settle_fraction * static_cast<Real>(samples));
  if (first >= samples) return {samples, 0};
  return {first, samples - first};
}

Real channel_threshold(std::span<const Real> s) {
  const auto [mn, mx] = std::minmax_element(s.begin(), s.end());
  return 0.5 * (*mn + *mx);
}

}  // namespace

std::vector<Real> rising_edge_times(std::span<const Real> samples, Real t0,
                                    Real dt) {
  std::vector<Real> edges;
  if (samples.size() < 2) return edges;
  const Real thr = channel_threshold(samples);
  // A flat channel has min == max; treat as non-oscillating.
  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  if (*mx - *mn < 1e-12) return edges;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i - 1] < thr && samples[i] >= thr) {
      const Real frac = (thr - samples[i - 1]) / (samples[i] - samples[i - 1]);
      edges.push_back(t0 + dt * (static_cast<Real>(i - 1) + frac));
    }
  }
  return edges;
}

Real estimate_frequency(std::span<const Real> samples, Real t0, Real dt) {
  const auto edges = rising_edge_times(samples, t0, dt);
  if (edges.size() < 2) return 0.0;
  const Real span = edges.back() - edges.front();
  if (span <= 0.0) return 0.0;
  return static_cast<Real>(edges.size() - 1) / span;
}

Real trace_frequency(const Trace& trace, std::size_t osc,
                     Real settle_fraction) {
  const auto& ch = trace.node_voltage.at(osc);
  const auto w = settle_window(ch.size(), settle_fraction);
  if (w.count < 2) return 0.0;
  return estimate_frequency(std::span(ch).subspan(w.first, w.count),
                            trace.time[w.first], trace.dt);
}

bool is_locked(const Trace& trace, std::size_t a, std::size_t b, Real rel_tol,
               Real settle_fraction) {
  const Real fa = trace_frequency(trace, a, settle_fraction);
  const Real fb = trace_frequency(trace, b, settle_fraction);
  if (fa <= 0.0 || fb <= 0.0) return false;
  return std::abs(fa - fb) / (0.5 * (fa + fb)) < rel_tol;
}

Real phase_difference(const Trace& trace, std::size_t a, std::size_t b,
                      Real settle_fraction) {
  const auto& ca = trace.node_voltage.at(a);
  const auto& cb = trace.node_voltage.at(b);
  const auto w = settle_window(ca.size(), settle_fraction);
  if (w.count < 2) return 0.0;
  const Real t0 = trace.time[w.first];
  const auto ea =
      rising_edge_times(std::span(ca).subspan(w.first, w.count), t0, trace.dt);
  const auto eb =
      rising_edge_times(std::span(cb).subspan(w.first, w.count), t0, trace.dt);
  if (ea.size() < 2 || eb.empty()) return 0.0;
  const Real period =
      (ea.back() - ea.front()) / static_cast<Real>(ea.size() - 1);
  if (period <= 0.0) return 0.0;

  // Average the circular lag of each b-edge after its preceding a-edge.
  Real sum_sin = 0.0;
  Real sum_cos = 0.0;
  std::size_t used = 0;
  for (const Real tb : eb) {
    const auto it = std::upper_bound(ea.begin(), ea.end(), tb);
    if (it == ea.begin()) continue;
    const Real lag = tb - *(it - 1);
    const Real angle = core::kTwoPi * lag / period;
    sum_sin += std::sin(angle);
    sum_cos += std::cos(angle);
    ++used;
  }
  if (used == 0) return 0.0;
  Real phase = std::atan2(sum_sin, sum_cos);
  if (phase < 0.0) phase += core::kTwoPi;
  return phase;
}

namespace {

Real xor_average_over(std::span<const Real> a, std::span<const Real> b) {
  const Real tha = channel_threshold(a);
  const Real thb = channel_threshold(b);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool da = a[i] >= tha;
    const bool db = b[i] >= thb;
    if (da != db) ++mismatches;
  }
  return static_cast<Real>(mismatches) / static_cast<Real>(a.size());
}

}  // namespace

Real xor_average(const Trace& trace, std::size_t a, std::size_t b,
                 Real settle_fraction) {
  const auto& ca = trace.node_voltage.at(a);
  const auto& cb = trace.node_voltage.at(b);
  const auto w = settle_window(ca.size(), settle_fraction);
  if (w.count == 0) return 0.0;
  return xor_average_over(std::span(ca).subspan(w.first, w.count),
                          std::span(cb).subspan(w.first, w.count));
}

Real xor_distance_measure(const Trace& trace, std::size_t a, std::size_t b,
                          Real settle_fraction) {
  return 1.0 - xor_average(trace, a, b, settle_fraction);
}

Real xor_distance_measure_windowed(const Trace& trace, std::size_t a,
                                   std::size_t b, std::size_t cycles,
                                   Real settle_fraction) {
  const Real f = trace_frequency(trace, a, settle_fraction);
  if (f <= 0.0 || cycles == 0)
    return xor_distance_measure(trace, a, b, settle_fraction);
  const auto& ca = trace.node_voltage.at(a);
  const auto& cb = trace.node_voltage.at(b);
  const auto w = settle_window(ca.size(), settle_fraction);
  const auto want = static_cast<std::size_t>(
      std::ceil(static_cast<Real>(cycles) / (f * trace.dt)));
  const std::size_t count = std::min(w.count, std::max<std::size_t>(want, 2));
  if (count == 0) return 0.0;
  return 1.0 - xor_average_over(std::span(ca).subspan(w.first, count),
                                std::span(cb).subspan(w.first, count));
}

LkFit fit_lk_exponent(std::span<const Real> deltas,
                      std::span<const Real> measures, Real fit_lo,
                      Real fit_hi) {
  if (deltas.size() != measures.size() || deltas.size() < 5)
    throw std::invalid_argument("fit_lk_exponent: need >= 5 paired points");

  const auto min_it = std::min_element(measures.begin(), measures.end());
  const auto max_it = std::max_element(measures.begin(), measures.end());
  const Real floor = *min_it;
  const Real ceil = *max_it;
  if (!(ceil > floor))
    throw std::invalid_argument("fit_lk_exponent: flat measure curve");
  const auto min_idx =
      static_cast<std::size_t>(std::distance(measures.begin(), min_it));
  const Real delta0 = deltas[min_idx];

  std::vector<Real> xs;
  std::vector<Real> ys;
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const Real rel = (measures[i] - floor) / (ceil - floor);
    if (rel >= fit_lo && rel <= fit_hi && std::abs(deltas[i] - delta0) > 0.0) {
      xs.push_back(std::abs(deltas[i] - delta0));
      ys.push_back(measures[i] - floor);
    }
  }
  if (xs.size() < 3)
    throw std::invalid_argument("fit_lk_exponent: too few points in fit band");

  const auto pf = core::fit_power_law(xs, ys);
  return LkFit{.k = pf.exponent,
               .amplitude = pf.amplitude,
               .delta0 = delta0,
               .r_squared = pf.r_squared,
               .points_used = pf.points_used};
}

namespace {

/// First |d - d0| at which the floor-subtracted measure crosses `level`,
/// scanning outward on one side of index `min_idx`; linear interpolation
/// between samples. `dir` is +1 (right) or -1 (left). Returns 0 if never
/// crossed on this side.
Real crossing_width(std::span<const Real> deltas, std::span<const Real> rel,
                    std::size_t min_idx, int dir, Real level) {
  const Real d0 = deltas[min_idx];
  Real prev_h = rel[min_idx];
  Real prev_w = 0.0;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(min_idx) + dir;
       i >= 0 && i < static_cast<std::ptrdiff_t>(deltas.size()); i += dir) {
    const auto idx = static_cast<std::size_t>(i);
    const Real h = rel[idx];
    const Real w = std::abs(deltas[idx] - d0);
    if (h >= level) {
      if (h == prev_h) return w;
      const Real frac = (level - prev_h) / (h - prev_h);
      return prev_w + frac * (w - prev_w);
    }
    prev_h = h;
    prev_w = w;
  }
  return 0.0;
}

}  // namespace

Real estimate_lk_by_widths(std::span<const Real> deltas,
                           std::span<const Real> measures, Real f1, Real f2) {
  if (deltas.size() != measures.size() || deltas.size() < 5)
    throw std::invalid_argument("estimate_lk_by_widths: need >= 5 points");
  if (!(0.0 < f1 && f1 < f2 && f2 < 1.0))
    throw std::invalid_argument("estimate_lk_by_widths: need 0 < f1 < f2 < 1");

  const auto min_it = std::min_element(measures.begin(), measures.end());
  const auto max_it = std::max_element(measures.begin(), measures.end());
  const Real floor = *min_it;
  const Real height = *max_it - floor;
  if (height <= 0.0)
    throw std::invalid_argument("estimate_lk_by_widths: flat curve");
  const auto min_idx =
      static_cast<std::size_t>(std::distance(measures.begin(), min_it));

  std::vector<Real> rel(measures.size());
  for (std::size_t i = 0; i < measures.size(); ++i)
    rel[i] = (measures[i] - floor) / height;

  auto width_at = [&](Real f) {
    const Real wr = crossing_width(deltas, rel, min_idx, +1, f);
    const Real wl = crossing_width(deltas, rel, min_idx, -1, f);
    if (wr > 0.0 && wl > 0.0) return 0.5 * (wr + wl);
    return std::max(wr, wl);
  };
  const Real w1 = width_at(f1);
  const Real w2 = width_at(f2);
  if (w1 <= 0.0 || w2 <= w1)
    throw std::invalid_argument(
        "estimate_lk_by_widths: levels not crossed in order");
  return std::log(f2 / f1) / std::log(w2 / w1);
}

}  // namespace rebooting::oscillator
