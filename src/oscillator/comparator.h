// The analog comparison primitive of Sec. III-B: a pair of RC-coupled VO2
// oscillators whose gate voltages encode the two values under comparison and
// whose thresholded time-averaged XOR readout yields a monotone distance
// measure approximating |a - b|^k (Fig. 5).
//
// Running the full pair ODE for every pixel comparison would make the vision
// benchmarks needlessly slow, so the comparator is calibrated once: the
// measure-vs-delta curve is sampled by simulation and interpolated
// afterwards. The exact simulated path is kept for verification
// (distance_simulated) and the calibration also yields the power/energy
// figures used in the Sec. III-B power comparison.
#pragma once

#include <cstddef>
#include <vector>

#include "core/accelerator.h"
#include "core/types.h"
#include "oscillator/analysis.h"
#include "oscillator/network.h"

namespace rebooting::oscillator {

using core::Real;

struct ComparatorConfig {
  OscillatorParams params{};
  Real coupling_r = 15.0e3;   ///< Rc [ohm]; smaller = stronger coupling
  Real coupling_c = 1.0e-12;  ///< Cc [F]
  CouplingTopology topology = CouplingTopology::kSeriesRC;
  /// Inputs in [0, 1] map linearly onto [vgs_center - vgs_half_span,
  /// vgs_center + vgs_half_span]. The default center sits in the linear
  /// part of the f(Vgs) tuning curve, where the measure is a clean monotone
  /// distance (k ~ 1); centers near the tuning-curve extremum give the
  /// strongly nonlinear norms of Fig. 5.
  Real vgs_center = 1.0;
  Real vgs_half_span = 0.15;
  /// Calibration grid: number of delta-Vgs samples on each side of zero.
  std::size_t calibration_points = 17;
  SimulationOptions sim{};
  /// Cycles averaged by the XOR readout (the ref [44] accuracy/latency knob).
  std::size_t readout_cycles = 32;
};

/// Calibration product: the measured distance curve and the electrical
/// figures extracted alongside it.
struct ComparatorCalibration {
  std::vector<Real> delta_vgs;  ///< sorted sample grid
  std::vector<Real> measure;    ///< [1 - Avg(XOR)] at each delta
  Real pair_power_watts = 0.0;  ///< mean supply power of the two oscillators
  Real oscillation_hz = 0.0;    ///< locked frequency at delta = 0
  LkFit norm_fit{};             ///< lk exponent fitted to the curve
};

class OscillatorComparator {
 public:
  /// Runs the calibration sweep (2*calibration_points+1 pair simulations).
  explicit OscillatorComparator(ComparatorConfig config);

  const ComparatorConfig& config() const { return config_; }
  const ComparatorCalibration& calibration() const { return calibration_; }

  /// Distance measure for inputs a, b in [0, 1], via the calibrated curve
  /// (linear interpolation, monotonized away from the minimum). Output is in
  /// [0, 1]: ~0 for equal inputs.
  Real distance(Real a, Real b) const;

  /// Same comparison done by a full pair simulation (slow; used by tests to
  /// bound the interpolation error).
  Real distance_simulated(Real a, Real b) const;

  /// Measure value that corresponds to an input difference of `delta_input`
  /// (in input units), i.e. the decision threshold the vision pipeline should
  /// use to emulate "differs by more than delta_input".
  Real threshold_for_input_delta(Real delta_input) const;

  /// Average electrical power of one comparison unit: the oscillator pair
  /// plus the XOR readout logic clocked at the oscillation frequency [W].
  Real unit_power_watts() const;

  /// Time one comparison takes: readout_cycles / oscillation frequency [s].
  Real comparison_seconds() const;

  /// Energy per comparison [J].
  Real energy_per_comparison() const { return unit_power_watts() * comparison_seconds(); }

 private:
  Real input_to_vgs(Real x) const;
  Real interpolate_measure(Real delta_vgs) const;

  ComparatorConfig config_;
  ComparatorCalibration calibration_;
  std::vector<Real> monotone_measure_;  ///< measure made non-decreasing in |delta|
  Real readout_power_watts_ = 0.0;
};

/// The Sec. III accelerator as seen by the Fig. 1 host system.
class OscillatorAccelerator final : public core::Accelerator {
 public:
  explicit OscillatorAccelerator(ComparatorConfig config)
      : comparator_(std::move(config)) {}

  std::string name() const override { return "VO2 coupled-oscillator array"; }
  core::AcceleratorKind kind() const override {
    return core::AcceleratorKind::kOscillator;
  }
  std::vector<std::string> stack_layers() const override {
    return {"Vision application (FAST corner detection)",
            "Distance-norm comparison mapping",
            "Gate-voltage (Vgs) input encoding",
            "Coupled VO2 relaxation-oscillator pairs",
            "Threshold-XOR time-averaged readout"};
  }

  const OscillatorComparator& comparator() const { return comparator_; }

  /// Factory for sched::Scheduler worker pools. Note each replica runs its
  /// own calibration sweep at construction, so pool setup scales with the
  /// worker count; keep calibration_points small for large pools.
  static core::AcceleratorFactory factory(ComparatorConfig config) {
    return [config]() -> std::shared_ptr<core::Accelerator> {
      return std::make_shared<OscillatorAccelerator>(config);
    };
  }

 private:
  OscillatorComparator comparator_;
};

}  // namespace rebooting::oscillator
