// Device models for the Sec. III substrate: the hysteretic VO2
// insulator-metal-transition (IMT) resistor and the series MOSFET that tunes
// the oscillation frequency.
//
// A VO2 film switches abruptly from an insulating phase (high resistance) to
// a metallic phase (low resistance) when the voltage across it exceeds an
// IMT threshold, and back when it falls below the (lower) MIT threshold —
// the hysteresis window that enables relaxation oscillation in the 1T1R
// configuration of Fig. 3. Parameter ranges follow the cited
// Shukla/Parihar/Datta hybrid VO2-MOSFET oscillator papers.
#pragma once

#include <stdexcept>

#include "core/types.h"

namespace rebooting::oscillator {

using core::Real;

/// Phase of the VO2 film.
enum class Vo2Phase { kInsulating, kMetallic };

/// Hysteretic two-state VO2 resistor.
struct Vo2Device {
  Real r_insulating = 680.0e3;  ///< resistance in the insulating phase [ohm]
  Real r_metallic = 25.0e3;     ///< resistance in the metallic phase [ohm]
  Real v_imt = 1.4;             ///< insulator->metal trigger voltage [V]
  Real v_mit = 0.6;             ///< metal->insulator release voltage [V]

  /// Validates the hysteresis window (v_mit < v_imt, resistances ordered).
  void validate() const {
    if (!(r_insulating > r_metallic) || r_metallic <= 0.0)
      throw std::invalid_argument("Vo2Device: need r_insulating > r_metallic > 0");
    if (!(v_imt > v_mit) || v_mit <= 0.0)
      throw std::invalid_argument("Vo2Device: need v_imt > v_mit > 0");
  }

  Real resistance(Vo2Phase phase) const {
    return phase == Vo2Phase::kInsulating ? r_insulating : r_metallic;
  }

  /// Applies the hysteretic switching rule for the voltage currently across
  /// the device; returns the (possibly updated) phase.
  Vo2Phase next_phase(Vo2Phase phase, Real v_across) const {
    if (phase == Vo2Phase::kInsulating && v_across >= v_imt)
      return Vo2Phase::kMetallic;
    if (phase == Vo2Phase::kMetallic && v_across <= v_mit)
      return Vo2Phase::kInsulating;
    return phase;
  }
};

/// Series MOSFET operated in the triode region as a gate-voltage-controlled
/// resistor: channel conductance g = k_triode * (vgs - vth), clamped at a
/// floor so the device never becomes a perfect open circuit (sub-threshold
/// leakage).
struct SeriesTransistor {
  Real k_triode = 1.3e-5;   ///< transconductance density [S/V]
  Real vth = 0.4;           ///< threshold voltage [V]
  Real g_leak = 1.0e-7;     ///< off-state conductance floor [S]

  void validate() const {
    if (k_triode <= 0.0 || g_leak <= 0.0)
      throw std::invalid_argument("SeriesTransistor: conductances must be > 0");
  }

  Real conductance(Real vgs) const {
    const Real overdrive = vgs - vth;
    return overdrive > 0.0 ? k_triode * overdrive + g_leak : g_leak;
  }

  Real resistance(Real vgs) const { return 1.0 / conductance(vgs); }
};

/// Full parameter set of one 1T1R relaxation oscillator (Fig. 3 inset):
/// Vdd — VO2 — output node (capacitance c_node) — MOSFET — ground.
struct OscillatorParams {
  Vo2Device vo2{};
  SeriesTransistor transistor{};
  Real vdd = 2.5;          ///< supply [V]
  Real c_node = 2.0e-12;   ///< output-node capacitance [F]

  void validate() const {
    vo2.validate();
    transistor.validate();
    if (vdd <= vo2.v_imt)
      throw std::invalid_argument(
          "OscillatorParams: vdd must exceed the IMT threshold for oscillation");
    if (c_node <= 0.0)
      throw std::invalid_argument("OscillatorParams: c_node must be > 0");
  }

  /// Checks the load-line condition of Sec. III-A: the series resistance must
  /// bias the device inside the hysteretic (unstable) window in both phases,
  /// i.e. the insulating divider must trip the IMT and the metallic divider
  /// must fall below it so neither phase has a stable operating point.
  bool sustains_oscillation(Real vgs) const;
};

}  // namespace rebooting::oscillator
