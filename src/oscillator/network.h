// Coupled relaxation-oscillator network simulator (Sec. III-A).
//
// N identical 1T1R VO2 oscillators, each with its own gate voltage Vgs
// (the information input), pairwise coupled at their output nodes through
// series RC branches. The continuous dynamics are the node-capacitor charge
// equations; the VO2 phase of each oscillator is a discrete hysteresis state
// handled as a switching event applied at step boundaries (the integration
// step is ~2000x shorter than the oscillation period, so boundary switching
// stays well inside the integration error).
#pragma once

#include <cstddef>
#include <vector>

#include "core/dynamics.h"
#include "core/types.h"
#include "oscillator/vo2.h"

namespace rebooting::oscillator {

using core::Real;

/// How the "simple resistive and capacitive elements" of Fig. 3 are wired
/// between two output nodes.
enum class CouplingTopology {
  /// R in series with C: one branch current (va - vb - vcap)/R, one extra
  /// state (the branch capacitor voltage). Decreasing Rc strengthens the
  /// anti-phase capacitive coupling — the Fig. 5 coupling-strength knob.
  kSeriesRC,
  /// R and C in parallel, both bridging the nodes directly. The capacitive
  /// path favours anti-phase locking, the resistive path in-phase; kept for
  /// the coupling-topology ablation. Bridging capacitors make the node
  /// capacitance matrix non-diagonal (handled by one LU per run).
  kParallelRC,
};

struct CouplingBranch {
  std::size_t a = 0;
  std::size_t b = 1;
  Real r = 20.0e3;   ///< coupling resistance Rc [ohm]
  Real c = 1.0e-12;  ///< coupling capacitance Cc [F]
  CouplingTopology topology = CouplingTopology::kSeriesRC;
};

/// Sampled output of a network simulation: per-oscillator node-voltage traces
/// plus the instantaneous supply current (for power accounting).
struct Trace {
  Real dt = 0.0;                               ///< sample spacing [s]
  std::vector<Real> time;                      ///< sample instants [s]
  std::vector<std::vector<Real>> node_voltage; ///< [oscillator][sample]
  std::vector<Real> supply_current;            ///< total Idd at each sample [A]

  std::size_t oscillators() const { return node_voltage.size(); }
  std::size_t samples() const { return time.size(); }
};

struct SimulationOptions {
  Real duration = 60.0e-6;   ///< simulated time [s]
  Real dt = 0.5e-9;          ///< integration step [s]
  std::size_t sample_stride = 4;  ///< record every k-th step
  /// Discard this leading fraction of the trace before analysis windows are
  /// taken (start-up transient).
  Real settle_fraction = 0.3;
  /// Initial node voltage given to odd-indexed oscillators [V]. Varying this
  /// across repeated runs decorrelates the residual phase wobble, so
  /// averaged readout curves are smooth; offsets >= 0.8 V reliably land a
  /// matched pair in the anti-phase basin across the coupling range.
  Real initial_offset = 1.2;
};

/// The coupled-oscillator array. All oscillators share one device parameter
/// set (matched devices, as in the experiments of ref [40]); per-oscillator
/// mismatch enters through the individual gate voltages.
class CoupledOscillatorNetwork {
 public:
  CoupledOscillatorNetwork(OscillatorParams params, std::size_t n);

  void set_gate_voltage(std::size_t osc, Real vgs);
  Real gate_voltage(std::size_t osc) const { return vgs_.at(osc); }

  void add_coupling(CouplingBranch branch);
  const std::vector<CouplingBranch>& couplings() const { return branches_; }

  std::size_t size() const { return vgs_.size(); }
  const OscillatorParams& params() const { return params_; }

  /// Integrates the network from a cold start (all nodes at 0 V, all devices
  /// insulating, staggered tiny initial offsets so ties break
  /// deterministically) and returns the sampled trace.
  Trace simulate(const SimulationOptions& opts) const;

  /// As above with caller-owned scratch: state and stepper storage come from
  /// the workspace, so ensemble sweeps (coupling scans, Vgs grids) reuse one
  /// arena per worker thread instead of allocating per run. Implemented as
  /// one unlimited slice of simulate_slice.
  Trace simulate(const SimulationOptions& opts, core::Workspace& ws) const;

  // --- Preemptible / checkpointable execution (DESIGN.md §12) ---

  /// Packs the cold-start state (initial node offsets, insulating devices,
  /// the t = 0 trace sample) into a fresh "oscillator" checkpoint. The
  /// checkpoint carries node+branch voltages, VO2 phases, the hysteresis
  /// tally, and the partial Trace, so a resumed run — on any thread or
  /// process — continues bit-exactly.
  core::Checkpoint begin_simulation(const SimulationOptions& opts) const;

  /// Advances a checkpointed simulation by at most `budget` steps/seconds
  /// (the same `opts` must be passed to every slice). Returns true when the
  /// full duration has been integrated; an unlimited budget finishes in one
  /// call. N bounded slices produce exactly the Trace of one unlimited one.
  bool simulate_slice(core::Checkpoint& ckpt, const SimulationOptions& opts,
                      const core::SliceBudget& budget,
                      core::Workspace& ws) const;

  /// Rebuilds the sampled Trace accumulated in a checkpoint (partial if the
  /// simulation has not finished). Throws std::invalid_argument on a foreign
  /// or corrupt checkpoint.
  Trace trace_from_checkpoint(const core::Checkpoint& ckpt,
                              const SimulationOptions& opts) const;

  /// Average power drawn from the supply over the post-settle window of a
  /// trace [W]: vdd * mean(Idd).
  Real average_power(const Trace& trace, Real settle_fraction) const;

 private:
  OscillatorParams params_;
  std::vector<Real> vgs_;
  std::vector<CouplingBranch> branches_;
};

/// Convenience single-oscillator wrapper used for frequency-vs-Vgs
/// characterisation (the tuning curve that makes Vgs an input encoding).
class RelaxationOscillator {
 public:
  explicit RelaxationOscillator(OscillatorParams params);

  /// Simulates the free-running oscillator at the given gate voltage and
  /// returns its trace.
  Trace simulate(Real vgs, const SimulationOptions& opts) const;

  const OscillatorParams& params() const { return params_; }

 private:
  OscillatorParams params_;
};

}  // namespace rebooting::oscillator
