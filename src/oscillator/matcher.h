// Associative template matching on the oscillator distance norm — the
// "degree of matching ... for pattern recognition, clustering, and text
// recognition" co-processor of ref [44] that Sec. III cites as the
// motivating application class.
//
// A query vector is compared against every stored template, one analog
// distance evaluation per component (all components of one comparison run on
// parallel oscillator pairs in hardware). The aggregate measure approximates
// an lk norm of the component-wise differences, so ranking by it is
// nearest-neighbour matching.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "oscillator/comparator.h"

namespace rebooting::oscillator {

/// Feature vectors with components in [0, 1] (the comparator input range).
using Feature = std::vector<Real>;

struct MatchRank {
  std::size_t template_index = 0;
  Real aggregate_distance = 0.0;  ///< mean component measure, in [0, 1]
};

struct MatcherStats {
  std::size_t comparisons = 0;          ///< analog distance evaluations
  Real energy_joules = 0.0;             ///< comparisons x unit energy
  Real latency_seconds = 0.0;           ///< with per-template parallelism
};

class TemplateMatcher {
 public:
  /// Borrows the calibrated comparator (shared with the vision pipeline).
  explicit TemplateMatcher(const OscillatorComparator& comparator)
      : comparator_(comparator) {}

  /// Stores a template; returns its index. All templates must share the
  /// dimension of the first one.
  std::size_t add_template(Feature feature);
  std::size_t size() const { return templates_.size(); }
  std::size_t dimension() const {
    return templates_.empty() ? 0 : templates_.front().size();
  }

  /// Distances of the query to every template, sorted ascending (best match
  /// first). Throws std::invalid_argument on dimension mismatch or an empty
  /// store. `stats`, if given, accumulates the energy/latency account: the
  /// hardware evaluates one template's components in parallel, so latency is
  /// one comparison window per template.
  std::vector<MatchRank> rank(const Feature& query,
                              MatcherStats* stats = nullptr) const;

  /// Index of the nearest template.
  std::size_t best_match(const Feature& query,
                         MatcherStats* stats = nullptr) const;

  /// One-shot k-medoid-style clustering of the stored templates using the
  /// analog distance: assigns each template to the nearest of `k` medoids
  /// chosen greedily (farthest-first traversal). Returns the cluster index
  /// per template. Demonstrates the ref [44] "clustering" use.
  std::vector<std::size_t> cluster(std::size_t k,
                                   MatcherStats* stats = nullptr) const;

 private:
  Real aggregate_distance(const Feature& a, const Feature& b,
                          MatcherStats* stats) const;

  const OscillatorComparator& comparator_;
  std::vector<Feature> templates_;
};

/// Encodes ASCII text into features for the "text recognition" use of
/// ref [44]: each character maps to its normalized code point, so similar
/// strings are close in the component-wise norm. Fixed width: truncates or
/// pads with zeros.
Feature text_to_feature(const std::string& text, std::size_t width);

}  // namespace rebooting::oscillator
