#include "oscillator/matcher.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rebooting::oscillator {

std::size_t TemplateMatcher::add_template(Feature feature) {
  if (feature.empty())
    throw std::invalid_argument("add_template: empty feature");
  if (!templates_.empty() && feature.size() != templates_.front().size())
    throw std::invalid_argument("add_template: dimension mismatch");
  templates_.push_back(std::move(feature));
  return templates_.size() - 1;
}

Real TemplateMatcher::aggregate_distance(const Feature& a, const Feature& b,
                                         MatcherStats* stats) const {
  Real sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    sum += comparator_.distance(a[i], b[i]);
  if (stats) {
    stats->comparisons += a.size();
    stats->energy_joules +=
        static_cast<Real>(a.size()) * comparator_.energy_per_comparison();
    // All components of one template comparison run on parallel pairs.
    stats->latency_seconds += comparator_.comparison_seconds();
  }
  return sum / static_cast<Real>(a.size());
}

std::vector<MatchRank> TemplateMatcher::rank(const Feature& query,
                                             MatcherStats* stats) const {
  if (templates_.empty()) throw std::invalid_argument("rank: no templates");
  if (query.size() != dimension())
    throw std::invalid_argument("rank: query dimension mismatch");
  std::vector<MatchRank> ranks;
  ranks.reserve(templates_.size());
  for (std::size_t t = 0; t < templates_.size(); ++t)
    ranks.push_back({t, aggregate_distance(query, templates_[t], stats)});
  std::stable_sort(ranks.begin(), ranks.end(),
                   [](const MatchRank& x, const MatchRank& y) {
                     return x.aggregate_distance < y.aggregate_distance;
                   });
  return ranks;
}

std::size_t TemplateMatcher::best_match(const Feature& query,
                                        MatcherStats* stats) const {
  return rank(query, stats).front().template_index;
}

std::vector<std::size_t> TemplateMatcher::cluster(std::size_t k,
                                                  MatcherStats* stats) const {
  if (k == 0 || k > templates_.size())
    throw std::invalid_argument("cluster: need 0 < k <= template count");
  // Farthest-first medoid seeding.
  std::vector<std::size_t> medoids{0};
  while (medoids.size() < k) {
    std::size_t farthest = 0;
    Real best = -1.0;
    for (std::size_t t = 0; t < templates_.size(); ++t) {
      Real nearest = std::numeric_limits<Real>::max();
      for (const std::size_t m : medoids)
        nearest = std::min(
            nearest, aggregate_distance(templates_[t], templates_[m], stats));
      if (nearest > best) {
        best = nearest;
        farthest = t;
      }
    }
    medoids.push_back(farthest);
  }
  // Assign every template to the closest medoid.
  std::vector<std::size_t> assignment(templates_.size(), 0);
  for (std::size_t t = 0; t < templates_.size(); ++t) {
    Real nearest = std::numeric_limits<Real>::max();
    for (std::size_t c = 0; c < medoids.size(); ++c) {
      const Real d =
          aggregate_distance(templates_[t], templates_[medoids[c]], stats);
      if (d < nearest) {
        nearest = d;
        assignment[t] = c;
      }
    }
  }
  return assignment;
}

Feature text_to_feature(const std::string& text, std::size_t width) {
  if (width == 0) throw std::invalid_argument("text_to_feature: zero width");
  Feature f(width, 0.0);
  for (std::size_t i = 0; i < width && i < text.size(); ++i) {
    const auto code = static_cast<unsigned char>(text[i]);
    // Printable ASCII mapped into [0, 1]; other bytes clamp to the ends.
    f[i] = std::clamp((static_cast<Real>(code) - 32.0) / 95.0, 0.0, 1.0);
  }
  return f;
}

}  // namespace rebooting::oscillator
