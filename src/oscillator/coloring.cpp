#include "oscillator/coloring.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "oscillator/analysis.h"

namespace rebooting::oscillator {

Graph Graph::cycle(std::size_t n) {
  if (n < 3) throw std::invalid_argument("Graph::cycle: need n >= 3");
  Graph g{n, {}};
  for (std::size_t i = 0; i < n; ++i) g.edges.emplace_back(i, (i + 1) % n);
  return g;
}

Graph Graph::complete(std::size_t n) {
  Graph g{n, {}};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) g.edges.emplace_back(i, j);
  return g;
}

Graph Graph::random(core::Rng& rng, std::size_t n, core::Real p) {
  Graph g{n, {}};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(p)) g.edges.emplace_back(i, j);
  return g;
}

std::size_t Graph::conflicts(const std::vector<std::size_t>& coloring) const {
  if (coloring.size() != num_vertices)
    throw std::invalid_argument("conflicts: coloring size mismatch");
  std::size_t bad = 0;
  for (const auto& [a, b] : edges)
    if (coloring[a] == coloring[b]) ++bad;
  return bad;
}

namespace {

/// Circular distance between two phases [rad].
Real circ_dist(Real a, Real b) {
  Real d = std::abs(a - b);
  return std::min(d, core::kTwoPi - d);
}

/// Clusters phases into k circular groups: farthest-first center seeding,
/// then nearest-center assignment.
std::vector<std::size_t> cluster_phases(const std::vector<Real>& phases,
                                        std::size_t k) {
  std::vector<Real> centers{phases.front()};
  while (centers.size() < k) {
    std::size_t farthest = 0;
    Real best = -1.0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
      Real nearest = 1e300;
      for (const Real c : centers) nearest = std::min(nearest, circ_dist(phases[i], c));
      if (nearest > best) {
        best = nearest;
        farthest = i;
      }
    }
    centers.push_back(phases[farthest]);
  }
  std::vector<std::size_t> assignment(phases.size(), 0);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    Real nearest = 1e300;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      const Real d = circ_dist(phases[i], centers[c]);
      if (d < nearest) {
        nearest = d;
        assignment[i] = c;
      }
    }
  }
  return assignment;
}

}  // namespace

ColoringResult color_graph(const Graph& graph, const ColoringOptions& opts) {
  if (graph.num_vertices < 2)
    throw std::invalid_argument("color_graph: need >= 2 vertices");
  if (opts.colors < 2)
    throw std::invalid_argument("color_graph: need >= 2 colors");

  ColoringResult best;
  best.conflicts = graph.edges.size() + 1;

  for (std::size_t attempt = 0;
       attempt < std::max<std::size_t>(1, opts.restarts); ++attempt) {
    CoupledOscillatorNetwork net(OscillatorParams{}, graph.num_vertices);
    for (const auto& [a, b] : graph.edges)
      net.add_coupling(
          {.a = a, .b = b, .r = opts.coupling_r, .c = opts.coupling_c});

    SimulationOptions sim = opts.sim;
    // Vary initial conditions across restarts.
    sim.initial_offset = 0.8 + 0.4 * static_cast<Real>(attempt % 3);
    const Trace trace = net.simulate(sim);

    std::vector<Real> phases(graph.num_vertices, 0.0);
    for (std::size_t v = 1; v < graph.num_vertices; ++v)
      phases[v] = phase_difference(trace, 0, v, sim.settle_fraction);

    const auto coloring = cluster_phases(phases, opts.colors);
    const std::size_t bad = graph.conflicts(coloring);
    if (bad < best.conflicts) {
      best.coloring = coloring;
      best.conflicts = bad;
      best.phases = phases;
      best.restarts_used = attempt;
      if (bad == 0) break;
    }
  }
  return best;
}

std::vector<std::size_t> greedy_coloring(const Graph& graph) {
  std::vector<std::size_t> degree(graph.num_vertices, 0);
  std::vector<std::vector<std::size_t>> adj(graph.num_vertices);
  for (const auto& [a, b] : graph.edges) {
    ++degree[a];
    ++degree[b];
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<std::size_t> order(graph.num_vertices);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return degree[x] > degree[y];
                   });
  constexpr std::size_t kUncolored = static_cast<std::size_t>(-1);
  std::vector<std::size_t> coloring(graph.num_vertices, kUncolored);
  for (const std::size_t v : order) {
    std::vector<bool> used(graph.num_vertices + 1, false);
    for (const std::size_t u : adj[v])
      if (coloring[u] != kUncolored) used[coloring[u]] = true;
    std::size_t c = 0;
    while (used[c]) ++c;
    coloring[v] = c;
  }
  return coloring;
}

}  // namespace rebooting::oscillator
