// Waveform analysis for the oscillator engine: frequency estimation,
// frequency-locking detection (Fig. 3), phase difference, the thresholded
// time-averaged XOR readout (Fig. 4), and lk-norm exponent extraction
// (Fig. 5).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.h"
#include "oscillator/network.h"

namespace rebooting::oscillator {

using core::Real;

/// Interpolated rising-edge crossing times of `samples` through the midpoint
/// between its min and max over the analysis window. `t0` and `dt` locate the
/// samples in time. Returns an empty vector when the channel never crosses
/// (no oscillation).
std::vector<Real> rising_edge_times(std::span<const Real> samples, Real t0,
                                    Real dt);

/// Mean oscillation frequency from rising-edge spacing [Hz]; 0 when fewer
/// than two edges exist.
Real estimate_frequency(std::span<const Real> samples, Real t0, Real dt);

/// Frequency of channel `osc` over the post-settle window of a trace.
Real trace_frequency(const Trace& trace, std::size_t osc,
                     Real settle_fraction = 0.3);

/// Two channels are frequency-locked when their estimated frequencies agree
/// to within `rel_tol` (both must actually oscillate).
bool is_locked(const Trace& trace, std::size_t a, std::size_t b,
               Real rel_tol = 5e-3, Real settle_fraction = 0.3);

/// Mean phase of channel b relative to channel a, in radians in [0, 2*pi),
/// computed from rising-edge lags modulo the period. Anti-phase locking (the
/// natural state of a matched capacitively-coupled pair) reads ~pi.
Real phase_difference(const Trace& trace, std::size_t a, std::size_t b,
                      Real settle_fraction = 0.3);

/// The Fig. 4 readout: binarize both waveforms at their window midpoints,
/// XOR, time-average. Returns Avg(XOR) in [0, 1].
Real xor_average(const Trace& trace, std::size_t a, std::size_t b,
                 Real settle_fraction = 0.3);

/// The paper's distance measure [1 - Avg(XOR)]: ~0 for matched (anti-phase
/// locked) inputs, growing with |delta Vgs| following an lk-norm profile.
Real xor_distance_measure(const Trace& trace, std::size_t a, std::size_t b,
                          Real settle_fraction = 0.3);

/// Readout with a finite averaging window of `cycles` oscillation periods
/// (the accuracy-tunable knob of ref [44]): fewer cycles = faster but
/// noisier measure.
Real xor_distance_measure_windowed(const Trace& trace, std::size_t a,
                                   std::size_t b, std::size_t cycles,
                                   Real settle_fraction = 0.3);

/// Fits measure(delta) ~ amplitude * |delta - delta0|^k around the curve
/// minimum, using the points whose measure lies between `fit_lo` and
/// `fit_hi` times the curve's maximum (this excludes the flat bottom and the
/// irregular lock-range edge, as in Fig. 5). Throws std::invalid_argument if
/// fewer than 3 points qualify.
struct LkFit {
  Real k = 0.0;          ///< fitted norm exponent
  Real amplitude = 0.0;
  Real delta0 = 0.0;     ///< location of the measure minimum
  Real r_squared = 0.0;
  std::size_t points_used = 0;
};

LkFit fit_lk_exponent(std::span<const Real> deltas,
                      std::span<const Real> measures, Real fit_lo = 0.05,
                      Real fit_hi = 0.7);

/// Robust exponent estimate from level-crossing widths: for a power-law rise
/// m = floor + a*|d|^k, the half-widths w(f) at which the curve reaches a
/// fraction f of its height satisfy k = ln(f2/f1) / ln(w(f2)/w(f1)). Using
/// interpolated crossings at f1/f2 of the (floor-subtracted) height makes the
/// estimate insensitive to floor noise, which dominates the regression-based
/// fit on simulated curves. Half-widths are averaged over both sides of the
/// minimum. Throws std::invalid_argument if either level is never crossed.
Real estimate_lk_by_widths(std::span<const Real> deltas,
                           std::span<const Real> measures, Real f1 = 0.2,
                           Real f2 = 0.6);

}  // namespace rebooting::oscillator
