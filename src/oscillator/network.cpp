#include "oscillator/network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/dynamics.h"
#include "core/linalg.h"
#include "telemetry/telemetry.h"

namespace rebooting::oscillator {

namespace {

// Static-dispatch RHS of the node-charge equations. The state is
// [node voltages | series-branch capacitor voltages]; the VO2 phases are
// *not* part of the continuous state — the simulate loop owns them and flips
// them between steps, so within one step the kernel sees frozen resistances.
struct NetworkKernel {
  std::size_t n;
  Real vdd;
  const OscillatorParams& params;
  const std::vector<CouplingBranch>& branches;
  const std::vector<std::size_t>& series_state;
  const std::vector<Real>& g_tr;
  const std::vector<Vo2Phase>& phases;
  const core::LuFactorization& cap_lu;

  void rhs(Real /*t*/, std::span<const Real> s, std::span<Real> ds) const {
    // Currents into each node: VO2 charging minus MOSFET discharge...
    for (std::size_t i = 0; i < n; ++i) {
      const Real g_dev = 1.0 / params.vo2.resistance(phases[i]);
      ds[i] = (vdd - s[i]) * g_dev - s[i] * g_tr[i];
    }
    // ...plus the coupling branch currents.
    for (std::size_t b = 0; b < branches.size(); ++b) {
      const auto& br = branches[b];
      if (br.topology == CouplingTopology::kSeriesRC) {
        const std::size_t vc = series_state[b];
        const Real i_branch = (s[br.a] - s[br.b] - s[vc]) / br.r;
        ds[br.a] -= i_branch;
        ds[br.b] += i_branch;
        ds[vc] = i_branch / br.c;
      } else {
        const Real i_r = (s[br.a] - s[br.b]) / br.r;
        ds[br.a] -= i_r;
        ds[br.b] += i_r;
      }
    }
    // Capacitance-matrix solve turns node currents into voltage rates; the
    // series-branch capacitor rates are already final.
    cap_lu.solve_in_place(ds.subspan(0, n));
  }
};

// Checkpoint layout for tag "oscillator":
//   state    = [node voltages | series-branch capacitor voltages]
//   step     = completed integration steps, t = step * opts.dt
//   flags    = [finished, phase[n] (0 = insulating, 1 = metallic)]
//   counters = [hysteresis_events, samples, n, n_series]
//   aux      = packed partial Trace: [time[S] | supply[S] | node0[S] | ...]
// The sampled trace rides inside the checkpoint so a killed-and-resumed run
// reproduces the full Trace, not just the final state.
constexpr const char kOscTag[] = "oscillator";
constexpr std::size_t kFlagFinished = 0;
constexpr std::size_t kFlagPhase = 1;
constexpr std::size_t kCtrHysteresis = 0;
constexpr std::size_t kCtrSamples = 1;
constexpr std::size_t kCtrNodes = 2;
constexpr std::size_t kCtrSeries = 3;
constexpr std::size_t kCtrTail = 4;

}  // namespace

bool OscillatorParams::sustains_oscillation(Real vgs) const {
  const Real rs = transistor.resistance(vgs);
  // Steady-state voltage across the VO2 in each phase if no switching
  // occurred; oscillation requires the insulating divider to trip the IMT
  // and the metallic divider to drop below the MIT (load line crossing the
  // unstable region, Sec. III-A).
  const Real v_dev_ins = vdd * vo2.r_insulating / (vo2.r_insulating + rs);
  const Real v_dev_met = vdd * vo2.r_metallic / (vo2.r_metallic + rs);
  return v_dev_ins > vo2.v_imt && v_dev_met < vo2.v_mit;
}

CoupledOscillatorNetwork::CoupledOscillatorNetwork(OscillatorParams params,
                                                   std::size_t n)
    : params_(params), vgs_(n, params.transistor.vth + 0.5) {
  if (n == 0)
    throw std::invalid_argument("CoupledOscillatorNetwork: need >= 1 oscillator");
  params_.validate();
}

void CoupledOscillatorNetwork::set_gate_voltage(std::size_t osc, Real vgs) {
  vgs_.at(osc) = vgs;
}

void CoupledOscillatorNetwork::add_coupling(CouplingBranch branch) {
  if (branch.a >= size() || branch.b >= size() || branch.a == branch.b)
    throw std::invalid_argument("add_coupling: bad oscillator indices");
  if (branch.r <= 0.0 || branch.c < 0.0)
    throw std::invalid_argument("add_coupling: need R > 0 and C >= 0");
  if (branch.topology == CouplingTopology::kSeriesRC && branch.c <= 0.0)
    throw std::invalid_argument("add_coupling: series RC needs C > 0");
  branches_.push_back(branch);
}

Trace CoupledOscillatorNetwork::simulate(const SimulationOptions& opts) const {
  // One lazily grown arena per thread keeps the legacy signature
  // allocation-free after its first call.
  thread_local core::Workspace ws;
  return simulate(opts, ws);
}

Trace CoupledOscillatorNetwork::simulate(const SimulationOptions& opts,
                                         core::Workspace& ws) const {
  core::Checkpoint ckpt = begin_simulation(opts);
  simulate_slice(ckpt, opts, core::SliceBudget{}, ws);
  return trace_from_checkpoint(ckpt, opts);
}

core::Checkpoint CoupledOscillatorNetwork::begin_simulation(
    const SimulationOptions& opts) const {
  if (opts.dt <= 0.0 || opts.duration <= 0.0)
    throw std::invalid_argument("simulate: dt and duration must be > 0");
  const std::size_t n = size();
  std::size_t n_series = 0;
  for (const auto& br : branches_)
    if (br.topology == CouplingTopology::kSeriesRC) ++n_series;

  core::Checkpoint ckpt;
  ckpt.tag = kOscTag;
  ckpt.state.assign(n + n_series, 0.0);
  // Start adjacent oscillators half a swing apart (plus a deterministic
  // stagger): the in-phase synchronous orbit of a matched pair is only
  // weakly unstable, and physical arrays settle into the anti-phase locked
  // state (refs [40],[43]); these initial conditions land in that basin
  // without waiting out a long symmetric transient.
  for (std::size_t i = 0; i < n; ++i)
    ckpt.state[i] = opts.initial_offset * static_cast<Real>(i % 2) +
                    1.0e-3 * static_cast<Real>(i + 1);
  ckpt.flags.assign(kFlagPhase + n, 0);  // all insulating, not finished
  ckpt.counters.assign(kCtrTail, 0);
  ckpt.counters[kCtrNodes] = n;
  ckpt.counters[kCtrSeries] = n_series;

  // The t = 0 sample, exactly as the classic simulate records it before the
  // integration loop.
  Real idd = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    idd += (params_.vdd - ckpt.state[i]) /
           params_.vo2.resistance(Vo2Phase::kInsulating);
  ckpt.counters[kCtrSamples] = 1;
  ckpt.aux.reserve(2 + n);
  ckpt.aux.push_back(0.0);  // time
  ckpt.aux.push_back(idd);  // supply current
  for (std::size_t i = 0; i < n; ++i) ckpt.aux.push_back(ckpt.state[i]);
  return ckpt;
}

Trace CoupledOscillatorNetwork::trace_from_checkpoint(
    const core::Checkpoint& ckpt, const SimulationOptions& opts) const {
  const std::size_t n = size();
  if (ckpt.tag != kOscTag || ckpt.counters.size() != kCtrTail ||
      ckpt.counters[kCtrNodes] != n ||
      ckpt.flags.size() != kFlagPhase + n ||
      ckpt.state.size() != n + ckpt.counters[kCtrSeries])
    throw std::invalid_argument(
        "trace_from_checkpoint: foreign or corrupt checkpoint");
  const auto samples = static_cast<std::size_t>(ckpt.counters[kCtrSamples]);
  if (ckpt.aux.size() != samples * (2 + n))
    throw std::invalid_argument(
        "trace_from_checkpoint: trace payload size mismatch");

  const std::size_t stride = std::max<std::size_t>(1, opts.sample_stride);
  Trace trace;
  trace.dt = opts.dt * static_cast<Real>(stride);
  trace.time.assign(ckpt.aux.begin(), ckpt.aux.begin() + samples);
  trace.supply_current.assign(ckpt.aux.begin() + samples,
                              ckpt.aux.begin() + 2 * samples);
  trace.node_voltage.assign(n, {});
  for (std::size_t i = 0; i < n; ++i)
    trace.node_voltage[i].assign(
        ckpt.aux.begin() + (2 + i) * samples,
        ckpt.aux.begin() + (3 + i) * samples);
  return trace;
}

bool CoupledOscillatorNetwork::simulate_slice(core::Checkpoint& ckpt,
                                              const SimulationOptions& opts,
                                              const core::SliceBudget& budget,
                                              core::Workspace& ws) const {
  if (opts.dt <= 0.0 || opts.duration <= 0.0)
    throw std::invalid_argument("simulate: dt and duration must be > 0");
  TELEM_SPAN("oscillator.simulate");
  TELEM_TRACE_SCOPE("oscillator.simulate");

  const std::size_t n = size();

  // Series-RC branches carry one extra state each (their capacitor voltage),
  // appended after the node voltages.
  std::vector<std::size_t> series_state;  // state index per branch, or npos
  std::size_t n_series = 0;
  for (const auto& br : branches_) {
    if (br.topology == CouplingTopology::kSeriesRC)
      series_state.push_back(n + n_series++);
    else
      series_state.push_back(static_cast<std::size_t>(-1));
  }

  if (ckpt.tag != kOscTag || ckpt.counters.size() != kCtrTail ||
      ckpt.counters[kCtrNodes] != n ||
      ckpt.counters[kCtrSeries] != n_series ||
      ckpt.flags.size() != kFlagPhase + n ||
      ckpt.state.size() != n + n_series)
    throw std::invalid_argument(
        "simulate_slice: foreign or corrupt checkpoint");
  if (ckpt.flags[kFlagFinished]) return true;

  // Parallel-RC bridging capacitors couple the dV/dt terms, so we assemble
  // the node capacitance matrix
  //   M_ii = c_node + sum of incident bridging Cc,  M_ij = -Cc(i,j)
  // and solve M * dV/dt = I(V) each evaluation with a one-time LU (per
  // slice; the factorization depends only on the immutable wiring).
  const core::LuFactorization cap_lu = [&] {
    TELEM_SPAN("oscillator.coupling_setup");
    core::Matrix cap(n, n);
    for (std::size_t i = 0; i < n; ++i) cap(i, i) = params_.c_node;
    for (const auto& br : branches_) {
      if (br.topology != CouplingTopology::kParallelRC) continue;
      cap(br.a, br.a) += br.c;
      cap(br.b, br.b) += br.c;
      cap(br.a, br.b) -= br.c;
      cap(br.b, br.a) -= br.c;
    }
    return core::LuFactorization(cap);
  }();

  // State and stepper scratch come from the workspace (Heun needs 3x the
  // state size); the resumable state is spliced in from the checkpoint.
  const auto ws_scope = ws.scope();
  const std::span<Real> y = ws.real(n + n_series);
  const std::span<Real> scratch = ws.real(3 * y.size());
  std::copy(ckpt.state.begin(), ckpt.state.end(), y.begin());

  std::vector<Vo2Phase> phases(n);
  for (std::size_t i = 0; i < n; ++i)
    phases[i] = ckpt.flags[kFlagPhase + i] ? Vo2Phase::kMetallic
                                           : Vo2Phase::kInsulating;

  // Per-oscillator transistor conductances are constant during a run.
  std::vector<Real> g_tr(n);
  for (std::size_t i = 0; i < n; ++i)
    g_tr[i] = params_.transistor.conductance(vgs_[i]);

  const Real vdd = params_.vdd;

  const NetworkKernel kernel{n,    vdd,          params_, branches_,
                             series_state, g_tr, phases,  cap_lu};

  const auto total_steps =
      static_cast<std::size_t>(std::ceil(opts.duration / opts.dt));
  const std::size_t stride = std::max<std::size_t>(1, opts.sample_stride);
  const auto start_step = static_cast<std::size_t>(ckpt.step);

  // New samples append to the packed per-section trace arrays at the end of
  // the slice; collected locally first so the checkpoint stays consistent
  // if the kernel throws.
  std::vector<Real> new_time, new_supply;
  std::vector<std::vector<Real>> new_node(n);

  auto record = [&](Real t) {
    new_time.push_back(t);
    Real idd = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      new_node[i].push_back(y[i]);
      idd += (vdd - y[i]) / params_.vo2.resistance(phases[i]);
    }
    new_supply.push_back(idd);
    // Piggyback on the existing sample decimation (`stride` steps per
    // sample), so the counter track stays bounded like the Trace itself.
    TELEM_TRACE_COUNTER("oscillator.supply_current", idd);
  };

  std::size_t hysteresis_events = 0;
  std::size_t steps_done = 0;
  bool finished = true;
  {
    TELEM_SPAN("oscillator.integrate");
    TELEM_TRACE_SCOPE("oscillator.integrate");
    const core::detail::SliceClock clock(budget);
    for (std::size_t step = start_step + 1; step <= total_steps; ++step) {
      if (clock.exhausted(steps_done)) {
        finished = false;
        ckpt.step = step - 1;
        break;
      }
      // Drift-free clock: t = step * dt, not an accumulating t += dt (which
      // gains an ulp per step and shifts every sample instant of a
      // million-step run).
      const Real t_prev = static_cast<Real>(step - 1) * opts.dt;
      core::heun_step(kernel, t_prev, opts.dt, y, scratch);
      // Hysteresis events: flip any device whose terminal voltage crossed its
      // threshold during this step. dt is ~2000x smaller than the oscillation
      // period, so boundary-flipping is well inside the integration error.
      for (std::size_t i = 0; i < n; ++i) {
        const Vo2Phase next = params_.vo2.next_phase(phases[i], vdd - y[i]);
        hysteresis_events += next != phases[i];
        phases[i] = next;
      }
      if (step % stride == 0) record(static_cast<Real>(step) * opts.dt);
      ++steps_done;
    }
  }
  if (finished) ckpt.step = total_steps;
  ckpt.t = static_cast<Real>(ckpt.step) * opts.dt;

  // Splice this slice's results back into the checkpoint: state, phases,
  // tallies, and the freshly recorded samples into each packed section.
  std::copy(y.begin(), y.end(), ckpt.state.begin());
  for (std::size_t i = 0; i < n; ++i)
    ckpt.flags[kFlagPhase + i] = phases[i] == Vo2Phase::kMetallic ? 1 : 0;
  ckpt.counters[kCtrHysteresis] += hysteresis_events;
  const auto old_samples = static_cast<std::size_t>(ckpt.counters[kCtrSamples]);
  const std::size_t add = new_time.size();
  if (add > 0) {
    std::vector<Real> packed;
    packed.reserve((old_samples + add) * (2 + n));
    const auto append_section = [&](std::size_t section,
                                    const std::vector<Real>& fresh) {
      packed.insert(packed.end(),
                    ckpt.aux.begin() + section * old_samples,
                    ckpt.aux.begin() + (section + 1) * old_samples);
      packed.insert(packed.end(), fresh.begin(), fresh.end());
    };
    append_section(0, new_time);
    append_section(1, new_supply);
    for (std::size_t i = 0; i < n; ++i) append_section(2 + i, new_node[i]);
    ckpt.aux = std::move(packed);
    ckpt.counters[kCtrSamples] = old_samples + add;
  }
  if (finished) ckpt.flags[kFlagFinished] = 1;

  if (telemetry::Telemetry::enabled()) {
    auto& metrics = telemetry::Telemetry::instance().metrics();
    metrics.add("oscillator.steps", static_cast<Real>(steps_done));
    // Heun evaluates the RHS (node + coupling currents) twice per step.
    metrics.add("oscillator.rhs_evals", static_cast<Real>(2 * steps_done));
    metrics.add("oscillator.coupling_branch_evals",
                static_cast<Real>(2 * steps_done * branches_.size()));
    metrics.add("oscillator.hysteresis_events",
                static_cast<Real>(hysteresis_events));
    metrics.add("oscillator.samples", static_cast<Real>(old_samples + add));
  }
  return finished;
}

Real CoupledOscillatorNetwork::average_power(const Trace& trace,
                                             Real settle_fraction) const {
  if (trace.samples() == 0) return 0.0;
  const auto first = static_cast<std::size_t>(
      settle_fraction * static_cast<Real>(trace.samples()));
  if (first >= trace.samples()) return 0.0;
  Real sum = 0.0;
  for (std::size_t k = first; k < trace.samples(); ++k)
    sum += trace.supply_current[k];
  const Real mean_idd = sum / static_cast<Real>(trace.samples() - first);
  return params_.vdd * mean_idd;
}

RelaxationOscillator::RelaxationOscillator(OscillatorParams params)
    : params_(params) {
  params_.validate();
}

Trace RelaxationOscillator::simulate(Real vgs,
                                     const SimulationOptions& opts) const {
  CoupledOscillatorNetwork net(params_, 1);
  net.set_gate_voltage(0, vgs);
  return net.simulate(opts);
}

}  // namespace rebooting::oscillator
