#include "oscillator/comparator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/energy.h"

namespace rebooting::oscillator {

namespace {

/// Gate inventory of the Fig. 4 readout: two threshold comparators (modelled
/// as a few gates each), one XOR, and an averaging counter.
core::GateInventory readout_logic() {
  core::GateInventory g;
  g.inverters = 4;
  g.nand2 = 6;
  g.xor2 = 1;
  g.flipflops = 8;  // 8-bit averaging counter
  return g;
}

}  // namespace

OscillatorComparator::OscillatorComparator(ComparatorConfig config)
    : config_(std::move(config)) {
  config_.params.validate();
  if (config_.calibration_points < 4)
    throw std::invalid_argument(
        "OscillatorComparator: need >= 4 calibration points per side");
  if (config_.vgs_half_span <= 0.0)
    throw std::invalid_argument("OscillatorComparator: vgs_half_span must be > 0");

  const std::size_t side = config_.calibration_points;
  const Real max_delta = 2.0 * config_.vgs_half_span;

  std::vector<Real>& grid = calibration_.delta_vgs;
  std::vector<Real>& meas = calibration_.measure;
  grid.reserve(2 * side + 1);
  for (std::size_t i = 0; i <= 2 * side; ++i) {
    const Real frac = static_cast<Real>(i) / static_cast<Real>(2 * side);
    grid.push_back(-max_delta + 2.0 * max_delta * frac);
  }
  meas.reserve(grid.size());

  core::Real power_sum = 0.0;
  for (const Real delta : grid) {
    CoupledOscillatorNetwork net(config_.params, 2);
    net.set_gate_voltage(0, config_.vgs_center - 0.5 * delta);
    net.set_gate_voltage(1, config_.vgs_center + 0.5 * delta);
    net.add_coupling(CouplingBranch{
        .a = 0, .b = 1, .r = config_.coupling_r, .c = config_.coupling_c,
        .topology = config_.topology});
    const Trace trace = net.simulate(config_.sim);
    meas.push_back(
        xor_distance_measure(trace, 0, 1, config_.sim.settle_fraction));
    power_sum += net.average_power(trace, config_.sim.settle_fraction);
    if (delta == 0.0 || std::abs(delta) < 1e-12) {
      calibration_.oscillation_hz =
          trace_frequency(trace, 0, config_.sim.settle_fraction);
    }
  }
  calibration_.pair_power_watts = power_sum / static_cast<Real>(grid.size());
  if (calibration_.oscillation_hz <= 0.0) {
    // Fallback: middle grid point (delta closest to zero).
    calibration_.oscillation_hz = 1.0 / (config_.sim.duration);
  }

  // Monotonize outward from the minimum so interpolation is a valid distance.
  monotone_measure_ = meas;
  const auto min_it =
      std::min_element(monotone_measure_.begin(), monotone_measure_.end());
  const auto min_idx = static_cast<std::size_t>(
      std::distance(monotone_measure_.begin(), min_it));
  for (std::size_t i = min_idx + 1; i < monotone_measure_.size(); ++i)
    monotone_measure_[i] =
        std::max(monotone_measure_[i], monotone_measure_[i - 1]);
  for (std::size_t i = min_idx; i-- > 0;)
    monotone_measure_[i] =
        std::max(monotone_measure_[i], monotone_measure_[i + 1]);

  try {
    calibration_.norm_fit = fit_lk_exponent(grid, meas);
  } catch (const std::invalid_argument&) {
    calibration_.norm_fit = LkFit{};  // flat curve; fit left empty
  }

  const auto tech = core::CmosTechnology::node_32nm();
  readout_power_watts_ =
      core::estimate_block_power(tech, readout_logic(),
                                 calibration_.oscillation_hz, 0.5)
          .total();
}

Real OscillatorComparator::input_to_vgs(Real x) const {
  const Real clamped = std::clamp(x, 0.0, 1.0);
  return config_.vgs_center + (2.0 * clamped - 1.0) * config_.vgs_half_span;
}

Real OscillatorComparator::interpolate_measure(Real delta_vgs) const {
  const auto& grid = calibration_.delta_vgs;
  const Real lo = grid.front();
  const Real hi = grid.back();
  const Real d = std::clamp(delta_vgs, lo, hi);
  const auto it = std::upper_bound(grid.begin(), grid.end(), d);
  if (it == grid.begin()) return monotone_measure_.front();
  if (it == grid.end()) return monotone_measure_.back();
  const auto j = static_cast<std::size_t>(std::distance(grid.begin(), it));
  const Real x0 = grid[j - 1];
  const Real x1 = grid[j];
  const Real frac = (x1 > x0) ? (d - x0) / (x1 - x0) : 0.0;
  return monotone_measure_[j - 1] * (1.0 - frac) + monotone_measure_[j] * frac;
}

Real OscillatorComparator::distance(Real a, Real b) const {
  // Average the two lookup directions: the calibrated curve carries per-side
  // measurement noise, and a distance must be exactly symmetric.
  const Real delta = input_to_vgs(a) - input_to_vgs(b);
  return 0.5 * (interpolate_measure(delta) + interpolate_measure(-delta));
}

Real OscillatorComparator::distance_simulated(Real a, Real b) const {
  CoupledOscillatorNetwork net(config_.params, 2);
  net.set_gate_voltage(0, input_to_vgs(a));
  net.set_gate_voltage(1, input_to_vgs(b));
  net.add_coupling(CouplingBranch{
      .a = 0, .b = 1, .r = config_.coupling_r, .c = config_.coupling_c,
        .topology = config_.topology});
  const Trace trace = net.simulate(config_.sim);
  return xor_distance_measure(trace, 0, 1, config_.sim.settle_fraction);
}

Real OscillatorComparator::threshold_for_input_delta(Real delta_input) const {
  // Same symmetrization as distance(), so thresholds and measures compare on
  // the same scale.
  const Real delta_vgs = 2.0 * std::abs(delta_input) * config_.vgs_half_span;
  return 0.5 * (interpolate_measure(delta_vgs) + interpolate_measure(-delta_vgs));
}

Real OscillatorComparator::unit_power_watts() const {
  return calibration_.pair_power_watts + readout_power_watts_;
}

Real OscillatorComparator::comparison_seconds() const {
  const Real f = calibration_.oscillation_hz;
  if (f <= 0.0) return config_.sim.duration;
  return static_cast<Real>(std::max<std::size_t>(config_.readout_cycles, 1)) / f;
}

}  // namespace rebooting::oscillator
