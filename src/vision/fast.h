// Software FAST-N corner detection (Rosten & Drummond, ref [45]) — the
// von Neumann baseline of Sec. III-B. A pixel is a corner when N contiguous
// pixels on the radius-3 Bresenham circle are all brighter than p + t or all
// darker than p - t.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/types.h"
#include "vision/image.h"

namespace rebooting::vision {

/// The 16 offsets of the radius-3 Bresenham circle, in clockwise order
/// starting from (0, -3) — the standard FAST ring.
const std::array<Pixel, 16>& bresenham_ring();

struct FastOptions {
  Real threshold = 0.12;       ///< intensity threshold t (image units, [0,1])
  std::size_t arc_length = 9;  ///< N contiguous pixels required (FAST-N)
  bool non_max_suppression = true;
  /// Ring pixels are read with edge clamping; detections closer than 3 px to
  /// the border are dropped when this is set (clamped reads make them
  /// unreliable).
  bool skip_border = true;
};

struct FastDetection {
  Pixel position;
  Real score = 0.0;  ///< sum of |ring - center| over the contiguous arc
};

/// Classification of a single pixel against the ring (exposed for tests and
/// for the oscillator pipeline, which reuses the arc logic).
bool fast_segment_test(const Image& img, int x, int y,
                       const FastOptions& opts);

/// Corner score used for non-max suppression: the summed absolute contrast
/// over the best qualifying arc; 0 when not a corner.
Real fast_corner_score(const Image& img, int x, int y, const FastOptions& opts);

/// Full-frame detection. Counts of elementary compare operations are
/// accumulated into `compare_ops` when non-null (used by the Sec. III-B
/// energy accounting: each ring-pixel-vs-center test is one comparison).
std::vector<FastDetection> fast_detect(const Image& img,
                                       const FastOptions& opts,
                                       std::size_t* compare_ops = nullptr);

/// Helper shared by both detectors: true when `flags` (16 booleans around
/// the ring) contains a run of at least `arc_length` consecutive set bits,
/// treating the ring as circular.
bool has_contiguous_arc(const std::array<bool, 16>& flags,
                        std::size_t arc_length);

}  // namespace rebooting::vision
