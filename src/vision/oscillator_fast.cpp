#include "vision/oscillator_fast.h"

#include <algorithm>
#include <array>

#include "telemetry/telemetry.h"

namespace rebooting::vision {

OscillatorFastDetector::OscillatorFastDetector(
    const oscillator::OscillatorComparator& comparator,
    OscillatorFastOptions opts)
    : comparator_(comparator),
      opts_(opts),
      measure_threshold_(comparator.threshold_for_input_delta(opts.threshold)),
      measure_threshold_2t_(
          comparator.threshold_for_input_delta(2.0 * opts.threshold)) {}

Real OscillatorFastDetector::corner_score(const Image& img, int x, int y,
                                          OscillatorFastStats* stats) const {
  const Real center = img.at_clamped(x, y);
  const auto& ring = bresenham_ring();

  // Step 1: 16 parallel center-vs-ring distance measurements.
  std::array<Real, 16> measure{};
  std::array<Real, 16> value{};
  std::array<bool, 16> differs{};
  for (std::size_t i = 0; i < 16; ++i) {
    value[i] = img.at_clamped(x + ring[i].x, y + ring[i].y);
    measure[i] = comparator_.distance(center, value[i]);
    differs[i] = measure[i] > measure_threshold_;
  }
  if (stats) stats->step1_comparisons += 16;

  if (!has_contiguous_arc(differs, opts_.arc_length)) return 0.0;
  if (stats) ++stats->candidates_after_step1;

  bool accepted = !opts_.false_positive_suppression;
  if (opts_.false_positive_suppression) {
    // Step 2: within the marked set, adjacent ring pixels must be mutually
    // similar; a pair differing by more than 2t exposes a mixed
    // brighter/darker arc (false positive).
    bool mixed = false;
    for (std::size_t i = 0; i < 16; ++i) {
      const std::size_t j = (i + 1) % 16;
      if (!differs[i] || !differs[j]) continue;
      if (stats) ++stats->step2_comparisons;
      if (comparator_.distance(value[i], value[j]) > measure_threshold_2t_) {
        mixed = true;
        break;
      }
    }
    if (mixed) {
      if (stats) ++stats->rejected_by_step2;
      return 0.0;
    }
    accepted = true;
  }
  if (!accepted) return 0.0;

  Real score = 0.0;
  for (std::size_t i = 0; i < 16; ++i)
    if (differs[i]) score += measure[i];
  return score;
}

bool OscillatorFastDetector::is_corner(const Image& img, int x, int y,
                                       OscillatorFastStats* stats) const {
  return corner_score(img, x, y, stats) > 0.0;
}

std::vector<FastDetection> OscillatorFastDetector::detect(
    const Image& img, OscillatorFastStats* stats) const {
  TELEM_SPAN("vision.fast_detect");
  const int w = static_cast<int>(img.width());
  const int h = static_cast<int>(img.height());
  const int border = opts_.skip_border ? 3 : 0;

  // Telemetry wants the comparison counters even when the caller passed no
  // stats sink; a caller-provided sink may carry counts from earlier frames,
  // so only this frame's delta is merged.
  OscillatorFastStats local_stats;
  const bool telem = telemetry::Telemetry::enabled();
  if (telem && stats == nullptr) stats = &local_stats;
  const OscillatorFastStats before =
      stats != nullptr ? *stats : OscillatorFastStats{};

  std::vector<Real> score(img.width() * img.height(), 0.0);
  {
    TELEM_SPAN("vision.fast_score");
    for (int y = border; y < h - border; ++y)
      for (int x = border; x < w - border; ++x)
        score[static_cast<std::size_t>(y) * img.width() +
              static_cast<std::size_t>(x)] = corner_score(img, x, y, stats);
  }
  if (telem && stats != nullptr) {
    auto& metrics = telemetry::Telemetry::instance().metrics();
    metrics.add("vision.pixels_scored",
                static_cast<Real>((w - 2 * border) * (h - 2 * border)));
    metrics.add("vision.step1_comparisons",
                static_cast<Real>(stats->step1_comparisons -
                                  before.step1_comparisons));
    metrics.add("vision.step2_comparisons",
                static_cast<Real>(stats->step2_comparisons -
                                  before.step2_comparisons));
    metrics.add("vision.rejected_by_step2",
                static_cast<Real>(stats->rejected_by_step2 -
                                  before.rejected_by_step2));
  }

  std::vector<FastDetection> out;
  for (int y = border; y < h - border; ++y) {
    for (int x = border; x < w - border; ++x) {
      const Real s = score[static_cast<std::size_t>(y) * img.width() +
                           static_cast<std::size_t>(x)];
      if (s <= 0.0) continue;
      if (opts_.non_max_suppression) {
        bool is_max = true;
        for (int dy = -1; dy <= 1 && is_max; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const int nx = x + dx;
            const int ny = y + dy;
            if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
            const Real ns = score[static_cast<std::size_t>(ny) * img.width() +
                                  static_cast<std::size_t>(nx)];
            if (ns > s || (ns == s && (dy < 0 || (dy == 0 && dx < 0)))) {
              is_max = false;
              break;
            }
          }
        if (!is_max) continue;
      }
      out.push_back({{x, y}, s});
    }
  }
  return out;
}

}  // namespace rebooting::vision
