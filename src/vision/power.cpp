#include "vision/power.h"

namespace rebooting::vision {

core::GateInventory cmos_comparison_lane() {
  core::GateInventory lane;
  // 8-bit subtract (ripple FA chain), conditional negate for |.| (XOR lane +
  // increment), 8-bit magnitude comparator, threshold select, and a pipeline
  // register stage on operands and result.
  lane.full_adders = 16;  // subtract + abs increment
  lane.xor2 = 8;          // abs conditional inversion
  lane.nand2 = 24;        // magnitude comparator tree
  lane.inverters = 10;
  lane.mux2 = 8;          // brighter/darker select
  lane.flipflops = 24;    // 2x8b operand + 8b result staging
  return lane;
}

core::GateInventory cmos_fast_block() {
  core::GateInventory block = 16 * cmos_comparison_lane();
  // Ring and center operand registers (17 pixels x 8 bit), the 16-bit
  // contiguous-arc detector (doubled-ring shifter + run counter), threshold
  // broadcast and FSM control.
  core::GateInventory support;
  support.flipflops = 17 * 8 + 32;
  support.full_adders = 8;
  support.nand2 = 160;
  support.inverters = 48;
  support.mux2 = 16;
  block += support;
  return block;
}

FastBlockPowerReport compare_fast_block_power(
    const oscillator::OscillatorComparator& comparator,
    const CmosBlockConfig& cmos) {
  FastBlockPowerReport report;

  report.oscillator_block_watts = 16.0 * comparator.unit_power_watts();
  report.oscillator_energy_per_cmp = comparator.energy_per_comparison();

  const auto block = cmos_fast_block();
  const auto power = core::estimate_block_power(cmos.tech, block,
                                                cmos.clock_hz, cmos.activity);
  report.cmos_dynamic_watts = power.dynamic_watts;
  report.cmos_leakage_watts = power.leakage_watts;
  report.cmos_block_watts = power.total();
  // 16 lanes each retire one comparison per cycle.
  report.cmos_energy_per_cmp =
      power.total() / (16.0 * cmos.clock_hz / cmos.cycles_per_cmp);

  report.power_ratio = report.oscillator_block_watts > 0.0
                           ? report.cmos_block_watts /
                                 report.oscillator_block_watts
                           : 0.0;
  return report;
}

FrameEnergyReport frame_energy(
    const oscillator::OscillatorComparator& comparator,
    const OscillatorFastStats& stats, const CmosBlockConfig& cmos) {
  FrameEnergyReport report;
  const auto cmp_count = static_cast<core::Real>(stats.total_comparisons());

  // Oscillator block: 16 units run in parallel, so one analog evaluation
  // retires up to 16 comparisons in one comparison window.
  const core::Real evaluations = cmp_count / 16.0;
  report.oscillator_seconds = evaluations * comparator.comparison_seconds();
  report.oscillator_joules =
      16.0 * comparator.unit_power_watts() * report.oscillator_seconds;

  const auto power_report = compare_fast_block_power(comparator, cmos);
  report.cmos_seconds =
      cmp_count * cmos.cycles_per_cmp / (16.0 * cmos.clock_hz);
  report.cmos_joules = power_report.cmos_block_watts * report.cmos_seconds;
  return report;
}

}  // namespace rebooting::vision
