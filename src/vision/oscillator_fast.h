// FAST corner detection executed on the coupled-oscillator comparison
// primitive — the Fig. 6 data flow.
//
// Step 1 feeds the pixel under test and each of its 16 ring pixels, as gate
// voltages, to an oscillator-pair distance unit; the thresholded measures
// mark ring pixels that differ from the center by more than t. A candidate
// needs N contiguous marked pixels. Because the analog distance is
// directionless (|a-b|, "the direction of the difference ... is not known"),
// a mixed brighter/darker arc could slip through; step 2 therefore compares
// adjacent marked ring pixels with each other and rejects the candidate if
// any adjacent pair differs by more than 2t (the paper's false-positive
// rule).
#pragma once

#include <cstddef>
#include <vector>

#include "oscillator/comparator.h"
#include "vision/fast.h"
#include "vision/image.h"

namespace rebooting::vision {

struct OscillatorFastOptions {
  Real threshold = 0.12;       ///< intensity threshold t (image units)
  std::size_t arc_length = 9;  ///< N contiguous differing pixels
  /// The Fig. 6 second processing step. Disable for the ablation bench.
  bool false_positive_suppression = true;
  bool non_max_suppression = true;
  bool skip_border = true;
};

/// Operation counts accumulated over one frame; the energy accounting of the
/// Sec. III-B comparison multiplies these by the per-comparison energy.
struct OscillatorFastStats {
  std::size_t step1_comparisons = 0;
  std::size_t step2_comparisons = 0;
  std::size_t candidates_after_step1 = 0;
  std::size_t rejected_by_step2 = 0;

  std::size_t total_comparisons() const {
    return step1_comparisons + step2_comparisons;
  }
};

class OscillatorFastDetector {
 public:
  /// Borrows the calibrated comparator; the caller keeps it alive (one
  /// calibration is shared by every frame and by the power model).
  OscillatorFastDetector(const oscillator::OscillatorComparator& comparator,
                         OscillatorFastOptions opts);

  /// Classifies one pixel (exposed for tests). Updates `stats` if non-null.
  bool is_corner(const Image& img, int x, int y,
                 OscillatorFastStats* stats = nullptr) const;

  std::vector<FastDetection> detect(const Image& img,
                                    OscillatorFastStats* stats = nullptr) const;

  const OscillatorFastOptions& options() const { return opts_; }

 private:
  /// Score = summed distance measure over marked ring pixels (for NMS).
  Real corner_score(const Image& img, int x, int y,
                    OscillatorFastStats* stats) const;

  const oscillator::OscillatorComparator& comparator_;
  OscillatorFastOptions opts_;
  Real measure_threshold_;        ///< comparator measure equivalent of t
  Real measure_threshold_2t_;     ///< comparator measure equivalent of 2t
};

}  // namespace rebooting::vision
