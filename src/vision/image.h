// Grayscale image container, PGM I/O, and synthetic scene generation for the
// Sec. III-B corner-detection experiments. Scenes are generated (axis-aligned
// and rotated rectangles, polygons, gradients, noise) because the paper ships
// no image set; ground-truth corner locations are produced alongside, so the
// benchmarks can score detector agreement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/types.h"

namespace rebooting::vision {

using core::Real;

/// Row-major grayscale image with intensities in [0, 1].
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, Real fill = 0.0);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  Real& at(std::size_t x, std::size_t y) { return pixels_[y * width_ + x]; }
  Real at(std::size_t x, std::size_t y) const { return pixels_[y * width_ + x]; }

  /// Clamped access: coordinates outside the image read the nearest edge
  /// pixel (used by the ring sampler near borders).
  Real at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const;

  bool in_bounds(std::ptrdiff_t x, std::ptrdiff_t y) const {
    return x >= 0 && y >= 0 && x < static_cast<std::ptrdiff_t>(width_) &&
           y < static_cast<std::ptrdiff_t>(height_);
  }

  const std::vector<Real>& pixels() const { return pixels_; }

  /// Adds zero-mean Gaussian noise and clamps back to [0, 1].
  void add_noise(core::Rng& rng, Real stddev);

  /// Writes binary PGM (P5, 8-bit).
  void save_pgm(const std::string& path) const;

  /// Reads P5 or P2 PGM; throws std::runtime_error on malformed input.
  static Image load_pgm(const std::string& path);

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<Real> pixels_;
};

/// Integer pixel coordinate.
struct Pixel {
  int x = 0;
  int y = 0;
  friend bool operator==(const Pixel&, const Pixel&) = default;
  friend auto operator<=>(const Pixel&, const Pixel&) = default;
};

/// A generated scene: the image plus the ground-truth corner locations of the
/// shapes drawn into it.
struct Scene {
  Image image;
  std::vector<Pixel> true_corners;
};

/// Scene with `n_rects` random axis-aligned bright rectangles on a dark
/// background (non-overlapping, margin kept from the border). Every rectangle
/// contributes its 4 corners to the ground truth.
Scene make_rectangle_scene(core::Rng& rng, std::size_t width,
                           std::size_t height, std::size_t n_rects,
                           Real contrast = 0.6, Real noise_stddev = 0.0);

/// Scene with random filled convex polygons (triangles to hexagons); their
/// vertices are the ground-truth corners.
Scene make_polygon_scene(core::Rng& rng, std::size_t width, std::size_t height,
                         std::size_t n_polygons, Real contrast = 0.6,
                         Real noise_stddev = 0.0);

/// Checkerboard of `cell` x `cell` squares; interior lattice crossings are
/// the ground truth.
Scene make_checkerboard_scene(std::size_t width, std::size_t height,
                              std::size_t cell, Real low = 0.2,
                              Real high = 0.8);

/// Fraction of ground-truth corners that have a detection within
/// `radius` pixels (recall), and fraction of detections within `radius` of
/// some ground-truth corner (precision).
struct MatchScore {
  Real precision = 0.0;
  Real recall = 0.0;
  std::size_t detections = 0;
  std::size_t ground_truth = 0;
  Real f1() const {
    const Real d = precision + recall;
    return d > 0.0 ? 2.0 * precision * recall / d : 0.0;
  }
};

MatchScore score_detections(const std::vector<Pixel>& detections,
                            const std::vector<Pixel>& ground_truth,
                            Real radius = 3.0);

}  // namespace rebooting::vision
