#include "vision/image.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rebooting::vision {

Image::Image(std::size_t width, std::size_t height, Real fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  if (width == 0 || height == 0)
    throw std::invalid_argument("Image: zero dimension");
}

Real Image::at_clamped(std::ptrdiff_t x, std::ptrdiff_t y) const {
  const auto cx = std::clamp<std::ptrdiff_t>(
      x, 0, static_cast<std::ptrdiff_t>(width_) - 1);
  const auto cy = std::clamp<std::ptrdiff_t>(
      y, 0, static_cast<std::ptrdiff_t>(height_) - 1);
  return pixels_[static_cast<std::size_t>(cy) * width_ +
                 static_cast<std::size_t>(cx)];
}

void Image::add_noise(core::Rng& rng, Real stddev) {
  if (stddev <= 0.0) return;
  for (Real& p : pixels_) p = std::clamp(p + rng.normal(0.0, stddev), 0.0, 1.0);
}

void Image::save_pgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_pgm: cannot open " + path);
  out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  for (const Real p : pixels_) {
    const auto byte = static_cast<unsigned char>(
        std::clamp(p, 0.0, 1.0) * 255.0 + 0.5);
    out.put(static_cast<char>(byte));
  }
  if (!out) throw std::runtime_error("save_pgm: write failed for " + path);
}

Image Image::load_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_pgm: cannot open " + path);

  auto next_token = [&in, &path]() {
    std::string tok;
    while (in >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(in, rest);
        continue;
      }
      return tok;
    }
    throw std::runtime_error("load_pgm: truncated header in " + path);
  };

  const std::string magic = next_token();
  if (magic != "P5" && magic != "P2")
    throw std::runtime_error("load_pgm: unsupported magic in " + path);
  const auto width = static_cast<std::size_t>(std::stoul(next_token()));
  const auto height = static_cast<std::size_t>(std::stoul(next_token()));
  const auto maxval = std::stoul(next_token());
  if (width == 0 || height == 0 || maxval == 0 || maxval > 255)
    throw std::runtime_error("load_pgm: bad dimensions/maxval in " + path);

  Image img(width, height);
  if (magic == "P5") {
    in.get();  // single whitespace after maxval
    std::vector<unsigned char> raw(width * height);
    in.read(reinterpret_cast<char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    if (static_cast<std::size_t>(in.gcount()) != raw.size())
      throw std::runtime_error("load_pgm: truncated pixel data in " + path);
    for (std::size_t i = 0; i < raw.size(); ++i)
      img.pixels_[i] = static_cast<Real>(raw[i]) / static_cast<Real>(maxval);
  } else {
    for (auto& px : img.pixels_) {
      unsigned long v = 0;
      if (!(in >> v))
        throw std::runtime_error("load_pgm: truncated pixel data in " + path);
      px = static_cast<Real>(v) / static_cast<Real>(maxval);
    }
  }
  return img;
}

namespace {

void fill_rect(Image& img, int x0, int y0, int w, int h, Real value) {
  for (int y = y0; y < y0 + h; ++y)
    for (int x = x0; x < x0 + w; ++x)
      if (img.in_bounds(x, y))
        img.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) = value;
}

struct Pt {
  Real x, y;
};

/// Point-in-convex-polygon via consistent cross-product sign.
bool inside_convex(const std::vector<Pt>& poly, Real px, Real py) {
  bool any_neg = false;
  bool any_pos = false;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Pt& a = poly[i];
    const Pt& b = poly[(i + 1) % poly.size()];
    const Real cross = (b.x - a.x) * (py - a.y) - (b.y - a.y) * (px - a.x);
    if (cross < 0.0) any_neg = true;
    if (cross > 0.0) any_pos = true;
    if (any_neg && any_pos) return false;
  }
  return true;
}

}  // namespace

Scene make_rectangle_scene(core::Rng& rng, std::size_t width,
                           std::size_t height, std::size_t n_rects,
                           Real contrast, Real noise_stddev) {
  Scene scene;
  scene.image = Image(width, height, 0.2);
  const int margin = 10;
  std::vector<std::array<int, 4>> placed;  // x, y, w, h

  std::size_t attempts = 0;
  while (placed.size() < n_rects && attempts < n_rects * 200) {
    ++attempts;
    const int w = static_cast<int>(rng.uniform_int(12, 40));
    const int h = static_cast<int>(rng.uniform_int(12, 40));
    if (static_cast<int>(width) - 2 * margin - w <= 0 ||
        static_cast<int>(height) - 2 * margin - h <= 0)
      continue;
    const int x = static_cast<int>(
        rng.uniform_int(margin, static_cast<int>(width) - margin - w));
    const int y = static_cast<int>(
        rng.uniform_int(margin, static_cast<int>(height) - margin - h));
    // Reject overlapping placements (with a 4-px halo so corners stay clean).
    bool overlaps = false;
    for (const auto& r : placed) {
      if (x < r[0] + r[2] + 4 && r[0] < x + w + 4 && y < r[1] + r[3] + 4 &&
          r[1] < y + h + 4) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    placed.push_back({x, y, w, h});
    fill_rect(scene.image, x, y, w, h, 0.2 + contrast);
    scene.true_corners.push_back({x, y});
    scene.true_corners.push_back({x + w - 1, y});
    scene.true_corners.push_back({x, y + h - 1});
    scene.true_corners.push_back({x + w - 1, y + h - 1});
  }
  scene.image.add_noise(rng, noise_stddev);
  return scene;
}

Scene make_polygon_scene(core::Rng& rng, std::size_t width, std::size_t height,
                         std::size_t n_polygons, Real contrast,
                         Real noise_stddev) {
  Scene scene;
  scene.image = Image(width, height, 0.2);
  for (std::size_t p = 0; p < n_polygons; ++p) {
    const auto sides = static_cast<std::size_t>(rng.uniform_int(3, 6));
    const Real cx = rng.uniform(30.0, static_cast<Real>(width) - 30.0);
    const Real cy = rng.uniform(30.0, static_cast<Real>(height) - 30.0);
    const Real radius = rng.uniform(12.0, 24.0);
    const Real rot = rng.uniform(0.0, core::kTwoPi);
    std::vector<Pt> poly;
    for (std::size_t s = 0; s < sides; ++s) {
      const Real ang = rot + core::kTwoPi * static_cast<Real>(s) /
                                 static_cast<Real>(sides);
      poly.push_back({cx + radius * std::cos(ang), cy + radius * std::sin(ang)});
    }
    const int x0 = std::max(0, static_cast<int>(cx - radius - 2));
    const int x1 = std::min(static_cast<int>(width) - 1,
                            static_cast<int>(cx + radius + 2));
    const int y0 = std::max(0, static_cast<int>(cy - radius - 2));
    const int y1 = std::min(static_cast<int>(height) - 1,
                            static_cast<int>(cy + radius + 2));
    for (int y = y0; y <= y1; ++y)
      for (int x = x0; x <= x1; ++x)
        if (inside_convex(poly, static_cast<Real>(x), static_cast<Real>(y)))
          scene.image.at(static_cast<std::size_t>(x),
                         static_cast<std::size_t>(y)) = 0.2 + contrast;
    for (const Pt& v : poly) {
      const int vx = static_cast<int>(std::lround(v.x));
      const int vy = static_cast<int>(std::lround(v.y));
      if (scene.image.in_bounds(vx, vy))
        scene.true_corners.push_back({vx, vy});
    }
  }
  scene.image.add_noise(rng, noise_stddev);
  return scene;
}

Scene make_checkerboard_scene(std::size_t width, std::size_t height,
                              std::size_t cell, Real low, Real high) {
  if (cell == 0) throw std::invalid_argument("make_checkerboard_scene: cell=0");
  Scene scene;
  scene.image = Image(width, height);
  for (std::size_t y = 0; y < height; ++y)
    for (std::size_t x = 0; x < width; ++x)
      scene.image.at(x, y) = (((x / cell) + (y / cell)) % 2 == 0) ? low : high;
  for (std::size_t gy = cell; gy < height; gy += cell)
    for (std::size_t gx = cell; gx < width; gx += cell)
      scene.true_corners.push_back(
          {static_cast<int>(gx), static_cast<int>(gy)});
  return scene;
}

MatchScore score_detections(const std::vector<Pixel>& detections,
                            const std::vector<Pixel>& ground_truth,
                            Real radius) {
  MatchScore s;
  s.detections = detections.size();
  s.ground_truth = ground_truth.size();
  const Real r2 = radius * radius;
  auto near = [&](const Pixel& a, const Pixel& b) {
    const Real dx = static_cast<Real>(a.x - b.x);
    const Real dy = static_cast<Real>(a.y - b.y);
    return dx * dx + dy * dy <= r2;
  };
  std::size_t matched_det = 0;
  for (const Pixel& d : detections)
    for (const Pixel& g : ground_truth)
      if (near(d, g)) {
        ++matched_det;
        break;
      }
  std::size_t matched_gt = 0;
  for (const Pixel& g : ground_truth)
    for (const Pixel& d : detections)
      if (near(d, g)) {
        ++matched_gt;
        break;
      }
  s.precision = detections.empty()
                    ? 0.0
                    : static_cast<Real>(matched_det) /
                          static_cast<Real>(detections.size());
  s.recall = ground_truth.empty()
                 ? 0.0
                 : static_cast<Real>(matched_gt) /
                       static_cast<Real>(ground_truth.size());
  return s;
}

}  // namespace rebooting::vision
