// Power/energy comparison of the Sec. III-B corner-detection block:
// the 16-unit coupled-oscillator comparison block (paper: 0.936 mW including
// the XOR readout) versus the corresponding CMOS datapath at 32 nm
// (paper: 3 mW). The CMOS number is rebuilt bottom-up from a gate inventory.
#pragma once

#include <cstddef>

#include "core/energy.h"
#include "oscillator/comparator.h"
#include "vision/oscillator_fast.h"

namespace rebooting::vision {

/// One CMOS comparison lane: 8-bit subtract, absolute value, magnitude
/// compare against the threshold, and pipeline registers.
core::GateInventory cmos_comparison_lane();

/// The full 16-lane CMOS block: lanes plus ring/center operand registers,
/// the contiguous-arc detector, threshold distribution and control.
core::GateInventory cmos_fast_block();

struct FastBlockPowerReport {
  core::Real oscillator_block_watts = 0.0;  ///< 16 pair units + XOR readouts
  core::Real cmos_block_watts = 0.0;
  core::Real cmos_dynamic_watts = 0.0;
  core::Real cmos_leakage_watts = 0.0;
  core::Real power_ratio = 0.0;  ///< cmos / oscillator

  /// Per-comparison energies [J].
  core::Real oscillator_energy_per_cmp = 0.0;
  core::Real cmos_energy_per_cmp = 0.0;
};

struct CmosBlockConfig {
  core::CmosTechnology tech = core::CmosTechnology::node_32nm();
  core::Real clock_hz = 1.0e9;
  core::Real activity = 0.35;      ///< switching activity of the datapath
  core::Real cycles_per_cmp = 1.0; ///< pipelined: one comparison per cycle
};

/// Computes both sides of the comparison. The oscillator block is 16
/// comparison units (one per ring pixel), each a calibrated pair plus
/// readout.
FastBlockPowerReport compare_fast_block_power(
    const oscillator::OscillatorComparator& comparator,
    const CmosBlockConfig& cmos = {});

/// Energy to process one frame on each block, given the measured operation
/// counts of a detector run. The CMOS side executes the same number of
/// comparisons serially through its 16 pipelined lanes; the oscillator side
/// runs 16 comparisons in parallel per analog evaluation.
struct FrameEnergyReport {
  core::Real oscillator_joules = 0.0;
  core::Real cmos_joules = 0.0;
  core::Real oscillator_seconds = 0.0;
  core::Real cmos_seconds = 0.0;
};

FrameEnergyReport frame_energy(const oscillator::OscillatorComparator& comparator,
                               const OscillatorFastStats& stats,
                               const CmosBlockConfig& cmos = {});

}  // namespace rebooting::vision
