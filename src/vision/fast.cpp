#include "vision/fast.h"

#include <algorithm>
#include <cmath>

namespace rebooting::vision {

const std::array<Pixel, 16>& bresenham_ring() {
  static const std::array<Pixel, 16> ring = {{{0, -3},
                                              {1, -3},
                                              {2, -2},
                                              {3, -1},
                                              {3, 0},
                                              {3, 1},
                                              {2, 2},
                                              {1, 3},
                                              {0, 3},
                                              {-1, 3},
                                              {-2, 2},
                                              {-3, 1},
                                              {-3, 0},
                                              {-3, -1},
                                              {-2, -2},
                                              {-1, -3}}};
  return ring;
}

bool has_contiguous_arc(const std::array<bool, 16>& flags,
                        std::size_t arc_length) {
  if (arc_length == 0) return true;
  if (arc_length > 16) return false;
  std::size_t run = 0;
  // Doubling the ring handles wrap-around runs; a run of 16 is caught too.
  for (std::size_t i = 0; i < 32; ++i) {
    if (flags[i % 16]) {
      ++run;
      if (run >= arc_length) return true;
    } else {
      run = 0;
    }
  }
  return false;
}

namespace {

struct RingRead {
  std::array<Real, 16> value{};
  std::array<bool, 16> brighter{};
  std::array<bool, 16> darker{};
};

RingRead read_ring(const Image& img, int x, int y, Real threshold) {
  RingRead r;
  const Real center = img.at_clamped(x, y);
  const auto& ring = bresenham_ring();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    r.value[i] = img.at_clamped(x + ring[i].x, y + ring[i].y);
    r.brighter[i] = r.value[i] > center + threshold;
    r.darker[i] = r.value[i] < center - threshold;
  }
  return r;
}

}  // namespace

bool fast_segment_test(const Image& img, int x, int y,
                       const FastOptions& opts) {
  const RingRead r = read_ring(img, x, y, opts.threshold);
  return has_contiguous_arc(r.brighter, opts.arc_length) ||
         has_contiguous_arc(r.darker, opts.arc_length);
}

Real fast_corner_score(const Image& img, int x, int y,
                       const FastOptions& opts) {
  const RingRead r = read_ring(img, x, y, opts.threshold);
  const Real center = img.at_clamped(x, y);
  Real best = 0.0;
  for (const auto& flags : {r.brighter, r.darker}) {
    if (!has_contiguous_arc(flags, opts.arc_length)) continue;
    // Sum |contrast| over every qualifying pixel; a simple, monotone score
    // that suffices for 3x3 non-max suppression.
    Real score = 0.0;
    for (std::size_t i = 0; i < 16; ++i)
      if (flags[i]) score += std::abs(r.value[i] - center);
    best = std::max(best, score);
  }
  return best;
}

std::vector<FastDetection> fast_detect(const Image& img,
                                       const FastOptions& opts,
                                       std::size_t* compare_ops) {
  const int w = static_cast<int>(img.width());
  const int h = static_cast<int>(img.height());
  const int border = opts.skip_border ? 3 : 0;

  // Score map for non-max suppression (0 = not a corner).
  std::vector<Real> score(img.width() * img.height(), 0.0);
  std::size_t ops = 0;
  for (int y = border; y < h - border; ++y) {
    for (int x = border; x < w - border; ++x) {
      // 16 ring-vs-center comparisons per candidate pixel. (Real FAST short-
      // circuits via the 4-pixel pretest; we count the full ring because the
      // oscillator block evaluates all 16 in parallel and the CMOS baseline
      // is sized for the same worst case.)
      ops += 16;
      const Real s = fast_corner_score(img, x, y, opts);
      score[static_cast<std::size_t>(y) * img.width() +
            static_cast<std::size_t>(x)] = s;
    }
  }
  if (compare_ops) *compare_ops += ops;

  std::vector<FastDetection> out;
  for (int y = border; y < h - border; ++y) {
    for (int x = border; x < w - border; ++x) {
      const Real s = score[static_cast<std::size_t>(y) * img.width() +
                           static_cast<std::size_t>(x)];
      if (s <= 0.0) continue;
      if (opts.non_max_suppression) {
        bool is_max = true;
        for (int dy = -1; dy <= 1 && is_max; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const int nx = x + dx;
            const int ny = y + dy;
            if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
            const Real ns = score[static_cast<std::size_t>(ny) * img.width() +
                                  static_cast<std::size_t>(nx)];
            // Strict-greater on one side of the tie so plateaus keep exactly
            // one detection.
            if (ns > s || (ns == s && (dy < 0 || (dy == 0 && dx < 0)))) {
              is_max = false;
              break;
            }
          }
        if (!is_max) continue;
      }
      out.push_back({{x, y}, s});
    }
  }
  return out;
}

}  // namespace rebooting::vision
