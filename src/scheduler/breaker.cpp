#include "scheduler/breaker.h"

namespace rebooting::sched {

std::string to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

bool CircuitBreaker::allow() {
  if (config_.failure_threshold == 0) return true;
  std::lock_guard lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (Clock::now() - opened_at_ < config_.cooldown) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  if (config_.failure_threshold == 0) return;
  std::lock_guard lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    probe_in_flight_ = false;
  }
}

bool CircuitBreaker::record_failure() {
  std::lock_guard lock(mutex_);
  ++consecutive_failures_;
  ++total_failures_;
  if (config_.failure_threshold == 0) return false;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to a full cooldown.
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    probe_in_flight_ = false;
    ++times_opened_;
    return true;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = BreakerState::kOpen;
    opened_at_ = Clock::now();
    ++times_opened_;
    return true;
  }
  return false;
}

ReplicaHealth CircuitBreaker::snapshot() const {
  std::lock_guard lock(mutex_);
  ReplicaHealth h;
  h.state = state_;
  // An open breaker whose cooldown has elapsed reports half-open: that is
  // what the next allow() will see, and tests poll this to time probes.
  if (state_ == BreakerState::kOpen &&
      Clock::now() - opened_at_ >= config_.cooldown)
    h.state = BreakerState::kHalfOpen;
  h.consecutive_failures = consecutive_failures_;
  h.total_failures = total_failures_;
  h.times_opened = times_opened_;
  return h;
}

}  // namespace rebooting::sched
