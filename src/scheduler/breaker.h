// Per-worker circuit breaker — the replica-health half of the scheduler's
// resilience layer (DESIGN.md §10).
//
// Every worker thread owns one breaker guarding its accelerator replica.
// Consecutive attempt failures past a threshold OPEN the breaker: the worker
// stops executing on that replica (attempts are refused fast, or failed over
// to the CPU fallback pool) for a cooldown period. After the cooldown the
// breaker goes HALF-OPEN and admits exactly one probe attempt: a success
// CLOSES it, a failure re-OPENS it for another cooldown.
//
//        failure x threshold            cooldown elapsed
//   CLOSED ----------------> OPEN ----------------------> HALF-OPEN
//     ^                       ^                            |      |
//     |                       +---------- probe failed ----+      |
//     +------------------------------- probe succeeded -----------+
//
// A threshold of 0 disables the breaker entirely (allow() is always true),
// which is the default — resilience features are strictly opt-in.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace rebooting::sched {

struct BreakerConfig {
  /// Consecutive failures on one replica that open its breaker; 0 disables.
  std::size_t failure_threshold = 0;
  /// How long an open breaker refuses attempts before the half-open probe.
  std::chrono::steady_clock::duration cooldown = std::chrono::milliseconds(50);
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string to_string(BreakerState state);

/// Point-in-time health snapshot of one worker replica (Scheduler::health).
struct ReplicaHealth {
  std::size_t replica = 0;
  BreakerState state = BreakerState::kClosed;
  std::size_t consecutive_failures = 0;
  std::size_t total_failures = 0;
  std::size_t times_opened = 0;
};

/// The state machine above. Mutex-guarded: the owning worker drives it, but
/// Scheduler::health() snapshots it from other threads.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(BreakerConfig config = {}) : config_(config) {}

  /// True when an execution attempt may proceed: the breaker is disabled or
  /// closed, or the cooldown has elapsed and this call claims the half-open
  /// probe slot. False while open (or while another probe is in flight).
  bool allow();

  /// Records an execution success: resets the consecutive-failure run and
  /// closes a half-open breaker.
  void record_success();

  /// Records an execution failure. Returns true when this failure OPENED the
  /// breaker (closed->open on reaching the threshold, or a failed half-open
  /// probe re-opening), so the caller can emit `sched.breaker_open` exactly
  /// once per transition.
  bool record_failure();

  /// Health snapshot; `replica` is filled by the caller.
  ReplicaHealth snapshot() const;

 private:
  mutable std::mutex mutex_;
  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  Clock::time_point opened_at_{};
  bool probe_in_flight_ = false;
  std::size_t consecutive_failures_ = 0;
  std::size_t total_failures_ = 0;
  std::size_t times_opened_ = 0;
};

}  // namespace rebooting::sched
