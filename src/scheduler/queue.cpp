#include "scheduler/queue.h"

#include <algorithm>
#include <stdexcept>

namespace rebooting::sched {

std::string to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kReject: return "reject";
    case BackpressurePolicy::kShedOldest: return "shed-oldest";
  }
  return "unknown";
}

BoundedJobQueue::BoundedJobQueue(std::size_t capacity,
                                 BackpressurePolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity_ == 0)
    throw std::invalid_argument("BoundedJobQueue: capacity must be >= 1");
}

BoundedJobQueue::PushStatus BoundedJobQueue::push(
    QueuedJob& item, std::optional<QueuedJob>* shed) {
  std::unique_lock lock(mutex_);
  if (items_.size() >= capacity_ && !closed_) {
    switch (policy_) {
      case BackpressurePolicy::kBlock:
        not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
        break;
      case BackpressurePolicy::kReject:
        return PushStatus::kRejected;
      case BackpressurePolicy::kShedOldest: {
        // Evict the longest-waiting entry (smallest seq) regardless of its
        // priority: age, not importance, defines "oldest" for shedding.
        auto oldest = std::min_element(
            items_.begin(), items_.end(),
            [](const QueuedJob& a, const QueuedJob& b) { return a.seq < b.seq; });
        auto node = items_.extract(oldest);
        if (shed) *shed = std::move(node.value());
        break;
      }
    }
  }
  if (closed_) return PushStatus::kClosed;
  items_.insert(std::move(item));
  not_empty_.notify_one();
  return PushStatus::kAccepted;
}

std::optional<QueuedJob> BoundedJobQueue::pop() {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (closed_) return std::nullopt;  // leftovers are for flush()
  auto node = items_.extract(items_.begin());
  ++in_flight_;  // under the same lock as the removal, so wait_idle never
                 // observes "empty and idle" between pop and execution
  not_full_.notify_one();
  return std::move(node.value());
}

std::optional<QueuedJob> BoundedJobQueue::pop_for(Clock::duration timeout) {
  std::unique_lock lock(mutex_);
  if (!not_empty_.wait_for(lock, timeout,
                           [&] { return !items_.empty() || closed_; }))
    return std::nullopt;  // timed out; caller may go stealing
  if (closed_) return std::nullopt;  // leftovers are for flush()
  auto node = items_.extract(items_.begin());
  ++in_flight_;
  not_full_.notify_one();
  return std::move(node.value());
}

BoundedJobQueue::PushStatus BoundedJobQueue::push_resumed(QueuedJob& item) {
  std::lock_guard lock(mutex_);
  if (closed_) return PushStatus::kClosed;
  items_.insert(std::move(item));
  not_empty_.notify_one();
  return PushStatus::kAccepted;
}

std::optional<QueuedJob> BoundedJobQueue::try_steal() {
  std::lock_guard lock(mutex_);
  if (closed_) return std::nullopt;
  const auto it = std::find_if(items_.begin(), items_.end(),
                               [](const QueuedJob& j) {
                                 return j.opts.stealable;
                               });
  if (it == items_.end()) return std::nullopt;
  auto node = items_.extract(it);
  ++in_flight_;  // the thief owes this queue a task_done()
  not_full_.notify_one();
  return std::move(node.value());
}

bool BoundedJobQueue::has_higher_priority_queued(int priority) const {
  std::lock_guard lock(mutex_);
  // items_ is priority-ordered, so the front is the best queued entry.
  return !items_.empty() && items_.begin()->opts.priority > priority;
}

bool BoundedJobQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

void BoundedJobQueue::task_done() {
  std::lock_guard lock(mutex_);
  if (in_flight_ == 0)
    throw std::logic_error("BoundedJobQueue::task_done without matching pop");
  if (--in_flight_ == 0 && items_.empty()) idle_.notify_all();
}

void BoundedJobQueue::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock,
             [&] { return (items_.empty() && in_flight_ == 0) || closed_; });
}

void BoundedJobQueue::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
  idle_.notify_all();
}

std::vector<QueuedJob> BoundedJobQueue::flush() {
  std::lock_guard lock(mutex_);
  std::vector<QueuedJob> out;
  out.reserve(items_.size());
  while (!items_.empty())
    out.push_back(std::move(items_.extract(items_.begin()).value()));
  return out;
}

std::size_t BoundedJobQueue::size() const {
  std::lock_guard lock(mutex_);
  return items_.size();
}

std::size_t BoundedJobQueue::in_flight() const {
  std::lock_guard lock(mutex_);
  return in_flight_;
}

}  // namespace rebooting::sched
